// ECU hardware watchdog baseline (paper §2: "a hardware watchdog treats
// the embedded software as a whole").
//
// A windowed watchdog timer: it must be kicked before `timeout` elapses
// (and, in window mode, not earlier than `window_min` after the previous
// kick). The companion service installs a low-priority kicker task so the
// watchdog only sees whether the ECU as a whole still schedules background
// work — exactly the coarse granularity the paper argues is insufficient.
#pragma once

#include <cstdint>
#include <functional>

#include "os/kernel.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace easis::baseline {

class HardwareWatchdog {
 public:
  using ExpireCallback = std::function<void(sim::SimTime)>;

  /// `window_min` of zero disables the early-kick window check.
  HardwareWatchdog(sim::Engine& engine, sim::Duration timeout,
                   sim::Duration window_min = sim::Duration::zero());

  void set_expire_callback(ExpireCallback cb) { on_expire_ = std::move(cb); }

  void start();
  void stop();
  /// Services the watchdog. Kicking outside the permitted window counts as
  /// a violation (and triggers the expire callback in window mode).
  void kick();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::uint32_t expirations() const { return expirations_; }
  [[nodiscard]] std::uint32_t early_kicks() const { return early_kicks_; }

 private:
  sim::Engine& engine_;
  sim::Duration timeout_;
  sim::Duration window_min_;
  ExpireCallback on_expire_;
  bool running_ = false;
  sim::SimTime last_kick_;
  std::uint64_t generation_ = 0;
  std::uint32_t expirations_ = 0;
  std::uint32_t early_kicks_ = 0;

  void arm();
};

/// Installs the conventional servicing pattern: a lowest-priority periodic
/// task that kicks the hardware watchdog.
class HardwareWatchdogService {
 public:
  HardwareWatchdogService(os::Kernel& kernel, HardwareWatchdog& watchdog,
                          CounterId counter, os::Priority priority,
                          std::uint64_t period_ticks);

  /// Arms the kicker alarm; call after kernel start.
  void arm();

  [[nodiscard]] TaskId task() const { return task_; }

 private:
  os::Kernel& kernel_;
  AlarmId alarm_;
  TaskId task_;
  std::uint64_t period_ticks_;
};

}  // namespace easis::baseline
