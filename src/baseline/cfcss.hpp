// Control-Flow Checking by Software Signatures (CFCSS), Oh/Shirvani/
// McCluskey, IEEE Trans. Reliability 2002 — the paper's §2/§3.2.2
// comparison point for the look-up-table PFC.
//
// Each basic block j carries a compile-time signature s_j and a signature
// difference d_j = s_j XOR s_pred0(j). The runtime signature register is
// updated on every block entry: G = G XOR d_j (XOR an adjusting signature D
// for branch-fan-in blocks, set by the actual predecessor along the taken
// edge). G != s_j signals a control-flow error.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace easis::baseline {

class CfcssChecker {
 public:
  using NodeId = std::uint32_t;
  using ErrorCallback = std::function<void(NodeId)>;

  /// Declares a basic block with its permitted predecessors.
  /// Blocks without predecessors are program entry points.
  void add_node(NodeId node, std::vector<NodeId> predecessors);

  /// Assigns signatures and differences. Call once after all add_node().
  void compile();
  [[nodiscard]] bool compiled() const { return compiled_; }

  /// Instrumentation executed in the predecessor along the edge to `to`
  /// (sets the adjusting signature D for branch-fan-in targets).
  void prepare_branch(NodeId to);

  /// Block-entry instrumentation: updates G and checks it against s_node.
  /// Returns true when the signature matches.
  bool enter(NodeId node);

  /// Restarts the program (resets G to the entry state).
  void restart();

  void set_error_callback(ErrorCallback cb) { on_error_ = std::move(cb); }
  [[nodiscard]] std::uint64_t checks() const { return checks_; }
  [[nodiscard]] std::uint64_t errors() const { return errors_; }
  [[nodiscard]] std::uint32_t signature(NodeId node) const;

 private:
  struct Node {
    std::vector<NodeId> predecessors;
    std::uint32_t s = 0;  // compile-time signature
    std::uint32_t d = 0;  // signature difference vs. base predecessor
    bool fan_in = false;  // multiple predecessors -> needs D adjustment
  };

  std::unordered_map<NodeId, Node> nodes_;
  bool compiled_ = false;
  std::uint32_t g_ = 0;  // runtime signature register
  std::uint32_t d_reg_ = 0;
  bool in_program_ = false;
  std::uint64_t checks_ = 0;
  std::uint64_t errors_ = 0;
  ErrorCallback on_error_;
};

}  // namespace easis::baseline
