// Execution-time monitoring baseline (paper §2: AUTOSAR OS execution time
// budgets at task granularity).
//
// Each task gets a CPU budget per job. The monitor arms a probe for the
// moment the budget would be exhausted while the task holds the CPU; a
// probe that fires while the same job is still running reports a budget
// violation. Coarser than the Software Watchdog: a runnable running
// moderately long, or not at all, stays invisible as long as the task's
// total budget holds.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "os/kernel.hpp"
#include "sim/time.hpp"

namespace easis::baseline {

class ExecutionTimeMonitor : public os::KernelObserver {
 public:
  using ViolationCallback = std::function<void(TaskId, sim::SimTime)>;

  explicit ExecutionTimeMonitor(os::Kernel& kernel);
  ~ExecutionTimeMonitor() override;
  ExecutionTimeMonitor(const ExecutionTimeMonitor&) = delete;
  ExecutionTimeMonitor& operator=(const ExecutionTimeMonitor&) = delete;

  void set_budget(TaskId task, sim::Duration budget);
  void set_violation_callback(ViolationCallback cb) {
    on_violation_ = std::move(cb);
  }
  /// When enabled, a violating task is forcibly terminated (AUTOSAR
  /// protection hook reaction).
  void set_kill_on_violation(bool kill) { kill_on_violation_ = kill; }

  [[nodiscard]] std::uint32_t violations(TaskId task) const;
  [[nodiscard]] std::uint32_t total_violations() const { return total_; }

  // KernelObserver:
  void on_task_dispatched(TaskId task, sim::SimTime now) override;
  void on_task_preempted(TaskId task, sim::SimTime now) override;
  void on_task_waiting(TaskId task, sim::SimTime now) override;
  void on_task_terminated(TaskId task, sim::SimTime now) override;

 private:
  struct Watch {
    sim::Duration budget;
    sim::EventId probe = 0;
    std::uint32_t violations = 0;
    bool violated_this_job = false;
  };

  os::Kernel& kernel_;
  std::unordered_map<TaskId, Watch> watches_;
  ViolationCallback on_violation_;
  bool kill_on_violation_ = false;
  std::uint32_t total_ = 0;

  void disarm(Watch& watch);
};

}  // namespace easis::baseline
