#include "baseline/exec_time_monitor.hpp"

namespace easis::baseline {

ExecutionTimeMonitor::ExecutionTimeMonitor(os::Kernel& kernel)
    : kernel_(kernel) {
  kernel_.add_observer(this);
}

ExecutionTimeMonitor::~ExecutionTimeMonitor() {
  kernel_.remove_observer(this);
}

void ExecutionTimeMonitor::set_budget(TaskId task, sim::Duration budget) {
  watches_[task].budget = budget;
}

std::uint32_t ExecutionTimeMonitor::violations(TaskId task) const {
  auto it = watches_.find(task);
  return it == watches_.end() ? 0 : it->second.violations;
}

void ExecutionTimeMonitor::disarm(Watch& watch) {
  if (watch.probe != 0) {
    kernel_.engine().cancel(watch.probe);
    watch.probe = 0;
  }
}

void ExecutionTimeMonitor::on_task_dispatched(TaskId task, sim::SimTime now) {
  auto it = watches_.find(task);
  if (it == watches_.end()) return;
  Watch& watch = it->second;
  if (watch.violated_this_job) return;  // already reported for this job
  const sim::Duration left = watch.budget - kernel_.job_consumed(task);
  if (left <= sim::Duration::zero()) {
    // Already over budget when resumed (can happen with zero-length slack).
    ++watch.violations;
    ++total_;
    watch.violated_this_job = true;
    if (on_violation_) on_violation_(task, now);
    if (kill_on_violation_) kernel_.kill_task(task);
    return;
  }
  disarm(watch);
  watch.probe = kernel_.engine().schedule_at(
      now + left,
      [this, task] {
        auto wit = watches_.find(task);
        if (wit == watches_.end()) return;
        Watch& w = wit->second;
        w.probe = 0;
        if (kernel_.running_task() != task) return;  // raced a switch
        ++w.violations;
        ++total_;
        w.violated_this_job = true;
        if (on_violation_) on_violation_(task, kernel_.now());
        if (kill_on_violation_) kernel_.kill_task(task);
      },
      sim::EventPriority::kMonitor);
}

void ExecutionTimeMonitor::on_task_preempted(TaskId task, sim::SimTime) {
  auto it = watches_.find(task);
  if (it != watches_.end()) disarm(it->second);
}

void ExecutionTimeMonitor::on_task_waiting(TaskId task, sim::SimTime) {
  auto it = watches_.find(task);
  if (it != watches_.end()) disarm(it->second);
}

void ExecutionTimeMonitor::on_task_terminated(TaskId task, sim::SimTime) {
  auto it = watches_.find(task);
  if (it == watches_.end()) return;
  disarm(it->second);
  it->second.violated_this_job = false;
}

}  // namespace easis::baseline
