#include "baseline/cfcss.hpp"

#include <stdexcept>

namespace easis::baseline {

void CfcssChecker::add_node(NodeId node, std::vector<NodeId> predecessors) {
  if (compiled_) throw std::logic_error("CFCSS: already compiled");
  if (nodes_.contains(node)) throw std::logic_error("CFCSS: duplicate node");
  Node n;
  n.predecessors = std::move(predecessors);
  nodes_.emplace(node, std::move(n));
}

void CfcssChecker::compile() {
  if (compiled_) throw std::logic_error("CFCSS: already compiled");
  // Unique signatures: a simple multiplicative hash of the node id keeps
  // Hamming distances healthy without a table.
  for (auto& [id, node] : nodes_) {
    node.s = (id + 1u) * 0x9E3779B9u;
  }
  for (auto& [id, node] : nodes_) {
    node.fan_in = node.predecessors.size() > 1;
    if (node.predecessors.empty()) {
      node.d = node.s;  // entry: G starts at 0, G ^ s = s
    } else {
      const auto base = nodes_.find(node.predecessors.front());
      if (base == nodes_.end()) {
        throw std::logic_error("CFCSS: unknown predecessor");
      }
      node.d = node.s ^ base->second.s;
    }
  }
  compiled_ = true;
  restart();
}

void CfcssChecker::prepare_branch(NodeId to) {
  auto it = nodes_.find(to);
  if (it == nodes_.end()) return;
  const Node& target = it->second;
  if (!target.fan_in) return;
  // D = s_actual_pred XOR s_pred0(target); the current G is the actual
  // predecessor's signature when the flow is intact.
  const Node& base = nodes_.at(target.predecessors.front());
  d_reg_ = g_ ^ base.s;
}

bool CfcssChecker::enter(NodeId node) {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    ++checks_;
    ++errors_;
    if (on_error_) on_error_(node);
    return false;
  }
  const Node& n = it->second;
  ++checks_;
  if (n.predecessors.empty()) {
    g_ = n.d;  // program (re-)entry
  } else {
    g_ ^= n.d;
    if (n.fan_in) {
      g_ ^= d_reg_;
      d_reg_ = 0;
    }
  }
  if (g_ != n.s) {
    ++errors_;
    if (on_error_) on_error_(node);
    // Re-sync so subsequent blocks are checked against a sane register.
    g_ = n.s;
    return false;
  }
  return true;
}

void CfcssChecker::restart() {
  g_ = 0;
  d_reg_ = 0;
  in_program_ = false;
}

std::uint32_t CfcssChecker::signature(NodeId node) const {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) throw std::out_of_range("CFCSS: unknown node");
  return it->second.s;
}

}  // namespace easis::baseline
