// Deadline monitoring baseline (paper §2: OSEKTime-style deadline
// monitoring at task granularity).
//
// For each configured task, every activation arms a deadline; if the job
// has not terminated when the deadline expires, a violation is reported.
// Task-level granularity: a fault confined to one runnable that leaves the
// task's overall timing intact goes unnoticed — the limitation the
// Software Watchdog addresses.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "os/kernel.hpp"
#include "sim/time.hpp"

namespace easis::baseline {

class DeadlineMonitor : public os::KernelObserver {
 public:
  using ViolationCallback = std::function<void(TaskId, sim::SimTime)>;

  explicit DeadlineMonitor(os::Kernel& kernel);
  ~DeadlineMonitor() override;
  DeadlineMonitor(const DeadlineMonitor&) = delete;
  DeadlineMonitor& operator=(const DeadlineMonitor&) = delete;

  /// Monitors `task`: each activation must terminate within `deadline`.
  void set_deadline(TaskId task, sim::Duration deadline);
  void set_violation_callback(ViolationCallback cb) { on_violation_ = std::move(cb); }

  [[nodiscard]] std::uint32_t violations(TaskId task) const;
  [[nodiscard]] std::uint32_t total_violations() const { return total_; }

  // KernelObserver:
  void on_task_activated(TaskId task, sim::SimTime now) override;
  void on_task_terminated(TaskId task, sim::SimTime now) override;

 private:
  struct Watch {
    sim::Duration deadline;
    /// Event ids of armed deadlines, oldest first (queued activations).
    std::deque<sim::EventId> armed;
    std::uint32_t violations = 0;
  };

  os::Kernel& kernel_;
  std::unordered_map<TaskId, Watch> watches_;
  ViolationCallback on_violation_;
  std::uint32_t total_ = 0;
};

}  // namespace easis::baseline
