#include "baseline/hw_watchdog.hpp"

#include <stdexcept>

namespace easis::baseline {

HardwareWatchdog::HardwareWatchdog(sim::Engine& engine, sim::Duration timeout,
                                   sim::Duration window_min)
    : engine_(engine), timeout_(timeout), window_min_(window_min) {
  if (timeout <= sim::Duration::zero()) {
    throw std::invalid_argument("HardwareWatchdog: timeout must be positive");
  }
  if (window_min < sim::Duration::zero() || window_min >= timeout) {
    throw std::invalid_argument("HardwareWatchdog: bad window");
  }
}

void HardwareWatchdog::start() {
  running_ = true;
  last_kick_ = engine_.now();
  arm();
}

void HardwareWatchdog::stop() {
  running_ = false;
  ++generation_;
}

void HardwareWatchdog::arm() {
  const std::uint64_t generation = ++generation_;
  engine_.schedule_at(
      last_kick_ + timeout_,
      [this, generation] {
        if (!running_ || generation != generation_) return;
        ++expirations_;
        if (on_expire_) on_expire_(engine_.now());
        // A real watchdog resets the ECU; re-arm for continued monitoring.
        last_kick_ = engine_.now();
        arm();
      },
      sim::EventPriority::kMonitor);
}

void HardwareWatchdog::kick() {
  if (!running_) return;
  const sim::Duration since = engine_.now() - last_kick_;
  if (window_min_ > sim::Duration::zero() && since < window_min_) {
    ++early_kicks_;
    if (on_expire_) on_expire_(engine_.now());
  }
  last_kick_ = engine_.now();
  arm();
}

HardwareWatchdogService::HardwareWatchdogService(os::Kernel& kernel,
                                                 HardwareWatchdog& watchdog,
                                                 CounterId counter,
                                                 os::Priority priority,
                                                 std::uint64_t period_ticks)
    : kernel_(kernel), period_ticks_(period_ticks) {
  os::TaskConfig config;
  config.name = "HWWD_Kicker";
  config.priority = priority;
  task_ = kernel_.create_task(config);
  kernel_.set_job_factory(task_, [&watchdog] {
    os::Segment segment;
    segment.cost = sim::Duration::micros(5);
    segment.on_complete = [&watchdog] { watchdog.kick(); };
    return os::Job{segment};
  });
  alarm_ = kernel_.create_alarm(counter, os::AlarmActionActivateTask{task_},
                                "HWWD_Alarm");
}

void HardwareWatchdogService::arm() {
  kernel_.set_rel_alarm(alarm_, period_ticks_, period_ticks_);
}

}  // namespace easis::baseline
