#include "baseline/deadline_monitor.hpp"

#include <algorithm>

namespace easis::baseline {

DeadlineMonitor::DeadlineMonitor(os::Kernel& kernel) : kernel_(kernel) {
  kernel_.add_observer(this);
}

DeadlineMonitor::~DeadlineMonitor() { kernel_.remove_observer(this); }

void DeadlineMonitor::set_deadline(TaskId task, sim::Duration deadline) {
  watches_[task].deadline = deadline;
}

std::uint32_t DeadlineMonitor::violations(TaskId task) const {
  auto it = watches_.find(task);
  return it == watches_.end() ? 0 : it->second.violations;
}

void DeadlineMonitor::on_task_activated(TaskId task, sim::SimTime now) {
  auto it = watches_.find(task);
  if (it == watches_.end()) return;
  Watch& watch = it->second;
  const sim::EventId event = kernel_.engine().schedule_at(
      now + watch.deadline,
      [this, task] {
        auto wit = watches_.find(task);
        if (wit == watches_.end() || wit->second.armed.empty()) return;
        // The oldest armed deadline fired before its job terminated.
        wit->second.armed.pop_front();
        ++wit->second.violations;
        ++total_;
        if (on_violation_) on_violation_(task, kernel_.now());
      },
      sim::EventPriority::kMonitor);
  watch.armed.push_back(event);
}

void DeadlineMonitor::on_task_terminated(TaskId task, sim::SimTime) {
  auto it = watches_.find(task);
  if (it == watches_.end() || it->second.armed.empty()) return;
  // The oldest pending activation completed in time.
  kernel_.engine().cancel(it->second.armed.front());
  it->second.armed.pop_front();
}

}  // namespace easis::baseline
