#include "profile/profiler.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace easis::profile {

namespace {

thread_local Profiler* g_current = nullptr;

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Process-global name registry. Ids are handed out in first-intern order;
/// the mutex is touched once per call site (static-local init) and once per
/// name resolution, never on the span hot path.
struct NameRegistry {
  std::mutex mutex;
  std::vector<std::string> names;
  std::unordered_map<std::string, NameId> ids;

  static NameRegistry& instance() {
    static NameRegistry registry;
    return registry;
  }
};

}  // namespace

NameId intern_name(std::string_view name) {
  auto& registry = NameRegistry::instance();
  std::lock_guard<std::mutex> lock(registry.mutex);
  const auto it = registry.ids.find(std::string(name));
  if (it != registry.ids.end()) return it->second;
  const NameId id = static_cast<NameId>(registry.names.size());
  registry.names.emplace_back(name);
  registry.ids.emplace(registry.names.back(), id);
  return id;
}

std::string name_of(NameId id) {
  auto& registry = NameRegistry::instance();
  std::lock_guard<std::mutex> lock(registry.mutex);
  if (id >= registry.names.size()) return "<unknown>";
  return registry.names[id];
}

std::size_t RunProfile::depth(std::size_t i) const {
  std::size_t d = 0;
  for (std::int32_t p = nodes[i].parent; p >= 0;
       p = nodes[static_cast<std::size_t>(p)].parent) {
    ++d;
  }
  return d;
}

std::string RunProfile::path(std::size_t i) const {
  std::vector<const std::string*> parts;
  for (std::int32_t n = static_cast<std::int32_t>(i); n >= 0;
       n = nodes[static_cast<std::size_t>(n)].parent) {
    parts.push_back(&nodes[static_cast<std::size_t>(n)].name);
  }
  std::string joined;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    if (!joined.empty()) joined += '/';
    joined += **it;
  }
  return joined;
}

Profiler::Profiler() : Profiler(Config{}) {}

Profiler::Profiler(Config config) : config_(config) {
  if (config_.ring_capacity == 0) config_.ring_capacity = 1;
  ring_.reserve(std::min<std::size_t>(config_.ring_capacity, 4096));
}

void Profiler::begin_run() {
  nodes_.clear();
  roots_.clear();
  stack_.clear();
  ring_.clear();
  ring_next_ = 0;
  dropped_ = 0;
  counters_.clear();
}

std::uint32_t Profiler::child_of(std::int32_t parent, NameId name) {
  auto& table = parent < 0
                    ? roots_
                    : nodes_[static_cast<std::size_t>(parent)].children;
  for (const auto& [child_name, index] : table) {
    if (child_name == name) return index;
  }
  const auto index = static_cast<std::uint32_t>(nodes_.size());
  Node node;
  node.name = name;
  node.parent = parent;
  nodes_.push_back(std::move(node));
  // nodes_.push_back may have invalidated `table`; re-resolve.
  auto& fresh = parent < 0
                    ? roots_
                    : nodes_[static_cast<std::size_t>(parent)].children;
  fresh.emplace_back(name, index);
  return index;
}

void Profiler::push_span(NameId name) {
  const std::int32_t parent =
      stack_.empty() ? -1 : static_cast<std::int32_t>(stack_.back().node);
  const std::uint32_t node = child_of(parent, name);
  stack_.push_back(Frame{node, now_ns()});
}

void Profiler::pop_span() {
  assert(!stack_.empty());
  const Frame frame = stack_.back();
  stack_.pop_back();
  const std::int64_t dur = now_ns() - frame.start_ns;
  Node& node = nodes_[frame.node];
  ++node.hits;
  node.total_ns += dur;
  node.self_ns += dur - frame.child_ns;
  if (!stack_.empty()) stack_.back().child_ns += dur;

  if (ring_.size() < config_.ring_capacity) {
    ring_.push_back(RunProfile::SpanRecord{frame.node, frame.start_ns, dur});
  } else {
    // Overwrite the oldest record (a trace keeps the tail of the run, the
    // part a post-mortem usually wants) and count the loss.
    ring_[ring_next_] = RunProfile::SpanRecord{frame.node, frame.start_ns, dur};
    ring_next_ = (ring_next_ + 1) % config_.ring_capacity;
    ++dropped_;
  }
}

void Profiler::count(NameId name, std::uint64_t delta) {
  if (name >= counters_.size()) counters_.resize(name + 1, 0);
  counters_[name] += delta;
}

RunProfile Profiler::harvest_run(unsigned worker) {
  assert(stack_.empty() && "harvest_run with open spans");
  RunProfile profile;
  profile.enabled = true;
  profile.worker = worker;
  profile.nodes.reserve(nodes_.size());
  for (const Node& node : nodes_) {
    profile.nodes.push_back(RunProfile::Node{name_of(node.name), node.parent,
                                             node.hits, node.total_ns,
                                             node.self_ns});
  }
  for (NameId id = 0; id < counters_.size(); ++id) {
    if (counters_[id] == 0) continue;
    profile.counters.push_back(RunProfile::CounterSample{name_of(id),
                                                         counters_[id]});
  }
  // NameIds are assigned in racy first-use order across workers; sorting by
  // name keeps the exported counter order deterministic.
  std::sort(profile.counters.begin(), profile.counters.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  profile.dropped_records = dropped_;
  profile.records.reserve(ring_.size());
  if (dropped_ == 0) {
    profile.records = ring_;
  } else {
    // The ring wrapped: ring_next_ is the oldest surviving record.
    profile.records.insert(profile.records.end(), ring_.begin() + ring_next_,
                           ring_.end());
    profile.records.insert(profile.records.end(), ring_.begin(),
                           ring_.begin() + ring_next_);
  }
  begin_run();
  return profile;
}

Profiler* current() { return g_current; }

ProfileScope::ProfileScope(Profiler& profiler)
    : previous_(std::exchange(g_current, &profiler)) {}

ProfileScope::~ProfileScope() { g_current = previous_; }

}  // namespace easis::profile
