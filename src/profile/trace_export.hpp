// Chrome trace-event JSON export (DESIGN.md §15).
//
// Writes the raw span records of a campaign as a Chrome trace-event file —
// the JSON array format Perfetto and chrome://tracing load directly. Every
// span becomes one complete ("ph":"X") event; worker threads map to trace
// tracks (pid 0, tid = worker ordinal), so the viewer shows the campaign's
// real parallelism. Timestamps are wall-clock microseconds rebased onto the
// campaign epoch; the file is a nondeterministic artifact by design and is
// never compared across --jobs.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "profile/profiler.hpp"

namespace easis::profile {

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters).
[[nodiscard]] std::string json_escape(const std::string& text);

/// Streams one campaign's trace. Usage:
///   TraceWriter trace(out);
///   trace.begin();
///   for each run (in any order): trace.add_run(profile, label, epoch_ns);
///   trace.end();
class TraceWriter {
 public:
  explicit TraceWriter(std::ostream& out) : out_(out) {}

  /// Opens the traceEvents array.
  void begin();

  /// Emits the run's span records as complete events on the worker's
  /// track. `epoch_ns` is the campaign start in steady_clock nanoseconds;
  /// record timestamps are exported relative to it. The run's label is
  /// attached as an args payload on each event's root via an instant
  /// marker event at the run start.
  void add_run(const RunProfile& profile, const std::string& label,
               std::int64_t epoch_ns);

  /// Emits the worker thread-name metadata and closes the JSON document.
  void end();

  [[nodiscard]] std::size_t events_written() const { return events_; }

 private:
  void comma();

  std::ostream& out_;
  std::size_t events_ = 0;
  unsigned max_worker_ = 0;
  bool any_run_ = false;
};

}  // namespace easis::profile
