#include "profile/trace_export.hpp"

#include <algorithm>
#include <cstdio>

namespace easis::profile {

std::string json_escape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': escaped += "\\\""; break;
      case '\\': escaped += "\\\\"; break;
      case '\b': escaped += "\\b"; break;
      case '\f': escaped += "\\f"; break;
      case '\n': escaped += "\\n"; break;
      case '\r': escaped += "\\r"; break;
      case '\t': escaped += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          escaped += buffer;
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

void TraceWriter::begin() {
  out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
}

void TraceWriter::comma() {
  if (events_ > 0) out_ << ",\n";
  ++events_;
}

void TraceWriter::add_run(const RunProfile& profile, const std::string& label,
                          std::int64_t epoch_ns) {
  if (!profile.enabled || profile.records.empty()) return;
  any_run_ = true;
  max_worker_ = std::max(max_worker_, profile.worker);

  // Run marker: an instant event at the run's first record, carrying the
  // bench label (fault class / policy id) for viewer context.
  const std::int64_t run_start = profile.records.front().start_ns - epoch_ns;
  comma();
  out_ << "{\"name\":\"run:" << json_escape(label)
       << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":"
       << static_cast<double>(run_start) / 1e3 << ",\"pid\":0,\"tid\":"
       << profile.worker << "}";

  for (const RunProfile::SpanRecord& record : profile.records) {
    comma();
    const auto& name = profile.nodes[record.node].name;
    out_ << "{\"name\":\"" << json_escape(name)
         << "\",\"ph\":\"X\",\"ts\":"
         << static_cast<double>(record.start_ns - epoch_ns) / 1e3
         << ",\"dur\":" << static_cast<double>(record.dur_ns) / 1e3
         << ",\"pid\":0,\"tid\":" << profile.worker << "}";
  }
  if (profile.dropped_records > 0) {
    comma();
    out_ << "{\"name\":\"ring dropped " << profile.dropped_records
         << " span(s)\",\"ph\":\"i\",\"s\":\"t\",\"ts\":"
         << static_cast<double>(run_start) / 1e3 << ",\"pid\":0,\"tid\":"
         << profile.worker << "}";
  }
}

void TraceWriter::end() {
  if (any_run_) {
    for (unsigned w = 0; w <= max_worker_; ++w) {
      comma();
      out_ << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << w
           << ",\"args\":{\"name\":\"worker-" << w << "\"}}";
    }
    comma();
    out_ << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
            "\"args\":{\"name\":\"easis campaign\"}}";
  }
  out_ << "\n]}\n";
}

}  // namespace easis::profile
