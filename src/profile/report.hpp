// Campaign-level reduction of per-run profiles (DESIGN.md §15).
//
// CampaignRollup merges RunProfiles in the order add_run() is called — the
// harness feeds it in run-index order, so the merged tree (paths, hit
// counts, counter values, row order) is deterministic across --jobs. The
// wall-clock statistics (min/mean/p99 across runs) are nondeterministic and
// appear only in the full rollup CSV; write_shape_csv() emits the
// deterministic projection the profile_jobs_determinism gate compares.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "profile/profiler.hpp"

namespace easis::profile {

class CampaignRollup {
 public:
  /// Folds one run's profile into the rollup. Runs must be added in
  /// run-index order for deterministic output. Disabled/empty profiles
  /// contribute nothing.
  void add_run(const RunProfile& profile);

  /// Full rollup CSV:
  ///   kind,span,depth,hits,runs,self_us_min,self_us_mean,self_us_p99,
  ///   total_us_min,total_us_mean,total_us_p99
  /// Span rows carry per-run wall-time statistics (nondeterministic);
  /// counter rows reuse the total_us_* columns for the per-run counter
  /// value (unitless) and keep the self_us_* columns zero.
  void write_csv(std::ostream& out) const;

  /// Deterministic projection: kind,span,depth,hits,runs — byte-identical
  /// across --jobs values (the ctest gate artifact).
  void write_shape_csv(std::ostream& out) const;

  [[nodiscard]] std::size_t runs() const { return runs_; }
  [[nodiscard]] bool empty() const {
    return spans_.empty() && counters_.empty();
  }
  [[nodiscard]] std::uint64_t dropped_records() const { return dropped_; }

 private:
  struct SpanAggregate {
    std::string path;
    std::size_t depth = 0;
    std::uint64_t hits = 0;
    std::uint64_t runs = 0;
    std::vector<std::int64_t> self_ns;   // one sample per contributing run
    std::vector<std::int64_t> total_ns;  // one sample per contributing run
  };
  struct CounterAggregate {
    std::string name;
    std::uint64_t total = 0;
    std::uint64_t runs = 0;
    std::vector<std::int64_t> values;  // one sample per contributing run
  };

  /// Spans in first-appearance order across the run sequence; linear index
  /// lookup via the path map below.
  std::vector<SpanAggregate> spans_;
  std::vector<CounterAggregate> counters_;
  std::size_t runs_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace easis::profile
