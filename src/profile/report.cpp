#include "profile/report.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace easis::profile {

namespace {

/// Default ostream formatting (6 significant digits) — the same
/// deterministic rendering the metrics exports use.
std::string render(double value) {
  std::ostringstream out;
  out << value;
  return out.str();
}

struct SampleStats {
  double min_us = 0.0;
  double mean_us = 0.0;
  double p99_us = 0.0;
};

SampleStats stats_us(std::vector<std::int64_t> samples) {
  SampleStats stats;
  if (samples.empty()) return stats;
  std::sort(samples.begin(), samples.end());
  double sum = 0.0;
  for (const std::int64_t s : samples) sum += static_cast<double>(s);
  const auto n = samples.size();
  const std::size_t p99 =
      std::min(n - 1, static_cast<std::size_t>(std::ceil(0.99 * n)) - 1);
  stats.min_us = static_cast<double>(samples.front()) / 1e3;
  stats.mean_us = sum / static_cast<double>(n) / 1e3;
  stats.p99_us = static_cast<double>(samples[p99]) / 1e3;
  return stats;
}

}  // namespace

void CampaignRollup::add_run(const RunProfile& profile) {
  if (!profile.enabled) return;
  ++runs_;
  dropped_ += profile.dropped_records;

  // Per-run node index -> rollup span index, built as we walk the run's
  // nodes (parents precede children in a RunProfile, so the parent's rollup
  // path is always resolved first).
  std::vector<std::size_t> rollup_index(profile.nodes.size());
  for (std::size_t i = 0; i < profile.nodes.size(); ++i) {
    const RunProfile::Node& node = profile.nodes[i];
    const std::string path =
        node.parent < 0
            ? node.name
            : spans_[rollup_index[static_cast<std::size_t>(node.parent)]]
                      .path +
                  '/' + node.name;
    std::size_t index = spans_.size();
    for (std::size_t s = 0; s < spans_.size(); ++s) {
      if (spans_[s].path == path) {
        index = s;
        break;
      }
    }
    if (index == spans_.size()) {
      SpanAggregate aggregate;
      aggregate.path = path;
      aggregate.depth = profile.depth(i);
      spans_.push_back(std::move(aggregate));
    }
    SpanAggregate& aggregate = spans_[index];
    aggregate.hits += node.hits;
    ++aggregate.runs;
    aggregate.self_ns.push_back(node.self_ns);
    aggregate.total_ns.push_back(node.total_ns);
    rollup_index[i] = index;
  }

  for (const RunProfile::CounterSample& sample : profile.counters) {
    std::size_t index = counters_.size();
    for (std::size_t c = 0; c < counters_.size(); ++c) {
      if (counters_[c].name == sample.name) {
        index = c;
        break;
      }
    }
    if (index == counters_.size()) {
      CounterAggregate aggregate;
      aggregate.name = sample.name;
      counters_.push_back(std::move(aggregate));
    }
    CounterAggregate& aggregate = counters_[index];
    aggregate.total += sample.value;
    ++aggregate.runs;
    aggregate.values.push_back(static_cast<std::int64_t>(sample.value));
  }
}

void CampaignRollup::write_csv(std::ostream& out) const {
  out << "kind,span,depth,hits,runs,self_us_min,self_us_mean,self_us_p99,"
         "total_us_min,total_us_mean,total_us_p99\n";
  for (const SpanAggregate& span : spans_) {
    const SampleStats self = stats_us(span.self_ns);
    const SampleStats total = stats_us(span.total_ns);
    out << "span," << span.path << ',' << span.depth << ',' << span.hits
        << ',' << span.runs << ',' << render(self.min_us) << ','
        << render(self.mean_us) << ',' << render(self.p99_us) << ','
        << render(total.min_us) << ',' << render(total.mean_us) << ','
        << render(total.p99_us) << '\n';
  }
  for (const CounterAggregate& counter : counters_) {
    // Counter rows: per-run value statistics in the total_us_* columns
    // (unitless), sample sum in hits.
    std::vector<std::int64_t> values = counter.values;
    std::sort(values.begin(), values.end());
    double sum = 0.0;
    for (const std::int64_t v : values) sum += static_cast<double>(v);
    const auto n = values.size();
    const std::size_t p99 =
        n == 0 ? 0
               : std::min(n - 1,
                          static_cast<std::size_t>(std::ceil(0.99 * n)) - 1);
    out << "counter," << counter.name << ",0," << counter.total << ','
        << counter.runs << ",0,0,0,"
        << (n == 0 ? "0" : render(static_cast<double>(values.front()))) << ','
        << (n == 0 ? "0" : render(sum / static_cast<double>(n))) << ','
        << (n == 0 ? "0" : render(static_cast<double>(values[p99]))) << '\n';
  }
}

void CampaignRollup::write_shape_csv(std::ostream& out) const {
  out << "kind,span,depth,hits,runs\n";
  for (const SpanAggregate& span : spans_) {
    out << "span," << span.path << ',' << span.depth << ',' << span.hits
        << ',' << span.runs << '\n';
  }
  for (const CounterAggregate& counter : counters_) {
    out << "counter," << counter.name << ",0," << counter.total << ','
        << counter.runs << '\n';
  }
}

}  // namespace easis::profile
