// Deterministic hot-path profiler (DESIGN.md §15).
//
// A Profiler owns the per-run profiling state of one worker thread: a span
// tree (name, nesting, hit counts, self/total wall time), lightweight named
// counters, and a bounded ring of raw span records for trace export. RAII
// ScopedSpans cost two steady_clock reads plus one ring write; counters cost
// one thread-local load and an indexed add. Instrumentation sites use the
// EASIS_PROFILE_SPAN / EASIS_PROFILE_COUNT macros, which compile to nothing
// when the tree is configured with EASIS_PROFILING=OFF (the zero-cost kill
// switch for production builds).
//
// Determinism contract: everything wall-clock (self/total nanoseconds, the
// raw records) is confined to profile/trace artifacts and never reaches a
// campaign result CSV. The *shape* of the data — span paths, nesting, hit
// counts, counter values — derives only from the simulated run, so it is
// bit-identical across --jobs values and is locked in by the
// profile_jobs_determinism ctest gate.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace easis::profile {

/// Process-global interned span/counter name. Ids are assigned in first-use
/// order (which may differ between processes and threads), so they are only
/// ever used as lookup keys; every export resolves them back to strings.
using NameId = std::uint32_t;

/// Interns `name` in the process-global registry (thread-safe); returns the
/// existing id when the name is already known.
[[nodiscard]] NameId intern_name(std::string_view name);

/// Resolves an interned id back to its name (thread-safe copy).
[[nodiscard]] std::string name_of(NameId id);

/// Everything one run's profiling produced, with names resolved. Plain data:
/// it travels inside harness::RunResult from the worker to the reduction.
struct RunProfile {
  /// One span-tree node per distinct (parent, name) path, in first-visit
  /// order — deterministic because the simulated run is.
  struct Node {
    std::string name;
    /// Index of the parent node, or -1 for a root.
    std::int32_t parent = -1;
    std::uint64_t hits = 0;
    /// Wall time including children (nondeterministic; artifact-only).
    std::int64_t total_ns = 0;
    /// Wall time excluding children (nondeterministic; artifact-only).
    std::int64_t self_ns = 0;
  };
  /// Named counter final values, sorted by name.
  struct CounterSample {
    std::string name;
    std::uint64_t value = 0;
  };
  /// One raw record per completed span, for trace export. `start_ns` is a
  /// steady_clock reading; exporters rebase it onto the campaign epoch.
  struct SpanRecord {
    std::uint32_t node = 0;
    std::int64_t start_ns = 0;
    std::int64_t dur_ns = 0;
  };

  std::vector<Node> nodes;
  std::vector<CounterSample> counters;
  /// Oldest-first; when the ring overflowed, the oldest records are gone
  /// and `dropped_records` says how many.
  std::vector<SpanRecord> records;
  std::uint64_t dropped_records = 0;
  /// Worker ordinal that executed the run (trace track assignment).
  unsigned worker = 0;
  /// False when the run executed without an installed profiler.
  bool enabled = false;

  [[nodiscard]] bool empty() const { return nodes.empty() && counters.empty(); }
  /// Nesting depth of node `i` (roots are 0).
  [[nodiscard]] std::size_t depth(std::size_t i) const;
  /// Full '/'-joined span path of node `i`.
  [[nodiscard]] std::string path(std::size_t i) const;
};

class Profiler {
 public:
  struct Config {
    /// Raw span records kept per run; older records are overwritten (and
    /// counted as dropped) once the ring is full.
    std::size_t ring_capacity = 1 << 16;
  };

  Profiler();
  explicit Profiler(Config config);

  /// Clears all per-run state (tree, counters, ring, stack).
  void begin_run();

  /// Resolves and returns the run's profile, then clears the per-run
  /// state. Must be called with the span stack empty (all spans closed).
  [[nodiscard]] RunProfile harvest_run(unsigned worker);

  // --- recording (called via ScopedSpan / the macros) ----------------------
  void push_span(NameId name);
  void pop_span();
  void count(NameId name, std::uint64_t delta);

  // --- introspection (tests) ----------------------------------------------
  [[nodiscard]] std::size_t open_spans() const { return stack_.size(); }
  [[nodiscard]] std::uint64_t dropped_records() const { return dropped_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  struct Node {
    NameId name = 0;
    std::int32_t parent = -1;
    std::uint64_t hits = 0;
    std::int64_t total_ns = 0;
    std::int64_t self_ns = 0;
    /// (name, node index) pairs; linear search — fan-out is small.
    std::vector<std::pair<NameId, std::uint32_t>> children;
  };
  struct Frame {
    std::uint32_t node;
    std::int64_t start_ns;
    std::int64_t child_ns = 0;
  };

  [[nodiscard]] std::uint32_t child_of(std::int32_t parent, NameId name);

  Config config_;
  std::vector<Node> nodes_;
  /// Root lookup: (name, node index) of parentless nodes.
  std::vector<std::pair<NameId, std::uint32_t>> roots_;
  std::vector<Frame> stack_;
  /// Ring of raw records; wraps at config_.ring_capacity.
  std::vector<RunProfile::SpanRecord> ring_;
  std::size_t ring_next_ = 0;
  std::uint64_t dropped_ = 0;
  /// Counter values indexed directly by NameId (grown on demand).
  std::vector<std::uint64_t> counters_;
};

/// The profiler installed for this thread, or nullptr. Instrumentation
/// macros check this once per site and do nothing when unset, so the
/// platform libraries stay cheap in unprofiled runs and unit tests.
[[nodiscard]] Profiler* current();

/// Installs `profiler` as the current thread's recording target for the
/// scope's lifetime; restores the previous target on destruction. Scopes
/// nest, innermost wins (same discipline as telemetry::EventScope).
class ProfileScope {
 public:
  explicit ProfileScope(Profiler& profiler);
  ~ProfileScope();
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  Profiler* previous_;
};

/// RAII span: records (push, pop) against the profiler that was current at
/// construction. Safe (and free) when no profiler is installed.
class ScopedSpan {
 public:
  explicit ScopedSpan(NameId name) : profiler_(current()) {
    if (profiler_ != nullptr) profiler_->push_span(name);
  }
  ~ScopedSpan() {
    if (profiler_ != nullptr) profiler_->pop_span();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Profiler* profiler_;
};

}  // namespace easis::profile

// --- instrumentation macros --------------------------------------------------
//
// EASIS_PROFILE_SPAN("os.dispatch");        // scoped span, RAII
// EASIS_PROFILE_COUNT("sim.events", 1);     // named counter add
//
// Building with -DEASIS_PROFILING=OFF defines EASIS_PROFILING_DISABLED
// globally and both macros expand to nothing — the compiled-out zero-cost
// path. With profiling compiled in, sites still cost only a thread-local
// load and branch until a ProfileScope is installed.
#if !defined(EASIS_PROFILING_DISABLED)
#define EASIS_PROFILING_ENABLED 1
#else
#define EASIS_PROFILING_ENABLED 0
#endif

#if EASIS_PROFILING_ENABLED
#define EASIS_PROFILE_CONCAT2(a, b) a##b
#define EASIS_PROFILE_CONCAT(a, b) EASIS_PROFILE_CONCAT2(a, b)
#define EASIS_PROFILE_SPAN(name_literal)                                      \
  static const ::easis::profile::NameId EASIS_PROFILE_CONCAT(                 \
      easis_profile_name_, __LINE__) =                                        \
      ::easis::profile::intern_name(name_literal);                            \
  const ::easis::profile::ScopedSpan EASIS_PROFILE_CONCAT(                    \
      easis_profile_span_, __LINE__) {                                        \
    EASIS_PROFILE_CONCAT(easis_profile_name_, __LINE__)                       \
  }
#define EASIS_PROFILE_COUNT(name_literal, delta)                              \
  do {                                                                        \
    if (::easis::profile::Profiler* easis_profile_p =                         \
            ::easis::profile::current();                                      \
        easis_profile_p != nullptr) {                                         \
      static const ::easis::profile::NameId easis_profile_id =                \
          ::easis::profile::intern_name(name_literal);                        \
      easis_profile_p->count(easis_profile_id, (delta));                      \
    }                                                                         \
  } while (false)
// Explicit begin/end pair for phases whose locals must outlive the span
// (e.g. a run's setup section). END must close the innermost open span —
// spans are strictly LIFO. The END macro is optional: the span also closes
// when `tag` goes out of scope.
#define EASIS_PROFILE_SPAN_BEGIN(tag, name_literal)                           \
  static const ::easis::profile::NameId EASIS_PROFILE_CONCAT(                 \
      easis_profile_name_, tag) = ::easis::profile::intern_name(name_literal);\
  std::optional<::easis::profile::ScopedSpan> EASIS_PROFILE_CONCAT(           \
      easis_profile_span_, tag);                                              \
  EASIS_PROFILE_CONCAT(easis_profile_span_, tag)                              \
      .emplace(EASIS_PROFILE_CONCAT(easis_profile_name_, tag))
#define EASIS_PROFILE_SPAN_END(tag)                                           \
  EASIS_PROFILE_CONCAT(easis_profile_span_, tag).reset()
#else
#define EASIS_PROFILE_SPAN(name_literal) static_cast<void>(0)
#define EASIS_PROFILE_COUNT(name_literal, delta) static_cast<void>(0)
#define EASIS_PROFILE_SPAN_BEGIN(tag, name_literal) static_cast<void>(0)
#define EASIS_PROFILE_SPAN_END(tag) static_cast<void>(0)
#endif
