// Power-mode machine for duty-cycled nodes (sensor-node extension).
//
// The paper's watchdog assumes continuously alive supervised entities; a
// duty-cycled sensor node (the simuVSInsightRail profile: sleep/wake
// cycles, burst sampling, store-and-forward uplink, flash-write windows)
// legitimately *stops* heartbeating for most of its life. The
// PowerModeManager is the declared mode machine that makes those silences
// contractual: transitions are explicitly declared, guarded, two-phase
// (request -> commit after a transition latency) and announced over the
// signal bus plus telemetry, so the mode supervision unit — and only it —
// decides whether silence, storms and dwell times match the contract.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "rte/signal_bus.hpp"
#include "sim/engine.hpp"
#include "util/ids.hpp"

namespace easis::mode {

/// The declared power modes of a duty-cycled node.
enum class PowerMode : std::uint8_t {
  /// Fully awake: sampling, uplinking, heartbeating at the nominal rate.
  kRun = 0,
  /// Awake but quiescent between duty bursts; relaxed heartbeat rate.
  kIdle = 1,
  /// Deep sleep: heartbeats stop *by contract*; only the silence guard
  /// is armed.
  kSleep = 2,
  /// Wake storm: burst sensor sampling right after wake-up; heartbeat
  /// rates far above nominal are legitimate, but the burst must end.
  kWakeBurst = 3,
  /// NVM flash-write window: store-and-forward journal commit; bounded
  /// duration, checks suspended while the flash is busy.
  kFlashWrite = 4,
};

inline constexpr std::size_t kPowerModeCount = 5;

[[nodiscard]] constexpr std::string_view to_string(PowerMode m) {
  switch (m) {
    case PowerMode::kRun: return "run";
    case PowerMode::kIdle: return "idle";
    case PowerMode::kSleep: return "sleep";
    case PowerMode::kWakeBurst: return "wakeburst";
    case PowerMode::kFlashWrite: return "flashwrite";
  }
  return "?";
}

/// Parses a canonical mode name ("run", "sleep", ...).
[[nodiscard]] std::optional<PowerMode> parse_power_mode(std::string_view s);

/// One committed transition, as announced to listeners.
struct ModeTransition {
  PowerMode from = PowerMode::kRun;
  PowerMode to = PowerMode::kRun;
  sim::SimTime at;
  std::string cause;
};

/// PowerModeManager tunables (namespace scope: a nested struct's default
/// member initializers could not feed the constructor's `= {}` default).
struct PowerModeManagerConfig {
  PowerMode initial = PowerMode::kRun;
  /// Commit delay of a granted transition (mode-change housekeeping:
  /// clock re-program, rail settle). The two-phase window the
  /// transition-hang supervision watches.
  sim::Duration transition_latency = sim::Duration::millis(2);
  /// Bus signal carrying the current mode as its enum index.
  std::string signal = "mode.power";
};

class PowerModeManager {
 public:
  /// A guard may veto a requested transition (writes the veto reason).
  using Guard = std::function<bool(PowerMode from, PowerMode to,
                                   std::string& veto_reason)>;
  using Listener = std::function<void(const ModeTransition&)>;
  using Config = PowerModeManagerConfig;

  PowerModeManager(sim::Engine& engine, rte::SignalBus& bus,
                   Config config = {});

  /// Declares an allowed edge of the mode machine. Undeclared requests
  /// are refused (and counted) — the machine is closed by construction.
  void allow(PowerMode from, PowerMode to);

  /// Requests a guarded transition. Returns true when the request was
  /// accepted (commit happens transition_latency later); false when a
  /// guard, an undeclared edge, an injection or an in-flight transition
  /// refused it.
  bool request(PowerMode to, std::string cause);

  // --- state ---------------------------------------------------------------
  [[nodiscard]] PowerMode current() const { return current_; }
  [[nodiscard]] sim::SimTime entered_at() const { return entered_at_; }
  [[nodiscard]] sim::Duration dwell(sim::SimTime now) const {
    return now - entered_at_;
  }
  [[nodiscard]] bool transition_pending() const { return pending_.has_value(); }
  [[nodiscard]] PowerMode pending_target() const {
    return pending_ ? pending_->to : current_;
  }
  [[nodiscard]] sim::SimTime pending_since() const { return pending_since_; }
  [[nodiscard]] const std::string& last_cause() const { return last_cause_; }
  [[nodiscard]] std::uint64_t transitions() const { return transitions_; }
  [[nodiscard]] std::uint64_t refusals() const { return refusals_; }
  /// Refusals since the last committed transition (the sleep-refusal
  /// supervision input; resets on every commit).
  [[nodiscard]] std::uint32_t consecutive_refusals() const {
    return consecutive_refusals_;
  }

  void add_guard(Guard guard) { guards_.push_back(std::move(guard)); }
  void add_listener(Listener listener) {
    listeners_.push_back(std::move(listener));
  }

  /// Re-seeds the machine from a persisted mode (NVM boot path): no
  /// guard, no latency, no transition count — the node *is* in that mode.
  void reseed(PowerMode mode, sim::SimTime now);

  // --- fault-injection surface ----------------------------------------------
  /// A granted transition never commits (the machine hangs in-flight).
  void set_transition_hang(bool hang) { hang_ = hang; }
  /// Every request is vetoed (e.g. a sleep-refusing peripheral driver).
  void set_refuse_all(bool refuse) { refuse_all_ = refuse; }

 private:
  sim::Engine& engine_;
  rte::SignalBus& bus_;
  Config config_;
  PowerMode current_;
  sim::SimTime entered_at_;
  std::optional<ModeTransition> pending_;
  sim::SimTime pending_since_;
  std::uint64_t pending_token_ = 0;  // invalidates stale commit events
  std::string last_cause_ = "boot";
  std::uint64_t transitions_ = 0;
  std::uint64_t refusals_ = 0;
  std::uint32_t consecutive_refusals_ = 0;
  bool hang_ = false;
  bool refuse_all_ = false;
  std::vector<std::pair<PowerMode, PowerMode>> edges_;
  std::vector<Guard> guards_;
  std::vector<Listener> listeners_;

  [[nodiscard]] bool edge_allowed(PowerMode from, PowerMode to) const;
  void refuse(PowerMode to, const std::string& cause,
              const std::string& reason);
  void commit(std::uint64_t token);
  void publish(sim::SimTime now);
};

}  // namespace easis::mode
