// Mode Supervision Unit: mode-dependent supervision binding + supervision
// of the mode machine itself.
//
// Two jobs, one unit (the CMU/RSU/ESU/CSU pattern recast for power modes):
//
//   1. *Binding.* Every bound runnable carries a base (Run-mode) fault
//      hypothesis. On each committed transition the unit rebinds the
//      hypothesis through the active policy's `[mode.<name>]` overlay:
//      HBM periods scale, tolerances relax, and — the new dimension — a
//      mode whose contract is silence disarms aliveness entirely and
//      inverts the arrival check into a silence guard (max_arrivals =
//      silent_max_arrivals), so a heartbeat *during* deep sleep is the
//      error. Rebinds start fresh periods, so a legitimate switch
//      mid-window never raises a false alarm. Check rules gate on the
//      overlay's checks_enabled. The applied overlay is hash-latched
//      (policy::overlay_hash24) for diagnostic verification.
//
//   2. *Supervision.* The mode machine is itself a supervised entity
//      (virtual runnable id 2300): overstayed dwell (stuck-in-sleep,
//      wake-storm overrun, flash-write overrun), hung transitions
//      (granted but never committed past the overlay's deadline),
//      repeated refusals (sleep-refusal) and heartbeats during contracted
//      silence all report ErrorType::kPowerMode through the watchdog's
//      external-error path, so TSI thresholds and FMF treatment apply
//      unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mode/power_mode.hpp"
#include "policy/check_engine.hpp"
#include "policy/policy.hpp"
#include "wdg/watchdog.hpp"

namespace easis::mode {

/// Virtual-runnable id range of the mode unit (2000s = RSU, 2100s = ESU,
/// 2200s = check rules, 2300s = mode supervision).
inline constexpr std::uint64_t kModeRunnableBase = 2300;

/// ModeSupervisionUnit tunables (namespace scope: a nested struct's
/// default member initializers could not feed the constructor's `= {}`
/// default).
struct ModeSupervisionConfig {
  /// Consecutive refused requests before the machine counts as
  /// sleep-refusing (reported once per further refusal).
  std::uint32_t refusal_limit = 3;
};

class ModeSupervisionUnit {
 public:
  using Config = ModeSupervisionConfig;

  /// Faults are accounted to (task, application) like the CSU rules.
  ModeSupervisionUnit(PowerModeManager& manager,
                      wdg::SoftwareWatchdog& watchdog, TaskId task,
                      ApplicationId application, Config config = {});

  /// Installs/replaces the active policy and re-applies the current
  /// mode's overlay immediately (runtime PolicySet switching).
  void set_policy(std::shared_ptr<const policy::PolicySet> policy,
                  sim::SimTime now);

  /// Binds a runnable: `base` is its Run-mode hypothesis (the runnable
  /// must already be registered with the watchdog).
  void bind(const wdg::RunnableMonitor& base);

  /// Check rules gated by the overlay's checks_enabled flag.
  void attach_check_unit(policy::CheckSupervisionUnit* unit) {
    check_unit_ = unit;
  }

  /// Periodic supervision; call every watchdog check period.
  void cycle(sim::SimTime now);

  // --- introspection -------------------------------------------------------
  [[nodiscard]] RunnableId runnable() const { return runnable_; }
  /// Overlay hash latched at the last binding (0 = base policy, no
  /// overlay declared for the current mode).
  [[nodiscard]] std::uint32_t active_overlay_hash24() const {
    return overlay_hash24_;
  }
  /// True while the current mode contracts silence (aliveness disarmed).
  [[nodiscard]] bool silence_contracted() const {
    return silence_contracted_;
  }
  [[nodiscard]] std::uint64_t errors_reported() const { return errors_; }
  [[nodiscard]] std::uint64_t rebinds() const { return rebinds_; }
  [[nodiscard]] std::size_t bound_count() const { return bindings_.size(); }

 private:
  PowerModeManager& manager_;
  wdg::SoftwareWatchdog& watchdog_;
  TaskId task_;
  ApplicationId application_;
  Config config_;
  RunnableId runnable_;
  std::shared_ptr<const policy::PolicySet> policy_;
  std::vector<wdg::RunnableMonitor> bindings_;
  policy::CheckSupervisionUnit* check_unit_ = nullptr;
  std::uint32_t overlay_hash24_ = 0;
  bool silence_contracted_ = false;
  double applied_deadline_scale_ = 1.0;
  std::uint64_t errors_ = 0;
  std::uint64_t rebinds_ = 0;
  std::uint32_t refusals_reported_ = 0;
  bool reentrant_ = false;

  [[nodiscard]] const policy::ModeOverlay* overlay_of(PowerMode mode) const;
  void apply(PowerMode mode, sim::SimTime now);
  void rebind_one(const wdg::RunnableMonitor& base,
                  const policy::ModeOverlay* overlay);
  void report(sim::SimTime now, std::string detail);
  void on_watchdog_error(const wdg::ErrorReport& error);
};

}  // namespace easis::mode
