#include "mode/supervision.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "telemetry/event_bus.hpp"

namespace easis::mode {

namespace {

std::uint32_t scale_cycles(std::uint32_t cycles, double scale) {
  const double scaled = std::round(static_cast<double>(cycles) * scale);
  return scaled < 1.0 ? 1u : static_cast<std::uint32_t>(scaled);
}

}  // namespace

ModeSupervisionUnit::ModeSupervisionUnit(PowerModeManager& manager,
                                         wdg::SoftwareWatchdog& watchdog,
                                         TaskId task,
                                         ApplicationId application,
                                         Config config)
    : manager_(manager),
      watchdog_(watchdog),
      task_(task),
      application_(application),
      config_(config),
      runnable_(RunnableId{static_cast<std::uint32_t>(kModeRunnableBase)}) {
  wdg::RunnableMonitor monitor;
  monitor.runnable = runnable_;
  monitor.task = task_;
  monitor.application = application_;
  monitor.name = "mode:machine";
  monitor.monitor_aliveness = false;
  monitor.monitor_arrival_rate = false;
  monitor.program_flow = false;
  watchdog_.add_runnable(monitor);

  manager_.add_listener([this](const ModeTransition& transition) {
    // Binding happens at commit time: the new mode's contract starts with
    // fresh monitoring periods the moment the mode is actually entered.
    apply(transition.to, transition.at);
  });
  watchdog_.add_error_listener([this](const wdg::ErrorReport& error) {
    on_watchdog_error(error);
  });
}

void ModeSupervisionUnit::set_policy(
    std::shared_ptr<const policy::PolicySet> policy, sim::SimTime now) {
  policy_ = std::move(policy);
  apply(manager_.current(), now);
}

void ModeSupervisionUnit::bind(const wdg::RunnableMonitor& base) {
  bindings_.push_back(base);
  rebind_one(bindings_.back(), overlay_of(manager_.current()));
}

const policy::ModeOverlay* ModeSupervisionUnit::overlay_of(
    PowerMode mode) const {
  if (!policy_) return nullptr;
  return policy::find_mode(*policy_, to_string(mode));
}

void ModeSupervisionUnit::rebind_one(const wdg::RunnableMonitor& base,
                                     const policy::ModeOverlay* overlay) {
  wdg::RunnableMonitor bound = base;
  if (overlay != nullptr) {
    bound.aliveness_cycles =
        scale_cycles(base.aliveness_cycles, overlay->hbm_scale);
    bound.arrival_cycles =
        scale_cycles(base.arrival_cycles, overlay->hbm_scale);
    if (overlay->aliveness_armed) {
      bound.min_heartbeats =
          base.min_heartbeats > overlay->aliveness_tolerance
              ? base.min_heartbeats - overlay->aliveness_tolerance
              : 0;
      bound.max_arrivals = base.max_arrivals + overlay->arrival_tolerance;
    } else {
      // Contracted silence: aliveness off, arrival check inverted into a
      // silence guard — any heartbeat beyond silent_max_arrivals per
      // window is a contract violation.
      bound.monitor_aliveness = false;
      bound.monitor_arrival_rate = true;
      bound.max_arrivals = overlay->silent_max_arrivals;
    }
  }
  watchdog_.rebind_hypothesis(bound);
}

void ModeSupervisionUnit::apply(PowerMode target, sim::SimTime now) {
  const policy::ModeOverlay* overlay = overlay_of(target);
  for (const wdg::RunnableMonitor& base : bindings_) {
    rebind_one(base, overlay);
  }
  ++rebinds_;
  silence_contracted_ = overlay != nullptr && !overlay->aliveness_armed;
  overlay_hash24_ = overlay != nullptr ? policy::overlay_hash24(*overlay) : 0;
  refusals_reported_ = 0;
  if (check_unit_ != nullptr) {
    check_unit_->set_enabled(overlay == nullptr || overlay->checks_enabled);
  }
  const double deadline_scale =
      overlay != nullptr ? overlay->deadline_scale : 1.0;
  if (deadline_scale != applied_deadline_scale_) {
    watchdog_.scale_deadline_windows(deadline_scale /
                                     applied_deadline_scale_);
    applied_deadline_scale_ = deadline_scale;
  }
  if (telemetry::enabled()) {
    std::ostringstream detail;
    detail << to_string(target) << " overlay=" << overlay_hash24_
           << (silence_contracted_ ? " silence" : " armed");
    telemetry::Event event;
    event.time = now;
    event.component = telemetry::Component::kModeUnit;
    event.kind = telemetry::EventKind::kModeOverlayApplied;
    event.runnable = runnable_;
    event.task = task_;
    event.application = application_;
    event.detail = detail.str();
    telemetry::emit(std::move(event));
  }
}

void ModeSupervisionUnit::report(sim::SimTime now, std::string detail) {
  ++errors_;
  wdg::ErrorReport error;
  error.runnable = runnable_;
  error.task = task_;
  error.application = application_;
  error.type = wdg::ErrorType::kPowerMode;
  error.time = now;
  error.detail = std::move(detail);
  reentrant_ = true;
  watchdog_.report_external_error(std::move(error));
  reentrant_ = false;
}

void ModeSupervisionUnit::on_watchdog_error(const wdg::ErrorReport& error) {
  // Silence-guard collaboration (the Figure 6 pattern): an arrival-rate
  // error on a mode-bound runnable while silence is contracted *is* a
  // power-mode contract violation — re-report it as such so the fault
  // memory records the true class.
  if (reentrant_ || !silence_contracted_) return;
  if (error.type != wdg::ErrorType::kArrivalRate) return;
  const bool bound =
      std::any_of(bindings_.begin(), bindings_.end(),
                  [&error](const wdg::RunnableMonitor& base) {
                    return base.runnable == error.runnable;
                  });
  if (!bound) return;
  std::ostringstream detail;
  detail << "heartbeat during contracted silence (mode "
         << to_string(manager_.current()) << ", runnable "
         << error.runnable.value() << ")";
  report(error.time, detail.str());
}

void ModeSupervisionUnit::cycle(sim::SimTime now) {
  const policy::ModeOverlay* overlay = overlay_of(manager_.current());
  // Overstayed dwell: stuck-in-sleep, wake-storm overrun, flash-write
  // overrun — one rule, three fault classes, parameterised per mode.
  if (overlay != nullptr && overlay->max_dwell > sim::Duration::zero() &&
      !manager_.transition_pending() &&
      manager_.dwell(now) > overlay->max_dwell) {
    std::ostringstream detail;
    detail << "mode " << to_string(manager_.current()) << " overstayed: dwell "
           << manager_.dwell(now).as_micros() / 1000 << "ms > max "
           << overlay->max_dwell.as_micros() / 1000 << "ms";
    report(now, detail.str());
  }
  // Hung transition: granted but never committed inside the deadline of
  // the mode being *left*.
  if (manager_.transition_pending()) {
    const sim::Duration deadline =
        overlay != nullptr ? overlay->transition_deadline
                           : sim::Duration::millis(50);
    const sim::Duration pending_for = now - manager_.pending_since();
    if (pending_for > deadline) {
      std::ostringstream detail;
      detail << "transition " << to_string(manager_.current()) << "->"
             << to_string(manager_.pending_target()) << " hung for "
             << pending_for.as_micros() / 1000 << "ms (deadline "
             << deadline.as_micros() / 1000 << "ms)";
      report(now, detail.str());
    }
  }
  // Sleep refusal: the machine keeps vetoing commanded transitions.
  if (config_.refusal_limit > 0 &&
      manager_.consecutive_refusals() >=
          config_.refusal_limit + refusals_reported_) {
    ++refusals_reported_;
    std::ostringstream detail;
    detail << manager_.consecutive_refusals()
           << " consecutive refused transitions in mode "
           << to_string(manager_.current()) << " (limit "
           << config_.refusal_limit << ")";
    report(now, detail.str());
  }
}

}  // namespace easis::mode
