#include "mode/power_mode.hpp"

#include "telemetry/event_bus.hpp"

namespace easis::mode {

std::optional<PowerMode> parse_power_mode(std::string_view s) {
  for (std::size_t i = 0; i < kPowerModeCount; ++i) {
    const auto mode = static_cast<PowerMode>(i);
    if (s == to_string(mode)) return mode;
  }
  return std::nullopt;
}

namespace {

void emit_mode_event(telemetry::EventKind kind, sim::SimTime now,
                     std::string detail) {
  if (!telemetry::enabled()) return;
  telemetry::Event event;
  event.time = now;
  event.component = telemetry::Component::kModeUnit;
  event.kind = kind;
  event.detail = std::move(detail);
  telemetry::emit(std::move(event));
}

}  // namespace

PowerModeManager::PowerModeManager(sim::Engine& engine, rte::SignalBus& bus,
                                   Config config)
    : engine_(engine),
      bus_(bus),
      config_(config),
      current_(config.initial),
      entered_at_(engine.now()) {
  publish(engine.now());
}

void PowerModeManager::allow(PowerMode from, PowerMode to) {
  edges_.emplace_back(from, to);
}

bool PowerModeManager::edge_allowed(PowerMode from, PowerMode to) const {
  for (const auto& [f, t] : edges_) {
    if (f == from && t == to) return true;
  }
  return false;
}

void PowerModeManager::refuse(PowerMode to, const std::string& cause,
                              const std::string& reason) {
  ++refusals_;
  ++consecutive_refusals_;
  emit_mode_event(telemetry::EventKind::kModeTransitionRefused, engine_.now(),
                  std::string(to_string(current_)) + "->" +
                      std::string(to_string(to)) + " cause=" + cause +
                      " veto=" + reason);
}

bool PowerModeManager::request(PowerMode to, std::string cause) {
  const sim::SimTime now = engine_.now();
  if (pending_) {
    refuse(to, cause, "transition in flight");
    return false;
  }
  if (to == current_) {
    refuse(to, cause, "already in mode");
    return false;
  }
  if (!edge_allowed(current_, to)) {
    refuse(to, cause, "undeclared edge");
    return false;
  }
  if (refuse_all_) {
    refuse(to, cause, "refused by driver");
    return false;
  }
  for (const Guard& guard : guards_) {
    std::string veto;
    if (!guard(current_, to, veto)) {
      refuse(to, cause, veto.empty() ? "guard veto" : veto);
      return false;
    }
  }
  ModeTransition transition;
  transition.from = current_;
  transition.to = to;
  transition.cause = std::move(cause);
  pending_ = std::move(transition);
  pending_since_ = now;
  const std::uint64_t token = ++pending_token_;
  engine_.schedule_in(config_.transition_latency,
                      [this, token] { commit(token); });
  return true;
}

void PowerModeManager::commit(std::uint64_t token) {
  // A stale commit (superseded by reseed/reset) or an injected hang: the
  // transition stays pending for the supervision unit to flag.
  if (!pending_ || token != pending_token_ || hang_) return;
  const sim::SimTime now = engine_.now();
  ModeTransition transition = std::move(*pending_);
  pending_.reset();
  transition.at = now;
  current_ = transition.to;
  entered_at_ = now;
  last_cause_ = transition.cause;
  ++transitions_;
  consecutive_refusals_ = 0;
  publish(now);
  emit_mode_event(telemetry::EventKind::kModeTransition, now,
                  std::string(to_string(transition.from)) + "->" +
                      std::string(to_string(transition.to)) +
                      " cause=" + transition.cause);
  for (const Listener& listener : listeners_) listener(transition);
}

void PowerModeManager::reseed(PowerMode target, sim::SimTime now) {
  ++pending_token_;  // invalidate any in-flight commit
  pending_.reset();
  const PowerMode from = current_;
  current_ = target;
  entered_at_ = now;
  last_cause_ = "nvm_reseed";
  consecutive_refusals_ = 0;
  publish(now);
  emit_mode_event(telemetry::EventKind::kModeTransition, now,
                  std::string(to_string(from)) + "->" +
                      std::string(to_string(target)) + " cause=nvm_reseed");
  ModeTransition transition{from, target, now, "nvm_reseed"};
  for (const Listener& listener : listeners_) listener(transition);
}

void PowerModeManager::publish(sim::SimTime now) {
  bus_.publish(config_.signal, static_cast<double>(current_), now);
}

}  // namespace easis::mode
