// OSEK-like kernel simulated on the discrete-event engine.
//
// Implements the OS services the EASIS platform relies on: fixed-priority
// preemptive scheduling with FIFO order per priority, basic/extended tasks,
// multiple activation requests, OSEK events, resources with immediate
// priority ceiling, counters + alarms, and the OSEK hook routines. Task
// execution consumes modelled CPU budgets (see job.hpp), so timing faults
// (blocking, starvation, excessive dispatch) arise with real scheduling
// semantics.
//
// Deviations from OSEK/VDX, documented:
//  - WaitEvent is expressed as a per-segment wait mask; the satisfied bits
//    are cleared automatically when the task resumes (OSEK requires an
//    explicit ClearEvent).
//  - TerminateTask is implicit at job end; `kill_task` additionally allows
//    forcible termination of another task (needed by the Fault Management
//    Framework's application restart treatment, as in AUTOSAR
//    TerminateApplication).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "os/job.hpp"
#include "os/os_types.hpp"
#include "os/resources.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "util/ids.hpp"
#include "util/result.hpp"

namespace easis::os {

struct TaskConfig {
  std::string name;
  Priority priority = 0;
  bool preemptable = true;
  /// Extended tasks may wait on events and cannot queue activations.
  bool extended = false;
  /// Additional activation requests that may queue while the task is not
  /// suspended (basic tasks only).
  std::uint32_t max_pending_activations = 0;
  bool auto_start = false;
};

struct CounterConfig {
  std::string name;
  /// Tick length for hardware-driven counters; ignored for software ones.
  sim::Duration tick = sim::Duration::millis(1);
  std::uint64_t max_allowed_value = 0xFFFF;
  /// Hardware counters advance with simulation time; software counters
  /// advance only via increment_counter().
  bool hardware_driven = true;
};

/// What an alarm does when it expires.
struct AlarmActionActivateTask {
  TaskId task;
};
struct AlarmActionSetEvent {
  TaskId task;
  EventMask mask;
};
struct AlarmActionCallback {
  std::function<void()> callback;
};
using AlarmAction =
    std::variant<AlarmActionActivateTask, AlarmActionSetEvent,
                 AlarmActionCallback>;

/// Passive observer of scheduling events; monitors (software watchdog
/// baselines, tracing) subscribe without perturbing the kernel.
class KernelObserver {
 public:
  virtual ~KernelObserver() = default;
  virtual void on_task_activated(TaskId, sim::SimTime) {}
  /// Task received the CPU (first dispatch of a job or resume).
  virtual void on_task_dispatched(TaskId, sim::SimTime) {}
  virtual void on_task_preempted(TaskId, sim::SimTime) {}
  virtual void on_task_waiting(TaskId, sim::SimTime) {}
  virtual void on_task_released(TaskId, sim::SimTime) {}
  virtual void on_task_terminated(TaskId, sim::SimTime) {}
  virtual void on_segment_start(TaskId, RunnableId, sim::SimTime) {}
  virtual void on_segment_complete(TaskId, RunnableId, sim::SimTime) {}
  virtual void on_service_error(Status, std::string_view /*api*/,
                                sim::SimTime) {}
};

class Kernel {
 public:
  explicit Kernel(sim::Engine& engine);
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // --- configuration (before start) --------------------------------------
  TaskId create_task(TaskConfig config);
  void set_job_factory(TaskId task, JobFactory factory);
  ResourceId create_resource(std::string name, Priority ceiling);
  CounterId create_counter(CounterConfig config);
  AlarmId create_alarm(CounterId counter, AlarmAction action,
                       std::string name = {});

  /// Activates auto-start tasks and begins driving hardware counters.
  void start();
  [[nodiscard]] bool started() const { return started_; }

  /// ECU software reset: stops everything, clears all dynamic state
  /// (activations, alarms, counters, events, resources) and bumps the
  /// reset epoch. Static configuration (tasks, resources, counters,
  /// alarms) survives; call start() to boot again.
  void software_reset();
  [[nodiscard]] std::uint32_t reset_count() const { return reset_epoch_; }

  // --- OSEK task services -------------------------------------------------
  Status activate_task(TaskId task);
  /// Forcibly terminates a task in any state (see header comment).
  Status kill_task(TaskId task);
  /// ChainTask: terminates the running task's job and activates `next`.
  Status chain_task(TaskId next);
  /// Explicit scheduling point for non-preemptable tasks.
  Status schedule();
  [[nodiscard]] TaskState task_state(TaskId task) const;
  [[nodiscard]] std::optional<TaskId> running_task() const;

  // --- OSEK event services ------------------------------------------------
  Status set_event(TaskId task, EventMask mask);
  Status clear_event(TaskId task, EventMask mask);
  [[nodiscard]] EventMask get_event(TaskId task) const;

  // --- OSEK resource services (immediate priority ceiling) ----------------
  Status get_resource(ResourceId resource);
  Status release_resource(ResourceId resource);
  [[nodiscard]] bool resource_held(ResourceId resource) const;

  // --- OSEK counters and alarms -------------------------------------------
  Status increment_counter(CounterId counter);
  [[nodiscard]] std::uint64_t counter_ticks(CounterId counter) const;
  Status set_rel_alarm(AlarmId alarm, std::uint64_t offset_ticks,
                       std::uint64_t cycle_ticks);
  Status cancel_alarm(AlarmId alarm);
  [[nodiscard]] bool alarm_armed(AlarmId alarm) const;
  /// OSEK GetAlarm: ticks until the alarm expires (kNoFunc if not armed).
  util::Result<std::uint64_t, Status> alarm_remaining_ticks(
      AlarmId alarm) const;

  // --- category-2 interrupt service routines --------------------------------
  /// Registers an ISR with a modelled handler cost. Internally an ISR is a
  /// task above every application priority (OSEK category 2: may call
  /// ActivateTask/SetEvent, scheduled on exit).
  TaskId create_isr(std::string name, sim::Duration cost,
                    std::function<void()> handler);
  /// Fires the ISR (hardware interrupt). Pending triggers queue (up to 8).
  Status trigger_isr(TaskId isr);
  /// Priority level above which ISR tasks live.
  static constexpr Priority kIsrPriorityBase = 1'000'000;

  // --- hooks and observers --------------------------------------------------
  void set_pre_task_hook(std::function<void(TaskId)> hook);
  void set_post_task_hook(std::function<void(TaskId)> hook);
  void set_error_hook(std::function<void(Status, std::string_view)> hook);
  void add_observer(KernelObserver* observer);
  void remove_observer(KernelObserver* observer);

  // --- modelled resource accounting (resource supervision extension) --------
  /// Installs the task's declarative budget (zero fields = unbudgeted).
  /// Budgets are static configuration and survive software_reset().
  void set_task_resource_budget(TaskId task, TaskResourceBudget budget);
  [[nodiscard]] const TaskResourceBudget& task_resource_budget(
      TaskId task) const;
  /// Models a heap allocation by `task`. Requests that would exceed the
  /// budget are denied (false) and counted in denied_allocations.
  bool task_alloc(TaskId task, std::uint64_t bytes);
  /// Models a heap free; clamps at zero (double frees are harmless here).
  void task_free(TaskId task, std::uint64_t bytes);
  /// Global handle/descriptor pool shared by every task; zero = unlimited.
  void set_handle_pool_capacity(std::uint32_t capacity);
  [[nodiscard]] std::uint32_t handle_pool_capacity() const {
    return handle_pool_capacity_;
  }
  [[nodiscard]] std::uint32_t handles_in_use() const {
    return handles_in_use_;
  }
  /// Acquires `count` handles for `task`; denied (false) when the task
  /// budget or the global pool would be exceeded.
  bool task_acquire_handles(TaskId task, std::uint32_t count = 1);
  void task_release_handles(TaskId task, std::uint32_t count = 1);
  [[nodiscard]] const TaskResourceUsage& task_resource_usage(
      TaskId task) const;
  /// Releases everything `task` holds and clears its diagnostic counters:
  /// the "restart with pool reclaim" fault treatment.
  void reclaim_task_resources(TaskId task);
  /// Total modelled CPU time consumed by all tasks (including ISRs) since
  /// start/reset, including the in-flight slice of a running segment. The
  /// input of the CPU-load supervision: utilisation over a window is
  /// delta(cpu_busy_time) / delta(wall).
  [[nodiscard]] sim::Duration cpu_busy_time() const;

  // --- introspection --------------------------------------------------------
  [[nodiscard]] const std::string& task_name(TaskId task) const;
  [[nodiscard]] Priority task_priority(TaskId task) const;
  [[nodiscard]] std::size_t task_count() const { return tasks_.size(); }
  /// Virtual CPU time consumed by the current (or last) job of `task`.
  [[nodiscard]] sim::Duration job_consumed(TaskId task) const;
  /// Total virtual CPU time consumed by `task` since start/reset.
  [[nodiscard]] sim::Duration total_consumed(TaskId task) const;
  /// Number of completed jobs since start/reset.
  [[nodiscard]] std::uint64_t jobs_completed(TaskId task) const;
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] sim::SimTime now() const { return engine_.now(); }

 private:
  struct Tcb {
    TaskId self;
    TaskConfig config;
    JobFactory factory;
    TaskState state = TaskState::kSuspended;
    Job job;
    std::size_t segment_index = 0;
    bool segment_entered = false;
    sim::Duration remaining = sim::Duration::zero();
    sim::SimTime segment_started_at;
    sim::EventId completion_event = 0;
    EventMask pending_events = 0;
    EventMask waited_mask = 0;
    std::uint32_t queued_activations = 0;
    std::vector<ResourceId> held_resources;
    sim::Duration job_consumed = sim::Duration::zero();
    sim::Duration total_consumed = sim::Duration::zero();
    std::uint64_t jobs_completed = 0;
    TaskResourceBudget resource_budget;
    TaskResourceUsage resource_usage;
  };

  struct Resource {
    std::string name;
    Priority ceiling = 0;
    TaskId holder;  // invalid when free
  };

  struct Alarm {
    std::string name;
    CounterId counter;
    AlarmAction action;
    bool armed = false;
    std::uint64_t expiry_tick = 0;
    std::uint64_t cycle_ticks = 0;
  };

  struct Counter {
    CounterConfig config;
    std::uint64_t ticks = 0;
    std::vector<AlarmId> alarms;
  };

  /// RAII guard deferring dispatch to the outermost kernel entry.
  class Section {
   public:
    explicit Section(Kernel& k) : kernel_(k) { ++kernel_.section_depth_; }
    ~Section() {
      if (--kernel_.section_depth_ == 0) {
        if (kernel_.pending_dispatch_) kernel_.do_dispatch();
        // Jobs retired while their own segment callbacks were executing
        // are only destroyed here, once every callback frame has unwound.
        kernel_.retired_jobs_.clear();
      }
    }
    Section(const Section&) = delete;
    Section& operator=(const Section&) = delete;

   private:
    Kernel& kernel_;
  };

  sim::Engine& engine_;
  std::vector<std::unique_ptr<Tcb>> tasks_;
  std::vector<Resource> resources_;
  std::vector<Counter> counters_;
  std::vector<Alarm> alarms_;
  // Ready queues: highest priority first, FIFO within a priority.
  std::map<Priority, std::deque<TaskId>, std::greater<Priority>> ready_;
  TaskId running_;
  int section_depth_ = 0;
  bool pending_dispatch_ = false;
  bool yield_requested_ = false;
  /// Jobs whose tasks finished/were killed while a segment callback of
  /// that job might still be on the call stack; destroying them
  /// immediately would free the executing std::function (see Section).
  std::vector<Job> retired_jobs_;
  bool started_ = false;
  std::uint32_t reset_epoch_ = 0;
  std::uint32_t handle_pool_capacity_ = 0;  // zero = unlimited
  std::uint32_t handles_in_use_ = 0;

  std::function<void(TaskId)> pre_task_hook_;
  std::function<void(TaskId)> post_task_hook_;
  std::function<void(Status, std::string_view)> error_hook_;
  std::vector<KernelObserver*> observers_;

  [[nodiscard]] Tcb* tcb(TaskId id);
  [[nodiscard]] const Tcb* tcb(TaskId id) const;
  [[nodiscard]] Priority effective_priority(const Tcb& t) const;
  [[nodiscard]] TaskId id_of(const Tcb& t) const;

  Status fail(Status s, std::string_view api);
  void request_dispatch();
  void do_dispatch();
  [[nodiscard]] TaskId highest_ready() const;
  void enqueue_ready(TaskId id, bool front);
  void remove_from_ready(TaskId id);
  void begin_or_resume_segment(Tcb& t);
  void preempt_running();
  void handle_segment_complete(TaskId id, std::uint32_t epoch);
  /// Advances past the completed segment; blocks, finishes or continues.
  void advance_job(Tcb& t);
  void finish_job(Tcb& t);
  void retire_job(Tcb& t);
  void build_job(Tcb& t);
  void release_all_resources(Tcb& t);
  void drive_counter(CounterId id, std::uint32_t epoch);
  void counter_tick(Counter& counter, CounterId id);
  void fire_alarm(Alarm& alarm);

  template <typename Fn>
  void notify(Fn&& fn) {
    // Copy: observers may unsubscribe from within a callback.
    auto observers = observers_;
    for (auto* o : observers) fn(*o);
  }
};

}  // namespace easis::os
