#include "os/schedule_table.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace easis::os {

ScheduleTable::ScheduleTable(Kernel& kernel, std::string name,
                             sim::Duration round)
    : kernel_(kernel), name_(std::move(name)), round_(round) {
  if (round <= sim::Duration::zero()) {
    throw std::invalid_argument("ScheduleTable: round must be positive");
  }
}

void ScheduleTable::add_expiry_point(ExpiryPoint point) {
  if (running_) {
    throw std::logic_error("ScheduleTable: cannot modify while running");
  }
  if (point.offset < sim::Duration::zero() || point.offset >= round_) {
    throw std::invalid_argument("ScheduleTable: offset outside round");
  }
  points_.push_back(point);
  std::stable_sort(points_.begin(), points_.end(),
                   [](const ExpiryPoint& a, const ExpiryPoint& b) {
                     return a.offset < b.offset;
                   });
}

void ScheduleTable::start(sim::Duration initial_offset) {
  if (running_) throw std::logic_error("ScheduleTable: already running");
  running_ = true;
  ++generation_;
  schedule_round(kernel_.now() + initial_offset, generation_);
}

void ScheduleTable::stop() {
  running_ = false;
  ++generation_;
}

void ScheduleTable::schedule_round(sim::SimTime round_start,
                                   std::uint64_t generation) {
  auto& engine = kernel_.engine();
  for (const ExpiryPoint& point : points_) {
    engine.schedule_at(
        round_start + point.offset,
        [this, task = point.task, generation] {
          if (generation != generation_ || !running_) return;
          kernel_.activate_task(task);
        },
        sim::EventPriority::kKernel);
  }
  engine.schedule_at(
      round_start + round_,
      [this, round_start, generation] {
        if (generation != generation_ || !running_) return;
        ++rounds_;
        schedule_round(round_start + round_, generation);
      },
      sim::EventPriority::kKernel);
}

}  // namespace easis::os
