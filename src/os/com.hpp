// OSEK-COM-style intra-ECU messaging.
//
// Queued and unqueued message objects between tasks, with optional
// receiver notification via OSEK events (the COM notification class).
// Payloads are byte vectors; typed access goes through the codec helpers.
//
//   - Unqueued messages keep the last value (sender overwrites, receiver
//     reads non-destructively) — the RTE's last-is-best semantics at the
//     COM layer.
//   - Queued messages buffer up to `capacity` values FIFO; sending to a
//     full queue returns kLimit and counts an overflow; receiving from an
//     empty queue returns kNoFunc.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "os/kernel.hpp"
#include "util/ids.hpp"

namespace easis::os {

using MessageId = util::StrongId<struct MessageTag>;
using MessagePayload = std::vector<std::uint8_t>;

class ComLayer {
 public:
  explicit ComLayer(Kernel& kernel) : kernel_(kernel) {}
  ComLayer(const ComLayer&) = delete;
  ComLayer& operator=(const ComLayer&) = delete;

  /// Declares an unqueued (last-is-best) message object.
  MessageId create_unqueued(std::string name);
  /// Declares a queued message object with a FIFO depth of `capacity`.
  MessageId create_queued(std::string name, std::size_t capacity);

  /// COM notification: SetEvent(task, mask) on every successful send.
  void set_notification(MessageId message, TaskId task, EventMask mask);

  /// Reception deadline supervision (OSEK-COM monitoring class): a message
  /// is stale when its last successful send is older than `deadline`.
  /// Zero disables. The deadline is armed from the current kernel time so
  /// a message that never arrives also goes stale.
  void set_reception_deadline(MessageId message, sim::Duration deadline);

  /// True if the message's deadline is armed and exceeded at `now`.
  [[nodiscard]] bool stale(MessageId message, sim::SimTime now) const;

  /// Time of the last successful send (nullopt before the first).
  [[nodiscard]] std::optional<sim::SimTime> last_send_at(
      MessageId message) const;

  /// SendMessage. Unqueued: always succeeds (overwrites). Queued: kLimit
  /// when the FIFO is full (the value is lost and counted).
  Status send(MessageId message, MessagePayload payload);

  /// ReceiveMessage. Unqueued: returns the last value (kNoFunc before the
  /// first send), non-destructive. Queued: pops the oldest value, kNoFunc
  /// when empty.
  util::Result<MessagePayload, Status> receive(MessageId message);

  // --- introspection ---------------------------------------------------------
  [[nodiscard]] bool is_queued(MessageId message) const;
  [[nodiscard]] std::size_t pending(MessageId message) const;
  [[nodiscard]] std::uint64_t sends(MessageId message) const;
  [[nodiscard]] std::uint64_t overflows(MessageId message) const;
  [[nodiscard]] const std::string& name(MessageId message) const;
  [[nodiscard]] std::size_t message_count() const { return messages_.size(); }

 private:
  struct Message {
    std::string name;
    bool queued = false;
    std::size_t capacity = 1;
    std::deque<MessagePayload> fifo;   // queued
    std::optional<MessagePayload> last;  // unqueued
    TaskId notify_task;
    EventMask notify_mask = 0;
    std::uint64_t sends = 0;
    std::uint64_t overflows = 0;
    sim::Duration deadline = sim::Duration::zero();
    sim::SimTime deadline_armed_at;
    std::optional<sim::SimTime> last_send_at;
  };

  Kernel& kernel_;
  std::vector<Message> messages_;

  [[nodiscard]] Message* message(MessageId id);
  [[nodiscard]] const Message* message(MessageId id) const;
};

}  // namespace easis::os
