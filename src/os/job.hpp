// Execution-budget job model.
//
// A task activation executes a Job: a sequence of Segments, each with a
// modelled execution cost (virtual CPU time) and functional callbacks.
// One segment per runnable gives exactly the granularity the paper's
// watchdog monitors. The scheduler tracks the remaining budget of the
// running segment, so preemption and blocking happen at microsecond
// resolution while the functional bodies stay plain C++ callables.
#pragma once

#include <functional>
#include <vector>

#include "sim/time.hpp"
#include "util/ids.hpp"
#include "os/os_types.hpp"

namespace easis::os {

struct Segment {
  /// Virtual CPU time this segment consumes.
  sim::Duration cost = sim::Duration::zero();
  /// Runs when the segment first receives the CPU (not on resume).
  std::function<void()> on_start;
  /// Runs when the segment's budget is fully consumed.
  std::function<void()> on_complete;
  /// If nonzero, the task waits for any of these events before the segment
  /// begins (extended tasks only). Satisfied bits are consumed on release.
  EventMask wait_mask = 0;
  /// Which runnable this segment executes (invalid for glue/OS segments).
  RunnableId runnable;
};

using Job = std::vector<Segment>;

/// Builds a fresh job for each task activation. Factories let the RTE
/// compose runnable sequences and let the error injector rewrite them.
using JobFactory = std::function<Job()>;

}  // namespace easis::os
