// Response-time instrumentation.
//
// Records activation -> termination response times per task (including
// queued activations), plus per-task preemption counts. Used by the
// interference ablation bench to quantify the scheduling cost of the
// watchdog service, and handy for validating fault hypotheses.
#pragma once

#include <deque>
#include <unordered_map>

#include "os/kernel.hpp"
#include "util/stats.hpp"

namespace easis::os {

class ResponseTimeObserver : public KernelObserver {
 public:
  explicit ResponseTimeObserver(Kernel& kernel);
  ~ResponseTimeObserver() override;
  ResponseTimeObserver(const ResponseTimeObserver&) = delete;
  ResponseTimeObserver& operator=(const ResponseTimeObserver&) = delete;

  /// Restrict recording to `task` (default: all tasks).
  void watch_only(TaskId task) { only_ = task; }

  [[nodiscard]] const util::Stats* response_times_ms(TaskId task) const;
  [[nodiscard]] std::uint64_t preemptions(TaskId task) const;
  [[nodiscard]] std::uint64_t jobs_observed(TaskId task) const;

  void clear();

  // KernelObserver:
  void on_task_activated(TaskId task, sim::SimTime now) override;
  void on_task_terminated(TaskId task, sim::SimTime now) override;
  void on_task_preempted(TaskId task, sim::SimTime now) override;

 private:
  struct Record {
    std::deque<sim::SimTime> activations;  // FIFO of unfinished jobs
    util::Stats response_ms;
    std::uint64_t preemptions = 0;
    std::uint64_t jobs = 0;
  };

  Kernel& kernel_;
  TaskId only_;
  std::unordered_map<TaskId, Record> records_;

  [[nodiscard]] bool tracked(TaskId task) const {
    return !only_.valid() || task == only_;
  }
};

}  // namespace easis::os
