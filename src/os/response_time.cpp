#include "os/response_time.hpp"

namespace easis::os {

ResponseTimeObserver::ResponseTimeObserver(Kernel& kernel) : kernel_(kernel) {
  kernel_.add_observer(this);
}

ResponseTimeObserver::~ResponseTimeObserver() {
  kernel_.remove_observer(this);
}

void ResponseTimeObserver::on_task_activated(TaskId task, sim::SimTime now) {
  if (!tracked(task)) return;
  records_[task].activations.push_back(now);
}

void ResponseTimeObserver::on_task_terminated(TaskId task, sim::SimTime now) {
  if (!tracked(task)) return;
  Record& record = records_[task];
  if (record.activations.empty()) return;  // forced kill without activation
  const sim::SimTime activated = record.activations.front();
  record.activations.pop_front();
  record.response_ms.add((now - activated).as_millis());
  ++record.jobs;
}

void ResponseTimeObserver::on_task_preempted(TaskId task, sim::SimTime) {
  if (!tracked(task)) return;
  ++records_[task].preemptions;
}

const util::Stats* ResponseTimeObserver::response_times_ms(
    TaskId task) const {
  auto it = records_.find(task);
  if (it == records_.end() || it->second.response_ms.empty()) return nullptr;
  return &it->second.response_ms;
}

std::uint64_t ResponseTimeObserver::preemptions(TaskId task) const {
  auto it = records_.find(task);
  return it == records_.end() ? 0 : it->second.preemptions;
}

std::uint64_t ResponseTimeObserver::jobs_observed(TaskId task) const {
  auto it = records_.find(task);
  return it == records_.end() ? 0 : it->second.jobs;
}

void ResponseTimeObserver::clear() { records_.clear(); }

}  // namespace easis::os
