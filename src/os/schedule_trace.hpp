// Schedule tracing: records which task holds the CPU over time.
//
// Produces per-task busy intervals, utilization figures and an ASCII Gantt
// chart — the validator's visual aid for understanding interference and
// starvation scenarios (and for debugging fault-injection experiments).
#pragma once

#include <ostream>
#include <unordered_map>
#include <vector>

#include "os/kernel.hpp"

namespace easis::os {

class ScheduleTracer : public KernelObserver {
 public:
  struct Slice {
    TaskId task;
    sim::SimTime start;
    sim::SimTime end;
  };

  explicit ScheduleTracer(Kernel& kernel);
  ~ScheduleTracer() override;
  ScheduleTracer(const ScheduleTracer&) = delete;
  ScheduleTracer& operator=(const ScheduleTracer&) = delete;

  [[nodiscard]] const std::vector<Slice>& slices() const { return slices_; }
  [[nodiscard]] sim::Duration busy_time(TaskId task) const;
  /// CPU share of `task` within [t0, t1].
  [[nodiscard]] double utilization(TaskId task, sim::SimTime t0,
                                   sim::SimTime t1) const;
  /// Total CPU share of all tasks within [t0, t1].
  [[nodiscard]] double total_utilization(sim::SimTime t0,
                                         sim::SimTime t1) const;

  /// ASCII Gantt chart: one row per traced task, '#' where it runs.
  void render_gantt(std::ostream& out, sim::SimTime t0, sim::SimTime t1,
                    int width = 72) const;

  void clear();

  // KernelObserver:
  void on_task_dispatched(TaskId task, sim::SimTime now) override;
  void on_task_preempted(TaskId task, sim::SimTime now) override;
  void on_task_waiting(TaskId task, sim::SimTime now) override;
  void on_task_terminated(TaskId task, sim::SimTime now) override;

 private:
  Kernel& kernel_;
  std::vector<Slice> slices_;
  TaskId open_task_;
  sim::SimTime open_since_;

  void close_slice(TaskId task, sim::SimTime now);
};

}  // namespace easis::os
