#include "os/schedule_trace.hpp"

#include <algorithm>
#include <iomanip>
#include <map>

namespace easis::os {

ScheduleTracer::ScheduleTracer(Kernel& kernel) : kernel_(kernel) {
  kernel_.add_observer(this);
}

ScheduleTracer::~ScheduleTracer() { kernel_.remove_observer(this); }

void ScheduleTracer::on_task_dispatched(TaskId task, sim::SimTime now) {
  open_task_ = task;
  open_since_ = now;
}

void ScheduleTracer::close_slice(TaskId task, sim::SimTime now) {
  if (open_task_ != task) return;
  if (now > open_since_) {
    slices_.push_back(Slice{task, open_since_, now});
  }
  open_task_ = TaskId{};
}

void ScheduleTracer::on_task_preempted(TaskId task, sim::SimTime now) {
  close_slice(task, now);
}
void ScheduleTracer::on_task_waiting(TaskId task, sim::SimTime now) {
  close_slice(task, now);
}
void ScheduleTracer::on_task_terminated(TaskId task, sim::SimTime now) {
  close_slice(task, now);
}

sim::Duration ScheduleTracer::busy_time(TaskId task) const {
  sim::Duration total = sim::Duration::zero();
  for (const Slice& s : slices_) {
    if (s.task == task) total += s.end - s.start;
  }
  return total;
}

double ScheduleTracer::utilization(TaskId task, sim::SimTime t0,
                                   sim::SimTime t1) const {
  if (t1 <= t0) return 0.0;
  std::int64_t busy = 0;
  for (const Slice& s : slices_) {
    if (s.task != task) continue;
    const std::int64_t lo = std::max(s.start.as_micros(), t0.as_micros());
    const std::int64_t hi = std::min(s.end.as_micros(), t1.as_micros());
    if (hi > lo) busy += hi - lo;
  }
  return static_cast<double>(busy) /
         static_cast<double>((t1 - t0).as_micros());
}

double ScheduleTracer::total_utilization(sim::SimTime t0,
                                         sim::SimTime t1) const {
  if (t1 <= t0) return 0.0;
  std::int64_t busy = 0;
  for (const Slice& s : slices_) {
    const std::int64_t lo = std::max(s.start.as_micros(), t0.as_micros());
    const std::int64_t hi = std::min(s.end.as_micros(), t1.as_micros());
    if (hi > lo) busy += hi - lo;
  }
  return static_cast<double>(busy) /
         static_cast<double>((t1 - t0).as_micros());
}

void ScheduleTracer::render_gantt(std::ostream& out, sim::SimTime t0,
                                  sim::SimTime t1, int width) const {
  if (t1 <= t0 || width < 2) return;
  // Stable row order: by task id.
  std::map<TaskId, std::string> rows;
  for (const Slice& s : slices_) {
    rows.try_emplace(s.task,
                     std::string(static_cast<std::size_t>(width), '.'));
  }
  const double span = static_cast<double>((t1 - t0).as_micros());
  for (const Slice& s : slices_) {
    auto& row = rows.at(s.task);
    const double lo = static_cast<double>(
        std::max(s.start.as_micros(), t0.as_micros()) - t0.as_micros());
    const double hi = static_cast<double>(
        std::min(s.end.as_micros(), t1.as_micros()) - t0.as_micros());
    if (hi <= lo) continue;
    int first = static_cast<int>(lo / span * width);
    int last = static_cast<int>(hi / span * width);
    first = std::clamp(first, 0, width - 1);
    last = std::clamp(last, first, width - 1);
    for (int c = first; c <= last; ++c) {
      row[static_cast<std::size_t>(c)] = '#';
    }
  }
  std::size_t name_width = 8;
  for (const auto& [task, _] : rows) {
    name_width = std::max(name_width, kernel_.task_name(task).size());
  }
  for (const auto& [task, row] : rows) {
    out << std::left << std::setw(static_cast<int>(name_width + 1))
        << kernel_.task_name(task) << '|' << row << "|\n";
  }
  out << std::setw(static_cast<int>(name_width + 1)) << ' ' << " t="
      << t0.as_millis() << "ms .. " << t1.as_millis() << "ms\n";
}

void ScheduleTracer::clear() {
  slices_.clear();
  open_task_ = TaskId{};
}

}  // namespace easis::os
