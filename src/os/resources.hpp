// Modelled per-task resource accounting (resource supervision extension).
//
// Real dependable nodes die from slow resource exhaustion long before they
// miss a heartbeat: heap leaks, descriptor leaks, queue build-up, creeping
// CPU load (watchdogd supervises exactly these as first-class inputs). The
// simulated kernel therefore models the resources the Resource Supervision
// Unit watches: each task carries a declarative budget and a usage record;
// allocations exceeding the budget (or the global handle pool) are denied
// and counted, never silently granted — exhaustion must be observable, not
// fatal, so the dependability chain gets a chance to treat it.
#pragma once

#include <cstdint>

namespace easis::os {

/// Declarative per-task budget; zero means the dimension is unbudgeted
/// (requests always granted, usage still accounted).
struct TaskResourceBudget {
  /// Modelled heap budget in bytes.
  std::uint64_t memory_bytes = 0;
  /// Handles/descriptors this task may hold at once.
  std::uint32_t handles = 0;
};

/// Live usage against the budget. Peaks and denial counters survive until
/// the next reclaim or ECU reset (they are diagnostic state).
struct TaskResourceUsage {
  std::uint64_t memory_bytes = 0;
  std::uint64_t memory_peak = 0;
  std::uint32_t handles = 0;
  std::uint32_t handles_peak = 0;
  /// Allocation requests denied because they would exceed the budget.
  std::uint64_t denied_allocations = 0;
  /// Handle requests denied (task budget or global pool exhausted).
  std::uint64_t denied_handles = 0;
};

}  // namespace easis::os
