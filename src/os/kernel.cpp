#include "os/kernel.hpp"

#include <algorithm>
#include <cassert>

#include "profile/profiler.hpp"
#include "util/logging.hpp"

namespace easis::os {

namespace {
constexpr std::string_view kLog = "os";
}

Kernel::Kernel(sim::Engine& engine) : engine_(engine) {}

// --- configuration ----------------------------------------------------------

TaskId Kernel::create_task(TaskConfig config) {
  auto t = std::make_unique<Tcb>();
  t->self = TaskId(static_cast<TaskId::underlying_type>(tasks_.size()));
  t->config = std::move(config);
  tasks_.push_back(std::move(t));
  return tasks_.back()->self;
}

void Kernel::set_job_factory(TaskId task, JobFactory factory) {
  Tcb* t = tcb(task);
  assert(t != nullptr);
  t->factory = std::move(factory);
}

ResourceId Kernel::create_resource(std::string name, Priority ceiling) {
  resources_.push_back(Resource{std::move(name), ceiling, TaskId{}});
  return ResourceId(
      static_cast<ResourceId::underlying_type>(resources_.size() - 1));
}

CounterId Kernel::create_counter(CounterConfig config) {
  counters_.push_back(Counter{std::move(config), 0, {}});
  const auto id = CounterId(
      static_cast<CounterId::underlying_type>(counters_.size() - 1));
  // Counters created on a running system start ticking immediately.
  if (started_ && counters_.back().config.hardware_driven) {
    drive_counter(id, reset_epoch_);
  }
  return id;
}

AlarmId Kernel::create_alarm(CounterId counter, AlarmAction action,
                             std::string name) {
  assert(counter.value() < counters_.size());
  alarms_.push_back(Alarm{std::move(name), counter, std::move(action)});
  const auto id =
      AlarmId(static_cast<AlarmId::underlying_type>(alarms_.size() - 1));
  counters_[counter.value()].alarms.push_back(id);
  return id;
}

void Kernel::start() {
  assert(!started_);
  started_ = true;
  Section section(*this);
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i]->config.auto_start) {
      activate_task(TaskId(static_cast<TaskId::underlying_type>(i)));
    }
  }
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (counters_[i].config.hardware_driven) {
      drive_counter(CounterId(static_cast<CounterId::underlying_type>(i)),
                    reset_epoch_);
    }
  }
}

void Kernel::software_reset() {
  ++reset_epoch_;  // invalidates pending completion events and counter ticks
  started_ = false;
  running_ = TaskId{};
  ready_.clear();
  pending_dispatch_ = false;
  yield_requested_ = false;
  for (auto& t : tasks_) {
    if (t->completion_event != 0) engine_.cancel(t->completion_event);
    t->state = TaskState::kSuspended;
    retire_job(*t);
    t->remaining = sim::Duration::zero();
    t->completion_event = 0;
    t->pending_events = 0;
    t->waited_mask = 0;
    t->queued_activations = 0;
    t->held_resources.clear();
    t->job_consumed = sim::Duration::zero();
    t->total_consumed = sim::Duration::zero();
    t->jobs_completed = 0;
    t->resource_usage = TaskResourceUsage{};  // budgets are configuration
  }
  handles_in_use_ = 0;
  for (auto& r : resources_) r.holder = TaskId{};
  for (auto& c : counters_) c.ticks = 0;
  for (auto& a : alarms_) {
    a.armed = false;
    a.expiry_tick = 0;
    a.cycle_ticks = 0;
  }
  EASIS_LOG(util::LogLevel::kInfo, kLog) << "software reset (epoch "
                                         << reset_epoch_ << ")";
}

// --- helpers -----------------------------------------------------------------

Kernel::Tcb* Kernel::tcb(TaskId id) {
  if (!id.valid() || id.value() >= tasks_.size()) return nullptr;
  return tasks_[id.value()].get();
}

const Kernel::Tcb* Kernel::tcb(TaskId id) const {
  if (!id.valid() || id.value() >= tasks_.size()) return nullptr;
  return tasks_[id.value()].get();
}

Priority Kernel::effective_priority(const Tcb& t) const {
  Priority p = t.config.priority;
  for (ResourceId r : t.held_resources) {
    p = std::max(p, resources_[r.value()].ceiling);
  }
  return p;
}

TaskId Kernel::id_of(const Tcb& t) const { return t.self; }

Status Kernel::fail(Status s, std::string_view api) {
  notify([&](KernelObserver& o) { o.on_service_error(s, api, now()); });
  if (error_hook_) error_hook_(s, api);
  return s;
}

// --- dispatching --------------------------------------------------------------

void Kernel::request_dispatch() { pending_dispatch_ = true; }

TaskId Kernel::highest_ready() const {
  for (const auto& [prio, queue] : ready_) {
    if (!queue.empty()) return queue.front();
  }
  return TaskId{};
}

void Kernel::enqueue_ready(TaskId id, bool front) {
  Tcb& t = *tcb(id);
  auto& queue = ready_[effective_priority(t)];
  if (front) {
    queue.push_front(id);
  } else {
    queue.push_back(id);
  }
}

void Kernel::remove_from_ready(TaskId id) {
  for (auto& [prio, queue] : ready_) {
    auto it = std::find(queue.begin(), queue.end(), id);
    if (it != queue.end()) {
      queue.erase(it);
      return;
    }
  }
}

void Kernel::do_dispatch() {
  EASIS_PROFILE_SPAN("os.dispatch");
  for (;;) {
    pending_dispatch_ = false;
    const TaskId top_id = highest_ready();
    Tcb* running = tcb(running_);
    if (running == nullptr) {
      if (!top_id.valid()) break;
      remove_from_ready(top_id);
      Tcb& next = *tcb(top_id);
      running_ = top_id;
      next.state = TaskState::kRunning;
      notify([&](KernelObserver& o) { o.on_task_dispatched(top_id, now()); });
      if (pre_task_hook_) pre_task_hook_(top_id);
      begin_or_resume_segment(next);
    } else if (top_id.valid() && running->config.preemptable &&
               effective_priority(*tcb(top_id)) >
                   effective_priority(*running)) {
      preempt_running();
      continue;
    }
    if (!pending_dispatch_) break;
  }
}

void Kernel::begin_or_resume_segment(Tcb& t) {
  const TaskId id = id_of(t);
  if (t.segment_index >= t.job.size()) {
    finish_job(t);
    return;
  }
  Segment& seg = t.job[t.segment_index];
  if (!t.segment_entered) {
    t.segment_entered = true;
    t.remaining = seg.cost;
    notify([&](KernelObserver& o) { o.on_segment_start(id, seg.runnable, now()); });
    if (seg.on_start) seg.on_start();
    // on_start may have blocked/killed this very task (e.g. chain_task);
    // only continue if it is still the running task.
    if (running_ != id || t.state != TaskState::kRunning) return;
  }
  t.segment_started_at = now();
  const std::uint32_t epoch = reset_epoch_;
  t.completion_event = engine_.schedule_at(
      now() + t.remaining,
      [this, id, epoch] { handle_segment_complete(id, epoch); },
      sim::EventPriority::kDispatch);
}

void Kernel::preempt_running() {
  Tcb& t = *tcb(running_);
  const TaskId id = running_;
  if (t.completion_event != 0) {
    engine_.cancel(t.completion_event);
    t.completion_event = 0;
  }
  const sim::Duration elapsed = now() - t.segment_started_at;
  t.remaining -= elapsed;
  t.job_consumed += elapsed;
  t.total_consumed += elapsed;
  t.state = TaskState::kReady;
  running_ = TaskId{};
  // OSEK: a preempted task stays the first of its priority's ready queue.
  enqueue_ready(id, /*front=*/true);
  notify([&](KernelObserver& o) { o.on_task_preempted(id, now()); });
  request_dispatch();
}

void Kernel::handle_segment_complete(TaskId id, std::uint32_t epoch) {
  if (epoch != reset_epoch_) return;  // stale event across a reset
  EASIS_PROFILE_SPAN("os.segment");
  EASIS_PROFILE_COUNT("os.segments_completed", 1);
  Section section(*this);
  Tcb& t = *tcb(id);
  assert(running_ == id);
  assert(t.segment_index < t.job.size());
  t.completion_event = 0;
  const sim::Duration elapsed = now() - t.segment_started_at;
  t.job_consumed += elapsed;
  t.total_consumed += elapsed;
  t.remaining = sim::Duration::zero();
  t.segment_entered = false;
  Segment& seg = t.job[t.segment_index];
  notify([&](KernelObserver& o) {
    o.on_segment_complete(id, seg.runnable, now());
  });
  if (seg.on_complete) seg.on_complete();
  // on_complete may have killed or reset this task; re-check.
  if (running_ != id || t.state != TaskState::kRunning) return;
  ++t.segment_index;
  advance_job(t);
  request_dispatch();
}

void Kernel::advance_job(Tcb& t) {
  const TaskId id = id_of(t);
  if (t.segment_index >= t.job.size()) {
    finish_job(t);
    return;
  }
  Segment& next = t.job[t.segment_index];
  if (next.wait_mask != 0 && (t.pending_events & next.wait_mask) == 0) {
    // Block on the events (extended task wait point).
    t.waited_mask = next.wait_mask;
    t.state = TaskState::kWaiting;
    running_ = TaskId{};
    notify([&](KernelObserver& o) { o.on_task_waiting(id, now()); });
    return;
  }
  if (next.wait_mask != 0) {
    // Events already pending: consume and continue immediately.
    t.pending_events &= ~next.wait_mask;
  }
  if (yield_requested_) {
    // Explicit scheduling point (Schedule()): yield to a higher-priority
    // ready task even if this task is non-preemptable.
    yield_requested_ = false;
    const TaskId top = highest_ready();
    if (top.valid() &&
        effective_priority(*tcb(top)) > effective_priority(t)) {
      t.state = TaskState::kReady;
      running_ = TaskId{};
      enqueue_ready(id, /*front=*/true);
      notify([&](KernelObserver& o) { o.on_task_preempted(id, now()); });
      request_dispatch();
      return;
    }
  }
  begin_or_resume_segment(t);
}

void Kernel::finish_job(Tcb& t) {
  const TaskId id = id_of(t);
  yield_requested_ = false;  // job end is itself a scheduling point
  if (!t.held_resources.empty()) {
    // OSEK: terminating while holding a resource is an error; recover by
    // force-releasing so the system can continue.
    fail(Status::kResource, "TerminateTask");
    release_all_resources(t);
  }
  running_ = TaskId{};
  ++t.jobs_completed;
  retire_job(t);
  if (post_task_hook_) post_task_hook_(id);
  notify([&](KernelObserver& o) { o.on_task_terminated(id, now()); });
  if (t.queued_activations > 0) {
    // The queued request was already announced when it arrived.
    --t.queued_activations;
    build_job(t);
    t.state = TaskState::kReady;
    t.job_consumed = sim::Duration::zero();
    enqueue_ready(id, /*front=*/false);
  } else {
    t.state = TaskState::kSuspended;
  }
  request_dispatch();
}

void Kernel::retire_job(Tcb& t) {
  // A segment callback of this job may still be executing on the stack;
  // park the job until the outermost kernel section unwinds (see Section).
  retired_jobs_.push_back(std::move(t.job));
  t.job.clear();
  t.segment_index = 0;
  t.segment_entered = false;
}

void Kernel::build_job(Tcb& t) {
  t.job = t.factory ? t.factory() : Job{};
  t.segment_index = 0;
  t.segment_entered = false;
}

void Kernel::release_all_resources(Tcb& t) {
  for (ResourceId r : t.held_resources) {
    resources_[r.value()].holder = TaskId{};
  }
  t.held_resources.clear();
}

// --- task services -------------------------------------------------------------

Status Kernel::activate_task(TaskId task) {
  Section section(*this);
  Tcb* t = tcb(task);
  if (t == nullptr) return fail(Status::kId, "ActivateTask");
  if (t->state != TaskState::kSuspended) {
    if (t->config.extended ||
        t->queued_activations >= t->config.max_pending_activations) {
      return fail(Status::kLimit, "ActivateTask");
    }
    ++t->queued_activations;
    // The activation request counts from now (OSEK multiple activation).
    notify([&](KernelObserver& o) { o.on_task_activated(task, now()); });
    return Status::kOk;
  }
  build_job(*t);
  t->pending_events = 0;
  t->job_consumed = sim::Duration::zero();
  notify([&](KernelObserver& o) { o.on_task_activated(task, now()); });
  // An empty first wait mask cannot occur at activation in OSEK (tasks
  // start at their entry), but our job model allows it: settle it here.
  Segment* first =
      t->job.empty() ? nullptr : &t->job.front();
  if (first != nullptr && first->wait_mask != 0) {
    t->waited_mask = first->wait_mask;
    t->state = TaskState::kWaiting;
    notify([&](KernelObserver& o) { o.on_task_waiting(task, now()); });
    return Status::kOk;
  }
  t->state = TaskState::kReady;
  enqueue_ready(task, /*front=*/false);
  request_dispatch();
  return Status::kOk;
}

Status Kernel::kill_task(TaskId task) {
  Section section(*this);
  Tcb* t = tcb(task);
  if (t == nullptr) return fail(Status::kId, "KillTask");
  if (t->state == TaskState::kSuspended) return Status::kOk;
  if (t->state == TaskState::kRunning) {
    if (t->completion_event != 0) {
      engine_.cancel(t->completion_event);
      t->completion_event = 0;
    }
    running_ = TaskId{};
  } else if (t->state == TaskState::kReady) {
    remove_from_ready(task);
  }
  release_all_resources(*t);
  t->state = TaskState::kSuspended;
  retire_job(*t);
  t->pending_events = 0;
  t->waited_mask = 0;
  t->queued_activations = 0;
  notify([&](KernelObserver& o) { o.on_task_terminated(task, now()); });
  request_dispatch();
  return Status::kOk;
}

Status Kernel::chain_task(TaskId next) {
  Section section(*this);
  if (!running_.valid()) return fail(Status::kCallLevel, "ChainTask");
  Tcb* n = tcb(next);
  if (n == nullptr) return fail(Status::kId, "ChainTask");
  const TaskId self = running_;
  // Skip the remainder of the running job, then activate the successor.
  Tcb& t = *tcb(self);
  t.segment_index = t.job.size();
  if (t.completion_event != 0) {
    engine_.cancel(t.completion_event);
    t.completion_event = 0;
  }
  finish_job(t);
  return activate_task(next);
}

Status Kernel::schedule() {
  Section section(*this);
  if (!running_.valid()) return fail(Status::kCallLevel, "Schedule");
  // Takes effect at the next segment boundary (see advance_job): segment
  // callbacks run at budget-accounting boundaries, so an immediate switch
  // here would corrupt the running segment's bookkeeping.
  yield_requested_ = true;
  return Status::kOk;
}

TaskState Kernel::task_state(TaskId task) const {
  const Tcb* t = tcb(task);
  assert(t != nullptr);
  return t->state;
}

std::optional<TaskId> Kernel::running_task() const {
  if (!running_.valid()) return std::nullopt;
  return running_;
}

// --- events ----------------------------------------------------------------------

Status Kernel::set_event(TaskId task, EventMask mask) {
  Section section(*this);
  Tcb* t = tcb(task);
  if (t == nullptr) return fail(Status::kId, "SetEvent");
  if (!t->config.extended) return fail(Status::kAccess, "SetEvent");
  if (t->state == TaskState::kSuspended) {
    return fail(Status::kState, "SetEvent");
  }
  t->pending_events |= mask;
  if (t->state == TaskState::kWaiting &&
      (t->pending_events & t->waited_mask) != 0) {
    t->pending_events &= ~t->waited_mask;
    t->waited_mask = 0;
    t->state = TaskState::kReady;
    enqueue_ready(task, /*front=*/false);
    notify([&](KernelObserver& o) { o.on_task_released(task, now()); });
    request_dispatch();
  }
  return Status::kOk;
}

Status Kernel::clear_event(TaskId task, EventMask mask) {
  Section section(*this);
  Tcb* t = tcb(task);
  if (t == nullptr) return fail(Status::kId, "ClearEvent");
  if (!t->config.extended) return fail(Status::kAccess, "ClearEvent");
  t->pending_events &= ~mask;
  return Status::kOk;
}

EventMask Kernel::get_event(TaskId task) const {
  const Tcb* t = tcb(task);
  assert(t != nullptr);
  return t->pending_events;
}

// --- resources -------------------------------------------------------------------

Status Kernel::get_resource(ResourceId resource) {
  Section section(*this);
  if (!running_.valid()) return fail(Status::kCallLevel, "GetResource");
  if (!resource.valid() || resource.value() >= resources_.size()) {
    return fail(Status::kId, "GetResource");
  }
  Resource& r = resources_[resource.value()];
  if (r.holder.valid()) return fail(Status::kAccess, "GetResource");
  Tcb& t = *tcb(running_);
  if (t.config.priority > r.ceiling) {
    // Immediate ceiling protocol requires ceiling >= every user's priority.
    return fail(Status::kAccess, "GetResource");
  }
  r.holder = running_;
  t.held_resources.push_back(resource);
  return Status::kOk;
}

Status Kernel::release_resource(ResourceId resource) {
  Section section(*this);
  if (!running_.valid()) return fail(Status::kCallLevel, "ReleaseResource");
  if (!resource.valid() || resource.value() >= resources_.size()) {
    return fail(Status::kId, "ReleaseResource");
  }
  Resource& r = resources_[resource.value()];
  if (r.holder != running_) return fail(Status::kNoFunc, "ReleaseResource");
  Tcb& t = *tcb(running_);
  // OSEK: resources are released LIFO.
  if (t.held_resources.empty() || t.held_resources.back() != resource) {
    return fail(Status::kNoFunc, "ReleaseResource");
  }
  t.held_resources.pop_back();
  r.holder = TaskId{};
  // Dropping the ceiling may enable a preemption.
  request_dispatch();
  return Status::kOk;
}

bool Kernel::resource_held(ResourceId resource) const {
  assert(resource.valid() && resource.value() < resources_.size());
  return resources_[resource.value()].holder.valid();
}

// --- counters and alarms --------------------------------------------------------

void Kernel::drive_counter(CounterId id, std::uint32_t epoch) {
  Counter& c = counters_[id.value()];
  engine_.schedule_in(
      c.config.tick,
      [this, id, epoch] {
        if (epoch != reset_epoch_ || !started_) return;
        Section section(*this);
        counter_tick(counters_[id.value()], id);
        drive_counter(id, epoch);
      },
      sim::EventPriority::kKernel);
}

void Kernel::counter_tick(Counter& counter, CounterId id) {
  (void)id;
  ++counter.ticks;
  // Snapshot: an alarm action may attach further alarms to this counter.
  const std::vector<AlarmId> armed_now = counter.alarms;
  for (AlarmId alarm_id : armed_now) {
    Alarm& a = alarms_[alarm_id.value()];
    if (!a.armed || a.expiry_tick != counter.ticks) continue;
    if (a.cycle_ticks > 0) {
      a.expiry_tick = counter.ticks + a.cycle_ticks;
    } else {
      a.armed = false;
    }
    fire_alarm(a);
  }
}

void Kernel::fire_alarm(Alarm& alarm) {
  std::visit(
      [this](const auto& action) {
        using T = std::decay_t<decltype(action)>;
        if constexpr (std::is_same_v<T, AlarmActionActivateTask>) {
          activate_task(action.task);
        } else if constexpr (std::is_same_v<T, AlarmActionSetEvent>) {
          set_event(action.task, action.mask);
        } else {
          if (action.callback) action.callback();
        }
      },
      alarm.action);
}

Status Kernel::increment_counter(CounterId counter) {
  Section section(*this);
  if (!counter.valid() || counter.value() >= counters_.size()) {
    return fail(Status::kId, "IncrementCounter");
  }
  Counter& c = counters_[counter.value()];
  if (c.config.hardware_driven) {
    return fail(Status::kAccess, "IncrementCounter");
  }
  counter_tick(c, counter);
  return Status::kOk;
}

std::uint64_t Kernel::counter_ticks(CounterId counter) const {
  assert(counter.valid() && counter.value() < counters_.size());
  const Counter& c = counters_[counter.value()];
  return c.ticks % (c.config.max_allowed_value + 1);
}

Status Kernel::set_rel_alarm(AlarmId alarm, std::uint64_t offset_ticks,
                             std::uint64_t cycle_ticks) {
  Section section(*this);
  if (!alarm.valid() || alarm.value() >= alarms_.size()) {
    return fail(Status::kId, "SetRelAlarm");
  }
  if (offset_ticks == 0) return fail(Status::kValue, "SetRelAlarm");
  Alarm& a = alarms_[alarm.value()];
  if (a.armed) return fail(Status::kState, "SetRelAlarm");
  a.armed = true;
  a.expiry_tick = counters_[a.counter.value()].ticks + offset_ticks;
  a.cycle_ticks = cycle_ticks;
  return Status::kOk;
}

Status Kernel::cancel_alarm(AlarmId alarm) {
  Section section(*this);
  if (!alarm.valid() || alarm.value() >= alarms_.size()) {
    return fail(Status::kId, "CancelAlarm");
  }
  Alarm& a = alarms_[alarm.value()];
  if (!a.armed) return fail(Status::kNoFunc, "CancelAlarm");
  a.armed = false;
  return Status::kOk;
}

bool Kernel::alarm_armed(AlarmId alarm) const {
  assert(alarm.valid() && alarm.value() < alarms_.size());
  return alarms_[alarm.value()].armed;
}

util::Result<std::uint64_t, Status> Kernel::alarm_remaining_ticks(
    AlarmId alarm) const {
  if (!alarm.valid() || alarm.value() >= alarms_.size()) {
    return Status::kId;
  }
  const Alarm& a = alarms_[alarm.value()];
  if (!a.armed) return Status::kNoFunc;
  const std::uint64_t now_ticks = counters_[a.counter.value()].ticks;
  return a.expiry_tick > now_ticks ? a.expiry_tick - now_ticks
                                   : std::uint64_t{0};
}

// --- ISRs (category 2) ----------------------------------------------------------

TaskId Kernel::create_isr(std::string name, sim::Duration cost,
                          std::function<void()> handler) {
  TaskConfig config;
  config.name = std::move(name);
  config.priority = kIsrPriorityBase;
  config.preemptable = false;  // interrupts run to completion here
  config.max_pending_activations = 8;
  const TaskId id = create_task(config);
  set_job_factory(id, [cost, handler = std::move(handler)] {
    Segment segment;
    segment.cost = cost;
    segment.on_complete = handler;
    return Job{segment};
  });
  return id;
}

Status Kernel::trigger_isr(TaskId isr) {
  const Tcb* t = tcb(isr);
  if (t == nullptr || t->config.priority < kIsrPriorityBase) {
    return fail(Status::kId, "TriggerIsr");
  }
  return activate_task(isr);
}

// --- hooks, observers, introspection ----------------------------------------------

void Kernel::set_pre_task_hook(std::function<void(TaskId)> hook) {
  pre_task_hook_ = std::move(hook);
}
void Kernel::set_post_task_hook(std::function<void(TaskId)> hook) {
  post_task_hook_ = std::move(hook);
}
void Kernel::set_error_hook(
    std::function<void(Status, std::string_view)> hook) {
  error_hook_ = std::move(hook);
}

void Kernel::add_observer(KernelObserver* observer) {
  observers_.push_back(observer);
}

void Kernel::remove_observer(KernelObserver* observer) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

const std::string& Kernel::task_name(TaskId task) const {
  const Tcb* t = tcb(task);
  assert(t != nullptr);
  return t->config.name;
}

Priority Kernel::task_priority(TaskId task) const {
  const Tcb* t = tcb(task);
  assert(t != nullptr);
  return t->config.priority;
}

sim::Duration Kernel::job_consumed(TaskId task) const {
  const Tcb* t = tcb(task);
  assert(t != nullptr);
  sim::Duration consumed = t->job_consumed;
  if (t->state == TaskState::kRunning && t->completion_event != 0) {
    consumed += now() - t->segment_started_at;
  }
  return consumed;
}

sim::Duration Kernel::total_consumed(TaskId task) const {
  const Tcb* t = tcb(task);
  assert(t != nullptr);
  sim::Duration consumed = t->total_consumed;
  // Include the in-flight slice of a running segment (like job_consumed).
  if (t->state == TaskState::kRunning && t->completion_event != 0) {
    consumed += now() - t->segment_started_at;
  }
  return consumed;
}

std::uint64_t Kernel::jobs_completed(TaskId task) const {
  const Tcb* t = tcb(task);
  assert(t != nullptr);
  return t->jobs_completed;
}

// --- modelled resource accounting --------------------------------------------

void Kernel::set_task_resource_budget(TaskId task, TaskResourceBudget budget) {
  Tcb* t = tcb(task);
  assert(t != nullptr);
  t->resource_budget = budget;
}

const TaskResourceBudget& Kernel::task_resource_budget(TaskId task) const {
  const Tcb* t = tcb(task);
  assert(t != nullptr);
  return t->resource_budget;
}

bool Kernel::task_alloc(TaskId task, std::uint64_t bytes) {
  Tcb* t = tcb(task);
  assert(t != nullptr);
  TaskResourceUsage& u = t->resource_usage;
  const std::uint64_t budget = t->resource_budget.memory_bytes;
  if (budget != 0 && u.memory_bytes + bytes > budget) {
    ++u.denied_allocations;
    return false;
  }
  u.memory_bytes += bytes;
  u.memory_peak = std::max(u.memory_peak, u.memory_bytes);
  return true;
}

void Kernel::task_free(TaskId task, std::uint64_t bytes) {
  Tcb* t = tcb(task);
  assert(t != nullptr);
  TaskResourceUsage& u = t->resource_usage;
  u.memory_bytes -= std::min(u.memory_bytes, bytes);
}

void Kernel::set_handle_pool_capacity(std::uint32_t capacity) {
  handle_pool_capacity_ = capacity;
}

bool Kernel::task_acquire_handles(TaskId task, std::uint32_t count) {
  Tcb* t = tcb(task);
  assert(t != nullptr);
  TaskResourceUsage& u = t->resource_usage;
  const std::uint32_t budget = t->resource_budget.handles;
  const bool over_budget = budget != 0 && u.handles + count > budget;
  const bool pool_exhausted =
      handle_pool_capacity_ != 0 &&
      handles_in_use_ + count > handle_pool_capacity_;
  if (over_budget || pool_exhausted) {
    ++u.denied_handles;
    return false;
  }
  u.handles += count;
  u.handles_peak = std::max(u.handles_peak, u.handles);
  handles_in_use_ += count;
  return true;
}

void Kernel::task_release_handles(TaskId task, std::uint32_t count) {
  Tcb* t = tcb(task);
  assert(t != nullptr);
  TaskResourceUsage& u = t->resource_usage;
  const std::uint32_t released = std::min(u.handles, count);
  u.handles -= released;
  handles_in_use_ -= std::min(handles_in_use_, released);
}

const TaskResourceUsage& Kernel::task_resource_usage(TaskId task) const {
  const Tcb* t = tcb(task);
  assert(t != nullptr);
  return t->resource_usage;
}

void Kernel::reclaim_task_resources(TaskId task) {
  Tcb* t = tcb(task);
  assert(t != nullptr);
  handles_in_use_ -= std::min(handles_in_use_, t->resource_usage.handles);
  t->resource_usage = TaskResourceUsage{};
  EASIS_LOG(util::LogLevel::kInfo, kLog)
      << "reclaimed resources of task " << t->config.name;
}

sim::Duration Kernel::cpu_busy_time() const {
  sim::Duration busy = sim::Duration::zero();
  for (const auto& t : tasks_) {
    busy += t->total_consumed;
    if (t->state == TaskState::kRunning && t->completion_event != 0) {
      busy += now() - t->segment_started_at;
    }
  }
  return busy;
}

}  // namespace easis::os
