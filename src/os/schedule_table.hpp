// Time-triggered schedule table (OSEKTime-style dispatcher round).
//
// Provides the substrate for the paper's related-work baseline: OSEKTime
// deadline monitoring operates on tasks dispatched at fixed offsets within
// a dispatcher round. Built on top of the kernel's counters/alarms.
#pragma once

#include <string>
#include <vector>

#include "os/kernel.hpp"
#include "sim/time.hpp"
#include "util/ids.hpp"

namespace easis::os {

struct ExpiryPoint {
  sim::Duration offset;  // within the round, from round start
  TaskId task;
  /// Deadline relative to the dispatch offset (used by deadline monitors;
  /// zero means "no deadline configured").
  sim::Duration deadline = sim::Duration::zero();
};

class ScheduleTable {
 public:
  /// `round` is the table period; expiry offsets must lie within it.
  ScheduleTable(Kernel& kernel, std::string name, sim::Duration round);

  /// Adds a dispatch point. Must be called before start().
  void add_expiry_point(ExpiryPoint point);

  /// Arms the table: the first round starts `initial_offset` from now.
  void start(sim::Duration initial_offset = sim::Duration::zero());
  void stop();
  [[nodiscard]] bool running() const { return running_; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] sim::Duration round() const { return round_; }
  [[nodiscard]] const std::vector<ExpiryPoint>& expiry_points() const {
    return points_;
  }
  [[nodiscard]] std::uint64_t rounds_completed() const { return rounds_; }

 private:
  Kernel& kernel_;
  std::string name_;
  sim::Duration round_;
  std::vector<ExpiryPoint> points_;
  bool running_ = false;
  std::uint64_t rounds_ = 0;
  std::uint64_t generation_ = 0;  // invalidates scheduled rounds on stop()

  void schedule_round(sim::SimTime round_start, std::uint64_t generation);
};

}  // namespace easis::os
