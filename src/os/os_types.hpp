// OSEK/VDX-flavoured basic types and status codes.
//
// The kernel mirrors the OSEK OS service semantics the paper's platform
// builds on (OSEK-conforming OS integrated across EASIS layers L2/L3),
// at the fidelity needed to reproduce scheduling/timing faults.
#pragma once

#include <cstdint>
#include <string_view>

namespace easis::os {

/// OSEK StatusType subset.
enum class Status {
  kOk,          // E_OK
  kAccess,      // E_OS_ACCESS
  kCallLevel,   // E_OS_CALLEVEL
  kId,          // E_OS_ID
  kLimit,       // E_OS_LIMIT
  kNoFunc,      // E_OS_NOFUNC
  kResource,    // E_OS_RESOURCE
  kState,       // E_OS_STATE
  kValue,       // E_OS_VALUE
};

[[nodiscard]] constexpr std::string_view to_string(Status s) {
  switch (s) {
    case Status::kOk: return "E_OK";
    case Status::kAccess: return "E_OS_ACCESS";
    case Status::kCallLevel: return "E_OS_CALLEVEL";
    case Status::kId: return "E_OS_ID";
    case Status::kLimit: return "E_OS_LIMIT";
    case Status::kNoFunc: return "E_OS_NOFUNC";
    case Status::kResource: return "E_OS_RESOURCE";
    case Status::kState: return "E_OS_STATE";
    case Status::kValue: return "E_OS_VALUE";
  }
  return "?";
}

/// OSEK task states.
enum class TaskState { kSuspended, kReady, kRunning, kWaiting };

[[nodiscard]] constexpr std::string_view to_string(TaskState s) {
  switch (s) {
    case TaskState::kSuspended: return "suspended";
    case TaskState::kReady: return "ready";
    case TaskState::kRunning: return "running";
    case TaskState::kWaiting: return "waiting";
  }
  return "?";
}

/// Static task priority; larger value = more urgent.
using Priority = int;

/// OSEK event mask (extended tasks).
using EventMask = std::uint32_t;

}  // namespace easis::os
