#include "os/com.hpp"

#include <stdexcept>

namespace easis::os {

MessageId ComLayer::create_unqueued(std::string name) {
  Message m;
  m.name = std::move(name);
  m.queued = false;
  messages_.push_back(std::move(m));
  return MessageId(
      static_cast<MessageId::underlying_type>(messages_.size() - 1));
}

MessageId ComLayer::create_queued(std::string name, std::size_t capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("ComLayer: queued capacity must be >= 1");
  }
  Message m;
  m.name = std::move(name);
  m.queued = true;
  m.capacity = capacity;
  messages_.push_back(std::move(m));
  return MessageId(
      static_cast<MessageId::underlying_type>(messages_.size() - 1));
}

ComLayer::Message* ComLayer::message(MessageId id) {
  if (!id.valid() || id.value() >= messages_.size()) return nullptr;
  return &messages_[id.value()];
}

const ComLayer::Message* ComLayer::message(MessageId id) const {
  if (!id.valid() || id.value() >= messages_.size()) return nullptr;
  return &messages_[id.value()];
}

void ComLayer::set_notification(MessageId id, TaskId task, EventMask mask) {
  Message* m = message(id);
  if (m == nullptr) throw std::invalid_argument("ComLayer: bad message id");
  m->notify_task = task;
  m->notify_mask = mask;
}

Status ComLayer::send(MessageId id, MessagePayload payload) {
  Message* m = message(id);
  if (m == nullptr) return Status::kId;
  if (m->queued) {
    if (m->fifo.size() >= m->capacity) {
      ++m->overflows;
      return Status::kLimit;
    }
    m->fifo.push_back(std::move(payload));
  } else {
    m->last = std::move(payload);
  }
  ++m->sends;
  m->last_send_at = kernel_.now();
  if (m->notify_task.valid() && m->notify_mask != 0) {
    kernel_.set_event(m->notify_task, m->notify_mask);
  }
  return Status::kOk;
}

util::Result<MessagePayload, Status> ComLayer::receive(MessageId id) {
  Message* m = message(id);
  if (m == nullptr) return Status::kId;
  if (m->queued) {
    if (m->fifo.empty()) return Status::kNoFunc;
    MessagePayload payload = std::move(m->fifo.front());
    m->fifo.pop_front();
    return payload;
  }
  if (!m->last.has_value()) return Status::kNoFunc;
  return *m->last;  // non-destructive
}

bool ComLayer::is_queued(MessageId id) const {
  const Message* m = message(id);
  if (m == nullptr) throw std::invalid_argument("ComLayer: bad message id");
  return m->queued;
}

std::size_t ComLayer::pending(MessageId id) const {
  const Message* m = message(id);
  if (m == nullptr) throw std::invalid_argument("ComLayer: bad message id");
  return m->queued ? m->fifo.size() : (m->last.has_value() ? 1 : 0);
}

std::uint64_t ComLayer::sends(MessageId id) const {
  const Message* m = message(id);
  if (m == nullptr) throw std::invalid_argument("ComLayer: bad message id");
  return m->sends;
}

std::uint64_t ComLayer::overflows(MessageId id) const {
  const Message* m = message(id);
  if (m == nullptr) throw std::invalid_argument("ComLayer: bad message id");
  return m->overflows;
}

void ComLayer::set_reception_deadline(MessageId id, sim::Duration deadline) {
  Message* m = message(id);
  if (m == nullptr) throw std::invalid_argument("ComLayer: bad message id");
  m->deadline = deadline;
  m->deadline_armed_at = kernel_.now();
}

bool ComLayer::stale(MessageId id, sim::SimTime now) const {
  const Message* m = message(id);
  if (m == nullptr) throw std::invalid_argument("ComLayer: bad message id");
  if (m->deadline <= sim::Duration::zero()) return false;
  const sim::SimTime reference = m->last_send_at.value_or(m->deadline_armed_at);
  return now - reference > m->deadline;
}

std::optional<sim::SimTime> ComLayer::last_send_at(MessageId id) const {
  const Message* m = message(id);
  if (m == nullptr) throw std::invalid_argument("ComLayer: bad message id");
  return m->last_send_at;
}

const std::string& ComLayer::name(MessageId id) const {
  const Message* m = message(id);
  if (m == nullptr) throw std::invalid_argument("ComLayer: bad message id");
  return m->name;
}

}  // namespace easis::os
