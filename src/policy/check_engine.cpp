#include "policy/check_engine.hpp"

#include <sstream>
#include <stdexcept>

namespace easis::policy {

CheckSupervisionUnit::CheckSupervisionUnit(wdg::SoftwareWatchdog& watchdog,
                                           wdg::ProcessSupervisionUnit& psu,
                                           rte::SignalBus& bus, TaskId task,
                                           ApplicationId application)
    : watchdog_(watchdog),
      psu_(psu),
      bus_(bus),
      task_(task),
      application_(application) {}

void CheckSupervisionUnit::add_rule(const CheckRule& rule) {
  RuleState state;
  state.rule = rule;
  state.id = RunnableId{
      static_cast<std::uint32_t>(kCheckRunnableBase + rules_.size())};

  wdg::RunnableMonitor monitor;
  monitor.runnable = state.id;
  monitor.task = task_;
  monitor.application = application_;
  monitor.name = "check:" + rule.name;
  monitor.monitor_aliveness = false;
  monitor.monitor_arrival_rate = false;
  monitor.program_flow = false;
  watchdog_.add_runnable(monitor);

  wdg::SectionConfig section;
  section.name = "check:" + rule.name;
  section.runnable = state.id;
  section.task = task_;
  section.application = application_;
  section.deadline = rule.deadline;
  state.section = psu_.add_section(section);

  rules_.push_back(std::move(state));
}

void CheckSupervisionUnit::cycle(sim::SimTime now) {
  if (!enabled_) return;
  for (RuleState& state : rules_) {
    ++state.cycles;
    if (state.cycles % state.rule.period_cycles != 0) continue;
    evaluate(state, now);
  }
}

void CheckSupervisionUnit::set_enabled(bool enabled) {
  if (enabled == enabled_) return;
  enabled_ = enabled;
  if (!enabled) {
    for (RuleState& state : rules_) state.has_prev = false;
  }
}

void CheckSupervisionUnit::evaluate(RuleState& state, sim::SimTime now) {
  // Re-opening an open window would abandon it unreported, so a stalled
  // evaluation keeps its original window open for the process-supervision
  // cycle to report as overdue.
  if (!state.section_open) {
    psu_.open(state.section, now);
    state.section_open = true;
  }
  if (state.stalled) return;  // the evaluation "hangs" inside its window

  const double value = bus_.read_or(state.rule.signal, state.rule.fallback);
  ++evaluations_;
  std::ostringstream detail;
  bool failed = false;
  if (value < state.rule.min || value > state.rule.max) {
    failed = true;
    detail << "check '" << state.rule.name << "': " << state.rule.signal
           << "=" << value << " outside [" << state.rule.min << ", "
           << state.rule.max << "]";
  } else if (state.rule.rate_bounded && state.has_prev &&
             now > state.prev_time) {
    const double dt_s =
        static_cast<double>((now - state.prev_time).as_micros()) / 1.0e6;
    const double rate = (value - state.prev_value) / dt_s;
    if (rate < state.rule.rate_min_per_s ||
        rate > state.rule.rate_max_per_s) {
      failed = true;
      detail << "check '" << state.rule.name << "': " << state.rule.signal
             << " rate " << rate << "/s outside ["
             << state.rule.rate_min_per_s << ", "
             << state.rule.rate_max_per_s << "]";
    }
  }
  state.has_prev = true;
  state.prev_value = value;
  state.prev_time = now;
  if (failed) {
    ++state.failures;
    ++failures_;
    wdg::ErrorReport report;
    report.runnable = state.id;
    report.task = task_;
    report.application = application_;
    report.type = wdg::ErrorType::kCheckRule;
    report.time = now;
    report.detail = detail.str();
    watchdog_.report_external_error(std::move(report));
  }
  psu_.close(state.section, now);
  state.section_open = false;
}

void CheckSupervisionUnit::set_stalled(std::string_view rule, bool stalled) {
  for (RuleState& state : rules_) {
    if (state.rule.name == rule) {
      state.stalled = stalled;
      return;
    }
  }
  throw std::invalid_argument("CheckSupervisionUnit: unknown rule '" +
                              std::string(rule) + "'");
}

std::uint64_t CheckSupervisionUnit::failures_of(std::string_view rule) const {
  for (const RuleState& state : rules_) {
    if (state.rule.name == rule) return state.failures;
  }
  throw std::invalid_argument("CheckSupervisionUnit: unknown rule '" +
                              std::string(rule) + "'");
}

RunnableId CheckSupervisionUnit::runnable_of(std::string_view rule) const {
  for (const RuleState& state : rules_) {
    if (state.rule.name == rule) return state.id;
  }
  throw std::invalid_argument("CheckSupervisionUnit: unknown rule '" +
                              std::string(rule) + "'");
}

}  // namespace easis::policy
