#include "policy/compiler.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

namespace easis::policy {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty() || text[0] == '-') return false;
  char* end = nullptr;
  out = std::strtoull(text.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool parse_f64(const std::string& text, double& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && std::isfinite(out);
}

/// Stateful single-pass parser; collects every diagnostic before deciding.
class Compiler {
 public:
  CompileResult run(std::string_view text) {
    std::size_t line_no = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
      const std::size_t nl = text.find('\n', pos);
      const std::string_view raw =
          text.substr(pos, nl == std::string_view::npos ? nl : nl - pos);
      ++line_no;
      handle_line(trim(raw), line_no);
      if (nl == std::string_view::npos) break;
      pos = nl + 1;
    }
    finalize();
    CompileResult result;
    result.diagnostics = std::move(diags_);
    if (result.diagnostics.empty()) result.policy = std::move(policy_);
    return result;
  }

 private:
  PolicySet policy_;
  std::vector<Diagnostic> diags_;
  std::string section_;
  std::size_t section_line_ = 0;
  std::set<std::string> seen_sections_;
  std::set<std::string> seen_keys_;  // current section instance
  /// "section.key" -> line, for cross-key conflict diagnostics.
  std::map<std::string, std::size_t> key_lines_;
  bool in_check_ = false;

  void error(std::size_t line, std::string message) {
    diags_.push_back(Diagnostic{line, std::move(message)});
  }

  void handle_line(std::string_view line, std::size_t line_no) {
    if (line.empty() || line.front() == '#' || line.front() == ';') return;
    if (line.front() == '[') {
      open_section(line, line_no);
      return;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      error(line_no, "expected `key = value` or `[section]`, got `" +
                         std::string(line) + "`");
      return;
    }
    const std::string key{trim(line.substr(0, eq))};
    const std::string value{trim(line.substr(eq + 1))};
    if (key.empty()) {
      error(line_no, "empty key before `=`");
      return;
    }
    if (section_.empty()) {
      error(line_no, "`" + key + "` appears before any [section]");
      return;
    }
    if (!seen_keys_.insert(key).second) {
      error(line_no, "duplicate key `" + key + "` in [" + section_ + "]");
      return;
    }
    key_lines_[section_ + "." + key] = line_no;
    handle_key(key, value, line_no);
  }

  void open_section(std::string_view line, std::size_t line_no) {
    if (line.back() != ']') {
      error(line_no, "unterminated section header");
      return;
    }
    const std::string_view body = trim(line.substr(1, line.size() - 2));
    seen_keys_.clear();
    section_line_ = line_no;
    if (body.rfind("check", 0) == 0 && body.size() > 5) {
      open_check(trim(body.substr(5)), line_no);
      return;
    }
    if (body.rfind("mode.", 0) == 0) {
      open_mode(trim(body.substr(5)), line_no);
      return;
    }
    in_check_ = false;
    section_ = std::string(body);
    static const std::set<std::string> kSections{
        "policy",     "detection", "severity",   "resource",
        "thermal",    "filesystem", "escalation", "treatment"};
    if (kSections.count(section_) == 0) {
      error(line_no, "unknown section [" + section_ + "]");
      section_ = "?";  // swallow this section's keys without key errors
      return;
    }
    if (!seen_sections_.insert(section_).second) {
      error(line_no, "duplicate section [" + section_ + "]");
    }
  }

  void open_check(std::string_view name_part, std::size_t line_no) {
    if (name_part.size() < 2 || name_part.front() != '"' ||
        name_part.back() != '"') {
      error(line_no, "check section needs a quoted name: [check \"name\"]");
      section_ = "?";
      in_check_ = false;
      return;
    }
    const std::string name{name_part.substr(1, name_part.size() - 2)};
    if (name.empty()) {
      error(line_no, "check rule name must not be empty");
      section_ = "?";
      in_check_ = false;
      return;
    }
    for (const CheckRule& rule : policy_.checks) {
      if (rule.name == name) {
        error(line_no, "conflicting check rules: duplicate name \"" + name +
                           "\" (first defined earlier)");
      }
    }
    section_ = "check";
    in_check_ = true;
    CheckRule rule;
    rule.name = name;
    policy_.checks.push_back(std::move(rule));
  }

  void open_mode(std::string_view name_part, std::size_t line_no) {
    in_check_ = false;
    const std::string name{name_part};
    bool well_formed = !name.empty();
    for (char c : name) {
      if (!(std::islower(static_cast<unsigned char>(c)) != 0 ||
            std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '_')) {
        well_formed = false;
      }
    }
    if (!well_formed) {
      error(line_no, "mode section needs a lower-case identifier: "
                     "[mode.<name>], got [mode." +
                         name + "]");
      section_ = "?";
      return;
    }
    for (const ModeOverlay& overlay : policy_.modes) {
      if (overlay.mode == name) {
        error(line_no, "conflicting mode overlays: duplicate [mode." + name +
                           "] (first defined earlier)");
      }
    }
    section_ = "mode";
    ModeOverlay overlay;
    overlay.mode = name;
    policy_.modes.push_back(std::move(overlay));
  }

  // --- typed setters with range validation --------------------------------
  template <typename T>
  void set_uint(T& dst, const std::string& key, const std::string& value,
                std::size_t line, std::uint64_t lo, std::uint64_t hi) {
    std::uint64_t v = 0;
    if (!parse_u64(value, v)) {
      error(line, "`" + key + "` expects an unsigned integer, got `" + value +
                      "`");
      return;
    }
    if (v < lo || v > hi) {
      error(line, "`" + key + "` = " + value + " out of range [" +
                      std::to_string(lo) + ", " + std::to_string(hi) + "]");
      return;
    }
    dst = static_cast<T>(v);
  }

  void set_f64(double& dst, const std::string& key, const std::string& value,
               std::size_t line, double lo, double hi) {
    double v = 0.0;
    if (!parse_f64(value, v)) {
      error(line, "`" + key + "` expects a finite number, got `" + value +
                      "`");
      return;
    }
    if (v < lo || v > hi) {
      std::ostringstream os;
      os << '`' << key << "` = " << value << " out of range [" << lo << ", "
         << hi << ']';
      error(line, os.str());
      return;
    }
    dst = v;
  }

  void set_ms(sim::Duration& dst, const std::string& key,
              const std::string& value, std::size_t line, std::uint64_t lo,
              std::uint64_t hi) {
    std::uint64_t ms = 0;
    set_uint(ms, key, value, line, lo, hi);
    if (diags_.empty() || diags_.back().line != line) {
      dst = sim::Duration::millis(static_cast<std::int64_t>(ms));
    }
  }

  void set_severity(wdg::Severity& dst, const std::string& key,
                    const std::string& value, std::size_t line) {
    if (value == "info") {
      dst = wdg::Severity::kInfo;
    } else if (value == "minor") {
      dst = wdg::Severity::kMinor;
    } else if (value == "major") {
      dst = wdg::Severity::kMajor;
    } else if (value == "critical") {
      dst = wdg::Severity::kCritical;
    } else {
      error(line, "`" + key + "` expects info|minor|major|critical, got `" +
                      value + "`");
    }
  }

  void set_bool(bool& dst, const std::string& key, const std::string& value,
                std::size_t line) {
    if (value == "true") {
      dst = true;
    } else if (value == "false") {
      dst = false;
    } else {
      error(line,
            "`" + key + "` expects true|false, got `" + value + "`");
    }
  }

  void set_treatment(TreatmentKind& dst, const std::string& key,
                     const std::string& value, std::size_t line) {
    if (value == "none") {
      dst = TreatmentKind::kNone;
    } else if (value == "restart") {
      dst = TreatmentKind::kRestart;
    } else if (value == "park") {
      dst = TreatmentKind::kPark;
    } else if (value == "limp_home") {
      dst = TreatmentKind::kLimpHome;
    } else if (value == "safe_state") {
      dst = TreatmentKind::kSafeState;
    } else {
      error(line, "`" + key +
                      "` expects none|restart|park|limp_home|safe_state, "
                      "got `" +
                      value + "`");
    }
  }

  // --- per-section key dispatch --------------------------------------------
  void handle_key(const std::string& key, const std::string& value,
                  std::size_t line) {
    if (section_ == "?") return;  // section already diagnosed
    if (section_ == "policy") {
      handle_policy(key, value, line);
    } else if (section_ == "detection") {
      handle_detection(key, value, line);
    } else if (section_ == "severity") {
      handle_severity(key, value, line);
    } else if (section_ == "resource") {
      handle_resource(key, value, line);
    } else if (section_ == "thermal") {
      handle_thermal(key, value, line);
    } else if (section_ == "filesystem") {
      handle_filesystem(key, value, line);
    } else if (section_ == "escalation") {
      handle_escalation(key, value, line);
    } else if (section_ == "treatment") {
      handle_treatment(key, value, line);
    } else if (section_ == "check") {
      handle_check(key, value, line);
    } else if (section_ == "mode") {
      handle_mode(key, value, line);
    }
  }

  void unknown_key(const std::string& key, std::size_t line) {
    error(line, "unknown key `" + key + "` in [" + section_ + "]");
  }

  void handle_policy(const std::string& key, const std::string& value,
                     std::size_t line) {
    if (key == "id") {
      if (value.empty()) {
        error(line, "`id` must not be empty");
      } else {
        policy_.id = value;
      }
    } else if (key == "version") {
      set_uint(policy_.version, key, value, line, 1, 1u << 30);
    } else {
      unknown_key(key, line);
    }
  }

  void handle_detection(const std::string& key, const std::string& value,
                        std::size_t line) {
    wdg::WatchdogConfig& wd = policy_.detection.watchdog;
    if (key == "check_period_ms") {
      set_ms(wd.check_period, key, value, line, 1, 10000);
    } else if (key == "aliveness_threshold") {
      set_uint(wd.aliveness_threshold, key, value, line, 0, 1000);
    } else if (key == "arrival_rate_threshold") {
      set_uint(wd.arrival_rate_threshold, key, value, line, 0, 1000);
    } else if (key == "program_flow_threshold") {
      set_uint(wd.program_flow_threshold, key, value, line, 0, 1000);
    } else if (key == "accumulated_aliveness_threshold") {
      set_uint(wd.accumulated_aliveness_threshold, key, value, line, 0, 1000);
    } else if (key == "deadline_threshold") {
      set_uint(wd.deadline_threshold, key, value, line, 0, 1000);
    } else if (key == "communication_threshold") {
      set_uint(wd.communication_threshold, key, value, line, 0, 1000);
    } else if (key == "nvm_corruption_threshold") {
      set_uint(wd.nvm_corruption_threshold, key, value, line, 0, 1000);
    } else if (key == "resource_threshold") {
      set_uint(wd.resource_threshold, key, value, line, 0, 1000);
    } else if (key == "environment_threshold") {
      set_uint(wd.environment_threshold, key, value, line, 0, 1000);
    } else if (key == "check_rule_threshold") {
      set_uint(wd.check_rule_threshold, key, value, line, 0, 1000);
    } else if (key == "power_mode_threshold") {
      set_uint(wd.power_mode_threshold, key, value, line, 0, 1000);
    } else if (key == "ecu_faulty_task_limit") {
      set_uint(wd.ecu_faulty_task_limit, key, value, line, 1, 64);
    } else if (key == "hbm_scale") {
      set_f64(policy_.detection.hbm_scale, key, value, line, 0.01, 100.0);
    } else if (key == "aliveness_tolerance") {
      set_uint(policy_.detection.aliveness_tolerance, key, value, line, 0,
               100);
    } else if (key == "arrival_tolerance") {
      set_uint(policy_.detection.arrival_tolerance, key, value, line, 0, 100);
    } else if (key == "deadline_scale") {
      set_f64(policy_.detection.deadline_scale, key, value, line, 0.01,
              100.0);
    } else {
      unknown_key(key, line);
    }
  }

  void handle_severity(const std::string& key, const std::string& value,
                       std::size_t line) {
    for (std::size_t i = 0; i < wdg::kErrorTypeCount; ++i) {
      if (key == wdg::to_string(static_cast<wdg::ErrorType>(i))) {
        set_severity(policy_.detection.watchdog.severities[i], key, value,
                     line);
        return;
      }
    }
    unknown_key(key, line);
  }

  void handle_resource(const std::string& key, const std::string& value,
                       std::size_t line) {
    wdg::ResourceLimits& res = policy_.detection.resource;
    if (key == "watermark") {
      set_f64(res.watermark, key, value, line, 0.0, 1.0);
    } else if (key == "window_cycles") {
      set_uint(res.window_cycles, key, value, line, 1, 1000);
    } else if (key == "leak_rate_per_s") {
      set_f64(res.leak_rate_per_s, key, value, line, 0.0, 1.0e6);
    } else if (key == "leak_window_cycles") {
      set_uint(res.leak_window_cycles, key, value, line, 2, 10000);
    } else {
      unknown_key(key, line);
    }
  }

  void handle_thermal(const std::string& key, const std::string& value,
                      std::size_t line) {
    wdg::ThermalLimits& th = policy_.detection.thermal;
    if (key == "warn_c") {
      set_f64(th.warn_c, key, value, line, -100.0, 300.0);
    } else if (key == "derate_c") {
      set_f64(th.derate_c, key, value, line, -100.0, 300.0);
    } else if (key == "shutdown_c") {
      set_f64(th.shutdown_c, key, value, line, -100.0, 300.0);
    } else if (key == "hysteresis_c") {
      set_f64(th.hysteresis_c, key, value, line, 0.0, 100.0);
    } else if (key == "min_plausible_c") {
      set_f64(th.min_plausible_c, key, value, line, -273.0, 300.0);
    } else if (key == "max_plausible_c") {
      set_f64(th.max_plausible_c, key, value, line, -273.0, 500.0);
    } else if (key == "stuck_cycles") {
      set_uint(th.stuck_cycles, key, value, line, 1, 10000);
    } else if (key == "stuck_epsilon_c") {
      set_f64(th.stuck_epsilon_c, key, value, line, 0.0, 10.0);
    } else if (key == "sensor_invalid_derate_cycles") {
      set_uint(th.sensor_invalid_derate_cycles, key, value, line, 0, 10000);
    } else {
      unknown_key(key, line);
    }
  }

  void handle_filesystem(const std::string& key, const std::string& value,
                         std::size_t line) {
    wdg::FilesystemLimits& fs = policy_.detection.filesystem;
    if (key == "fill_watermark") {
      set_f64(fs.fill_watermark, key, value, line, 0.0, 1.0);
    } else if (key == "window_cycles") {
      set_uint(fs.window_cycles, key, value, line, 1, 1000);
    } else if (key == "wear_watermark") {
      set_f64(fs.wear_watermark, key, value, line, 0.0, 1.0);
    } else {
      unknown_key(key, line);
    }
  }

  void handle_escalation(const std::string& key, const std::string& value,
                         std::size_t line) {
    fmf::FmfConfig& fc = policy_.escalation.fmf;
    if (key == "fault_log_capacity") {
      set_uint(fc.fault_log_capacity, key, value, line, 1, 65536);
    } else if (key == "max_ecu_resets") {
      set_uint(fc.max_ecu_resets, key, value, line, 0, 1000);
    } else if (key == "storm_reset_limit") {
      set_uint(fc.storm_reset_limit, key, value, line, 0, 1000);
    } else if (key == "storm_window_ms") {
      set_ms(fc.storm_window, key, value, line, 0, 3600000);
    } else if (key == "restart_aging_ms") {
      set_ms(fc.restart_aging, key, value, line, 0, 3600000);
    } else if (key == "recovery_warmup_cycles") {
      set_uint(fc.recovery_warmup_cycles, key, value, line, 0, 10000);
    } else if (key == "derate_hbm_stretch") {
      set_uint(policy_.escalation.derate_hbm_stretch, key, value, line, 1,
               100);
    } else {
      unknown_key(key, line);
    }
  }

  void handle_treatment(const std::string& key, const std::string& value,
                        std::size_t line) {
    TreatmentPolicy& t = policy_.treatment;
    if (key == "safety") {
      set_treatment(t.safety.on_faulty, key, value, line);
    } else if (key == "safety_max_restarts") {
      set_uint(t.safety.max_restarts, key, value, line, 0, 1000);
    } else if (key == "assist") {
      set_treatment(t.assist.on_faulty, key, value, line);
    } else if (key == "assist_max_restarts") {
      set_uint(t.assist.max_restarts, key, value, line, 0, 1000);
    } else if (key == "qm") {
      set_treatment(t.qm.on_faulty, key, value, line);
    } else if (key == "qm_max_restarts") {
      set_uint(t.qm.max_restarts, key, value, line, 0, 1000);
    } else {
      unknown_key(key, line);
    }
  }

  void handle_check(const std::string& key, const std::string& value,
                    std::size_t line) {
    if (policy_.checks.empty()) return;  // header was diagnosed
    CheckRule& rule = policy_.checks.back();
    if (key == "signal") {
      if (value.empty()) {
        error(line, "check `signal` must not be empty");
      } else {
        rule.signal = value;
      }
    } else if (key == "min") {
      set_f64(rule.min, key, value, line, -1.0e12, 1.0e12);
    } else if (key == "max") {
      set_f64(rule.max, key, value, line, -1.0e12, 1.0e12);
    } else if (key == "fallback") {
      set_f64(rule.fallback, key, value, line, -1.0e12, 1.0e12);
    } else if (key == "period_cycles") {
      set_uint(rule.period_cycles, key, value, line, 1, 10000);
    } else if (key == "deadline_ms") {
      set_ms(rule.deadline, key, value, line, 1, 60000);
    } else if (key == "rate_min_per_s") {
      rule.rate_bounded = true;
      set_f64(rule.rate_min_per_s, key, value, line, -1.0e12, 1.0e12);
    } else if (key == "rate_max_per_s") {
      rule.rate_bounded = true;
      set_f64(rule.rate_max_per_s, key, value, line, -1.0e12, 1.0e12);
    } else {
      unknown_key(key, line);
    }
  }

  void handle_mode(const std::string& key, const std::string& value,
                   std::size_t line) {
    if (policy_.modes.empty()) return;  // header was diagnosed
    ModeOverlay& overlay = policy_.modes.back();
    if (key == "hbm_scale") {
      set_f64(overlay.hbm_scale, key, value, line, 0.01, 100.0);
    } else if (key == "aliveness_tolerance") {
      set_uint(overlay.aliveness_tolerance, key, value, line, 0, 100);
    } else if (key == "arrival_tolerance") {
      set_uint(overlay.arrival_tolerance, key, value, line, 0, 100);
    } else if (key == "deadline_scale") {
      set_f64(overlay.deadline_scale, key, value, line, 0.01, 100.0);
    } else if (key == "aliveness_armed") {
      set_bool(overlay.aliveness_armed, key, value, line);
    } else if (key == "silent_max_arrivals") {
      set_uint(overlay.silent_max_arrivals, key, value, line, 0, 1000);
    } else if (key == "checks_enabled") {
      set_bool(overlay.checks_enabled, key, value, line);
    } else if (key == "max_dwell_ms") {
      set_ms(overlay.max_dwell, key, value, line, 0, 86400000);
    } else if (key == "transition_deadline_ms") {
      set_ms(overlay.transition_deadline, key, value, line, 1, 60000);
    } else {
      unknown_key(key, line);
    }
  }

  [[nodiscard]] std::size_t line_of(const std::string& section_key) const {
    const auto it = key_lines_.find(section_key);
    return it == key_lines_.end() ? 0 : it->second;
  }

  /// Cross-key conflict validation once the whole file is parsed.
  void finalize() {
    const wdg::ThermalLimits& th = policy_.detection.thermal;
    if (!(th.warn_c < th.derate_c && th.derate_c < th.shutdown_c)) {
      std::ostringstream os;
      os << "conflicting thermal ladder: need warn_c < derate_c < "
            "shutdown_c, got "
         << th.warn_c << " / " << th.derate_c << " / " << th.shutdown_c;
      error(line_of("thermal.warn_c"), os.str());
    }
    if (!(th.min_plausible_c < th.max_plausible_c)) {
      error(line_of("thermal.min_plausible_c"),
            "thermal plausibility band is empty: min_plausible_c must be "
            "< max_plausible_c");
    }
    const std::uint32_t env_threshold =
        policy_.detection.watchdog.environment_threshold;
    if (env_threshold > 0 &&
        th.sensor_invalid_derate_cycles < env_threshold) {
      std::ostringstream os;
      os << "conflicting escalation rules: sensor_invalid_derate_cycles ("
         << th.sensor_invalid_derate_cycles
         << ") must be >= environment_threshold (" << env_threshold
         << ") so the FMF treatment lands before the precautionary derate";
      error(line_of("thermal.sensor_invalid_derate_cycles"), os.str());
    }
    const fmf::FmfConfig& fc = policy_.escalation.fmf;
    if (fc.storm_reset_limit > 0 &&
        fc.storm_window <= sim::Duration::zero()) {
      error(line_of("escalation.storm_reset_limit"),
            "conflicting escalation rules: storm_reset_limit > 0 needs "
            "storm_window_ms > 0");
    }
    for (const CheckRule& rule : policy_.checks) {
      if (rule.signal.empty()) {
        error(0, "check \"" + rule.name + "\" has no `signal`");
      }
      if (rule.min > rule.max) {
        std::ostringstream os;
        os << "check \"" << rule.name << "\" has an empty band: min ("
           << rule.min << ") > max (" << rule.max << ")";
        error(0, os.str());
      }
      if (rule.rate_bounded && rule.rate_min_per_s > rule.rate_max_per_s) {
        std::ostringstream os;
        os << "check \"" << rule.name
           << "\" has an empty rate band: rate_min_per_s ("
           << rule.rate_min_per_s << ") > rate_max_per_s ("
           << rule.rate_max_per_s << ")";
        error(0, os.str());
      }
    }
    for (const ModeOverlay& overlay : policy_.modes) {
      if (!overlay.aliveness_armed && overlay.aliveness_tolerance > 0) {
        error(0, "mode \"" + overlay.mode +
                     "\" sets aliveness_tolerance while aliveness_armed = "
                     "false: tolerance has no armed check to relax");
      }
      if (overlay.aliveness_armed && overlay.silent_max_arrivals > 0) {
        error(0, "mode \"" + overlay.mode +
                     "\" sets silent_max_arrivals while aliveness_armed = "
                     "true: the silence guard only runs during contracted "
                     "silence");
      }
    }
  }
};

}  // namespace

std::string CompileResult::format() const {
  std::ostringstream os;
  for (const Diagnostic& d : diagnostics) {
    os << "line " << d.line << ": " << d.message << '\n';
  }
  return os.str();
}

CompileResult compile_policy(std::string_view text) {
  return Compiler{}.run(text);
}

}  // namespace easis::policy
