// Check Supervision Unit: user-defined policy check rules evaluated as
// supervised virtual runnables (watchdogd's script.c generic checker,
// recast onto the paper's unit architecture).
//
// watchdogd lets the operator plug arbitrary check scripts into the
// supervision loop; here the script is a declarative `[check "name"]`
// clause of the dependability policy — a signal predicate `min <= value
// <= max` evaluated every `period_cycles` watchdog cycles. Two failure
// modes are distinguished, exactly like a real external checker:
//
//   - the check *fails*: the signal is outside its band — reported as
//     ErrorType::kCheckRule through the watchdog's external-error path,
//     so the TSI thresholds and the FMF treatment chain apply unchanged;
//   - the check *hangs*: the evaluation never returns (set_stalled()
//     injection) — caught by the supervised-process deadline window that
//     wraps every evaluation, surfacing as ErrorType::kDeadline with a
//     persistent TransgressionRecord.
//
// Every rule registers as a virtual runnable (ids from kCheckRunnableBase,
// all heartbeat/flow monitoring off) so the TSI keeps an error-indication
// vector per rule, like the CMU/RSU/ESU channel pattern.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "policy/policy.hpp"
#include "rte/signal_bus.hpp"
#include "wdg/process_supervisor.hpp"
#include "wdg/watchdog.hpp"

namespace easis::policy {

/// Virtual-runnable id range of the check engine (2000s = RSU,
/// 2100s = ESU, 2200s = check rules).
inline constexpr std::uint64_t kCheckRunnableBase = 2200;

class CheckSupervisionUnit {
 public:
  /// Faults are accounted to (task, application) like the ESU channels.
  CheckSupervisionUnit(wdg::SoftwareWatchdog& watchdog,
                       wdg::ProcessSupervisionUnit& psu, rte::SignalBus& bus,
                       TaskId task, ApplicationId application);

  /// Registers a rule: virtual runnable + deadline-supervised section.
  void add_rule(const CheckRule& rule);

  /// Periodic supervision; call every watchdog check period.
  void cycle(sim::SimTime now);

  /// Fault injection: a stalled rule's evaluation hangs — its deadline
  /// window stays open until the process-supervision cycle reports it.
  void set_stalled(std::string_view rule, bool stalled);

  /// Mode gating: while disabled (deep sleep, per the active ModeOverlay)
  /// no rule evaluates and no deadline window opens; rate-of-change
  /// history is dropped so the first evaluation after re-enable re-seeds
  /// instead of averaging the slope across the silent gap.
  void set_enabled(bool enabled);
  [[nodiscard]] bool enabled() const { return enabled_; }

  // --- introspection ------------------------------------------------------
  [[nodiscard]] std::size_t rule_count() const { return rules_.size(); }
  [[nodiscard]] std::uint64_t evaluations() const { return evaluations_; }
  [[nodiscard]] std::uint64_t failures() const { return failures_; }
  [[nodiscard]] std::uint64_t failures_of(std::string_view rule) const;
  [[nodiscard]] RunnableId runnable_of(std::string_view rule) const;

 private:
  struct RuleState {
    CheckRule rule;
    RunnableId id;
    std::size_t section = 0;
    std::uint64_t cycles = 0;
    std::uint64_t failures = 0;
    bool stalled = false;
    bool section_open = false;
    /// Previous sample for the rate-of-change predicate.
    bool has_prev = false;
    double prev_value = 0.0;
    sim::SimTime prev_time;
  };

  wdg::SoftwareWatchdog& watchdog_;
  wdg::ProcessSupervisionUnit& psu_;
  rte::SignalBus& bus_;
  TaskId task_;
  ApplicationId application_;
  std::vector<RuleState> rules_;
  std::uint64_t evaluations_ = 0;
  std::uint64_t failures_ = 0;
  bool enabled_ = true;

  void evaluate(RuleState& state, sim::SimTime now);
};

}  // namespace easis::policy
