#include "policy/catalog.hpp"

#include <cmath>
#include <utility>

#include "util/random.hpp"

namespace easis::policy {

namespace {

PolicySet variant(const char* id) {
  PolicySet p;
  p.id = id;
  return p;
}

void set_hbm_thresholds(PolicySet& p, std::uint32_t t) {
  p.detection.watchdog.aliveness_threshold = t;
  p.detection.watchdog.arrival_rate_threshold = t;
  p.detection.watchdog.program_flow_threshold = t;
  p.detection.watchdog.deadline_threshold = t;
}

/// Rounds a drawn double to 4 decimals so the canonical text stays short.
double rounded(double v) { return std::round(v * 10000.0) / 10000.0; }

std::string pad3(std::size_t n) {
  std::string s = std::to_string(n);
  while (s.size() < 3) s.insert(s.begin(), '0');
  return s;
}

}  // namespace

std::vector<PolicySet> PolicyCatalog::grid() {
  std::vector<PolicySet> out;

  // Threshold ladder: how fast the TSI escalates a repeated transgression.
  for (std::uint32_t t : {1u, 2u, 4u, 6u}) {
    PolicySet p = variant("thr");
    p.id = "thr_" + std::to_string(t);
    set_hbm_thresholds(p, t);
    out.push_back(std::move(p));
  }
  // HBM period scale: tolerance of the aliveness/arrival hypotheses.
  for (double s : {0.5, 0.75, 1.5, 2.0}) {
    PolicySet p = variant("hbm");
    p.id = "hbm_" + pad3(static_cast<std::size_t>(s * 100.0));
    p.detection.hbm_scale = s;
    out.push_back(std::move(p));
  }
  {
    PolicySet p = variant("tol_alive1");
    p.detection.aliveness_tolerance = 1;
    out.push_back(std::move(p));
  }
  {
    PolicySet p = variant("tol_arrival2");
    p.detection.arrival_tolerance = 2;
    out.push_back(std::move(p));
  }
  for (double s : {0.5, 2.0}) {
    PolicySet p = variant("dls");
    p.id = "dls_" + pad3(static_cast<std::size_t>(s * 100.0));
    p.detection.deadline_scale = s;
    out.push_back(std::move(p));
  }
  // Escalation: storm limits and reset budgets.
  for (std::uint32_t limit : {1u, 2u, 5u}) {
    PolicySet p = variant("storm");
    p.id = "storm_" + std::to_string(limit);
    p.escalation.fmf.storm_reset_limit = limit;
    out.push_back(std::move(p));
  }
  for (std::uint32_t budget : {0u, 1u, 4u}) {
    PolicySet p = variant("resets");
    p.id = "resets_" + std::to_string(budget);
    p.escalation.fmf.max_ecu_resets = budget;
    out.push_back(std::move(p));
  }
  for (std::uint32_t cycles : {5u, 20u}) {
    PolicySet p = variant("warmup");
    p.id = "warmup_" + std::to_string(cycles);
    p.escalation.fmf.recovery_warmup_cycles = cycles;
    out.push_back(std::move(p));
  }
  {
    PolicySet p = variant("aging_2s");
    p.escalation.fmf.restart_aging = sim::Duration::seconds(2);
    out.push_back(std::move(p));
  }
  // Severity remaps: which detection class escalates how hard.
  {
    PolicySet p = variant("sev_flow_major");
    p.detection.watchdog.severities[static_cast<std::size_t>(
        wdg::ErrorType::kProgramFlow)] = wdg::Severity::kMajor;
    out.push_back(std::move(p));
  }
  {
    PolicySet p = variant("sev_alive_critical");
    p.detection.watchdog.severities[static_cast<std::size_t>(
        wdg::ErrorType::kAliveness)] = wdg::Severity::kCritical;
    out.push_back(std::move(p));
  }
  {
    PolicySet p = variant("sev_cpu_major");
    p.detection.watchdog.severities[static_cast<std::size_t>(
        wdg::ErrorType::kCpuOverload)] = wdg::Severity::kMajor;
    out.push_back(std::move(p));
  }
  // Treatment role swaps.
  {
    PolicySet p = variant("treat_park_qm");
    p.treatment.qm.on_faulty = TreatmentKind::kPark;
    out.push_back(std::move(p));
  }
  {
    PolicySet p = variant("treat_limp_assist");
    p.treatment.assist.on_faulty = TreatmentKind::kLimpHome;
    out.push_back(std::move(p));
  }
  {
    PolicySet p = variant("treat_safe_safety");
    p.treatment.safety.on_faulty = TreatmentKind::kSafeState;
    out.push_back(std::move(p));
  }
  {
    PolicySet p = variant("treat_none_qm");
    p.treatment.qm.on_faulty = TreatmentKind::kNone;
    out.push_back(std::move(p));
  }
  for (std::uint32_t r : {0u, 1u, 5u}) {
    PolicySet p = variant("restarts");
    p.id = "restarts_" + std::to_string(r);
    p.treatment.safety.max_restarts = r;
    p.treatment.assist.max_restarts = r;
    out.push_back(std::move(p));
  }
  for (std::uint32_t f : {1u, 3u}) {
    PolicySet p = variant("derate");
    p.id = "derate_x" + std::to_string(f);
    p.escalation.derate_hbm_stretch = f;
    out.push_back(std::move(p));
  }
  // Thermal ladders: a tight and a loose derating schedule.
  {
    PolicySet p = variant("therm_tight");
    p.detection.thermal.warn_c = 70.0;
    p.detection.thermal.derate_c = 85.0;
    p.detection.thermal.shutdown_c = 100.0;
    out.push_back(std::move(p));
  }
  {
    PolicySet p = variant("therm_loose");
    p.detection.thermal.warn_c = 95.0;
    p.detection.thermal.derate_c = 110.0;
    p.detection.thermal.shutdown_c = 130.0;
    out.push_back(std::move(p));
  }
  // Check rules (script.c analogue): a plausibility guard that never fires
  // in nominal driving, and a deliberately tight band that does.
  {
    PolicySet p = variant("check_overspeed");
    CheckRule rule;
    rule.name = "overspeed";
    rule.signal = "vehicle.speed_kmh";
    rule.min = -1.0;
    rule.max = 250.0;
    p.checks.push_back(std::move(rule));
    out.push_back(std::move(p));
  }
  {
    PolicySet p = variant("check_tight");
    CheckRule rule;
    rule.name = "speed_band";
    rule.signal = "vehicle.speed_kmh";
    rule.min = -1.0;
    rule.max = 30.0;  // nominal driving exceeds this: a false-alarm policy
    p.checks.push_back(std::move(rule));
    out.push_back(std::move(p));
  }
  return out;
}

PolicySet PolicyCatalog::perturb(std::size_t index) const {
  // Offset past any plausible grid growth so grid and perturbation streams
  // never share a derived seed.
  util::Rng rng(util::derive_seed(seed_, 100000 + index));
  PolicySet p;
  p.id = "rand" + pad3(index);
  set_hbm_thresholds(p, static_cast<std::uint32_t>(rng.uniform_int(1, 8)));
  p.detection.watchdog.deadline_threshold =
      static_cast<std::uint32_t>(rng.uniform_int(1, 6));
  p.detection.hbm_scale = rounded(rng.uniform(0.5, 2.5));
  p.detection.deadline_scale = rounded(rng.uniform(0.5, 2.0));
  p.detection.aliveness_tolerance =
      static_cast<std::uint32_t>(rng.uniform_int(0, 1));
  p.detection.arrival_tolerance =
      static_cast<std::uint32_t>(rng.uniform_int(0, 2));
  p.escalation.fmf.storm_reset_limit =
      static_cast<std::uint32_t>(rng.uniform_int(1, 6));
  p.escalation.fmf.storm_window =
      sim::Duration::millis(rng.uniform_int(2, 20) * 1000);
  p.escalation.fmf.max_ecu_resets =
      static_cast<std::uint32_t>(rng.uniform_int(0, 4));
  p.escalation.fmf.recovery_warmup_cycles =
      static_cast<std::uint32_t>(rng.uniform_int(0, 20));
  p.escalation.derate_hbm_stretch =
      static_cast<std::uint32_t>(rng.uniform_int(1, 4));
  const std::uint32_t restarts =
      static_cast<std::uint32_t>(rng.uniform_int(0, 6));
  p.treatment.safety.max_restarts = restarts;
  p.treatment.assist.max_restarts = restarts;
  p.treatment.qm.max_restarts = restarts;
  constexpr TreatmentKind kSafetyKinds[] = {TreatmentKind::kRestart,
                                            TreatmentKind::kSafeState};
  constexpr TreatmentKind kAssistKinds[] = {TreatmentKind::kRestart,
                                            TreatmentKind::kPark,
                                            TreatmentKind::kLimpHome};
  constexpr TreatmentKind kQmKinds[] = {
      TreatmentKind::kRestart, TreatmentKind::kPark, TreatmentKind::kLimpHome,
      TreatmentKind::kNone};
  p.treatment.safety.on_faulty = kSafetyKinds[rng.uniform_int(0, 1)];
  p.treatment.assist.on_faulty = kAssistKinds[rng.uniform_int(0, 2)];
  p.treatment.qm.on_faulty = kQmKinds[rng.uniform_int(0, 3)];
  // One random severity remap per perturbation.
  const auto type = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(wdg::kErrorTypeCount) - 1));
  p.detection.watchdog.severities[type] =
      static_cast<wdg::Severity>(rng.uniform_int(0, 3));
  return p;
}

std::vector<PolicySet> PolicyCatalog::generate(std::size_t count) const {
  std::vector<PolicySet> out;
  if (count == 0) return out;
  out.push_back(baseline());
  for (PolicySet& p : grid()) {
    if (out.size() >= count) return out;
    out.push_back(std::move(p));
  }
  for (std::size_t i = 0; out.size() < count; ++i) {
    out.push_back(perturb(i));
  }
  return out;
}

}  // namespace easis::policy
