// Policy catalog: deterministic generation of policy variants for sweep
// campaigns.
//
// Two generators compose:
//   - a fixed grid of hand-picked single-axis variants (threshold ladders,
//     HBM/deadline scales, storm/reset budgets, severity remaps, treatment
//     role swaps, thermal ladders, check rules) — the interpretable axes a
//     report can reason about;
//   - seeded perturbations: util::derive_seed(seed, index) draws every
//     tunable from its validated range — the broad random sweep that finds
//     interactions the grid misses.
//
// generate(count) always starts with the baseline policy, then the grid,
// then perturbations until `count` is reached; the sequence for a given
// (seed, count) is bit-identical on every run and shard (the campaign
// determinism contract). Every generated variant round-trips through the
// compiler: generation happens as struct mutation, but the sweep harness
// feeds variants through to_text() + compile_policy() so an invalid
// variant can never silently enter a campaign.
#pragma once

#include <cstdint>
#include <vector>

#include "policy/policy.hpp"

namespace easis::policy {

class PolicyCatalog {
 public:
  explicit PolicyCatalog(std::uint64_t seed = 0) : seed_(seed) {}

  /// The fixed, seed-independent grid of named variants.
  [[nodiscard]] static std::vector<PolicySet> grid();

  /// baseline + grid + seeded perturbations, truncated/extended to exactly
  /// `count` policies (count >= 1). Ids are unique.
  [[nodiscard]] std::vector<PolicySet> generate(std::size_t count) const;

 private:
  std::uint64_t seed_;

  [[nodiscard]] PolicySet perturb(std::size_t index) const;
};

}  // namespace easis::policy
