// Declarative dependability-policy model (tentpole of the policy engine).
//
// Fantechi et al. argue complex fault-tolerance strategies should be
// *data*, not code; De Florio's recovery-language work makes the same
// point for treatment selection. This module is that idea applied to the
// paper's watchdog platform: every tunable of the detection, escalation
// and treatment chain is gathered into one typed PolicySet —
//
//   detection  — TSI thresholds, HBM period scale/tolerances, deadline
//                window scale, resource watermarks, the thermal-derating
//                ladder and the filesystem/NVM watermarks;
//   escalation — detection-class -> FMF severity mapping (carried inside
//                WatchdogConfig::severities), ECU reset budget,
//                reboot-storm limits, restart aging, recovery warm-up,
//                thermal-derate HBM stretch;
//   treatment  — per-role (safety / assist / QM) action on a faulty
//                application: restart, park, limp-home substitution,
//                controlled safe state, or nothing;
//   checks     — user-defined check rules (watchdogd's script.c analogue):
//                a signal predicate evaluated periodically as a supervised
//                virtual runnable.
//
// A PolicySet is compiled from a tiny declarative text format (see
// compiler.hpp) into these flat structs once, at startup; nothing on the
// hot path ever parses text. A default-constructed PolicySet — the
// built-in `baseline` policy — reproduces the platform's historical
// hard-coded constants exactly, so running under the baseline policy is
// byte-identical to running without one.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fmf/fmf.hpp"
#include "sim/time.hpp"
#include "wdg/config.hpp"
#include "wdg/env_monitor.hpp"
#include "wdg/resource_monitor.hpp"

namespace easis::policy {

/// Treatment selected for a faulty application of a given role.
enum class TreatmentKind : std::uint8_t {
  /// Record only; no automatic treatment.
  kNone = 0,
  /// Restart the application (escalating to termination after
  /// max_restarts, the paper's §3.3 ladder).
  kRestart,
  /// Park (terminate) the application immediately.
  kPark,
  /// Switch into the registered limp-home/degraded substitute.
  kLimpHome,
  /// Drive the whole ECU into the persistent safe state.
  kSafeState,
};

[[nodiscard]] constexpr std::string_view to_string(TreatmentKind k) {
  switch (k) {
    case TreatmentKind::kNone: return "none";
    case TreatmentKind::kRestart: return "restart";
    case TreatmentKind::kPark: return "park";
    case TreatmentKind::kLimpHome: return "limp_home";
    case TreatmentKind::kSafeState: return "safe_state";
  }
  return "?";
}

/// Maps a policy treatment onto the FMF's treatment action.
[[nodiscard]] constexpr fmf::TreatmentAction to_fmf_action(TreatmentKind k) {
  switch (k) {
    case TreatmentKind::kNone: return fmf::TreatmentAction::kNone;
    case TreatmentKind::kRestart: return fmf::TreatmentAction::kRestart;
    case TreatmentKind::kPark: return fmf::TreatmentAction::kTerminate;
    case TreatmentKind::kLimpHome: return fmf::TreatmentAction::kDegrade;
    case TreatmentKind::kSafeState: return fmf::TreatmentAction::kSafeState;
  }
  return fmf::TreatmentAction::kRestart;
}

/// Treatment configured for one application role.
struct RoleTreatment {
  TreatmentKind on_faulty = TreatmentKind::kRestart;
  /// Restarts allowed before escalating to termination (kRestart only).
  std::uint32_t max_restarts = 3;
};

/// One user-defined check rule: the signal must stay inside [min, max].
/// Evaluated every `period_cycles` watchdog cycles as a supervised virtual
/// runnable; a predicate failure reports ErrorType::kCheckRule, a hung
/// evaluation transgresses its process-supervision deadline window.
struct CheckRule {
  std::string name;
  std::string signal;
  double min = 0.0;
  double max = 1.0e9;
  /// Value assumed while the signal has never been published.
  double fallback = 0.0;
  std::uint32_t period_cycles = 10;
  /// Deadline of the supervised evaluation window.
  sim::Duration deadline = sim::Duration::millis(5);
  /// Optional rate-of-change predicate: the signal's slope between two
  /// consecutive evaluations, in units per second, must stay inside
  /// [rate_min_per_s, rate_max_per_s]. Disabled until a rate bound is
  /// given; the first evaluation only seeds the previous sample.
  bool rate_bounded = false;
  double rate_min_per_s = -1.0e12;
  double rate_max_per_s = 1.0e12;
};

/// Per-power-mode supervision overlay (`[mode.<name>]` section): while the
/// named mode is active the mode binder rescales every mode-bound
/// runnable's fault hypothesis, flips aliveness supervision between armed
/// and silence-guarding, and switches check rules on or off. A
/// default-constructed overlay leaves the base policy untouched.
struct ModeOverlay {
  /// Power-mode name this overlay binds to (lower-case identifier).
  std::string mode;
  /// Per-mode analogues of the DetectionPolicy scale/tolerance knobs.
  double hbm_scale = 1.0;
  std::uint32_t aliveness_tolerance = 0;
  std::uint32_t arrival_tolerance = 0;
  double deadline_scale = 1.0;
  /// Aliveness monitoring armed in this mode; false means heartbeats stop
  /// *by contract* (deep sleep) and arrival-rate supervision inverts into
  /// a silence guard instead of a flood guard.
  bool aliveness_armed = true;
  /// Heartbeats tolerated per arrival window while silence is contracted
  /// (aliveness_armed = false); any excess is heartbeat-during-silence.
  std::uint32_t silent_max_arrivals = 0;
  /// Check rules evaluated while this mode is active.
  bool checks_enabled = true;
  /// Longest legitimate dwell in this mode; zero disables dwell
  /// supervision (a mode the node may stay in forever, e.g. Run).
  sim::Duration max_dwell = sim::Duration::zero();
  /// Deadline for a commanded transition out of this mode to complete
  /// before the mode machine is considered hung.
  sim::Duration transition_deadline = sim::Duration::millis(50);
};

/// Detection-side tunables. WatchdogConfig carries the TSI thresholds and
/// the severity mapping; the scale/tolerance knobs adapt the per-runnable
/// fault hypotheses without restating every runnable in the policy.
struct DetectionPolicy {
  wdg::WatchdogConfig watchdog;
  /// Multiplies every monitored runnable's aliveness/arrival period
  /// (cycles, rounded, floor 1). >1 relaxes, <1 tightens the HBM.
  double hbm_scale = 1.0;
  /// Subtracted from each runnable's min_heartbeats (floor 0).
  std::uint32_t aliveness_tolerance = 0;
  /// Added to each runnable's max_arrivals.
  std::uint32_t arrival_tolerance = 0;
  /// Scales every deadline pair's permitted window (min divided, max
  /// multiplied). >1 relaxes, <1 tightens deadline supervision.
  double deadline_scale = 1.0;
  /// Default limits for supervised resources registered under this policy.
  wdg::ResourceLimits resource;
  wdg::ThermalLimits thermal;
  wdg::FilesystemLimits filesystem;
};

/// Escalation-side tunables (the FMF's reset/storm ladder).
struct EscalationPolicy {
  fmf::FmfConfig fmf;
  /// HBM stretch factor while the thermal ladder derates.
  std::uint32_t derate_hbm_stretch = 2;
};

/// Treatment selection per application role. The node assembly maps its
/// applications onto roles (SafeSpeed -> safety, SafeLane -> assist,
/// LightControl/CrashDetection -> qm).
struct TreatmentPolicy {
  RoleTreatment safety;
  RoleTreatment assist;
  RoleTreatment qm;
};

/// One complete dependability policy. The default-constructed value IS the
/// baseline policy (every member default reproduces the historical
/// constants).
struct PolicySet {
  std::string id = "baseline";
  std::uint32_t version = 1;
  DetectionPolicy detection;
  EscalationPolicy escalation;
  TreatmentPolicy treatment;
  std::vector<CheckRule> checks;
  /// Per-power-mode overlays, in declaration order.
  std::vector<ModeOverlay> modes;
};

/// The overlay bound to `mode`, or nullptr when the policy declares none
/// (the base policy then applies unchanged in that mode).
[[nodiscard]] const ModeOverlay* find_mode(const PolicySet& policy,
                                           std::string_view mode);

/// Serialises the policy into its canonical text form — the same format
/// compile_policy() consumes. Canonical means: fixed section/key order,
/// shortest round-tripping double representation; two PolicySets with the
/// same content produce the same text.
[[nodiscard]] std::string to_text(const PolicySet& policy);

/// FNV-1a (64-bit) over the canonical text: the policy's version hash.
/// Identifies the *content*, so two nodes agreeing on the hash run the
/// same policy regardless of how the text was formatted or distributed.
[[nodiscard]] std::uint64_t version_hash(const PolicySet& policy);

/// The version hash folded to 24 bits for transport in a single
/// f32-encoded diagnostic data identifier (exact up to 2^24).
[[nodiscard]] std::uint32_t version_hash24(const PolicySet& policy);

/// FNV-1a (64-bit) over one mode overlay's canonical text fragment: the
/// overlay *activation* hash. The mode manager latches it on every mode
/// switch so diagnostics can verify which overlay is actually live.
[[nodiscard]] std::uint64_t overlay_hash(const ModeOverlay& overlay);

/// The overlay activation hash folded to 24 bits for f32 DID transport.
[[nodiscard]] std::uint32_t overlay_hash24(const ModeOverlay& overlay);

/// The built-in baseline policy (a default-constructed PolicySet).
[[nodiscard]] const PolicySet& baseline();

/// The baseline policy's canonical text (to_text(baseline())).
[[nodiscard]] std::string baseline_text();

}  // namespace easis::policy
