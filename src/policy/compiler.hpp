// Policy compiler: declarative text -> validated PolicySet.
//
// The format is a deliberately tiny INI dialect (watchdogd's .conf files
// are the stylistic model):
//
//   # comment                     ; comment
//   [policy]                      one instance, id + version
//   [detection] [severity] ...    one instance each, key = value lines
//   [check "name"]                repeatable, one per check rule
//
// Compilation is strict — this is safety configuration, not preferences:
//   - unknown sections and unknown keys are errors, not warnings;
//   - every value is range-checked against the mechanism it configures;
//   - cross-key conflicts (an inverted thermal ladder, a storm limit
//     without a window, a precautionary derate racing the FMF treatment,
//     duplicate check-rule names) are rejected;
// and every diagnostic carries the 1-based line number of the offending
// text, so a rejected policy file reads like a compiler error list.
//
// Compile once at startup; the result is the flat PolicySet the runtime
// consumes. Nothing re-parses on the hot path.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "policy/policy.hpp"

namespace easis::policy {

/// One compile finding, anchored to its source line (0 = whole file).
struct Diagnostic {
  std::size_t line = 0;
  std::string message;
};

struct CompileResult {
  /// Set iff the text compiled without any diagnostic.
  std::optional<PolicySet> policy;
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] bool ok() const { return policy.has_value(); }
  /// "line N: message" per diagnostic, newline-separated.
  [[nodiscard]] std::string format() const;
};

/// Compiles a policy text. Parsing continues past errors so one pass
/// reports every finding; any diagnostic means no policy is produced.
[[nodiscard]] CompileResult compile_policy(std::string_view text);

}  // namespace easis::policy
