#include "policy/policy.hpp"

#include <cstdlib>
#include <sstream>
#include <type_traits>

namespace easis::policy {

namespace {

/// Shortest decimal representation that parses back to exactly `v`
/// (canonical-text requirement: 0.9 prints as "0.9", not
/// "0.90000000000000002", yet still round-trips bit-exactly).
std::string format_double(double v) {
  for (int precision = 1; precision <= 17; ++precision) {
    std::ostringstream os;
    os.precision(precision);
    os << v;
    if (std::strtod(os.str().c_str(), nullptr) == v) return os.str();
  }
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

class Writer {
 public:
  void section(std::string_view name) {
    if (!first_) out_ << '\n';
    first_ = false;
    out_ << '[' << name << "]\n";
  }
  void check_section(std::string_view name) {
    out_ << "\n[check \"" << name << "\"]\n";
  }
  void mode_section(std::string_view name) {
    if (!first_) out_ << '\n';
    first_ = false;
    out_ << "[mode." << name << "]\n";
  }
  template <typename T,
            typename = std::enable_if_t<std::is_integral_v<T>>>
  void key(std::string_view k, T v) {
    out_ << k << " = " << static_cast<std::uint64_t>(v) << '\n';
  }
  void key(std::string_view k, double v) {
    out_ << k << " = " << format_double(v) << '\n';
  }
  void key(std::string_view k, std::string_view v) {
    out_ << k << " = " << v << '\n';
  }
  [[nodiscard]] std::string str() const { return out_.str(); }

 private:
  std::ostringstream out_;
  bool first_ = true;
};

/// Canonical text fragment of one mode overlay — shared between to_text()
/// and overlay_hash() so the activation hash covers exactly what the
/// compiler round-trips.
void append_mode(Writer& w, const ModeOverlay& overlay) {
  w.mode_section(overlay.mode);
  w.key("hbm_scale", overlay.hbm_scale);
  w.key("aliveness_tolerance", overlay.aliveness_tolerance);
  w.key("arrival_tolerance", overlay.arrival_tolerance);
  w.key("deadline_scale", overlay.deadline_scale);
  w.key("aliveness_armed", overlay.aliveness_armed ? "true" : "false");
  w.key("silent_max_arrivals", overlay.silent_max_arrivals);
  w.key("checks_enabled", overlay.checks_enabled ? "true" : "false");
  w.key("max_dwell_ms",
        static_cast<std::uint64_t>(overlay.max_dwell.as_micros() / 1000));
  w.key("transition_deadline_ms",
        static_cast<std::uint64_t>(overlay.transition_deadline.as_micros() /
                                   1000));
}

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = 14695981039346656037ull;
  for (char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

std::string to_text(const PolicySet& policy) {
  Writer w;
  w.section("policy");
  w.key("id", policy.id);
  w.key("version", policy.version);

  const wdg::WatchdogConfig& wd = policy.detection.watchdog;
  w.section("detection");
  w.key("check_period_ms",
        static_cast<std::uint64_t>(wd.check_period.as_micros() / 1000));
  w.key("aliveness_threshold", wd.aliveness_threshold);
  w.key("arrival_rate_threshold", wd.arrival_rate_threshold);
  w.key("program_flow_threshold", wd.program_flow_threshold);
  w.key("accumulated_aliveness_threshold", wd.accumulated_aliveness_threshold);
  w.key("deadline_threshold", wd.deadline_threshold);
  w.key("communication_threshold", wd.communication_threshold);
  w.key("nvm_corruption_threshold", wd.nvm_corruption_threshold);
  w.key("resource_threshold", wd.resource_threshold);
  w.key("environment_threshold", wd.environment_threshold);
  w.key("check_rule_threshold", wd.check_rule_threshold);
  w.key("power_mode_threshold", wd.power_mode_threshold);
  w.key("ecu_faulty_task_limit", wd.ecu_faulty_task_limit);
  w.key("hbm_scale", policy.detection.hbm_scale);
  w.key("aliveness_tolerance", policy.detection.aliveness_tolerance);
  w.key("arrival_tolerance", policy.detection.arrival_tolerance);
  w.key("deadline_scale", policy.detection.deadline_scale);

  w.section("severity");
  for (std::size_t i = 0; i < wdg::kErrorTypeCount; ++i) {
    w.key(wdg::to_string(static_cast<wdg::ErrorType>(i)),
          wdg::to_string(wd.severities[i]));
  }

  const wdg::ResourceLimits& res = policy.detection.resource;
  w.section("resource");
  w.key("watermark", res.watermark);
  w.key("window_cycles", res.window_cycles);
  w.key("leak_rate_per_s", res.leak_rate_per_s);
  w.key("leak_window_cycles", res.leak_window_cycles);

  const wdg::ThermalLimits& th = policy.detection.thermal;
  w.section("thermal");
  w.key("warn_c", th.warn_c);
  w.key("derate_c", th.derate_c);
  w.key("shutdown_c", th.shutdown_c);
  w.key("hysteresis_c", th.hysteresis_c);
  w.key("min_plausible_c", th.min_plausible_c);
  w.key("max_plausible_c", th.max_plausible_c);
  w.key("stuck_cycles", th.stuck_cycles);
  w.key("stuck_epsilon_c", th.stuck_epsilon_c);
  w.key("sensor_invalid_derate_cycles", th.sensor_invalid_derate_cycles);

  const wdg::FilesystemLimits& fs = policy.detection.filesystem;
  w.section("filesystem");
  w.key("fill_watermark", fs.fill_watermark);
  w.key("window_cycles", fs.window_cycles);
  w.key("wear_watermark", fs.wear_watermark);

  const fmf::FmfConfig& fc = policy.escalation.fmf;
  w.section("escalation");
  w.key("fault_log_capacity",
        static_cast<std::uint64_t>(fc.fault_log_capacity));
  w.key("max_ecu_resets", fc.max_ecu_resets);
  w.key("storm_reset_limit", fc.storm_reset_limit);
  w.key("storm_window_ms",
        static_cast<std::uint64_t>(fc.storm_window.as_micros() / 1000));
  w.key("restart_aging_ms",
        static_cast<std::uint64_t>(fc.restart_aging.as_micros() / 1000));
  w.key("recovery_warmup_cycles", fc.recovery_warmup_cycles);
  w.key("derate_hbm_stretch", policy.escalation.derate_hbm_stretch);

  w.section("treatment");
  w.key("safety", to_string(policy.treatment.safety.on_faulty));
  w.key("safety_max_restarts", policy.treatment.safety.max_restarts);
  w.key("assist", to_string(policy.treatment.assist.on_faulty));
  w.key("assist_max_restarts", policy.treatment.assist.max_restarts);
  w.key("qm", to_string(policy.treatment.qm.on_faulty));
  w.key("qm_max_restarts", policy.treatment.qm.max_restarts);

  for (const ModeOverlay& overlay : policy.modes) append_mode(w, overlay);

  for (const CheckRule& check : policy.checks) {
    w.check_section(check.name);
    w.key("signal", check.signal);
    w.key("min", check.min);
    w.key("max", check.max);
    w.key("fallback", check.fallback);
    w.key("period_cycles", check.period_cycles);
    w.key("deadline_ms",
          static_cast<std::uint64_t>(check.deadline.as_micros() / 1000));
    if (check.rate_bounded) {
      w.key("rate_min_per_s", check.rate_min_per_s);
      w.key("rate_max_per_s", check.rate_max_per_s);
    }
  }
  return w.str();
}

std::uint64_t version_hash(const PolicySet& policy) {
  // FNV-1a, 64-bit (offset basis / prime per the reference parameters).
  return fnv1a(to_text(policy));
}

std::uint32_t version_hash24(const PolicySet& policy) {
  const std::uint64_t h = version_hash(policy);
  return static_cast<std::uint32_t>((h ^ (h >> 24) ^ (h >> 48)) & 0xFFFFFFu);
}

std::uint64_t overlay_hash(const ModeOverlay& overlay) {
  Writer w;
  append_mode(w, overlay);
  return fnv1a(w.str());
}

std::uint32_t overlay_hash24(const ModeOverlay& overlay) {
  const std::uint64_t h = overlay_hash(overlay);
  return static_cast<std::uint32_t>((h ^ (h >> 24) ^ (h >> 48)) & 0xFFFFFFu);
}

const ModeOverlay* find_mode(const PolicySet& policy, std::string_view mode) {
  for (const ModeOverlay& overlay : policy.modes) {
    if (overlay.mode == mode) return &overlay;
  }
  return nullptr;
}

const PolicySet& baseline() {
  static const PolicySet kBaseline{};
  return kBaseline;
}

std::string baseline_text() { return to_text(baseline()); }

}  // namespace easis::policy
