// Common entity id types shared across the platform libraries.
#pragma once

#include "util/strong_id.hpp"

namespace easis {

using RunnableId = util::StrongId<struct RunnableTag>;
using TaskId = util::StrongId<struct TaskTag>;
using ComponentId = util::StrongId<struct ComponentTag>;
using ApplicationId = util::StrongId<struct ApplicationTag>;
using EcuId = util::StrongId<struct EcuTag>;
using AlarmId = util::StrongId<struct AlarmTag>;
using CounterId = util::StrongId<struct CounterTag>;
using ResourceId = util::StrongId<struct ResourceTag>;
using NodeId = util::StrongId<struct NodeTag>;
using InjectionId = util::StrongId<struct InjectionTag>;

}  // namespace easis
