#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace easis::util {

void Stats::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(samples_.size());
  m2_ += delta * (x - mean_);
}

void Stats::merge(const Stats& other) {
  // Replaying through add() (instead of Chan's parallel combine) keeps the
  // merged state bitwise-equal to a serial accumulator when shards are
  // folded in order — the determinism contract the campaign harness needs.
  const std::size_t n = other.samples_.size();
  samples_.reserve(samples_.size() + n);
  // Index loop (not iterators): add() grows samples_, and other may be *this.
  for (std::size_t i = 0; i < n; ++i) add(other.samples_[i]);
}

double Stats::variance() const {
  if (samples_.size() < 2) return 0.0;
  return m2_ / static_cast<double>(samples_.size() - 1);
}

double Stats::stddev() const { return std::sqrt(variance()); }

void Stats::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Stats::min() const {
  if (empty()) throw std::logic_error("Stats::min on empty");
  ensure_sorted();
  return sorted_.front();
}

double Stats::max() const {
  if (empty()) throw std::logic_error("Stats::max on empty");
  ensure_sorted();
  return sorted_.back();
}

double Stats::percentile(double p) const {
  if (empty()) throw std::logic_error("Stats::percentile on empty");
  assert(p >= 0.0 && p <= 100.0);
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_.front();
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] + (sorted_[hi] - sorted_[lo]) * frac;
}

}  // namespace easis::util
