// Summary statistics for benchmark/campaign measurements.
#pragma once

#include <cstddef>
#include <vector>

namespace easis::util {

/// Online accumulator (Welford) plus retained samples for percentiles.
class Stats {
 public:
  void add(double x);

  /// Folds another accumulator's samples into this one, replaying them
  /// through add() in their insertion order. Merging per-shard partials in
  /// run-index order therefore reproduces the serial accumulator bit for
  /// bit; merging in any other order changes only fp rounding, not counts.
  void merge(const Stats& other);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double mean() const { return mean_; }
  /// Sample variance (n-1); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Nearest-rank percentile, p in [0, 100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;

  void ensure_sorted() const;
};

}  // namespace easis::util
