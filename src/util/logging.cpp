#include "util/logging.hpp"

#include <cstdio>

namespace easis::util {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger::Logger()
    : sink_([](LogLevel level, std::string_view component,
               std::string_view message) {
        std::fprintf(stderr, "[%.*s] %.*s: %.*s\n",
                     static_cast<int>(to_string(level).size()),
                     to_string(level).data(),
                     static_cast<int>(component.size()), component.data(),
                     static_cast<int>(message.size()), message.data());
      }) {}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

std::optional<LogLevel> parse_log_level(std::string_view name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return std::nullopt;
}

Logger::Sink Logger::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(sink_mutex_);
  std::swap(sink, sink_);
  return sink;
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view message) {
  if (!enabled(level)) return;
  std::lock_guard<std::mutex> lock(sink_mutex_);
  if (sink_) sink_(level, component, message);
}

}  // namespace easis::util
