// Time-series trace recorder.
//
// Reproduces the role of the dSPACE ControlDesk plots in the paper's
// evaluation: signals (counter values, detection results) are sampled over
// simulation time, then exported as CSV and rendered as ASCII step plots so
// the bench binaries can print "Figure 5 / Figure 6"-style diagrams.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace easis::util {

/// One sampled signal: (time, value) pairs, step-wise (value holds until the
/// next sample).
class TraceSignal {
 public:
  struct Sample {
    std::int64_t time;
    double value;
  };

  void record(std::int64_t time, double value);

  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Step-wise evaluation: value of the latest sample at or before `time`.
  [[nodiscard]] std::optional<double> value_at(std::int64_t time) const;

  [[nodiscard]] double max_value() const;
  [[nodiscard]] double min_value() const;

 private:
  std::vector<Sample> samples_;
};

/// Named collection of signals over a common time axis.
class TraceRecorder {
 public:
  /// Records a sample; creates the signal on first use.
  void record(const std::string& signal, std::int64_t time, double value);

  [[nodiscard]] bool has_signal(const std::string& signal) const;
  [[nodiscard]] const TraceSignal& signal(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> signal_names() const;

  /// Exports all signals resampled onto a uniform grid as CSV
  /// (columns: time, <signal...>).
  void write_csv(std::ostream& out, std::int64_t step) const;

  /// Renders one signal as an ASCII step plot (like one ControlDesk plot
  /// row). `height` rows, `width` columns across [t0, t1].
  void render_ascii(std::ostream& out, const std::string& name,
                    std::int64_t t0, std::int64_t t1, int width = 72,
                    int height = 8) const;

  [[nodiscard]] std::int64_t earliest_time() const;
  [[nodiscard]] std::int64_t latest_time() const;

  void clear() { signals_.clear(); }

 private:
  std::map<std::string, TraceSignal> signals_;
};

}  // namespace easis::util
