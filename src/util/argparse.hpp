// Minimal shared CLI-flag parser for the bench/campaign binaries.
//
// Every campaign binary takes the same quartet (--jobs, --seed, --runs,
// --csv); before this existed each bench hand-rolled its own argv walk.
// Flags are long-form only, `--name value` or `--name=value`; `--help`
// prints a generated usage text and parse() reports it via exited().
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace easis::util {

class ArgParser {
 public:
  explicit ArgParser(std::string program, std::string description = "");

  /// Registers a flag bound to `value`; the bound default is what --help
  /// shows. Supported types: std::uint64_t, std::int64_t, unsigned, double,
  /// bool (value-less switch), std::string. Registering a name twice is a
  /// programming error and throws std::logic_error.
  void add(const std::string& name, std::uint64_t* value,
           const std::string& help);
  void add(const std::string& name, std::int64_t* value,
           const std::string& help);
  void add(const std::string& name, unsigned* value, const std::string& help);
  void add(const std::string& name, double* value, const std::string& help);
  void add(const std::string& name, bool* value, const std::string& help);
  void add(const std::string& name, std::string* value,
           const std::string& help);

  /// Parses argv. Returns false on an unknown flag, a missing or malformed
  /// value, or --help; diagnostics/usage go to `err`. An unknown flag is
  /// never ignored: the diagnostic is followed by the generated --help
  /// listing of every registered flag (including grouped flags such as
  /// util::TelemetryFlags). Callers should exit with exited() ? 0 : 2 when
  /// parse() fails.
  [[nodiscard]] bool parse(int argc, const char* const* argv,
                           std::ostream& err);

  /// True when parse() returned false because of --help (exit 0, not 2).
  [[nodiscard]] bool exited() const { return help_requested_; }

  void print_usage(std::ostream& out) const;

 private:
  struct Flag {
    std::string name;
    std::string help;
    std::string default_text;
    bool takes_value = true;
    // Returns false when `text` does not parse as the flag's type.
    std::function<bool(const std::string& text)> assign;
  };

  void add_flag(Flag flag);
  [[nodiscard]] Flag* find(const std::string& name);

  std::string program_;
  std::string description_;
  std::vector<Flag> flags_;
  bool help_requested_ = false;
};

/// Shared telemetry flag group: every campaign binary exposes the same
/// --log-level / --events-out / --metrics-out / --flight-prefix surface.
/// register_flags() adds them to a parser; after a successful parse, call
/// apply_log_level() to push --log-level into the global Logger.
struct TelemetryFlags {
  /// Logger level name; empty = leave the process default untouched
  /// (benches that silence logging before parsing rely on that).
  std::string log_level;
  /// Structured event log path; empty = skip the export.
  std::string events_out;
  /// Metrics export path; empty = skip. ".csv" suffix selects the CSV
  /// format, anything else gets Prometheus exposition text.
  std::string metrics_out;
  /// Prefix for per-run flight-recorder dumps; empty = derive from the
  /// result CSV path.
  std::string flight_prefix;
  /// Chrome trace-event JSON path (Perfetto-loadable); empty = skip.
  /// Wall-clock artifact, never byte-compared across --jobs.
  std::string trace_out;
  /// Profile rollup CSV path (per-span min/mean/p99 across runs); empty =
  /// skip. Wall-clock artifact.
  std::string profile_csv;
  /// Deterministic profile shape CSV path (kind,span,depth,hits,runs);
  /// empty = skip. Byte-identical across --jobs — the determinism-gate
  /// artifact.
  std::string profile_shape;

  /// True when any profiling export was requested, i.e. the campaign must
  /// run with the hot-path profiler installed.
  [[nodiscard]] bool profiling_requested() const {
    return !trace_out.empty() || !profile_csv.empty() ||
           !profile_shape.empty();
  }

  void register_flags(ArgParser& parser);

  /// Applies --log-level to Logger::instance(). Returns false (with a
  /// diagnostic on `err`) for an unknown level name.
  [[nodiscard]] bool apply_log_level(std::ostream& err) const;
};

}  // namespace easis::util
