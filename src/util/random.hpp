// Seeded RNG wrapper: every stochastic element of the simulation draws from
// an explicitly seeded engine so campaigns are reproducible run-to-run.
#pragma once

#include <cstdint>
#include <random>

namespace easis::util {

/// SplitMix64 finalizer (Steele/Lea/Flood; the PCG/xoshiro seeding mixer).
/// Bijective on 64-bit words, so distinct inputs never collide.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Derives the per-run seed for run `run_index` of a campaign seeded with
/// `campaign_seed`. Pure function of (campaign_seed, run_index): the seed a
/// run gets is independent of worker count and scheduling order, which is
/// what makes sharded campaigns bit-identical to serial ones. Two mixing
/// rounds decorrelate adjacent run indices (a single round already avalanches,
/// the second guards the low bits that std::mt19937_64 seeds from).
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t campaign_seed,
                                                  std::uint64_t run_index) {
  return splitmix64(splitmix64(campaign_seed) ^ splitmix64(run_index));
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  [[nodiscard]] double gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  [[nodiscard]] bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Forks an independent child stream. Advances this engine by one draw
  /// and seeds the child through SplitMix64, so parent and child sequences
  /// are decorrelated and repeated split() calls yield distinct streams.
  [[nodiscard]] Rng split() { return Rng(splitmix64(engine_())); }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace easis::util
