// Seeded RNG wrapper: every stochastic element of the simulation draws from
// an explicitly seeded engine so campaigns are reproducible run-to-run.
#pragma once

#include <cstdint>
#include <random>

namespace easis::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  [[nodiscard]] double gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  [[nodiscard]] bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace easis::util
