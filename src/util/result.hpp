// Minimal Result<T, E> type (std::expected is C++23; we target C++20).
//
// Used for fallible operations where exceptions would be inappropriate in
// an automotive-flavoured service layer (most OSEK-style APIs return status
// codes; richer interfaces return Result).
#pragma once

#include <cassert>
#include <utility>
#include <variant>

namespace easis::util {

template <typename T, typename E>
class [[nodiscard]] Result {
 public:
  constexpr Result(T value) : storage_(std::in_place_index<0>, std::move(value)) {}
  constexpr Result(E error) : storage_(std::in_place_index<1>, std::move(error)) {}

  [[nodiscard]] constexpr bool ok() const { return storage_.index() == 0; }
  [[nodiscard]] constexpr explicit operator bool() const { return ok(); }

  [[nodiscard]] constexpr const T& value() const& {
    assert(ok());
    return std::get<0>(storage_);
  }
  [[nodiscard]] constexpr T& value() & {
    assert(ok());
    return std::get<0>(storage_);
  }
  [[nodiscard]] constexpr T&& value() && {
    assert(ok());
    return std::get<0>(std::move(storage_));
  }

  [[nodiscard]] constexpr const E& error() const& {
    assert(!ok());
    return std::get<1>(storage_);
  }

  [[nodiscard]] constexpr T value_or(T fallback) const& {
    return ok() ? std::get<0>(storage_) : std::move(fallback);
  }

 private:
  std::variant<T, E> storage_;
};

}  // namespace easis::util
