#include "util/crc8.hpp"

namespace easis::util {

namespace {

constexpr std::uint8_t kPoly = 0x1D;

constexpr std::array<std::uint8_t, 256> make_table() {
  std::array<std::uint8_t, 256> table{};
  for (unsigned byte = 0; byte < 256; ++byte) {
    std::uint8_t crc = static_cast<std::uint8_t>(byte);
    for (int bit = 0; bit < 8; ++bit) {
      crc = static_cast<std::uint8_t>((crc & 0x80u) ? (crc << 1) ^ kPoly
                                                    : crc << 1);
    }
    table[byte] = crc;
  }
  return table;
}

constexpr std::array<std::uint8_t, 256> kTable = make_table();

}  // namespace

const std::array<std::uint8_t, 256>& crc8_j1850_table() { return kTable; }

std::uint8_t crc8_j1850(const std::uint8_t* data, std::size_t length,
                        std::uint8_t crc) {
  for (std::size_t i = 0; i < length; ++i) {
    crc = kTable[static_cast<std::uint8_t>(crc ^ data[i])];
  }
  return static_cast<std::uint8_t>(crc ^ 0xFFu);
}

}  // namespace easis::util
