// Strongly-typed integer identifiers.
//
// Every entity in the platform (runnable, task, application, ECU, ...) is
// referred to by an opaque integer id. Using a distinct C++ type per entity
// kind makes it impossible to pass a TaskId where a RunnableId is expected
// (I.4: make interfaces precisely and strongly typed).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace easis::util {

/// A strongly typed id. `Tag` is a phantom type that distinguishes id kinds.
template <typename Tag>
class StrongId {
 public:
  using underlying_type = std::uint32_t;

  /// Default-constructed ids are invalid.
  constexpr StrongId() = default;
  constexpr explicit StrongId(underlying_type value) : value_(value) {}

  [[nodiscard]] constexpr underlying_type value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  /// The reserved invalid id.
  static constexpr StrongId invalid() { return StrongId{}; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    if (!id.valid()) return os << "#invalid";
    return os << '#' << id.value();
  }

 private:
  static constexpr underlying_type kInvalid =
      std::numeric_limits<underlying_type>::max();
  underlying_type value_ = kInvalid;
};

}  // namespace easis::util

template <typename Tag>
struct std::hash<easis::util::StrongId<Tag>> {
  std::size_t operator()(easis::util::StrongId<Tag> id) const noexcept {
    return std::hash<typename easis::util::StrongId<Tag>::underlying_type>{}(
        id.value());
  }
};
