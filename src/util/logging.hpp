// Lightweight leveled logging with pluggable sinks.
//
// Thread safe: the campaign harness logs from worker threads. The level is
// an atomic (so the EASIS_LOG fast path stays lock-free) and a mutex
// serialises sink replacement against sink invocation. Default sink is
// stderr; tests install a capturing sink.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace easis::util {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

[[nodiscard]] std::string_view to_string(LogLevel level);

/// Parses a lowercase level name ("trace", "debug", "info", "warn",
/// "error", "off"); nullopt on anything else.
[[nodiscard]] std::optional<LogLevel> parse_log_level(std::string_view name);

class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view component,
                                  std::string_view message)>;

  static Logger& instance();

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const {
    return level_.load(std::memory_order_relaxed);
  }

  /// Replaces the output sink; returns the previous one.
  Sink set_sink(Sink sink);

  [[nodiscard]] bool enabled(LogLevel level) const {
    return level >= level_.load(std::memory_order_relaxed);
  }

  void log(LogLevel level, std::string_view component, std::string_view message);

 private:
  Logger();
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  Sink sink_;
  /// Guards sink_ — concurrent log() calls serialise here, and set_sink()
  /// cannot swap a sink out from under a running invocation.
  std::mutex sink_mutex_;
};

/// Stream-style log statement: LOG_AT(kInfo, "wdg") << "x=" << x;
class LogStatement {
 public:
  LogStatement(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogStatement() {
    Logger::instance().log(level_, component_, stream_.str());
  }
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;

  template <typename T>
  LogStatement& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace easis::util

#define EASIS_LOG(level, component)                                   \
  if (!::easis::util::Logger::instance().enabled(level)) {            \
  } else                                                               \
    ::easis::util::LogStatement((level), (component))
