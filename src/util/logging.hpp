// Lightweight leveled logging with pluggable sinks.
//
// The simulation is single-threaded, so the logger is deliberately not
// thread safe. Default sink is stderr; tests install a capturing sink.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace easis::util {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

[[nodiscard]] std::string_view to_string(LogLevel level);

class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view component,
                                  std::string_view message)>;

  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  /// Replaces the output sink; returns the previous one.
  Sink set_sink(Sink sink);

  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  void log(LogLevel level, std::string_view component, std::string_view message);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
};

/// Stream-style log statement: LOG_AT(kInfo, "wdg") << "x=" << x;
class LogStatement {
 public:
  LogStatement(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogStatement() {
    Logger::instance().log(level_, component_, stream_.str());
  }
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;

  template <typename T>
  LogStatement& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace easis::util

#define EASIS_LOG(level, component)                                   \
  if (!::easis::util::Logger::instance().enabled(level)) {            \
  } else                                                               \
    ::easis::util::LogStatement((level), (component))
