#include "util/csv.hpp"

#include <stdexcept>

namespace easis::util {

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(out), columns_(header.size()) {
  row(header);
  rows_ = 0;  // header does not count as a data row
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_) {
    throw std::invalid_argument("CsvWriter: row width mismatch");
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::row(std::initializer_list<std::string> cells) {
  row(std::vector<std::string>(cells));
}

std::string CsvWriter::escape(std::string_view cell) {
  const bool needs_quoting =
      cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quoting) return std::string(cell);
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace easis::util
