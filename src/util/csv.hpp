// Small CSV writer used by the bench harness to dump reproducible series.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace easis::util {

class CsvWriter {
 public:
  /// Does not own the stream; the stream must outlive the writer.
  CsvWriter(std::ostream& out, std::vector<std::string> header);

  void row(const std::vector<std::string>& cells);
  void row(std::initializer_list<std::string> cells);

  [[nodiscard]] std::size_t rows_written() const { return rows_; }
  [[nodiscard]] std::size_t columns() const { return columns_; }

  /// Quotes a cell if it contains separators/quotes/newlines.
  [[nodiscard]] static std::string escape(std::string_view cell);

 private:
  std::ostream& out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

}  // namespace easis::util
