#include "util/trace.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace easis::util {

void TraceSignal::record(std::int64_t time, double value) {
  if (!samples_.empty() && time < samples_.back().time) {
    throw std::invalid_argument("TraceSignal: non-monotonic sample time");
  }
  // Collapse same-instant updates: keep the latest value.
  if (!samples_.empty() && samples_.back().time == time) {
    samples_.back().value = value;
    return;
  }
  samples_.push_back({time, value});
}

std::optional<double> TraceSignal::value_at(std::int64_t time) const {
  if (samples_.empty() || time < samples_.front().time) return std::nullopt;
  auto it = std::upper_bound(
      samples_.begin(), samples_.end(), time,
      [](std::int64_t t, const Sample& s) { return t < s.time; });
  return std::prev(it)->value;
}

double TraceSignal::max_value() const {
  double best = -std::numeric_limits<double>::infinity();
  for (const auto& s : samples_) best = std::max(best, s.value);
  return best;
}

double TraceSignal::min_value() const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& s : samples_) best = std::min(best, s.value);
  return best;
}

void TraceRecorder::record(const std::string& signal, std::int64_t time,
                           double value) {
  signals_[signal].record(time, value);
}

bool TraceRecorder::has_signal(const std::string& signal) const {
  return signals_.contains(signal);
}

const TraceSignal& TraceRecorder::signal(const std::string& name) const {
  auto it = signals_.find(name);
  if (it == signals_.end()) {
    throw std::out_of_range("TraceRecorder: unknown signal " + name);
  }
  return it->second;
}

std::vector<std::string> TraceRecorder::signal_names() const {
  std::vector<std::string> names;
  names.reserve(signals_.size());
  for (const auto& [name, _] : signals_) names.push_back(name);
  return names;
}

std::int64_t TraceRecorder::earliest_time() const {
  std::int64_t t = std::numeric_limits<std::int64_t>::max();
  for (const auto& [_, sig] : signals_) {
    if (!sig.empty()) t = std::min(t, sig.samples().front().time);
  }
  return t == std::numeric_limits<std::int64_t>::max() ? 0 : t;
}

std::int64_t TraceRecorder::latest_time() const {
  std::int64_t t = std::numeric_limits<std::int64_t>::min();
  for (const auto& [_, sig] : signals_) {
    if (!sig.empty()) t = std::max(t, sig.samples().back().time);
  }
  return t == std::numeric_limits<std::int64_t>::min() ? 0 : t;
}

void TraceRecorder::write_csv(std::ostream& out, std::int64_t step) const {
  assert(step > 0);
  out << "time";
  for (const auto& [name, _] : signals_) out << ',' << name;
  out << '\n';
  const std::int64_t t0 = earliest_time();
  const std::int64_t t1 = latest_time();
  for (std::int64_t t = t0; t <= t1; t += step) {
    out << t;
    for (const auto& [_, sig] : signals_) {
      out << ',';
      if (auto v = sig.value_at(t)) out << *v;
    }
    out << '\n';
  }
}

void TraceRecorder::render_ascii(std::ostream& out, const std::string& name,
                                 std::int64_t t0, std::int64_t t1, int width,
                                 int height) const {
  const TraceSignal& sig = signal(name);
  if (sig.empty() || t1 <= t0 || width < 2 || height < 2) {
    out << name << ": <no data>\n";
    return;
  }
  double lo = std::min(0.0, sig.min_value());
  double hi = sig.max_value();
  if (hi <= lo) hi = lo + 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (int col = 0; col < width; ++col) {
    const std::int64_t t = t0 + (t1 - t0) * col / (width - 1);
    auto v = sig.value_at(t);
    if (!v) continue;
    double frac = (*v - lo) / (hi - lo);
    int row = static_cast<int>(std::lround(frac * (height - 1)));
    row = std::clamp(row, 0, height - 1);
    grid[static_cast<std::size_t>(height - 1 - row)]
        [static_cast<std::size_t>(col)] = '*';
  }

  out << name << "  [" << lo << " .. " << hi << "]\n";
  for (const auto& line : grid) out << "  |" << line << "|\n";
  out << "  +" << std::string(static_cast<std::size_t>(width), '-') << "+\n";
  out << "   t=" << t0 << std::string(static_cast<std::size_t>(
                               std::max(1, width - 20)), ' ')
      << "t=" << t1 << "\n";
}

}  // namespace easis::util
