// Shared CRC-8 SAE J1850 (poly 0x1D, init 0xFF, final XOR 0xFF).
//
// One table-driven implementation for every layer that checks integrity
// with this polynomial: the E2E protection header (bus/e2e), the NVM bank
// checksums (fmf/nvm), the watchdog self-supervision response token
// (wdg/self_supervision) and the UDS-lite diagnostic channel (diag).
// Before this existed each caller routed through the bitwise loop private
// to the bus library; the lookup table computes the same function one
// byte at a time.
//
// Chaining convention (unchanged from the bus implementation): the final
// XOR is applied on return, so a caller that feeds data in several pieces
// un-XORs the intermediate value before passing it back in as `crc`:
//
//   crc = crc8_j1850(part2, len2, crc8_j1850(part1, len1) ^ 0xFF);
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace easis::util {

/// The 256-entry lookup table for poly 0x1D (non-reflected).
[[nodiscard]] const std::array<std::uint8_t, 256>& crc8_j1850_table();

/// CRC-8 SAE J1850 over `data[0..length)`, starting from `crc` (pass the
/// default 0xFF for a fresh computation); the final XOR 0xFF is applied on
/// return. crc8_j1850("123456789") == 0x4B, the catalogue check value.
[[nodiscard]] std::uint8_t crc8_j1850(const std::uint8_t* data,
                                      std::size_t length,
                                      std::uint8_t crc = 0xFF);

}  // namespace easis::util
