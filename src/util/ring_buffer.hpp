// Fixed-capacity ring buffer.
//
// Used for bounded in-service logs (fault log, supervision report history)
// where unbounded growth would be unacceptable on an ECU.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace easis::util {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : capacity_(capacity) {
    assert(capacity > 0);
    items_.reserve(capacity);
  }

  /// Appends an item, overwriting the oldest when full.
  void push(T item) {
    if (items_.size() < capacity_) {
      items_.push_back(std::move(item));
    } else {
      items_[head_] = std::move(item);
      head_ = (head_ + 1) % capacity_;
      ++dropped_;
    }
  }

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] bool full() const { return items_.size() == capacity_; }
  /// Number of items that were overwritten because the buffer was full.
  [[nodiscard]] std::size_t dropped() const { return dropped_; }

  /// i = 0 is the oldest retained item.
  [[nodiscard]] const T& at(std::size_t i) const {
    assert(i < items_.size());
    return items_[(head_ + i) % items_.size()];
  }

  [[nodiscard]] const T& back() const {
    assert(!items_.empty());
    return at(items_.size() - 1);
  }

  void clear() {
    items_.clear();
    head_ = 0;
    dropped_ = 0;
  }

  /// Copies the retained items oldest-first.
  [[nodiscard]] std::vector<T> snapshot() const {
    std::vector<T> out;
    out.reserve(items_.size());
    for (std::size_t i = 0; i < items_.size(); ++i) out.push_back(at(i));
    return out;
  }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // index of oldest item once full
  std::size_t dropped_ = 0;
  std::vector<T> items_;
};

}  // namespace easis::util
