#include "util/argparse.hpp"

#include <charconv>
#include <cstdlib>
#include <iomanip>
#include <stdexcept>

#include "util/logging.hpp"

namespace easis::util {

namespace {

template <typename T>
bool parse_integer(const std::string& text, T* out) {
  T value{};
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return false;
  *out = value;
  return true;
}

bool parse_double(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  *out = value;
  return true;
}

}  // namespace

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_flag(Flag flag) {
  if (find(flag.name) != nullptr) {
    // A silently shadowed flag would bind user input to the wrong value;
    // registration collisions are programming errors, so fail loudly.
    throw std::logic_error(program_ + ": duplicate flag registration '--" +
                           flag.name + "'");
  }
  flags_.push_back(std::move(flag));
}

ArgParser::Flag* ArgParser::find(const std::string& name) {
  for (auto& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

void ArgParser::add(const std::string& name, std::uint64_t* value,
                    const std::string& help) {
  add_flag({name, help, std::to_string(*value), true,
            [value](const std::string& t) { return parse_integer(t, value); }});
}

void ArgParser::add(const std::string& name, std::int64_t* value,
                    const std::string& help) {
  add_flag({name, help, std::to_string(*value), true,
            [value](const std::string& t) { return parse_integer(t, value); }});
}

void ArgParser::add(const std::string& name, unsigned* value,
                    const std::string& help) {
  add_flag({name, help, std::to_string(*value), true,
            [value](const std::string& t) { return parse_integer(t, value); }});
}

void ArgParser::add(const std::string& name, double* value,
                    const std::string& help) {
  add_flag({name, help, std::to_string(*value), true,
            [value](const std::string& t) { return parse_double(t, value); }});
}

void ArgParser::add(const std::string& name, bool* value,
                    const std::string& help) {
  add_flag({name, help, *value ? "true" : "false", false,
            [value](const std::string&) {
              *value = true;
              return true;
            }});
}

void ArgParser::add(const std::string& name, std::string* value,
                    const std::string& help) {
  add_flag({name, help, *value, true, [value](const std::string& t) {
              *value = t;
              return true;
            }});
}

bool ArgParser::parse(int argc, const char* const* argv, std::ostream& err) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      print_usage(err);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      err << program_ << ": unexpected positional argument '" << arg << "'\n";
      return false;
    }
    std::string name = arg.substr(2);
    std::string inline_value;
    bool has_inline = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline = true;
    }
    Flag* flag = find(name);
    if (flag == nullptr) {
      err << program_ << ": unknown flag '--" << name << "'\n";
      print_usage(err);
      return false;
    }
    std::string value;
    if (flag->takes_value) {
      if (has_inline) {
        value = inline_value;
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        err << program_ << ": flag '--" << name << "' expects a value\n";
        return false;
      }
    } else if (has_inline) {
      err << program_ << ": flag '--" << name << "' takes no value\n";
      return false;
    }
    if (!flag->assign(value)) {
      err << program_ << ": invalid value '" << value << "' for '--" << name
          << "'\n";
      return false;
    }
  }
  return true;
}

void ArgParser::print_usage(std::ostream& out) const {
  out << "usage: " << program_ << " [flags]\n";
  if (!description_.empty()) out << description_ << "\n";
  out << "flags:\n";
  for (const auto& flag : flags_) {
    std::string left = "  --" + flag.name + (flag.takes_value ? " <value>" : "");
    out << std::left << std::setw(28) << left << flag.help << " (default: "
        << (flag.default_text.empty() ? "\"\"" : flag.default_text) << ")\n";
  }
  out << std::left << std::setw(28) << "  --help" << "print this text\n";
}

void TelemetryFlags::register_flags(ArgParser& parser) {
  parser.add("log-level", &log_level,
             "logger level (trace/debug/info/warn/error/off; empty = keep)");
  parser.add("events-out", &events_out,
             "structured event log path (empty = skip)");
  parser.add("metrics-out", &metrics_out,
             "metrics export path, .csv = CSV else Prometheus text "
             "(empty = skip)");
  parser.add("flight-prefix", &flight_prefix,
             "flight-recorder dump prefix (empty = derive from --csv)");
  parser.add("trace-out", &trace_out,
             "Chrome trace-event JSON path, Perfetto-loadable "
             "(empty = skip; implies profiling)");
  parser.add("profile-csv", &profile_csv,
             "profile rollup CSV path, per-span min/mean/p99 across runs "
             "(empty = skip; implies profiling)");
  parser.add("profile-shape", &profile_shape,
             "deterministic profile shape CSV path "
             "(empty = skip; implies profiling)");
}

bool TelemetryFlags::apply_log_level(std::ostream& err) const {
  if (log_level.empty()) return true;
  const auto level = parse_log_level(log_level);
  if (!level) {
    err << "unknown log level '" << log_level
        << "' (expected trace/debug/info/warn/error/off)\n";
    return false;
  }
  Logger::instance().set_level(*level);
  return true;
}

}  // namespace easis::util
