#include "fmf/nvm.hpp"

#include <algorithm>
#include <cstring>

#include "util/crc8.hpp"

namespace easis::fmf {

namespace {

// Bank layout: [magic u32 | seq u32 | len u32 | crc u8 | payload...].
// The CRC covers seq, len and the payload, so a stale header glued onto a
// different payload fails the check just like flipped payload bits.
constexpr std::uint32_t kMagic = 0x455A4E56;  // "EZNV"
constexpr std::size_t kHeaderBytes = 13;

class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(const std::string& s) {
    u16(static_cast<std::uint16_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return bytes_;
  }

 private:
  std::vector<std::uint8_t> bytes_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() {
    if (pos_ >= size_) {
      ok_ = false;
      return 0;
    }
    return data_[pos_++];
  }
  std::uint16_t u16() {
    const std::uint16_t lo = u8();
    return static_cast<std::uint16_t>(lo | (u8() << 8));
  }
  std::uint32_t u32() {
    const std::uint32_t lo = u16();
    return lo | (static_cast<std::uint32_t>(u16()) << 16);
  }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    return lo | (static_cast<std::uint64_t>(u32()) << 32);
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint16_t n = u16();
    if (pos_ + n > size_) {
      ok_ = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }
  [[nodiscard]] bool ok() const { return ok_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

void serialize_image(const NvmImage& image, Writer& w) {
  w.u32(image.reset_count);
  w.u8(image.storm_latched ? 1 : 0);
  w.u16(static_cast<std::uint16_t>(image.reset_history.size()));
  for (const ResetCause& cause : image.reset_history) {
    w.u8(static_cast<std::uint8_t>(cause.source));
    w.u32(cause.task.valid() ? cause.task.value() : ~0u);
    w.u32(cause.application.valid() ? cause.application.value() : ~0u);
    w.u8(static_cast<std::uint8_t>(cause.error));
    w.i64(cause.time.as_micros());
    w.str(cause.detail);
  }
  w.u16(static_cast<std::uint16_t>(image.dtcs.size()));
  for (const PersistedDtc& dtc : image.dtcs) {
    w.u32(dtc.key.application.valid() ? dtc.key.application.value() : ~0u);
    w.u8(static_cast<std::uint8_t>(dtc.key.type));
    w.u32(dtc.occurrences);
    w.i64(dtc.first_seen.as_micros());
    w.i64(dtc.last_seen.as_micros());
    w.u8(dtc.active ? 1 : 0);
    w.u8(dtc.freeze_frame ? 1 : 0);
    if (dtc.freeze_frame) {
      w.i64(dtc.freeze_frame->captured_at.as_micros());
      w.u16(static_cast<std::uint16_t>(dtc.freeze_frame->signals.size()));
      for (const auto& [name, value] : dtc.freeze_frame->signals) {
        w.str(name);
        w.f64(value);
      }
    }
  }
  w.u16(static_cast<std::uint16_t>(image.transgressions.size()));
  for (const wdg::TransgressionRecord& record : image.transgressions) {
    w.str(record.section);
    w.u32(record.count);
    w.i64(record.worst.as_micros());
    w.i64(record.last_at.as_micros());
  }
  w.str(image.power_mode);
}

TaskId read_task(std::uint32_t raw) {
  return raw == ~0u ? TaskId{} : TaskId(raw);
}
ApplicationId read_app(std::uint32_t raw) {
  return raw == ~0u ? ApplicationId{} : ApplicationId(raw);
}

std::optional<NvmImage> deserialize_image(const std::uint8_t* data,
                                          std::size_t size) {
  Reader r(data, size);
  NvmImage image;
  image.reset_count = r.u32();
  image.storm_latched = r.u8() != 0;
  const std::uint16_t history = r.u16();
  for (std::uint16_t i = 0; i < history && r.ok(); ++i) {
    ResetCause cause;
    cause.source = static_cast<ResetSource>(r.u8());
    cause.task = read_task(r.u32());
    cause.application = read_app(r.u32());
    cause.error = static_cast<wdg::ErrorType>(r.u8());
    cause.time = sim::SimTime(r.i64());
    cause.detail = r.str();
    image.reset_history.push_back(std::move(cause));
  }
  const std::uint16_t dtcs = r.u16();
  for (std::uint16_t i = 0; i < dtcs && r.ok(); ++i) {
    PersistedDtc dtc;
    dtc.key.application = read_app(r.u32());
    dtc.key.type = static_cast<wdg::ErrorType>(r.u8());
    dtc.occurrences = r.u32();
    dtc.first_seen = sim::SimTime(r.i64());
    dtc.last_seen = sim::SimTime(r.i64());
    dtc.active = r.u8() != 0;
    if (r.u8() != 0) {
      FreezeFrame frame;
      frame.captured_at = sim::SimTime(r.i64());
      const std::uint16_t signals = r.u16();
      for (std::uint16_t s = 0; s < signals && r.ok(); ++s) {
        std::string name = r.str();
        const double value = r.f64();
        frame.signals.emplace_back(std::move(name), value);
      }
      dtc.freeze_frame = std::move(frame);
    }
    image.dtcs.push_back(std::move(dtc));
  }
  const std::uint16_t transgressions = r.u16();
  for (std::uint16_t i = 0; i < transgressions && r.ok(); ++i) {
    wdg::TransgressionRecord record;
    record.section = r.str();
    record.count = r.u32();
    record.worst = sim::Duration::micros(r.i64());
    record.last_at = sim::SimTime(r.i64());
    image.transgressions.push_back(std::move(record));
  }
  image.power_mode = r.str();
  if (!r.ok()) return std::nullopt;
  return image;
}

std::uint32_t read_u32_at(const std::vector<std::uint8_t>& bank,
                          std::size_t offset) {
  return static_cast<std::uint32_t>(bank[offset]) |
         (static_cast<std::uint32_t>(bank[offset + 1]) << 8) |
         (static_cast<std::uint32_t>(bank[offset + 2]) << 16) |
         (static_cast<std::uint32_t>(bank[offset + 3]) << 24);
}

void write_u32_at(std::vector<std::uint8_t>& bank, std::size_t offset,
                  std::uint32_t v) {
  bank[offset] = static_cast<std::uint8_t>(v);
  bank[offset + 1] = static_cast<std::uint8_t>(v >> 8);
  bank[offset + 2] = static_cast<std::uint8_t>(v >> 16);
  bank[offset + 3] = static_cast<std::uint8_t>(v >> 24);
}

/// CRC over seq + len + payload (everything after the magic and CRC byte).
std::uint8_t bank_crc(const std::vector<std::uint8_t>& bank,
                      std::size_t payload_len) {
  const std::uint8_t crc_header = util::crc8_j1850(bank.data() + 4, 8);
  return util::crc8_j1850(bank.data() + kHeaderBytes, payload_len,
                         static_cast<std::uint8_t>(crc_header ^ 0xFF));
}

struct BankView {
  bool blank = true;
  bool valid = false;
  std::uint32_t seq = 0;
  std::size_t payload_len = 0;
};

BankView inspect(const std::vector<std::uint8_t>& bank,
                 std::size_t capacity) {
  BankView view;
  if (bank.size() < kHeaderBytes) return view;
  const std::uint32_t magic = read_u32_at(bank, 0);
  if (magic == 0) return view;  // never written
  view.blank = false;
  if (magic != kMagic) return view;
  view.seq = read_u32_at(bank, 4);
  const std::uint32_t len = read_u32_at(bank, 8);
  if (kHeaderBytes + len > capacity || kHeaderBytes + len > bank.size()) {
    return view;
  }
  view.payload_len = len;
  view.valid = bank_crc(bank, len) == bank[12];
  return view;
}

}  // namespace

NvmStore::NvmStore(std::size_t bank_capacity) : capacity_(bank_capacity) {
  banks_[0].assign(capacity_, 0);
  banks_[1].assign(capacity_, 0);
}

bool NvmStore::commit(const NvmImage& image) {
  Writer w;
  serialize_image(image, w);
  const std::vector<std::uint8_t>& payload = w.bytes();
  if (kHeaderBytes + payload.size() > capacity_) {
    ++overflows_;
    return false;
  }
  const std::size_t target = 1 - active_;
  if (pending_faults_ > 0) {
    --pending_faults_;
    ++write_errors_;
    return false;
  }
  if (bank_worn(target)) {
    ++write_errors_;
    return false;
  }
  std::vector<std::uint8_t>& bank = banks_[target];
  bank.assign(capacity_, 0);
  write_u32_at(bank, 0, kMagic);
  write_u32_at(bank, 4, ++sequence_);
  write_u32_at(bank, 8, static_cast<std::uint32_t>(payload.size()));
  std::memcpy(bank.data() + kHeaderBytes, payload.data(), payload.size());
  bank[12] = bank_crc(bank, payload.size());
  active_ = target;  // flip only after the full write
  ++commits_;
  ++erase_cycles_[target];
  last_image_bytes_ = payload.size();
  return true;
}

NvmStore::LoadResult NvmStore::load() const {
  LoadResult result;
  BankView views[2] = {inspect(banks_[0], capacity_),
                       inspect(banks_[1], capacity_)};
  for (std::size_t i = 0; i < 2; ++i) {
    if (!views[i].blank && !views[i].valid) {
      result.corruption_detected = true;
      if (!result.detail.empty()) result.detail += "; ";
      result.detail += "NVM bank " + std::to_string(i) +
                       " failed CRC/format check";
    }
  }
  int best = -1;
  for (int i = 0; i < 2; ++i) {
    if (views[i].valid && (best < 0 || views[i].seq > views[best].seq)) {
      best = i;
    }
  }
  if (best < 0) return result;  // blank or fully corrupted store
  const std::vector<std::uint8_t>& bank = banks_[best];
  result.image =
      deserialize_image(bank.data() + kHeaderBytes, views[best].payload_len);
  if (!result.image) {
    // CRC matched but the payload would not parse — treat as corruption.
    result.corruption_detected = true;
    if (!result.detail.empty()) result.detail += "; ";
    result.detail +=
        "NVM bank " + std::to_string(best) + " payload malformed";
  } else if (result.corruption_detected) {
    result.detail += " (recovered from the other bank)";
  }
  return result;
}

void NvmStore::erase() {
  banks_[0].assign(capacity_, 0);
  banks_[1].assign(capacity_, 0);
  active_ = 0;
  sequence_ = 0;
  last_image_bytes_ = 0;
  // A workshop "clear fault memory" erases both banks — it costs wear too.
  ++erase_cycles_[0];
  ++erase_cycles_[1];
}

bool NvmStore::bank_worn(std::size_t bank) const {
  return erase_budget_ > 0 && erase_cycles_[bank % 2] >= erase_budget_;
}

double NvmStore::wear_level() const {
  if (erase_budget_ == 0) return 0.0;
  const std::uint32_t worst = std::max(erase_cycles_[0], erase_cycles_[1]);
  const double level =
      static_cast<double>(worst) / static_cast<double>(erase_budget_);
  return level > 1.0 ? 1.0 : level;
}

double NvmStore::fill_level() const {
  if (last_image_bytes_ == 0 || capacity_ == 0) return 0.0;
  const double level =
      static_cast<double>(kHeaderBytes + last_image_bytes_) /
      static_cast<double>(capacity_);
  return level > 1.0 ? 1.0 : level;
}

void NvmStore::corrupt_bit(std::size_t bit_index) {
  std::vector<std::uint8_t>& bank = banks_[active_];
  const std::size_t byte = (bit_index / 8) % bank.size();
  bank[byte] ^= static_cast<std::uint8_t>(1u << (bit_index % 8));
}

void NvmStore::corrupt_byte(std::size_t bank, std::size_t offset,
                            std::uint8_t mask) {
  std::vector<std::uint8_t>& b = banks_[bank % 2];
  b[offset % b.size()] ^= mask;
}

}  // namespace easis::fmf
