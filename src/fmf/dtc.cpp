#include "fmf/dtc.hpp"

#include <algorithm>

namespace easis::fmf {

DtcStore::DtcStore(const rte::SignalBus& signals,
                   std::vector<std::string> frame_signals,
                   std::size_t max_entries)
    : signals_(signals),
      frame_signals_(std::move(frame_signals)),
      max_entries_(max_entries) {}

FreezeFrame DtcStore::capture(sim::SimTime at) const {
  FreezeFrame frame;
  frame.captured_at = at;
  frame.signals.reserve(frame_signals_.size());
  for (const std::string& name : frame_signals_) {
    frame.signals.emplace_back(name, signals_.read_or(name, 0.0));
  }
  return frame;
}

void DtcStore::evict_oldest() {
  auto oldest = entries_.begin();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->second.last_seen < oldest->second.last_seen) oldest = it;
  }
  entries_.erase(oldest);
  ++evictions_;
}

void DtcStore::record(const wdg::ErrorReport& report) {
  const DtcKey key{report.application, report.type};
  if (max_entries_ != 0 && !entries_.contains(key) &&
      entries_.size() >= max_entries_) {
    evict_oldest();
  }
  auto [it, inserted] = entries_.try_emplace(key);
  DtcEntry& entry = it->second;
  if (inserted) {
    entry.key = key;
    entry.first_seen = report.time;
    entry.freeze_frame = capture(report.time);
  }
  entry.active = true;
  ++entry.occurrences;
  entry.last_seen = report.time;
}

const DtcEntry* DtcStore::entry(const DtcKey& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<DtcEntry> DtcStore::entries() const {
  std::vector<DtcEntry> out;
  out.reserve(entries_.size());
  for (const auto& [_, entry] : entries_) out.push_back(entry);
  return out;
}

std::size_t DtcStore::active_count() const {
  return static_cast<std::size_t>(
      std::count_if(entries_.begin(), entries_.end(),
                    [](const auto& kv) { return kv.second.active; }));
}

void DtcStore::set_passive(const DtcKey& key) {
  auto it = entries_.find(key);
  if (it != entries_.end()) it->second.active = false;
}

void DtcStore::clear() { entries_.clear(); }

void DtcStore::restore(const std::vector<DtcEntry>& entries) {
  entries_.clear();
  for (const DtcEntry& entry : entries) {
    if (max_entries_ != 0 && entries_.size() >= max_entries_) {
      ++evictions_;
      continue;
    }
    entries_[entry.key] = entry;
  }
}

void DtcStore::write(std::ostream& out) const {
  out << "DTC store: " << entries_.size() << " entries, " << active_count()
      << " active\n";
  for (const auto& [key, entry] : entries_) {
    out << "  DTC app" << key.application << '/'
        << wdg::to_string(key.type) << "  x" << entry.occurrences
        << (entry.active ? "  ACTIVE" : "  passive") << "  first "
        << entry.first_seen.as_millis() << " ms, last "
        << entry.last_seen.as_millis() << " ms\n";
    if (entry.freeze_frame) {
      out << "    freeze frame @" << entry.freeze_frame->captured_at.as_millis()
          << " ms:";
      for (const auto& [name, value] : entry.freeze_frame->signals) {
        out << ' ' << name << '=' << value;
      }
      out << '\n';
    }
  }
}

}  // namespace easis::fmf
