#include "fmf/fmf.hpp"

#include <stdexcept>

#include "profile/profiler.hpp"
#include "telemetry/event_bus.hpp"
#include "util/logging.hpp"

namespace easis::fmf {

namespace {

constexpr std::string_view kLog = "fmf";

void emit_fmf_event(telemetry::EventKind kind, sim::SimTime now,
                    std::string detail,
                    ApplicationId app = ApplicationId{},
                    TaskId task = TaskId{}) {
  if (!telemetry::enabled()) return;
  telemetry::Event event;
  event.time = now;
  event.component = telemetry::Component::kFmf;
  event.kind = kind;
  event.task = task;
  event.application = app;
  event.detail = std::move(detail);
  telemetry::emit(std::move(event));
}

}  // namespace

FaultManagementFramework::FaultManagementFramework(
    rte::Rte& rte, wdg::SoftwareWatchdog& watchdog,
    std::function<void()> ecu_reset, FmfConfig config)
    : rte_(rte),
      watchdog_(watchdog),
      ecu_reset_(std::move(ecu_reset)),
      config_(config),
      log_(config.fault_log_capacity) {}

void FaultManagementFramework::attach() {
  if (attached_) throw std::logic_error("FMF: already attached");
  attached_ = true;
  watchdog_.add_error_listener(
      [this](const wdg::ErrorReport& report) { on_error(report); });
  watchdog_.add_application_state_listener(
      [this](ApplicationId app, wdg::Health health, sim::SimTime now) {
        on_application_state(app, health, now);
      });
  watchdog_.add_ecu_state_listener(
      [this](wdg::Health health, sim::SimTime now) {
        on_ecu_state(health, now);
      });
  watchdog_.recovery_unit().set_result_callback(
      [this](bool ok, ApplicationId app, const wdg::ErrorReport& cause,
             sim::SimTime now) { on_recovery_result(ok, app, cause, now); });
}

void FaultManagementFramework::set_application_policy(
    ApplicationId app, ApplicationPolicy policy) {
  policies_[app] = policy;
}

void FaultManagementFramework::add_fault_listener(FaultListener listener) {
  listeners_.push_back(std::move(listener));
}

ApplicationPolicy FaultManagementFramework::policy_of(
    ApplicationId app) const {
  auto it = policies_.find(app);
  return it == policies_.end() ? ApplicationPolicy{} : it->second;
}

void FaultManagementFramework::on_error(const wdg::ErrorReport& report) {
  EASIS_PROFILE_SPAN("fmf.react");
  ++faults_;
  FaultRecord record{"swd", report, watchdog_.severity(report.type)};
  log_.push(record);
  last_fault_ = record;  // candidate reset-cause evidence
  if (dtc_store_ != nullptr) dtc_store_->record(report);
  // Inform the applications about the detected fault.
  for (const auto& listener : listeners_) listener(record);
}

void FaultManagementFramework::on_application_state(ApplicationId app,
                                                    wdg::Health health,
                                                    sim::SimTime now) {
  if (health != wdg::Health::kFaulty) {
    // Application healed: its DTCs become passive (history retained).
    if (dtc_store_ != nullptr) {
      for (std::size_t t = 0; t < wdg::kErrorTypeCount; ++t) {
        dtc_store_->set_passive(
            DtcKey{app, static_cast<wdg::ErrorType>(t)});
      }
    }
    return;
  }
  // If the global ECU state is faulty the ECU-level treatment takes over
  // (the ECU-state callback fires after task/application callbacks).
  if (watchdog_.ecu_health() == wdg::Health::kFaulty) return;
  // In the latched storm state the node is parked in limp-home; per-app
  // treatments would fight the safe-state configuration.
  if (storm_latched_) return;

  const ApplicationPolicy policy = policy_of(app);
  switch (policy.on_faulty) {
    case TreatmentAction::kNone:
      break;
    case TreatmentAction::kRestart:
      if (restart_pressure(app, now) < policy.max_restarts) {
        restart_application(app, now);
      } else {
        terminate_application(app, now);
      }
      break;
    case TreatmentAction::kTerminate:
      terminate_application(app, now);
      break;
    case TreatmentAction::kDegrade:
      degrade_application(app, now);
      break;
    case TreatmentAction::kSafeState: {
      ResetCause cause;
      cause.source = ResetSource::kPolicySafeState;
      cause.application = app;
      cause.time = now;
      if (last_fault_) {
        cause.task = last_fault_->report.task;
        cause.error = last_fault_->report.type;
      }
      cause.detail = "policy treatment: safe state for application " +
                     rte_.application_name(app);
      request_safe_state(std::move(cause), now);
      break;
    }
  }
}

void FaultManagementFramework::on_ecu_state(wdg::Health health,
                                            sim::SimTime now) {
  if (health != wdg::Health::kFaulty) return;
  ResetCause cause;
  cause.source = ResetSource::kEcuFaulty;
  cause.time = now;
  if (last_fault_) {
    cause.task = last_fault_->report.task;
    cause.application = last_fault_->report.application;
    cause.error = last_fault_->report.type;
    cause.detail = last_fault_->report.detail;
  }
  if (cause.detail.empty()) {
    cause.detail = std::string("global ECU state faulty (") +
                   std::string(wdg::to_string(cause.error)) + ")";
  }
  request_reset(std::move(cause), now);
}

void FaultManagementFramework::request_reset(ResetCause cause,
                                             sim::SimTime now) {
  emit_fmf_event(telemetry::EventKind::kResetRequested, now,
                 std::string(to_string(cause.source)) +
                     (cause.detail.empty() ? "" : ": " + cause.detail),
                 cause.application, cause.task);
  if (storm_latched_) {
    EASIS_LOG(util::LogLevel::kError, kLog)
        << "reset requested (" << to_string(cause.source)
        << ") but reboot storm is latched; staying in safe state";
    emit_fmf_event(telemetry::EventKind::kResetRefused, now,
                   "reboot storm latched; staying in safe state",
                   cause.application, cause.task);
    return;
  }
  if (recent_resets(now) >= config_.storm_reset_limit) {
    latch_storm(cause, now);
    return;
  }
  if (ecu_resets_ >= config_.max_ecu_resets) {
    EASIS_LOG(util::LogLevel::kError, kLog)
        << "ECU faulty but reset budget exhausted; staying faulty";
    emit_fmf_event(telemetry::EventKind::kResetRefused, now,
                   "reset budget exhausted", cause.application, cause.task);
    return;
  }
  ++ecu_resets_;
  EASIS_LOG(util::LogLevel::kWarn, kLog)
      << "ECU software reset #" << ecu_resets_ << " ("
      << to_string(cause.source) << "): " << cause.detail;
  emit_fmf_event(telemetry::EventKind::kResetPerformed, now,
                 "reset #" + std::to_string(ecu_resets_) + " (" +
                     std::string(to_string(cause.source)) + ")",
                 cause.application, cause.task);
  record_reset_cause(std::move(cause));
  persist();  // the reset-cause record must survive the reset it explains
  if (nvm_ != nullptr) {
    emit_fmf_event(telemetry::EventKind::kNvmCommit, now,
                   "reset-cause record persisted");
  }
  if (ecu_reset_) ecu_reset_();
}

void FaultManagementFramework::latch_storm(const ResetCause& cause,
                                           sim::SimTime now) {
  storm_latched_ = true;
  EASIS_LOG(util::LogLevel::kError, kLog)
      << "reboot storm: " << config_.storm_reset_limit << " resets within "
      << config_.storm_window << "; refusing further resets, entering "
      << "limp-home safe state";
  // Document the decision: a reset-cause record (not a performed reset)
  // and a fault-log entry / DTC explaining why the ECU is parked.
  ResetCause decision = cause;
  decision.time = now;
  decision.detail = "reboot storm latched after " +
                    std::to_string(config_.storm_reset_limit) +
                    " resets; limp-home (" + decision.detail + ")";
  record_reset_cause(decision);

  wdg::ErrorReport storm_report;
  storm_report.task = cause.task;
  storm_report.application = cause.application;
  storm_report.type = cause.error;
  storm_report.time = now;
  storm_report.detail = decision.detail;
  FaultRecord record{"fmf.storm", storm_report, wdg::Severity::kCritical};
  log_.push(record);
  if (dtc_store_ != nullptr) dtc_store_->record(storm_report);
  for (const auto& listener : listeners_) listener(record);

  emit_fmf_event(telemetry::EventKind::kStormLatched, now, decision.detail,
                 cause.application, cause.task);
  persist();  // the latch itself must survive power cycles
  if (nvm_ != nullptr) {
    emit_fmf_event(telemetry::EventKind::kNvmCommit, now,
                   "storm latch persisted");
  }
  if (safe_state_hook_) safe_state_hook_(decision);
}

void FaultManagementFramework::request_safe_state(ResetCause cause,
                                                  sim::SimTime now) {
  if (storm_latched_) return;  // already parked; the latch is terminal
  storm_latched_ = true;
  EASIS_LOG(util::LogLevel::kError, kLog)
      << "controlled shutdown into safe state ("
      << to_string(cause.source) << "): " << cause.detail;
  ResetCause decision = std::move(cause);
  decision.time = now;
  record_reset_cause(decision);

  wdg::ErrorReport report;
  report.task = decision.task;
  report.application = decision.application;
  report.type = decision.error;
  report.time = now;
  report.detail = decision.detail;
  FaultRecord record{"fmf.shutdown", report, wdg::Severity::kCritical};
  log_.push(record);
  if (dtc_store_ != nullptr) dtc_store_->record(report);
  for (const auto& listener : listeners_) listener(record);

  emit_fmf_event(telemetry::EventKind::kStormLatched, now, decision.detail,
                 decision.application, decision.task);
  persist();  // the shutdown decision must survive the power cycle
  if (nvm_ != nullptr) {
    emit_fmf_event(telemetry::EventKind::kNvmCommit, now,
                   "safe-state decision persisted");
  }
  if (safe_state_hook_) safe_state_hook_(decision);
}

void FaultManagementFramework::record_reset_cause(ResetCause cause) {
  reset_history_.push_back(cause);
  if (reset_history_.size() > kResetHistoryDepth) {
    reset_history_.erase(reset_history_.begin());
  }
  last_reset_cause_ = std::move(cause);
}

std::uint32_t FaultManagementFramework::recent_resets(sim::SimTime now) const {
  std::uint32_t count = 0;
  for (const ResetCause& cause : reset_history_) {
    if (now - cause.time < config_.storm_window) ++count;
  }
  return count;
}

void FaultManagementFramework::clear_monitoring_state(ApplicationId app,
                                                      sim::SimTime now) {
  for (TaskId task : rte_.tasks_of_application(app)) {
    watchdog_.clear_task_state(task, now);
  }
  for (RunnableId runnable : rte_.runnables_of_application(app)) {
    if (watchdog_.heartbeat_unit().monitors(runnable)) {
      watchdog_.reset_runnable(runnable);
    }
  }
}

void FaultManagementFramework::restart_application(ApplicationId app,
                                                   sim::SimTime now) {
  ++restarts_[app];
  restart_times_[app].push_back(now);
  EASIS_LOG(util::LogLevel::kWarn, kLog)
      << "restarting application " << rte_.application_name(app)
      << " (restart #" << restarts_[app] << ")";
  emit_fmf_event(telemetry::EventKind::kTreatmentAction, now,
                 "restart " + rte_.application_name(app) + " (#" +
                     std::to_string(restarts_[app]) + ")",
                 app);
  rte_.restart_application(app);
  // Clear monitoring state so the restarted application starts clean.
  clear_monitoring_state(app, now);
  // Validate the treatment: the restarted runnables must re-announce inside
  // the warm-up window or the FMF escalates immediately.
  if (config_.recovery_warmup_cycles > 0) {
    std::vector<RunnableId> required;
    for (RunnableId runnable : rte_.runnables_of_application(app)) {
      if (watchdog_.heartbeat_unit().monitors(runnable) &&
          watchdog_.activation_status(runnable) &&
          watchdog_.heartbeat_unit().config(runnable).monitor_aliveness) {
        required.push_back(runnable);
      }
    }
    watchdog_.recovery_unit().begin(std::move(required), app,
                                    config_.recovery_warmup_cycles, now);
  }
}

void FaultManagementFramework::begin_ecu_recovery_window(sim::SimTime now) {
  if (config_.recovery_warmup_cycles == 0) return;
  std::vector<RunnableId> required;
  for (RunnableId runnable :
       watchdog_.heartbeat_unit().monitored_runnables()) {
    // Sporadic runnables (arrival-rate-only hypotheses) cannot be required
    // to re-announce within a fixed warm-up window.
    if (watchdog_.activation_status(runnable) &&
        watchdog_.heartbeat_unit().config(runnable).monitor_aliveness) {
      required.push_back(runnable);
    }
  }
  watchdog_.recovery_unit().begin(std::move(required), ApplicationId{},
                                  config_.recovery_warmup_cycles, now);
}

void FaultManagementFramework::on_recovery_result(
    bool ok, ApplicationId app, const wdg::ErrorReport& cause,
    sim::SimTime now) {
  if (ok) {
    EASIS_LOG(util::LogLevel::kInfo, kLog)
        << "post-reset recovery validated clean"
        << (app.valid() ? " (application scope)" : " (ECU scope)");
    return;
  }
  FaultRecord record{"fmf.recovery", cause, wdg::Severity::kCritical};
  log_.push(record);
  if (dtc_store_ != nullptr) dtc_store_->record(cause);
  for (const auto& listener : listeners_) listener(record);
  if (app.valid()) {
    // The restart demonstrably did not fix it; skip the remaining restart
    // budget and terminate right away.
    EASIS_LOG(util::LogLevel::kWarn, kLog)
        << "recovery validation failed for application "
        << rte_.application_name(app) << "; escalating to termination";
    terminate_application(app, now);
    return;
  }
  ResetCause reset_cause;
  reset_cause.source = ResetSource::kRecoveryFailure;
  reset_cause.task = cause.task;
  reset_cause.application = cause.application;
  reset_cause.error = cause.type;
  reset_cause.time = now;
  reset_cause.detail = cause.detail.empty()
                           ? "post-reset recovery validation failed"
                           : "recovery validation: " + cause.detail;
  request_reset(std::move(reset_cause), now);
}

void FaultManagementFramework::set_degraded_mode(ApplicationId app,
                                                 std::function<void()> enter,
                                                 std::function<void()> exit) {
  DegradedMode mode;
  mode.enter = std::move(enter);
  mode.exit = std::move(exit);
  degraded_[app] = std::move(mode);
}

bool FaultManagementFramework::is_degraded(ApplicationId app) const {
  auto it = degraded_.find(app);
  return it != degraded_.end() && it->second.active;
}

void FaultManagementFramework::degrade_application(ApplicationId app,
                                                   sim::SimTime now) {
  auto it = degraded_.find(app);
  if (it == degraded_.end() || !it->second.enter) {
    // No degraded mode registered: fall back to restart semantics.
    restart_application(app, now);
    return;
  }
  DegradedMode& mode = it->second;
  if (mode.active) {
    // Fault while already degraded: the reconfiguration did not help.
    terminate_application(app, now);
    return;
  }
  mode.active = true;
  ++mode.entries;
  EASIS_LOG(util::LogLevel::kWarn, kLog)
      << "reconfiguring application " << rte_.application_name(app)
      << " into degraded mode";
  emit_fmf_event(telemetry::EventKind::kTreatmentAction, now,
                 "degrade " + rte_.application_name(app), app);
  mode.enter();
  clear_monitoring_state(app, now);
}

void FaultManagementFramework::recover_application(ApplicationId app,
                                                   sim::SimTime now) {
  auto it = degraded_.find(app);
  if (it == degraded_.end() || !it->second.active) return;
  it->second.active = false;
  EASIS_LOG(util::LogLevel::kInfo, kLog)
      << "recovering application " << rte_.application_name(app)
      << " from degraded mode";
  emit_fmf_event(telemetry::EventKind::kTreatmentAction, now,
                 "recover " + rte_.application_name(app) +
                     " from degraded mode",
                 app);
  if (it->second.exit) it->second.exit();
  clear_monitoring_state(app, now);
}

void FaultManagementFramework::terminate_application(ApplicationId app,
                                                     sim::SimTime now) {
  ++terminations_[app];
  EASIS_LOG(util::LogLevel::kWarn, kLog)
      << "terminating application " << rte_.application_name(app);
  emit_fmf_event(telemetry::EventKind::kTreatmentAction, now,
                 "terminate " + rte_.application_name(app), app);
  // Deactivate monitoring first so the dead runnables do not keep
  // generating aliveness errors.
  for (RunnableId runnable : rte_.runnables_of_application(app)) {
    if (watchdog_.heartbeat_unit().monitors(runnable)) {
      watchdog_.set_activation_status(runnable, false);
    }
  }
  for (TaskId task : rte_.tasks_of_application(app)) {
    watchdog_.clear_task_state(task, now);
  }
  rte_.set_application_enabled(app, false);
}

void FaultManagementFramework::persist() {
  if (nvm_ == nullptr) return;
  NvmImage image;
  image.reset_count = ecu_resets_;
  image.storm_latched = storm_latched_;
  image.reset_history = reset_history_;
  if (dtc_store_ != nullptr) {
    for (const DtcEntry& entry : dtc_store_->entries()) {
      image.dtcs.push_back(PersistedDtc{entry.key, entry.occurrences,
                                        entry.first_seen, entry.last_seen,
                                        entry.active, entry.freeze_frame});
    }
  }
  if (transgression_snapshot_) {
    image.transgressions = transgression_snapshot_();
  }
  if (power_mode_snapshot_) image.power_mode = power_mode_snapshot_();
  std::uint32_t overflows_seen = nvm_->overflows();
  while (!nvm_->commit(image)) {
    const bool capacity = nvm_->overflows() > overflows_seen;
    overflows_seen = nvm_->overflows();
    if (!capacity) {
      // Wear-out or transient write fault: nothing to evict will help.
      ++nvm_write_failures_;
      EASIS_LOG(util::LogLevel::kError, kLog)
          << "NVM commit failed: write error (flash wear or fault)";
      return;
    }
    // Flash full: degrade gracefully, lowest-priority entry first.
    if (!evict_one(image)) {
      EASIS_LOG(util::LogLevel::kError, kLog)
          << "NVM commit failed: image exceeds bank capacity even after "
          << "evicting all expendable fault-memory entries";
      return;
    }
    ++nvm_evictions_;
  }
}

bool FaultManagementFramework::evict_one(NvmImage& image) {
  // Eviction ladder (lowest priority first). The reset-cause chain's
  // newest entry and the transgression records are never dropped: they
  // explain why the ECU is in the state it is in.
  auto oldest_dtc = [&image](bool active) -> std::size_t {
    std::size_t best = image.dtcs.size();
    for (std::size_t i = 0; i < image.dtcs.size(); ++i) {
      if (image.dtcs[i].active != active) continue;
      if (best == image.dtcs.size() ||
          image.dtcs[i].last_seen < image.dtcs[best].last_seen) {
        best = i;
      }
    }
    return best;
  };
  for (const bool active : {false, true}) {
    // First the freeze frames of this class (cheap, keeps the DTC), then
    // whole entries.
    std::size_t best = image.dtcs.size();
    for (std::size_t i = 0; i < image.dtcs.size(); ++i) {
      if (image.dtcs[i].active != active || !image.dtcs[i].freeze_frame) {
        continue;
      }
      if (best == image.dtcs.size() ||
          image.dtcs[i].last_seen < image.dtcs[best].last_seen) {
        best = i;
      }
    }
    if (best < image.dtcs.size()) {
      image.dtcs[best].freeze_frame.reset();
      return true;
    }
    const std::size_t victim = oldest_dtc(active);
    if (victim < image.dtcs.size()) {
      image.dtcs.erase(image.dtcs.begin() +
                       static_cast<std::ptrdiff_t>(victim));
      return true;
    }
  }
  // Last resort: trim the reset history down to the newest entry — the
  // reset-cause chain must keep at least the most recent decision.
  if (image.reset_history.size() > 1) {
    image.reset_history.erase(image.reset_history.begin());
    return true;
  }
  return false;
}

void FaultManagementFramework::boot_from_nvm(sim::SimTime now) {
  if (nvm_ == nullptr) return;
  const NvmStore::LoadResult result = nvm_->load();
  if (result.image) {
    const NvmImage& image = *result.image;
    if (image.reset_count > ecu_resets_) ecu_resets_ = image.reset_count;
    reset_history_ = image.reset_history;
    if (!reset_history_.empty()) last_reset_cause_ = reset_history_.back();
    if (dtc_store_ != nullptr) {
      std::vector<DtcEntry> entries;
      entries.reserve(image.dtcs.size());
      for (const PersistedDtc& dtc : image.dtcs) {
        entries.push_back(DtcEntry{dtc.key, dtc.occurrences, dtc.first_seen,
                                   dtc.last_seen, dtc.active,
                                   dtc.freeze_frame});
      }
      dtc_store_->restore(entries);
    }
    if (transgression_restore_ && !image.transgressions.empty()) {
      transgression_restore_(image.transgressions);
    }
    if (power_mode_restore_ && !image.power_mode.empty()) {
      power_mode_restore_(image.power_mode);
    }
    emit_fmf_event(telemetry::EventKind::kNvmRestore, now,
                   "restored " + std::to_string(image.reset_count) +
                       " reset(s), " + std::to_string(image.dtcs.size()) +
                       " DTC(s), " +
                       std::to_string(image.transgressions.size()) +
                       " transgression record(s), storm " +
                       (image.storm_latched ? "latched" : "clear"));
    if (image.storm_latched && !storm_latched_) {
      // The latch is persistent: a power cycle must not re-enter the
      // naive reset loop. Re-enter the safe state right at boot.
      storm_latched_ = true;
      EASIS_LOG(util::LogLevel::kError, kLog)
          << "NVM carries a latched reboot storm; re-entering safe state";
      if (safe_state_hook_) {
        safe_state_hook_(last_reset_cause_ ? *last_reset_cause_
                                           : ResetCause{});
      }
    }
  }
  if (result.corruption_detected) {
    // Report *after* the restore: the corruption DTC must not be wiped by
    // re-seeding the store from the surviving bank.
    wdg::ErrorReport report;
    report.type = wdg::ErrorType::kNvmCorruption;
    report.time = now;
    report.detail = result.detail;
    watchdog_.report_external_error(std::move(report));
  }
}

void FaultManagementFramework::write_diagnostics(std::ostream& out) const {
  out << "FMF fault memory: " << ecu_resets_ << " ECU resets, storm "
      << (storm_latched_ ? "LATCHED" : "clear") << '\n';
  if (last_reset_cause_ && last_reset_cause_->source != ResetSource::kNone) {
    const ResetCause& cause = *last_reset_cause_;
    out << "  last reset cause: " << to_string(cause.source) << " task "
        << cause.task << " app" << cause.application << ' '
        << wdg::to_string(cause.error) << " at " << cause.time.as_millis()
        << " ms: " << cause.detail << '\n';
  }
  for (const ResetCause& cause : reset_history_) {
    out << "  reset @" << cause.time.as_millis() << " ms  "
        << to_string(cause.source) << "  " << wdg::to_string(cause.error)
        << "  " << cause.detail << '\n';
  }
  if (dtc_store_ != nullptr) dtc_store_->write(out);
}

std::uint32_t FaultManagementFramework::restarts_performed(
    ApplicationId app) const {
  auto it = restarts_.find(app);
  return it == restarts_.end() ? 0 : it->second;
}

std::uint32_t FaultManagementFramework::restart_pressure(
    ApplicationId app, sim::SimTime now) const {
  if (config_.restart_aging.as_micros() <= 0) return restarts_performed(app);
  auto it = restart_times_.find(app);
  if (it == restart_times_.end()) return 0;
  std::uint32_t count = 0;
  for (sim::SimTime t : it->second) {
    if (now - t < config_.restart_aging) ++count;
  }
  return count;
}

std::uint32_t FaultManagementFramework::terminations_performed(
    ApplicationId app) const {
  auto it = terminations_.find(app);
  return it == terminations_.end() ? 0 : it->second;
}

std::uint32_t FaultManagementFramework::degradations_performed(
    ApplicationId app) const {
  auto it = degraded_.find(app);
  return it == degraded_.end() ? 0 : it->second.entries;
}

}  // namespace easis::fmf
