#include "fmf/fmf.hpp"

#include <stdexcept>

#include "util/logging.hpp"

namespace easis::fmf {

namespace {
constexpr std::string_view kLog = "fmf";
}

FaultManagementFramework::FaultManagementFramework(
    rte::Rte& rte, wdg::SoftwareWatchdog& watchdog,
    std::function<void()> ecu_reset, FmfConfig config)
    : rte_(rte),
      watchdog_(watchdog),
      ecu_reset_(std::move(ecu_reset)),
      config_(config),
      log_(config.fault_log_capacity) {}

void FaultManagementFramework::attach() {
  if (attached_) throw std::logic_error("FMF: already attached");
  attached_ = true;
  watchdog_.add_error_listener(
      [this](const wdg::ErrorReport& report) { on_error(report); });
  watchdog_.add_application_state_listener(
      [this](ApplicationId app, wdg::Health health, sim::SimTime now) {
        on_application_state(app, health, now);
      });
  watchdog_.add_ecu_state_listener(
      [this](wdg::Health health, sim::SimTime now) {
        on_ecu_state(health, now);
      });
}

void FaultManagementFramework::set_application_policy(
    ApplicationId app, ApplicationPolicy policy) {
  policies_[app] = policy;
}

void FaultManagementFramework::add_fault_listener(FaultListener listener) {
  listeners_.push_back(std::move(listener));
}

ApplicationPolicy FaultManagementFramework::policy_of(
    ApplicationId app) const {
  auto it = policies_.find(app);
  return it == policies_.end() ? ApplicationPolicy{} : it->second;
}

void FaultManagementFramework::on_error(const wdg::ErrorReport& report) {
  ++faults_;
  FaultRecord record{"swd", report,
                     wdg::SoftwareWatchdog::severity_of(report.type)};
  log_.push(record);
  if (dtc_store_ != nullptr) dtc_store_->record(report);
  // Inform the applications about the detected fault.
  for (const auto& listener : listeners_) listener(record);
}

void FaultManagementFramework::on_application_state(ApplicationId app,
                                                    wdg::Health health,
                                                    sim::SimTime now) {
  if (health != wdg::Health::kFaulty) {
    // Application healed: its DTCs become passive (history retained).
    if (dtc_store_ != nullptr) {
      for (std::size_t t = 0; t < wdg::kErrorTypeCount; ++t) {
        dtc_store_->set_passive(
            DtcKey{app, static_cast<wdg::ErrorType>(t)});
      }
    }
    return;
  }
  // If the global ECU state is faulty the ECU-level treatment takes over
  // (the ECU-state callback fires after task/application callbacks).
  if (watchdog_.ecu_health() == wdg::Health::kFaulty) return;

  const ApplicationPolicy policy = policy_of(app);
  switch (policy.on_faulty) {
    case TreatmentAction::kNone:
      break;
    case TreatmentAction::kRestart:
      if (restarts_[app] < policy.max_restarts) {
        restart_application(app, now);
      } else {
        terminate_application(app, now);
      }
      break;
    case TreatmentAction::kTerminate:
      terminate_application(app, now);
      break;
    case TreatmentAction::kDegrade:
      degrade_application(app, now);
      break;
  }
}

void FaultManagementFramework::on_ecu_state(wdg::Health health,
                                            sim::SimTime now) {
  (void)now;
  if (health != wdg::Health::kFaulty) return;
  if (ecu_resets_ >= config_.max_ecu_resets) {
    EASIS_LOG(util::LogLevel::kError, kLog)
        << "ECU faulty but reset budget exhausted; staying faulty";
    return;
  }
  ++ecu_resets_;
  EASIS_LOG(util::LogLevel::kWarn, kLog)
      << "global ECU state faulty -> software reset #" << ecu_resets_;
  if (ecu_reset_) ecu_reset_();
}

void FaultManagementFramework::clear_monitoring_state(ApplicationId app,
                                                      sim::SimTime now) {
  for (TaskId task : rte_.tasks_of_application(app)) {
    watchdog_.clear_task_state(task, now);
  }
  for (RunnableId runnable : rte_.runnables_of_application(app)) {
    if (watchdog_.heartbeat_unit().monitors(runnable)) {
      watchdog_.reset_runnable(runnable);
    }
  }
}

void FaultManagementFramework::restart_application(ApplicationId app,
                                                   sim::SimTime now) {
  ++restarts_[app];
  EASIS_LOG(util::LogLevel::kWarn, kLog)
      << "restarting application " << rte_.application_name(app)
      << " (restart #" << restarts_[app] << ")";
  rte_.restart_application(app);
  // Clear monitoring state so the restarted application starts clean.
  clear_monitoring_state(app, now);
}

void FaultManagementFramework::set_degraded_mode(ApplicationId app,
                                                 std::function<void()> enter,
                                                 std::function<void()> exit) {
  DegradedMode mode;
  mode.enter = std::move(enter);
  mode.exit = std::move(exit);
  degraded_[app] = std::move(mode);
}

bool FaultManagementFramework::is_degraded(ApplicationId app) const {
  auto it = degraded_.find(app);
  return it != degraded_.end() && it->second.active;
}

void FaultManagementFramework::degrade_application(ApplicationId app,
                                                   sim::SimTime now) {
  auto it = degraded_.find(app);
  if (it == degraded_.end() || !it->second.enter) {
    // No degraded mode registered: fall back to restart semantics.
    restart_application(app, now);
    return;
  }
  DegradedMode& mode = it->second;
  if (mode.active) {
    // Fault while already degraded: the reconfiguration did not help.
    terminate_application(app, now);
    return;
  }
  mode.active = true;
  ++mode.entries;
  EASIS_LOG(util::LogLevel::kWarn, kLog)
      << "reconfiguring application " << rte_.application_name(app)
      << " into degraded mode";
  mode.enter();
  clear_monitoring_state(app, now);
}

void FaultManagementFramework::recover_application(ApplicationId app,
                                                   sim::SimTime now) {
  auto it = degraded_.find(app);
  if (it == degraded_.end() || !it->second.active) return;
  it->second.active = false;
  EASIS_LOG(util::LogLevel::kInfo, kLog)
      << "recovering application " << rte_.application_name(app)
      << " from degraded mode";
  if (it->second.exit) it->second.exit();
  clear_monitoring_state(app, now);
}

void FaultManagementFramework::terminate_application(ApplicationId app,
                                                     sim::SimTime now) {
  ++terminations_[app];
  EASIS_LOG(util::LogLevel::kWarn, kLog)
      << "terminating application " << rte_.application_name(app);
  // Deactivate monitoring first so the dead runnables do not keep
  // generating aliveness errors.
  for (RunnableId runnable : rte_.runnables_of_application(app)) {
    if (watchdog_.heartbeat_unit().monitors(runnable)) {
      watchdog_.set_activation_status(runnable, false);
    }
  }
  for (TaskId task : rte_.tasks_of_application(app)) {
    watchdog_.clear_task_state(task, now);
  }
  rte_.set_application_enabled(app, false);
}

std::uint32_t FaultManagementFramework::restarts_performed(
    ApplicationId app) const {
  auto it = restarts_.find(app);
  return it == restarts_.end() ? 0 : it->second;
}

std::uint32_t FaultManagementFramework::terminations_performed(
    ApplicationId app) const {
  auto it = terminations_.find(app);
  return it == terminations_.end() ? 0 : it->second;
}

std::uint32_t FaultManagementFramework::degradations_performed(
    ApplicationId app) const {
  auto it = degraded_.find(app);
  return it == degraded_.end() ? 0 : it->second.entries;
}

}  // namespace easis::fmf
