// Simulated non-volatile fault memory (reset-safe fault memory extension).
//
// The paper's fault-treatment chain ends at "ECU software reset" (§3.3);
// a production ECU additionally persists the evidence of *why* it reset.
// NvmStore models the flash/EEPROM block that carries the DTC store,
// freeze frames, restart/reset counters and the reset-cause record across
// ECU software resets (cf. watchdogd's reset-reason backend):
//
//   - two banks (double-buffered commit): a commit always serialises into
//     the currently *inactive* bank and flips only after the write
//     completed, so a corruption of one bank never loses both images;
//   - every bank is CRC-8 protected (same SAE J1850 polynomial the E2E
//     layer uses); a failed check is detected and surfaced as an
//     ErrorType::kNvmCorruption fault, never silently consumed;
//   - load() picks the valid bank with the newest sequence number and
//     reports whether it had to fall back past a corrupted bank.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fmf/dtc.hpp"
#include "sim/time.hpp"
#include "util/ids.hpp"
#include "wdg/types.hpp"

namespace easis::fmf {

/// Who pulled the reset trigger.
enum class ResetSource : std::uint8_t {
  kNone = 0,
  /// FMF treatment: global ECU state faulty -> software reset (paper §3.3).
  kEcuFaulty = 1,
  /// The hardware watchdog expired: the software watchdog itself was hung,
  /// starved or sequence-corrupted (self-supervision layer).
  kHardwareWatchdog = 2,
  /// Post-reset recovery validation failed inside the warm-up window.
  kRecoveryFailure = 3,
  /// Commanded over the diagnostic protocol (UDS-lite ECUReset, 0x11).
  kDiagnosticRequest = 4,
  /// The thermal-derating ladder reached its shutdown stage: controlled
  /// shutdown into the persistent safe state (environmental supervision).
  kThermalShutdown = 5,
  /// A dependability policy selected TreatmentAction::kSafeState for a
  /// faulty application: controlled park into the persistent safe state.
  kPolicySafeState = 6,
};

[[nodiscard]] constexpr std::string_view to_string(ResetSource s) {
  switch (s) {
    case ResetSource::kNone: return "none";
    case ResetSource::kEcuFaulty: return "ecu_faulty";
    case ResetSource::kHardwareWatchdog: return "hw_watchdog";
    case ResetSource::kRecoveryFailure: return "recovery_failure";
    case ResetSource::kDiagnosticRequest: return "diag_request";
    case ResetSource::kThermalShutdown: return "thermal_shutdown";
    case ResetSource::kPolicySafeState: return "policy_safe_state";
  }
  return "?";
}

/// One persisted reset event: which task/application/error class drove the
/// decision, at what simulation time.
struct ResetCause {
  ResetSource source = ResetSource::kNone;
  TaskId task;
  ApplicationId application;
  wdg::ErrorType error = wdg::ErrorType::kAliveness;
  sim::SimTime time;
  std::string detail;
};

/// A persisted DTC entry (mirror of DtcEntry without the live signal-bus
/// dependency; freeze frames travel with it).
struct PersistedDtc {
  DtcKey key;
  std::uint32_t occurrences = 0;
  sim::SimTime first_seen;
  sim::SimTime last_seen;
  bool active = true;
  std::optional<FreezeFrame> freeze_frame;
};

/// The logical content of the NVM block.
struct NvmImage {
  /// Lifetime ECU software-reset counter.
  std::uint32_t reset_count = 0;
  /// Reboot-storm latch: once set, the FMF refuses further resets and the
  /// node stays in its limp-home/safe state until the memory is erased.
  bool storm_latched = false;
  /// Most recent reset causes, oldest first (bounded by kResetHistoryDepth).
  std::vector<ResetCause> reset_history;
  /// Diagnostic trouble codes incl. freeze frames.
  std::vector<PersistedDtc> dtcs;
  /// Deadline-transgression records of the supervised-process client API
  /// (never evicted: like the reset chain, they explain field behaviour).
  std::vector<wdg::TransgressionRecord> transgressions;
  /// Last committed power mode of a duty-cycled node (empty = no mode
  /// machine): a node resetting out of deep sleep re-seeds its mode
  /// machine from this instead of defaulting into Run, so supervision
  /// re-arms with the silence contract still in force.
  std::string power_mode;
};

/// Reset events retained in the history ring.
inline constexpr std::size_t kResetHistoryDepth = 16;

class NvmStore {
 public:
  struct LoadResult {
    std::optional<NvmImage> image;
    /// True when at least one non-blank bank failed its CRC/format check.
    bool corruption_detected = false;
    std::string detail;
  };

  explicit NvmStore(std::size_t bank_capacity = 8192);

  /// Serialises `image` into the inactive bank and flips the active bank.
  /// Returns false (and leaves the store untouched) if the image does not
  /// fit the bank capacity (counted as an overflow), if the target bank
  /// has worn out its erase-cycle budget, or if an injected write fault
  /// is pending (both counted as write errors).
  bool commit(const NvmImage& image);

  /// Validates both banks and deserialises the newest valid image.
  [[nodiscard]] LoadResult load() const;

  /// Clears both banks (workshop "clear fault memory").
  void erase();

  // --- wear model --------------------------------------------------------------
  /// Erase cycles each bank survives before writes to it start failing
  /// (0 = unlimited, the default). Every successful commit erases the
  /// target bank once; erase() cycles both banks.
  void set_erase_budget(std::uint32_t cycles) { erase_budget_ = cycles; }
  [[nodiscard]] std::uint32_t erase_budget() const { return erase_budget_; }
  [[nodiscard]] std::uint32_t erase_cycles(std::size_t bank) const {
    return erase_cycles_[bank % 2];
  }
  [[nodiscard]] bool bank_worn(std::size_t bank) const;
  /// Worst-bank erase-cycle share of the budget, 0..1 (0 when unlimited).
  [[nodiscard]] double wear_level() const;

  // --- fault injection surface -------------------------------------------------
  /// Flips one bit of the active bank (models a flash/EEPROM bit error).
  void corrupt_bit(std::size_t bit_index);
  /// XORs one byte of the given bank.
  void corrupt_byte(std::size_t bank, std::size_t offset, std::uint8_t mask);
  /// The next `count` commits fail as write errors (transient flash
  /// faults; distinct from capacity overflows).
  void inject_write_faults(std::uint32_t count) { pending_faults_ += count; }

  // --- introspection -----------------------------------------------------------
  [[nodiscard]] std::size_t bank_capacity() const { return capacity_; }
  [[nodiscard]] std::size_t active_bank() const { return active_; }
  [[nodiscard]] std::uint32_t commits() const { return commits_; }
  [[nodiscard]] std::uint32_t overflows() const { return overflows_; }
  [[nodiscard]] std::uint32_t write_errors() const { return write_errors_; }
  /// Journal fill: header + last committed payload over the bank
  /// capacity, 0..1 (0 before the first successful commit).
  [[nodiscard]] double fill_level() const;
  [[nodiscard]] std::size_t last_image_bytes() const {
    return last_image_bytes_;
  }

 private:
  std::size_t capacity_;
  std::vector<std::uint8_t> banks_[2];
  std::size_t active_ = 0;
  std::uint32_t sequence_ = 0;
  std::uint32_t commits_ = 0;
  std::uint32_t overflows_ = 0;
  std::uint32_t write_errors_ = 0;
  std::uint32_t erase_budget_ = 0;
  std::uint32_t erase_cycles_[2] = {0, 0};
  std::uint32_t pending_faults_ = 0;
  std::size_t last_image_bytes_ = 0;
};

}  // namespace easis::fmf
