// Fault Management Framework (paper §3.2, §4.4; EASIS deliverable D1.2-8).
//
// The general fault-treatment service of the EASIS platform: gathers fault
// notifications from dependability services (here: the Software Watchdog),
// records them, informs the applications, and carries out coordinated fault
// treatment with a global view of the ECU:
//   - global ECU state faulty  -> ECU software reset
//   - ECU ok, application faulty -> restart or terminate the application
//     (escalating to termination after too many restarts)
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "fmf/dtc.hpp"
#include "rte/rte.hpp"
#include "util/ring_buffer.hpp"
#include "wdg/watchdog.hpp"

namespace easis::fmf {

/// One entry of the fault log.
struct FaultRecord {
  std::string source;  // reporting service, e.g. "swd"
  wdg::ErrorReport report;
  wdg::Severity severity = wdg::Severity::kInfo;
};

/// Treatment configured per application.
enum class TreatmentAction : std::uint8_t {
  kNone,
  kRestart,
  kTerminate,
  /// Dynamic reconfiguration (paper outlook): switch the application into
  /// a registered degraded mode instead of restarting; a fault while
  /// already degraded escalates to termination.
  kDegrade,
};

struct ApplicationPolicy {
  TreatmentAction on_faulty = TreatmentAction::kRestart;
  /// Restarts allowed before escalating to termination.
  std::uint32_t max_restarts = 3;
};

struct FmfConfig {
  std::size_t fault_log_capacity = 256;
  /// Software resets allowed before the FMF gives up (stays faulty).
  std::uint32_t max_ecu_resets = 2;
};

class FaultManagementFramework {
 public:
  /// `ecu_reset` performs the platform's software reset (kernel reboot +
  /// service re-arm); supplied by the node assembly.
  FaultManagementFramework(rte::Rte& rte, wdg::SoftwareWatchdog& watchdog,
                           std::function<void()> ecu_reset,
                           FmfConfig config = {});

  /// Subscribes to the watchdog's error and state interfaces. Call once.
  void attach();

  void set_application_policy(ApplicationId app, ApplicationPolicy policy);

  /// Registers the application's degraded-mode reconfiguration: `enter`
  /// switches to the reduced/limp-home configuration (required for
  /// TreatmentAction::kDegrade), `exit` restores normal operation (used by
  /// recover_application()).
  void set_degraded_mode(ApplicationId app, std::function<void()> enter,
                         std::function<void()> exit = nullptr);
  [[nodiscard]] bool is_degraded(ApplicationId app) const;
  /// Operator/diagnostic path: leaves degraded mode and clears the
  /// monitoring state of the application's tasks.
  void recover_application(ApplicationId app, sim::SimTime now);

  /// Applications register to be informed about detected faults.
  using FaultListener = std::function<void(const FaultRecord&)>;
  void add_fault_listener(FaultListener listener);

  /// Attaches a diagnostic trouble-code store: every fault is recorded as
  /// a DTC; an application returning to healthy marks its DTCs passive.
  /// Not owned; must outlive the framework.
  void attach_dtc_store(DtcStore* store) { dtc_store_ = store; }
  [[nodiscard]] DtcStore* dtc_store() { return dtc_store_; }

  // --- introspection -----------------------------------------------------------
  [[nodiscard]] const util::RingBuffer<FaultRecord>& fault_log() const {
    return log_;
  }
  [[nodiscard]] std::uint32_t restarts_performed(ApplicationId app) const;
  [[nodiscard]] std::uint32_t terminations_performed(ApplicationId app) const;
  [[nodiscard]] std::uint32_t degradations_performed(ApplicationId app) const;
  [[nodiscard]] std::uint32_t ecu_resets_performed() const {
    return ecu_resets_;
  }
  [[nodiscard]] std::uint64_t faults_recorded() const { return faults_; }

 private:
  rte::Rte& rte_;
  wdg::SoftwareWatchdog& watchdog_;
  std::function<void()> ecu_reset_;
  FmfConfig config_;
  util::RingBuffer<FaultRecord> log_;
  struct DegradedMode {
    std::function<void()> enter;
    std::function<void()> exit;
    bool active = false;
    std::uint32_t entries = 0;
  };

  std::unordered_map<ApplicationId, ApplicationPolicy> policies_;
  std::unordered_map<ApplicationId, std::uint32_t> restarts_;
  std::unordered_map<ApplicationId, std::uint32_t> terminations_;
  std::unordered_map<ApplicationId, DegradedMode> degraded_;
  std::uint32_t ecu_resets_ = 0;
  std::uint64_t faults_ = 0;
  std::vector<FaultListener> listeners_;
  DtcStore* dtc_store_ = nullptr;
  bool attached_ = false;

  void on_error(const wdg::ErrorReport& report);
  void on_application_state(ApplicationId app, wdg::Health health,
                            sim::SimTime now);
  void on_ecu_state(wdg::Health health, sim::SimTime now);
  void restart_application(ApplicationId app, sim::SimTime now);
  void terminate_application(ApplicationId app, sim::SimTime now);
  void degrade_application(ApplicationId app, sim::SimTime now);
  void clear_monitoring_state(ApplicationId app, sim::SimTime now);
  [[nodiscard]] ApplicationPolicy policy_of(ApplicationId app) const;
};

}  // namespace easis::fmf
