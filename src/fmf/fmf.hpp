// Fault Management Framework (paper §3.2, §4.4; EASIS deliverable D1.2-8).
//
// The general fault-treatment service of the EASIS platform: gathers fault
// notifications from dependability services (here: the Software Watchdog),
// records them, informs the applications, and carries out coordinated fault
// treatment with a global view of the ECU:
//   - global ECU state faulty  -> ECU software reset
//   - ECU ok, application faulty -> restart or terminate the application
//     (escalating to termination after too many restarts)
//
// Robustness extensions beyond the paper:
//   - fault memory persisted to (simulated) NVM: DTCs, reset counters and
//     the reset-cause record survive an ECU software reset
//   - reboot-storm detection: too many resets inside a time window latch a
//     persistent limp-home/safe state instead of resetting forever
//   - post-reset recovery validation: treatments open a supervised warm-up
//     window; a dirty window escalates immediately
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "fmf/dtc.hpp"
#include "fmf/nvm.hpp"
#include "rte/rte.hpp"
#include "util/ring_buffer.hpp"
#include "wdg/watchdog.hpp"

namespace easis::fmf {

/// One entry of the fault log.
struct FaultRecord {
  std::string source;  // reporting service, e.g. "swd"
  wdg::ErrorReport report;
  wdg::Severity severity = wdg::Severity::kInfo;
};

/// Treatment configured per application.
enum class TreatmentAction : std::uint8_t {
  kNone,
  kRestart,
  kTerminate,
  /// Dynamic reconfiguration (paper outlook): switch the application into
  /// a registered degraded mode instead of restarting; a fault while
  /// already degraded escalates to termination.
  kDegrade,
  /// Policy-selected controlled shutdown: a fault in this application
  /// drives the whole ECU into the persistent limp-home safe state
  /// (request_safe_state with a kPolicySafeState cause).
  kSafeState,
};

struct ApplicationPolicy {
  TreatmentAction on_faulty = TreatmentAction::kRestart;
  /// Restarts allowed before escalating to termination.
  std::uint32_t max_restarts = 3;
};

struct FmfConfig {
  std::size_t fault_log_capacity = 256;
  /// Software resets allowed before the FMF gives up (stays faulty).
  std::uint32_t max_ecu_resets = 2;
  /// Reboot-storm detection: this many performed resets inside
  /// `storm_window` latch the storm state — further resets are refused and
  /// the ECU is driven into a persistent limp-home/safe state instead.
  std::uint32_t storm_reset_limit = 3;
  sim::Duration storm_window = sim::Duration::seconds(10);
  /// Restart-counter aging (mirrors automotive DTC aging): a restart older
  /// than this no longer counts against the escalation-to-termination
  /// budget. Zero disables aging (counters are for-life, the paper's
  /// behaviour). restarts_performed() stays monotonic either way.
  sim::Duration restart_aging = sim::Duration::zero();
  /// Post-reset recovery validation: warm-up window length in watchdog
  /// main-function cycles opened after each application restart (and by
  /// begin_ecu_recovery_window() after an ECU reset). Zero disables it.
  std::uint32_t recovery_warmup_cycles = 0;
};

class FaultManagementFramework {
 public:
  /// `ecu_reset` performs the platform's software reset (kernel reboot +
  /// service re-arm); supplied by the node assembly.
  FaultManagementFramework(rte::Rte& rte, wdg::SoftwareWatchdog& watchdog,
                           std::function<void()> ecu_reset,
                           FmfConfig config = {});

  /// Subscribes to the watchdog's error and state interfaces. Call once.
  void attach();

  void set_application_policy(ApplicationId app, ApplicationPolicy policy);

  /// Registers the application's degraded-mode reconfiguration: `enter`
  /// switches to the reduced/limp-home configuration (required for
  /// TreatmentAction::kDegrade), `exit` restores normal operation (used by
  /// recover_application()).
  void set_degraded_mode(ApplicationId app, std::function<void()> enter,
                         std::function<void()> exit = nullptr);
  [[nodiscard]] bool is_degraded(ApplicationId app) const;
  /// Operator/diagnostic path: leaves degraded mode and clears the
  /// monitoring state of the application's tasks.
  void recover_application(ApplicationId app, sim::SimTime now);
  /// Applies the application's registered degraded mode (restart fallback
  /// when none is registered; termination when already degraded). Public
  /// for coordinated environmental treatment: the thermal-derating ladder
  /// parks QM applications through the same path a faulty state would.
  void degrade_application(ApplicationId app, sim::SimTime now);

  /// Applications register to be informed about detected faults.
  using FaultListener = std::function<void(const FaultRecord&)>;
  void add_fault_listener(FaultListener listener);

  /// Attaches a diagnostic trouble-code store: every fault is recorded as
  /// a DTC; an application returning to healthy marks its DTCs passive.
  /// Not owned; must outlive the framework.
  void attach_dtc_store(DtcStore* store) { dtc_store_ = store; }
  [[nodiscard]] DtcStore* dtc_store() { return dtc_store_; }

  // --- reset-safe fault memory (NVM) -------------------------------------------
  /// Attaches the non-volatile fault memory. Reset counters, the reset
  /// history (including the reset-cause record) and the DTC store are
  /// committed before every performed reset and re-seeded at boot. Not
  /// owned; must outlive the framework.
  void attach_nvm(NvmStore* store) { nvm_ = store; }
  [[nodiscard]] NvmStore* nvm() { return nvm_; }

  /// Re-seeds fault memory from NVM (call at every boot, before the kernel
  /// starts dispatching). A CRC/format failure is reported through the
  /// watchdog error path as an ErrorType::kNvmCorruption fault — corrupted
  /// fault memory is never silently consumed. Restoring a latched storm
  /// state re-enters the safe state via the safe-state hook.
  void boot_from_nvm(sim::SimTime now);

  /// Commits the current fault memory to NVM (also called internally
  /// before every performed reset). When the image no longer fits the
  /// bank (flash full), fault memory degrades gracefully: entries are
  /// evicted lowest-priority-first (oldest passive DTC freeze frames,
  /// then oldest passive DTCs, then active ones) until the commit fits —
  /// the reset-cause chain and transgression records are never dropped.
  void persist();

  /// Connects the supervised-process transgression records to fault
  /// memory: `snapshot` feeds persist(), `restore` is replayed by
  /// boot_from_nvm(). std::function keeps the FMF decoupled from the
  /// process-supervision unit.
  void attach_transgression_store(
      std::function<std::vector<wdg::TransgressionRecord>()> snapshot,
      std::function<void(const std::vector<wdg::TransgressionRecord>&)>
          restore) {
    transgression_snapshot_ = std::move(snapshot);
    transgression_restore_ = std::move(restore);
  }

  /// Connects a duty-cycled node's power-mode machine: `snapshot` is
  /// written into every NVM commit, `restore` re-seeds the machine from
  /// the persisted mode at boot (empty = no persisted mode). Keeps the
  /// FMF decoupled from the mode subsystem like the transgression store.
  void attach_power_mode_store(
      std::function<std::string()> snapshot,
      std::function<void(const std::string&)> restore) {
    power_mode_snapshot_ = std::move(snapshot);
    power_mode_restore_ = std::move(restore);
  }

  /// Central ECU reset path: every reset request — ECU-faulty escalation,
  /// HW-watchdog expiry, failed recovery validation — funnels through here
  /// so the reset-cause record, the storm bookkeeping and the NVM commit
  /// are uniform. Refuses the reset when the budget is exhausted or a
  /// reboot storm is detected/latched.
  void request_reset(ResetCause cause, sim::SimTime now);

  /// Hook invoked when a reboot storm latches: the node assembly drives
  /// the ECU into its limp-home/safe state here.
  void set_safe_state_hook(std::function<void(const ResetCause&)> hook) {
    safe_state_hook_ = std::move(hook);
  }

  /// Controlled shutdown into the persistent safe state without a reset:
  /// used by the thermal-derating ladder's final stage. Shares the storm
  /// latch (the decision survives power cycles and further resets are
  /// refused) and invokes the safe-state hook. Idempotent once latched.
  void request_safe_state(ResetCause cause, sim::SimTime now);

  /// Opens an ECU-wide post-reset recovery window over all actively
  /// monitored runnables (no-op when recovery_warmup_cycles is zero).
  void begin_ecu_recovery_window(sim::SimTime now);

  // --- introspection -----------------------------------------------------------
  [[nodiscard]] const util::RingBuffer<FaultRecord>& fault_log() const {
    return log_;
  }
  [[nodiscard]] std::uint32_t restarts_performed(ApplicationId app) const;
  /// Restarts currently counting against the escalation budget; equals
  /// restarts_performed() when aging is disabled.
  [[nodiscard]] std::uint32_t restart_pressure(ApplicationId app,
                                               sim::SimTime now) const;
  [[nodiscard]] std::uint32_t terminations_performed(ApplicationId app) const;
  [[nodiscard]] std::uint32_t degradations_performed(ApplicationId app) const;
  [[nodiscard]] std::uint32_t ecu_resets_performed() const {
    return ecu_resets_;
  }
  [[nodiscard]] std::uint64_t faults_recorded() const { return faults_; }
  /// Fault-memory entries evicted by graceful degradation on flash-full.
  [[nodiscard]] std::uint32_t nvm_evictions() const { return nvm_evictions_; }
  /// Commits lost to NVM write errors (wear-out or transient faults).
  [[nodiscard]] std::uint32_t nvm_write_failures() const {
    return nvm_write_failures_;
  }
  [[nodiscard]] bool storm_latched() const { return storm_latched_; }
  [[nodiscard]] const std::optional<ResetCause>& last_reset_cause() const {
    return last_reset_cause_;
  }
  [[nodiscard]] const std::vector<ResetCause>& reset_history() const {
    return reset_history_;
  }
  [[nodiscard]] const FmfConfig& config() const { return config_; }
  /// Post-boot diagnostic read-out: reset history, storm state and the
  /// attached DTC store.
  void write_diagnostics(std::ostream& out) const;

 private:
  rte::Rte& rte_;
  wdg::SoftwareWatchdog& watchdog_;
  std::function<void()> ecu_reset_;
  FmfConfig config_;
  util::RingBuffer<FaultRecord> log_;
  struct DegradedMode {
    std::function<void()> enter;
    std::function<void()> exit;
    bool active = false;
    std::uint32_t entries = 0;
  };

  std::unordered_map<ApplicationId, ApplicationPolicy> policies_;
  std::unordered_map<ApplicationId, std::uint32_t> restarts_;
  std::unordered_map<ApplicationId, std::vector<sim::SimTime>> restart_times_;
  std::unordered_map<ApplicationId, std::uint32_t> terminations_;
  std::unordered_map<ApplicationId, DegradedMode> degraded_;
  std::uint32_t ecu_resets_ = 0;
  std::uint64_t faults_ = 0;
  std::vector<FaultListener> listeners_;
  DtcStore* dtc_store_ = nullptr;
  NvmStore* nvm_ = nullptr;
  std::uint32_t nvm_evictions_ = 0;
  std::uint32_t nvm_write_failures_ = 0;
  std::function<std::vector<wdg::TransgressionRecord>()>
      transgression_snapshot_;
  std::function<void(const std::vector<wdg::TransgressionRecord>&)>
      transgression_restore_;
  std::function<std::string()> power_mode_snapshot_;
  std::function<void(const std::string&)> power_mode_restore_;
  std::function<void(const ResetCause&)> safe_state_hook_;
  std::vector<ResetCause> reset_history_;
  std::optional<ResetCause> last_reset_cause_;
  std::optional<FaultRecord> last_fault_;
  bool storm_latched_ = false;
  bool attached_ = false;

  void on_error(const wdg::ErrorReport& report);
  void on_application_state(ApplicationId app, wdg::Health health,
                            sim::SimTime now);
  void on_ecu_state(wdg::Health health, sim::SimTime now);
  void on_recovery_result(bool ok, ApplicationId app,
                          const wdg::ErrorReport& cause, sim::SimTime now);
  void restart_application(ApplicationId app, sim::SimTime now);
  void terminate_application(ApplicationId app, sim::SimTime now);
  void clear_monitoring_state(ApplicationId app, sim::SimTime now);
  bool evict_one(NvmImage& image);
  void latch_storm(const ResetCause& cause, sim::SimTime now);
  void record_reset_cause(ResetCause cause);
  [[nodiscard]] std::uint32_t recent_resets(sim::SimTime now) const;
  [[nodiscard]] ApplicationPolicy policy_of(ApplicationId app) const;
};

}  // namespace easis::fmf
