// Diagnostic trouble code (DTC) store.
//
// The workshop-facing half of the Fault Management Framework: every fault
// record maps to a DTC keyed by (application, error type). Entries carry
// occurrence counters, first/last timestamps, a status (active / cleared),
// and a freeze frame — a snapshot of configured signals at first
// occurrence, as automotive diagnostics (ISO 14229-style) expects.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "rte/signal_bus.hpp"
#include "sim/time.hpp"
#include "util/ids.hpp"
#include "wdg/types.hpp"

namespace easis::fmf {

/// DTC identity: which application reported which error class.
struct DtcKey {
  ApplicationId application;
  wdg::ErrorType type = wdg::ErrorType::kAliveness;
  auto operator<=>(const DtcKey&) const = default;
};

struct FreezeFrame {
  sim::SimTime captured_at;
  std::vector<std::pair<std::string, double>> signals;
};

struct DtcEntry {
  DtcKey key;
  std::uint32_t occurrences = 0;
  sim::SimTime first_seen;
  sim::SimTime last_seen;
  bool active = true;
  std::optional<FreezeFrame> freeze_frame;
};

class DtcStore {
 public:
  /// `signals` supplies freeze-frame data; `frame_signals` names what to
  /// capture at the first occurrence of each DTC.
  DtcStore(const rte::SignalBus& signals,
           std::vector<std::string> frame_signals);

  /// Records one fault occurrence (creates or updates the DTC).
  void record(const wdg::ErrorReport& report);

  [[nodiscard]] const DtcEntry* entry(const DtcKey& key) const;
  [[nodiscard]] std::vector<DtcEntry> entries() const;
  [[nodiscard]] std::size_t count() const { return entries_.size(); }
  [[nodiscard]] std::size_t active_count() const;

  /// Marks a DTC passive (fault healed); occurrence history is retained.
  void set_passive(const DtcKey& key);
  /// Workshop "clear DTCs": removes everything.
  void clear();

  /// Renders the store as a diagnostic read-out.
  void write(std::ostream& out) const;

 private:
  const rte::SignalBus& signals_;
  std::vector<std::string> frame_signals_;
  std::map<DtcKey, DtcEntry> entries_;

  [[nodiscard]] FreezeFrame capture(sim::SimTime at) const;
};

}  // namespace easis::fmf
