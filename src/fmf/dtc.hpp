// Diagnostic trouble code (DTC) store.
//
// The workshop-facing half of the Fault Management Framework: every fault
// record maps to a DTC keyed by (application, error type). Entries carry
// occurrence counters, first/last timestamps, a status (active / cleared),
// and a freeze frame — a snapshot of configured signals at first
// occurrence, as automotive diagnostics (ISO 14229-style) expects.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "rte/signal_bus.hpp"
#include "sim/time.hpp"
#include "util/ids.hpp"
#include "wdg/types.hpp"

namespace easis::fmf {

/// DTC identity: which application reported which error class.
struct DtcKey {
  ApplicationId application;
  wdg::ErrorType type = wdg::ErrorType::kAliveness;
  auto operator<=>(const DtcKey&) const = default;
};

struct FreezeFrame {
  sim::SimTime captured_at;
  std::vector<std::pair<std::string, double>> signals;
};

struct DtcEntry {
  DtcKey key;
  std::uint32_t occurrences = 0;
  sim::SimTime first_seen;
  sim::SimTime last_seen;
  bool active = true;
  std::optional<FreezeFrame> freeze_frame;
};

class DtcStore {
 public:
  /// `signals` supplies freeze-frame data; `frame_signals` names what to
  /// capture at the first occurrence of each DTC. `max_entries` bounds the
  /// store (automotive fault memories are small): when a new DTC arrives
  /// at a full store, the entry with the oldest last-occurrence is evicted
  /// (oldest-eviction). 0 = unbounded. Updates to an existing entry never
  /// evict and retain the first-occurrence freeze frame.
  DtcStore(const rte::SignalBus& signals,
           std::vector<std::string> frame_signals,
           std::size_t max_entries = 0);

  /// Records one fault occurrence (creates or updates the DTC).
  void record(const wdg::ErrorReport& report);

  [[nodiscard]] const DtcEntry* entry(const DtcKey& key) const;
  [[nodiscard]] std::vector<DtcEntry> entries() const;
  [[nodiscard]] std::size_t count() const { return entries_.size(); }
  [[nodiscard]] std::size_t active_count() const;
  [[nodiscard]] std::size_t max_entries() const { return max_entries_; }
  /// Entries dropped because the bounded store was full.
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

  /// Marks a DTC passive (fault healed); occurrence history is retained.
  void set_passive(const DtcKey& key);
  /// Workshop "clear DTCs": removes everything.
  void clear();

  /// Replaces the store content with entries restored from non-volatile
  /// memory (post-reset re-seed). Restored freeze frames are kept as
  /// captured; occurrence counters continue from the persisted values.
  void restore(const std::vector<DtcEntry>& entries);

  /// Renders the store as a diagnostic read-out.
  void write(std::ostream& out) const;

 private:
  const rte::SignalBus& signals_;
  std::vector<std::string> frame_signals_;
  std::size_t max_entries_;
  std::map<DtcKey, DtcEntry> entries_;
  std::uint64_t evictions_ = 0;

  [[nodiscard]] FreezeFrame capture(sim::SimTime at) const;
  void evict_oldest();
};

}  // namespace easis::fmf
