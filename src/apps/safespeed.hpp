// SafeSpeed application (paper §4.1, Figure 4).
//
// Limits the vehicle speed to an externally commanded maximum. Three
// runnables executed in a fixed sequence on one task:
//   GetSensorValue  - sensor value reading (vehicle speed)
//   SAFE_CC_process - the control algorithm (speed-limiting controller)
//   Speed_process   - setting of the actuator (drive command)
//
// Signals (SignalBus):
//   in : vehicle.speed_kmh        - from the environment/sensor node
//        safespeed.max_speed_kmh  - externally commanded limit (gateway)
//        driver.demand            - driver accelerator demand [0,1]
//   out: safespeed.speed_measured - sampled speed
//        safespeed.limit          - limiter output [0,1]
//        actuator.drive_cmd       - final drive command [-1,1]
#pragma once

#include <string>

#include "rte/rte.hpp"
#include "rte/signal_bus.hpp"
#include "wdg/watchdog.hpp"

namespace easis::apps {

struct SafeSpeedConfig {
  /// Activation period of the hosting task (used for the fault hypothesis).
  sim::Duration period = sim::Duration::millis(10);
  /// Proportional gain of the limiting controller (per km/h of margin).
  double kp = 0.08;
  /// Limit applied when no external command was received yet.
  double default_max_speed_kmh = 250.0;
  sim::Duration sensor_cost = sim::Duration::micros(150);
  sim::Duration control_cost = sim::Duration::micros(400);
  sim::Duration actuator_cost = sim::Duration::micros(150);
  /// Reception deadline for the commanded max speed. Zero (default)
  /// disables network-degradation handling; when set, a stale or invalid
  /// command degrades the limit to `limp_max_speed_kmh` instead of
  /// trusting old data.
  sim::Duration max_speed_deadline = sim::Duration::zero();
  /// Substitute limit applied while the command signal is degraded.
  double limp_max_speed_kmh = 60.0;
};

class SafeSpeed {
 public:
  /// Registers the application model and maps the runnables, in order,
  /// onto `task`. The caller owns the task and its periodic activation.
  SafeSpeed(rte::Rte& rte, rte::SignalBus& signals, TaskId task,
            SafeSpeedConfig config = {});

  [[nodiscard]] ApplicationId application() const { return app_; }
  [[nodiscard]] TaskId task() const { return task_; }
  [[nodiscard]] RunnableId get_sensor_value() const { return sensor_; }
  [[nodiscard]] RunnableId safe_cc_process() const { return control_; }
  [[nodiscard]] RunnableId speed_process() const { return actuator_; }
  [[nodiscard]] const SafeSpeedConfig& config() const { return config_; }

  /// Registers the application's fault hypothesis and program-flow
  /// look-up table with the watchdog.
  void configure_watchdog(wdg::SoftwareWatchdog& watchdog) const;

  /// Limp-home (degraded) mode: the controller distrusts the measurement
  /// chain and commands a fixed conservative drive limit instead of the
  /// closed-loop limiter. Used as the FMF's dynamic-reconfiguration target.
  void set_limp_home(bool limp) { limp_home_ = limp; }
  [[nodiscard]] bool limp_home() const { return limp_home_; }
  /// Drive limit applied while in limp-home mode.
  static constexpr double kLimpHomeLimit = 0.15;

  /// Max-speed value the controller actually used on its last execution
  /// (after qualifier-based substitution).
  [[nodiscard]] double effective_max_speed() const {
    return effective_max_speed_;
  }
  /// Qualifier of the max-speed command at the last controller execution.
  [[nodiscard]] rte::SignalQualifier max_speed_qualifier() const {
    return max_speed_qualifier_;
  }

  /// Signal carrying the externally commanded maximum speed.
  static constexpr const char* kMaxSpeedSignal = "safespeed.max_speed_kmh";

 private:
  rte::SignalBus& signals_;
  SafeSpeedConfig config_;
  ApplicationId app_;
  TaskId task_;
  RunnableId sensor_;
  RunnableId control_;
  RunnableId actuator_;
  bool limp_home_ = false;
  double effective_max_speed_ = 0.0;
  rte::SignalQualifier max_speed_qualifier_ = rte::SignalQualifier::kValid;
};

}  // namespace easis::apps
