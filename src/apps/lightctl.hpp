// Light control application (paper §4.1 mentions a light control node).
//
// A deliberately non-safety-critical application sharing the platform:
// its runnables are heartbeat-monitored but excluded from program flow
// checking, exercising the watchdog's per-runnable configurability.
#pragma once

#include "rte/rte.hpp"
#include "rte/signal_bus.hpp"
#include "wdg/watchdog.hpp"

namespace easis::apps {

struct LightControlConfig {
  sim::Duration period = sim::Duration::millis(50);
  double ambient_on_threshold = 0.3;   // headlamps on below this
  double ambient_off_threshold = 0.5;  // off above this (hysteresis)
  sim::Duration read_cost = sim::Duration::micros(80);
  sim::Duration control_cost = sim::Duration::micros(120);
};

class LightControl {
 public:
  LightControl(rte::Rte& rte, rte::SignalBus& signals, TaskId task,
               LightControlConfig config = {});

  [[nodiscard]] ApplicationId application() const { return app_; }
  [[nodiscard]] TaskId task() const { return task_; }
  [[nodiscard]] RunnableId read_ambient() const { return read_; }
  [[nodiscard]] RunnableId control_lights() const { return control_; }
  [[nodiscard]] bool headlamps_on() const { return headlamps_on_; }

  void configure_watchdog(wdg::SoftwareWatchdog& watchdog) const;

 private:
  rte::SignalBus& signals_;
  LightControlConfig config_;
  ApplicationId app_;
  TaskId task_;
  RunnableId read_;
  RunnableId control_;
  bool headlamps_on_ = false;
};

}  // namespace easis::apps
