#include "apps/railmon.hpp"

#include <algorithm>

#include "apps/monitor_hypothesis.hpp"

namespace easis::apps {

RailMon::RailMon(rte::Rte& rte, rte::SignalBus& signals,
                 mode::PowerModeManager& manager, TaskId control_task,
                 TaskId sensor_task, RailMonConfig config)
    : signals_(signals),
      manager_(manager),
      config_(config),
      control_task_(control_task),
      sensor_task_(sensor_task) {
  app_ = rte.register_application("RailMon");
  const ComponentId cycler = rte.register_component(app_, "DutyCycler");
  const ComponentId chain = rte.register_component(app_, "AcquisitionChain");
  auto& kernel = rte.kernel();

  rte::RunnableSpec control_spec;
  control_spec.name = "DutyCycleControl";
  control_spec.execution_time = config_.control_cost;
  control_spec.body = [this, &kernel] { drive_duty_cycle(kernel.now()); };
  control_ = rte.register_runnable(cycler, std::move(control_spec));

  rte::RunnableSpec sensor_spec;
  sensor_spec.name = "SampleSensor";
  sensor_spec.execution_time = config_.sensor_cost;
  sensor_spec.body = [this, &kernel] {
    (void)signals_.read_or("env.vibration", 0.0);
    ++samples_;
    if (journal_depth_ < config_.journal_capacity) {
      ++journal_depth_;
    } else {
      ++dropped_;
    }
    signals_.publish("railmon.journal_depth",
                     static_cast<double>(journal_depth_), kernel.now());
  };
  sensor_ = rte.register_runnable(chain, std::move(sensor_spec));

  rte::RunnableSpec uplink_spec;
  uplink_spec.name = "UplinkProcess";
  uplink_spec.execution_time = config_.uplink_cost;
  uplink_spec.body = [this, &kernel] {
    // Store-and-forward: only the flash-committed backlog is uplinked,
    // and only while the radio is powered (Run and the wake storm). The
    // runnable still executes (and heartbeats) during FlashWrite — the
    // radio is idle, the task is not.
    const mode::PowerMode m = manager_.current();
    if (m == mode::PowerMode::kRun || m == mode::PowerMode::kWakeBurst) {
      const std::uint64_t batch =
          std::min<std::uint64_t>(committed_, config_.uplink_batch);
      committed_ -= batch;
      uplinked_ += batch;
    }
    signals_.publish("railmon.committed", static_cast<double>(committed_),
                     kernel.now());
    signals_.publish("railmon.uplinked", static_cast<double>(uplinked_),
                     kernel.now());
  };
  uplink_ = rte.register_runnable(chain, std::move(uplink_spec));

  rte.map_runnable(control_, control_task_);
  rte.map_runnable(sensor_, sensor_task_);
  rte.map_runnable(uplink_, sensor_task_);
}

void RailMon::drive_duty_cycle(sim::SimTime now) {
  if (duty_hold_ || manager_.transition_pending()) return;
  using mode::PowerMode;
  const sim::Duration dwell = manager_.dwell(now);
  switch (manager_.current()) {
    case PowerMode::kRun:
      if (dwell >= config_.run_dwell) {
        manager_.request(PowerMode::kFlashWrite, "journal_commit");
      }
      break;
    case PowerMode::kFlashWrite:
      if (!flash_stuck_ && dwell >= config_.flash_dwell) {
        manager_.request(PowerMode::kSleep, "commit_done");
      }
      break;
    case PowerMode::kSleep:
      if (!wake_suppressed_ && dwell >= config_.sleep_dwell) {
        manager_.request(PowerMode::kWakeBurst, "wake_timer");
      }
      break;
    case PowerMode::kWakeBurst:
      if (!burst_stuck_ && dwell >= config_.burst_dwell) {
        manager_.request(PowerMode::kRun, "burst_complete");
      }
      break;
    case PowerMode::kIdle:
      manager_.request(PowerMode::kRun, "duty_resume");
      break;
  }
}

void RailMon::commit_journal(sim::SimTime now) {
  committed_ += journal_depth_;
  journal_depth_ = 0;
  signals_.publish("railmon.journal_depth", 0.0, now);
  signals_.publish("railmon.committed", static_cast<double>(committed_),
                   now);
}

void RailMon::configure_watchdog(wdg::SoftwareWatchdog& watchdog) const {
  const sim::Duration check = watchdog.config().check_period;
  watchdog.add_runnable(derive_monitor(control_, control_task_, app_,
                                       "DutyCycleControl",
                                       config_.control_period, check,
                                       /*program_flow=*/false));
  watchdog.add_runnable(sensor_monitor_base(check));
  watchdog.add_runnable(uplink_monitor_base(check));
  // Permitted execution sequence of the sensing chain: sample -> uplink,
  // repeating (the controller runs on its own task, outside this table).
  watchdog.add_flow_entry_point(sensor_);
  watchdog.add_flow_edge(sensor_, uplink_);
  watchdog.add_flow_edge(uplink_, sensor_);
  // Sample-to-uplink deadline: nominal chain cost is ~0.32 ms; 5 ms keeps
  // headroom for controller preemption and the burst-rate interleaving.
  wdg::DeadlinePair pair;
  pair.name = "sample_to_uplink";
  pair.start = sensor_;
  pair.end = uplink_;
  pair.min = sim::Duration::zero();
  pair.max = sim::Duration::millis(5);
  watchdog.add_deadline_pair(pair);
}

wdg::RunnableMonitor RailMon::sensor_monitor_base(
    sim::Duration check_period) const {
  return derive_monitor(sensor_, sensor_task_, app_, "SampleSensor",
                        config_.sample_period, check_period);
}

wdg::RunnableMonitor RailMon::uplink_monitor_base(
    sim::Duration check_period) const {
  return derive_monitor(uplink_, sensor_task_, app_, "UplinkProcess",
                        config_.sample_period, check_period);
}

}  // namespace easis::apps
