// SafeLane application (paper §4.1): lane departure warning.
//
// Three runnables in sequence on one task:
//   AcquireLanePosition - reads the camera's lateral-offset signal
//   DetectDeparture     - departure detection with hysteresis
//   WarnActuator        - drives the HMI warning output
//
// Signals:
//   in : lane.offset_m        - lateral offset from the environment model
//   out: safelane.offset      - sampled offset
//        safelane.warning     - 1 while a departure is detected
//        hmi.lane_warning     - actuator output (mirrors the warning)
#pragma once

#include "rte/rte.hpp"
#include "rte/signal_bus.hpp"
#include "wdg/watchdog.hpp"

namespace easis::apps {

struct SafeLaneConfig {
  sim::Duration period = sim::Duration::millis(20);
  /// Warning asserts above this |offset| and clears below release.
  double assert_threshold_m = 1.2;
  double release_threshold_m = 0.9;
  sim::Duration acquire_cost = sim::Duration::micros(200);
  sim::Duration detect_cost = sim::Duration::micros(300);
  sim::Duration warn_cost = sim::Duration::micros(100);
};

class SafeLane {
 public:
  SafeLane(rte::Rte& rte, rte::SignalBus& signals, TaskId task,
           SafeLaneConfig config = {});

  [[nodiscard]] ApplicationId application() const { return app_; }
  [[nodiscard]] TaskId task() const { return task_; }
  [[nodiscard]] RunnableId acquire_lane_position() const { return acquire_; }
  [[nodiscard]] RunnableId detect_departure() const { return detect_; }
  [[nodiscard]] RunnableId warn_actuator() const { return warn_; }
  [[nodiscard]] const SafeLaneConfig& config() const { return config_; }
  [[nodiscard]] bool warning_active() const { return warning_; }

  void configure_watchdog(wdg::SoftwareWatchdog& watchdog) const;

 private:
  rte::SignalBus& signals_;
  SafeLaneConfig config_;
  ApplicationId app_;
  TaskId task_;
  RunnableId acquire_;
  RunnableId detect_;
  RunnableId warn_;
  bool warning_ = false;
};

}  // namespace easis::apps
