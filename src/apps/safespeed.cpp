#include "apps/safespeed.hpp"

#include <algorithm>

#include "apps/monitor_hypothesis.hpp"

namespace easis::apps {

SafeSpeed::SafeSpeed(rte::Rte& rte, rte::SignalBus& signals, TaskId task,
                     SafeSpeedConfig config)
    : signals_(signals), config_(config), task_(task) {
  app_ = rte.register_application("SafeSpeed");
  const ComponentId component = rte.register_component(app_, "SpeedLimiter");
  auto& kernel = rte.kernel();

  if (config_.max_speed_deadline > sim::Duration::zero()) {
    rte::ReceptionPolicy policy;
    policy.deadline = config_.max_speed_deadline;
    policy.substitute = rte::SubstitutePolicy::kLimp;
    policy.default_value = config_.default_max_speed_kmh;
    policy.limp_value = config_.limp_max_speed_kmh;
    signals_.set_reception_policy(kMaxSpeedSignal, policy, kernel.now());
  }

  rte::RunnableSpec sensor_spec;
  sensor_spec.name = "GetSensorValue";
  sensor_spec.execution_time = config_.sensor_cost;
  sensor_spec.body = [this, &kernel] {
    const double speed = signals_.read_or("vehicle.speed_kmh", 0.0);
    signals_.publish("safespeed.speed_measured", speed, kernel.now());
  };
  sensor_ = rte.register_runnable(component, std::move(sensor_spec));

  rte::RunnableSpec control_spec;
  control_spec.name = "SAFE_CC_process";
  control_spec.execution_time = config_.control_cost;
  control_spec.body = [this, &kernel] {
    if (limp_home_) {
      // Degraded mode: fixed conservative limit, measurement distrusted.
      signals_.publish("safespeed.limit", kLimpHomeLimit, kernel.now());
      return;
    }
    const double measured = signals_.read_or("safespeed.speed_measured", 0.0);
    const auto command = signals_.read_qualified(
        kMaxSpeedSignal, kernel.now(), config_.default_max_speed_kmh);
    max_speed_qualifier_ = command.qualifier;
    effective_max_speed_ = command.value;
    const double max_kmh = command.value;
    // Proportional limiter: full authority below the limit, throttling to
    // zero (and into braking) as the limit is approached/exceeded.
    const double margin = max_kmh - measured;
    const double limit = std::clamp(config_.kp * margin, -0.3, 1.0);
    signals_.publish("safespeed.limit", limit, kernel.now());
  };
  control_ = rte.register_runnable(component, std::move(control_spec));

  rte::RunnableSpec actuator_spec;
  actuator_spec.name = "Speed_process";
  actuator_spec.execution_time = config_.actuator_cost;
  actuator_spec.body = [this, &kernel] {
    const double demand = signals_.read_or("driver.demand", 0.0);
    const double limit = signals_.read_or("safespeed.limit", 1.0);
    const double cmd = std::min(demand, limit);
    signals_.publish("actuator.drive_cmd", cmd, kernel.now());
  };
  actuator_ = rte.register_runnable(component, std::move(actuator_spec));

  rte.map_runnable(sensor_, task_);
  rte.map_runnable(control_, task_);
  rte.map_runnable(actuator_, task_);
}

void SafeSpeed::configure_watchdog(wdg::SoftwareWatchdog& watchdog) const {
  const sim::Duration check = watchdog.config().check_period;
  watchdog.add_runnable(derive_monitor(sensor_, task_, app_, "GetSensorValue",
                                       config_.period, check));
  watchdog.add_runnable(derive_monitor(control_, task_, app_,
                                       "SAFE_CC_process", config_.period,
                                       check));
  watchdog.add_runnable(derive_monitor(actuator_, task_, app_,
                                       "Speed_process", config_.period,
                                       check));
  // Permitted execution sequence: sensor -> control -> actuator, repeating.
  watchdog.add_flow_entry_point(sensor_);
  watchdog.add_flow_edge(sensor_, control_);
  watchdog.add_flow_edge(control_, actuator_);
  watchdog.add_flow_edge(actuator_, sensor_);
  // Deadline supervision: from the sensor sample to the actuator command.
  // Nominal control+actuation is ~0.55 ms; 1 ms leaves headroom for the
  // watchdog's own preemption while catching multi-x slowdowns that keep
  // the heartbeat rate intact.
  wdg::DeadlinePair pair;
  pair.name = "sensor_to_actuator";
  pair.start = sensor_;
  pair.end = actuator_;
  pair.min = sim::Duration::zero();
  pair.max = sim::Duration::millis(1);
  watchdog.add_deadline_pair(pair);
}

}  // namespace easis::apps
