// RailMon application: a duty-cycled condition-monitoring sensor node
// (the simuVSInsightRail profile the power-mode subsystem exists for).
//
// Two components on two tasks:
//
//   DutyCycler / DutyCycleControl   - always-on controller (RTC domain):
//     drives the declared duty cycle Run -> FlashWrite -> Sleep ->
//     WakeBurst -> Run through PowerModeManager::request() on dwell
//     thresholds. Heartbeats in every mode.
//
//   AcquisitionChain / SampleSensor + UplinkProcess - the duty-cycled
//     sensing path: samples vibration into a bounded journal, commits the
//     journal during FlashWrite windows, and uplinks the committed backlog
//     (store-and-forward) while awake. The hosting task's alarm is
//     cancelled during Sleep — its heartbeats stop *by contract* — and
//     re-armed at burst rate for the WakeBurst storm.
//
// Signals (SignalBus):
//   in : env.vibration           - sensed quantity (defaults to 0)
//   out: railmon.journal_depth   - uncommitted samples in the journal
//        railmon.committed       - flash-committed, not yet uplinked
//        railmon.uplinked        - total samples uplinked (cumulative)
//
// Fault-injection surface: set_wake_suppressed (stuck-in-sleep),
// set_burst_stuck (wake-storm overrun), set_flash_stuck (flash-write
// overrun), set_duty_hold (safe state: stop driving the cycle).
#pragma once

#include <cstdint>
#include <string>

#include "mode/power_mode.hpp"
#include "rte/rte.hpp"
#include "rte/signal_bus.hpp"
#include "wdg/watchdog.hpp"

namespace easis::apps {

struct RailMonConfig {
  /// Activation period of the always-on controller task.
  sim::Duration control_period = sim::Duration::millis(10);
  /// Nominal sensing period (Run/Idle/FlashWrite modes).
  sim::Duration sample_period = sim::Duration::millis(10);
  /// Burst sensing period during WakeBurst (the wake storm).
  sim::Duration burst_period = sim::Duration::millis(2);
  /// Dwell thresholds of the duty cycle (controller requests the next
  /// mode once the current one's dwell is reached).
  sim::Duration run_dwell = sim::Duration::millis(500);
  sim::Duration flash_dwell = sim::Duration::millis(100);
  sim::Duration sleep_dwell = sim::Duration::millis(600);
  sim::Duration burst_dwell = sim::Duration::millis(200);
  sim::Duration control_cost = sim::Duration::micros(80);
  sim::Duration sensor_cost = sim::Duration::micros(120);
  sim::Duration uplink_cost = sim::Duration::micros(200);
  /// Journal capacity; samples beyond it are dropped (and counted).
  std::uint32_t journal_capacity = 256;
  /// Committed samples uplinked per UplinkProcess execution.
  std::uint32_t uplink_batch = 4;
};

class RailMon {
 public:
  /// Registers the application model: the controller runnable on
  /// `control_task`, the sensing chain on `sensor_task`. The caller owns
  /// both tasks and their (mode-dependent) periodic activation.
  RailMon(rte::Rte& rte, rte::SignalBus& signals,
          mode::PowerModeManager& manager, TaskId control_task,
          TaskId sensor_task, RailMonConfig config = {});

  [[nodiscard]] ApplicationId application() const { return app_; }
  [[nodiscard]] TaskId control_task() const { return control_task_; }
  [[nodiscard]] TaskId sensor_task() const { return sensor_task_; }
  [[nodiscard]] RunnableId duty_cycle_control() const { return control_; }
  [[nodiscard]] RunnableId sample_sensor() const { return sensor_; }
  [[nodiscard]] RunnableId uplink_process() const { return uplink_; }
  [[nodiscard]] const RailMonConfig& config() const { return config_; }

  /// Registers the always-on controller hypothesis, the flow table of the
  /// sensing chain and the sample->uplink deadline pair. The sensing
  /// chain's *base* (Run-mode) hypotheses are registered too; bind them to
  /// a ModeSupervisionUnit so the active mode overlay rebinds them.
  void configure_watchdog(wdg::SoftwareWatchdog& watchdog) const;

  /// Run-mode fault hypotheses of the duty-cycled runnables, for
  /// ModeSupervisionUnit::bind().
  [[nodiscard]] wdg::RunnableMonitor sensor_monitor_base(
      sim::Duration check_period) const;
  [[nodiscard]] wdg::RunnableMonitor uplink_monitor_base(
      sim::Duration check_period) const;

  /// Flash-write window: commits the journal (store-and-forward handover
  /// to the uplink backlog). Called by the node on FlashWrite entry.
  void commit_journal(sim::SimTime now);

  // --- telemetry counters ----------------------------------------------------
  [[nodiscard]] std::uint32_t journal_depth() const { return journal_depth_; }
  [[nodiscard]] std::uint64_t journal_dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t committed_backlog() const { return committed_; }
  [[nodiscard]] std::uint64_t uplinked() const { return uplinked_; }
  [[nodiscard]] std::uint64_t samples_taken() const { return samples_; }

  // --- fault-injection surface -----------------------------------------------
  /// The controller never issues the Sleep -> WakeBurst wake request
  /// (a dead wake timer: the node is stuck in deep sleep).
  void set_wake_suppressed(bool suppressed) { wake_suppressed_ = suppressed; }
  /// The WakeBurst -> Run request is never issued (the burst never ends).
  void set_burst_stuck(bool stuck) { burst_stuck_ = stuck; }
  /// The FlashWrite -> Sleep request is never issued (flash busy forever).
  void set_flash_stuck(bool stuck) { flash_stuck_ = stuck; }
  /// Safe state: the controller stops driving the duty cycle entirely.
  void set_duty_hold(bool hold) { duty_hold_ = hold; }
  [[nodiscard]] bool duty_hold() const { return duty_hold_; }

 private:
  rte::SignalBus& signals_;
  mode::PowerModeManager& manager_;
  RailMonConfig config_;
  ApplicationId app_;
  TaskId control_task_;
  TaskId sensor_task_;
  RunnableId control_;
  RunnableId sensor_;
  RunnableId uplink_;
  std::uint32_t journal_depth_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t committed_ = 0;
  std::uint64_t uplinked_ = 0;
  std::uint64_t samples_ = 0;
  bool wake_suppressed_ = false;
  bool burst_stuck_ = false;
  bool flash_stuck_ = false;
  bool duty_hold_ = false;

  void drive_duty_cycle(sim::SimTime now);
};

}  // namespace easis::apps
