#include "apps/crash_detection.hpp"

namespace easis::apps {

CrashDetection::CrashDetection(rte::Rte& rte, rte::SignalBus& signals,
                               os::Priority priority,
                               CrashDetectionConfig config)
    : rte_(rte),
      signals_(signals),
      kernel_(rte.kernel()),
      config_(config) {
  app_ = rte_.register_application("CrashDetection");
  const ComponentId component =
      rte_.register_component(app_, "EmergencyNotifier");

  os::TaskConfig task_config;
  task_config.name = "Task_CrashDetection";
  task_config.priority = priority;
  task_config.extended = true;
  task_ = kernel_.create_task(task_config);

  rte::RunnableSpec detect_spec;
  detect_spec.name = "DetectCrash";
  detect_spec.execution_time = config_.detect_cost;
  detect_spec.body = [this] {
    const double accel = signals_.read_or("sensor.accel_g", 0.0);
    crash_pending_ = accel >= config_.threshold_g;
    if (crash_pending_) {
      ++crashes_;
      signals_.publish("crash.detected", static_cast<double>(crashes_),
                       kernel_.now());
    }
  };
  detect_ = rte_.register_runnable(component, std::move(detect_spec));

  rte::RunnableSpec notify_spec;
  notify_spec.name = "NotifyTelematics";
  notify_spec.execution_time = config_.notify_cost;
  notify_spec.body = [this] {
    if (!crash_pending_) return;
    crash_pending_ = false;
    ++notices_;
    signals_.publish("telematics.crash_notify",
                     static_cast<double>(notices_), kernel_.now());
  };
  notify_ = rte_.register_runnable(component, std::move(notify_spec));

  rte_.map_runnable(detect_, task_);
  rte_.map_runnable(notify_, task_);
  rte_.configure_task_execution(
      task_, rte::Rte::TaskExecutionConfig{kCrashEvent, /*chain_self=*/true});

  isr_ = kernel_.create_isr("CrashSensorIrq", config_.isr_cost, [this] {
    kernel_.set_event(task_, kCrashEvent);
  });
}

void CrashDetection::start() { kernel_.activate_task(task_); }

void CrashDetection::trigger_sensor() { kernel_.trigger_isr(isr_); }

void CrashDetection::configure_watchdog(
    wdg::SoftwareWatchdog& watchdog) const {
  // Sporadic runnables: aliveness monitoring off, arrival rate bounded
  // (a crash handler storm is a fault), flow checked within each episode.
  for (const auto& [runnable, name] :
       {std::pair{detect_, "DetectCrash"},
        std::pair{notify_, "NotifyTelematics"}}) {
    wdg::RunnableMonitor m;
    m.runnable = runnable;
    m.task = task_;
    m.application = app_;
    m.name = name;
    m.monitor_aliveness = false;
    m.aliveness_cycles = 1;
    m.min_heartbeats = 0;
    m.monitor_arrival_rate = true;
    m.arrival_cycles = config_.arrival_cycles;
    m.max_arrivals = config_.max_arrivals;
    m.program_flow = true;
    watchdog.add_runnable(m);
  }
  watchdog.add_flow_entry_point(detect_);
  watchdog.add_flow_edge(detect_, notify_);
  watchdog.add_flow_edge(notify_, detect_);
}

}  // namespace easis::apps
