#include "apps/lightctl.hpp"

#include "apps/monitor_hypothesis.hpp"

namespace easis::apps {

LightControl::LightControl(rte::Rte& rte, rte::SignalBus& signals,
                           TaskId task, LightControlConfig config)
    : signals_(signals), config_(config), task_(task) {
  app_ = rte.register_application("LightControl");
  const ComponentId component = rte.register_component(app_, "Headlamps");
  auto& kernel = rte.kernel();

  rte::RunnableSpec read_spec;
  read_spec.name = "ReadAmbient";
  read_spec.execution_time = config_.read_cost;
  read_spec.safety_critical = false;
  read_spec.body = [this, &kernel] {
    signals_.publish("light.ambient",
                     signals_.read_or("env.ambient_light", 1.0),
                     kernel.now());
  };
  read_ = rte.register_runnable(component, std::move(read_spec));

  rte::RunnableSpec control_spec;
  control_spec.name = "ControlLights";
  control_spec.execution_time = config_.control_cost;
  control_spec.safety_critical = false;
  control_spec.body = [this, &kernel] {
    const double ambient = signals_.read_or("light.ambient", 1.0);
    if (!headlamps_on_ && ambient <= config_.ambient_on_threshold) {
      headlamps_on_ = true;
    } else if (headlamps_on_ && ambient >= config_.ambient_off_threshold) {
      headlamps_on_ = false;
    }
    signals_.publish("light.headlamps", headlamps_on_ ? 1.0 : 0.0,
                     kernel.now());
  };
  control_ = rte.register_runnable(component, std::move(control_spec));

  rte.map_runnable(read_, task_);
  rte.map_runnable(control_, task_);
}

void LightControl::configure_watchdog(wdg::SoftwareWatchdog& watchdog) const {
  const sim::Duration check = watchdog.config().check_period;
  // Heartbeat monitoring only: program_flow=false keeps these runnables
  // out of the look-up table (paper §3.2.2: only safety-critical runnables
  // are flow-monitored).
  watchdog.add_runnable(derive_monitor(read_, task_, app_, "ReadAmbient",
                                       config_.period, check,
                                       /*program_flow=*/false));
  watchdog.add_runnable(derive_monitor(control_, task_, app_,
                                       "ControlLights", config_.period, check,
                                       /*program_flow=*/false));
}

}  // namespace easis::apps
