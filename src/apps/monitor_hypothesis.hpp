// Helper deriving a per-runnable fault hypothesis (watchdog monitoring
// parameters) from the runnable's nominal activation period.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "sim/time.hpp"
#include "util/ids.hpp"
#include "wdg/config.hpp"

namespace easis::apps {

/// Builds a RunnableMonitor for a runnable activated every `period`,
/// monitored by a watchdog whose main function runs every `check_period`.
/// The window spans ~4 activations; one missing or one extra activation
/// per window is tolerated (jitter margin).
inline wdg::RunnableMonitor derive_monitor(RunnableId runnable, TaskId task,
                                           ApplicationId application,
                                           std::string name,
                                           sim::Duration period,
                                           sim::Duration check_period,
                                           bool program_flow = true) {
  wdg::RunnableMonitor m;
  m.runnable = runnable;
  m.task = task;
  m.application = application;
  m.name = std::move(name);
  const std::int64_t p = std::max<std::int64_t>(1, period.as_micros());
  const std::int64_t c = std::max<std::int64_t>(1, check_period.as_micros());
  // Window of roughly four activations, at least two check cycles.
  const std::int64_t window_cycles = std::max<std::int64_t>(2, (4 * p) / c);
  const std::int64_t expected =
      std::max<std::int64_t>(1, (window_cycles * c) / p);
  m.aliveness_cycles = static_cast<std::uint32_t>(window_cycles);
  m.min_heartbeats = static_cast<std::uint32_t>(std::max<std::int64_t>(
      1, expected - 1));
  m.arrival_cycles = static_cast<std::uint32_t>(window_cycles);
  m.max_arrivals = static_cast<std::uint32_t>(expected + 1);
  m.program_flow = program_flow;
  return m;
}

}  // namespace easis::apps
