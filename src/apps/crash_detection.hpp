// Crash detection / emergency notification application.
//
// Exercises the platform's event-driven path end to end: a crash-sensor
// interrupt (category-2 ISR) sets an OSEK event; an extended task wakes,
// runs DetectCrash and NotifyTelematics, then chains itself back to the
// wait point. For the watchdog this is the sporadic-runnable case: the
// fault hypothesis monitors the arrival *rate* only (a crash handler that
// fires too often is as wrong as one that hangs), aliveness is disabled.
#pragma once

#include "os/kernel.hpp"
#include "rte/rte.hpp"
#include "rte/signal_bus.hpp"
#include "wdg/watchdog.hpp"

namespace easis::apps {

struct CrashDetectionConfig {
  /// Acceleration magnitude treated as a crash.
  double threshold_g = 4.0;
  sim::Duration isr_cost = sim::Duration::micros(10);
  sim::Duration detect_cost = sim::Duration::micros(300);
  sim::Duration notify_cost = sim::Duration::micros(500);
  /// Arrival-rate hypothesis: window length in watchdog cycles.
  std::uint32_t arrival_cycles = 10;
  /// Crash events tolerated per window.
  std::uint32_t max_arrivals = 2;
};

class CrashDetection {
 public:
  /// Registers the application and creates its extended task (priority
  /// `priority`) plus the crash-sensor ISR. The task is activated at
  /// start() and then waits for crash events indefinitely.
  CrashDetection(rte::Rte& rte, rte::SignalBus& signals,
                 os::Priority priority, CrashDetectionConfig config = {});

  /// Call after kernel start: activates the waiting server task.
  void start();

  /// Simulates the crash sensor firing (scenario/environment hook).
  /// The ISR reads "sensor.accel_g" from the signal bus.
  void trigger_sensor();

  [[nodiscard]] ApplicationId application() const { return app_; }
  [[nodiscard]] TaskId task() const { return task_; }
  [[nodiscard]] TaskId isr() const { return isr_; }
  [[nodiscard]] RunnableId detect_crash() const { return detect_; }
  [[nodiscard]] RunnableId notify_telematics() const { return notify_; }
  [[nodiscard]] std::uint32_t crashes_detected() const { return crashes_; }
  [[nodiscard]] std::uint32_t notifications_sent() const { return notices_; }

  void configure_watchdog(wdg::SoftwareWatchdog& watchdog) const;

  static constexpr os::EventMask kCrashEvent = 0x1;

 private:
  rte::Rte& rte_;
  rte::SignalBus& signals_;
  os::Kernel& kernel_;
  CrashDetectionConfig config_;
  ApplicationId app_;
  TaskId task_;
  TaskId isr_;
  RunnableId detect_;
  RunnableId notify_;
  std::uint32_t crashes_ = 0;
  std::uint32_t notices_ = 0;
  bool crash_pending_ = false;
};

}  // namespace easis::apps
