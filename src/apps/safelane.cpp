#include "apps/safelane.hpp"

#include <cmath>

#include "apps/monitor_hypothesis.hpp"

namespace easis::apps {

SafeLane::SafeLane(rte::Rte& rte, rte::SignalBus& signals, TaskId task,
                   SafeLaneConfig config)
    : signals_(signals), config_(config), task_(task) {
  app_ = rte.register_application("SafeLane");
  const ComponentId component =
      rte.register_component(app_, "DepartureWarning");
  auto& kernel = rte.kernel();

  rte::RunnableSpec acquire_spec;
  acquire_spec.name = "AcquireLanePosition";
  acquire_spec.execution_time = config_.acquire_cost;
  acquire_spec.body = [this, &kernel] {
    const double offset = signals_.read_or("lane.offset_m", 0.0);
    signals_.publish("safelane.offset", offset, kernel.now());
  };
  acquire_ = rte.register_runnable(component, std::move(acquire_spec));

  rte::RunnableSpec detect_spec;
  detect_spec.name = "DetectDeparture";
  detect_spec.execution_time = config_.detect_cost;
  detect_spec.body = [this, &kernel] {
    const double offset = std::abs(signals_.read_or("safelane.offset", 0.0));
    if (!warning_ && offset >= config_.assert_threshold_m) {
      warning_ = true;
    } else if (warning_ && offset <= config_.release_threshold_m) {
      warning_ = false;
    }
    signals_.publish("safelane.warning", warning_ ? 1.0 : 0.0, kernel.now());
  };
  detect_ = rte.register_runnable(component, std::move(detect_spec));

  rte::RunnableSpec warn_spec;
  warn_spec.name = "WarnActuator";
  warn_spec.execution_time = config_.warn_cost;
  warn_spec.body = [this, &kernel] {
    signals_.publish("hmi.lane_warning",
                     signals_.read_or("safelane.warning", 0.0), kernel.now());
  };
  warn_ = rte.register_runnable(component, std::move(warn_spec));

  rte.map_runnable(acquire_, task_);
  rte.map_runnable(detect_, task_);
  rte.map_runnable(warn_, task_);
}

void SafeLane::configure_watchdog(wdg::SoftwareWatchdog& watchdog) const {
  const sim::Duration check = watchdog.config().check_period;
  watchdog.add_runnable(derive_monitor(acquire_, task_, app_,
                                       "AcquireLanePosition", config_.period,
                                       check));
  watchdog.add_runnable(derive_monitor(detect_, task_, app_,
                                       "DetectDeparture", config_.period,
                                       check));
  watchdog.add_runnable(derive_monitor(warn_, task_, app_, "WarnActuator",
                                       config_.period, check));
  watchdog.add_flow_entry_point(acquire_);
  watchdog.add_flow_edge(acquire_, detect_);
  watchdog.add_flow_edge(detect_, warn_);
  watchdog.add_flow_edge(warn_, acquire_);
}

}  // namespace easis::apps
