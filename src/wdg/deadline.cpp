#include "wdg/deadline.hpp"

#include <stdexcept>

namespace easis::wdg {

std::size_t DeadlineSupervisionUnit::add_pair(DeadlinePair pair) {
  if (pair.max <= sim::Duration::zero() || pair.min > pair.max) {
    throw std::invalid_argument("DeadlineSupervision: bad window");
  }
  if (pair.start == pair.end) {
    throw std::invalid_argument(
        "DeadlineSupervision: start and end must differ");
  }
  pairs_.push_back(State{std::move(pair), std::nullopt, std::nullopt});
  return pairs_.size() - 1;
}

void DeadlineSupervisionUnit::on_execution(RunnableId runnable,
                                           sim::SimTime now,
                                           const ErrorCallback& on_error) {
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    State& state = pairs_[i];
    if (runnable == state.pair.start) {
      // (Re)arm: a repeated start without an end measures from the latest.
      state.started = now;
    } else if (runnable == state.pair.end && state.started.has_value()) {
      const sim::Duration measured = now - *state.started;
      state.started.reset();
      state.last = measured;
      ++measurements_;
      if ((measured > state.pair.max || measured < state.pair.min) &&
          on_error) {
        on_error(i, measured, now);
      }
    }
  }
}

void DeadlineSupervisionUnit::reset() {
  for (State& state : pairs_) {
    state.started.reset();
    state.last.reset();
  }
}

void DeadlineSupervisionUnit::scale_windows(double factor) {
  if (factor <= 0.0) {
    throw std::invalid_argument("DeadlineSupervision: bad scale factor");
  }
  if (factor == 1.0) return;
  for (State& state : pairs_) {
    state.pair.min = sim::Duration::micros(static_cast<std::int64_t>(
        static_cast<double>(state.pair.min.as_micros()) / factor));
    state.pair.max = sim::Duration::micros(static_cast<std::int64_t>(
        static_cast<double>(state.pair.max.as_micros()) * factor));
    if (state.pair.max <= sim::Duration::zero()) {
      state.pair.max = sim::Duration::micros(1);
    }
  }
}

const DeadlinePair& DeadlineSupervisionUnit::pair(std::size_t index) const {
  if (index >= pairs_.size()) {
    throw std::out_of_range("DeadlineSupervision: bad pair index");
  }
  return pairs_[index].pair;
}

bool DeadlineSupervisionUnit::armed(std::size_t index) const {
  if (index >= pairs_.size()) {
    throw std::out_of_range("DeadlineSupervision: bad pair index");
  }
  return pairs_[index].started.has_value();
}

std::optional<sim::Duration> DeadlineSupervisionUnit::last_measured(
    std::size_t index) const {
  if (index >= pairs_.size()) {
    throw std::out_of_range("DeadlineSupervision: bad pair index");
  }
  return pairs_[index].last;
}

}  // namespace easis::wdg
