// Static validation of a Software Watchdog configuration.
//
// The paper's configuration is generated from the system description
// (fault hypothesis per runnable, permitted successor table). This checker
// catches the integration mistakes that would otherwise surface as false
// positives or blind spots at runtime:
//   - hypothesis inconsistencies (min > max possible, window too small for
//     the runnable's activation period),
//   - flow-table defects (monitored runnable unreachable from any entry
//     point, edges referencing unmonitored runnables, dead ends in tasks
//     with entry points).
#pragma once

#include <string>
#include <vector>

#include "sim/time.hpp"
#include "wdg/watchdog.hpp"

namespace easis::wdg {

enum class FindingSeverity { kWarning, kError };

struct ConfigFinding {
  FindingSeverity severity = FindingSeverity::kWarning;
  RunnableId runnable;
  std::string message;
};

class ConfigChecker {
 public:
  /// `activation_period` lookup: expected activation period per runnable
  /// (from the schedule); invalid/zero durations skip the timing checks.
  using PeriodLookup = std::function<sim::Duration(RunnableId)>;

  /// Runs all checks against the watchdog's current configuration.
  [[nodiscard]] static std::vector<ConfigFinding> check(
      const SoftwareWatchdog& watchdog, const PeriodLookup& period_of = {});

  /// True if no finding has severity kError.
  [[nodiscard]] static bool acceptable(
      const std::vector<ConfigFinding>& findings);

  /// Renders findings one per line.
  static void write(std::ostream& out,
                    const std::vector<ConfigFinding>& findings);
};

}  // namespace easis::wdg
