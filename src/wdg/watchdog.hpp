// Software Watchdog service facade (paper §3.2, Figure 2).
//
// Integrates the three units:
//   - Heartbeat Monitoring Unit (aliveness + arrival rate counters)
//   - Program Flow Checking Unit (look-up table of permitted successors)
//   - Task State Indication Unit (error vectors -> task/app/ECU state)
// and implements the unit collaboration of Figure 6: aliveness errors whose
// root cause is a detected program flow error on the same task are
// accumulated and reported only once, so the TSI sees the true cause.
//
// Interfaces (paper §4.4):
//   1. indicate_aliveness()  - application glue code -> watchdog
//   2. error/state listeners - watchdog -> Fault Management Framework
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "wdg/config.hpp"
#include "wdg/deadline.hpp"
#include "wdg/heartbeat.hpp"
#include "wdg/pfc.hpp"
#include "wdg/recovery.hpp"
#include "wdg/tsi.hpp"
#include "wdg/types.hpp"

namespace easis::wdg {

class SoftwareWatchdog {
 public:
  using ErrorListener = std::function<void(const ErrorReport&)>;
  using TaskStateListener =
      std::function<void(TaskId, Health, sim::SimTime)>;
  using ApplicationStateListener =
      std::function<void(ApplicationId, Health, sim::SimTime)>;
  using EcuStateListener = std::function<void(Health, sim::SimTime)>;

  explicit SoftwareWatchdog(WatchdogConfig config);

  // --- configuration (fault hypothesis) --------------------------------------
  void add_runnable(const RunnableMonitor& monitor);
  void add_flow_edge(RunnableId pred, RunnableId succ);
  void add_flow_entry_point(RunnableId runnable);
  /// Deadline supervision (extension): the elapsed time between the start
  /// and end checkpoint runnables must lie within [min, max]. Both
  /// runnables must already be monitored. Returns the pair index.
  std::size_t add_deadline_pair(DeadlinePair pair);
  [[nodiscard]] const WatchdogConfig& config() const { return config_; }

  // --- runtime interface 1: aliveness indication (glue code) ------------------
  void indicate_aliveness(RunnableId runnable, TaskId task, sim::SimTime now);

  /// Periodic main function; call every config().check_period.
  void main_function(sim::SimTime now);

  /// Job boundary notification (task terminated) for the PFC context.
  void notify_task_terminated(TaskId task);

  /// Entry point for auxiliary monitoring units (e.g. the communication
  /// monitoring unit): routes an externally detected error through the
  /// same listener + TSI path as the watchdog's own detections, so network
  /// faults drive identical FMF treatment. The report's runnable must be
  /// registered (add_runnable), or the TSI will ignore it.
  void report_external_error(ErrorReport report);

  // --- runtime interface 2: reporting to the FMF -------------------------------
  void add_error_listener(ErrorListener listener);
  void add_task_state_listener(TaskStateListener listener);
  void add_application_state_listener(ApplicationStateListener listener);
  void add_ecu_state_listener(EcuStateListener listener);

  // --- fault-treatment hooks -----------------------------------------------------
  void set_activation_status(RunnableId runnable, bool active);
  [[nodiscard]] bool activation_status(RunnableId runnable) const;
  /// Dynamic reconfiguration (paper outlook): adapts the fault hypothesis
  /// of a monitored runnable, e.g. after switching an application into a
  /// degraded mode with relaxed timing.
  void update_hypothesis(RunnableId runnable, std::uint32_t aliveness_cycles,
                         std::uint32_t min_heartbeats,
                         std::uint32_t arrival_cycles,
                         std::uint32_t max_arrivals);
  /// Mode-dependent supervision binding: replaces the runnable's entire
  /// monitoring hypothesis — armed checks included — with clean counters
  /// (the per-power-mode binding path; see update_hypothesis for the
  /// parameter-only variant). The runnable must already be registered.
  void rebind_hypothesis(const RunnableMonitor& monitor);
  /// After an application restart: clear its runnables' counters and the
  /// error vectors of its tasks.
  void clear_task_state(TaskId task, sim::SimTime now);
  void reset_runnable(RunnableId runnable);
  /// ECU software reset: clears all dynamic state, keeps configuration.
  void reset(sim::SimTime now);

  // --- introspection (ControlDesk-style tracing) -----------------------------------
  [[nodiscard]] const HeartbeatMonitoringUnit& heartbeat_unit() const {
    return hbm_;
  }
  [[nodiscard]] const ProgramFlowCheckingUnit& pfc_unit() const { return pfc_; }
  [[nodiscard]] const DeadlineSupervisionUnit& deadline_unit() const {
    return deadline_;
  }
  [[nodiscard]] const TaskStateIndicationUnit& tsi_unit() const { return tsi_; }
  /// Post-reset recovery validation: warm-up windows opened here receive
  /// the watchdog's heartbeat indications, detected errors and cycle ticks.
  [[nodiscard]] RecoverySupervisionUnit& recovery_unit() { return recovery_; }
  [[nodiscard]] const RecoverySupervisionUnit& recovery_unit() const {
    return recovery_;
  }
  [[nodiscard]] Health task_health(TaskId task) const {
    return tsi_.task_health(task);
  }
  [[nodiscard]] Health application_health(ApplicationId app) const {
    return tsi_.application_health(app);
  }
  [[nodiscard]] Health ecu_health() const { return tsi_.ecu_health(); }
  [[nodiscard]] SupervisionReport report(RunnableId runnable) const {
    return tsi_.report(runnable);
  }
  [[nodiscard]] std::uint64_t cycles_run() const { return cycles_; }
  [[nodiscard]] std::uint64_t errors_reported() const { return errors_; }
  /// Default (baseline-policy) escalation mapping.
  [[nodiscard]] static Severity severity_of(ErrorType type);
  /// This instance's escalation mapping (config().severities); the FMF
  /// classifies detected errors through it so a policy can re-map classes.
  [[nodiscard]] Severity severity(ErrorType type) const;
  /// Policy hook: scales every deadline pair's permitted window (min
  /// divided, max multiplied by `factor`) — a >1 factor relaxes deadline
  /// supervision, a <1 factor tightens it.
  void scale_deadline_windows(double factor);
  /// Dumps the supervision reports of all monitored runnables plus the
  /// derived task/ECU states as an aligned text table (diagnostics).
  void write_supervision_reports(std::ostream& out) const;

 private:
  WatchdogConfig config_;
  HeartbeatMonitoringUnit hbm_;
  ProgramFlowCheckingUnit pfc_;
  DeadlineSupervisionUnit deadline_;
  TaskStateIndicationUnit tsi_;
  RecoverySupervisionUnit recovery_;

  // Mapping info for monitored runnables (needed for reports).
  std::unordered_map<RunnableId, RunnableMonitor> monitors_;
  // Collaboration state (Figure 6): per task, the main-function cycle of
  // the most recent program flow error. Aliveness errors on such a task
  // are attributed to the flow fault (accumulated, reported once) — but
  // only while the episode is fresh: a mask without a recent flow error
  // would silently hide a genuinely starved task forever.
  std::unordered_map<TaskId, std::uint64_t> last_flow_error_cycle_;
  std::unordered_set<TaskId> accumulated_reported_;

  std::vector<ErrorListener> error_listeners_;
  std::vector<TaskStateListener> task_state_listeners_;
  std::vector<ApplicationStateListener> app_state_listeners_;
  std::vector<EcuStateListener> ecu_state_listeners_;
  bool task_state_fanout_installed_ = false;
  bool app_state_fanout_installed_ = false;
  bool ecu_state_fanout_installed_ = false;
  std::uint64_t cycles_ = 0;
  std::uint64_t errors_ = 0;

  void handle_hbm_error(RunnableId runnable, ErrorType type, sim::SimTime now);
  void handle_pfc_error(RunnableId runnable, RunnableId predecessor,
                        TaskId task, sim::SimTime now);
  void handle_deadline_error(std::size_t pair_index, sim::Duration measured,
                             sim::SimTime now);
  void emit(ErrorReport report);
};

}  // namespace easis::wdg
