// Software Watchdog shared types: error classification, reports, health
// states (paper Section 3).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/time.hpp"
#include "util/ids.hpp"

namespace easis::wdg {

/// The three error classes the Software Watchdog detects (paper §3.2).
enum class ErrorType : std::uint8_t {
  /// The runnable's aliveness indication was not executed frequently
  /// enough within its monitoring period (blocked / preempted / hanging).
  kAliveness = 0,
  /// More aliveness indications within one period than expected
  /// (excessively dispatched object).
  kArrivalRate = 1,
  /// The executed successor was not in the permitted predecessor/successor
  /// look-up table.
  kProgramFlow = 2,
  /// Aliveness error recognised as a secondary symptom of a program flow
  /// error (unit collaboration, paper Figure 6): reported once, accumulated.
  kAccumulatedAliveness = 3,
  /// Elapsed time between a start and an end checkpoint outside the
  /// permitted window (deadline supervision, extension).
  kDeadline = 4,
  /// Network communication fault on a monitored channel: failed E2E
  /// checks or a signal reception timeout (communication monitoring,
  /// extension towards the paper's ISS domain-crossing outlook).
  kCommunication = 5,
  /// Persistent fault memory damage: an NVM bank failed its CRC check at
  /// boot (reset-safe fault memory extension). Reported by the FMF itself;
  /// carries no runnable/task mapping.
  kNvmCorruption = 6,
  /// A task's modelled heap usage breached its budget watermark or showed
  /// a sustained leak rate (resource supervision, extension).
  kMemoryBudget = 7,
  /// Handle/descriptor usage breached the task budget or the global pool
  /// ran dry while the task kept requesting (resource supervision).
  kHandleExhaustion = 8,
  /// A bounded signal queue stayed above its watermark or overflowed:
  /// the consumer is not keeping up (resource supervision).
  kQueueOverflow = 9,
  /// The modelled CPU-load average stayed above the configured ceiling
  /// for the transgression window (resource supervision).
  kCpuOverload = 10,
  /// The junction temperature crossed a stage of the thermal-derating
  /// ladder, or the temperature sensor went stuck/implausible
  /// (environmental supervision, extension).
  kThermal = 11,
  /// The NVM fault-memory journal ran past its fill watermark, wore out
  /// its erase-cycle budget or started failing writes (filesystem/NVM
  /// supervision, extension).
  kFilesystem = 12,
  /// A user-defined check rule (policy `check` clause, watchdogd's
  /// script.c analogue) evaluated its signal predicate to false.
  kCheckRule = 13,
  /// The power-mode machine misbehaved: a mode overstayed its declared
  /// maximum dwell (stuck-in-sleep, wake-storm overrun), a commanded
  /// transition was refused or hung, or a supervised entity heartbeat
  /// during a mode that contracts silence (power-mode supervision,
  /// duty-cycled sensor-node extension).
  kPowerMode = 14,
};

inline constexpr std::size_t kErrorTypeCount = 15;

[[nodiscard]] constexpr std::string_view to_string(ErrorType t) {
  switch (t) {
    case ErrorType::kAliveness: return "aliveness";
    case ErrorType::kArrivalRate: return "arrival_rate";
    case ErrorType::kProgramFlow: return "program_flow";
    case ErrorType::kAccumulatedAliveness: return "accumulated_aliveness";
    case ErrorType::kDeadline: return "deadline";
    case ErrorType::kCommunication: return "communication";
    case ErrorType::kNvmCorruption: return "nvm_corruption";
    case ErrorType::kMemoryBudget: return "memory_budget";
    case ErrorType::kHandleExhaustion: return "handle_exhaustion";
    case ErrorType::kQueueOverflow: return "queue_overflow";
    case ErrorType::kCpuOverload: return "cpu_overload";
    case ErrorType::kThermal: return "thermal";
    case ErrorType::kFilesystem: return "filesystem";
    case ErrorType::kCheckRule: return "check_rule";
    case ErrorType::kPowerMode: return "power_mode";
  }
  return "?";
}

/// Severity forwarded to the Fault Management Framework.
enum class Severity : std::uint8_t { kInfo, kMinor, kMajor, kCritical };

[[nodiscard]] constexpr std::string_view to_string(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kMinor: return "minor";
    case Severity::kMajor: return "major";
    case Severity::kCritical: return "critical";
  }
  return "?";
}

/// Health of a monitored entity as derived by the TSI unit.
enum class Health : std::uint8_t { kOk, kFaulty };

[[nodiscard]] constexpr std::string_view to_string(Health h) {
  return h == Health::kOk ? "ok" : "faulty";
}

/// One detected error, reported to listeners and to the TSI unit.
struct ErrorReport {
  RunnableId runnable;
  TaskId task;
  ApplicationId application;
  ErrorType type = ErrorType::kAliveness;
  sim::SimTime time;
  /// Extra context: e.g. the offending predecessor for flow errors.
  RunnableId related;
  std::string detail;
};

/// Per-runnable supervision report (TSI output, paper §3.2.3).
struct SupervisionReport {
  RunnableId runnable;
  TaskId task;
  ApplicationId application;
  std::uint32_t aliveness_errors = 0;
  std::uint32_t arrival_rate_errors = 0;
  std::uint32_t program_flow_errors = 0;
  std::uint32_t accumulated_aliveness_errors = 0;
  std::uint32_t deadline_errors = 0;
  std::uint32_t communication_errors = 0;
  std::uint32_t nvm_corruption_errors = 0;
  std::uint32_t memory_budget_errors = 0;
  std::uint32_t handle_exhaustion_errors = 0;
  std::uint32_t queue_overflow_errors = 0;
  std::uint32_t cpu_overload_errors = 0;
  std::uint32_t thermal_errors = 0;
  std::uint32_t filesystem_errors = 0;
  std::uint32_t check_rule_errors = 0;
  std::uint32_t power_mode_errors = 0;
  bool activation_status = true;
};

/// Persistent record of one instrumented section's deadline
/// transgressions (supervised-process client API): serialised into fault
/// memory by the FMF and read back over UDS-lite ReadDataByIdentifier.
struct TransgressionRecord {
  std::string section;
  std::uint32_t count = 0;
  /// Worst observed window duration (open -> close), zero while only
  /// still-open windows transgressed.
  sim::Duration worst = sim::Duration::zero();
  sim::SimTime last_at;
};

}  // namespace easis::wdg
