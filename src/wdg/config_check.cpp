#include "wdg/config_check.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_set>

namespace easis::wdg {

namespace {

void add(std::vector<ConfigFinding>& findings, FindingSeverity severity,
         RunnableId runnable, std::string message) {
  findings.push_back(ConfigFinding{severity, runnable, std::move(message)});
}

}  // namespace

std::vector<ConfigFinding> ConfigChecker::check(
    const SoftwareWatchdog& watchdog, const PeriodLookup& period_of) {
  std::vector<ConfigFinding> findings;
  const auto& hbm = watchdog.heartbeat_unit();
  const auto& pfc = watchdog.pfc_unit();
  const sim::Duration check = watchdog.config().check_period;

  // --- fault hypothesis consistency -----------------------------------------
  for (RunnableId id : hbm.monitored_runnables()) {
    const RunnableMonitor& m = hbm.config(id);

    if (m.monitor_aliveness && m.min_heartbeats == 0) {
      add(findings, FindingSeverity::kWarning, id,
          m.name + ": aliveness monitored but min_heartbeats=0 (vacuous)");
    }
    if (m.monitor_arrival_rate && m.max_arrivals == 0) {
      add(findings, FindingSeverity::kWarning, id,
          m.name + ": max_arrivals=0 flags every single heartbeat");
    }
    if (!m.monitor_aliveness && !m.monitor_arrival_rate && !m.program_flow) {
      add(findings, FindingSeverity::kWarning, id,
          m.name + ": registered but nothing is monitored");
    }

    if (!period_of) continue;
    const sim::Duration period = period_of(id);
    if (period <= sim::Duration::zero()) continue;  // sporadic: skip timing
    const std::int64_t expected_aliveness =
        (static_cast<std::int64_t>(m.aliveness_cycles) * check.as_micros()) /
        period.as_micros();
    if (m.monitor_aliveness &&
        expected_aliveness < static_cast<std::int64_t>(m.min_heartbeats)) {
      add(findings, FindingSeverity::kError, id,
          m.name + ": window yields at most " +
              std::to_string(expected_aliveness) +
              " heartbeats but min_heartbeats=" +
              std::to_string(m.min_heartbeats) +
              " (guaranteed false positives)");
    }
    const std::int64_t expected_arrivals =
        (static_cast<std::int64_t>(m.arrival_cycles) * check.as_micros() +
         period.as_micros() - 1) /
        period.as_micros();
    if (m.monitor_arrival_rate &&
        expected_arrivals > static_cast<std::int64_t>(m.max_arrivals)) {
      add(findings, FindingSeverity::kError, id,
          m.name + ": nominal rate produces up to " +
              std::to_string(expected_arrivals) +
              " arrivals per window but max_arrivals=" +
              std::to_string(m.max_arrivals) +
              " (guaranteed false positives)");
    }
    if (m.monitor_aliveness &&
        expected_aliveness >
            2 * static_cast<std::int64_t>(m.min_heartbeats) + 2) {
      add(findings, FindingSeverity::kWarning, id,
          m.name + ": hypothesis tolerates less than half the nominal "
                   "rate (slow detection)");
    }
  }

  // --- flow table ---------------------------------------------------------------
  const auto flow_monitored = pfc.monitored_runnables();
  std::unordered_set<RunnableId> monitored_set(flow_monitored.begin(),
                                               flow_monitored.end());
  std::map<TaskId, std::vector<RunnableId>> by_task;
  for (RunnableId id : flow_monitored) {
    by_task[pfc.task_of(id)].push_back(id);
  }

  for (RunnableId id : flow_monitored) {
    for (RunnableId succ : pfc.successors_of(id)) {
      if (!monitored_set.contains(succ)) {
        add(findings, FindingSeverity::kWarning, id,
            "flow edge to unmonitored runnable #" +
                std::to_string(succ.value()) + " is inert");
      } else if (pfc.task_of(succ) != pfc.task_of(id)) {
        add(findings, FindingSeverity::kError, id,
            "flow edge crosses tasks (#" +
                std::to_string(pfc.task_of(id).value()) + " -> #" +
                std::to_string(pfc.task_of(succ).value()) +
                "); contexts are per task");
      }
    }
  }

  for (const auto& [task, runnables] : by_task) {
    const auto entries = pfc.entry_points_of(task);
    if (entries.empty()) {
      if (runnables.size() > 1) {
        add(findings, FindingSeverity::kWarning, runnables.front(),
            "task #" + std::to_string(task.value()) +
                ": no entry points configured; any job start is accepted");
      }
      continue;
    }
    // Reachability from the entry points within this task.
    std::unordered_set<RunnableId> reached(entries.begin(), entries.end());
    std::deque<RunnableId> frontier(entries.begin(), entries.end());
    while (!frontier.empty()) {
      const RunnableId current = frontier.front();
      frontier.pop_front();
      for (RunnableId succ : pfc.successors_of(current)) {
        if (monitored_set.contains(succ) && reached.insert(succ).second) {
          frontier.push_back(succ);
        }
      }
    }
    for (RunnableId id : runnables) {
      if (!reached.contains(id)) {
        add(findings, FindingSeverity::kError, id,
            "flow-monitored runnable unreachable from the task's entry "
            "points (every execution would be flagged)");
      }
      if (pfc.successors_of(id).empty() && runnables.size() > 1) {
        add(findings, FindingSeverity::kWarning, id,
            "flow dead end: no permitted successor (next monitored "
            "runnable would be flagged)");
      }
    }
  }

  return findings;
}

bool ConfigChecker::acceptable(const std::vector<ConfigFinding>& findings) {
  return std::none_of(findings.begin(), findings.end(),
                      [](const ConfigFinding& f) {
                        return f.severity == FindingSeverity::kError;
                      });
}

void ConfigChecker::write(std::ostream& out,
                          const std::vector<ConfigFinding>& findings) {
  if (findings.empty()) {
    out << "watchdog configuration: no findings\n";
    return;
  }
  for (const ConfigFinding& f : findings) {
    out << (f.severity == FindingSeverity::kError ? "ERROR" : "warning")
        << " [runnable " << f.runnable << "] " << f.message << '\n';
  }
}

}  // namespace easis::wdg
