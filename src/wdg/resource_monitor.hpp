// Resource Supervision Unit (extension of the paper's unit set).
//
// The watchdog's HBM/PFC/TSI units supervise computation timing; this unit
// supervises *resource exhaustion* — the creeping failure class real
// dependable nodes die from long before they miss a heartbeat (watchdogd
// supervises load average, memory pressure and descriptor exhaustion as
// first-class watchdog inputs for the same reason). Each supervised
// resource registers as a virtual runnable (all heartbeat/flow monitoring
// off, like the CMU's channels) so the TSI keeps an error indication
// vector for it and the FMF treats its faults exactly like task faults.
//
// Four resource classes map onto four error types:
//   kMemory   -> ErrorType::kMemoryBudget     (per-task heap budget)
//   kHandles  -> ErrorType::kHandleExhaustion (task budget / global pool)
//   kQueue    -> ErrorType::kQueueOverflow    (bounded signal queues)
//   kCpuLoad  -> ErrorType::kCpuOverload      (modelled load average)
//
// Three detection rules feed each class (a report is emitted once per
// cycle while the condition holds, so sustained transgressions cross the
// TSI threshold instead of flagging once and going quiet):
//   - watermark: the level (usage/budget, depth/capacity, load average)
//     stayed at or above the watermark for `window_cycles` consecutive
//     cycles (the transgression window debounces transient spikes);
//   - exhaustion: the kernel denied a request (allocation/handle) or the
//     queue overflowed since the last cycle — reported immediately, no
//     debounce, because a denial is already a visible failure;
//   - leak rate: usage grew by more than `leak_rate_per_s` (normalised to
//     the budget) per second across the leak sample window — catches slow
//     leaks that would take hours to reach the watermark.
//
// Every cycle the unit publishes `res.<name>.level` (percent) on the
// signal bus, so DTC freeze frames capture the offending task's resource
// snapshot at detection time; every `snapshot_every` cycles it emits a
// telemetry kResourceSnapshot event feeding the resource level histogram.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "os/kernel.hpp"
#include "rte/signal_bus.hpp"
#include "sim/time.hpp"
#include "util/ids.hpp"
#include "wdg/watchdog.hpp"

namespace easis::wdg {

enum class ResourceClass : std::uint8_t {
  kMemory = 0,
  kHandles,
  kQueue,
  kCpuLoad,
};

[[nodiscard]] constexpr std::string_view to_string(ResourceClass c) {
  switch (c) {
    case ResourceClass::kMemory: return "memory";
    case ResourceClass::kHandles: return "handles";
    case ResourceClass::kQueue: return "queue";
    case ResourceClass::kCpuLoad: return "cpu_load";
  }
  return "?";
}

/// Declarative detection limits of one supervised resource.
struct ResourceLimits {
  /// Watermark as a fraction of the budget/capacity (or of full
  /// utilisation for kCpuLoad). Zero disables watermark detection.
  double watermark = 0.9;
  /// Consecutive cycles at/above the watermark before the first report
  /// (transgression window).
  std::uint32_t window_cycles = 3;
  /// Normalised usage growth per second that counts as a leak; zero
  /// disables leak-rate detection. Only meaningful for memory/handles.
  double leak_rate_per_s = 0.0;
  /// Number of level samples the leak-rate slope is computed over.
  std::uint32_t leak_window_cycles = 16;
};

/// One supervised resource bound to the task/application it belongs to.
struct SupervisedResource {
  /// Virtual-runnable identity of the resource in the watchdog/TSI.
  RunnableId id;
  TaskId task;
  ApplicationId application;
  std::string name;
  ResourceClass resource_class = ResourceClass::kMemory;
  ResourceLimits limits;
  /// Signal whose bounded queue is supervised (kQueue only).
  std::string queue_signal;
};

class ResourceSupervisionUnit {
 public:
  ResourceSupervisionUnit(SoftwareWatchdog& watchdog, os::Kernel& kernel,
                          rte::SignalBus& bus);

  /// Registers a supervised resource as a virtual runnable.
  void add_resource(const SupervisedResource& resource);

  /// Smoothing factor of the CPU-load EWMA (instantaneous utilisation of
  /// the elapsed cycle weighted by alpha).
  void set_load_smoothing(double alpha) { load_alpha_ = alpha; }
  /// Emit a kResourceSnapshot telemetry event every N cycles (0 disables).
  void set_snapshot_every(std::uint32_t cycles) { snapshot_every_ = cycles; }

  /// Periodic supervision; call every watchdog check period.
  void cycle(sim::SimTime now);

  // --- introspection ------------------------------------------------------
  /// Last sampled level of the resource as percent (integer, 0..100+).
  [[nodiscard]] std::uint64_t level_pct(RunnableId id) const;
  [[nodiscard]] std::uint64_t reports_for(RunnableId id) const;
  [[nodiscard]] std::uint64_t reports_emitted() const { return reports_; }
  [[nodiscard]] std::size_t resource_count() const { return order_.size(); }
  /// Modelled CPU-load average (EWMA), 0..1.
  [[nodiscard]] double load_average() const { return load_average_; }

  /// Per-resource budgets/usage, one line each — the post-mortem resource
  /// snapshot embedded in flight-recorder dumps of quarantined runs.
  [[nodiscard]] std::string format_snapshot() const;

 private:
  struct State {
    SupervisedResource config;
    /// Consecutive cycles at/above the watermark.
    std::uint32_t above_watermark = 0;
    /// Level samples (fraction of budget) for leak-rate detection.
    std::deque<double> samples;
    std::uint64_t last_denied = 0;
    std::uint64_t last_overflows = 0;
    std::uint64_t last_level_pct = 0;
    std::uint64_t last_usage = 0;
    std::uint64_t last_budget = 0;
    std::uint64_t reports = 0;
  };

  SoftwareWatchdog& watchdog_;
  os::Kernel& kernel_;
  rte::SignalBus& bus_;
  std::unordered_map<RunnableId, State> resources_;
  std::vector<RunnableId> order_;
  std::uint64_t reports_ = 0;
  std::uint64_t cycles_ = 0;
  std::uint32_t snapshot_every_ = 8;

  // CPU-load EWMA over cycle deltas of the kernel's busy time.
  double load_alpha_ = 0.3;
  double load_average_ = 0.0;
  sim::Duration last_busy_ = sim::Duration::zero();
  sim::SimTime last_cycle_at_;
  bool have_last_cycle_ = false;

  /// Samples level (0..1) + usage/budget of one resource at `now`.
  void sample(State& state, sim::SimTime now, double& level,
              std::uint64_t& usage, std::uint64_t& budget,
              std::uint64_t& denied_total);
  void report(State& state, ErrorType type, sim::SimTime now,
              std::string detail);
  [[nodiscard]] static ErrorType error_type_of(ResourceClass c);
};

}  // namespace easis::wdg
