// Task State Indication Unit (paper §3.2.3).
//
// Accumulates per-runnable error reports in an error indication vector per
// task. When one element reaches its threshold the whole task is considered
// faulty; task states roll up to application states and the global ECU
// state using the runnable->task->application mapping information.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"
#include "util/ids.hpp"
#include "wdg/config.hpp"
#include "wdg/types.hpp"

namespace easis::wdg {

class TaskStateIndicationUnit {
 public:
  struct Thresholds {
    /// Per error class; a zero threshold disables that check entirely.
    std::array<std::uint32_t, kErrorTypeCount> by_type{
        3, 3, 3, 3, 3, 3, 1, 3, 3, 3, 3, 3, 3, 3, 3};
    [[nodiscard]] std::uint32_t of(ErrorType t) const {
      return by_type[static_cast<std::size_t>(t)];
    }
  };

  using TaskStateCallback =
      std::function<void(TaskId, Health, sim::SimTime)>;
  using ApplicationStateCallback =
      std::function<void(ApplicationId, Health, sim::SimTime)>;
  using EcuStateCallback = std::function<void(Health, sim::SimTime)>;

  explicit TaskStateIndicationUnit(Thresholds thresholds,
                                   std::uint32_t ecu_faulty_task_limit);

  /// Registers a monitored runnable with its mapping info.
  void add_runnable(RunnableId runnable, TaskId task,
                    ApplicationId application);

  /// Records one error-indication-vector increment and re-derives states.
  void report_error(RunnableId runnable, ErrorType type, sim::SimTime now);

  // --- state queries -----------------------------------------------------------
  [[nodiscard]] Health task_health(TaskId task) const;
  [[nodiscard]] Health application_health(ApplicationId app) const;
  [[nodiscard]] Health ecu_health() const { return ecu_health_; }
  [[nodiscard]] std::uint32_t error_count(RunnableId runnable,
                                          ErrorType type) const;
  [[nodiscard]] SupervisionReport report(RunnableId runnable) const;
  [[nodiscard]] std::vector<TaskId> faulty_tasks() const;

  // --- state transitions out --------------------------------------------------
  void set_task_state_callback(TaskStateCallback cb);
  void set_application_state_callback(ApplicationStateCallback cb);
  void set_ecu_state_callback(EcuStateCallback cb);

  // --- fault-treatment hooks ----------------------------------------------------
  /// Clears the error vector elements of one task (after restart/treatment).
  void clear_task(TaskId task, sim::SimTime now);
  /// Clears everything (ECU software reset).
  void reset(sim::SimTime now);

 private:
  struct Element {
    TaskId task;
    ApplicationId application;
    std::array<std::uint32_t, kErrorTypeCount> counts{};
  };

  Thresholds thresholds_;
  std::uint32_t ecu_faulty_task_limit_;
  std::unordered_map<RunnableId, Element> elements_;
  std::vector<RunnableId> order_;
  std::unordered_map<TaskId, Health> task_health_;
  std::unordered_map<ApplicationId, Health> app_health_;
  Health ecu_health_ = Health::kOk;

  TaskStateCallback task_cb_;
  ApplicationStateCallback app_cb_;
  EcuStateCallback ecu_cb_;

  void derive_states(sim::SimTime now);
};

}  // namespace easis::wdg
