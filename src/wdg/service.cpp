#include "wdg/service.hpp"

#include <stdexcept>

namespace easis::wdg {

/// Feeds task-termination (job boundary) notifications to the PFC unit,
/// skipping the watchdog's own task.
class WatchdogService::BoundaryObserver : public os::KernelObserver {
 public:
  BoundaryObserver(SoftwareWatchdog& watchdog, TaskId self)
      : watchdog_(watchdog), self_(self) {}

  void on_task_terminated(TaskId task, sim::SimTime) override {
    if (task != self_) watchdog_.notify_task_terminated(task);
  }

 private:
  SoftwareWatchdog& watchdog_;
  TaskId self_;
};

WatchdogService::WatchdogService(os::Kernel& kernel, rte::Rte& rte,
                                 SoftwareWatchdog& watchdog,
                                 CounterId counter, ServiceConfig config)
    : kernel_(kernel), watchdog_(watchdog), config_(config) {
  os::TaskConfig task_config;
  task_config.name = "SWD_MainFunction";
  task_config.priority = config.priority;
  task_config.preemptable = false;  // the check runs atomically
  task_ = kernel_.create_task(task_config);

  kernel_.set_job_factory(task_, [this] {
    const auto monitored =
        watchdog_.heartbeat_unit().monitored_runnables().size();
    os::Segment segment;
    segment.cost =
        config_.base_cost +
        config_.per_runnable_cost * static_cast<std::int64_t>(monitored);
    if (hang_) {
      // Injected watchdog-task hang: the job never finishes within any
      // realistic horizon, so no main-function cycle (and no HW service
      // call) happens. Only the hardware layer below can catch this.
      segment.cost = sim::Duration::seconds(3600);
      return os::Job{segment};
    }
    segment.on_complete = [this] {
      watchdog_.main_function(kernel_.now());
      if (self_supervision_ != nullptr) {
        const std::uint64_t cycle = watchdog_.cycles_run();
        std::uint8_t token = WatchdogSelfSupervision::token_for(cycle);
        if (corrupt_token_) token ^= 0xFF;
        self_supervision_->service(cycle, token, kernel_.now());
      }
    };
    return os::Job{segment};
  });

  alarm_ = kernel_.create_alarm(
      counter, os::AlarmActionActivateTask{task_}, "SWD_Alarm");

  // Period in counter ticks. The counter tick must divide the check period.
  const auto check = watchdog_.config().check_period.as_micros();
  // We cannot query the counter tick through the public API cheaply;
  // the platform convention is a 1 ms system counter.
  constexpr std::int64_t kTickMicros = 1000;
  if (check % kTickMicros != 0 || check <= 0) {
    throw std::invalid_argument(
        "WatchdogService: check_period must be a positive multiple of 1ms");
  }
  period_ticks_ = static_cast<std::uint64_t>(check / kTickMicros);

  rte.add_heartbeat_listener(
      [this](RunnableId runnable, TaskId task, sim::SimTime now) {
        watchdog_.indicate_aliveness(runnable, task, now);
      });

  observer_ = std::make_unique<BoundaryObserver>(watchdog_, task_);
  kernel_.add_observer(observer_.get());
}

WatchdogService::~WatchdogService() {
  kernel_.remove_observer(observer_.get());
}

void WatchdogService::arm() {
  kernel_.set_rel_alarm(alarm_, period_ticks_, period_ticks_);
}

}  // namespace easis::wdg
