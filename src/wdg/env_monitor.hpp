// Environment Supervision Unit (watchdogd's tempmon.c/fsmon.c family).
//
// Completes the monitor set of the Resource Supervision Unit with the two
// environmental failure classes that dominate field returns: thermal
// stress and flash/NVM wear. Like the RSU, every supervised channel
// registers as a virtual runnable (all heartbeat/flow monitoring off) so
// the TSI keeps an error-indication vector for it and the FMF treats its
// faults exactly like task faults.
//
// Thermal channel — a multi-stage graceful-derating ladder:
//
//   normal --warn_c--> warn      one kThermal report (warn DTC), nothing
//                                else changes
//        --derate_c--> derate    the derate hook fires: the node parks the
//                                QM applications and stretches the HBM
//                                periods of the safety runnables (slower
//                                clock under thermal stress must not look
//                                like dead runnables)
//      --shutdown_c--> shutdown  the shutdown hook fires: controlled
//                                shutdown into the persistent safe state
//
//   Downward transitions apply `hysteresis_c` so a reading jittering on a
//   boundary does not flap the ladder; leaving derate fires the exit hook
//   (un-park, restore hypotheses). Stage *transitions* report once — the
//   treatment is the hook, and a per-cycle report stream would fight the
//   FMF's own escalation ladder.
//
//   Plausibility: a reading outside [min_plausible_c, max_plausible_c] or
//   frozen for `stuck_cycles` cycles (a live sensor always moves by the
//   model's dither) marks the sensor invalid. Invalid cycles report
//   per-cycle (TSI escalation -> FMF policy) until the unit forces a
//   *precautionary* derate after `sensor_invalid_derate_cycles` — an ECU
//   that cannot trust its temperature sensor must assume it is hot.
//   Keep sensor_invalid_derate_cycles >= the TSI environment threshold so
//   the FMF's policy treatment lands before the precautionary derate and
//   the two paths do not double-treat.
//
// Filesystem/NVM channel — journal fill, write failures, erase wear:
//
//   - fill watermark: the committed image stayed at/above the watermark
//     share of the bank for `window_cycles` consecutive cycles (reported
//     per cycle while it holds, like the RSU's watermark rule);
//   - write errors: the backing store failed writes since the last cycle
//     (wear-out or transient flash faults) — immediate, no debounce;
//   - overflow: a commit did not fit the bank — immediate (the FMF's
//     evict-by-priority degradation is the treatment);
//   - wear watermark: the worst bank's erase cycles crossed the watermark
//     share of the erase budget (reported per cycle while it holds).
//
// The unit reads all levels through probes, so it has no dependency on the
// fmf layer; the node assembly wires the probes to its NvmStore.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rte/signal_bus.hpp"
#include "sim/time.hpp"
#include "util/ids.hpp"
#include "wdg/watchdog.hpp"

namespace easis::wdg {

/// Stages of the thermal graceful-derating ladder, in escalation order.
enum class ThermalStage : std::uint8_t {
  kNormal = 0,
  kWarn = 1,
  kDerate = 2,
  kShutdown = 3,
};

[[nodiscard]] constexpr std::string_view to_string(ThermalStage s) {
  switch (s) {
    case ThermalStage::kNormal: return "normal";
    case ThermalStage::kWarn: return "warn";
    case ThermalStage::kDerate: return "derate";
    case ThermalStage::kShutdown: return "shutdown";
  }
  return "?";
}

struct ThermalLimits {
  double warn_c = 85.0;
  double derate_c = 100.0;
  double shutdown_c = 115.0;
  /// Downward transitions need the reading this far below the boundary.
  double hysteresis_c = 5.0;
  /// Plausibility band of the sensor; readings outside are invalid.
  double min_plausible_c = -45.0;
  double max_plausible_c = 150.0;
  /// A reading frozen (|delta| <= stuck_epsilon_c) for this many
  /// consecutive cycles marks the sensor stuck. A live sensor dithers.
  std::uint32_t stuck_cycles = 12;
  double stuck_epsilon_c = 0.01;
  /// Invalid-sensor cycles before the precautionary derate engages.
  std::uint32_t sensor_invalid_derate_cycles = 4;
};

/// One supervised temperature channel bound to the task/application whose
/// TSI vector accounts its faults.
struct ThermalChannel {
  RunnableId id;
  TaskId task;
  ApplicationId application;
  std::string name;
  ThermalLimits limits;
  /// Sensor reading in degrees C (wired to sim::ThermalModel::sensor_c).
  std::function<double()> probe;
};

struct FilesystemLimits {
  /// Journal fill share of the bank capacity; zero disables.
  double fill_watermark = 0.8;
  /// Consecutive cycles at/above the fill watermark before the first
  /// report (transgression window).
  std::uint32_t window_cycles = 3;
  /// Worst-bank erase-cycle share of the erase budget; zero disables.
  double wear_watermark = 0.8;
};

/// One supervised filesystem/NVM journal. All probes are cumulative
/// counters except the two levels (0..1 shares).
struct FilesystemChannel {
  RunnableId id;
  TaskId task;
  ApplicationId application;
  std::string name;
  FilesystemLimits limits;
  std::function<double()> fill_probe;
  std::function<double()> wear_probe;
  std::function<std::uint64_t()> write_error_probe;
  std::function<std::uint64_t()> overflow_probe;
};

class EnvironmentSupervisionUnit {
 public:
  EnvironmentSupervisionUnit(SoftwareWatchdog& watchdog,
                             rte::SignalBus& bus);

  /// Registers a supervised channel as a virtual runnable.
  void add_thermal(const ThermalChannel& channel);
  void add_filesystem(const FilesystemChannel& channel);

  /// Derate-stage actuation of the graceful ladder: `enter` parks the QM
  /// applications / stretches HBM periods, `exit` restores them when the
  /// temperature recovers below the hysteresis band.
  void set_derate_hooks(std::function<void(sim::SimTime)> enter,
                        std::function<void(sim::SimTime)> exit = nullptr) {
    derate_enter_ = std::move(enter);
    derate_exit_ = std::move(exit);
  }
  /// Controlled-shutdown actuation (wired to the FMF's persistent safe
  /// state by the node assembly).
  void set_shutdown_hook(std::function<void(sim::SimTime)> hook) {
    shutdown_ = std::move(hook);
  }

  /// Periodic supervision; call every watchdog check period.
  void cycle(sim::SimTime now);

  // --- introspection ------------------------------------------------------
  /// Ladder stage of the first (primary) thermal channel.
  [[nodiscard]] ThermalStage stage() const;
  [[nodiscard]] ThermalStage stage_of(RunnableId id) const;
  /// Last sensor reading of the primary thermal channel (degrees C).
  [[nodiscard]] double temperature_c() const;
  /// All stage transitions of the primary channel so far, '>'-separated
  /// (e.g. "normal>warn>derate>shutdown"): the observable ladder trace.
  [[nodiscard]] const std::string& stage_trace() const { return trace_; }
  [[nodiscard]] bool sensor_invalid() const;
  /// Last fill/wear level of the first filesystem channel, percent.
  [[nodiscard]] std::uint64_t flash_fill_pct() const;
  [[nodiscard]] std::uint64_t flash_wear_pct() const;
  [[nodiscard]] std::uint64_t reports_for(RunnableId id) const;
  [[nodiscard]] std::uint64_t reports_emitted() const { return reports_; }
  [[nodiscard]] std::size_t channel_count() const {
    return thermal_order_.size() + fs_order_.size();
  }
  /// Per-channel state, one line each (flight-note material).
  [[nodiscard]] std::string format_snapshot() const;

 private:
  struct ThermalState {
    ThermalChannel config;
    ThermalStage stage = ThermalStage::kNormal;
    double last_c = 0.0;
    bool have_last = false;
    std::uint32_t frozen_cycles = 0;
    std::uint32_t invalid_cycles = 0;
    bool invalid = false;
    bool precautionary_derate = false;
    std::uint64_t reports = 0;
  };
  struct FilesystemState {
    FilesystemChannel config;
    std::uint32_t above_watermark = 0;
    std::uint64_t last_write_errors = 0;
    std::uint64_t last_overflows = 0;
    std::uint64_t last_fill_pct = 0;
    std::uint64_t last_wear_pct = 0;
    std::uint64_t reports = 0;
  };

  SoftwareWatchdog& watchdog_;
  rte::SignalBus& bus_;
  std::unordered_map<RunnableId, ThermalState> thermal_;
  std::unordered_map<RunnableId, FilesystemState> filesystem_;
  std::vector<RunnableId> thermal_order_;
  std::vector<RunnableId> fs_order_;
  std::function<void(sim::SimTime)> derate_enter_;
  std::function<void(sim::SimTime)> derate_exit_;
  std::function<void(sim::SimTime)> shutdown_;
  std::string trace_ = "normal";
  std::uint64_t reports_ = 0;

  void register_virtual(RunnableId id, TaskId task, ApplicationId app,
                        const std::string& name);
  void cycle_thermal(ThermalState& state, sim::SimTime now);
  void cycle_filesystem(FilesystemState& state, sim::SimTime now);
  void enter_stage(ThermalState& state, ThermalStage next, sim::SimTime now);
  [[nodiscard]] ThermalStage stage_for(const ThermalState& state,
                                       double reading) const;
  void report(RunnableId id, TaskId task, ApplicationId app, ErrorType type,
              sim::SimTime now, std::string detail);
};

}  // namespace easis::wdg
