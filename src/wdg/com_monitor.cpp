#include "wdg/com_monitor.hpp"

#include <stdexcept>
#include <utility>

#include "profile/profiler.hpp"

namespace easis::wdg {

CommunicationMonitoringUnit::CommunicationMonitoringUnit(
    SoftwareWatchdog& watchdog)
    : watchdog_(watchdog) {}

void CommunicationMonitoringUnit::add_channel(const ComChannel& channel,
                                              sim::SimTime now) {
  if (channels_.contains(channel.channel)) {
    throw std::logic_error("CMU: channel already registered: " + channel.name);
  }
  // Virtual runnable: present in the TSI for error accounting, invisible
  // to the heartbeat/flow units (a channel has no execution to monitor).
  RunnableMonitor monitor;
  monitor.runnable = channel.channel;
  monitor.task = channel.task;
  monitor.application = channel.application;
  monitor.name = "com:" + channel.name;
  monitor.monitor_aliveness = false;
  monitor.monitor_arrival_rate = false;
  monitor.program_flow = false;
  watchdog_.add_runnable(monitor);

  State state;
  state.config = channel;
  state.last_ok = now;
  state.timeout_reported_until = now;
  channels_.emplace(channel.channel, std::move(state));
  order_.push_back(channel.channel);
}

void CommunicationMonitoringUnit::on_check_result(RunnableId channel,
                                                  bus::E2EStatus status,
                                                  sim::SimTime now) {
  EASIS_PROFILE_SPAN("wdg.cmu_check");
  auto it = channels_.find(channel);
  if (it == channels_.end()) {
    throw std::invalid_argument("CMU: unknown channel");
  }
  State& state = it->second;
  if (status == bus::E2EStatus::kOk) {
    ++state.ok;
    state.last_ok = now;
    // Good data also closes any open timeout window.
    state.timeout_reported_until = now;
    return;
  }
  ++state.failures;
  report(state, now,
         std::string("e2e ") + bus::to_string(status) + " on " +
             state.config.name);
}

void CommunicationMonitoringUnit::cycle(sim::SimTime now) {
  for (RunnableId id : order_) {
    State& state = channels_.at(id);
    const sim::Duration timeout = state.config.timeout;
    if (timeout <= sim::Duration::zero()) continue;
    if (now - state.last_ok <= timeout) continue;
    // Report once per elapsed timeout window so sustained silence keeps
    // accumulating towards the TSI threshold.
    if (now - state.timeout_reported_until <= timeout) continue;
    state.timeout_reported_until = now;
    ++state.timeouts;
    report(state, now,
           "reception timeout on " + state.config.name + " (silent for " +
               std::to_string((now - state.last_ok).as_micros()) + "us)");
  }
}

void CommunicationMonitoringUnit::report(const State& state, sim::SimTime now,
                                         std::string detail) {
  ++reports_;
  ErrorReport error;
  error.runnable = state.config.channel;
  error.task = state.config.task;
  error.application = state.config.application;
  error.type = ErrorType::kCommunication;
  error.time = now;
  error.detail = std::move(detail);
  watchdog_.report_external_error(std::move(error));
}

std::uint64_t CommunicationMonitoringUnit::ok_count(RunnableId channel) const {
  auto it = channels_.find(channel);
  return it == channels_.end() ? 0 : it->second.ok;
}

std::uint64_t CommunicationMonitoringUnit::e2e_failures(
    RunnableId channel) const {
  auto it = channels_.find(channel);
  return it == channels_.end() ? 0 : it->second.failures;
}

std::uint64_t CommunicationMonitoringUnit::timeouts(RunnableId channel) const {
  auto it = channels_.find(channel);
  return it == channels_.end() ? 0 : it->second.timeouts;
}

}  // namespace easis::wdg
