#include "wdg/self_supervision.hpp"

#include "util/crc8.hpp"
#include "telemetry/event_bus.hpp"
#include "util/logging.hpp"

namespace easis::wdg {

namespace {
constexpr std::string_view kLog = "wdg.selfsup";
}

WatchdogSelfSupervision::WatchdogSelfSupervision(sim::Engine& engine,
                                                 SelfSupervisionConfig config)
    : hw_(engine, config.hw_timeout, config.window_min) {}

std::uint8_t WatchdogSelfSupervision::token_for(std::uint64_t cycle) {
  std::uint8_t bytes[8];
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[i] = static_cast<std::uint8_t>(cycle >> (8 * i));
  }
  return util::crc8_j1850(bytes, sizeof bytes);
}

void WatchdogSelfSupervision::set_expire_callback(
    baseline::HardwareWatchdog::ExpireCallback cb) {
  hw_.set_expire_callback(
      [cb = std::move(cb)](sim::SimTime now) {
        if (telemetry::enabled()) {
          telemetry::Event event;
          event.time = now;
          event.component = telemetry::Component::kSelfSupervision;
          event.kind = telemetry::EventKind::kHwWatchdogExpired;
          event.detail = "hardware watchdog expired";
          telemetry::emit(std::move(event));
        }
        if (cb) cb(now);
      });
}

void WatchdogSelfSupervision::service(std::uint64_t cycle, std::uint8_t token,
                                      sim::SimTime now) {
  const bool stale = any_accepted_ && cycle <= last_cycle_;
  if (stale || token != token_for(cycle)) {
    ++token_violations_;
    EASIS_LOG(util::LogLevel::kWarn, kLog)
        << "refused watchdog service at " << now << ": "
        << (stale ? "cycle counter did not advance" : "bad response token");
    if (telemetry::enabled()) {
      telemetry::Event event;
      event.time = now;
      event.component = telemetry::Component::kSelfSupervision;
      event.kind = telemetry::EventKind::kTokenViolation;
      event.detail = stale ? "cycle counter did not advance"
                           : "bad response token";
      telemetry::emit(std::move(event));
    }
    return;  // deliberately no kick — let the HW timer starve
  }
  any_accepted_ = true;
  last_cycle_ = cycle;
  ++accepted_;
  hw_.kick();
}

}  // namespace easis::wdg
