#include "wdg/pfc.hpp"

#include <stdexcept>

namespace easis::wdg {

void ProgramFlowCheckingUnit::add_monitored(RunnableId runnable, TaskId task) {
  if (monitored_.contains(runnable)) {
    throw std::logic_error("PFC: runnable already monitored");
  }
  monitored_.emplace(runnable, task);
}

bool ProgramFlowCheckingUnit::monitors(RunnableId runnable) const {
  return monitored_.contains(runnable);
}

void ProgramFlowCheckingUnit::add_edge(RunnableId pred, RunnableId succ) {
  successors_[pred].insert(succ);
}

void ProgramFlowCheckingUnit::add_entry_point(RunnableId runnable) {
  auto it = monitored_.find(runnable);
  if (it == monitored_.end()) {
    throw std::logic_error("PFC: entry point must be a monitored runnable");
  }
  entry_points_[it->second].insert(runnable);
}

void ProgramFlowCheckingUnit::on_execution(RunnableId runnable, TaskId task,
                                           sim::SimTime now,
                                           const ErrorCallback& on_error) {
  auto it = monitored_.find(runnable);
  if (it == monitored_.end()) return;
  ++checks_;

  auto ctx = contexts_.find(task);
  const RunnableId predecessor =
      ctx == contexts_.end() ? RunnableId{} : ctx->second;

  bool ok = false;
  if (!predecessor.valid()) {
    // First monitored runnable of this job: must be a permitted entry of
    // this task. Tasks without configured entry points accept any start.
    auto entries = entry_points_.find(task);
    ok = entries == entry_points_.end() || entries->second.contains(runnable);
  } else {
    auto succ = successors_.find(predecessor);
    ok = succ != successors_.end() && succ->second.contains(runnable);
  }

  if (!ok && on_error) on_error(runnable, predecessor, task, now);
  contexts_[task] = runnable;
}

void ProgramFlowCheckingUnit::task_boundary(TaskId task) {
  contexts_.erase(task);
}

void ProgramFlowCheckingUnit::reset() { contexts_.clear(); }

bool ProgramFlowCheckingUnit::edge_allowed(RunnableId pred,
                                           RunnableId succ) const {
  auto it = successors_.find(pred);
  return it != successors_.end() && it->second.contains(succ);
}

bool ProgramFlowCheckingUnit::is_entry_point(RunnableId runnable) const {
  auto it = monitored_.find(runnable);
  if (it == monitored_.end()) return false;
  auto entries = entry_points_.find(it->second);
  return entries != entry_points_.end() &&
         entries->second.contains(runnable);
}

std::size_t ProgramFlowCheckingUnit::edge_count() const {
  std::size_t n = 0;
  for (const auto& [_, set] : successors_) n += set.size();
  return n;
}

std::vector<RunnableId> ProgramFlowCheckingUnit::monitored_runnables() const {
  std::vector<RunnableId> out;
  out.reserve(monitored_.size());
  for (const auto& [runnable, _] : monitored_) out.push_back(runnable);
  return out;
}

std::vector<RunnableId> ProgramFlowCheckingUnit::successors_of(
    RunnableId pred) const {
  auto it = successors_.find(pred);
  if (it == successors_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::vector<RunnableId> ProgramFlowCheckingUnit::entry_points_of(
    TaskId task) const {
  auto it = entry_points_.find(task);
  if (it == entry_points_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

TaskId ProgramFlowCheckingUnit::task_of(RunnableId runnable) const {
  auto it = monitored_.find(runnable);
  return it == monitored_.end() ? TaskId{} : it->second;
}

RunnableId ProgramFlowCheckingUnit::flow_context(TaskId task) const {
  auto it = contexts_.find(task);
  return it == contexts_.end() ? RunnableId{} : it->second;
}

}  // namespace easis::wdg
