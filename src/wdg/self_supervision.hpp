// Watchdog self-supervision (paper §2/§4.4: "who watches the watchdog").
//
// The Software Watchdog is itself a task and can hang, starve, or corrupt
// its state like any other. This unit closes the loop with the ECU's
// hardware watchdog: the SW watchdog main function services the windowed
// HW timer through a challenge–response token derived from its own cycle
// counter. A hung or starved watchdog task stops servicing and the HW
// layer expires; a sequence-corrupted task presents a wrong token, which
// is refused — so the HW timer starves and expires just the same. Either
// way the failure is caught one layer below the failed monitor.
#pragma once

#include <cstdint>

#include "baseline/hw_watchdog.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace easis::wdg {

struct SelfSupervisionConfig {
  /// HW watchdog timeout; must exceed the SW watchdog check period with
  /// margin for scheduling jitter (default: 5x a 10 ms check period).
  sim::Duration hw_timeout = sim::Duration::millis(50);
  /// Windowed mode lower bound; zero disables the early-kick check.
  sim::Duration window_min = sim::Duration::zero();
};

class WatchdogSelfSupervision {
 public:
  WatchdogSelfSupervision(sim::Engine& engine,
                          SelfSupervisionConfig config = {});

  /// The expected response for a given watchdog cycle count. The token
  /// binds each kick to fresh forward progress of the main function: a
  /// task replaying a stale cycle or running with corrupted sequencing
  /// state cannot produce an acceptable kick.
  [[nodiscard]] static std::uint8_t token_for(std::uint64_t cycle);

  /// Fires on HW expiry — wire this to the ECU reset path. The unit
  /// interposes on the callback to emit a telemetry event first.
  void set_expire_callback(baseline::HardwareWatchdog::ExpireCallback cb);

  void start() { hw_.start(); }
  void stop() { hw_.stop(); }

  /// Challenge–response service call from the SW watchdog main function.
  /// Wrong token or non-advancing cycle counter is refused (no kick), so
  /// the HW timer starves and expires.
  void service(std::uint64_t cycle, std::uint8_t token, sim::SimTime now);

  [[nodiscard]] baseline::HardwareWatchdog& hardware() { return hw_; }
  [[nodiscard]] std::uint32_t expirations() const { return hw_.expirations(); }
  [[nodiscard]] std::uint32_t token_violations() const {
    return token_violations_;
  }
  [[nodiscard]] std::uint32_t accepted_services() const { return accepted_; }

 private:
  baseline::HardwareWatchdog hw_;
  bool any_accepted_ = false;
  std::uint64_t last_cycle_ = 0;
  std::uint32_t token_violations_ = 0;
  std::uint32_t accepted_ = 0;
};

}  // namespace easis::wdg
