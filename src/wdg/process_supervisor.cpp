#include "wdg/process_supervisor.hpp"

#include <stdexcept>

namespace easis::wdg {

ProcessSupervisionUnit::ProcessSupervisionUnit(SoftwareWatchdog& watchdog)
    : watchdog_(watchdog) {}

ProcessSupervisionUnit::~ProcessSupervisionUnit() {
  if (kernel_ != nullptr) kernel_->remove_observer(&hook_);
}

std::size_t ProcessSupervisionUnit::add_section(const SectionConfig& config) {
  if (config.name.empty()) {
    throw std::logic_error("PSU: section needs a name");
  }
  if (config.deadline.as_micros() <= 0) {
    throw std::logic_error("PSU: section needs a positive deadline: " +
                           config.name);
  }
  Section section;
  section.config = config;
  section.record.section = config.name;
  sections_.push_back(std::move(section));
  return sections_.size() - 1;
}

ProcessSupervisionUnit::Section& ProcessSupervisionUnit::section_at(
    std::size_t index) {
  if (index >= sections_.size()) {
    throw std::out_of_range("PSU: unknown section index");
  }
  return sections_[index];
}

void ProcessSupervisionUnit::open(std::size_t index, sim::SimTime now) {
  Section& section = section_at(index);
  section.open = true;
  section.opened_at = now;
  section.overdue_reported = false;
}

void ProcessSupervisionUnit::close(std::size_t index, sim::SimTime now) {
  Section& section = section_at(index);
  if (!section.open) return;
  section.open = false;
  const sim::Duration window = now - section.opened_at;
  if (window <= section.config.deadline) return;
  if (section.overdue_reported) {
    // Counted when cycle() caught it overdue; the close only tells us
    // how bad the window really was.
    if (window > section.record.worst) section.record.worst = window;
    section.record.last_at = now;
    return;
  }
  ++section.record.count;
  if (window > section.record.worst) section.record.worst = window;
  section.record.last_at = now;
  report_transgression(section, window, /*still_open=*/false, now);
}

void ProcessSupervisionUnit::cycle(sim::SimTime now) {
  for (Section& section : sections_) {
    if (!section.open || section.overdue_reported) continue;
    const sim::Duration window = now - section.opened_at;
    if (window <= section.config.deadline) continue;
    section.overdue_reported = true;
    ++section.record.count;
    // worst stays: the window has not closed, its final length is unknown.
    section.record.last_at = now;
    report_transgression(section, window, /*still_open=*/true, now);
  }
}

void ProcessSupervisionUnit::report_transgression(Section& section,
                                                  sim::Duration window,
                                                  bool still_open,
                                                  sim::SimTime now) {
  ErrorReport error;
  error.runnable = section.config.runnable;
  error.task = section.config.task;
  error.application = section.config.application;
  error.type = ErrorType::kDeadline;
  error.time = now;
  error.detail =
      "deadline transgression in section " + section.config.name +
      ": window_us=" + std::to_string(window.as_micros()) +
      " deadline_us=" + std::to_string(section.config.deadline.as_micros()) +
      (still_open ? " (window still open)" : "") +
      " count=" + std::to_string(section.record.count);
  watchdog_.report_external_error(std::move(error));
}

void ProcessSupervisionUnit::bind_kernel(os::Kernel& kernel) {
  if (kernel_ != nullptr) {
    throw std::logic_error("PSU: kernel already bound");
  }
  kernel_ = &kernel;
  kernel.add_observer(&hook_);
}

void ProcessSupervisionUnit::KernelHook::on_segment_start(
    TaskId task, RunnableId runnable, sim::SimTime now) {
  for (std::size_t i = 0; i < unit_.sections_.size(); ++i) {
    const SectionConfig& cfg = unit_.sections_[i].config;
    if (cfg.task == task && cfg.runnable == runnable) unit_.open(i, now);
  }
}

void ProcessSupervisionUnit::KernelHook::on_segment_complete(
    TaskId task, RunnableId runnable, sim::SimTime now) {
  for (std::size_t i = 0; i < unit_.sections_.size(); ++i) {
    const SectionConfig& cfg = unit_.sections_[i].config;
    if (cfg.task == task && cfg.runnable == runnable) unit_.close(i, now);
  }
}

std::vector<TransgressionRecord> ProcessSupervisionUnit::persisted_records()
    const {
  std::vector<TransgressionRecord> records;
  records.reserve(sections_.size());
  for (const Section& section : sections_) {
    records.push_back(section.record);
  }
  return records;
}

void ProcessSupervisionUnit::restore_records(
    const std::vector<TransgressionRecord>& records) {
  for (const TransgressionRecord& record : records) {
    for (Section& section : sections_) {
      if (section.config.name != record.section) continue;
      // Fault memory is cumulative across resets: keep whichever side has
      // seen more (a live record never shrinks from a stale image).
      if (record.count > section.record.count) {
        section.record.count = record.count;
        section.record.last_at = record.last_at;
      }
      if (record.worst > section.record.worst) {
        section.record.worst = record.worst;
      }
    }
  }
}

const TransgressionRecord& ProcessSupervisionUnit::record(
    std::size_t section) const {
  if (section >= sections_.size()) {
    throw std::out_of_range("PSU: unknown section index");
  }
  return sections_[section].record;
}

std::uint64_t ProcessSupervisionUnit::transgressions() const {
  std::uint64_t total = 0;
  for (const Section& section : sections_) total += section.record.count;
  return total;
}

bool ProcessSupervisionUnit::is_open(std::size_t section) const {
  if (section >= sections_.size()) {
    throw std::out_of_range("PSU: unknown section index");
  }
  return sections_[section].open;
}

}  // namespace easis::wdg
