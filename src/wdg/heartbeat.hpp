// Heartbeat Monitoring Unit (paper §3.2.1).
//
// Passive recording of runnable heartbeats in per-runnable counters:
//   AC   - Aliveness Counter        (heartbeats this aliveness period)
//   ARC  - Arrival Rate Counter     (heartbeats this arrival-rate period)
//   CCA  - Cycle Counter Aliveness  (elapsed main-function cycles)
//   CCAR - Cycle Counter Arr. Rate  (elapsed main-function cycles)
//   AS   - Activation Status        (monitoring on/off per runnable)
// Counters are checked shortly before the period expires and reset when the
// period expires or an error was detected in the previous cycle.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"
#include "util/ids.hpp"
#include "wdg/config.hpp"
#include "wdg/types.hpp"

namespace easis::wdg {

class HeartbeatMonitoringUnit {
 public:
  /// Called for each error found during a cycle check.
  using ErrorCallback =
      std::function<void(RunnableId, ErrorType, sim::SimTime)>;

  void add_runnable(const RunnableMonitor& config);
  [[nodiscard]] bool monitors(RunnableId id) const;

  /// Heartbeat indication from the RTE glue code.
  void indicate(RunnableId id);

  /// One watchdog main-function cycle: advance CCA/CCAR, check counters of
  /// expired periods, report errors, reset expired counters.
  void tick(sim::SimTime now, const ErrorCallback& on_error);

  /// Activation Status control.
  void set_activation_status(RunnableId id, bool active);
  [[nodiscard]] bool activation_status(RunnableId id) const;

  /// Dynamic reconfiguration of the fault hypothesis (paper outlook):
  /// replaces the monitoring parameters and restarts the periods.
  void update_hypothesis(RunnableId id, std::uint32_t aliveness_cycles,
                         std::uint32_t min_heartbeats,
                         std::uint32_t arrival_cycles,
                         std::uint32_t max_arrivals);

  /// Mode-dependent supervision binding: replaces the *entire* hypothesis
  /// — including which checks are armed — and restarts the periods with
  /// clean counters. Unlike update_hypothesis() this can flip aliveness
  /// supervision off for a power mode whose contract is silence and turn
  /// the arrival check into a silence guard (max_arrivals = 0).
  void rebind(const RunnableMonitor& config);

  /// Clears the dynamic counters of one runnable (after fault treatment).
  void reset_runnable(RunnableId id);
  /// Clears all dynamic state (ECU reset).
  void reset();

  // --- counter introspection (the paper's plotted signals) -----------------
  [[nodiscard]] std::uint32_t ac(RunnableId id) const;
  [[nodiscard]] std::uint32_t arc(RunnableId id) const;
  [[nodiscard]] std::uint32_t cca(RunnableId id) const;
  [[nodiscard]] std::uint32_t ccar(RunnableId id) const;
  [[nodiscard]] const RunnableMonitor& config(RunnableId id) const;
  [[nodiscard]] std::vector<RunnableId> monitored_runnables() const;

 private:
  struct State {
    RunnableMonitor config;
    bool active = true;
    std::uint32_t ac = 0;
    std::uint32_t arc = 0;
    std::uint32_t cca = 0;
    std::uint32_t ccar = 0;
  };

  std::unordered_map<RunnableId, State> states_;
  std::vector<RunnableId> order_;  // deterministic iteration order

  [[nodiscard]] State& state(RunnableId id);
  [[nodiscard]] const State& state(RunnableId id) const;
};

}  // namespace easis::wdg
