// Program Flow Checking Unit (paper §3.2.2).
//
// Checks the execution sequence of safety-critical runnables against a
// look-up table of permitted predecessor/successor pairs — the paper's
// deliberately cheap alternative to embedded-signature control-flow
// checking (CFCSS). One flow context is kept per task; a task's job
// boundary (termination) legally resets the context.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"
#include "util/ids.hpp"
#include "wdg/types.hpp"

namespace easis::wdg {

class ProgramFlowCheckingUnit {
 public:
  using ErrorCallback = std::function<void(
      RunnableId executed, RunnableId predecessor, TaskId, sim::SimTime)>;

  /// Registers a runnable for flow monitoring on its task.
  void add_monitored(RunnableId runnable, TaskId task);
  [[nodiscard]] bool monitors(RunnableId runnable) const;

  /// Permits `succ` to execute directly after `pred` (within one job).
  void add_edge(RunnableId pred, RunnableId succ);
  /// Permits `runnable` as the first monitored runnable of a job of its
  /// task. The runnable must already be monitored. Tasks without any
  /// registered entry point accept any start.
  void add_entry_point(RunnableId runnable);

  /// Execution notification (from the heartbeat glue). Unmonitored
  /// runnables are transparent: they neither advance nor corrupt the flow.
  void on_execution(RunnableId runnable, TaskId task, sim::SimTime now,
                    const ErrorCallback& on_error);

  /// Job boundary: a terminated task starts a fresh flow next activation.
  void task_boundary(TaskId task);

  /// Clears dynamic state (flow contexts), keeps the look-up table.
  void reset();

  // --- introspection ---------------------------------------------------------
  [[nodiscard]] bool edge_allowed(RunnableId pred, RunnableId succ) const;
  [[nodiscard]] bool is_entry_point(RunnableId runnable) const;
  [[nodiscard]] std::size_t edge_count() const;
  [[nodiscard]] std::vector<RunnableId> monitored_runnables() const;
  [[nodiscard]] std::vector<RunnableId> successors_of(RunnableId pred) const;
  [[nodiscard]] std::vector<RunnableId> entry_points_of(TaskId task) const;
  /// Task the runnable is flow-monitored on (invalid if unmonitored).
  [[nodiscard]] TaskId task_of(RunnableId runnable) const;
  /// Last monitored runnable executed in `task`'s current job, if any.
  [[nodiscard]] RunnableId flow_context(TaskId task) const;
  [[nodiscard]] std::uint64_t checks_performed() const { return checks_; }

 private:
  std::unordered_map<RunnableId, TaskId> monitored_;
  std::unordered_map<RunnableId, std::unordered_set<RunnableId>> successors_;
  /// Per-task permitted entry points (the task of the entry runnable).
  std::unordered_map<TaskId, std::unordered_set<RunnableId>> entry_points_;
  std::unordered_map<TaskId, RunnableId> contexts_;
  std::uint64_t checks_ = 0;
};

}  // namespace easis::wdg
