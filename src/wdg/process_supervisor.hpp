// Supervised-process client API (watchdogd's supervisor.c idea).
//
// The Deadline unit supervises checkpoint pairs the watchdog owns; this
// unit turns the relation around and gives the *client* an explicit API:
// a runnable opens an instrumented deadline window when it starts a
// critical section and closes it when done. A window that closes late —
// or never closes — is a deadline transgression:
//
//   - reported into the TSI/FMF chain as ErrorType::kDeadline (same
//     escalation as the watchdog's own deadline supervision);
//   - accumulated into a persistent TransgressionRecord per section
//     (count, worst window, last timestamp) that the FMF serialises into
//     fault memory and the diagnostic stack serves over UDS-lite
//     ReadDataByIdentifier.
//
// Three ways to drive a window:
//   - explicit open()/close() calls from the runnable body;
//   - the InstrumentedSection guard (open in the constructor, explicit
//     close(now) — deliberately NOT closed by the destructor: a hung
//     client never reaches its scope exit, and papering over that in a
//     destructor would hide exactly the fault this unit exists to catch;
//     cycle() reports the never-closed window instead);
//   - bind_kernel(): sections auto-open/close on the kernel's runnable
//     segment boundaries, instrumenting a runnable without touching it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "os/kernel.hpp"
#include "sim/time.hpp"
#include "util/ids.hpp"
#include "wdg/watchdog.hpp"

namespace easis::wdg {

/// One instrumented section of a supervised process.
struct SectionConfig {
  std::string name;
  /// The (real) runnable executing the section; transgressions are
  /// accounted to its task/application like any other deadline error.
  RunnableId runnable;
  TaskId task;
  ApplicationId application;
  /// Maximum permitted open->close window.
  sim::Duration deadline = sim::Duration::millis(10);
};

class ProcessSupervisionUnit {
 public:
  explicit ProcessSupervisionUnit(SoftwareWatchdog& watchdog);
  ~ProcessSupervisionUnit();
  ProcessSupervisionUnit(const ProcessSupervisionUnit&) = delete;
  ProcessSupervisionUnit& operator=(const ProcessSupervisionUnit&) = delete;

  /// Registers a section; returns its index (the client-side handle).
  std::size_t add_section(const SectionConfig& config);

  /// Opens the section's deadline window. Re-opening an open window
  /// restarts it (the previous window is abandoned unreported — the
  /// client demonstrably made progress).
  void open(std::size_t section, sim::SimTime now);
  /// Closes the window; a late close records a transgression and reports
  /// kDeadline. A close on a window already reported overdue by cycle()
  /// only updates the worst-case (the transgression was counted once).
  void close(std::size_t section, sim::SimTime now);

  /// Periodic supervision; call every watchdog check period. Reports
  /// windows that are overdue but still open (the hung-client case an
  /// in-band close() can never catch), once per opening.
  void cycle(sim::SimTime now);

  /// Auto-instruments all sections on the kernel's segment boundaries:
  /// a section opens when its (task, runnable) segment starts and closes
  /// when it completes. The kernel must outlive this unit.
  void bind_kernel(os::Kernel& kernel);

  // --- persistence --------------------------------------------------------
  /// Snapshot of every section's transgression record (fault-memory feed;
  /// sections without transgressions are included with count 0).
  [[nodiscard]] std::vector<TransgressionRecord> persisted_records() const;
  /// Restores counts from fault memory at boot, matched by section name;
  /// unknown names are ignored (the section set may have changed).
  void restore_records(const std::vector<TransgressionRecord>& records);

  // --- introspection ------------------------------------------------------
  [[nodiscard]] std::size_t section_count() const { return sections_.size(); }
  [[nodiscard]] const TransgressionRecord& record(std::size_t section) const;
  /// Total transgressions across all sections.
  [[nodiscard]] std::uint64_t transgressions() const;
  [[nodiscard]] bool is_open(std::size_t section) const;

 private:
  struct Section {
    SectionConfig config;
    bool open = false;
    sim::SimTime opened_at;
    /// cycle() already reported the current opening as overdue.
    bool overdue_reported = false;
    TransgressionRecord record;
  };

  class KernelHook : public os::KernelObserver {
   public:
    explicit KernelHook(ProcessSupervisionUnit& unit) : unit_(unit) {}
    void on_segment_start(TaskId task, RunnableId runnable,
                          sim::SimTime now) override;
    void on_segment_complete(TaskId task, RunnableId runnable,
                             sim::SimTime now) override;

   private:
    ProcessSupervisionUnit& unit_;
  };

  SoftwareWatchdog& watchdog_;
  std::vector<Section> sections_;
  KernelHook hook_{*this};
  os::Kernel* kernel_ = nullptr;

  void report_transgression(Section& section, sim::Duration window,
                            bool still_open, sim::SimTime now);
  [[nodiscard]] Section& section_at(std::size_t index);
};

/// Client-side guard over one instrumented deadline window.
class InstrumentedSection {
 public:
  InstrumentedSection(ProcessSupervisionUnit& unit, std::size_t section,
                      sim::SimTime now)
      : unit_(unit), section_(section) {
    unit_.open(section_, now);
  }
  InstrumentedSection(const InstrumentedSection&) = delete;
  InstrumentedSection& operator=(const InstrumentedSection&) = delete;
  /// The destructor intentionally leaves an un-closed window open: the
  /// supervision cycle reports it as a hung client.
  ~InstrumentedSection() = default;

  void close(sim::SimTime now) {
    if (closed_) return;
    closed_ = true;
    unit_.close(section_, now);
  }
  [[nodiscard]] bool closed() const { return closed_; }

 private:
  ProcessSupervisionUnit& unit_;
  std::size_t section_;
  bool closed_ = false;
};

}  // namespace easis::wdg
