// Post-reset recovery validation (runtime-reliability extension).
//
// The paper's treatment chain assumes a restart/reset fixes the fault; a
// runtime-reliability monitor must *validate* that assumption (Fantechi et
// al.). After any application restart or ECU software reset the watchdog
// enters a supervised warm-up window: every monitored runnable in scope
// must re-announce at least one heartbeat within the window and the TSI
// path must stay error-free. A violated window fails the validation
// immediately — the treatment layer escalates right away instead of
// waiting for the error-indication vectors to refill to their thresholds.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"
#include "util/ids.hpp"
#include "wdg/types.hpp"

namespace easis::wdg {

class RecoverySupervisionUnit {
 public:
  /// `ok` = the warm-up window completed clean. On failure `cause` names
  /// the first offending error (synthesised as kAliveness for a missing
  /// re-announcement). `scope_app` is the restarted application, or
  /// invalid for an ECU-wide window.
  using ResultCallback =
      std::function<void(bool ok, ApplicationId scope_app,
                         const ErrorReport& cause, sim::SimTime now)>;

  void set_result_callback(ResultCallback cb) { callback_ = std::move(cb); }

  /// Opens a warm-up window of `cycles` watchdog main-function cycles over
  /// `required` runnables. A still-active window is replaced (the newer
  /// treatment supersedes the older validation).
  void begin(std::vector<RunnableId> required, ApplicationId scope_app,
             std::uint32_t cycles, sim::SimTime now);
  void cancel() { active_ = false; }

  [[nodiscard]] bool active() const { return active_; }
  [[nodiscard]] std::uint32_t windows_started() const { return started_; }
  [[nodiscard]] std::uint32_t windows_passed() const { return passed_; }
  [[nodiscard]] std::uint32_t windows_failed() const { return failed_; }

  /// Heartbeat indication forwarded by the watchdog while a window is open.
  void on_heartbeat(RunnableId runnable);
  /// Any detected error inside the window fails the validation at once.
  void on_error(const ErrorReport& report, sim::SimTime now);
  /// One watchdog main-function cycle; closes the window when it expires.
  void on_cycle(sim::SimTime now);

 private:
  ResultCallback callback_;
  bool active_ = false;
  ApplicationId scope_app_;
  std::vector<RunnableId> required_;
  std::unordered_set<RunnableId> announced_;
  std::uint32_t cycles_left_ = 0;
  sim::SimTime started_at_;
  std::uint32_t started_ = 0;
  std::uint32_t passed_ = 0;
  std::uint32_t failed_ = 0;

  void finish(bool ok, const ErrorReport& cause, sim::SimTime now);
};

}  // namespace easis::wdg
