#include "wdg/tsi.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

#include "profile/profiler.hpp"
#include "telemetry/event_bus.hpp"

namespace easis::wdg {

TaskStateIndicationUnit::TaskStateIndicationUnit(
    Thresholds thresholds, std::uint32_t ecu_faulty_task_limit)
    : thresholds_(thresholds), ecu_faulty_task_limit_(ecu_faulty_task_limit) {
  if (ecu_faulty_task_limit_ == 0) {
    throw std::invalid_argument("TSI: ecu_faulty_task_limit must be >= 1");
  }
}

void TaskStateIndicationUnit::add_runnable(RunnableId runnable, TaskId task,
                                           ApplicationId application) {
  if (elements_.contains(runnable)) {
    throw std::logic_error("TSI: runnable already registered");
  }
  elements_.emplace(runnable, Element{task, application, {}});
  order_.push_back(runnable);
  task_health_.try_emplace(task, Health::kOk);
  app_health_.try_emplace(application, Health::kOk);
}

void TaskStateIndicationUnit::report_error(RunnableId runnable, ErrorType type,
                                           sim::SimTime now) {
  EASIS_PROFILE_SPAN("wdg.tsi_report");
  auto it = elements_.find(runnable);
  if (it == elements_.end()) return;
  const std::uint32_t count =
      ++it->second.counts[static_cast<std::size_t>(type)];
  const std::uint32_t threshold =
      thresholds_.by_type[static_cast<std::size_t>(type)];
  if (threshold > 0 && count == threshold && telemetry::enabled()) {
    telemetry::Event event;
    event.time = now;
    event.component = telemetry::Component::kTsi;
    event.kind = telemetry::EventKind::kThresholdTrip;
    event.runnable = runnable;
    event.task = it->second.task;
    event.application = it->second.application;
    event.detail = std::string(to_string(type)) + " count reached " +
                   std::to_string(threshold);
    telemetry::emit(std::move(event));
  }
  derive_states(now);
}

void TaskStateIndicationUnit::derive_states(sim::SimTime now) {
  // Task states from error indication vectors.
  std::unordered_map<TaskId, Health> new_task = task_health_;
  for (auto& [task, health] : new_task) health = Health::kOk;
  std::unordered_map<ApplicationId, Health> new_app = app_health_;
  for (auto& [app, health] : new_app) health = Health::kOk;

  for (RunnableId id : order_) {
    const Element& e = elements_.at(id);
    for (std::size_t t = 0; t < kErrorTypeCount; ++t) {
      // A zero threshold disables the check for that error class.
      if (thresholds_.by_type[t] == 0) continue;
      if (e.counts[t] >= thresholds_.by_type[t]) {
        new_task[e.task] = Health::kFaulty;
        new_app[e.application] = Health::kFaulty;
      }
    }
  }

  std::uint32_t faulty_count = 0;
  for (const auto& [task, health] : new_task) {
    if (health == Health::kFaulty) ++faulty_count;
  }
  const Health new_ecu = faulty_count >= ecu_faulty_task_limit_
                             ? Health::kFaulty
                             : Health::kOk;

  // Emit transitions after all states are computed, tasks first.
  for (const auto& [task, health] : new_task) {
    if (task_health_.at(task) != health) {
      task_health_[task] = health;
      if (telemetry::enabled()) {
        telemetry::Event event;
        event.time = now;
        event.component = telemetry::Component::kTsi;
        event.kind = telemetry::EventKind::kTaskStateChange;
        event.task = task;
        event.detail = to_string(health);
        telemetry::emit(std::move(event));
      }
      if (task_cb_) task_cb_(task, health, now);
    }
  }
  for (const auto& [app, health] : new_app) {
    if (app_health_.at(app) != health) {
      app_health_[app] = health;
      if (telemetry::enabled()) {
        telemetry::Event event;
        event.time = now;
        event.component = telemetry::Component::kTsi;
        event.kind = telemetry::EventKind::kAppStateChange;
        event.application = app;
        event.detail = to_string(health);
        telemetry::emit(std::move(event));
      }
      if (app_cb_) app_cb_(app, health, now);
    }
  }
  if (new_ecu != ecu_health_) {
    ecu_health_ = new_ecu;
    if (telemetry::enabled()) {
      telemetry::Event event;
      event.time = now;
      event.component = telemetry::Component::kTsi;
      event.kind = telemetry::EventKind::kEcuStateChange;
      event.detail = to_string(new_ecu);
      telemetry::emit(std::move(event));
    }
    if (ecu_cb_) ecu_cb_(new_ecu, now);
  }
}

Health TaskStateIndicationUnit::task_health(TaskId task) const {
  auto it = task_health_.find(task);
  return it == task_health_.end() ? Health::kOk : it->second;
}

Health TaskStateIndicationUnit::application_health(ApplicationId app) const {
  auto it = app_health_.find(app);
  return it == app_health_.end() ? Health::kOk : it->second;
}

std::uint32_t TaskStateIndicationUnit::error_count(RunnableId runnable,
                                                   ErrorType type) const {
  auto it = elements_.find(runnable);
  if (it == elements_.end()) return 0;
  return it->second.counts[static_cast<std::size_t>(type)];
}

SupervisionReport TaskStateIndicationUnit::report(RunnableId runnable) const {
  auto it = elements_.find(runnable);
  if (it == elements_.end()) {
    throw std::out_of_range("TSI: unknown runnable");
  }
  const Element& e = it->second;
  SupervisionReport r;
  r.runnable = runnable;
  r.task = e.task;
  r.application = e.application;
  r.aliveness_errors =
      e.counts[static_cast<std::size_t>(ErrorType::kAliveness)];
  r.arrival_rate_errors =
      e.counts[static_cast<std::size_t>(ErrorType::kArrivalRate)];
  r.program_flow_errors =
      e.counts[static_cast<std::size_t>(ErrorType::kProgramFlow)];
  r.accumulated_aliveness_errors =
      e.counts[static_cast<std::size_t>(ErrorType::kAccumulatedAliveness)];
  r.deadline_errors = e.counts[static_cast<std::size_t>(ErrorType::kDeadline)];
  r.communication_errors =
      e.counts[static_cast<std::size_t>(ErrorType::kCommunication)];
  r.nvm_corruption_errors =
      e.counts[static_cast<std::size_t>(ErrorType::kNvmCorruption)];
  r.memory_budget_errors =
      e.counts[static_cast<std::size_t>(ErrorType::kMemoryBudget)];
  r.handle_exhaustion_errors =
      e.counts[static_cast<std::size_t>(ErrorType::kHandleExhaustion)];
  r.queue_overflow_errors =
      e.counts[static_cast<std::size_t>(ErrorType::kQueueOverflow)];
  r.cpu_overload_errors =
      e.counts[static_cast<std::size_t>(ErrorType::kCpuOverload)];
  r.thermal_errors = e.counts[static_cast<std::size_t>(ErrorType::kThermal)];
  r.filesystem_errors =
      e.counts[static_cast<std::size_t>(ErrorType::kFilesystem)];
  r.check_rule_errors =
      e.counts[static_cast<std::size_t>(ErrorType::kCheckRule)];
  r.power_mode_errors =
      e.counts[static_cast<std::size_t>(ErrorType::kPowerMode)];
  return r;
}

std::vector<TaskId> TaskStateIndicationUnit::faulty_tasks() const {
  std::vector<TaskId> out;
  for (const auto& [task, health] : task_health_) {
    if (health == Health::kFaulty) out.push_back(task);
  }
  return out;
}

void TaskStateIndicationUnit::set_task_state_callback(TaskStateCallback cb) {
  task_cb_ = std::move(cb);
}
void TaskStateIndicationUnit::set_application_state_callback(
    ApplicationStateCallback cb) {
  app_cb_ = std::move(cb);
}
void TaskStateIndicationUnit::set_ecu_state_callback(EcuStateCallback cb) {
  ecu_cb_ = std::move(cb);
}

void TaskStateIndicationUnit::clear_task(TaskId task, sim::SimTime now) {
  for (RunnableId id : order_) {
    Element& e = elements_.at(id);
    if (e.task == task) e.counts.fill(0);
  }
  derive_states(now);
}

void TaskStateIndicationUnit::reset(sim::SimTime now) {
  for (RunnableId id : order_) elements_.at(id).counts.fill(0);
  derive_states(now);
}

}  // namespace easis::wdg
