// Fault hypothesis configuration for the Software Watchdog (paper §3.2.1).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "sim/time.hpp"
#include "util/ids.hpp"
#include "wdg/types.hpp"

namespace easis::wdg {

/// Per-runnable monitoring configuration derived from the fault hypothesis.
/// Periods are expressed in watchdog main-function cycles (the CCA / CCAR
/// limits); the absolute period is cycles * WatchdogConfig::check_period.
struct RunnableMonitor {
  RunnableId runnable;
  TaskId task;
  ApplicationId application;
  std::string name;

  bool monitor_aliveness = true;
  /// CCA limit: length of the aliveness monitoring period in cycles.
  std::uint32_t aliveness_cycles = 10;
  /// Minimum heartbeats expected per aliveness period.
  std::uint32_t min_heartbeats = 1;

  bool monitor_arrival_rate = true;
  /// CCAR limit: length of the arrival-rate monitoring period in cycles.
  std::uint32_t arrival_cycles = 10;
  /// Maximum heartbeats tolerated per arrival-rate period.
  std::uint32_t max_arrivals = 2;

  /// Safety-critical runnables take part in program flow checking.
  bool program_flow = true;

  /// Initial Activation Status (AS).
  bool initially_active = true;
};

/// Default TSI-transgression -> FMF severity mapping, indexed by ErrorType
/// (the escalation table the policy engine perturbs; the values reproduce
/// the historical severity_of() switch exactly).
inline constexpr std::array<Severity, kErrorTypeCount> kDefaultSeverities{
    /*aliveness*/ Severity::kMajor,
    /*arrival_rate*/ Severity::kMajor,
    /*program_flow*/ Severity::kCritical,
    /*accumulated_aliveness*/ Severity::kMinor,
    /*deadline*/ Severity::kMajor,
    /*communication*/ Severity::kMajor,
    /*nvm_corruption*/ Severity::kMajor,
    /*memory_budget*/ Severity::kMajor,
    /*handle_exhaustion*/ Severity::kMajor,
    /*queue_overflow*/ Severity::kMajor,
    // Load shedding is a degradation, not a restart: one class below.
    /*cpu_overload*/ Severity::kMinor,
    // The thermal ladder degrades gracefully (park QM, stretch HBM
    // periods) before anything restarts: same degradation class.
    /*thermal*/ Severity::kMinor,
    /*filesystem*/ Severity::kMajor,
    /*check_rule*/ Severity::kMajor,
    // A broken mode machine strands the node (stuck asleep, never
    // uplinking): restart-worthy like the other control-path classes.
    /*power_mode*/ Severity::kMajor,
};

struct WatchdogConfig {
  /// Period of the watchdog main function (cycle counter tick).
  sim::Duration check_period = sim::Duration::millis(10);
  /// TSI thresholds, indexed by ErrorType; an error-indication-vector
  /// element reaching its threshold marks the task faulty (paper §3.2.3;
  /// Figure 6 uses a program-flow threshold of 3).
  std::uint32_t aliveness_threshold = 3;
  std::uint32_t arrival_rate_threshold = 3;
  std::uint32_t program_flow_threshold = 3;
  std::uint32_t accumulated_aliveness_threshold = 3;
  std::uint32_t deadline_threshold = 3;
  std::uint32_t communication_threshold = 3;
  /// A single corrupted NVM bank already marks the reporter faulty (the
  /// error is latched by the persistent-fault-memory layer, not counted).
  std::uint32_t nvm_corruption_threshold = 1;
  /// Shared threshold for the four resource-supervision error classes
  /// (memory budget, handle exhaustion, queue overflow, CPU overload);
  /// the Resource Supervision Unit re-reports a sustained transgression
  /// every cycle, so this debounces transient spikes.
  std::uint32_t resource_threshold = 3;
  /// Shared threshold for the environmental-supervision error classes
  /// (thermal, filesystem/NVM); the Environment Supervision Unit
  /// re-reports sustained conditions every cycle, like the RSU.
  std::uint32_t environment_threshold = 3;
  /// Threshold for user-defined check rules (policy `check` clauses); the
  /// check engine re-reports a failing predicate every evaluation period.
  std::uint32_t check_rule_threshold = 3;
  /// Threshold for power-mode supervision errors (overstayed dwell,
  /// refused or hung transitions, heartbeat-during-silence); the mode
  /// supervision unit re-reports a sustained condition every cycle.
  std::uint32_t power_mode_threshold = 3;
  /// The global ECU state turns faulty when this many tasks are faulty.
  std::uint32_t ecu_faulty_task_limit = 2;
  /// Detection-class -> FMF-severity escalation mapping. The defaults
  /// reproduce the historical hard-coded table; the policy engine swaps
  /// individual entries per policy variant.
  std::array<Severity, kErrorTypeCount> severities = kDefaultSeverities;
};

}  // namespace easis::wdg
