#include "wdg/env_monitor.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "telemetry/event_bus.hpp"

namespace easis::wdg {

EnvironmentSupervisionUnit::EnvironmentSupervisionUnit(
    SoftwareWatchdog& watchdog, rte::SignalBus& bus)
    : watchdog_(watchdog), bus_(bus) {}

void EnvironmentSupervisionUnit::register_virtual(RunnableId id, TaskId task,
                                                  ApplicationId app,
                                                  const std::string& name) {
  // Virtual runnable: present in the TSI for error accounting, invisible
  // to the heartbeat/flow units (an environment channel never executes).
  RunnableMonitor monitor;
  monitor.runnable = id;
  monitor.task = task;
  monitor.application = app;
  monitor.name = "env:" + name;
  monitor.monitor_aliveness = false;
  monitor.monitor_arrival_rate = false;
  monitor.program_flow = false;
  watchdog_.add_runnable(monitor);
}

void EnvironmentSupervisionUnit::add_thermal(const ThermalChannel& channel) {
  if (thermal_.contains(channel.id) || filesystem_.contains(channel.id)) {
    throw std::logic_error("ESU: channel already registered: " +
                           channel.name);
  }
  if (!channel.probe) {
    throw std::logic_error("ESU: thermal channel needs a probe: " +
                           channel.name);
  }
  register_virtual(channel.id, channel.task, channel.application,
                   channel.name);
  ThermalState state;
  state.config = channel;
  thermal_.emplace(channel.id, std::move(state));
  thermal_order_.push_back(channel.id);
}

void EnvironmentSupervisionUnit::add_filesystem(
    const FilesystemChannel& channel) {
  if (thermal_.contains(channel.id) || filesystem_.contains(channel.id)) {
    throw std::logic_error("ESU: channel already registered: " +
                           channel.name);
  }
  if (!channel.fill_probe) {
    throw std::logic_error("ESU: filesystem channel needs a fill probe: " +
                           channel.name);
  }
  register_virtual(channel.id, channel.task, channel.application,
                   channel.name);
  FilesystemState state;
  state.config = channel;
  filesystem_.emplace(channel.id, std::move(state));
  fs_order_.push_back(channel.id);
}

void EnvironmentSupervisionUnit::cycle(sim::SimTime now) {
  for (RunnableId id : thermal_order_) {
    cycle_thermal(thermal_.at(id), now);
  }
  for (RunnableId id : fs_order_) {
    cycle_filesystem(filesystem_.at(id), now);
  }
}

ThermalStage EnvironmentSupervisionUnit::stage_for(const ThermalState& state,
                                                   double reading) const {
  const ThermalLimits& lim = state.config.limits;
  // Shutdown latches: it is the entry into the persistent safe state, a
  // cooled-down die does not un-park the node.
  if (state.stage == ThermalStage::kShutdown) return ThermalStage::kShutdown;
  ThermalStage up = ThermalStage::kNormal;
  if (reading >= lim.shutdown_c) {
    up = ThermalStage::kShutdown;
  } else if (reading >= lim.derate_c) {
    up = ThermalStage::kDerate;
  } else if (reading >= lim.warn_c) {
    up = ThermalStage::kWarn;
  }
  if (up > state.stage) return up;
  // Downward transitions clear only past the hysteresis band, so a
  // reading jittering on a boundary does not flap the ladder.
  ThermalStage down = ThermalStage::kNormal;
  if (reading >= lim.shutdown_c - lim.hysteresis_c) {
    down = ThermalStage::kShutdown;
  } else if (reading >= lim.derate_c - lim.hysteresis_c) {
    down = ThermalStage::kDerate;
  } else if (reading >= lim.warn_c - lim.hysteresis_c) {
    down = ThermalStage::kWarn;
  }
  return down < state.stage ? down : state.stage;
}

void EnvironmentSupervisionUnit::enter_stage(ThermalState& state,
                                             ThermalStage next,
                                             sim::SimTime now) {
  const ThermalStage prev = state.stage;
  state.stage = next;
  if (!thermal_order_.empty() && thermal_order_.front() == state.config.id) {
    trace_ += ">";
    trace_ += to_string(next);
  }
  if (telemetry::enabled()) {
    telemetry::Event event;
    event.time = now;
    event.component = telemetry::Component::kEnvironmentUnit;
    event.kind = telemetry::EventKind::kDerateStageChange;
    event.runnable = state.config.id;
    event.task = state.config.task;
    event.application = state.config.application;
    event.detail = std::string(to_string(prev)) + "->" +
                   std::string(to_string(next)) +
                   " temp_c=" + std::to_string(state.last_c);
    telemetry::emit(std::move(event));
  }
  if (next > prev) {
    if (next == ThermalStage::kShutdown) {
      // Latch the safe state *before* reporting: the FMF must see the
      // parked node, not race a per-application treatment against it.
      if (shutdown_) shutdown_(now);
      report(state.config.id, state.config.task, state.config.application,
             ErrorType::kThermal, now,
             "thermal shutdown on " + state.config.name +
                 ": temp_c=" + std::to_string(state.last_c));
      ++state.reports;
      return;
    }
    report(state.config.id, state.config.task, state.config.application,
           ErrorType::kThermal, now,
           "thermal " + std::string(to_string(next)) + " on " +
               state.config.name + ": temp_c=" + std::to_string(state.last_c));
    ++state.reports;
    if (next == ThermalStage::kDerate && derate_enter_) derate_enter_(now);
    return;
  }
  // Downward: recovery is silent (the warn DTC ages out via the TSI's
  // healing), only the derate actuation is undone.
  if (prev >= ThermalStage::kDerate && next < ThermalStage::kDerate &&
      derate_exit_) {
    derate_exit_(now);
  }
}

void EnvironmentSupervisionUnit::cycle_thermal(ThermalState& state,
                                               sim::SimTime now) {
  const ThermalChannel& cfg = state.config;
  const ThermalLimits& lim = cfg.limits;
  const double reading = cfg.probe();

  const bool out_of_band =
      reading < lim.min_plausible_c || reading > lim.max_plausible_c;
  if (state.have_last &&
      std::abs(reading - state.last_c) <= lim.stuck_epsilon_c) {
    ++state.frozen_cycles;
  } else {
    state.frozen_cycles = 0;
  }
  state.last_c = reading;
  state.have_last = true;
  const bool stuck = state.frozen_cycles >= lim.stuck_cycles;
  state.invalid = out_of_band || stuck;

  // Freeze-frame feed: temperature and ladder stage are on the bus when
  // the FMF captures a DTC freeze frame.
  bus_.publish("env." + cfg.name + ".temp_c", reading, now);
  bus_.publish("env." + cfg.name + ".stage",
               static_cast<double>(static_cast<std::uint8_t>(state.stage)),
               now);

  if (state.invalid) {
    ++state.invalid_cycles;
    // Report per cycle until the precautionary derate is in place; once
    // treated, a continued stream would only fight the FMF's escalation.
    if (!state.precautionary_derate &&
        state.stage < ThermalStage::kDerate) {
      report(cfg.id, cfg.task, cfg.application, ErrorType::kThermal, now,
             std::string("thermal sensor ") +
                 (out_of_band ? "implausible" : "stuck") + " on " + cfg.name +
                 ": temp_c=" + std::to_string(reading));
      ++state.reports;
    }
    if (state.invalid_cycles >= lim.sensor_invalid_derate_cycles &&
        state.stage < ThermalStage::kDerate && !state.precautionary_derate) {
      // An ECU that cannot trust its temperature sensor assumes it is hot.
      state.precautionary_derate = true;
      enter_stage(state, ThermalStage::kDerate, now);
    }
    return;  // an invalid reading must not drive the ladder
  }
  state.invalid_cycles = 0;
  state.precautionary_derate = false;

  ThermalStage next = stage_for(state, reading);
  if (next > state.stage) {
    // Step one stage per cycle so even a step change in temperature walks
    // the ladder observably (warn -> derate -> shutdown, never a jump).
    next = static_cast<ThermalStage>(
        static_cast<std::uint8_t>(state.stage) + 1);
  }
  if (next != state.stage) enter_stage(state, next, now);
}

void EnvironmentSupervisionUnit::cycle_filesystem(FilesystemState& state,
                                                  sim::SimTime now) {
  const FilesystemChannel& cfg = state.config;
  const double fill = cfg.fill_probe ? cfg.fill_probe() : 0.0;
  const double wear = cfg.wear_probe ? cfg.wear_probe() : 0.0;
  const auto fill_pct =
      static_cast<std::uint64_t>(std::llround(fill * 100.0));
  const auto wear_pct =
      static_cast<std::uint64_t>(std::llround(wear * 100.0));
  state.last_fill_pct = fill_pct;
  state.last_wear_pct = wear_pct;

  bus_.publish("env." + cfg.name + ".fill.level",
               static_cast<double>(fill_pct), now);
  bus_.publish("env." + cfg.name + ".wear.level",
               static_cast<double>(wear_pct), now);

  // Write failures: wear-out or transient flash faults — immediate, a
  // failed journal write is already a visible failure.
  const std::uint64_t write_errors =
      cfg.write_error_probe ? cfg.write_error_probe() : 0;
  if (write_errors > state.last_write_errors) {
    const std::uint64_t delta = write_errors - state.last_write_errors;
    state.last_write_errors = write_errors;
    ++state.reports;
    report(cfg.id, cfg.task, cfg.application, ErrorType::kFilesystem, now,
           "nvm write errors on " + cfg.name + ": failed=" +
               std::to_string(delta) + " wear_pct=" +
               std::to_string(wear_pct));
    return;  // one report per channel per cycle is enough
  }
  state.last_write_errors = write_errors;

  // Overflow: the committed image no longer fits the bank. The FMF's
  // evict-by-priority degradation is the treatment; this is the detector.
  const std::uint64_t overflows =
      cfg.overflow_probe ? cfg.overflow_probe() : 0;
  if (overflows > state.last_overflows) {
    const std::uint64_t delta = overflows - state.last_overflows;
    state.last_overflows = overflows;
    ++state.reports;
    report(cfg.id, cfg.task, cfg.application, ErrorType::kFilesystem, now,
           "nvm journal overflow on " + cfg.name + ": overflows=" +
               std::to_string(delta) + " fill_pct=" +
               std::to_string(fill_pct));
    return;
  }
  state.last_overflows = overflows;

  // Fill watermark with transgression window (RSU watermark rule).
  if (cfg.limits.fill_watermark > 0.0 && fill >= cfg.limits.fill_watermark) {
    ++state.above_watermark;
    if (state.above_watermark >= cfg.limits.window_cycles) {
      ++state.reports;
      report(cfg.id, cfg.task, cfg.application, ErrorType::kFilesystem, now,
             "nvm fill watermark on " + cfg.name + ": fill_pct=" +
                 std::to_string(fill_pct));
      return;
    }
  } else {
    state.above_watermark = 0;
  }

  // Erase-cycle wear watermark: wear never heals, so this keeps reporting
  // (the DTC store deduplicates into one rising-occurrence entry).
  if (cfg.limits.wear_watermark > 0.0 && wear >= cfg.limits.wear_watermark) {
    ++state.reports;
    report(cfg.id, cfg.task, cfg.application, ErrorType::kFilesystem, now,
           "nvm erase-cycle wear on " + cfg.name + ": wear_pct=" +
               std::to_string(wear_pct));
  }
}

void EnvironmentSupervisionUnit::report(RunnableId id, TaskId task,
                                        ApplicationId app, ErrorType type,
                                        sim::SimTime now,
                                        std::string detail) {
  ++reports_;
  ErrorReport error;
  error.runnable = id;
  error.task = task;
  error.application = app;
  error.type = type;
  error.time = now;
  error.detail = std::move(detail);
  watchdog_.report_external_error(std::move(error));
}

ThermalStage EnvironmentSupervisionUnit::stage() const {
  if (thermal_order_.empty()) return ThermalStage::kNormal;
  return thermal_.at(thermal_order_.front()).stage;
}

ThermalStage EnvironmentSupervisionUnit::stage_of(RunnableId id) const {
  auto it = thermal_.find(id);
  return it == thermal_.end() ? ThermalStage::kNormal : it->second.stage;
}

double EnvironmentSupervisionUnit::temperature_c() const {
  if (thermal_order_.empty()) return 0.0;
  return thermal_.at(thermal_order_.front()).last_c;
}

bool EnvironmentSupervisionUnit::sensor_invalid() const {
  if (thermal_order_.empty()) return false;
  return thermal_.at(thermal_order_.front()).invalid;
}

std::uint64_t EnvironmentSupervisionUnit::flash_fill_pct() const {
  if (fs_order_.empty()) return 0;
  return filesystem_.at(fs_order_.front()).last_fill_pct;
}

std::uint64_t EnvironmentSupervisionUnit::flash_wear_pct() const {
  if (fs_order_.empty()) return 0;
  return filesystem_.at(fs_order_.front()).last_wear_pct;
}

std::uint64_t EnvironmentSupervisionUnit::reports_for(RunnableId id) const {
  if (auto it = thermal_.find(id); it != thermal_.end()) {
    return it->second.reports;
  }
  if (auto it = filesystem_.find(id); it != filesystem_.end()) {
    return it->second.reports;
  }
  return 0;
}

std::string EnvironmentSupervisionUnit::format_snapshot() const {
  std::ostringstream out;
  out << "environment snapshot (trace=" << trace_ << ")\n";
  for (RunnableId id : thermal_order_) {
    const ThermalState& state = thermal_.at(id);
    out << "  thermal " << state.config.name << " stage="
        << to_string(state.stage) << " temp_c=" << state.last_c
        << " invalid=" << (state.invalid ? 1 : 0)
        << " reports=" << state.reports << '\n';
  }
  for (RunnableId id : fs_order_) {
    const FilesystemState& state = filesystem_.at(id);
    out << "  filesystem " << state.config.name << " fill_pct="
        << state.last_fill_pct << " wear_pct=" << state.last_wear_pct
        << " write_errors=" << state.last_write_errors
        << " reports=" << state.reports << '\n';
  }
  return out.str();
}

}  // namespace easis::wdg
