#include "wdg/recovery.hpp"

#include "telemetry/event_bus.hpp"
#include "util/logging.hpp"

namespace easis::wdg {

namespace {
constexpr std::string_view kLog = "wdg.recovery";
}

void RecoverySupervisionUnit::begin(std::vector<RunnableId> required,
                                    ApplicationId scope_app,
                                    std::uint32_t cycles, sim::SimTime now) {
  active_ = true;
  scope_app_ = scope_app;
  required_ = std::move(required);
  announced_.clear();
  cycles_left_ = cycles;
  started_at_ = now;
  ++started_;
  EASIS_LOG(util::LogLevel::kInfo, kLog)
      << "warm-up window opened: " << required_.size() << " runnables, "
      << cycles << " cycles";
  if (telemetry::enabled()) {
    telemetry::Event event;
    event.time = now;
    event.component = telemetry::Component::kRecoveryUnit;
    event.kind = telemetry::EventKind::kRecoveryWindowOpened;
    event.application = scope_app;
    event.detail = std::to_string(required_.size()) + " runnables, " +
                   std::to_string(cycles) + " cycles";
    telemetry::emit(std::move(event));
  }
}

void RecoverySupervisionUnit::on_heartbeat(RunnableId runnable) {
  if (!active_) return;
  announced_.insert(runnable);
}

void RecoverySupervisionUnit::on_error(const ErrorReport& report,
                                       sim::SimTime now) {
  if (!active_) return;
  finish(false, report, now);
}

void RecoverySupervisionUnit::on_cycle(sim::SimTime now) {
  if (!active_) return;
  if (cycles_left_ > 0 && --cycles_left_ > 0) return;
  // Window expired: every required runnable must have re-announced.
  for (RunnableId id : required_) {
    if (!announced_.contains(id)) {
      ErrorReport cause;
      cause.runnable = id;
      cause.application = scope_app_;
      cause.type = ErrorType::kAliveness;
      cause.time = now;
      cause.detail = "no heartbeat re-announcement inside warm-up window";
      finish(false, cause, now);
      return;
    }
  }
  ErrorReport none;
  none.time = now;
  finish(true, none, now);
}

void RecoverySupervisionUnit::finish(bool ok, const ErrorReport& cause,
                                     sim::SimTime now) {
  active_ = false;
  if (ok) {
    ++passed_;
  } else {
    ++failed_;
  }
  EASIS_LOG(ok ? util::LogLevel::kInfo : util::LogLevel::kWarn, kLog)
      << "warm-up window " << (ok ? "passed" : "FAILED") << " after "
      << (now - started_at_) << (ok ? "" : ": " + cause.detail);
  if (telemetry::enabled()) {
    telemetry::Event event;
    event.time = now;
    event.component = telemetry::Component::kRecoveryUnit;
    event.kind = telemetry::EventKind::kRecoveryResult;
    event.runnable = cause.runnable;
    event.task = cause.task;
    event.application = scope_app_;
    event.detail =
        ok ? "passed" : "failed: " + std::string(to_string(cause.type)) +
                            (cause.detail.empty() ? "" : " — " + cause.detail);
    telemetry::emit(std::move(event));
  }
  if (callback_) callback_(ok, scope_app_, cause, now);
}

}  // namespace easis::wdg
