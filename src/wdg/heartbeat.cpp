#include "wdg/heartbeat.hpp"

#include <cassert>
#include <stdexcept>

namespace easis::wdg {

void HeartbeatMonitoringUnit::add_runnable(const RunnableMonitor& config) {
  if (states_.contains(config.runnable)) {
    throw std::logic_error("HBM: runnable already monitored");
  }
  if (config.aliveness_cycles == 0 || config.arrival_cycles == 0) {
    throw std::invalid_argument("HBM: monitoring period must be >= 1 cycle");
  }
  State s;
  s.config = config;
  s.active = config.initially_active;
  states_.emplace(config.runnable, std::move(s));
  order_.push_back(config.runnable);
}

bool HeartbeatMonitoringUnit::monitors(RunnableId id) const {
  return states_.contains(id);
}

HeartbeatMonitoringUnit::State& HeartbeatMonitoringUnit::state(RunnableId id) {
  auto it = states_.find(id);
  assert(it != states_.end());
  return it->second;
}

const HeartbeatMonitoringUnit::State& HeartbeatMonitoringUnit::state(
    RunnableId id) const {
  auto it = states_.find(id);
  assert(it != states_.end());
  return it->second;
}

void HeartbeatMonitoringUnit::indicate(RunnableId id) {
  auto it = states_.find(id);
  if (it == states_.end()) return;  // unmonitored runnables are ignored
  State& s = it->second;
  if (!s.active) return;
  ++s.ac;
  ++s.arc;
}

void HeartbeatMonitoringUnit::tick(sim::SimTime now,
                                   const ErrorCallback& on_error) {
  for (RunnableId id : order_) {
    State& s = state(id);
    if (!s.active) continue;
    bool error_this_cycle = false;

    if (s.config.monitor_aliveness) {
      ++s.cca;
      if (s.cca >= s.config.aliveness_cycles) {
        // Check shortly before the next period begins.
        if (s.ac < s.config.min_heartbeats) {
          on_error(id, ErrorType::kAliveness, now);
          error_this_cycle = true;
        }
        s.ac = 0;
        s.cca = 0;
      }
    }

    if (s.config.monitor_arrival_rate) {
      ++s.ccar;
      if (s.ccar >= s.config.arrival_cycles) {
        if (s.arc > s.config.max_arrivals) {
          on_error(id, ErrorType::kArrivalRate, now);
          error_this_cycle = true;
        }
        s.arc = 0;
        s.ccar = 0;
      }
    }

    // Reset-on-error (paper: counters reset to zero if the period expires
    // or an error was detected in the last cycle): a detected error clears
    // both counter families so the next cycle starts from a clean slate.
    if (error_this_cycle) {
      s.ac = 0;
      s.arc = 0;
      s.cca = 0;
      s.ccar = 0;
    }
  }
}

void HeartbeatMonitoringUnit::set_activation_status(RunnableId id,
                                                    bool active) {
  State& s = state(id);
  if (s.active == active) return;
  s.active = active;
  // (Re)activation starts fresh monitoring periods.
  s.ac = 0;
  s.arc = 0;
  s.cca = 0;
  s.ccar = 0;
}

bool HeartbeatMonitoringUnit::activation_status(RunnableId id) const {
  return state(id).active;
}

void HeartbeatMonitoringUnit::update_hypothesis(
    RunnableId id, std::uint32_t aliveness_cycles,
    std::uint32_t min_heartbeats, std::uint32_t arrival_cycles,
    std::uint32_t max_arrivals) {
  if (aliveness_cycles == 0 || arrival_cycles == 0) {
    throw std::invalid_argument("HBM: monitoring period must be >= 1 cycle");
  }
  State& s = state(id);
  s.config.aliveness_cycles = aliveness_cycles;
  s.config.min_heartbeats = min_heartbeats;
  s.config.arrival_cycles = arrival_cycles;
  s.config.max_arrivals = max_arrivals;
  // Fresh periods under the new hypothesis.
  s.ac = 0;
  s.arc = 0;
  s.cca = 0;
  s.ccar = 0;
}

void HeartbeatMonitoringUnit::rebind(const RunnableMonitor& config) {
  if (config.aliveness_cycles == 0 || config.arrival_cycles == 0) {
    throw std::invalid_argument("HBM: monitoring period must be >= 1 cycle");
  }
  State& s = state(config.runnable);
  const bool active = s.active;  // rebinding does not touch activation
  s.config = config;
  s.active = active;
  // Fresh periods under the new hypothesis — a rebind mid-window must
  // never carry half-accumulated counters into the new contract.
  s.ac = 0;
  s.arc = 0;
  s.cca = 0;
  s.ccar = 0;
}

void HeartbeatMonitoringUnit::reset_runnable(RunnableId id) {
  State& s = state(id);
  s.ac = 0;
  s.arc = 0;
  s.cca = 0;
  s.ccar = 0;
}

void HeartbeatMonitoringUnit::reset() {
  for (RunnableId id : order_) {
    State& s = state(id);
    s.ac = 0;
    s.arc = 0;
    s.cca = 0;
    s.ccar = 0;
    s.active = s.config.initially_active;
  }
}

std::uint32_t HeartbeatMonitoringUnit::ac(RunnableId id) const {
  return state(id).ac;
}
std::uint32_t HeartbeatMonitoringUnit::arc(RunnableId id) const {
  return state(id).arc;
}
std::uint32_t HeartbeatMonitoringUnit::cca(RunnableId id) const {
  return state(id).cca;
}
std::uint32_t HeartbeatMonitoringUnit::ccar(RunnableId id) const {
  return state(id).ccar;
}

const RunnableMonitor& HeartbeatMonitoringUnit::config(RunnableId id) const {
  return state(id).config;
}

std::vector<RunnableId> HeartbeatMonitoringUnit::monitored_runnables() const {
  return order_;
}

}  // namespace easis::wdg
