// Communication Monitoring Unit (extension of the paper's unit set).
//
// The watchdog's HBM/PFC/TSI units supervise computation; this unit
// supervises the *reception side* of protected network channels. Each
// channel registers as a virtual runnable (all heartbeat/flow monitoring
// off — the channel never "executes"; it exists so the TSI keeps an error
// indication vector for it and the FMF can treat its faults exactly like
// task faults). The channel is bound to the task/application that consumes
// the signal, so sustained network faults degrade the *consumer*, e.g.
// SafeSpeed entering limp-home when its commanded maximum speed can no
// longer be trusted.
//
// Two fault sources feed the unit:
//   - on_check_result(): every E2E verdict of the channel's receiver;
//     each failed check is reported as ErrorType::kCommunication, so the
//     TSI threshold turns sustained corruption into a task fault.
//   - cycle(): periodic timeout supervision; a channel silent (no kOk)
//     for longer than its timeout is reported once per elapsed timeout
//     window — sustained silence keeps reporting and crosses the TSI
//     threshold instead of flagging once and going quiet.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "bus/e2e.hpp"
#include "sim/time.hpp"
#include "util/ids.hpp"
#include "wdg/watchdog.hpp"

namespace easis::wdg {

struct ComChannel {
  /// Virtual-runnable identity of the channel in the watchdog/TSI.
  RunnableId channel;
  /// Task and application consuming the signal; the TSI marks these
  /// faulty when the channel's error count crosses the threshold.
  TaskId task;
  ApplicationId application;
  std::string name;
  /// Maximum silence between accepted (kOk) receptions; zero disables
  /// timeout supervision for the channel.
  sim::Duration timeout = sim::Duration::zero();
};

class CommunicationMonitoringUnit {
 public:
  explicit CommunicationMonitoringUnit(SoftwareWatchdog& watchdog);

  /// Registers a channel; the timeout window is armed from `now`.
  void add_channel(const ComChannel& channel, sim::SimTime now);

  /// Feed every E2E verdict of the channel's receiver here.
  void on_check_result(RunnableId channel, bus::E2EStatus status,
                       sim::SimTime now);

  /// Periodic timeout supervision; call every watchdog check period.
  void cycle(sim::SimTime now);

  [[nodiscard]] std::uint64_t ok_count(RunnableId channel) const;
  [[nodiscard]] std::uint64_t e2e_failures(RunnableId channel) const;
  [[nodiscard]] std::uint64_t timeouts(RunnableId channel) const;
  [[nodiscard]] std::uint64_t reports_emitted() const { return reports_; }
  [[nodiscard]] std::size_t channel_count() const { return order_.size(); }

 private:
  struct State {
    ComChannel config;
    sim::SimTime last_ok;
    /// End of the last reported timeout window (windows never re-report).
    sim::SimTime timeout_reported_until;
    std::uint64_t ok = 0;
    std::uint64_t failures = 0;
    std::uint64_t timeouts = 0;
  };

  SoftwareWatchdog& watchdog_;
  std::unordered_map<RunnableId, State> channels_;
  std::vector<RunnableId> order_;
  std::uint64_t reports_ = 0;

  void report(const State& state, sim::SimTime now, std::string detail);
};

}  // namespace easis::wdg
