#include "wdg/resource_monitor.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "telemetry/event_bus.hpp"

namespace easis::wdg {

ResourceSupervisionUnit::ResourceSupervisionUnit(SoftwareWatchdog& watchdog,
                                                 os::Kernel& kernel,
                                                 rte::SignalBus& bus)
    : watchdog_(watchdog), kernel_(kernel), bus_(bus) {}

ErrorType ResourceSupervisionUnit::error_type_of(ResourceClass c) {
  switch (c) {
    case ResourceClass::kMemory: return ErrorType::kMemoryBudget;
    case ResourceClass::kHandles: return ErrorType::kHandleExhaustion;
    case ResourceClass::kQueue: return ErrorType::kQueueOverflow;
    case ResourceClass::kCpuLoad: return ErrorType::kCpuOverload;
  }
  return ErrorType::kMemoryBudget;
}

void ResourceSupervisionUnit::add_resource(const SupervisedResource& resource) {
  if (resources_.contains(resource.id)) {
    throw std::logic_error("RSU: resource already registered: " +
                           resource.name);
  }
  if (resource.resource_class == ResourceClass::kQueue &&
      resource.queue_signal.empty()) {
    throw std::logic_error("RSU: queue resource needs a queue_signal: " +
                           resource.name);
  }
  // Virtual runnable: present in the TSI for error accounting, invisible
  // to the heartbeat/flow units (a resource has no execution to monitor).
  RunnableMonitor monitor;
  monitor.runnable = resource.id;
  monitor.task = resource.task;
  monitor.application = resource.application;
  monitor.name = "res:" + resource.name;
  monitor.monitor_aliveness = false;
  monitor.monitor_arrival_rate = false;
  monitor.program_flow = false;
  watchdog_.add_runnable(monitor);

  State state;
  state.config = resource;
  resources_.emplace(resource.id, std::move(state));
  order_.push_back(resource.id);
}

void ResourceSupervisionUnit::sample(State& state, sim::SimTime now,
                                     double& level, std::uint64_t& usage,
                                     std::uint64_t& budget,
                                     std::uint64_t& denied_total) {
  const SupervisedResource& cfg = state.config;
  level = 0.0;
  usage = 0;
  budget = 0;
  denied_total = 0;
  switch (cfg.resource_class) {
    case ResourceClass::kMemory: {
      const os::TaskResourceUsage& u = kernel_.task_resource_usage(cfg.task);
      usage = u.memory_bytes;
      budget = kernel_.task_resource_budget(cfg.task).memory_bytes;
      denied_total = u.denied_allocations;
      if (budget != 0) level = static_cast<double>(usage) /
                               static_cast<double>(budget);
      break;
    }
    case ResourceClass::kHandles: {
      const os::TaskResourceUsage& u = kernel_.task_resource_usage(cfg.task);
      usage = u.handles;
      budget = kernel_.task_resource_budget(cfg.task).handles;
      if (budget == 0) budget = kernel_.handle_pool_capacity();
      denied_total = u.denied_handles;
      if (budget != 0) level = static_cast<double>(usage) /
                               static_cast<double>(budget);
      break;
    }
    case ResourceClass::kQueue: {
      if (const auto q = bus_.queue_state(cfg.queue_signal)) {
        usage = q->depth;
        budget = q->capacity;
        denied_total = q->overflows;
        if (budget != 0) level = static_cast<double>(usage) /
                                 static_cast<double>(budget);
      }
      break;
    }
    case ResourceClass::kCpuLoad: {
      level = load_average_;
      usage = static_cast<std::uint64_t>(std::llround(load_average_ * 100.0));
      budget = 100;
      break;
    }
  }
  (void)now;
}

void ResourceSupervisionUnit::cycle(sim::SimTime now) {
  ++cycles_;

  // Refresh the modelled load average first so kCpuLoad resources see the
  // utilisation of the cycle that just elapsed.
  const sim::Duration busy = kernel_.cpu_busy_time();
  if (have_last_cycle_ && now > last_cycle_at_) {
    // A software reset zeroes the kernel's busy counters; the post-reset
    // value alone is then the busy share of this cycle.
    const sim::Duration busy_delta =
        busy >= last_busy_ ? busy - last_busy_ : busy;
    const double instantaneous =
        static_cast<double>(busy_delta.as_micros()) /
        static_cast<double>((now - last_cycle_at_).as_micros());
    load_average_ =
        load_alpha_ * instantaneous + (1.0 - load_alpha_) * load_average_;
  }
  last_busy_ = busy;
  last_cycle_at_ = now;
  have_last_cycle_ = true;

  const bool snapshot_cycle =
      snapshot_every_ != 0 && cycles_ % snapshot_every_ == 0;

  for (RunnableId id : order_) {
    State& state = resources_.at(id);
    const SupervisedResource& cfg = state.config;
    double level = 0.0;
    std::uint64_t usage = 0;
    std::uint64_t budget = 0;
    std::uint64_t denied_total = 0;
    sample(state, now, level, usage, budget, denied_total);

    const auto pct =
        static_cast<std::uint64_t>(std::llround(level * 100.0));
    state.last_level_pct = pct;
    state.last_usage = usage;
    state.last_budget = budget;

    // Freeze-frame feed: the offending task's resource level is on the
    // bus when the FMF captures a DTC freeze frame for it.
    bus_.publish("res." + cfg.name + ".level", static_cast<double>(pct), now);

    if (telemetry::enabled() && snapshot_cycle) {
      telemetry::Event event;
      event.time = now;
      event.component = telemetry::Component::kResourceUnit;
      event.kind = telemetry::EventKind::kResourceSnapshot;
      event.runnable = cfg.id;
      event.task = cfg.task;
      event.application = cfg.application;
      event.detail = cfg.name + " level_pct=" + std::to_string(pct) +
                     " usage=" + std::to_string(usage) +
                     " budget=" + std::to_string(budget);
      telemetry::emit(std::move(event));
    }

    const ErrorType type = error_type_of(cfg.resource_class);

    // Exhaustion: the kernel denied a request / the queue overflowed since
    // the last cycle. A denial is already a visible failure — no debounce.
    if (denied_total > state.last_denied) {
      const std::uint64_t denied = denied_total - state.last_denied;
      state.last_denied = denied_total;
      report(state, type, now,
             std::string(to_string(cfg.resource_class)) + " exhaustion on " +
                 cfg.name + ": denied=" + std::to_string(denied) +
                 " level_pct=" + std::to_string(pct));
      continue;  // one report per resource per cycle is enough
    }
    state.last_denied = denied_total;

    // Watermark with transgression window.
    if (cfg.limits.watermark > 0.0 && level >= cfg.limits.watermark) {
      ++state.above_watermark;
      if (state.above_watermark >= cfg.limits.window_cycles) {
        report(state, type, now,
               std::string(to_string(cfg.resource_class)) + " watermark on " +
                   cfg.name + ": level_pct=" + std::to_string(pct) +
                   " usage=" + std::to_string(usage) + " budget=" +
                   std::to_string(budget));
        continue;
      }
    } else {
      state.above_watermark = 0;
    }

    // Leak rate: normalised growth per second over the sample window.
    if (cfg.limits.leak_rate_per_s > 0.0 && cfg.limits.leak_window_cycles > 1) {
      state.samples.push_back(level);
      while (state.samples.size() > cfg.limits.leak_window_cycles) {
        state.samples.pop_front();
      }
      if (state.samples.size() == cfg.limits.leak_window_cycles) {
        const double growth = state.samples.back() - state.samples.front();
        const double window_s =
            static_cast<double>(
                (cfg.limits.leak_window_cycles - 1) *
                watchdog_.config().check_period.as_micros()) /
            1e6;
        if (window_s > 0.0 && growth / window_s > cfg.limits.leak_rate_per_s) {
          report(state, type, now,
                 std::string(to_string(cfg.resource_class)) + " leak on " +
                     cfg.name + ": growth_pct=" +
                     std::to_string(static_cast<std::uint64_t>(
                         std::llround(growth * 100.0))) +
                     " over " +
                     std::to_string(cfg.limits.leak_window_cycles) +
                     " cycles level_pct=" + std::to_string(pct));
        }
      }
    }
  }
}

void ResourceSupervisionUnit::report(State& state, ErrorType type,
                                     sim::SimTime now, std::string detail) {
  ++reports_;
  ++state.reports;
  ErrorReport error;
  error.runnable = state.config.id;
  error.task = state.config.task;
  error.application = state.config.application;
  error.type = type;
  error.time = now;
  error.detail = std::move(detail);
  watchdog_.report_external_error(std::move(error));
}

std::uint64_t ResourceSupervisionUnit::level_pct(RunnableId id) const {
  auto it = resources_.find(id);
  return it == resources_.end() ? 0 : it->second.last_level_pct;
}

std::uint64_t ResourceSupervisionUnit::reports_for(RunnableId id) const {
  auto it = resources_.find(id);
  return it == resources_.end() ? 0 : it->second.reports;
}

std::string ResourceSupervisionUnit::format_snapshot() const {
  std::ostringstream out;
  out << "resource snapshot (load_avg_pct="
      << static_cast<std::uint64_t>(std::llround(load_average_ * 100.0))
      << ")\n";
  for (RunnableId id : order_) {
    const State& state = resources_.at(id);
    const SupervisedResource& cfg = state.config;
    out << "  res " << cfg.name << " class="
        << to_string(cfg.resource_class)
        << " level_pct=" << state.last_level_pct
        << " usage=" << state.last_usage << " budget=" << state.last_budget
        << " denied=" << state.last_denied << " reports=" << state.reports
        << '\n';
  }
  return out.str();
}

}  // namespace easis::wdg
