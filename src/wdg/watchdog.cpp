#include "wdg/watchdog.hpp"

#include <algorithm>
#include <cassert>

#include "profile/profiler.hpp"
#include "telemetry/event_bus.hpp"
#include "util/logging.hpp"

namespace easis::wdg {

namespace {

constexpr std::string_view kLog = "wdg";

/// Which monitoring unit an error class originates from, for telemetry.
telemetry::Component detector_component(ErrorType type) {
  switch (type) {
    case ErrorType::kAliveness:
    case ErrorType::kAccumulatedAliveness:
      return telemetry::Component::kHeartbeatUnit;
    case ErrorType::kArrivalRate:
      return telemetry::Component::kArrivalRateUnit;
    case ErrorType::kProgramFlow:
      return telemetry::Component::kProgramFlowUnit;
    case ErrorType::kDeadline:
      return telemetry::Component::kDeadlineUnit;
    case ErrorType::kCommunication:
      return telemetry::Component::kComMonitor;
    case ErrorType::kNvmCorruption:
      return telemetry::Component::kFmf;
    case ErrorType::kMemoryBudget:
    case ErrorType::kHandleExhaustion:
    case ErrorType::kQueueOverflow:
    case ErrorType::kCpuOverload:
      return telemetry::Component::kResourceUnit;
    case ErrorType::kThermal:
    case ErrorType::kFilesystem:
      return telemetry::Component::kEnvironmentUnit;
    case ErrorType::kCheckRule:
      return telemetry::Component::kCheckUnit;
  }
  return telemetry::Component::kHarness;
}

}  // namespace

SoftwareWatchdog::SoftwareWatchdog(WatchdogConfig config)
    : config_(config),
      tsi_(TaskStateIndicationUnit::Thresholds{
               {config.aliveness_threshold, config.arrival_rate_threshold,
                config.program_flow_threshold,
                config.accumulated_aliveness_threshold,
                config.deadline_threshold, config.communication_threshold,
                config.nvm_corruption_threshold, config.resource_threshold,
                config.resource_threshold, config.resource_threshold,
                config.resource_threshold, config.environment_threshold,
                config.environment_threshold, config.check_rule_threshold,
                config.power_mode_threshold}},
           config.ecu_faulty_task_limit) {}

void SoftwareWatchdog::add_runnable(const RunnableMonitor& monitor) {
  hbm_.add_runnable(monitor);
  tsi_.add_runnable(monitor.runnable, monitor.task, monitor.application);
  if (monitor.program_flow) {
    pfc_.add_monitored(monitor.runnable, monitor.task);
  }
  monitors_.emplace(monitor.runnable, monitor);
}

void SoftwareWatchdog::add_flow_edge(RunnableId pred, RunnableId succ) {
  pfc_.add_edge(pred, succ);
}

void SoftwareWatchdog::add_flow_entry_point(RunnableId runnable) {
  pfc_.add_entry_point(runnable);
}

std::size_t SoftwareWatchdog::add_deadline_pair(DeadlinePair pair) {
  if (!monitors_.contains(pair.start) || !monitors_.contains(pair.end)) {
    throw std::logic_error(
        "SoftwareWatchdog: deadline checkpoints must be monitored");
  }
  return deadline_.add_pair(std::move(pair));
}

void SoftwareWatchdog::indicate_aliveness(RunnableId runnable, TaskId task,
                                          sim::SimTime now) {
  EASIS_PROFILE_SPAN("wdg.aliveness");
  hbm_.indicate(runnable);
  recovery_.on_heartbeat(runnable);
  {
    EASIS_PROFILE_SPAN("wdg.pfc_check");
    pfc_.on_execution(runnable, task, now,
                      [this](RunnableId r, RunnableId pred, TaskId t,
                             sim::SimTime t_now) {
                        handle_pfc_error(r, pred, t, t_now);
                      });
  }
  {
    EASIS_PROFILE_SPAN("wdg.deadline_check");
    deadline_.on_execution(runnable, now,
                           [this](std::size_t pair_index,
                                  sim::Duration measured, sim::SimTime t_now) {
                             handle_deadline_error(pair_index, measured, t_now);
                           });
  }
}

void SoftwareWatchdog::main_function(sim::SimTime now) {
  EASIS_PROFILE_SPAN("wdg.main_function");
  ++cycles_;
  {
    EASIS_PROFILE_SPAN("wdg.hbm_tick");
    hbm_.tick(now, [this](RunnableId r, ErrorType type, sim::SimTime t_now) {
      handle_hbm_error(r, type, t_now);
    });
  }
  recovery_.on_cycle(now);
}

void SoftwareWatchdog::notify_task_terminated(TaskId task) {
  pfc_.task_boundary(task);
}

void SoftwareWatchdog::report_external_error(ErrorReport report) {
  emit(std::move(report));
}

void SoftwareWatchdog::handle_hbm_error(RunnableId runnable, ErrorType type,
                                        sim::SimTime now) {
  auto it = monitors_.find(runnable);
  assert(it != monitors_.end());
  const RunnableMonitor& m = it->second;

  if (type == ErrorType::kAliveness) {
    auto episode = last_flow_error_cycle_.find(m.task);
    if (episode != last_flow_error_cycle_.end()) {
      const std::uint64_t age = cycles_ - episode->second;
      if (age <= m.aliveness_cycles + 1) {
        // Unit collaboration (Figure 6): the missing heartbeats are a
        // symptom of the just-detected program flow error. Accumulate;
        // report only the first occurrence of the episode so the TSI sees
        // the real cause.
        if (!accumulated_reported_.insert(m.task).second) return;
        type = ErrorType::kAccumulatedAliveness;
      } else {
        // No flow error for a full monitoring window: the episode is over.
        // This aliveness error stands on its own (e.g. the task is now
        // starved); keeping the mask would hide it indefinitely.
        last_flow_error_cycle_.erase(episode);
        accumulated_reported_.erase(m.task);
      }
    }
  }

  ErrorReport report;
  report.runnable = runnable;
  report.task = m.task;
  report.application = m.application;
  report.type = type;
  report.time = now;
  emit(std::move(report));
}

void SoftwareWatchdog::handle_pfc_error(RunnableId runnable,
                                        RunnableId predecessor, TaskId task,
                                        sim::SimTime now) {
  auto it = monitors_.find(runnable);
  assert(it != monitors_.end());
  last_flow_error_cycle_[task] = cycles_;

  ErrorReport report;
  report.runnable = runnable;
  report.task = task;
  report.application = it->second.application;
  report.type = ErrorType::kProgramFlow;
  report.time = now;
  report.related = predecessor;
  emit(std::move(report));
}

void SoftwareWatchdog::handle_deadline_error(std::size_t pair_index,
                                             sim::Duration measured,
                                             sim::SimTime now) {
  const DeadlinePair& pair = deadline_.pair(pair_index);
  auto it = monitors_.find(pair.end);
  assert(it != monitors_.end());
  ErrorReport report;
  report.runnable = pair.end;
  report.task = it->second.task;
  report.application = it->second.application;
  report.type = ErrorType::kDeadline;
  report.time = now;
  report.related = pair.start;
  report.detail = pair.name + ": " + std::to_string(measured.as_micros()) +
                  "us outside [" + std::to_string(pair.min.as_micros()) +
                  ", " + std::to_string(pair.max.as_micros()) + "]us";
  emit(std::move(report));
}

void SoftwareWatchdog::emit(ErrorReport report) {
  ++errors_;
  EASIS_LOG(util::LogLevel::kDebug, kLog)
      << to_string(report.type) << " error, runnable " << report.runnable
      << " task " << report.task << " at " << report.time;
  if (telemetry::enabled()) {
    // Single funnel for every detection in the stack, so one emit site
    // covers HBM/ARM/PFC/deadline/com-monitor and external reports.
    telemetry::Event event;
    event.time = report.time;
    event.component = detector_component(report.type);
    event.kind = telemetry::EventKind::kErrorDetected;
    event.runnable = report.runnable;
    event.task = report.task;
    event.application = report.application;
    event.detail = std::string(to_string(report.type));
    if (!report.detail.empty()) event.detail += ": " + report.detail;
    telemetry::emit(std::move(event));
  }
  // Report the error to the FMF before the TSI derives new states: state
  // transitions may trigger treatments, and the causal fault must already
  // be on record (fault log, DTC store) when they run.
  for (const auto& listener : error_listeners_) listener(report);
  tsi_.report_error(report.runnable, report.type, report.time);
  // Recovery validation last: a failing warm-up window may escalate into a
  // treatment, and the causal fault must already be logged and counted.
  recovery_.on_error(report, report.time);
}

void SoftwareWatchdog::add_error_listener(ErrorListener listener) {
  error_listeners_.push_back(std::move(listener));
}

void SoftwareWatchdog::add_task_state_listener(TaskStateListener listener) {
  // TSI supports a single callback; fan out here.
  if (!task_state_fanout_installed_) {
    task_state_fanout_installed_ = true;
    tsi_.set_task_state_callback(
        [this](TaskId task, Health health, sim::SimTime now) {
          for (const auto& l : task_state_listeners_) l(task, health, now);
        });
  }
  task_state_listeners_.push_back(std::move(listener));
}

void SoftwareWatchdog::add_application_state_listener(
    ApplicationStateListener listener) {
  if (!app_state_fanout_installed_) {
    app_state_fanout_installed_ = true;
    tsi_.set_application_state_callback(
        [this](ApplicationId app, Health health, sim::SimTime now) {
          for (const auto& l : app_state_listeners_) l(app, health, now);
        });
  }
  app_state_listeners_.push_back(std::move(listener));
}

void SoftwareWatchdog::add_ecu_state_listener(EcuStateListener listener) {
  if (!ecu_state_fanout_installed_) {
    ecu_state_fanout_installed_ = true;
    tsi_.set_ecu_state_callback([this](Health health, sim::SimTime now) {
      for (const auto& l : ecu_state_listeners_) l(health, now);
    });
  }
  ecu_state_listeners_.push_back(std::move(listener));
}

void SoftwareWatchdog::set_activation_status(RunnableId runnable,
                                             bool active) {
  hbm_.set_activation_status(runnable, active);
}

bool SoftwareWatchdog::activation_status(RunnableId runnable) const {
  return hbm_.activation_status(runnable);
}

void SoftwareWatchdog::update_hypothesis(RunnableId runnable,
                                         std::uint32_t aliveness_cycles,
                                         std::uint32_t min_heartbeats,
                                         std::uint32_t arrival_cycles,
                                         std::uint32_t max_arrivals) {
  hbm_.update_hypothesis(runnable, aliveness_cycles, min_heartbeats,
                         arrival_cycles, max_arrivals);
  auto it = monitors_.find(runnable);
  assert(it != monitors_.end());
  it->second.aliveness_cycles = aliveness_cycles;
  it->second.min_heartbeats = min_heartbeats;
  it->second.arrival_cycles = arrival_cycles;
  it->second.max_arrivals = max_arrivals;
}

void SoftwareWatchdog::rebind_hypothesis(const RunnableMonitor& monitor) {
  hbm_.rebind(monitor);
  auto it = monitors_.find(monitor.runnable);
  assert(it != monitors_.end());
  it->second = monitor;
}

void SoftwareWatchdog::clear_task_state(TaskId task, sim::SimTime now) {
  tsi_.clear_task(task, now);
  pfc_.task_boundary(task);
  last_flow_error_cycle_.erase(task);
  accumulated_reported_.erase(task);
  for (const auto& [runnable, m] : monitors_) {
    if (m.task == task) hbm_.reset_runnable(runnable);
  }
}

void SoftwareWatchdog::reset_runnable(RunnableId runnable) {
  hbm_.reset_runnable(runnable);
}

void SoftwareWatchdog::reset(sim::SimTime now) {
  hbm_.reset();
  pfc_.reset();
  deadline_.reset();
  tsi_.reset(now);
  recovery_.cancel();  // a pre-reset window cannot validate the new boot
  last_flow_error_cycle_.clear();
  accumulated_reported_.clear();
}

void SoftwareWatchdog::write_supervision_reports(std::ostream& out) const {
  out << "supervision reports (" << monitors_.size()
      << " monitored runnables):\n";
  std::size_t name_width = 8;
  for (RunnableId id : hbm_.monitored_runnables()) {
    name_width = std::max(name_width, monitors_.at(id).name.size());
  }
  for (RunnableId id : hbm_.monitored_runnables()) {
    const RunnableMonitor& m = monitors_.at(id);
    const SupervisionReport r = tsi_.report(id);
    out << "  " << m.name;
    for (std::size_t pad = m.name.size(); pad < name_width + 2; ++pad) {
      out << ' ';
    }
    out << "task " << m.task << "  AS=" << (hbm_.activation_status(id) ? 1 : 0)
        << "  aliveness=" << r.aliveness_errors
        << " arrival=" << r.arrival_rate_errors
        << " flow=" << r.program_flow_errors
        << " accumulated=" << r.accumulated_aliveness_errors
        << "  task_state=" << to_string(tsi_.task_health(m.task)) << '\n';
  }
  out << "  global ECU state: " << to_string(tsi_.ecu_health()) << '\n';
}

Severity SoftwareWatchdog::severity_of(ErrorType type) {
  return kDefaultSeverities[static_cast<std::size_t>(type)];
}

Severity SoftwareWatchdog::severity(ErrorType type) const {
  return config_.severities[static_cast<std::size_t>(type)];
}

void SoftwareWatchdog::scale_deadline_windows(double factor) {
  deadline_.scale_windows(factor);
}

}  // namespace easis::wdg
