// Platform integration of the Software Watchdog (paper §4.4).
//
// Installs the watchdog as an OS-level service: a high-priority periodic
// task whose job is the watchdog main function with a modelled execution
// cost (so monitoring overhead is part of the schedule), plus the glue
// wiring from the RTE heartbeat interface and the kernel's task-boundary
// notifications.
#pragma once

#include <memory>

#include "os/kernel.hpp"
#include "rte/rte.hpp"
#include "sim/time.hpp"
#include "wdg/self_supervision.hpp"
#include "wdg/watchdog.hpp"

namespace easis::wdg {

struct ServiceConfig {
  /// Priority of the watchdog main-function task; should dominate the
  /// monitored application tasks.
  os::Priority priority = 100;
  /// Fixed modelled cost of one main-function cycle.
  sim::Duration base_cost = sim::Duration::micros(20);
  /// Additional modelled cost per monitored runnable and cycle.
  sim::Duration per_runnable_cost = sim::Duration::micros(2);
};

class WatchdogService {
 public:
  /// Creates the watchdog task + driving alarm on `counter` and subscribes
  /// the watchdog to the RTE heartbeats and kernel task boundaries.
  /// `counter` must be a hardware counter; the main-function period is
  /// watchdog.config().check_period expressed in ticks of that counter.
  WatchdogService(os::Kernel& kernel, rte::Rte& rte,
                  SoftwareWatchdog& watchdog, CounterId counter,
                  ServiceConfig config = {});
  ~WatchdogService();
  WatchdogService(const WatchdogService&) = delete;
  WatchdogService& operator=(const WatchdogService&) = delete;

  /// Arms the periodic alarm. Call after kernel start (and after resets).
  void arm();

  /// Closes the self-supervision loop: every completed main-function cycle
  /// services `self_supervision` with the challenge–response token derived
  /// from the watchdog's cycle counter. Pass nullptr to detach.
  void attach_self_supervision(WatchdogSelfSupervision* self_supervision) {
    self_supervision_ = self_supervision;
  }

  // --- fault injection points (watchdog-task failure modes) -------------------
  /// Hangs the watchdog task: its job never completes, so the main function
  /// stops running and the HW layer stops being serviced.
  void set_hang(bool hang) { hang_ = hang; }
  /// Corrupts the challenge–response token (models sequencing-state
  /// corruption inside an otherwise-running watchdog task).
  void set_token_corruption(bool corrupt) { corrupt_token_ = corrupt; }
  [[nodiscard]] bool hang() const { return hang_; }
  [[nodiscard]] bool token_corruption() const { return corrupt_token_; }

  [[nodiscard]] TaskId task() const { return task_; }
  [[nodiscard]] AlarmId alarm() const { return alarm_; }
  [[nodiscard]] SoftwareWatchdog& watchdog() { return watchdog_; }

 private:
  class BoundaryObserver;

  os::Kernel& kernel_;
  SoftwareWatchdog& watchdog_;
  ServiceConfig config_;
  WatchdogSelfSupervision* self_supervision_ = nullptr;
  bool hang_ = false;
  bool corrupt_token_ = false;
  TaskId task_;
  AlarmId alarm_;
  std::uint64_t period_ticks_;
  std::unique_ptr<BoundaryObserver> observer_;
};

}  // namespace easis::wdg
