// Deadline Supervision Unit.
//
// Forward-looking extension (the paper's outlook points to richer fault
// handling; AUTOSAR's later Watchdog Manager standardised exactly this
// triple: alive supervision = HBM, logical supervision = PFC, deadline
// supervision = this unit). Measures the elapsed time between the
// heartbeats of a start checkpoint runnable and an end checkpoint runnable
// within one task and flags pairs that run too slowly (or suspiciously
// fast) — catching degradations that keep the heartbeat *rate* intact,
// which pure aliveness monitoring cannot see.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/ids.hpp"
#include "wdg/types.hpp"

namespace easis::wdg {

struct DeadlinePair {
  std::string name;
  RunnableId start;
  RunnableId end;
  /// Permitted elapsed time between the two checkpoints.
  sim::Duration min = sim::Duration::zero();
  sim::Duration max = sim::Duration::millis(10);
};

class DeadlineSupervisionUnit {
 public:
  /// (pair index, measured duration, end time) for each violation.
  using ErrorCallback =
      std::function<void(std::size_t pair_index, sim::Duration measured,
                         sim::SimTime now)>;

  /// Registers a supervised checkpoint pair; returns its index.
  std::size_t add_pair(DeadlinePair pair);

  /// Checkpoint notification (wired to the heartbeat stream). A start
  /// checkpoint (re)arms its pair; an end checkpoint measures and checks.
  void on_execution(RunnableId runnable, sim::SimTime now,
                    const ErrorCallback& on_error);

  /// Clears all armed measurements (treatment/reset).
  void reset();

  /// Policy hook: rescales every pair's permitted window. A factor > 1
  /// relaxes supervision (min shrinks, max grows); < 1 tightens it. A
  /// factor of exactly 1 is a no-op, so the baseline policy leaves the
  /// configured windows byte-identical.
  void scale_windows(double factor);

  [[nodiscard]] std::size_t pair_count() const { return pairs_.size(); }
  [[nodiscard]] const DeadlinePair& pair(std::size_t index) const;
  [[nodiscard]] bool armed(std::size_t index) const;
  [[nodiscard]] std::uint64_t measurements() const { return measurements_; }
  /// Most recent measured duration of the pair, if any end completed.
  [[nodiscard]] std::optional<sim::Duration> last_measured(
      std::size_t index) const;

 private:
  struct State {
    DeadlinePair pair;
    std::optional<sim::SimTime> started;
    std::optional<sim::Duration> last;
  };
  std::vector<State> pairs_;
  std::uint64_t measurements_ = 0;
};

}  // namespace easis::wdg
