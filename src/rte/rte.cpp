#include "rte/rte.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "profile/profiler.hpp"
#include "util/logging.hpp"

namespace easis::rte {

namespace {
constexpr std::string_view kLog = "rte";

sim::Duration scale(sim::Duration d, double factor) {
  return sim::Duration::micros(
      static_cast<std::int64_t>(std::llround(d.as_micros() * factor)));
}
}  // namespace

Rte::Rte(os::Kernel& kernel) : kernel_(kernel) {}

ApplicationId Rte::register_application(std::string name) {
  applications_.push_back(ApplicationEntry{std::move(name), {}, true, 0});
  return ApplicationId(
      static_cast<ApplicationId::underlying_type>(applications_.size() - 1));
}

ComponentId Rte::register_component(ApplicationId app, std::string name) {
  if (!app.valid() || app.value() >= applications_.size()) {
    throw std::invalid_argument("Rte::register_component: bad application");
  }
  components_.push_back(ComponentEntry{std::move(name), app, {}});
  const auto id = ComponentId(
      static_cast<ComponentId::underlying_type>(components_.size() - 1));
  applications_[app.value()].components.push_back(id);
  return id;
}

RunnableId Rte::register_runnable(ComponentId component, RunnableSpec spec) {
  if (!component.valid() || component.value() >= components_.size()) {
    throw std::invalid_argument("Rte::register_runnable: bad component");
  }
  runnables_.push_back(
      RunnableEntry{std::move(spec), RunnableControl{}, component, TaskId{}, 0});
  const auto id = RunnableId(
      static_cast<RunnableId::underlying_type>(runnables_.size() - 1));
  components_[component.value()].runnables.push_back(id);
  return id;
}

void Rte::map_runnable(RunnableId runnable, TaskId task) {
  if (finalized_) {
    throw std::logic_error("Rte::map_runnable: already finalized");
  }
  if (!runnable.valid() || runnable.value() >= runnables_.size()) {
    throw std::invalid_argument("Rte::map_runnable: bad runnable");
  }
  RunnableEntry& entry = runnables_[runnable.value()];
  if (entry.task.valid()) {
    throw std::logic_error("Rte::map_runnable: runnable already mapped");
  }
  entry.task = task;
  task_sequences_[task].push_back(runnable);
}

void Rte::configure_task_execution(TaskId task, TaskExecutionConfig config) {
  execution_configs_[task] = config;
}

void Rte::finalize() {
  if (finalized_) throw std::logic_error("Rte::finalize: already finalized");
  finalized_ = true;
  for (const auto& [task, _] : task_sequences_) {
    kernel_.set_job_factory(task, [this, task] { return build_job(task); });
  }
  EASIS_LOG(util::LogLevel::kInfo, kLog)
      << "finalized: " << runnables_.size() << " runnables on "
      << task_sequences_.size() << " tasks";
}

os::Job Rte::build_job(TaskId task) {
  auto it = task_sequences_.find(task);
  assert(it != task_sequences_.end());

  // Base sequence: enabled applications only, honouring repeat controls.
  std::vector<RunnableId> sequence;
  sequence.reserve(it->second.size());
  for (RunnableId id : it->second) {
    const RunnableEntry& entry = runnables_[id.value()];
    if (!application_enabled(application_of(id))) continue;
    for (std::uint32_t i = 0; i < entry.control.repeat; ++i) {
      sequence.push_back(id);
    }
  }
  // Injection hook: invalid execution branches / reordering.
  if (auto tr = transformers_.find(task);
      tr != transformers_.end() && tr->second) {
    sequence = tr->second(std::move(sequence));
  }

  os::Job job;
  job.reserve(sequence.size() + 1);
  for (RunnableId id : sequence) {
    RunnableEntry& entry = runnables_[id.value()];
    os::Segment segment;
    segment.runnable = id;
    segment.cost = scale(entry.spec.execution_time, entry.control.time_scale);
    segment.on_complete = [this, id, task] {
      RunnableEntry& e = runnables_[id.value()];
      ++e.executions;
      if (e.spec.body && !e.control.skip_body) e.spec.body();
      // Auto-generated glue: aliveness indication to the watchdog.
      if (!e.control.suppress_heartbeat) emit_heartbeat(id, task);
    };
    job.push_back(std::move(segment));
  }

  // Event-driven execution: prepend the wait point, optionally chain the
  // task back onto itself (persistent event server).
  if (auto cfg = execution_configs_.find(task);
      cfg != execution_configs_.end() && !job.empty()) {
    job.front().wait_mask = cfg->second.wait_before;
    if (cfg->second.chain_self) {
      os::Segment chain;
      chain.cost = sim::Duration::zero();
      chain.on_complete = [this, task] { kernel_.chain_task(task); };
      job.push_back(std::move(chain));
    }
  }
  return job;
}

void Rte::emit_heartbeat(RunnableId runnable, TaskId task) {
  EASIS_PROFILE_SPAN("rte.heartbeat");
  EASIS_PROFILE_COUNT("rte.heartbeats", 1);
  for (const auto& listener : listeners_) {
    listener(runnable, task, kernel_.now());
  }
}

// --- introspection -------------------------------------------------------------

const RunnableSpec& Rte::runnable(RunnableId id) const {
  assert(id.valid() && id.value() < runnables_.size());
  return runnables_[id.value()].spec;
}

const std::string& Rte::runnable_name(RunnableId id) const {
  return runnable(id).name;
}

TaskId Rte::task_of(RunnableId id) const {
  assert(id.valid() && id.value() < runnables_.size());
  return runnables_[id.value()].task;
}

ComponentId Rte::component_of(RunnableId id) const {
  assert(id.valid() && id.value() < runnables_.size());
  return runnables_[id.value()].component;
}

ApplicationId Rte::application_of(RunnableId id) const {
  return components_[component_of(id).value()].application;
}

const std::string& Rte::application_name(ApplicationId id) const {
  assert(id.valid() && id.value() < applications_.size());
  return applications_[id.value()].name;
}

const std::vector<RunnableId>& Rte::runnables_on_task(TaskId task) const {
  static const std::vector<RunnableId> kEmpty;
  auto it = task_sequences_.find(task);
  return it == task_sequences_.end() ? kEmpty : it->second;
}

std::vector<RunnableId> Rte::runnables_of_application(
    ApplicationId app) const {
  assert(app.valid() && app.value() < applications_.size());
  std::vector<RunnableId> out;
  for (ComponentId c : applications_[app.value()].components) {
    const auto& rs = components_[c.value()].runnables;
    out.insert(out.end(), rs.begin(), rs.end());
  }
  return out;
}

std::vector<TaskId> Rte::tasks_of_application(ApplicationId app) const {
  std::vector<TaskId> tasks;
  for (RunnableId r : runnables_of_application(app)) {
    const TaskId t = task_of(r);
    if (!t.valid()) continue;
    if (std::find(tasks.begin(), tasks.end(), t) == tasks.end()) {
      tasks.push_back(t);
    }
  }
  return tasks;
}

std::uint64_t Rte::executions(RunnableId id) const {
  assert(id.valid() && id.value() < runnables_.size());
  return runnables_[id.value()].executions;
}

void Rte::add_heartbeat_listener(HeartbeatListener listener) {
  listeners_.push_back(std::move(listener));
}

// --- application lifecycle --------------------------------------------------------

void Rte::set_application_enabled(ApplicationId app, bool enabled) {
  assert(app.valid() && app.value() < applications_.size());
  applications_[app.value()].enabled = enabled;
  if (!enabled) {
    // Termination treatment: drop the in-flight jobs of tasks that now host
    // nothing (the mapping may share tasks with other applications).
    for (TaskId task : tasks_of_application(app)) {
      bool still_used = false;
      for (RunnableId r : runnables_on_task(task)) {
        if (application_enabled(application_of(r))) {
          still_used = true;
          break;
        }
      }
      if (!still_used) kernel_.kill_task(task);
    }
  }
}

bool Rte::application_enabled(ApplicationId app) const {
  assert(app.valid() && app.value() < applications_.size());
  return applications_[app.value()].enabled;
}

void Rte::restart_application(ApplicationId app) {
  assert(app.valid() && app.value() < applications_.size());
  ApplicationEntry& entry = applications_[app.value()];
  ++entry.restarts;
  entry.enabled = true;
  for (TaskId task : tasks_of_application(app)) {
    kernel_.kill_task(task);
    // Restart with pool reclaim: a task restarted for resource exhaustion
    // must not inherit its own leak, or the fresh instance is faulted again
    // within one supervision window.
    kernel_.reclaim_task_resources(task);
    // Periodic tasks come back with their next alarm; event-server tasks
    // wait on events and must be re-activated into their wait point.
    if (auto cfg = execution_configs_.find(task);
        cfg != execution_configs_.end() && cfg->second.wait_before != 0) {
      kernel_.activate_task(task);
    }
  }
  EASIS_LOG(util::LogLevel::kInfo, kLog)
      << "restarted application " << entry.name << " (restart #"
      << entry.restarts << ")";
}

std::uint32_t Rte::restart_count(ApplicationId app) const {
  assert(app.valid() && app.value() < applications_.size());
  return applications_[app.value()].restarts;
}

// --- injection controls --------------------------------------------------------------

RunnableControl& Rte::control(RunnableId id) {
  assert(id.valid() && id.value() < runnables_.size());
  return runnables_[id.value()].control;
}

void Rte::set_sequence_transformer(TaskId task,
                                   SequenceTransformer transformer) {
  transformers_[task] = std::move(transformer);
}

void Rte::clear_sequence_transformer(TaskId task) {
  transformers_.erase(task);
}

}  // namespace easis::rte
