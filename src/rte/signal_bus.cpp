#include "rte/signal_bus.hpp"

namespace easis::rte {

void SignalBus::publish(const std::string& name, double value,
                        sim::SimTime at) {
  Entry& e = entries_[name];
  e.value = value;
  e.updated_at = at;
  ++e.updates;
  for (const auto& observer : observers_) observer(name, value, at);
}

std::optional<double> SignalBus::read(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) return std::nullopt;
  return it->second.value;
}

double SignalBus::read_or(const std::string& name, double fallback) const {
  return read(name).value_or(fallback);
}

std::optional<SignalBus::Entry> SignalBus::entry(
    const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

bool SignalBus::has(const std::string& name) const {
  return entries_.contains(name);
}

std::vector<std::string> SignalBus::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, _] : entries_) out.push_back(name);
  return out;
}

void SignalBus::add_observer(Observer observer) {
  observers_.push_back(std::move(observer));
}

}  // namespace easis::rte
