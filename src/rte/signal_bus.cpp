#include "rte/signal_bus.hpp"

#include <algorithm>

#include "profile/profiler.hpp"

namespace easis::rte {

const char* to_string(SignalQualifier qualifier) {
  switch (qualifier) {
    case SignalQualifier::kValid: return "valid";
    case SignalQualifier::kTimeout: return "timeout";
    case SignalQualifier::kInvalid: return "invalid";
  }
  return "?";
}

void SignalBus::publish(const std::string& name, double value,
                        sim::SimTime at) {
  EASIS_PROFILE_SPAN("rte.signal_publish");
  EASIS_PROFILE_COUNT("rte.signals_published", 1);
  Entry& e = entries_[name];
  e.value = value;
  e.updated_at = at;
  ++e.updates;
  e.invalid = false;
  if (auto it = queues_.find(name); it != queues_.end()) {
    QueueState& q = it->second;
    if (q.capacity != 0 && q.depth >= q.capacity) {
      ++q.overflows;
    } else {
      ++q.depth;
      ++q.enqueued;
      q.peak_depth = std::max(q.peak_depth, q.depth);
    }
  }
  for (const auto& observer : observers_) observer(name, value, at);
}

void SignalBus::invalidate(const std::string& name, sim::SimTime at) {
  Entry& e = entries_[name];
  e.invalid = true;
  // Not an update: updated_at stays at the last *good* reception so the
  // timeout keeps measuring the age of trusted data.
  (void)at;
}

void SignalBus::set_reception_policy(const std::string& name,
                                     ReceptionPolicy policy,
                                     sim::SimTime now) {
  policies_[name] = Policy{policy, now};
}

std::optional<ReceptionPolicy> SignalBus::reception_policy(
    const std::string& name) const {
  auto it = policies_.find(name);
  if (it == policies_.end()) return std::nullopt;
  return it->second.policy;
}

SignalQualifier SignalBus::qualifier(const std::string& name,
                                     sim::SimTime now) const {
  auto entry_it = entries_.find(name);
  if (entry_it != entries_.end() && entry_it->second.invalid) {
    return SignalQualifier::kInvalid;
  }
  auto policy_it = policies_.find(name);
  if (policy_it == policies_.end()) return SignalQualifier::kValid;
  const auto& [policy, armed_at] = policy_it->second;
  if (policy.deadline <= sim::Duration::zero()) return SignalQualifier::kValid;
  const sim::SimTime last_good = (entry_it != entries_.end() &&
                                  entry_it->second.updates > 0)
                                     ? entry_it->second.updated_at
                                     : armed_at;
  if (now - last_good > policy.deadline) return SignalQualifier::kTimeout;
  return SignalQualifier::kValid;
}

SignalBus::QualifiedValue SignalBus::read_qualified(const std::string& name,
                                                    sim::SimTime now,
                                                    double fallback) const {
  QualifiedValue out;
  out.qualifier = qualifier(name, now);
  const auto last = read(name);
  if (out.qualifier == SignalQualifier::kValid) {
    out.value = last.value_or(fallback);
    return out;
  }
  auto policy_it = policies_.find(name);
  const ReceptionPolicy policy =
      policy_it == policies_.end() ? ReceptionPolicy{}
                                   : policy_it->second.policy;
  switch (policy.substitute) {
    case SubstitutePolicy::kHoldLast:
      out.value = last.value_or(fallback);
      break;
    case SubstitutePolicy::kDefault:
      out.value = policy.default_value;
      break;
    case SubstitutePolicy::kLimp:
      out.value = policy.limp_value;
      break;
  }
  return out;
}

std::optional<double> SignalBus::read(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.updates == 0) return std::nullopt;
  return it->second.value;
}

double SignalBus::read_or(const std::string& name, double fallback) const {
  return read(name).value_or(fallback);
}

std::optional<SignalBus::Entry> SignalBus::entry(
    const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

bool SignalBus::has(const std::string& name) const {
  return entries_.contains(name);
}

std::vector<std::string> SignalBus::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, _] : entries_) out.push_back(name);
  return out;
}

void SignalBus::add_observer(Observer observer) {
  observers_.push_back(std::move(observer));
}

void SignalBus::configure_queue(const std::string& name,
                                std::uint32_t capacity) {
  QueueState q;
  q.capacity = capacity;
  queues_[name] = q;
}

std::uint32_t SignalBus::drain(const std::string& name, std::uint32_t count) {
  auto it = queues_.find(name);
  if (it == queues_.end()) return 0;
  QueueState& q = it->second;
  const std::uint32_t drained = std::min(q.depth, count);
  q.depth -= drained;
  q.drained += drained;
  EASIS_PROFILE_COUNT("rte.queue_drained", drained);
  return drained;
}

void SignalBus::clear_queue(const std::string& name) {
  auto it = queues_.find(name);
  if (it == queues_.end()) return;
  const std::uint32_t capacity = it->second.capacity;
  it->second = QueueState{};
  it->second.capacity = capacity;
}

std::optional<SignalBus::QueueState> SignalBus::queue_state(
    const std::string& name) const {
  auto it = queues_.find(name);
  if (it == queues_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> SignalBus::queued_signal_names() const {
  std::vector<std::string> out;
  out.reserve(queues_.size());
  for (const auto& [name, _] : queues_) out.push_back(name);
  return out;
}

}  // namespace easis::rte
