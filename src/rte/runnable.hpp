// Runnable model (AUTOSAR-style code-sequence component).
//
// A runnable is the unit the Software Watchdog monitors: a named piece of
// application code with a modelled execution time, mapped onto an OS task
// together with runnables from possibly different applications.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/time.hpp"

namespace easis::rte {

struct RunnableSpec {
  std::string name;
  /// Modelled execution time per invocation (virtual CPU budget).
  sim::Duration execution_time = sim::Duration::micros(100);
  /// Functional behaviour; runs when the execution budget completes.
  std::function<void()> body;
  /// Only safety-critical runnables take part in program flow checking.
  bool safety_critical = true;
};

/// Per-runnable runtime controls. These are the levers the error injector
/// manipulates — the equivalent of the paper's ControlDesk instruments
/// (time scalar sliders, loop-counter manipulation).
struct RunnableControl {
  /// Multiplies the modelled execution time (a hang = large factor).
  double time_scale = 1.0;
  /// Skips the functional body (transient corruption of the call).
  bool skip_body = false;
  /// Suppresses the auto-generated aliveness indication glue.
  bool suppress_heartbeat = false;
  /// Executes the runnable this many times per job occurrence
  /// (loop-counter manipulation; 0 drops it from the sequence).
  std::uint32_t repeat = 1;
};

}  // namespace easis::rte
