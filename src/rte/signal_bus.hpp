// Sender-receiver communication (last-is-best semantics).
//
// Models the RTE's sender-receiver ports between runnables and the
// data path towards sensors/actuators and the communication gateway.
// Signals are named doubles with update metadata.
//
// Signals crossing the vehicle network additionally carry a *qualifier*:
// a receiver registers a ReceptionPolicy (deadline + substitute-value
// rule), after which read_qualified() classifies the signal as kValid,
// kTimeout (deadline exceeded since the last good update) or kInvalid
// (the protection layer rejected the latest data), and substitutes a safe
// value per policy instead of handing out stale or damaged data.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace easis::rte {

enum class SignalQualifier : std::uint8_t {
  kValid = 0,
  kTimeout,  // no (accepted) update within the reception deadline
  kInvalid,  // latest reception was rejected (e.g. failed E2E check)
};

[[nodiscard]] const char* to_string(SignalQualifier qualifier);

/// What a degraded signal reads as.
enum class SubstitutePolicy : std::uint8_t {
  kHoldLast = 0,  // keep the last good value (tolerate brief dropouts)
  kDefault,       // fall back to the configured default
  kLimp,          // conservative limp-home value (safety signals)
};

struct ReceptionPolicy {
  /// Maximum age of the last good update; zero disables the deadline.
  sim::Duration deadline = sim::Duration::zero();
  SubstitutePolicy substitute = SubstitutePolicy::kHoldLast;
  /// Value substituted under SubstitutePolicy::kDefault.
  double default_value = 0.0;
  /// Value substituted under SubstitutePolicy::kLimp.
  double limp_value = 0.0;
};

class SignalBus {
 public:
  struct Entry {
    double value = 0.0;
    sim::SimTime updated_at;
    std::uint64_t updates = 0;
    /// Latest reception was rejected by the protection layer.
    bool invalid = false;
  };

  struct QualifiedValue {
    double value = 0.0;
    SignalQualifier qualifier = SignalQualifier::kValid;
  };

  using Observer =
      std::function<void(const std::string&, double, sim::SimTime)>;

  /// Writes a signal (creates it on first write); clears kInvalid.
  void publish(const std::string& name, double value, sim::SimTime at);

  /// Marks the signal invalid (its producer received damaged data) without
  /// touching the last good value. Cleared by the next publish.
  void invalidate(const std::string& name, sim::SimTime at);

  /// Registers the receiver-side policy; the deadline is armed from `now`
  /// so a signal that never arrives at all still times out.
  void set_reception_policy(const std::string& name, ReceptionPolicy policy,
                            sim::SimTime now);
  [[nodiscard]] std::optional<ReceptionPolicy> reception_policy(
      const std::string& name) const;

  /// Classifies the signal at time `now` against its reception policy.
  /// Signals without a policy are kValid whenever they exist.
  [[nodiscard]] SignalQualifier qualifier(const std::string& name,
                                          sim::SimTime now) const;

  /// Policy-aware read: a kValid signal reads as its value; a degraded one
  /// reads as the substitute the policy prescribes. `fallback` covers
  /// signals that never arrived and hold-last with no last value.
  [[nodiscard]] QualifiedValue read_qualified(const std::string& name,
                                              sim::SimTime now,
                                              double fallback) const;

  /// Last written value, if the signal exists.
  [[nodiscard]] std::optional<double> read(const std::string& name) const;

  /// Last written value or `fallback` for missing signals (initial ticks).
  [[nodiscard]] double read_or(const std::string& name, double fallback) const;

  [[nodiscard]] std::optional<Entry> entry(const std::string& name) const;
  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

  /// Observers see every publish (tracing, gateway bridging).
  void add_observer(Observer observer);

  // --- modelled signal queues (resource supervision extension) -------------
  //
  // Last-is-best signals cannot back up, so queue exhaustion is modelled
  // explicitly: a signal configured with a bounded queue counts each publish
  // as an enqueue until the consumer drains it. Values still follow
  // last-is-best semantics — the queue models *depth pressure* (how far the
  // consumer lags), which is what the Resource Supervision Unit watches.

  struct QueueState {
    std::uint32_t capacity = 0;
    std::uint32_t depth = 0;
    std::uint32_t peak_depth = 0;
    std::uint64_t enqueued = 0;
    std::uint64_t drained = 0;
    /// Publishes that arrived while the queue was full (lost updates).
    std::uint64_t overflows = 0;
  };

  /// Gives `name` a bounded queue of `capacity` entries (re-configuring
  /// resets the queue state).
  void configure_queue(const std::string& name, std::uint32_t capacity);
  /// Consumer side: removes up to `count` queued entries; returns how many
  /// were actually drained.
  std::uint32_t drain(const std::string& name, std::uint32_t count = 1);
  /// Empties the queue and clears peak/overflow counters (task restart).
  void clear_queue(const std::string& name);
  [[nodiscard]] std::optional<QueueState> queue_state(
      const std::string& name) const;
  [[nodiscard]] std::vector<std::string> queued_signal_names() const;

 private:
  struct Policy {
    ReceptionPolicy policy;
    sim::SimTime armed_at;
  };

  std::unordered_map<std::string, Entry> entries_;
  std::unordered_map<std::string, Policy> policies_;
  std::unordered_map<std::string, QueueState> queues_;
  std::vector<Observer> observers_;
};

}  // namespace easis::rte
