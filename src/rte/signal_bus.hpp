// Sender-receiver communication (last-is-best semantics).
//
// Models the RTE's sender-receiver ports between runnables and the
// data path towards sensors/actuators and the communication gateway.
// Signals are named doubles with update metadata.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace easis::rte {

class SignalBus {
 public:
  struct Entry {
    double value = 0.0;
    sim::SimTime updated_at;
    std::uint64_t updates = 0;
  };

  using Observer =
      std::function<void(const std::string&, double, sim::SimTime)>;

  /// Writes a signal (creates it on first write).
  void publish(const std::string& name, double value, sim::SimTime at);

  /// Last written value, if the signal exists.
  [[nodiscard]] std::optional<double> read(const std::string& name) const;

  /// Last written value or `fallback` for missing signals (initial ticks).
  [[nodiscard]] double read_or(const std::string& name, double fallback) const;

  [[nodiscard]] std::optional<Entry> entry(const std::string& name) const;
  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

  /// Observers see every publish (tracing, gateway bridging).
  void add_observer(Observer observer);

 private:
  std::unordered_map<std::string, Entry> entries_;
  std::vector<Observer> observers_;
};

}  // namespace easis::rte
