// Ecu is header-only today; this translation unit anchors the library.
#include "rte/ecu.hpp"
