// Runtime environment: component model, mapping and glue-code generation.
//
// Mirrors the paper's AUTOSAR/EASIS view: application software components
// consist of runnables; runnables from different applications can be mapped
// onto the same task; the RTE generates the glue code that reports each
// runnable's aliveness indication (heartbeat) to the Software Watchdog.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "os/kernel.hpp"
#include "rte/runnable.hpp"
#include "util/ids.hpp"

namespace easis::rte {

/// Receives the aliveness indication each time a runnable completes.
/// The Software Watchdog's first interface (L1 components -> watchdog).
using HeartbeatListener =
    std::function<void(RunnableId, TaskId, sim::SimTime)>;

/// Rewrites the runnable sequence of one task job (error injection:
/// invalid execution branches, skipped or swapped runnables).
using SequenceTransformer =
    std::function<std::vector<RunnableId>(std::vector<RunnableId>)>;

class Rte {
 public:
  explicit Rte(os::Kernel& kernel);
  Rte(const Rte&) = delete;
  Rte& operator=(const Rte&) = delete;

  // --- model registration ---------------------------------------------------
  ApplicationId register_application(std::string name);
  ComponentId register_component(ApplicationId app, std::string name);
  RunnableId register_runnable(ComponentId component, RunnableSpec spec);

  /// Appends the runnable to `task`'s execution sequence. Order of calls
  /// defines the in-job execution order.
  void map_runnable(RunnableId runnable, TaskId task);

  /// Event-driven (extended) task execution: each job first waits for any
  /// event in `wait_before`; with `chain_self` the task re-activates itself
  /// after the sequence, forming a persistent event server.
  struct TaskExecutionConfig {
    os::EventMask wait_before = 0;
    bool chain_self = false;
  };
  void configure_task_execution(TaskId task, TaskExecutionConfig config);

  /// Installs job factories for all mapped tasks. Call once after mapping.
  void finalize();
  [[nodiscard]] bool finalized() const { return finalized_; }

  // --- introspection -----------------------------------------------------------
  [[nodiscard]] const RunnableSpec& runnable(RunnableId id) const;
  [[nodiscard]] const std::string& runnable_name(RunnableId id) const;
  [[nodiscard]] TaskId task_of(RunnableId id) const;
  [[nodiscard]] ComponentId component_of(RunnableId id) const;
  [[nodiscard]] ApplicationId application_of(RunnableId id) const;
  [[nodiscard]] const std::string& application_name(ApplicationId id) const;
  [[nodiscard]] const std::vector<RunnableId>& runnables_on_task(
      TaskId task) const;
  [[nodiscard]] std::vector<RunnableId> runnables_of_application(
      ApplicationId app) const;
  /// Tasks hosting at least one runnable of `app`.
  [[nodiscard]] std::vector<TaskId> tasks_of_application(
      ApplicationId app) const;
  [[nodiscard]] std::size_t runnable_count() const { return runnables_.size(); }
  [[nodiscard]] std::size_t application_count() const {
    return applications_.size();
  }
  /// Completed executions of the runnable (body invocations, including
  /// skipped bodies) since construction.
  [[nodiscard]] std::uint64_t executions(RunnableId id) const;

  // --- heartbeat glue -------------------------------------------------------------
  void add_heartbeat_listener(HeartbeatListener listener);

  // --- application lifecycle ---------------------------------------------------------
  /// Disabled applications drop out of future jobs (termination treatment).
  void set_application_enabled(ApplicationId app, bool enabled);
  [[nodiscard]] bool application_enabled(ApplicationId app) const;
  /// Restart treatment: kills the application's tasks' current jobs and
  /// bumps the restart counter; periodic alarms re-activate the tasks.
  void restart_application(ApplicationId app);
  [[nodiscard]] std::uint32_t restart_count(ApplicationId app) const;

  // --- injection controls ---------------------------------------------------------
  [[nodiscard]] RunnableControl& control(RunnableId id);
  void set_sequence_transformer(TaskId task, SequenceTransformer transformer);
  void clear_sequence_transformer(TaskId task);

  [[nodiscard]] os::Kernel& kernel() { return kernel_; }

 private:
  struct RunnableEntry {
    RunnableSpec spec;
    RunnableControl control;
    ComponentId component;
    TaskId task;
    std::uint64_t executions = 0;
  };
  struct ComponentEntry {
    std::string name;
    ApplicationId application;
    std::vector<RunnableId> runnables;
  };
  struct ApplicationEntry {
    std::string name;
    std::vector<ComponentId> components;
    bool enabled = true;
    std::uint32_t restarts = 0;
  };

  os::Kernel& kernel_;
  std::vector<RunnableEntry> runnables_;
  std::vector<ComponentEntry> components_;
  std::vector<ApplicationEntry> applications_;
  std::unordered_map<TaskId, std::vector<RunnableId>> task_sequences_;
  std::unordered_map<TaskId, SequenceTransformer> transformers_;
  std::unordered_map<TaskId, TaskExecutionConfig> execution_configs_;
  std::vector<HeartbeatListener> listeners_;
  bool finalized_ = false;

  [[nodiscard]] os::Job build_job(TaskId task);
  void emit_heartbeat(RunnableId runnable, TaskId task);
};

}  // namespace easis::rte
