// ECU container: one node of the EASIS architecture.
//
// Bundles the per-ECU layered platform (Figure 1 of the paper): the OSEK
// kernel (L2), the RTE with its component model, and the signal bus that
// stands in for the microcontroller-abstraction I/O path. Dependability
// services (Software Watchdog, FMF) attach on top in the validator layer.
#pragma once

#include <string>

#include "os/kernel.hpp"
#include "rte/rte.hpp"
#include "rte/signal_bus.hpp"
#include "sim/engine.hpp"
#include "util/ids.hpp"

namespace easis::rte {

class Ecu {
 public:
  Ecu(sim::Engine& engine, std::string name)
      : name_(std::move(name)), kernel_(engine), rte_(kernel_) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] os::Kernel& kernel() { return kernel_; }
  [[nodiscard]] Rte& rte() { return rte_; }
  [[nodiscard]] SignalBus& signals() { return signals_; }
  [[nodiscard]] const SignalBus& signals() const { return signals_; }

  /// Boots the OS (auto-start tasks, hardware counters).
  void start() { kernel_.start(); }

  /// ECU software reset treatment: reboot the kernel. Application and
  /// service re-initialisation is the owner's responsibility (validator).
  void software_reset() {
    kernel_.software_reset();
    kernel_.start();
  }

 private:
  std::string name_;
  os::Kernel kernel_;
  Rte rte_;
  SignalBus signals_;
};

}  // namespace easis::rte
