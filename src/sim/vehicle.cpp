#include "sim/vehicle.hpp"

#include <algorithm>
#include <cmath>

namespace easis::sim {

void VehicleModel::set_drive_command(double cmd) {
  command_ = std::clamp(cmd, -1.0, 1.0);
}

void VehicleModel::step(Duration dt) {
  const double dt_s = dt.as_seconds();
  if (dt_s <= 0.0) return;

  double force = 0.0;
  if (command_ >= 0.0) {
    force = command_ * params_.max_drive_force_n;
  } else {
    force = command_ * params_.max_brake_force_n;
  }
  // Resistive forces oppose motion only while moving forward.
  if (speed_mps_ > 0.0) {
    force -= params_.drag_coeff * speed_mps_ * speed_mps_;
    force -= params_.rolling_resist_n;
  }
  const double accel = force / params_.mass_kg;
  speed_mps_ = std::max(0.0, speed_mps_ + accel * dt_s);
  position_m_ += speed_mps_ * dt_s;
}

}  // namespace easis::sim
