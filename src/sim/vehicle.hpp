// Longitudinal vehicle dynamics.
//
// Substitute for the EASIS validator's driving-dynamics / environment
// simulation nodes: gives the SafeSpeed application a plausible closed loop
// (driver demand + speed-limiter actuation -> vehicle speed).
#pragma once

#include "sim/time.hpp"

namespace easis::sim {

struct VehicleParams {
  double mass_kg = 1500.0;
  double max_drive_force_n = 6000.0;   // full throttle
  double max_brake_force_n = 12000.0;  // full braking
  double drag_coeff = 0.8;             // F_drag = drag_coeff * v^2 [N]
  double rolling_resist_n = 150.0;     // constant rolling resistance [N]
};

/// Simple point-mass longitudinal model integrated with explicit Euler.
class VehicleModel {
 public:
  explicit VehicleModel(VehicleParams params = {}) : params_(params) {}

  /// Commanded drive in [-1, 1]: positive = throttle, negative = brake.
  void set_drive_command(double cmd);

  /// Advances the model by `dt`.
  void step(Duration dt);

  [[nodiscard]] double speed_mps() const { return speed_mps_; }
  [[nodiscard]] double speed_kmh() const { return speed_mps_ * 3.6; }
  [[nodiscard]] double position_m() const { return position_m_; }
  [[nodiscard]] double drive_command() const { return command_; }
  [[nodiscard]] const VehicleParams& params() const { return params_; }

  void set_speed_mps(double v) { speed_mps_ = v; }

 private:
  VehicleParams params_;
  double command_ = 0.0;
  double speed_mps_ = 0.0;
  double position_m_ = 0.0;
};

}  // namespace easis::sim
