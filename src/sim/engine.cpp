#include "sim/engine.hpp"

#include <stdexcept>
#include <utility>

#include "profile/profiler.hpp"

namespace easis::sim {

EventId Engine::schedule_at(SimTime at, Action action, EventPriority priority) {
  if (at < now_) {
    throw std::invalid_argument("Engine::schedule_at: time in the past");
  }
  const EventId id = next_id_++;
  queue_.push(Event{at, static_cast<int>(priority), id, std::move(action)});
  return id;
}

EventId Engine::schedule_in(Duration delay, Action action,
                            EventPriority priority) {
  if (delay < Duration::zero()) {
    throw std::invalid_argument("Engine::schedule_in: negative delay");
  }
  return schedule_at(now_ + delay, std::move(action), priority);
}

bool Engine::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  // Lazy cancellation: remember the id; skip it when popped.
  return cancelled_.insert(id).second;
}

bool Engine::fire_next() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.at;
    ++fired_;
    EASIS_PROFILE_COUNT("sim.events_fired", 1);
    ev.action();
    return true;
  }
  return false;
}

bool Engine::step() { return fire_next(); }

void Engine::run_until(SimTime until) {
  EASIS_PROFILE_SPAN("sim.run_until");
  while (!queue_.empty()) {
    // Peek past cancelled events without firing.
    if (cancelled_.contains(queue_.top().id)) {
      cancelled_.erase(queue_.top().id);
      queue_.pop();
      continue;
    }
    if (queue_.top().at > until) break;
    fire_next();
  }
  if (now_ < until) now_ = until;
}

void Engine::run_all() {
  while (fire_next()) {
  }
}

std::size_t Engine::pending_events() const {
  return queue_.size() - cancelled_.size();
}

}  // namespace easis::sim
