// Lane geometry and lateral position model for the SafeLane application.
//
// Substitute for the validator's environment-simulation node: produces the
// lateral offset signal a lane camera would deliver, with an optional
// scripted drift so lane-departure events can be provoked deterministically.
#pragma once

#include "sim/time.hpp"

namespace easis::sim {

struct LaneParams {
  double lane_width_m = 3.5;
  /// Lateral position beyond which the vehicle is departing the lane.
  double departure_threshold_m = 1.2;
};

class LaneModel {
 public:
  explicit LaneModel(LaneParams params = {}) : params_(params) {}

  /// Lateral drift rate in m/s (positive = towards the right marking).
  void set_drift_rate(double mps) { drift_mps_ = mps; }

  /// Steering correction in m/s applied against the drift (from a driver or
  /// a lane-keeping response to the warning).
  void set_correction_rate(double mps) { correction_mps_ = mps; }

  void step(Duration dt);

  /// Offset from lane centre, metres; positive = right.
  [[nodiscard]] double lateral_offset_m() const { return offset_m_; }
  [[nodiscard]] bool departing() const;
  [[nodiscard]] const LaneParams& params() const { return params_; }

  void set_lateral_offset_m(double m) { offset_m_ = m; }

 private:
  LaneParams params_;
  double offset_m_ = 0.0;
  double drift_mps_ = 0.0;
  double correction_mps_ = 0.0;
};

}  // namespace easis::sim
