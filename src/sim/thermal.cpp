#include "sim/thermal.hpp"

#include <algorithm>
#include <cmath>

namespace easis::sim {

void ThermalModel::step(Duration dt, double load01) {
  const double load = std::clamp(load01, 0.0, 1.0);
  const double target =
      ambient_c_ + params_.idle_rise_c + params_.self_heating_c * load;
  const double tau_s =
      std::max(static_cast<double>(params_.time_constant.as_micros()) / 1e6,
               1e-6);
  const double dt_s = static_cast<double>(dt.as_micros()) / 1e6;
  junction_c_ += (target - junction_c_) * (1.0 - std::exp(-dt_s / tau_s));
  ++steps_;
  // Period-3 pattern (-d, 0, +d): a supervisor sampling every model step
  // or every other step always sees the reading move, so only a truly
  // stuck sensor trips the ESU's frozen-reading rule. A period-2 pattern
  // would alias with a 2:1 sampling ratio and look frozen.
  dither_c_ =
      params_.sensor_dither_c * (static_cast<double>(steps_ % 3) - 1.0);
}

double ThermalModel::sensor_c() const {
  if (sensor_stuck_) return stuck_value_c_;
  return junction_c_ + sensor_offset_c_ + dither_c_;
}

void ThermalModel::set_sensor_stuck(bool stuck) {
  if (stuck && !sensor_stuck_) stuck_value_c_ = sensor_c();
  sensor_stuck_ = stuck;
}

}  // namespace easis::sim
