#include "sim/lane.hpp"

#include <algorithm>
#include <cmath>

namespace easis::sim {

void LaneModel::step(Duration dt) {
  const double dt_s = dt.as_seconds();
  if (dt_s <= 0.0) return;
  double rate = drift_mps_;
  // The correction always acts back towards the lane centre.
  if (offset_m_ > 0.0) {
    rate -= correction_mps_;
  } else if (offset_m_ < 0.0) {
    rate += correction_mps_;
  }
  offset_m_ += rate * dt_s;
  const double half_width = params_.lane_width_m;  // allow crossing fully
  offset_m_ = std::clamp(offset_m_, -half_width, half_width);
}

bool LaneModel::departing() const {
  return std::abs(offset_m_) >= params_.departure_threshold_m;
}

}  // namespace easis::sim
