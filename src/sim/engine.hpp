// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events fire in (time, priority, insertion
// sequence) order so the same configuration always produces the same trace —
// the property that lets the bench binaries regenerate the paper's figures
// bit-for-bit.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace easis::sim {

using EventId = std::uint64_t;

/// Scheduling priority of a simultaneous event; lower value fires first.
/// The OS kernel uses kDispatch so that e.g. alarm expiries at time t are
/// processed before user callbacks scheduled at t.
enum class EventPriority : int {
  kKernel = 0,
  kDispatch = 1,
  kDefault = 2,
  kMonitor = 3,
};

class Engine {
 public:
  using Action = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `action` to run at absolute time `at` (must be >= now()).
  EventId schedule_at(SimTime at, Action action,
                      EventPriority priority = EventPriority::kDefault);

  /// Schedules `action` to run `delay` from now.
  EventId schedule_in(Duration delay, Action action,
                      EventPriority priority = EventPriority::kDefault);

  /// Cancels a pending event. Returns false if already fired or cancelled.
  bool cancel(EventId id);

  /// Runs the next event. Returns false if the queue is empty.
  bool step();

  /// Runs all events up to and including time `until`.
  void run_until(SimTime until);

  /// Runs for `d` from the current time.
  void run_for(Duration d) { run_until(now_ + d); }

  /// Drains the whole queue (use only in tests with finite event sets).
  void run_all();

  [[nodiscard]] std::size_t pending_events() const;
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }

 private:
  struct Event {
    SimTime at;
    int priority;
    EventId id;  // also the insertion sequence number
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.id > b.id;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
  SimTime now_;
  EventId next_id_ = 1;
  std::uint64_t fired_ = 0;

  bool fire_next();
};

}  // namespace easis::sim
