// Simulation time.
//
// Time is a strong 64-bit microsecond count from simulation start; the
// paper's plots use a 10 ms time base, and OSEK alarms typically run at
// 1 ms, so microseconds give ample headroom for execution-budget modelling.
#pragma once

#include <compare>
#include <cstdint>
#include <ostream>

namespace easis::sim {

/// A span of simulation time, in microseconds. Value type, totally ordered.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t micros) : micros_(micros) {}

  static constexpr Duration micros(std::int64_t n) { return Duration(n); }
  static constexpr Duration millis(std::int64_t n) { return Duration(n * 1000); }
  static constexpr Duration seconds(std::int64_t n) {
    return Duration(n * 1'000'000);
  }
  static constexpr Duration zero() { return Duration(0); }

  [[nodiscard]] constexpr std::int64_t as_micros() const { return micros_; }
  [[nodiscard]] constexpr double as_millis() const { return micros_ / 1e3; }
  [[nodiscard]] constexpr double as_seconds() const { return micros_ / 1e6; }

  friend constexpr auto operator<=>(Duration, Duration) = default;

  constexpr Duration operator+(Duration rhs) const {
    return Duration(micros_ + rhs.micros_);
  }
  constexpr Duration operator-(Duration rhs) const {
    return Duration(micros_ - rhs.micros_);
  }
  constexpr Duration operator*(std::int64_t k) const {
    return Duration(micros_ * k);
  }
  constexpr Duration operator/(std::int64_t k) const {
    return Duration(micros_ / k);
  }
  constexpr Duration& operator+=(Duration rhs) {
    micros_ += rhs.micros_;
    return *this;
  }
  constexpr Duration& operator-=(Duration rhs) {
    micros_ -= rhs.micros_;
    return *this;
  }

  friend std::ostream& operator<<(std::ostream& os, Duration d) {
    return os << d.micros_ << "us";
  }

 private:
  std::int64_t micros_ = 0;
};

/// An instant of simulation time (microseconds since simulation start).
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t micros) : micros_(micros) {}

  static constexpr SimTime zero() { return SimTime(0); }

  [[nodiscard]] constexpr std::int64_t as_micros() const { return micros_; }
  [[nodiscard]] constexpr double as_millis() const { return micros_ / 1e3; }
  [[nodiscard]] constexpr double as_seconds() const { return micros_ / 1e6; }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  constexpr SimTime operator+(Duration d) const {
    return SimTime(micros_ + d.as_micros());
  }
  constexpr SimTime operator-(Duration d) const {
    return SimTime(micros_ - d.as_micros());
  }
  constexpr Duration operator-(SimTime rhs) const {
    return Duration(micros_ - rhs.micros_);
  }

  friend std::ostream& operator<<(std::ostream& os, SimTime t) {
    return os << t.micros_ << "us";
  }

 private:
  std::int64_t micros_ = 0;
};

}  // namespace easis::sim
