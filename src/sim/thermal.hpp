// First-order thermal model of the ECU (ambient/junction temperature).
//
// Substitute for the validator's climate-chamber environment: the junction
// temperature relaxes towards `ambient + idle_rise + self_heating * load`
// with a single time constant, which is enough to drive the watchdog's
// thermal-derating ladder through realistic ramps. The *sensor* reading is
// modelled separately from the junction so sensor faults (stuck value,
// implausible offset) can be injected without touching the physics.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace easis::sim {

struct ThermalParams {
  /// Ambient temperature the ECU sits in (injectable: thermal ramps raise
  /// it via set_ambient()).
  double ambient_c = 25.0;
  /// Junction rise above ambient at idle.
  double idle_rise_c = 8.0;
  /// Additional junction rise at full CPU load (scaled by load in [0,1]).
  double self_heating_c = 25.0;
  /// First-order time constant of the junction towards its target.
  Duration time_constant = Duration::seconds(2);
  /// Quantisation dither of a live sensor: the reading cycles through
  /// -d, 0, +d around the junction across steps. A healthy sensor
  /// therefore keeps moving even at thermal equilibrium — which is what
  /// lets a stuck-at sensor be told apart from a settled die — and the
  /// period-3 pattern stays visible to supervisors sampling every step
  /// or every other step.
  double sensor_dither_c = 0.1;
};

class ThermalModel {
 public:
  explicit ThermalModel(ThermalParams params = {})
      : params_(params),
        ambient_c_(params.ambient_c),
        junction_c_(params.ambient_c + params.idle_rise_c) {}

  /// Advances the junction by `dt` under CPU load `load01` in [0, 1].
  void step(Duration dt, double load01 = 0.0);

  void set_ambient(double ambient_c) { ambient_c_ = ambient_c; }
  [[nodiscard]] double ambient_c() const { return ambient_c_; }
  /// True junction temperature (the physics).
  [[nodiscard]] double junction_c() const { return junction_c_; }
  /// What the temperature sensor reports: junction + offset + dither, or
  /// the frozen value while the sensor is stuck.
  [[nodiscard]] double sensor_c() const;

  // --- fault injection surface ------------------------------------------------
  /// Freezes the sensor at its current reading (stuck-at fault); the
  /// junction keeps moving underneath.
  void set_sensor_stuck(bool stuck);
  [[nodiscard]] bool sensor_stuck() const { return sensor_stuck_; }
  /// Constant measurement offset (an implausible offset drives the reading
  /// outside the plausibility band).
  void set_sensor_offset(double offset_c) { sensor_offset_c_ = offset_c; }
  [[nodiscard]] double sensor_offset_c() const { return sensor_offset_c_; }

  [[nodiscard]] const ThermalParams& params() const { return params_; }

 private:
  ThermalParams params_;
  double ambient_c_;
  double junction_c_;
  double sensor_offset_c_ = 0.0;
  double dither_c_ = 0.0;
  bool sensor_stuck_ = false;
  double stuck_value_c_ = 0.0;
  std::uint64_t steps_ = 0;
};

}  // namespace easis::sim
