// Diagnostic tester (client) side of the UDS-lite stack.
//
// Sends requests onto a DiagServer's request channel and matches responses
// on its response channel. Transactions are strictly FIFO with one frame
// outstanding at a time: further requests queue until the head transaction
// resolves with a response or a timeout (the callback then receives
// nullopt). The E2E alive counter is per-channel sender state, so exactly
// one tester must own a server's request channel (the health master builds
// one tester per polled ECU for this reason).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>

#include "bus/can.hpp"
#include "bus/e2e.hpp"
#include "diag/protocol.hpp"
#include "sim/engine.hpp"

namespace easis::diag {

struct DiagTesterConfig {
  std::string name = "tester";
  /// Must mirror the target DiagServer's configuration.
  std::uint32_t request_can_id = 0x600;
  std::uint32_t response_can_id = 0x608;
  std::uint16_t request_data_id = 0x60;
  std::uint16_t response_data_id = 0x61;
  /// A transaction with no response within this window times out.
  sim::Duration response_timeout = sim::Duration::millis(20);
};

class DiagTester {
 public:
  /// Invoked exactly once per transaction: with the decoded response, or
  /// with nullopt on timeout.
  using ResponseCallback =
      std::function<void(const std::optional<Response>&)>;

  DiagTester(sim::Engine& engine, bus::CanBus& can,
             DiagTesterConfig config = {});
  DiagTester(const DiagTester&) = delete;
  DiagTester& operator=(const DiagTester&) = delete;

  /// Queues an arbitrary request.
  void send(Request request, ResponseCallback callback);

  // --- convenience wrappers for the supported services ----------------------
  void read_dtc_count(ResponseCallback callback);
  void read_dtcs(ResponseCallback callback);
  void read_freeze_frame(std::uint16_t application, wdg::ErrorType type,
                         ResponseCallback callback);
  void read_data(std::uint16_t did, ResponseCallback callback);
  void clear_dtcs(ResponseCallback callback);
  void tester_present(ResponseCallback callback);
  void ecu_reset(ResponseCallback callback);

  // --- fault hooks (diag-layer injection) -----------------------------------
  /// While set, outgoing SIDs are overwritten with an unassigned service id
  /// *before* E2E protection: the frame is transport-valid, the request is
  /// semantically broken (the server answers NRC serviceNotSupported).
  void set_corrupt_sid(bool corrupt) { corrupt_sid_ = corrupt; }

  // --- introspection --------------------------------------------------------
  [[nodiscard]] std::uint64_t requests_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t responses_received() const { return received_; }
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] const bus::E2EReceiver& receiver() const { return rx_; }
  [[nodiscard]] const DiagTesterConfig& config() const { return config_; }

 private:
  struct Transaction {
    Request request;
    ResponseCallback callback;
  };

  sim::Engine& engine_;
  bus::CanBus& can_;
  DiagTesterConfig config_;
  bus::CanBus::EndpointId endpoint_;
  bus::E2ESender tx_;
  bus::E2EReceiver rx_;
  std::deque<Transaction> queue_;
  bool in_flight_ = false;
  sim::EventId timeout_event_ = 0;
  bool corrupt_sid_ = false;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t timeouts_ = 0;

  void on_frame(const bus::Frame& frame, sim::SimTime now);
  void start_next();
  void resolve(const std::optional<Response>& response);
};

}  // namespace easis::diag
