#include "diag/protocol.hpp"

#include <bit>
#include <cstring>

namespace easis::diag {

std::string_view service_name(std::uint8_t sid) {
  switch (sid) {
    case kSidEcuReset: return "ECUReset";
    case kSidClearDiagnosticInformation: return "ClearDiagnosticInformation";
    case kSidReadDtcInformation: return "ReadDTCInformation";
    case kSidReadDataByIdentifier: return "ReadDataByIdentifier";
    case kSidTesterPresent: return "TesterPresent";
    case kSidNegativeResponse: return "NegativeResponse";
    default: return "UnknownService";
  }
}

std::string_view to_string(Nrc nrc) {
  switch (nrc) {
    case Nrc::kServiceNotSupported: return "serviceNotSupported";
    case Nrc::kSubFunctionNotSupported: return "subFunctionNotSupported";
    case Nrc::kIncorrectMessageLength: return "incorrectMessageLength";
    case Nrc::kConditionsNotCorrect: return "conditionsNotCorrect";
    case Nrc::kRequestOutOfRange: return "requestOutOfRange";
  }
  return "?";
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void put_f32(std::vector<std::uint8_t>& out, double v) {
  put_u32(out, std::bit_cast<std::uint32_t>(static_cast<float>(v)));
}

std::optional<std::uint16_t> get_u16(const std::vector<std::uint8_t>& in,
                                     std::size_t offset) {
  if (in.size() < offset + 2) return std::nullopt;
  return static_cast<std::uint16_t>(in[offset] |
                                    (static_cast<std::uint16_t>(in[offset + 1])
                                     << 8));
}

std::optional<std::uint32_t> get_u32(const std::vector<std::uint8_t>& in,
                                     std::size_t offset) {
  if (in.size() < offset + 4) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in[offset + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

std::optional<double> get_f32(const std::vector<std::uint8_t>& in,
                              std::size_t offset) {
  const auto bits = get_u32(in, offset);
  if (!bits) return std::nullopt;
  return static_cast<double>(std::bit_cast<float>(*bits));
}

std::vector<std::uint8_t> encode_request(const Request& request) {
  std::vector<std::uint8_t> out;
  out.reserve(1 + request.data.size());
  out.push_back(request.sid);
  out.insert(out.end(), request.data.begin(), request.data.end());
  return out;
}

std::optional<Request> decode_request(const std::vector<std::uint8_t>& payload,
                                      std::size_t offset) {
  if (payload.size() <= offset) return std::nullopt;
  Request request;
  request.sid = payload[offset];
  request.data.assign(payload.begin() + static_cast<std::ptrdiff_t>(offset) + 1,
                      payload.end());
  return request;
}

std::vector<std::uint8_t> encode_response(const Response& response) {
  std::vector<std::uint8_t> out;
  if (!response.positive) {
    out = {kSidNegativeResponse, response.sid,
           static_cast<std::uint8_t>(response.nrc)};
    return out;
  }
  out.reserve(1 + response.data.size());
  out.push_back(static_cast<std::uint8_t>(response.sid +
                                          kPositiveResponseOffset));
  out.insert(out.end(), response.data.begin(), response.data.end());
  return out;
}

std::optional<Response> decode_response(
    const std::vector<std::uint8_t>& payload, std::size_t offset) {
  if (payload.size() <= offset) return std::nullopt;
  Response response;
  const std::uint8_t first = payload[offset];
  if (first == kSidNegativeResponse) {
    if (payload.size() < offset + 3) return std::nullopt;
    response.positive = false;
    response.sid = payload[offset + 1];
    response.nrc = static_cast<Nrc>(payload[offset + 2]);
    return response;
  }
  if (first < kPositiveResponseOffset) return std::nullopt;
  response.positive = true;
  response.sid = static_cast<std::uint8_t>(first - kPositiveResponseOffset);
  response.data.assign(payload.begin() + static_cast<std::ptrdiff_t>(offset) +
                           1,
                       payload.end());
  return response;
}

void encode_dtc_record(std::vector<std::uint8_t>& out, const DtcRecord& dtc) {
  put_u16(out, dtc.application);
  out.push_back(static_cast<std::uint8_t>(dtc.type));
  std::uint8_t status = 0;
  if (dtc.active) status |= 0x01;
  if (dtc.has_freeze_frame) status |= 0x02;
  out.push_back(status);
  put_u16(out, dtc.occurrences);
  put_u32(out, dtc.last_seen_ms);
}

namespace {
inline constexpr std::size_t kDtcRecordBytes = 10;

std::optional<DtcRecord> decode_dtc_record(
    const std::vector<std::uint8_t>& data, std::size_t offset) {
  const auto application = get_u16(data, offset);
  if (!application || data.size() < offset + kDtcRecordBytes) {
    return std::nullopt;
  }
  DtcRecord dtc;
  dtc.application = *application;
  dtc.type = static_cast<wdg::ErrorType>(data[offset + 2]);
  dtc.active = (data[offset + 3] & 0x01) != 0;
  dtc.has_freeze_frame = (data[offset + 3] & 0x02) != 0;
  dtc.occurrences = *get_u16(data, offset + 4);
  dtc.last_seen_ms = *get_u32(data, offset + 6);
  return dtc;
}
}  // namespace

std::optional<DtcReadout> decode_dtc_readout(
    const std::vector<std::uint8_t>& data) {
  if (data.size() < 3) return std::nullopt;
  DtcReadout readout;
  const std::uint8_t sub = data[0];
  readout.total = data[1];
  readout.active = data[2];
  if (sub == kReportDtcCount) {
    return data.size() == 3 ? std::optional<DtcReadout>(readout) : std::nullopt;
  }
  if (sub != kReportDtcs) return std::nullopt;
  std::size_t offset = 3;
  while (offset < data.size()) {
    const auto dtc = decode_dtc_record(data, offset);
    if (!dtc) return std::nullopt;  // truncated trailing record
    readout.records.push_back(*dtc);
    offset += kDtcRecordBytes;
  }
  if (readout.records.size() != readout.total) return std::nullopt;
  return readout;
}

std::optional<FreezeFrameReadout> decode_freeze_frame(
    const std::vector<std::uint8_t>& data) {
  // [sub=0x04 | app u16 | type u8 | captured_ms u32 | n u8 | n x signal]
  // signal: [name_len u8 | name bytes | value f32]
  if (data.size() < 9 || data[0] != kReportFreezeFrame) return std::nullopt;
  FreezeFrameReadout frame;
  frame.application = *get_u16(data, 1);
  frame.type = static_cast<wdg::ErrorType>(data[3]);
  frame.captured_ms = *get_u32(data, 4);
  const std::uint8_t count = data[8];
  std::size_t offset = 9;
  for (std::uint8_t i = 0; i < count; ++i) {
    if (offset >= data.size()) return std::nullopt;
    const std::uint8_t name_len = data[offset++];
    if (data.size() < offset + name_len + 4) return std::nullopt;
    std::string name(data.begin() + static_cast<std::ptrdiff_t>(offset),
                     data.begin() +
                         static_cast<std::ptrdiff_t>(offset + name_len));
    offset += name_len;
    frame.signals.emplace_back(std::move(name), *get_f32(data, offset));
    offset += 4;
  }
  if (offset != data.size()) return std::nullopt;
  return frame;
}

}  // namespace easis::diag
