// UDS-lite diagnostic server: one per ECU node.
//
// Listens on the node's request CAN id behind E2E protection, executes the
// supported services against the node's fault memory (DtcStore), Fault
// Management Framework and Software Watchdog, and answers on the response
// CAN id. Damaged requests (failed E2E check) are silently discarded —
// diagnostics ride the same protected transport as safety signals, and a
// corrupted request must not trigger an ECU reset.
//
// Session handling (S3 flavoured): TesterPresent opens a diagnostic
// session; any accepted request refreshes it; privileged services
// (ClearDiagnosticInformation, ECUReset) are refused with NRC
// conditionsNotCorrect outside a session. A session that sees no request
// for `s3_timeout` expires and emits a kDiagSessionExpired event.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "bus/can.hpp"
#include "bus/e2e.hpp"
#include "diag/protocol.hpp"
#include "fmf/dtc.hpp"
#include "fmf/fmf.hpp"
#include "sim/engine.hpp"
#include "wdg/watchdog.hpp"

namespace easis::wdg {
class EnvironmentSupervisionUnit;
class ProcessSupervisionUnit;
}  // namespace easis::wdg

namespace easis::diag {

struct DiagServerConfig {
  std::string name = "diag";
  /// CAN id the server listens on (physical request addressing).
  std::uint32_t request_can_id = 0x600;
  /// CAN id the server answers on.
  std::uint32_t response_can_id = 0x608;
  /// E2E channel identities for the two directions.
  std::uint16_t request_data_id = 0x60;
  std::uint16_t response_data_id = 0x61;
  /// S3 session timeout: a session with no request for this long expires.
  sim::Duration s3_timeout = sim::Duration::millis(500);
  /// Delay between accepting a commanded ECUReset and performing it, so
  /// the positive response wins bus arbitration before the node goes down.
  sim::Duration reset_delay = sim::Duration::millis(2);
};

/// The node-side capabilities the server executes services against. All
/// pointers are non-owning and optional: a service whose backend is absent
/// answers NRC conditionsNotCorrect instead of crashing.
struct DiagBackend {
  fmf::DtcStore* dtcs = nullptr;
  fmf::FaultManagementFramework* fmf = nullptr;
  wdg::SoftwareWatchdog* watchdog = nullptr;
  /// Performs the node's software reset (ECUReset service).
  std::function<void()> ecu_reset;
  /// True while the node cannot serve diagnostics (reset blackout).
  std::function<bool()> offline;
  /// Extra probe for kDidHeartbeatsSent (remote nodes).
  std::function<std::uint64_t()> heartbeats_sent;
  /// Active dependability policy, as (24-bit hash, version) probes for
  /// kDidPolicyHash/kDidPolicyVersion. Kept as probes so the diag layer
  /// stays independent of the policy library.
  std::function<std::uint32_t()> policy_hash;
  std::function<std::uint32_t()> policy_version;
  /// Environmental supervision: temperature and derate-stage identifiers.
  const wdg::EnvironmentSupervisionUnit* environment = nullptr;
  /// Supervised-process client API: transgression-record identifiers.
  const wdg::ProcessSupervisionUnit* process = nullptr;
  /// NVM store for the flash fill/wear identifiers.
  const fmf::NvmStore* nvm = nullptr;
};

class DiagServer {
 public:
  DiagServer(sim::Engine& engine, bus::CanBus& can, DiagBackend backend,
             DiagServerConfig config = {});
  DiagServer(const DiagServer&) = delete;
  DiagServer& operator=(const DiagServer&) = delete;

  /// Registers (or replaces) a ReadDataByIdentifier probe. The standard
  /// watchdog/FMF identifiers are pre-registered from the backend; campaign
  /// harnesses add metric snapshots at kDidMetricBase + i.
  void add_data_identifier(std::uint16_t did, std::string name,
                           std::function<double()> probe);

  // --- fault hooks (diag-layer injection) -----------------------------------
  /// Process requests but never transmit the response (lost response).
  void set_response_drop(bool drop) { response_drop_ = drop; }
  /// Ignore requests entirely, as during a reset blackout. ORed with the
  /// backend's offline() probe.
  void set_blackout(bool blackout) { blackout_ = blackout; }

  // --- introspection --------------------------------------------------------
  [[nodiscard]] bool session_active() const { return session_active_; }
  [[nodiscard]] std::uint64_t requests_accepted() const { return accepted_; }
  [[nodiscard]] std::uint64_t requests_dropped_offline() const {
    return dropped_offline_;
  }
  [[nodiscard]] std::uint64_t responses_sent() const { return responses_; }
  [[nodiscard]] std::uint64_t negative_responses_sent() const {
    return negative_; }
  [[nodiscard]] std::uint64_t responses_suppressed() const {
    return suppressed_;
  }
  [[nodiscard]] std::uint64_t sessions_expired() const { return expired_; }
  [[nodiscard]] const bus::E2EReceiver& receiver() const { return rx_; }
  [[nodiscard]] const DiagServerConfig& config() const { return config_; }

 private:
  struct DataIdentifier {
    std::string name;
    std::function<double()> probe;
  };

  sim::Engine& engine_;
  bus::CanBus& can_;
  DiagBackend backend_;
  DiagServerConfig config_;
  bus::CanBus::EndpointId endpoint_;
  bus::E2EReceiver rx_;
  bus::E2ESender tx_;
  std::map<std::uint16_t, DataIdentifier> dids_;

  bool session_active_ = false;
  sim::EventId session_expiry_event_ = 0;
  bool response_drop_ = false;
  bool blackout_ = false;
  std::uint64_t accepted_ = 0;
  std::uint64_t dropped_offline_ = 0;
  std::uint64_t responses_ = 0;
  std::uint64_t negative_ = 0;
  std::uint64_t suppressed_ = 0;
  std::uint64_t expired_ = 0;

  void register_standard_dids();
  [[nodiscard]] bool offline() const;
  void on_frame(const bus::Frame& frame, sim::SimTime now);
  [[nodiscard]] Response dispatch(const Request& request, sim::SimTime now);
  [[nodiscard]] Response read_dtc_information(const Request& request);
  [[nodiscard]] Response read_data_by_identifier(const Request& request);
  [[nodiscard]] Response clear_diagnostic_information(const Request& request);
  [[nodiscard]] Response ecu_reset(const Request& request);
  [[nodiscard]] Response tester_present(const Request& request);
  void refresh_session(sim::SimTime now);
  void open_session(sim::SimTime now);
  void expire_session();
  void send(const Response& response);
  [[nodiscard]] static Response negative(std::uint8_t sid, Nrc nrc);
};

}  // namespace easis::diag
