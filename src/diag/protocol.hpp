// UDS-lite diagnostic protocol (ISO 14229 flavoured).
//
// The paper's fault chain ends inside the ECU; a deployed EASIS node also
// exposes its fault memory to the outside world. This is the wire half of
// that: a request/response protocol carried over the existing
// E2E-protected bus, shrunk to the services a dependability validator
// needs:
//
//   0x19 ReadDTCInformation        DTC counts, DTC records, freeze frames
//   0x14 ClearDiagnosticInformation  workshop "clear fault memory"
//   0x22 ReadDataByIdentifier      watchdog/TSI counters, metric snapshots
//   0x11 ECUReset                  commanded software reset
//   0x3E TesterPresent             opens/refreshes the diagnostic session
//
// Framing: one request is one bus frame whose application payload (behind
// the 2-byte E2E header) is [SID | service data...]. A positive response
// echoes SID + 0x40; a negative response is [0x7F | original SID | NRC].
// All multi-byte integers are little-endian, matching the platform's
// signal codec.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "wdg/types.hpp"

namespace easis::diag {

// --- service identifiers -----------------------------------------------------
inline constexpr std::uint8_t kSidEcuReset = 0x11;
inline constexpr std::uint8_t kSidClearDiagnosticInformation = 0x14;
inline constexpr std::uint8_t kSidReadDtcInformation = 0x19;
inline constexpr std::uint8_t kSidReadDataByIdentifier = 0x22;
inline constexpr std::uint8_t kSidTesterPresent = 0x3E;
/// Positive responses echo the request SID plus this offset.
inline constexpr std::uint8_t kPositiveResponseOffset = 0x40;
/// First byte of every negative response.
inline constexpr std::uint8_t kSidNegativeResponse = 0x7F;

[[nodiscard]] std::string_view service_name(std::uint8_t sid);

// --- ReadDTCInformation sub-functions ---------------------------------------
inline constexpr std::uint8_t kReportDtcCount = 0x01;
inline constexpr std::uint8_t kReportDtcs = 0x02;
inline constexpr std::uint8_t kReportFreezeFrame = 0x04;

// --- negative response codes -------------------------------------------------
enum class Nrc : std::uint8_t {
  kServiceNotSupported = 0x11,
  kSubFunctionNotSupported = 0x12,
  kIncorrectMessageLength = 0x13,
  kConditionsNotCorrect = 0x22,
  kRequestOutOfRange = 0x31,
};

[[nodiscard]] std::string_view to_string(Nrc nrc);

// --- standard data identifiers (ReadDataByIdentifier) ------------------------
inline constexpr std::uint16_t kDidWatchdogCycles = 0x0100;
inline constexpr std::uint16_t kDidWatchdogErrors = 0x0101;
inline constexpr std::uint16_t kDidEcuHealth = 0x0102;  // 0 ok, 1 faulty
inline constexpr std::uint16_t kDidResetCount = 0x0103;
inline constexpr std::uint16_t kDidStormLatched = 0x0104;
inline constexpr std::uint16_t kDidDtcCount = 0x0105;
inline constexpr std::uint16_t kDidActiveDtcCount = 0x0106;
inline constexpr std::uint16_t kDidHeartbeatsSent = 0x0107;
/// ECU junction temperature in centi-degrees C, signed (environment unit).
inline constexpr std::uint16_t kDidTemperature = 0x0108;
/// Thermal-derating ladder stage: 0 normal, 1 warn, 2 derate, 3 shutdown.
inline constexpr std::uint16_t kDidDerateStage = 0x0109;
/// NVM fault-memory journal fill level in percent (0..100).
inline constexpr std::uint16_t kDidFlashFill = 0x010A;
/// NVM worst-bank erase-cycle wear in percent of the budget (0..100).
inline constexpr std::uint16_t kDidFlashWear = 0x010B;
/// Total deadline transgressions across all supervised sections.
inline constexpr std::uint16_t kDidTransgressions = 0x010C;
/// Active dependability-policy version hash, folded to 24 bits so the
/// value survives the f32 response encoding exactly (policy engine; the
/// fleet health master cross-checks it against the expected fleet policy).
inline constexpr std::uint16_t kDidPolicyHash = 0x010D;
/// Active dependability-policy version number.
inline constexpr std::uint16_t kDidPolicyVersion = 0x010E;
/// Active power mode of a duty-cycled node (PowerMode enum index).
inline constexpr std::uint16_t kDidPowerMode = 0x010F;
/// 24-bit hash of the `[mode.<name>]` overlay currently bound (0 = base
/// policy, no overlay for the active mode) — the hash-verified activation
/// witness of the mode-dependent supervision binding.
inline constexpr std::uint16_t kDidModeOverlayHash = 0x0110;
/// Base for telemetry metric snapshot identifiers (campaign wiring).
inline constexpr std::uint16_t kDidMetricBase = 0x0200;
/// Base for per-section transgression records: section i occupies three
/// consecutive identifiers — base+3i the count, base+3i+1 the worst-case
/// window in microseconds, base+3i+2 the last-occurrence time in ms.
inline constexpr std::uint16_t kDidTransgressionBase = 0x0300;
/// Built-in: 1 while a diagnostic session is active, else 0.
inline constexpr std::uint16_t kDidSessionState = 0xF186;

// --- wire structures ---------------------------------------------------------

/// A decoded request: service id plus the service-specific bytes.
struct Request {
  std::uint8_t sid = 0;
  std::vector<std::uint8_t> data;
};

/// A decoded response. Positive responses carry the service data; negative
/// ones carry the rejected SID and the NRC.
struct Response {
  std::uint8_t sid = 0;  // the *request* SID this answers
  bool positive = true;
  Nrc nrc = Nrc::kServiceNotSupported;  // valid when !positive
  std::vector<std::uint8_t> data;       // valid when positive
};

/// One DTC as it travels in a kReportDtcs response (10 bytes).
struct DtcRecord {
  std::uint16_t application = 0;
  wdg::ErrorType type = wdg::ErrorType::kAliveness;
  bool active = false;
  bool has_freeze_frame = false;
  std::uint16_t occurrences = 0;
  std::uint32_t last_seen_ms = 0;
};

/// Parsed kReportDtcCount / kReportDtcs payloads.
struct DtcReadout {
  std::uint8_t total = 0;
  std::uint8_t active = 0;
  std::vector<DtcRecord> records;
};

/// Parsed kReportFreezeFrame payload: the signal snapshot taken at the
/// DTC's first occurrence.
struct FreezeFrameReadout {
  std::uint16_t application = 0;
  wdg::ErrorType type = wdg::ErrorType::kAliveness;
  std::uint32_t captured_ms = 0;
  std::vector<std::pair<std::string, double>> signals;
};

// --- codec -------------------------------------------------------------------

[[nodiscard]] std::vector<std::uint8_t> encode_request(const Request& request);
[[nodiscard]] std::optional<Request> decode_request(
    const std::vector<std::uint8_t>& payload, std::size_t offset = 0);

[[nodiscard]] std::vector<std::uint8_t> encode_response(
    const Response& response);
[[nodiscard]] std::optional<Response> decode_response(
    const std::vector<std::uint8_t>& payload, std::size_t offset = 0);

/// Appends one 10-byte DTC record to `out`.
void encode_dtc_record(std::vector<std::uint8_t>& out, const DtcRecord& dtc);

/// Parses the data of a positive ReadDTCInformation response (the leading
/// sub-function byte selects the layout). Returns nullopt on a truncated
/// or malformed payload.
[[nodiscard]] std::optional<DtcReadout> decode_dtc_readout(
    const std::vector<std::uint8_t>& data);
[[nodiscard]] std::optional<FreezeFrameReadout> decode_freeze_frame(
    const std::vector<std::uint8_t>& data);

/// Little-endian scalar helpers shared by the codec and the server.
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v);
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
void put_f32(std::vector<std::uint8_t>& out, double v);
[[nodiscard]] std::optional<std::uint16_t> get_u16(
    const std::vector<std::uint8_t>& in, std::size_t offset);
[[nodiscard]] std::optional<std::uint32_t> get_u32(
    const std::vector<std::uint8_t>& in, std::size_t offset);
[[nodiscard]] std::optional<double> get_f32(
    const std::vector<std::uint8_t>& in, std::size_t offset);

}  // namespace easis::diag
