// Fleet health monitoring master.
//
// The diagnostic counterpart of the node supervisor: a master that
// periodically polls every registered ECU's DiagServer (DTC count + ECU
// health data identifier) and maintains a fleet health table. An ECU whose
// poll resolves entirely in timeouts is flagged *silent* — the diagnostic
// stack's detection of a dead or unreachable node — and flagged again as
// *recovered* on the first successful poll afterwards. Both transitions
// emit telemetry events (kDiagNodeSilent is a detection kind) and invoke
// the registered state callback.
//
// Every polling period the master polls the whole fleet in registration
// order (round-robin within the cycle), so a silenced node is flagged
// within one polling period plus the response timeout.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "diag/tester.hpp"

namespace easis::diag {

struct HealthMonitorConfig {
  /// One full fleet poll per period.
  sim::Duration poll_period = sim::Duration::millis(100);
  /// Per-transaction response timeout handed to the internal testers.
  sim::Duration response_timeout = sim::Duration::millis(20);
  /// Poll cycles that must time out completely before a node is declared
  /// silent (1 = first fully-dead cycle flags it).
  std::uint32_t silent_after = 1;
  /// Expected fleet dependability-policy hash (24-bit, kDidPolicyHash).
  /// When non-zero the master reads every ECU's active policy hash each
  /// poll and flags mismatches (kPolicyMismatch telemetry); 0 disables
  /// the cross-check.
  std::uint32_t expected_policy_hash = 0;
};

/// One row of the fleet health table.
struct FleetEntry {
  std::string name;
  enum class State : std::uint8_t { kUnknown, kAlive, kSilent } state =
      State::kUnknown;
  sim::SimTime last_response;
  std::uint32_t polls = 0;
  std::uint32_t consecutive_timeout_cycles = 0;
  std::uint32_t silent_transitions = 0;
  std::uint32_t recoveries = 0;
  double dtc_total = 0;
  double dtc_active = 0;
  /// kDidEcuHealth read-out: 0 ok, 1 faulty (latest successful poll).
  double health = 0;
  /// kDidPolicyHash read-out (latest successful poll; 0 = never read).
  std::uint32_t policy_hash = 0;
  /// False while the last read policy hash differs from the expected
  /// fleet hash. Starts true: unknown is not a mismatch.
  bool policy_ok = true;
  /// Poll cycles whose policy read-out mismatched the expected hash.
  std::uint32_t policy_mismatches = 0;
};

[[nodiscard]] std::string_view to_string(FleetEntry::State state);

class HealthMonitorMaster {
 public:
  /// `name, silent, now`: invoked on every silent/recovered transition.
  using StateCallback =
      std::function<void(const std::string&, bool, sim::SimTime)>;

  HealthMonitorMaster(sim::Engine& engine, bus::CanBus& can,
                      HealthMonitorConfig config = {});
  HealthMonitorMaster(const HealthMonitorMaster&) = delete;
  HealthMonitorMaster& operator=(const HealthMonitorMaster&) = delete;

  /// Registers an ECU to poll; `client` mirrors the ECU's DiagServer
  /// channel configuration (timeout is overridden from the master config).
  /// The master owns one DiagTester per ECU. Register before start().
  void register_ecu(const std::string& name, DiagTesterConfig client);

  void set_state_callback(StateCallback callback) {
    state_callback_ = std::move(callback);
  }

  /// Schedules the periodic fleet poll (first cycle one period from now).
  void start();

  // --- introspection --------------------------------------------------------
  [[nodiscard]] const std::vector<FleetEntry>& fleet() const { return fleet_; }
  [[nodiscard]] const FleetEntry* entry(const std::string& name) const;
  [[nodiscard]] std::size_t silent_count() const;
  /// ECUs whose last policy read-out mismatched the expected fleet hash.
  [[nodiscard]] std::size_t policy_mismatch_count() const;
  [[nodiscard]] std::uint64_t poll_cycles() const { return cycles_; }
  [[nodiscard]] const HealthMonitorConfig& config() const { return config_; }

  /// Renders the fleet health table (ControlDesk read-out).
  void write_table(std::ostream& out) const;

 private:
  struct Ecu {
    std::unique_ptr<DiagTester> tester;
    /// Per-cycle bookkeeping: transactions resolved / responses seen.
    std::uint32_t cycle_resolved = 0;
    std::uint32_t cycle_responses = 0;
    /// Transactions issued for the current poll cycle (2, or 3 when the
    /// policy cross-check is enabled).
    std::uint32_t cycle_expected = 0;
  };

  sim::Engine& engine_;
  bus::CanBus& can_;
  HealthMonitorConfig config_;
  std::vector<FleetEntry> fleet_;
  std::vector<Ecu> ecus_;
  StateCallback state_callback_;
  bool started_ = false;
  std::uint64_t cycles_ = 0;

  void poll_cycle();
  void poll_ecu(std::size_t index);
  void on_transaction(std::size_t index,
                      const std::optional<Response>& response);
  void on_policy_readout(std::size_t index, std::uint32_t hash);
  void finish_cycle(std::size_t index, sim::SimTime now);
};

}  // namespace easis::diag
