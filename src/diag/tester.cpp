#include "diag/tester.hpp"

#include <utility>

namespace easis::diag {

namespace {
/// SID used for the corrupted-request fault: not assigned to any service.
inline constexpr std::uint8_t kCorruptSid = 0xBB;
}  // namespace

DiagTester::DiagTester(sim::Engine& engine, bus::CanBus& can,
                       DiagTesterConfig config)
    : engine_(engine),
      can_(can),
      config_(std::move(config)),
      endpoint_(can.attach(config_.name,
                           [this](const bus::Frame& frame, sim::SimTime now) {
                             on_frame(frame, now);
                           })),
      tx_(bus::E2EConfig{config_.request_data_id, 1}),
      rx_(bus::E2EConfig{config_.response_data_id,
                         bus::kE2ECounterModulo - 1}) {}

void DiagTester::send(Request request, ResponseCallback callback) {
  queue_.push_back(Transaction{std::move(request), std::move(callback)});
  if (!in_flight_) start_next();
}

void DiagTester::read_dtc_count(ResponseCallback callback) {
  send(Request{kSidReadDtcInformation, {kReportDtcCount}},
       std::move(callback));
}

void DiagTester::read_dtcs(ResponseCallback callback) {
  send(Request{kSidReadDtcInformation, {kReportDtcs}}, std::move(callback));
}

void DiagTester::read_freeze_frame(std::uint16_t application,
                                   wdg::ErrorType type,
                                   ResponseCallback callback) {
  Request request{kSidReadDtcInformation, {kReportFreezeFrame}};
  put_u16(request.data, application);
  request.data.push_back(static_cast<std::uint8_t>(type));
  send(std::move(request), std::move(callback));
}

void DiagTester::read_data(std::uint16_t did, ResponseCallback callback) {
  Request request{kSidReadDataByIdentifier, {}};
  put_u16(request.data, did);
  send(std::move(request), std::move(callback));
}

void DiagTester::clear_dtcs(ResponseCallback callback) {
  send(Request{kSidClearDiagnosticInformation, {}}, std::move(callback));
}

void DiagTester::tester_present(ResponseCallback callback) {
  send(Request{kSidTesterPresent, {0x00}}, std::move(callback));
}

void DiagTester::ecu_reset(ResponseCallback callback) {
  send(Request{kSidEcuReset, {0x01}}, std::move(callback));
}

void DiagTester::start_next() {
  if (queue_.empty()) return;
  in_flight_ = true;
  Request wire = queue_.front().request;
  if (corrupt_sid_) wire.sid = kCorruptSid;
  bus::Frame frame;
  frame.id = config_.request_can_id;
  frame.payload = encode_request(wire);
  tx_.protect(frame);
  ++sent_;
  can_.transmit(endpoint_, frame);
  timeout_event_ = engine_.schedule_in(
      config_.response_timeout,
      [this] {
        timeout_event_ = 0;
        ++timeouts_;
        resolve(std::nullopt);
      },
      sim::EventPriority::kMonitor);
}

void DiagTester::on_frame(const bus::Frame& frame, sim::SimTime now) {
  (void)now;
  if (frame.id != config_.response_can_id) return;
  if (rx_.check(frame) != bus::E2EStatus::kOk) return;  // silent discard
  if (!in_flight_) return;  // late response after timeout: drop
  const auto response = decode_response(frame.payload, bus::kE2EHeaderBytes);
  if (!response) return;
  // A corrupted-SID request is answered for the wire SID; accept the
  // response for the transaction at the head either way.
  if (!corrupt_sid_ && response->sid != queue_.front().request.sid) return;
  if (timeout_event_ != 0) {
    engine_.cancel(timeout_event_);
    timeout_event_ = 0;
  }
  ++received_;
  resolve(*response);
}

void DiagTester::resolve(const std::optional<Response>& response) {
  Transaction transaction = std::move(queue_.front());
  queue_.pop_front();
  in_flight_ = false;
  if (transaction.callback) transaction.callback(response);
  if (!in_flight_ && !queue_.empty()) start_next();
}

}  // namespace easis::diag
