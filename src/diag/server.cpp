#include "diag/server.hpp"

#include <algorithm>
#include <utility>

#include "telemetry/event_bus.hpp"
#include "wdg/env_monitor.hpp"
#include "wdg/process_supervisor.hpp"

namespace easis::diag {

namespace {

void emit_event(sim::SimTime now, telemetry::EventKind kind,
                std::string detail) {
  if (!telemetry::enabled()) return;
  telemetry::Event event;
  event.time = now;
  event.component = telemetry::Component::kDiag;
  event.kind = kind;
  event.detail = std::move(detail);
  telemetry::emit(std::move(event));
}

}  // namespace

DiagServer::DiagServer(sim::Engine& engine, bus::CanBus& can,
                       DiagBackend backend, DiagServerConfig config)
    : engine_(engine),
      can_(can),
      backend_(std::move(backend)),
      config_(std::move(config)),
      endpoint_(can.attach(config_.name,
                           [this](const bus::Frame& frame, sim::SimTime now) {
                             on_frame(frame, now);
                           })),
      rx_(bus::E2EConfig{config_.request_data_id, bus::kE2ECounterModulo - 1}),
      tx_(bus::E2EConfig{config_.response_data_id, 1}) {
  register_standard_dids();
}

void DiagServer::register_standard_dids() {
  if (backend_.watchdog != nullptr) {
    auto* wdg = backend_.watchdog;
    add_data_identifier(kDidWatchdogCycles, "wdg_cycles", [wdg] {
      return static_cast<double>(wdg->cycles_run());
    });
    add_data_identifier(kDidWatchdogErrors, "wdg_errors", [wdg] {
      return static_cast<double>(wdg->errors_reported());
    });
    add_data_identifier(kDidEcuHealth, "ecu_health", [wdg] {
      return wdg->ecu_health() == wdg::Health::kOk ? 0.0 : 1.0;
    });
  }
  if (backend_.fmf != nullptr) {
    auto* fmf = backend_.fmf;
    add_data_identifier(kDidResetCount, "ecu_resets", [fmf] {
      return static_cast<double>(fmf->ecu_resets_performed());
    });
    add_data_identifier(kDidStormLatched, "storm_latched", [fmf] {
      return fmf->storm_latched() ? 1.0 : 0.0;
    });
  }
  if (backend_.dtcs != nullptr) {
    auto* dtcs = backend_.dtcs;
    add_data_identifier(kDidDtcCount, "dtc_count", [dtcs] {
      return static_cast<double>(dtcs->count());
    });
    add_data_identifier(kDidActiveDtcCount, "active_dtc_count", [dtcs] {
      return static_cast<double>(dtcs->active_count());
    });
  }
  if (backend_.heartbeats_sent) {
    auto probe = backend_.heartbeats_sent;
    add_data_identifier(kDidHeartbeatsSent, "heartbeats_sent", [probe] {
      return static_cast<double>(probe());
    });
  }
  if (backend_.policy_hash) {
    auto probe = backend_.policy_hash;
    add_data_identifier(kDidPolicyHash, "policy_hash", [probe] {
      return static_cast<double>(probe());
    });
  }
  if (backend_.policy_version) {
    auto probe = backend_.policy_version;
    add_data_identifier(kDidPolicyVersion, "policy_version", [probe] {
      return static_cast<double>(probe());
    });
  }
  if (backend_.environment != nullptr) {
    const auto* env = backend_.environment;
    add_data_identifier(kDidTemperature, "temperature_cdeg", [env] {
      return env->temperature_c() * 100.0;
    });
    add_data_identifier(kDidDerateStage, "derate_stage", [env] {
      return static_cast<double>(env->stage());
    });
  }
  if (backend_.nvm != nullptr) {
    const auto* nvm = backend_.nvm;
    add_data_identifier(kDidFlashFill, "flash_fill_pct", [nvm] {
      return nvm->fill_level() * 100.0;
    });
    add_data_identifier(kDidFlashWear, "flash_wear_pct", [nvm] {
      return nvm->wear_level() * 100.0;
    });
  }
  if (backend_.process != nullptr) {
    const auto* psu = backend_.process;
    add_data_identifier(kDidTransgressions, "transgressions", [psu] {
      return static_cast<double>(psu->transgressions());
    });
    for (std::size_t i = 0; i < psu->section_count(); ++i) {
      const auto base =
          static_cast<std::uint16_t>(kDidTransgressionBase + 3 * i);
      const std::string& section = psu->record(i).section;
      add_data_identifier(base, section + "_count", [psu, i] {
        return static_cast<double>(psu->record(i).count);
      });
      add_data_identifier(static_cast<std::uint16_t>(base + 1),
                          section + "_worst_us", [psu, i] {
                            return static_cast<double>(
                                psu->record(i).worst.as_micros());
                          });
      add_data_identifier(static_cast<std::uint16_t>(base + 2),
                          section + "_last_ms", [psu, i] {
                            return static_cast<double>(
                                psu->record(i).last_at.as_millis());
                          });
    }
  }
  add_data_identifier(kDidSessionState, "session_state",
                      [this] { return session_active_ ? 1.0 : 0.0; });
}

void DiagServer::add_data_identifier(std::uint16_t did, std::string name,
                                     std::function<double()> probe) {
  dids_[did] = DataIdentifier{std::move(name), std::move(probe)};
}

bool DiagServer::offline() const {
  if (blackout_) return true;
  return backend_.offline && backend_.offline();
}

void DiagServer::on_frame(const bus::Frame& frame, sim::SimTime now) {
  if (frame.id != config_.request_can_id) return;
  if (offline()) {
    ++dropped_offline_;
    return;
  }
  if (rx_.check(frame) != bus::E2EStatus::kOk) return;  // silent discard
  const auto request = decode_request(frame.payload, bus::kE2EHeaderBytes);
  if (!request) return;
  ++accepted_;
  emit_event(now, telemetry::EventKind::kDiagRequest,
             config_.name + " " + std::string(service_name(request->sid)));
  const Response response = dispatch(*request, now);
  if (session_active_) refresh_session(now);
  send(response);
}

Response DiagServer::dispatch(const Request& request, sim::SimTime now) {
  switch (request.sid) {
    case kSidReadDtcInformation:
      return read_dtc_information(request);
    case kSidReadDataByIdentifier:
      return read_data_by_identifier(request);
    case kSidClearDiagnosticInformation:
      if (!session_active_) {
        return negative(request.sid, Nrc::kConditionsNotCorrect);
      }
      return clear_diagnostic_information(request);
    case kSidEcuReset:
      if (!session_active_) {
        return negative(request.sid, Nrc::kConditionsNotCorrect);
      }
      return ecu_reset(request);
    case kSidTesterPresent: {
      const Response response = tester_present(request);
      if (response.positive) open_session(now);
      return response;
    }
    default:
      return negative(request.sid, Nrc::kServiceNotSupported);
  }
}

Response DiagServer::read_dtc_information(const Request& request) {
  if (request.data.size() < 1) {
    return negative(request.sid, Nrc::kIncorrectMessageLength);
  }
  if (backend_.dtcs == nullptr) {
    return negative(request.sid, Nrc::kConditionsNotCorrect);
  }
  const std::uint8_t sub = request.data[0];
  Response response{request.sid, true, Nrc::kServiceNotSupported, {}};
  switch (sub) {
    case kReportDtcCount:
    case kReportDtcs: {
      if (request.data.size() != 1) {
        return negative(request.sid, Nrc::kIncorrectMessageLength);
      }
      const auto entries = backend_.dtcs->entries();
      response.data.push_back(sub);
      response.data.push_back(
          static_cast<std::uint8_t>(std::min<std::size_t>(entries.size(),
                                                          0xFF)));
      response.data.push_back(static_cast<std::uint8_t>(
          std::min<std::size_t>(backend_.dtcs->active_count(), 0xFF)));
      if (sub == kReportDtcs) {
        for (const auto& entry : entries) {
          DtcRecord dtc;
          dtc.application =
              static_cast<std::uint16_t>(entry.key.application.value());
          dtc.type = entry.key.type;
          dtc.active = entry.active;
          dtc.has_freeze_frame = entry.freeze_frame.has_value();
          dtc.occurrences = static_cast<std::uint16_t>(
              std::min<std::uint32_t>(entry.occurrences, 0xFFFF));
          dtc.last_seen_ms = static_cast<std::uint32_t>(
              entry.last_seen.as_micros() / 1000);
          encode_dtc_record(response.data, dtc);
        }
      }
      return response;
    }
    case kReportFreezeFrame: {
      // [sub | app u16 | type u8]
      if (request.data.size() != 4) {
        return negative(request.sid, Nrc::kIncorrectMessageLength);
      }
      fmf::DtcKey key;
      key.application = ApplicationId{*get_u16(request.data, 1)};
      key.type = static_cast<wdg::ErrorType>(request.data[3]);
      const auto* entry = backend_.dtcs->entry(key);
      if (entry == nullptr || !entry->freeze_frame.has_value()) {
        return negative(request.sid, Nrc::kRequestOutOfRange);
      }
      const auto& frame = *entry->freeze_frame;
      response.data.push_back(kReportFreezeFrame);
      put_u16(response.data,
              static_cast<std::uint16_t>(entry->key.application.value()));
      response.data.push_back(static_cast<std::uint8_t>(entry->key.type));
      put_u32(response.data, static_cast<std::uint32_t>(
                                 frame.captured_at.as_micros() / 1000));
      response.data.push_back(static_cast<std::uint8_t>(
          std::min<std::size_t>(frame.signals.size(), 0xFF)));
      for (const auto& [name, value] : frame.signals) {
        response.data.push_back(static_cast<std::uint8_t>(
            std::min<std::size_t>(name.size(), 0xFF)));
        for (std::size_t i = 0; i < name.size() && i < 0xFF; ++i) {
          response.data.push_back(static_cast<std::uint8_t>(name[i]));
        }
        put_f32(response.data, value);
      }
      return response;
    }
    default:
      return negative(request.sid, Nrc::kSubFunctionNotSupported);
  }
}

Response DiagServer::read_data_by_identifier(const Request& request) {
  if (request.data.size() != 2) {
    return negative(request.sid, Nrc::kIncorrectMessageLength);
  }
  const std::uint16_t did = *get_u16(request.data, 0);
  const auto it = dids_.find(did);
  if (it == dids_.end()) {
    return negative(request.sid, Nrc::kRequestOutOfRange);
  }
  Response response{request.sid, true, Nrc::kServiceNotSupported, {}};
  put_u16(response.data, did);
  put_f32(response.data, it->second.probe());
  return response;
}

Response DiagServer::clear_diagnostic_information(const Request& request) {
  if (!request.data.empty()) {
    return negative(request.sid, Nrc::kIncorrectMessageLength);
  }
  if (backend_.dtcs == nullptr) {
    return negative(request.sid, Nrc::kConditionsNotCorrect);
  }
  backend_.dtcs->clear();
  // Commit the cleared memory so the clear survives the next reset.
  if (backend_.fmf != nullptr) backend_.fmf->persist();
  return Response{request.sid, true, Nrc::kServiceNotSupported, {}};
}

Response DiagServer::ecu_reset(const Request& request) {
  if (request.data.size() != 1) {
    return negative(request.sid, Nrc::kIncorrectMessageLength);
  }
  if (!backend_.ecu_reset) {
    return negative(request.sid, Nrc::kConditionsNotCorrect);
  }
  const std::uint8_t reset_type = request.data[0];
  if (reset_type != 0x01) {
    return negative(request.sid, Nrc::kSubFunctionNotSupported);
  }
  // Answer first, reset later: the response must win arbitration before
  // the node enters its reboot blackout.
  auto reset = backend_.ecu_reset;
  engine_.schedule_in(config_.reset_delay, [reset] { reset(); },
                      sim::EventPriority::kMonitor);
  return Response{request.sid, true, Nrc::kServiceNotSupported, {reset_type}};
}

Response DiagServer::tester_present(const Request& request) {
  if (request.data.size() != 1 || request.data[0] != 0x00) {
    return negative(request.sid, Nrc::kSubFunctionNotSupported);
  }
  return Response{request.sid, true, Nrc::kServiceNotSupported, {0x00}};
}

void DiagServer::open_session(sim::SimTime now) {
  session_active_ = true;
  refresh_session(now);
}

void DiagServer::refresh_session(sim::SimTime now) {
  if (session_expiry_event_ != 0) engine_.cancel(session_expiry_event_);
  session_expiry_event_ = engine_.schedule_at(
      now + config_.s3_timeout, [this] { expire_session(); },
      sim::EventPriority::kMonitor);
}

void DiagServer::expire_session() {
  session_expiry_event_ = 0;
  if (!session_active_) return;
  session_active_ = false;
  ++expired_;
  emit_event(engine_.now(), telemetry::EventKind::kDiagSessionExpired,
             config_.name);
}

void DiagServer::send(const Response& response) {
  if (!response.positive) ++negative_;
  if (response_drop_) {
    ++suppressed_;
    return;
  }
  bus::Frame frame;
  frame.id = config_.response_can_id;
  frame.payload = encode_response(response);
  tx_.protect(frame);
  ++responses_;
  emit_event(engine_.now(), telemetry::EventKind::kDiagResponse,
             config_.name + " " + std::string(service_name(response.sid)) +
                 (response.positive
                      ? std::string(" ok")
                      : " nrc=" + std::string(to_string(response.nrc))));
  can_.transmit(endpoint_, frame);
}

Response DiagServer::negative(std::uint8_t sid, Nrc nrc) {
  Response response;
  response.sid = sid;
  response.positive = false;
  response.nrc = nrc;
  return response;
}

}  // namespace easis::diag
