#include "diag/health_master.hpp"

#include <iomanip>
#include <utility>

#include "telemetry/event_bus.hpp"

namespace easis::diag {

namespace {
void emit_transition(sim::SimTime now, bool silent, const std::string& name) {
  if (!telemetry::enabled()) return;
  telemetry::Event event;
  event.time = now;
  event.component = telemetry::Component::kDiag;
  event.kind = silent ? telemetry::EventKind::kDiagNodeSilent
                      : telemetry::EventKind::kDiagNodeRecovered;
  event.detail = name;
  telemetry::emit(std::move(event));
}

void emit_policy_mismatch(sim::SimTime now, const std::string& name,
                          std::uint32_t seen, std::uint32_t expected) {
  if (!telemetry::enabled()) return;
  telemetry::Event event;
  event.time = now;
  event.component = telemetry::Component::kDiag;
  event.kind = telemetry::EventKind::kPolicyMismatch;
  event.detail = name + ": policy hash " + std::to_string(seen) +
                 " != expected " + std::to_string(expected);
  telemetry::emit(std::move(event));
}
}  // namespace

std::string_view to_string(FleetEntry::State state) {
  switch (state) {
    case FleetEntry::State::kUnknown: return "unknown";
    case FleetEntry::State::kAlive: return "alive";
    case FleetEntry::State::kSilent: return "silent";
  }
  return "?";
}

HealthMonitorMaster::HealthMonitorMaster(sim::Engine& engine, bus::CanBus& can,
                                         HealthMonitorConfig config)
    : engine_(engine), can_(can), config_(config) {}

void HealthMonitorMaster::register_ecu(const std::string& name,
                                       DiagTesterConfig client) {
  client.name = "health_master:" + name;
  client.response_timeout = config_.response_timeout;
  FleetEntry entry;
  entry.name = name;
  fleet_.push_back(std::move(entry));
  Ecu ecu;
  ecu.tester = std::make_unique<DiagTester>(engine_, can_, client);
  ecus_.push_back(std::move(ecu));
}

void HealthMonitorMaster::start() {
  if (started_) return;
  started_ = true;
  engine_.schedule_in(config_.poll_period, [this] { poll_cycle(); },
                      sim::EventPriority::kMonitor);
}

void HealthMonitorMaster::poll_cycle() {
  ++cycles_;
  for (std::size_t i = 0; i < ecus_.size(); ++i) poll_ecu(i);
  engine_.schedule_in(config_.poll_period, [this] { poll_cycle(); },
                      sim::EventPriority::kMonitor);
}

void HealthMonitorMaster::poll_ecu(std::size_t index) {
  Ecu& ecu = ecus_[index];
  FleetEntry& entry = fleet_[index];
  ++entry.polls;
  ecu.cycle_resolved = 0;
  ecu.cycle_responses = 0;
  ecu.cycle_expected = config_.expected_policy_hash != 0 ? 3 : 2;
  ecu.tester->read_dtc_count(
      [this, index](const std::optional<Response>& response) {
        on_transaction(index, response);
        if (response && response->positive) {
          const auto readout = decode_dtc_readout(response->data);
          if (readout) {
            fleet_[index].dtc_total = readout->total;
            fleet_[index].dtc_active = readout->active;
          }
        }
      });
  ecu.tester->read_data(
      kDidEcuHealth, [this, index](const std::optional<Response>& response) {
        on_transaction(index, response);
        if (response && response->positive) {
          const auto value = get_f32(response->data, 2);
          if (value) fleet_[index].health = *value;
        }
      });
  if (config_.expected_policy_hash != 0) {
    ecu.tester->read_data(
        kDidPolicyHash, [this, index](const std::optional<Response>& response) {
          on_transaction(index, response);
          if (response && response->positive) {
            const auto value = get_f32(response->data, 2);
            if (value) on_policy_readout(index, static_cast<std::uint32_t>(*value));
          }
        });
  }
}

void HealthMonitorMaster::on_policy_readout(std::size_t index,
                                            std::uint32_t hash) {
  FleetEntry& entry = fleet_[index];
  entry.policy_hash = hash;
  const bool ok = hash == config_.expected_policy_hash;
  if (!ok) {
    ++entry.policy_mismatches;
    if (entry.policy_ok) {
      // Transition into mismatch: the node runs a different policy than
      // the fleet expects.
      emit_policy_mismatch(engine_.now(), entry.name, hash,
                           config_.expected_policy_hash);
    }
  }
  entry.policy_ok = ok;
}

void HealthMonitorMaster::on_transaction(
    std::size_t index, const std::optional<Response>& response) {
  Ecu& ecu = ecus_[index];
  ++ecu.cycle_resolved;
  if (response.has_value()) ++ecu.cycle_responses;
  if (ecu.cycle_resolved >= ecu.cycle_expected) {
    finish_cycle(index, engine_.now());
  }
}

void HealthMonitorMaster::finish_cycle(std::size_t index, sim::SimTime now) {
  Ecu& ecu = ecus_[index];
  FleetEntry& entry = fleet_[index];
  if (ecu.cycle_responses == 0) {
    // Fully dead poll: every transaction of the cycle timed out.
    ++entry.consecutive_timeout_cycles;
    if (entry.state != FleetEntry::State::kSilent &&
        entry.consecutive_timeout_cycles >= config_.silent_after) {
      entry.state = FleetEntry::State::kSilent;
      ++entry.silent_transitions;
      emit_transition(now, true, entry.name);
      if (state_callback_) state_callback_(entry.name, true, now);
    }
    return;
  }
  entry.consecutive_timeout_cycles = 0;
  entry.last_response = now;
  const bool was_silent = entry.state == FleetEntry::State::kSilent;
  entry.state = FleetEntry::State::kAlive;
  if (was_silent) {
    ++entry.recoveries;
    emit_transition(now, false, entry.name);
    if (state_callback_) state_callback_(entry.name, false, now);
  }
}

const FleetEntry* HealthMonitorMaster::entry(const std::string& name) const {
  for (const auto& e : fleet_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::size_t HealthMonitorMaster::policy_mismatch_count() const {
  std::size_t count = 0;
  for (const auto& e : fleet_) {
    if (!e.policy_ok) ++count;
  }
  return count;
}

std::size_t HealthMonitorMaster::silent_count() const {
  std::size_t count = 0;
  for (const auto& e : fleet_) {
    if (e.state == FleetEntry::State::kSilent) ++count;
  }
  return count;
}

void HealthMonitorMaster::write_table(std::ostream& out) const {
  out << "fleet health (" << cycles_ << " poll cycles)\n";
  out << std::left << std::setw(16) << "  ecu" << std::setw(9) << "state"
      << std::setw(7) << "polls" << std::setw(6) << "dtc" << std::setw(8)
      << "active" << std::setw(8) << "health" << std::setw(8) << "silent"
      << "last_response\n";
  for (const auto& e : fleet_) {
    out << "  " << std::left << std::setw(14) << e.name << std::setw(9)
        << to_string(e.state) << std::setw(7) << e.polls << std::setw(6)
        << e.dtc_total << std::setw(8) << e.dtc_active << std::setw(8)
        << e.health << std::setw(8) << e.silent_transitions << e.last_response
        << "\n";
  }
}

}  // namespace easis::diag
