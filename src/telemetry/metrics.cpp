#include "telemetry/metrics.hpp"

#include <sstream>
#include <stdexcept>

namespace easis::telemetry {

namespace {

// Default ostream formatting (6 significant digits) — deterministic and
// shared by both export formats.
std::string render(double value) {
  std::ostringstream out;
  out << value;
  return out.str();
}

std::string braced(const std::string& labels) {
  return labels.empty() ? "" : "{" + labels + "}";
}

std::string with_le(const std::string& labels, const std::string& le) {
  return "{" + (labels.empty() ? "" : labels + ",") + "le=\"" + le + "\"}";
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1, 0) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: needs at least one upper bound");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument(
          "Histogram: upper bounds must be strictly ascending");
    }
  }
}

void Histogram::observe(double value) {
  std::size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  ++buckets_[i];
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
  sum_ += value;
}

std::uint64_t Histogram::cumulative_count(std::size_t i) const {
  std::uint64_t total = 0;
  for (std::size_t b = 0; b <= i && b < buckets_.size(); ++b) {
    total += buckets_[b];
  }
  return total;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& labels) {
  return counters_[Key{name, labels}];
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& labels) {
  return gauges_[Key{name, labels}];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& labels,
                                      std::vector<double> upper_bounds) {
  auto it = histograms_.find(Key{name, labels});
  if (it == histograms_.end()) {
    it = histograms_.emplace(Key{name, labels},
                             Histogram(std::move(upper_bounds)))
             .first;
  }
  return it->second;
}

void MetricsRegistry::write_prometheus(std::ostream& out) const {
  // One # TYPE line per metric name; the maps are (name, labels)-sorted so
  // all label variants of a name are contiguous.
  std::string typed;
  auto type_line = [&](const std::string& name, const char* type) {
    if (typed != name) {
      out << "# TYPE " << name << ' ' << type << '\n';
      typed = name;
    }
  };
  for (const auto& [key, metric] : counters_) {
    type_line(key.first, "counter");
    out << key.first << braced(key.second) << ' ' << metric.value() << '\n';
  }
  typed.clear();
  for (const auto& [key, metric] : gauges_) {
    type_line(key.first, "gauge");
    out << key.first << braced(key.second) << ' ' << render(metric.value())
        << '\n';
  }
  typed.clear();
  for (const auto& [key, metric] : histograms_) {
    type_line(key.first, "histogram");
    const auto& bounds = metric.upper_bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      out << key.first << "_bucket" << with_le(key.second, render(bounds[i]))
          << ' ' << metric.cumulative_count(i) << '\n';
    }
    out << key.first << "_bucket" << with_le(key.second, "+Inf") << ' '
        << metric.count() << '\n';
    out << key.first << "_sum" << braced(key.second) << ' '
        << render(metric.sum()) << '\n';
    out << key.first << "_count" << braced(key.second) << ' '
        << metric.count() << '\n';
  }
}

void MetricsRegistry::write_csv(std::ostream& out) const {
  out << "metric,labels,field,value\n";
  // The labels column holds commas and quotes, so it is CSV-quoted (inner
  // quotes doubled); an empty label set stays an empty unquoted field.
  auto row = [&](const std::string& name, const std::string& labels,
                 const std::string& field, const std::string& value) {
    out << name << ',';
    if (!labels.empty()) {
      out << '"';
      for (const char c : labels) {
        if (c == '"') out << "\"\"";
        else out << c;
      }
      out << '"';
    }
    out << ',' << field << ',' << value << '\n';
  };
  for (const auto& [key, metric] : counters_) {
    row(key.first, key.second, "value", std::to_string(metric.value()));
  }
  for (const auto& [key, metric] : gauges_) {
    row(key.first, key.second, "value", render(metric.value()));
  }
  for (const auto& [key, metric] : histograms_) {
    const auto& bounds = metric.upper_bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      row(key.first, key.second, "le_" + render(bounds[i]),
          std::to_string(metric.cumulative_count(i)));
    }
    row(key.first, key.second, "le_inf", std::to_string(metric.count()));
    row(key.first, key.second, "sum", render(metric.sum()));
    row(key.first, key.second, "count", std::to_string(metric.count()));
    // One-line digest for humans scanning the CSV: the whole distribution
    // summary without cross-referencing the bucket rows.
    row(key.first, key.second, "summary",
        "count=" + std::to_string(metric.count()) +
            ";sum=" + render(metric.sum()) + ";min=" + render(metric.min()) +
            ";max=" + render(metric.max()));
  }
}

}  // namespace easis::telemetry
