// Event bus with pluggable sinks and ambient per-run scoping.
//
// The platform components (injector, watchdog units, TSI, FMF) emit events
// through the free function telemetry::emit(), which routes to the bus
// installed for the current thread by an EventScope — or drops the event
// when none is installed. This keeps the instrumentation sites free of
// plumbing: a CentralNode built inside a campaign run function reports
// into that run's bus automatically, and the exact same code emits nothing
// when telemetry is off (unit tests, microbenches).
//
// The bus is intentionally NOT thread safe: one bus belongs to one run,
// which executes on one worker thread. Cross-thread consumers (the hang
// supervisor's flight-recorder snapshot) synchronise in the sink.
#pragma once

#include <functional>
#include <vector>

#include "profile/profiler.hpp"
#include "telemetry/event.hpp"

namespace easis::telemetry {

class EventBus {
 public:
  using Sink = std::function<void(const Event&)>;

  /// Sinks see every published event, in publish order.
  void add_sink(Sink sink) { sinks_.push_back(std::move(sink)); }

  /// Stamps the per-run sequence number, correlates the event to the most
  /// recently applied injection when the emitter did not set one, and
  /// fans out to the sinks.
  void publish(Event event) {
    EASIS_PROFILE_SPAN("telemetry.publish");
    EASIS_PROFILE_COUNT("telemetry.events_published", 1);
    event.seq = seq_++;
    if (event.kind == EventKind::kFaultApplied) {
      active_injection_ = event.injection;
    } else if (!event.injection.valid()) {
      event.injection = active_injection_;
    }
    for (const auto& sink : sinks_) sink(event);
  }

  /// Rewinds the sequence counter and injection correlation for a fresh
  /// run; the sinks stay attached.
  void reset() {
    seq_ = 0;
    active_injection_ = InjectionId{};
  }

  [[nodiscard]] std::uint64_t events_published() const { return seq_; }
  [[nodiscard]] InjectionId active_injection() const {
    return active_injection_;
  }

 private:
  std::vector<Sink> sinks_;
  std::uint64_t seq_ = 0;
  /// Last applied injection; sticky after revert because fault effects
  /// (queued errors, tripped thresholds) outlive the active window.
  InjectionId active_injection_;
};

/// Installs `bus` as the current thread's emit() target for the scope's
/// lifetime; restores the previous target (usually none) on destruction.
/// Scopes nest, innermost wins.
class EventScope {
 public:
  explicit EventScope(EventBus& bus);
  ~EventScope();
  EventScope(const EventScope&) = delete;
  EventScope& operator=(const EventScope&) = delete;

 private:
  EventBus* previous_;
};

/// The bus installed for this thread, or nullptr.
[[nodiscard]] EventBus* current_bus();

/// True when an EventScope is active on this thread. Instrumentation sites
/// use this to skip building detail strings when nobody listens.
[[nodiscard]] bool enabled();

/// Publishes to the current thread's bus; no-op without an active scope.
void emit(Event event);

}  // namespace easis::telemetry
