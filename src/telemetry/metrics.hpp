// Metrics registry: counters, gauges and fixed-bucket histograms with
// deterministic text export.
//
// Two export formats: Prometheus-style exposition text (easy to scrape or
// diff) and a flat CSV. Both iterate the registry in lexicographic
// (name, labels) order and derive every number from deterministic inputs,
// so a metrics file is byte-identical across --jobs values — the same
// contract as the campaign result CSVs.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace easis::telemetry {

class Counter {
 public:
  void inc(std::uint64_t by = 1) { value_ += by; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double value) { value_ = value; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram with Prometheus `le` semantics: an observation v
/// lands in every bucket with v <= upper bound, plus the implicit +Inf.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);

  [[nodiscard]] const std::vector<double>& upper_bounds() const {
    return bounds_;
  }
  /// Cumulative count of observations <= bounds()[i].
  [[nodiscard]] std::uint64_t cumulative_count(std::size_t i) const;
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  /// Smallest/largest observation; 0 while the histogram is empty.
  [[nodiscard]] double min() const { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ > 0 ? max_ : 0.0; }

 private:
  std::vector<double> bounds_;
  /// Per-bucket (non-cumulative) counts; back() is the +Inf overflow.
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Finds or creates the metric for (name, labels). `labels` is the
  /// pre-rendered Prometheus label body without braces, e.g.
  /// `component="hbm",kind="error_detected"` — or empty for none.
  Counter& counter(const std::string& name, const std::string& labels = "");
  Gauge& gauge(const std::string& name, const std::string& labels = "");
  /// `upper_bounds` must be sorted ascending; only consulted on creation.
  Histogram& histogram(const std::string& name, const std::string& labels,
                       std::vector<double> upper_bounds);

  [[nodiscard]] bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Prometheus exposition text, (name, labels)-sorted.
  void write_prometheus(std::ostream& out) const;
  /// Flat CSV: metric,labels,field,value — one row per exported number.
  void write_csv(std::ostream& out) const;

 private:
  using Key = std::pair<std::string, std::string>;
  // std::map for sorted deterministic export and stable references.
  std::map<Key, Counter> counters_;
  std::map<Key, Gauge> gauges_;
  std::map<Key, Histogram> histograms_;
};

}  // namespace easis::telemetry
