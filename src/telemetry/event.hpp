// Structured fault-telemetry event record.
//
// One Event is one observable step of a detection chain: an injection being
// armed/applied, a watchdog unit detecting an error, the TSI tripping a
// threshold or changing a derived state, the FMF carrying out a treatment
// or reset. Events are stamped with *simulation* time only — never wall
// clock — and with a per-run monotonic sequence number, so the event log
// of a run is byte-identical no matter which worker thread produced it
// (the telemetry extension of the campaign determinism contract).
//
// Correlation: every event carries the InjectionId of the fault it belongs
// to (stamped by the EventBus from the most recently applied injection)
// plus the runnable/task/application the emitting component was looking
// at, so a chain injection -> first detection -> escalation -> treatment
// can be reconstructed from the log alone.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

#include "sim/time.hpp"
#include "util/ids.hpp"

namespace easis::telemetry {

/// The platform component that emitted an event.
enum class Component : std::uint8_t {
  kInjector = 0,
  /// Heartbeat Monitoring Unit (aliveness side).
  kHeartbeatUnit,
  /// Arrival-rate monitoring side of the HBM.
  kArrivalRateUnit,
  kProgramFlowUnit,
  kDeadlineUnit,
  kComMonitor,
  kRecoveryUnit,
  kSelfSupervision,
  kTsi,
  kFmf,
  kHarness,
  /// UDS-lite diagnostic stack: DiagServer, DiagTester, health master.
  kDiag,
  /// Resource Supervision Unit (memory/handle/queue/load monitors).
  kResourceUnit,
  /// Environment Supervision Unit (thermal ladder, filesystem/NVM wear)
  /// and the supervised-process deadline-window client API.
  kEnvironmentUnit,
  /// Check Supervision Unit: user-defined policy check rules evaluated as
  /// supervised virtual runnables (watchdogd's script.c analogue).
  kCheckUnit,
  /// Power-mode manager and mode supervision unit (duty-cycled
  /// sensor-node extension).
  kModeUnit,
};

inline constexpr std::size_t kComponentCount = 16;

[[nodiscard]] constexpr std::string_view to_string(Component c) {
  switch (c) {
    case Component::kInjector: return "injector";
    case Component::kHeartbeatUnit: return "hbm";
    case Component::kArrivalRateUnit: return "arm";
    case Component::kProgramFlowUnit: return "pfc";
    case Component::kDeadlineUnit: return "deadline";
    case Component::kComMonitor: return "com_monitor";
    case Component::kRecoveryUnit: return "recovery";
    case Component::kSelfSupervision: return "self_supervision";
    case Component::kTsi: return "tsi";
    case Component::kFmf: return "fmf";
    case Component::kHarness: return "harness";
    case Component::kDiag: return "diag";
    case Component::kResourceUnit: return "resource";
    case Component::kEnvironmentUnit: return "environment";
    case Component::kCheckUnit: return "check";
    case Component::kModeUnit: return "mode";
  }
  return "?";
}

/// What happened. Kinds group into three chain stages: injection
/// (armed/applied/reverted), detection (error_detected, token_violation,
/// hw_watchdog_expired, recovery_result), escalation/treatment (threshold
/// trips, state changes, treatment actions, resets, storm latch).
enum class EventKind : std::uint8_t {
  kFaultArmed = 0,
  kFaultApplied,
  kFaultReverted,
  kErrorDetected,
  kTokenViolation,
  kHwWatchdogExpired,
  kThresholdTrip,
  kTaskStateChange,
  kAppStateChange,
  kEcuStateChange,
  kTreatmentAction,
  kResetRequested,
  kResetPerformed,
  kResetRefused,
  kStormLatched,
  kRecoveryWindowOpened,
  kRecoveryResult,
  kNvmCommit,
  kNvmRestore,
  /// Diagnostic stack (UDS-lite): request accepted by a DiagServer,
  /// response sent (positive or negative), tester session expired without
  /// TesterPresent, health master fleet-state transitions.
  kDiagRequest,
  kDiagResponse,
  kDiagSessionExpired,
  kDiagNodeSilent,
  kDiagNodeRecovered,
  /// Periodic per-resource level sample from the Resource Supervision Unit
  /// (detail carries `<resource> level_pct=<n> ...`); feeds the resource
  /// level histogram and makes exhaustion trends visible in event logs.
  kResourceSnapshot,
  /// The thermal-derating ladder moved to another stage (detail carries
  /// `<from>-><to> temp_c=<n>`); both directions are emitted, so event
  /// logs show the ladder stepping up and the recovery stepping down.
  kDerateStageChange,
  /// The fleet health master read a node's active-policy hash and it did
  /// not match the expected fleet policy (detail carries both hashes).
  kPolicyMismatch,
  /// The power-mode machine completed a guarded transition (detail
  /// carries `<from>-><to> cause=<cause>`); refused requests emit
  /// kModeTransitionRefused with the guard that vetoed them.
  kModeTransition,
  kModeTransitionRefused,
  /// The mode binder re-bound the supervision hypotheses / policy overlay
  /// for the just-entered mode (detail carries `overlay=<hash24>`).
  kModeOverlayApplied,
};

inline constexpr std::size_t kEventKindCount = 30;

[[nodiscard]] constexpr std::string_view to_string(EventKind k) {
  switch (k) {
    case EventKind::kFaultArmed: return "fault_armed";
    case EventKind::kFaultApplied: return "fault_applied";
    case EventKind::kFaultReverted: return "fault_reverted";
    case EventKind::kErrorDetected: return "error_detected";
    case EventKind::kTokenViolation: return "token_violation";
    case EventKind::kHwWatchdogExpired: return "hw_watchdog_expired";
    case EventKind::kThresholdTrip: return "threshold_trip";
    case EventKind::kTaskStateChange: return "task_state_change";
    case EventKind::kAppStateChange: return "app_state_change";
    case EventKind::kEcuStateChange: return "ecu_state_change";
    case EventKind::kTreatmentAction: return "treatment_action";
    case EventKind::kResetRequested: return "reset_requested";
    case EventKind::kResetPerformed: return "reset_performed";
    case EventKind::kResetRefused: return "reset_refused";
    case EventKind::kStormLatched: return "storm_latched";
    case EventKind::kRecoveryWindowOpened: return "recovery_window_opened";
    case EventKind::kRecoveryResult: return "recovery_result";
    case EventKind::kNvmCommit: return "nvm_commit";
    case EventKind::kNvmRestore: return "nvm_restore";
    case EventKind::kDiagRequest: return "diag_request";
    case EventKind::kDiagResponse: return "diag_response";
    case EventKind::kDiagSessionExpired: return "diag_session_expired";
    case EventKind::kDiagNodeSilent: return "diag_node_silent";
    case EventKind::kDiagNodeRecovered: return "diag_node_recovered";
    case EventKind::kResourceSnapshot: return "resource_snapshot";
    case EventKind::kDerateStageChange: return "derate_stage_change";
    case EventKind::kPolicyMismatch: return "policy_mismatch";
    case EventKind::kModeTransition: return "mode_transition";
    case EventKind::kModeTransitionRefused: return "mode_transition_refused";
    case EventKind::kModeOverlayApplied: return "mode_overlay_applied";
  }
  return "?";
}

/// A detection event marks the first observable recognition of a fault by
/// a monitoring layer. The health master declaring a node silent is the
/// diagnostic stack's detection of a node-level fault.
[[nodiscard]] constexpr bool is_detection(EventKind k) {
  return k == EventKind::kErrorDetected || k == EventKind::kTokenViolation ||
         k == EventKind::kHwWatchdogExpired ||
         k == EventKind::kDiagNodeSilent;
}

/// A treatment event marks the platform acting on a diagnosed fault.
[[nodiscard]] constexpr bool is_treatment(EventKind k) {
  return k == EventKind::kTreatmentAction ||
         k == EventKind::kResetPerformed || k == EventKind::kStormLatched;
}

struct Event {
  /// Per-run monotonic sequence number, assigned by the EventBus.
  std::uint64_t seq = 0;
  /// Simulation time of the observation. Never wall clock.
  sim::SimTime time;
  Component component = Component::kHarness;
  EventKind kind = EventKind::kErrorDetected;
  /// Correlation to the causal fault: the emitting injector sets it
  /// explicitly; for all other events the EventBus stamps the most
  /// recently applied injection (sticky across revert — fault effects
  /// outlive the fault's active window).
  InjectionId injection;
  RunnableId runnable;
  TaskId task;
  ApplicationId application;
  /// Free-text context (fault name, error class, treatment, ...). Must be
  /// derived from deterministic inputs only.
  std::string detail;
};

/// Writes the canonical one-line text form:
/// `<seq> t=<us> <component> <kind> inj=<id> run=<id> task=<id> app=<id> | <detail>`
void write_event_line(std::ostream& out, const Event& event);

std::ostream& operator<<(std::ostream& out, const Event& event);

}  // namespace easis::telemetry
