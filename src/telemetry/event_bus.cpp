#include "telemetry/event_bus.hpp"

#include <utility>

namespace easis::telemetry {

namespace {
thread_local EventBus* g_current_bus = nullptr;
}

EventScope::EventScope(EventBus& bus)
    : previous_(std::exchange(g_current_bus, &bus)) {}

EventScope::~EventScope() { g_current_bus = previous_; }

EventBus* current_bus() { return g_current_bus; }

bool enabled() { return g_current_bus != nullptr; }

void emit(Event event) {
  if (g_current_bus != nullptr) g_current_bus->publish(std::move(event));
}

}  // namespace easis::telemetry
