#include "telemetry/attribution.hpp"

#include <unordered_map>

namespace easis::telemetry {

std::vector<DetectionChain> attribute_chains(
    const std::vector<Event>& events) {
  std::vector<DetectionChain> chains;
  std::unordered_map<InjectionId, std::size_t> index;

  auto chain_of = [&](InjectionId id) -> DetectionChain& {
    auto [it, inserted] = index.try_emplace(id, chains.size());
    if (inserted) {
      chains.emplace_back();
      chains.back().injection = id;
    }
    return chains[it->second];
  };

  for (const Event& event : events) {
    if (!event.injection.valid()) continue;
    DetectionChain& chain = chain_of(event.injection);
    switch (event.kind) {
      case EventKind::kFaultArmed:
        if (chain.fault.empty()) chain.fault = event.detail;
        break;
      case EventKind::kFaultApplied:
        if (!chain.applied) {
          chain.applied = true;
          chain.applied_at = event.time;
          if (chain.fault.empty()) chain.fault = event.detail;
        }
        break;
      default:
        if (is_detection(event.kind) && !chain.detected) {
          chain.detected = true;
          chain.first_detection_at = event.time;
          chain.first_detector = event.component;
          chain.detection_detail = event.detail;
        } else if (is_treatment(event.kind) && chain.detected &&
                   !chain.treated) {
          // Treatments only count once the fault is on record; a reset
          // performed for an earlier, differently-attributed fault never
          // starts a chain of its own.
          chain.treated = true;
          chain.first_treatment_at = event.time;
          chain.treatment_detail = event.detail;
        }
        break;
    }
  }
  return chains;
}

const std::vector<double>& latency_buckets_ms() {
  static const std::vector<double> buckets{1,  2,   5,   10,  20,
                                           50, 100, 200, 500, 1000};
  return buckets;
}

namespace {

/// Resource-snapshot details read `<resource> level_pct=<n> ...`; returns
/// the level or a negative value for foreign detail formats.
double parse_level_pct(const std::string& detail) {
  const auto key = detail.find("level_pct=");
  if (key == std::string::npos) return -1.0;
  try {
    return std::stod(detail.substr(key + 10));
  } catch (...) {
    return -1.0;
  }
}

const std::vector<double>& level_buckets_pct() {
  static const std::vector<double> buckets{10, 25, 50, 75, 90, 95, 100};
  return buckets;
}

}  // namespace

void replay_into_metrics(const std::vector<Event>& events,
                         MetricsRegistry& registry) {
  for (const Event& event : events) {
    registry
        .counter("easis_events_total",
                 "component=\"" + std::string(to_string(event.component)) +
                     "\",kind=\"" + std::string(to_string(event.kind)) + "\"")
        .inc();
    if (event.kind == EventKind::kResourceSnapshot) {
      const double level = parse_level_pct(event.detail);
      const std::string resource =
          event.detail.substr(0, event.detail.find(' '));
      if (level >= 0.0 && !resource.empty()) {
        registry
            .histogram("easis_resource_level_pct",
                       "resource=\"" + resource + "\"", level_buckets_pct())
            .observe(level);
      }
    }
  }

  for (const DetectionChain& chain : attribute_chains(events)) {
    if (!chain.applied) continue;
    registry.counter("easis_injections_total").inc();
    if (!chain.detected) continue;
    registry.counter("easis_injections_detected_total").inc();
    if (const auto latency = chain.fault_to_detection()) {
      registry
          .histogram("easis_fault_to_detection_latency_ms",
                     "detector=\"" +
                         std::string(to_string(chain.first_detector)) + "\"",
                     latency_buckets_ms())
          .observe(static_cast<double>(latency->as_micros()) / 1000.0);
    }
    if (!chain.treated) continue;
    registry.counter("easis_injections_treated_total").inc();
    if (const auto latency = chain.detection_to_treatment()) {
      registry
          .histogram("easis_detection_to_treatment_latency_ms", "",
                     latency_buckets_ms())
          .observe(static_cast<double>(latency->as_micros()) / 1000.0);
    }
  }
}

}  // namespace easis::telemetry
