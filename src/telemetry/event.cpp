#include "telemetry/event.hpp"

namespace easis::telemetry {

void write_event_line(std::ostream& out, const Event& event) {
  out << event.seq << " t=" << event.time.as_micros() << ' '
      << to_string(event.component) << ' ' << to_string(event.kind)
      << " inj=" << event.injection << " run=" << event.runnable
      << " task=" << event.task << " app=" << event.application << " | "
      << event.detail;
}

std::ostream& operator<<(std::ostream& out, const Event& event) {
  write_event_line(out, event);
  return out;
}

}  // namespace easis::telemetry
