// Latency attribution: reconstructs per-injection detection chains
// (injection -> first detection -> escalation -> treatment) from an event
// stream, and replays streams into a MetricsRegistry.
//
// This is the analysis half of the telemetry subsystem: the bus records
// *what happened*; attribution answers the paper's evaluation questions —
// was the fault detected, by which unit, how long from fault activation to
// first detection, and how long from detection to treatment.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "telemetry/event.hpp"
#include "telemetry/metrics.hpp"

namespace easis::telemetry {

/// One injection's reconstructed chain. Stages are first-occurrence:
/// later detections/treatments of the same fault do not move the marks.
struct DetectionChain {
  InjectionId injection;
  /// Injection name, taken from the armed/applied event detail.
  std::string fault;

  bool applied = false;
  sim::SimTime applied_at;

  bool detected = false;
  sim::SimTime first_detection_at;
  Component first_detector = Component::kHarness;
  std::string detection_detail;

  bool treated = false;
  sim::SimTime first_treatment_at;
  std::string treatment_detail;

  [[nodiscard]] std::optional<sim::Duration> fault_to_detection() const {
    if (!applied || !detected) return std::nullopt;
    return first_detection_at - applied_at;
  }
  [[nodiscard]] std::optional<sim::Duration> detection_to_treatment() const {
    if (!detected || !treated) return std::nullopt;
    return first_treatment_at - first_detection_at;
  }
};

/// Scans a seq-ordered event stream and folds it into one chain per
/// InjectionId, in order of first appearance. Events without a valid
/// injection correlation are ignored.
[[nodiscard]] std::vector<DetectionChain> attribute_chains(
    const std::vector<Event>& events);

/// Fixed latency buckets (milliseconds) shared by every latency histogram,
/// so exports stay comparable across campaigns.
[[nodiscard]] const std::vector<double>& latency_buckets_ms();

/// Replays an event stream into `registry`:
///  * easis_events_total{component=...,kind=...} counters,
///  * easis_injections_total / _detected_total / _treated_total,
///  * easis_fault_to_detection_latency_ms{detector=...} and
///    easis_detection_to_treatment_latency_ms histograms.
void replay_into_metrics(const std::vector<Event>& events,
                         MetricsRegistry& registry);

}  // namespace easis::telemetry
