// Flight recorder: a bounded ring of the most recent telemetry events.
//
// Attached as a bus sink alongside the full per-run event log. Its job is
// the failure path: when a campaign run hangs, errors out or misdetects,
// the ring holds the last events leading up to the failure — cheap enough
// to keep always-on (the automotive EDR idea applied to the simulator),
// and the only record a quarantined run leaves behind, since a hung run
// never returns its full log.
#pragma once

#include <cstddef>
#include <ostream>
#include <vector>

#include "telemetry/event.hpp"
#include "util/ring_buffer.hpp"

namespace easis::telemetry {

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity)
      : ring_(capacity) {}

  /// Bus-sink entry point.
  void on_event(const Event& event) { ring_.push(event); }

  void clear() { ring_.clear(); }

  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  /// Events overwritten because the ring was full.
  [[nodiscard]] std::size_t dropped() const { return ring_.dropped(); }
  /// Retained events, oldest first.
  [[nodiscard]] std::vector<Event> snapshot() const {
    return ring_.snapshot();
  }

  /// Human-readable dump: a header noting retained/dropped counts, then
  /// one canonical event line per retained event, oldest first.
  void dump(std::ostream& out) const {
    out << "flight recorder: " << ring_.size() << " event(s) retained";
    if (ring_.dropped() > 0) out << ", " << ring_.dropped() << " older dropped";
    out << '\n';
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      write_event_line(out, ring_.at(i));
      out << '\n';
    }
  }

 private:
  util::RingBuffer<Event> ring_;
};

}  // namespace easis::telemetry
