#include "bus/e2e.hpp"

#include "util/crc8.hpp"

namespace easis::bus {

using util::crc8_j1850;

const char* to_string(E2EStatus status) {
  switch (status) {
    case E2EStatus::kOk: return "ok";
    case E2EStatus::kCrcError: return "crc_error";
    case E2EStatus::kRepeated: return "repeated";
    case E2EStatus::kWrongSequence: return "wrong_sequence";
    case E2EStatus::kNoNewData: return "no_new_data";
  }
  return "?";
}

namespace {

/// CRC over (data id, counter, application payload) — exactly what the
/// sender stamps and the receiver recomputes. `payload` points at the
/// application bytes (past the header).
std::uint8_t channel_crc(const E2EConfig& config, std::uint8_t counter,
                         const std::uint8_t* payload, std::size_t length) {
  const std::uint8_t prefix[3] = {
      static_cast<std::uint8_t>(config.data_id & 0xFFu),
      static_cast<std::uint8_t>((config.data_id >> 8) & 0xFFu),
      counter,
  };
  // Chain: run the prefix through without the final XOR, then the payload.
  std::uint8_t crc = 0xFF;
  crc = static_cast<std::uint8_t>(crc8_j1850(prefix, 3, crc) ^ 0xFFu);
  return crc8_j1850(payload, length, crc);
}

}  // namespace

void E2ESender::protect(Frame& frame) {
  const std::uint8_t crc = channel_crc(config_, counter_,
                                       frame.payload.data(),
                                       frame.payload.size());
  frame.payload.insert(frame.payload.begin(), {crc, counter_});
  counter_ = static_cast<std::uint8_t>((counter_ + 1) % kE2ECounterModulo);
}

E2EStatus E2EReceiver::check(const Frame& frame) {
  if (frame.payload.size() < kE2EHeaderBytes) {
    ++crc_errors_;
    return E2EStatus::kCrcError;
  }
  const std::uint8_t crc = frame.payload[0];
  const std::uint8_t counter = frame.payload[1];
  const std::uint8_t expected =
      channel_crc(config_, counter, frame.payload.data() + kE2EHeaderBytes,
                  frame.payload.size() - kE2EHeaderBytes);
  if (crc != expected || counter >= kE2ECounterModulo) {
    ++crc_errors_;
    return E2EStatus::kCrcError;
  }
  if (!has_last_) {
    has_last_ = true;
    last_counter_ = counter;
    ++ok_;
    return E2EStatus::kOk;
  }
  const std::uint8_t delta = static_cast<std::uint8_t>(
      (counter + kE2ECounterModulo - last_counter_) % kE2ECounterModulo);
  last_counter_ = counter;
  if (delta == 0) {
    ++repeats_;
    return E2EStatus::kRepeated;
  }
  if (delta > config_.max_delta_counter) {
    ++wrong_seq_;
    return E2EStatus::kWrongSequence;
  }
  ++ok_;
  return E2EStatus::kOk;
}

E2EStatus E2EReceiver::no_new_data() {
  ++no_data_;
  return E2EStatus::kNoNewData;
}

}  // namespace easis::bus
