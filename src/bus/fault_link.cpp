#include "bus/fault_link.hpp"

namespace easis::bus {

FaultLink::Verdict FaultLink::process(Frame& frame) {
  Verdict verdict;
  if (partitioned_) {
    ++dropped_;
    verdict.drop = true;
    return verdict;
  }
  if (burst_remaining_ > 0) {
    --burst_remaining_;
    ++dropped_;
    verdict.drop = true;
    return verdict;
  }
  if (config_.loss_probability > 0.0 &&
      rng_.bernoulli(config_.loss_probability)) {
    ++dropped_;
    verdict.drop = true;
    return verdict;
  }
  if (config_.corrupt_probability > 0.0 && !frame.payload.empty() &&
      rng_.bernoulli(config_.corrupt_probability)) {
    const auto bit = static_cast<std::uint64_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(frame.payload.size() * 8) - 1));
    frame.payload[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    ++corrupted_;
  }
  if (config_.duplicate_probability > 0.0 &&
      rng_.bernoulli(config_.duplicate_probability)) {
    ++duplicated_;
    verdict.duplicate = true;
  }
  if (config_.max_delay_jitter > sim::Duration::zero()) {
    const std::int64_t us = rng_.uniform_int(
        0, config_.max_delay_jitter.as_micros());
    if (us > 0) {
      verdict.delay = sim::Duration::micros(us);
      ++delayed_;
    }
  }
  return verdict;
}

BabblingIdiot::BabblingIdiot(sim::Engine& engine,
                             std::function<void(Frame)> send,
                             BabblingIdiotConfig config)
    : engine_(engine), send_(std::move(send)), config_(config) {}

void BabblingIdiot::start() {
  if (babbling_) return;
  babbling_ = true;
  ++generation_;
  schedule_next(generation_);
}

void BabblingIdiot::stop() {
  babbling_ = false;
  ++generation_;
}

void BabblingIdiot::schedule_next(std::uint64_t generation) {
  engine_.schedule_in(config_.period, [this, generation] {
    if (generation != generation_ || !babbling_) return;
    Frame frame;
    frame.id = config_.frame_id;
    frame.payload.assign(config_.payload_bytes, 0xAA);
    ++sent_;
    send_(std::move(frame));
    schedule_next(generation);
  });
}

}  // namespace easis::bus
