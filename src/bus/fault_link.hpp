// Shared per-bus network fault model.
//
// A FaultLink sits on the delivery path of a bus (CAN / FlexRay / LIN all
// consult it at the instant a frame would reach receivers) and decides,
// per frame, whether to corrupt it, lose it, delay it or duplicate it —
// the classic EMI / marginal-transceiver / overload failure modes.
// Probabilistic decisions draw from a seeded RNG so campaigns replay
// deterministically. A partition drops everything until lifted; a loss
// burst loses the next N frames (correlated errors, unlike the i.i.d.
// loss probability).
//
// The babbling-idiot flooder is the complementary *traffic* fault: a node
// that transmits nonsense at the highest priority, starving everyone else
// on an arbitrated bus. It drives a generic send callback so it can sit on
// any bus, though CAN (priority arbitration) is where it bites.
#pragma once

#include <cstdint>
#include <functional>

#include "bus/frame.hpp"
#include "sim/engine.hpp"
#include "util/random.hpp"

namespace easis::bus {

struct FaultLinkConfig {
  /// Per-frame probability of flipping one random payload bit.
  double corrupt_probability = 0.0;
  /// Per-frame probability of losing the frame (i.i.d.).
  double loss_probability = 0.0;
  /// Per-frame probability of delivering the frame twice.
  double duplicate_probability = 0.0;
  /// Extra delivery delay drawn uniformly from [0, max_delay_jitter].
  sim::Duration max_delay_jitter = sim::Duration::zero();
};

class FaultLink {
 public:
  /// What the bus should do with one frame about to be delivered.
  struct Verdict {
    bool drop = false;
    bool duplicate = false;
    sim::Duration delay = sim::Duration::zero();
  };

  explicit FaultLink(std::uint64_t seed = 0x5AFEu) : rng_(seed) {}

  void set_config(FaultLinkConfig config) { config_ = config; }
  [[nodiscard]] const FaultLinkConfig& config() const { return config_; }

  /// Partition: everything is lost until lifted.
  void set_partitioned(bool partitioned) { partitioned_ = partitioned; }
  [[nodiscard]] bool partitioned() const { return partitioned_; }

  /// Loses the next `frames` deliveries (correlated burst, e.g. an EMI
  /// event spanning several frame times).
  void start_loss_burst(std::uint64_t frames) { burst_remaining_ = frames; }
  [[nodiscard]] std::uint64_t loss_burst_remaining() const {
    return burst_remaining_;
  }

  /// Decides the fate of one delivery; may corrupt `frame` in place.
  Verdict process(Frame& frame);

  [[nodiscard]] std::uint64_t frames_dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t frames_corrupted() const { return corrupted_; }
  [[nodiscard]] std::uint64_t frames_duplicated() const { return duplicated_; }
  [[nodiscard]] std::uint64_t frames_delayed() const { return delayed_; }

 private:
  util::Rng rng_;
  FaultLinkConfig config_;
  bool partitioned_ = false;
  std::uint64_t burst_remaining_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t delayed_ = 0;
};

struct BabblingIdiotConfig {
  /// Identifier the flooder transmits with; 0 dominates CAN arbitration.
  std::uint32_t frame_id = 0;
  /// Time between transmit attempts. On CAN anything at or below one
  /// frame time keeps the bus permanently contended.
  sim::Duration period = sim::Duration::micros(100);
  std::size_t payload_bytes = 8;
};

/// A failed node transmitting garbage at maximum priority. Constructed
/// with the send primitive of whatever bus it babbles on.
class BabblingIdiot {
 public:
  BabblingIdiot(sim::Engine& engine, std::function<void(Frame)> send,
                BabblingIdiotConfig config = {});

  void start();
  void stop();
  [[nodiscard]] bool babbling() const { return babbling_; }
  [[nodiscard]] std::uint64_t frames_sent() const { return sent_; }

 private:
  sim::Engine& engine_;
  std::function<void(Frame)> send_;
  BabblingIdiotConfig config_;
  bool babbling_ = false;
  std::uint64_t generation_ = 0;
  std::uint64_t sent_ = 0;

  void schedule_next(std::uint64_t generation);
};

}  // namespace easis::bus
