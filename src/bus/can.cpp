#include "bus/can.hpp"

#include <algorithm>
#include <cassert>

namespace easis::bus {

CanBus::CanBus(sim::Engine& engine, std::uint32_t bitrate_bps)
    : engine_(engine), bitrate_bps_(bitrate_bps) {
  assert(bitrate_bps_ > 0);
}

CanBus::EndpointId CanBus::attach(std::string name, FrameHandler rx) {
  endpoints_.push_back(Endpoint{std::move(name), std::move(rx)});
  return endpoints_.size() - 1;
}

const std::string& CanBus::endpoint_name(EndpointId id) const {
  assert(id < endpoints_.size());
  return endpoints_[id].name;
}

sim::Duration CanBus::frame_time(const Frame& frame) const {
  // Standard data frame: 47 framing bits + 8 per payload byte; worst-case
  // bit stuffing adds ~20% on the stuffable region.
  const std::size_t data_bits = 8 * std::min<std::size_t>(frame.payload.size(), 8);
  const std::size_t raw_bits = 47 + data_bits;
  const std::size_t stuffed = raw_bits + (34 + data_bits) / 5;
  const double seconds = static_cast<double>(stuffed) / bitrate_bps_;
  return sim::Duration::micros(
      static_cast<std::int64_t>(seconds * 1e6) + 1);
}

void CanBus::transmit(EndpointId from, Frame frame) {
  assert(from < endpoints_.size());
  pending_.push_back(Pending{from, std::move(frame), seq_++});
  try_start();
}

void CanBus::try_start() {
  if (busy_ || pending_.empty()) return;
  // Arbitration: lowest identifier wins; FIFO among equal ids.
  auto winner = std::min_element(
      pending_.begin(), pending_.end(),
      [](const Pending& a, const Pending& b) {
        if (a.frame.id != b.frame.id) return a.frame.id < b.frame.id;
        return a.seq < b.seq;
      });
  Pending tx = std::move(*winner);
  pending_.erase(winner);
  busy_ = true;
  const sim::Duration duration = frame_time(tx.frame);
  engine_.schedule_in(duration, [this, tx = std::move(tx)] {
    busy_ = false;
    if (bus_off_ || (drop_hook_ && drop_hook_(tx.frame))) {
      ++lost_;
      try_start();
      return;
    }
    Frame frame = tx.frame;  // fault link may corrupt in place
    FaultLink::Verdict verdict;
    if (fault_link_) verdict = fault_link_->process(frame);
    if (verdict.drop) {
      ++lost_;
      try_start();
      return;
    }
    if (verdict.delay > sim::Duration::zero()) {
      engine_.schedule_in(verdict.delay,
                          [this, frame, from = tx.from] {
                            deliver(frame, from);
                          });
    } else {
      deliver(frame, tx.from);
    }
    if (verdict.duplicate) deliver(frame, tx.from);
    try_start();
  });
}

void CanBus::deliver(const Frame& frame, EndpointId from) {
  ++delivered_;
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    if (i == from || !endpoints_[i].rx) continue;
    endpoints_[i].rx(frame, engine_.now());
  }
}

}  // namespace easis::bus
