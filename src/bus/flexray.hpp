// FlexRay bus model: static-segment TDMA (paper §4.1: the validator's
// FlexRay domain carrying the steer-by-wire / driving-dynamics traffic).
//
// Each communication cycle is divided into equal static slots; a slot is
// owned by exactly one endpoint, which may place at most one frame per
// cycle into it (last-is-best until the slot starts). Delivery happens at
// the slot end — deterministic latency, no arbitration.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bus/fault_link.hpp"
#include "bus/frame.hpp"
#include "sim/engine.hpp"

namespace easis::bus {

struct FlexRayConfig {
  sim::Duration cycle = sim::Duration::millis(5);
  std::uint32_t static_slots = 10;
};

class FlexRayBus {
 public:
  using EndpointId = std::size_t;

  FlexRayBus(sim::Engine& engine, FlexRayConfig config = {});
  FlexRayBus(const FlexRayBus&) = delete;
  FlexRayBus& operator=(const FlexRayBus&) = delete;

  EndpointId attach(std::string name, FrameHandler rx);

  /// Grants `endpoint` exclusive send rights for `slot` (0-based).
  void assign_slot(std::uint32_t slot, EndpointId endpoint);

  /// Stages a frame for the endpoint's slot in the next cycle occurrence
  /// (last-is-best). Fails (returns false) if the slot is not owned.
  bool send(EndpointId from, std::uint32_t slot, Frame frame);

  /// Begins cycling from the current time.
  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }

  /// Shared fault model, consulted at slot-end delivery. Non-owning.
  void set_fault_link(FaultLink* link) { fault_link_ = link; }
  [[nodiscard]] FaultLink* fault_link() const { return fault_link_; }

  [[nodiscard]] const FlexRayConfig& config() const { return config_; }
  [[nodiscard]] sim::Duration slot_length() const;
  [[nodiscard]] std::uint64_t cycles_completed() const { return cycles_; }
  [[nodiscard]] std::uint64_t frames_delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t frames_lost() const { return lost_; }
  [[nodiscard]] std::optional<EndpointId> slot_owner(
      std::uint32_t slot) const;

 private:
  struct Endpoint {
    std::string name;
    FrameHandler rx;
  };
  struct Slot {
    std::optional<EndpointId> owner;
    std::optional<Frame> staged;
  };

  sim::Engine& engine_;
  FlexRayConfig config_;
  std::vector<Endpoint> endpoints_;
  std::vector<Slot> slots_;
  FaultLink* fault_link_ = nullptr;
  bool running_ = false;
  std::uint64_t generation_ = 0;
  std::uint64_t cycles_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t lost_ = 0;

  void schedule_cycle(sim::SimTime cycle_start, std::uint64_t generation);
  void deliver(const Frame& frame, EndpointId from);
};

}  // namespace easis::bus
