// CAN bus model (paper §4.1: the validator's CAN vehicle domain).
//
// Models the properties that matter at system level: priority arbitration
// by lowest identifier among competing pending frames, serialised medium
// (one frame at a time), transmission time from frame length and bitrate,
// and broadcast delivery to all other endpoints.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "bus/fault_link.hpp"
#include "bus/frame.hpp"
#include "sim/engine.hpp"

namespace easis::bus {

class CanBus {
 public:
  using EndpointId = std::size_t;

  CanBus(sim::Engine& engine, std::uint32_t bitrate_bps = 500'000);
  CanBus(const CanBus&) = delete;
  CanBus& operator=(const CanBus&) = delete;

  /// Attaches an endpoint; `rx` receives every frame sent by others.
  EndpointId attach(std::string name, FrameHandler rx);

  /// Queues a frame for transmission; arbitration picks the lowest id
  /// among pending frames each time the bus becomes idle.
  void transmit(EndpointId from, Frame frame);

  // --- bus fault modes (injection support) ----------------------------------
  /// Bus-off: frames are transmitted into the void (a severed/failed bus).
  void set_bus_off(bool off) { bus_off_ = off; }
  [[nodiscard]] bool bus_off() const { return bus_off_; }
  /// Per-frame drop hook: return true to lose the frame (EMI, error
  /// frames). Evaluated at delivery time.
  void set_drop_hook(std::function<bool(const Frame&)> hook) {
    drop_hook_ = std::move(hook);
  }
  /// Shared fault model (corruption/loss/jitter/duplication/partition),
  /// consulted at delivery time. Non-owning; nullptr disables.
  void set_fault_link(FaultLink* link) { fault_link_ = link; }
  [[nodiscard]] FaultLink* fault_link() const { return fault_link_; }
  [[nodiscard]] std::uint64_t frames_lost() const { return lost_; }

  [[nodiscard]] std::size_t endpoint_count() const { return endpoints_.size(); }
  [[nodiscard]] const std::string& endpoint_name(EndpointId id) const;
  [[nodiscard]] bool busy() const { return busy_; }
  [[nodiscard]] std::size_t pending() const { return pending_.size(); }
  [[nodiscard]] std::uint64_t frames_delivered() const { return delivered_; }

  /// Transmission time of a frame at the configured bitrate (standard
  /// frame: 47 overhead bits + payload, plus worst-case bit stuffing).
  [[nodiscard]] sim::Duration frame_time(const Frame& frame) const;

 private:
  struct Endpoint {
    std::string name;
    FrameHandler rx;
  };
  struct Pending {
    EndpointId from;
    Frame frame;
    std::uint64_t seq;  // FIFO tie-break for equal ids
  };

  sim::Engine& engine_;
  std::uint32_t bitrate_bps_;
  std::vector<Endpoint> endpoints_;
  std::vector<Pending> pending_;
  bool busy_ = false;
  bool bus_off_ = false;
  std::function<bool(const Frame&)> drop_hook_;
  FaultLink* fault_link_ = nullptr;
  std::uint64_t seq_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t lost_ = 0;

  void try_start();
  void deliver(const Frame& frame, EndpointId from);
};

}  // namespace easis::bus
