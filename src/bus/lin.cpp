#include "bus/lin.hpp"

#include <stdexcept>

namespace easis::bus {

LinBus::LinBus(sim::Engine& engine, sim::Duration slot)
    : engine_(engine), slot_(slot) {
  if (slot <= sim::Duration::zero()) {
    throw std::invalid_argument("LinBus: slot must be positive");
  }
}

LinBus::EndpointId LinBus::attach(std::string name, FrameHandler rx) {
  endpoints_.push_back(Endpoint{std::move(name), std::move(rx)});
  return endpoints_.size() - 1;
}

void LinBus::set_publisher(std::uint32_t frame_id, EndpointId endpoint,
                           Publisher publisher) {
  if (endpoint >= endpoints_.size()) {
    throw std::invalid_argument("LinBus: bad endpoint");
  }
  if (slave_for(frame_id) != nullptr) {
    throw std::logic_error("LinBus: frame id already published");
  }
  publishers_.emplace_back(frame_id, Slave{endpoint, std::move(publisher)});
}

void LinBus::set_schedule(std::vector<std::uint32_t> frame_ids) {
  if (running_) throw std::logic_error("LinBus: cannot modify while running");
  schedule_ = std::move(frame_ids);
}

LinBus::Slave* LinBus::slave_for(std::uint32_t frame_id) {
  for (auto& [id, slave] : publishers_) {
    if (id == frame_id) return &slave;
  }
  return nullptr;
}

void LinBus::start() {
  if (running_) throw std::logic_error("LinBus: already running");
  if (schedule_.empty()) throw std::logic_error("LinBus: empty schedule");
  running_ = true;
  ++generation_;
  next_slot_ = 0;
  schedule_next(generation_);
}

void LinBus::stop() {
  running_ = false;
  ++generation_;
}

void LinBus::schedule_next(std::uint64_t generation) {
  engine_.schedule_in(
      slot_,
      [this, generation] {
        if (generation != generation_ || !running_) return;
        const std::uint32_t frame_id = schedule_[next_slot_];
        next_slot_ = (next_slot_ + 1) % schedule_.size();
        ++polls_;
        Slave* slave = slave_for(frame_id);
        std::optional<std::vector<std::uint8_t>> payload;
        if (slave != nullptr && slave->publisher) {
          payload = slave->publisher();
        }
        if (payload.has_value()) {
          ++responses_;
          Frame frame;
          frame.id = frame_id;
          frame.payload = std::move(*payload);
          FaultLink::Verdict verdict;
          if (fault_link_) verdict = fault_link_->process(frame);
          if (verdict.drop) {
            ++lost_;
          } else {
            if (verdict.delay > sim::Duration::zero()) {
              engine_.schedule_in(verdict.delay, [this, frame, slave] {
                deliver(frame, slave);
              });
            } else {
              deliver(frame, slave);
            }
            if (verdict.duplicate) deliver(frame, slave);
          }
        } else {
          ++no_responses_;
        }
        schedule_next(generation);
      },
      sim::EventPriority::kKernel);
}

void LinBus::deliver(const Frame& frame, const Slave* slave) {
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    if (slave != nullptr && i == slave->endpoint) continue;
    if (endpoints_[i].rx) endpoints_[i].rx(frame, engine_.now());
  }
}

}  // namespace easis::bus
