// Gateway node (paper §4.1: connects the TCP/IP, CAN and FlexRay vehicle
// domains of the EASIS architecture validator).
//
// Domains register as named ports with a type-erased sender; routes map
// (source domain, frame id) to (destination domain, new id), applied with a
// configurable processing latency. The gateway is itself an endpoint on
// each bus it bridges.
//
// Drops are observable: the first unrouted frame per (domain, id) is
// logged, and delivered/dropped counts are kept per route key so a silent
// routing hole shows up in diagnostics instead of as a missing signal.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bus/frame.hpp"
#include "sim/engine.hpp"

namespace easis::bus {

class Gateway {
 public:
  /// Sends a frame into a domain (e.g. captures a CanBus endpoint).
  using DomainSender = std::function<void(Frame)>;

  Gateway(sim::Engine& engine,
          sim::Duration processing_latency = sim::Duration::micros(200));

  /// Registers a domain. Call the returned ingress handler for every frame
  /// the gateway receives from that domain (wire it as the gateway's rx on
  /// the respective bus).
  FrameHandler register_domain(const std::string& name, DomainSender sender);

  /// Routes frames with `id` arriving from `from_domain` into `to_domain`,
  /// rewriting the identifier to `new_id`.
  void add_route(const std::string& from_domain, std::uint32_t id,
                 const std::string& to_domain, std::uint32_t new_id);

  /// Gateway stall (fault model): while stalled, ingress frames are held in
  /// a backlog instead of being routed; releasing the stall routes the
  /// backlog in arrival order (a hung routing task that recovers).
  void set_stalled(bool stalled);
  [[nodiscard]] bool stalled() const { return stalled_; }
  [[nodiscard]] std::size_t backlog() const { return backlog_.size(); }

  [[nodiscard]] std::uint64_t frames_routed() const { return routed_; }
  [[nodiscard]] std::uint64_t frames_dropped() const { return dropped_; }
  /// Frames delivered out of the route (from_domain, id); counts each
  /// fan-out target delivery.
  [[nodiscard]] std::uint64_t route_delivered(const std::string& from_domain,
                                              std::uint32_t id) const;
  /// Frames from `from_domain` with `id` dropped for lack of a route.
  [[nodiscard]] std::uint64_t route_dropped(const std::string& from_domain,
                                            std::uint32_t id) const;
  [[nodiscard]] std::size_t route_count() const { return routes_.size(); }

 private:
  struct RouteKey {
    std::string from;
    std::uint32_t id;
    auto operator<=>(const RouteKey&) const = default;
  };
  struct RouteTarget {
    std::string to;
    std::uint32_t new_id;
  };

  sim::Engine& engine_;
  sim::Duration latency_;
  std::map<std::string, DomainSender> domains_;
  std::map<RouteKey, std::vector<RouteTarget>> routes_;
  std::map<RouteKey, std::uint64_t> delivered_by_route_;
  std::map<RouteKey, std::uint64_t> dropped_by_route_;
  std::vector<std::pair<std::string, Frame>> backlog_;
  bool stalled_ = false;
  std::uint64_t routed_ = 0;
  std::uint64_t dropped_ = 0;

  void ingress(const std::string& domain, const Frame& frame);
  void route(const std::string& domain, const Frame& frame);
};

}  // namespace easis::bus
