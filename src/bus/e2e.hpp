// AUTOSAR-E2E-style end-to-end protection (Profile-1 flavoured).
//
// The paper's watchdog supervises computation *inside* an ECU; safety
// signals that cross the vehicle network need the communication
// counterpart. A protected frame carries a 2-byte header in front of the
// application payload:
//
//   byte 0: CRC-8 (SAE J1850, poly 0x1D) over data id, counter and payload
//   byte 1: alive counter, 0..14 wrapping (15 is reserved/invalid)
//
// The data id is *not* transmitted — sender and receiver agree on it per
// channel, so a frame routed onto the wrong channel fails the CRC (masked
// id detection, as in Profile 1).
//
// E2ESender::protect() stamps outgoing frames; E2EReceiver::check()
// classifies incoming ones as kOk / kCrcError / kRepeated /
// kWrongSequence, and no_new_data() records a polling cycle that saw no
// frame at all (kNoNewData). Receivers keep per-status counters for the
// communication monitoring unit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bus/frame.hpp"

namespace easis::bus {

/// Bytes the E2E header prepends to the application payload.
inline constexpr std::size_t kE2EHeaderBytes = 2;

/// Alive counter wraps within [0, kE2ECounterModulo).
inline constexpr std::uint8_t kE2ECounterModulo = 15;

enum class E2EStatus : std::uint8_t {
  kOk = 0,
  kCrcError,       // payload or masked data id damaged in transit
  kRepeated,       // same alive counter again (stuck sender / replay)
  kWrongSequence,  // counter jumped further than max_delta (frames lost)
  kNoNewData,      // polled, but nothing arrived this cycle
};

[[nodiscard]] const char* to_string(E2EStatus status);

struct E2EConfig {
  /// Channel identity mixed into the CRC; never transmitted.
  std::uint16_t data_id = 0;
  /// Largest acceptable counter advance (1 = no tolerated loss; a larger
  /// value forgives that many lost frames between received ones).
  std::uint8_t max_delta_counter = 1;
};

class E2ESender {
 public:
  explicit E2ESender(E2EConfig config) : config_(config) {}

  /// Prepends the E2E header (CRC + alive counter) to `frame.payload` and
  /// advances the counter.
  void protect(Frame& frame);

  [[nodiscard]] std::uint8_t counter() const { return counter_; }
  [[nodiscard]] const E2EConfig& config() const { return config_; }

 private:
  E2EConfig config_;
  std::uint8_t counter_ = 0;
};

class E2EReceiver {
 public:
  explicit E2EReceiver(E2EConfig config) : config_(config) {}

  /// Classifies a received frame. The header stays in place; consumers
  /// read application data at offset kE2EHeaderBytes.
  E2EStatus check(const Frame& frame);

  /// Records a reception cycle in which no frame arrived at all.
  E2EStatus no_new_data();

  [[nodiscard]] std::uint64_t ok_count() const { return ok_; }
  [[nodiscard]] std::uint64_t crc_errors() const { return crc_errors_; }
  [[nodiscard]] std::uint64_t repeats() const { return repeats_; }
  [[nodiscard]] std::uint64_t wrong_sequences() const { return wrong_seq_; }
  [[nodiscard]] std::uint64_t no_new_data_count() const { return no_data_; }
  /// Total failed checks (everything except kOk).
  [[nodiscard]] std::uint64_t failures() const {
    return crc_errors_ + repeats_ + wrong_seq_ + no_data_;
  }
  [[nodiscard]] const E2EConfig& config() const { return config_; }

 private:
  E2EConfig config_;
  bool has_last_ = false;
  std::uint8_t last_counter_ = 0;
  std::uint64_t ok_ = 0;
  std::uint64_t crc_errors_ = 0;
  std::uint64_t repeats_ = 0;
  std::uint64_t wrong_seq_ = 0;
  std::uint64_t no_data_ = 0;
};

}  // namespace easis::bus
