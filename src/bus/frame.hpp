// Generic bus frame plus signal codec helpers.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <functional>
#include <optional>
#include <vector>

#include "sim/time.hpp"

namespace easis::bus {

struct Frame {
  /// Message identifier; on CAN this is the (11-bit) arbitration id.
  std::uint32_t id = 0;
  std::vector<std::uint8_t> payload;
};

/// Delivered to every receiving endpoint when a frame completes.
using FrameHandler = std::function<void(const Frame&, sim::SimTime)>;

/// Encodes a double as little-endian float in 4 payload bytes at `offset`.
inline void encode_f32(Frame& frame, std::size_t offset, double value) {
  if (frame.payload.size() < offset + 4) frame.payload.resize(offset + 4);
  const float f = static_cast<float>(value);
  std::uint32_t bits = std::bit_cast<std::uint32_t>(f);
  for (int i = 0; i < 4; ++i) {
    frame.payload[offset + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((bits >> (8 * i)) & 0xFF);
  }
}

/// Decodes a little-endian float from 4 payload bytes at `offset`.
/// A truncated payload is a malformed frame, not a value: returns nullopt
/// instead of a fabricated 0.0 (which a speed signal would trust).
inline std::optional<double> decode_f32(const Frame& frame,
                                        std::size_t offset) {
  if (frame.payload.size() < offset + 4) return std::nullopt;
  std::uint32_t bits = 0;
  for (int i = 0; i < 4; ++i) {
    bits |= static_cast<std::uint32_t>(
                frame.payload[offset + static_cast<std::size_t>(i)])
            << (8 * i);
  }
  return static_cast<double>(std::bit_cast<float>(bits));
}

}  // namespace easis::bus
