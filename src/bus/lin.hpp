// LIN bus model: master/slave polling on a schedule table.
//
// Completes the classic in-vehicle network trio (CAN, FlexRay, LIN) for
// body electronics like the light-control node. The master walks a frame
// schedule; for each slot it broadcasts the header, the publisher of that
// frame id answers with its payload (or stays silent — a no-response
// event), and the response is delivered to every other endpoint.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bus/fault_link.hpp"
#include "bus/frame.hpp"
#include "sim/engine.hpp"

namespace easis::bus {

class LinBus {
 public:
  using EndpointId = std::size_t;
  /// Slave response provider: payload for the polled frame id, or nullopt
  /// for no response (slave dead / not ready).
  using Publisher = std::function<std::optional<std::vector<std::uint8_t>>()>;

  LinBus(sim::Engine& engine, sim::Duration slot = sim::Duration::millis(10));
  LinBus(const LinBus&) = delete;
  LinBus& operator=(const LinBus&) = delete;

  EndpointId attach(std::string name, FrameHandler rx);

  /// Assigns the publisher (responding slave) of a frame id.
  void set_publisher(std::uint32_t frame_id, EndpointId endpoint,
                     Publisher publisher);

  /// The master's polling order; one frame id per slot, repeating.
  void set_schedule(std::vector<std::uint32_t> frame_ids);

  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }

  /// Shared fault model, consulted when a slave response is delivered.
  void set_fault_link(FaultLink* link) { fault_link_ = link; }
  [[nodiscard]] FaultLink* fault_link() const { return fault_link_; }

  [[nodiscard]] sim::Duration slot() const { return slot_; }
  [[nodiscard]] std::uint64_t polls() const { return polls_; }
  [[nodiscard]] std::uint64_t responses() const { return responses_; }
  [[nodiscard]] std::uint64_t no_responses() const { return no_responses_; }
  [[nodiscard]] std::uint64_t frames_lost() const { return lost_; }

 private:
  struct Endpoint {
    std::string name;
    FrameHandler rx;
  };
  struct Slave {
    EndpointId endpoint = 0;
    Publisher publisher;
  };

  sim::Engine& engine_;
  sim::Duration slot_;
  std::vector<Endpoint> endpoints_;
  std::vector<std::uint32_t> schedule_;
  std::vector<std::pair<std::uint32_t, Slave>> publishers_;
  FaultLink* fault_link_ = nullptr;
  bool running_ = false;
  std::uint64_t generation_ = 0;
  std::size_t next_slot_ = 0;
  std::uint64_t polls_ = 0;
  std::uint64_t responses_ = 0;
  std::uint64_t no_responses_ = 0;
  std::uint64_t lost_ = 0;

  void schedule_next(std::uint64_t generation);
  void deliver(const Frame& frame, const Slave* slave);
  [[nodiscard]] Slave* slave_for(std::uint32_t frame_id);
};

}  // namespace easis::bus
