#include "bus/gateway.hpp"

#include <stdexcept>

namespace easis::bus {

Gateway::Gateway(sim::Engine& engine, sim::Duration processing_latency)
    : engine_(engine), latency_(processing_latency) {}

FrameHandler Gateway::register_domain(const std::string& name,
                                      DomainSender sender) {
  if (domains_.contains(name)) {
    throw std::logic_error("Gateway: domain already registered: " + name);
  }
  domains_[name] = std::move(sender);
  return [this, name](const Frame& frame, sim::SimTime) {
    ingress(name, frame);
  };
}

void Gateway::add_route(const std::string& from_domain, std::uint32_t id,
                        const std::string& to_domain, std::uint32_t new_id) {
  if (!domains_.contains(from_domain)) {
    throw std::invalid_argument("Gateway: unknown source domain");
  }
  if (!domains_.contains(to_domain)) {
    throw std::invalid_argument("Gateway: unknown destination domain");
  }
  routes_[RouteKey{from_domain, id}].push_back(RouteTarget{to_domain, new_id});
}

void Gateway::ingress(const std::string& domain, const Frame& frame) {
  auto it = routes_.find(RouteKey{domain, frame.id});
  if (it == routes_.end()) {
    ++dropped_;
    return;
  }
  for (const RouteTarget& target : it->second) {
    Frame out = frame;
    out.id = target.new_id;
    ++routed_;
    engine_.schedule_in(latency_,
                        [this, to = target.to, out = std::move(out)] {
                          domains_.at(to)(out);
                        });
  }
}

}  // namespace easis::bus
