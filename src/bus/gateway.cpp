#include "bus/gateway.hpp"

#include <stdexcept>

#include "util/logging.hpp"

namespace easis::bus {

namespace {
constexpr std::string_view kLog = "gateway";
}

Gateway::Gateway(sim::Engine& engine, sim::Duration processing_latency)
    : engine_(engine), latency_(processing_latency) {}

FrameHandler Gateway::register_domain(const std::string& name,
                                      DomainSender sender) {
  if (domains_.contains(name)) {
    throw std::logic_error("Gateway: domain already registered: " + name);
  }
  domains_[name] = std::move(sender);
  return [this, name](const Frame& frame, sim::SimTime) {
    ingress(name, frame);
  };
}

void Gateway::add_route(const std::string& from_domain, std::uint32_t id,
                        const std::string& to_domain, std::uint32_t new_id) {
  if (!domains_.contains(from_domain)) {
    throw std::invalid_argument("Gateway: unknown source domain");
  }
  if (!domains_.contains(to_domain)) {
    throw std::invalid_argument("Gateway: unknown destination domain");
  }
  routes_[RouteKey{from_domain, id}].push_back(RouteTarget{to_domain, new_id});
}

void Gateway::set_stalled(bool stalled) {
  if (stalled_ == stalled) return;
  stalled_ = stalled;
  if (stalled_) return;
  // Recovery: route the backlog in arrival order.
  std::vector<std::pair<std::string, Frame>> held = std::move(backlog_);
  backlog_.clear();
  for (auto& [domain, frame] : held) route(domain, frame);
}

void Gateway::ingress(const std::string& domain, const Frame& frame) {
  if (stalled_) {
    backlog_.emplace_back(domain, frame);
    return;
  }
  route(domain, frame);
}

void Gateway::route(const std::string& domain, const Frame& frame) {
  const RouteKey key{domain, frame.id};
  auto it = routes_.find(key);
  if (it == routes_.end()) {
    ++dropped_;
    if (++dropped_by_route_[key] == 1) {
      EASIS_LOG(util::LogLevel::kWarn, kLog)
          << "no route for frame id 0x" << std::hex << frame.id << std::dec
          << " from domain '" << domain << "'; dropping (logged once)";
    }
    return;
  }
  for (const RouteTarget& target : it->second) {
    Frame out = frame;
    out.id = target.new_id;
    ++routed_;
    ++delivered_by_route_[key];
    engine_.schedule_in(latency_,
                        [this, to = target.to, out = std::move(out)] {
                          domains_.at(to)(out);
                        });
  }
}

std::uint64_t Gateway::route_delivered(const std::string& from_domain,
                                       std::uint32_t id) const {
  auto it = delivered_by_route_.find(RouteKey{from_domain, id});
  return it == delivered_by_route_.end() ? 0 : it->second;
}

std::uint64_t Gateway::route_dropped(const std::string& from_domain,
                                     std::uint32_t id) const {
  auto it = dropped_by_route_.find(RouteKey{from_domain, id});
  return it == dropped_by_route_.end() ? 0 : it->second;
}

}  // namespace easis::bus
