#include "bus/flexray.hpp"

#include <cassert>
#include <stdexcept>

namespace easis::bus {

FlexRayBus::FlexRayBus(sim::Engine& engine, FlexRayConfig config)
    : engine_(engine), config_(config) {
  if (config_.static_slots == 0) {
    throw std::invalid_argument("FlexRayBus: need at least one slot");
  }
  if (config_.cycle <= sim::Duration::zero()) {
    throw std::invalid_argument("FlexRayBus: cycle must be positive");
  }
  slots_.resize(config_.static_slots);
}

FlexRayBus::EndpointId FlexRayBus::attach(std::string name, FrameHandler rx) {
  endpoints_.push_back(Endpoint{std::move(name), std::move(rx)});
  return endpoints_.size() - 1;
}

void FlexRayBus::assign_slot(std::uint32_t slot, EndpointId endpoint) {
  if (slot >= slots_.size()) {
    throw std::invalid_argument("FlexRayBus: slot out of range");
  }
  if (endpoint >= endpoints_.size()) {
    throw std::invalid_argument("FlexRayBus: bad endpoint");
  }
  if (slots_[slot].owner.has_value()) {
    throw std::logic_error("FlexRayBus: slot already assigned");
  }
  slots_[slot].owner = endpoint;
}

bool FlexRayBus::send(EndpointId from, std::uint32_t slot, Frame frame) {
  if (slot >= slots_.size() || slots_[slot].owner != from) return false;
  slots_[slot].staged = std::move(frame);
  return true;
}

sim::Duration FlexRayBus::slot_length() const {
  return config_.cycle / static_cast<std::int64_t>(config_.static_slots);
}

void FlexRayBus::start() {
  if (running_) throw std::logic_error("FlexRayBus: already running");
  running_ = true;
  ++generation_;
  schedule_cycle(engine_.now(), generation_);
}

void FlexRayBus::stop() {
  running_ = false;
  ++generation_;
}

std::optional<FlexRayBus::EndpointId> FlexRayBus::slot_owner(
    std::uint32_t slot) const {
  assert(slot < slots_.size());
  return slots_[slot].owner;
}

void FlexRayBus::schedule_cycle(sim::SimTime cycle_start,
                                std::uint64_t generation) {
  const sim::Duration slot_len = slot_length();
  for (std::uint32_t s = 0; s < slots_.size(); ++s) {
    // Delivery at the slot end.
    engine_.schedule_at(
        cycle_start + slot_len * (s + 1),
        [this, s, generation] {
          if (generation != generation_ || !running_) return;
          Slot& slot = slots_[s];
          if (!slot.owner || !slot.staged) return;
          Frame frame = std::move(*slot.staged);
          slot.staged.reset();
          FaultLink::Verdict verdict;
          if (fault_link_) verdict = fault_link_->process(frame);
          if (verdict.drop) {
            ++lost_;
            return;
          }
          if (verdict.delay > sim::Duration::zero()) {
            engine_.schedule_in(verdict.delay,
                                [this, frame, from = *slot.owner] {
                                  deliver(frame, from);
                                });
          } else {
            deliver(frame, *slot.owner);
          }
          if (verdict.duplicate) deliver(frame, *slot.owner);
        },
        sim::EventPriority::kKernel);
  }
  engine_.schedule_at(
      cycle_start + config_.cycle,
      [this, cycle_start, generation] {
        if (generation != generation_ || !running_) return;
        ++cycles_;
        schedule_cycle(cycle_start + config_.cycle, generation);
      },
      sim::EventPriority::kKernel);
}

void FlexRayBus::deliver(const Frame& frame, EndpointId from) {
  ++delivered_;
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    if (i == from || !endpoints_[i].rx) continue;
    endpoints_[i].rx(frame, engine_.now());
  }
}

}  // namespace easis::bus
