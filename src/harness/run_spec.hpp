// Job model of the campaign harness: one RunSpec per independent
// simulation run, one RunResult back.
//
// A campaign is a flat list of runs, each fully described by its index and
// a seed derived as util::derive_seed(campaign_seed, run_index). Because
// the seed is a pure function of the index, a run computes the same result
// no matter which worker executes it or in which order — the property the
// deterministic reduction in CampaignReport relies on.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "inject/campaign.hpp"
#include "profile/profiler.hpp"
#include "telemetry/event.hpp"

namespace easis::harness {

/// Immutable description of one run, handed to the campaign's run function.
struct RunSpec {
  /// Position in the campaign, 0-based; doubles as the reduction order.
  std::size_t run_index = 0;
  /// Per-run seed, util::derive_seed(campaign_seed, run_index).
  std::uint64_t seed = 0;
  /// Bench-defined label (e.g. the fault class) carried into diagnostics.
  std::string label;
  /// Dependability-policy id the run executes under ("" = baseline);
  /// policy-sweep campaigns set it so diagnostics and flight dumps name
  /// the policy variant.
  std::string policy_id;
};

enum class RunStatus : std::uint8_t {
  kRunOk = 0,
  /// Exceeded the per-run wall-clock deadline; quarantined by the
  /// supervisor, its (eventual) result discarded.
  kRunTimeout,
  /// The run function threw; what() is kept in RunResult::error.
  kRunError,
  /// Never executed: --fail-fast stopped dispatching after an earlier run
  /// failed. Skipped runs contribute nothing to the reduction.
  kRunSkipped,
};

[[nodiscard]] constexpr const char* to_string(RunStatus status) {
  switch (status) {
    case RunStatus::kRunOk: return "ok";
    case RunStatus::kRunTimeout: return "timeout";
    case RunStatus::kRunError: return "error";
    case RunStatus::kRunSkipped: return "skipped";
  }
  return "?";
}

/// What one run contributes to the campaign. Coverage campaigns fill
/// `coverage`; row-per-run campaigns (e.g. the reset-storm policies) fill
/// `rows`, which the reduction concatenates in run-index order.
struct RunResult {
  RunStatus status = RunStatus::kRunOk;
  inject::CoverageTable coverage;
  std::vector<std::vector<std::string>> rows;
  std::string error;
  /// Telemetry events the run emitted (harvested by the harness from the
  /// per-worker bus). Completed runs carry the full log; quarantined runs
  /// only the flight-recorder ring the supervisor could snapshot.
  std::vector<telemetry::Event> events;
  /// True when `events` is a bounded ring snapshot that lost older events.
  bool events_truncated = false;
  /// Set by the run function when its own result looks wrong (e.g. an
  /// injection no detector saw); flagged runs get a flight-recorder dump.
  std::string misdetect;
  /// Free-text post-mortem context the run keeps current while executing
  /// (e.g. the per-task resource snapshot); the supervisor copies it into
  /// the quarantined result, so flight dumps of hung runs carry the last
  /// known state. Completed runs keep their final note too.
  std::string flight_note;
  /// Hot-path profile of the run, harvested by the harness from the
  /// per-worker profiler when the campaign runs with profiling on
  /// (profile.enabled is false otherwise). Quarantined runs carry no
  /// profile — their worker never returned to harvest one.
  profile::RunProfile profile;
};

/// Execution context passed alongside the spec. Long-running simulations
/// that want to cooperate with hang quarantine can poll cancelled(); the
/// harness never interrupts a run that doesn't — it abandons the worker
/// and keeps the campaign moving instead.
class RunContext {
 public:
  using FlightNoteFn = std::function<void(std::string)>;

  RunContext(const RunSpec& spec, const std::atomic<bool>& cancel,
             FlightNoteFn flight_note = nullptr)
      : spec_(spec), cancel_(cancel), flight_note_(std::move(flight_note)) {}

  [[nodiscard]] const RunSpec& spec() const { return spec_; }
  [[nodiscard]] bool cancelled() const {
    return cancel_.load(std::memory_order_relaxed);
  }

  /// Replaces the run's post-mortem note (see RunResult::flight_note).
  /// Cheap enough to call every supervision cycle; the harness keeps the
  /// latest note where the hang supervisor can snapshot it.
  void set_flight_note(std::string note) const {
    if (flight_note_) flight_note_(std::move(note));
  }

 private:
  const RunSpec& spec_;
  const std::atomic<bool>& cancel_;
  FlightNoteFn flight_note_;
};

}  // namespace easis::harness
