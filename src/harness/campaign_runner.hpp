// Campaign execution engine: shards independent simulation runs across a
// std::thread worker pool with deterministic results and hang quarantine.
//
// Three properties make large campaigns practical (the scale the paper's
// outlook defers, and Fantechi et al. argue complex fault-tolerance
// policies require):
//
//  * determinism  — per-run seeds are derive_seed(campaign_seed, run_index)
//    and results are collected into a vector indexed by run_index, so the
//    reduced output is bit-identical for any --jobs value;
//  * isolation    — each run builds its own sim::Engine world; workers
//    share nothing but the work queue and the results vector;
//  * supervision  — a supervisor thread enforces a per-run wall-clock
//    deadline: a hung or wedged run is settled as kRunTimeout, its worker
//    abandoned and replaced, and the campaign keeps draining. This is the
//    meta-level twin of the software watchdog the repo reproduces: the
//    harness supervises its own workers the way the watchdog supervises
//    runnables.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "harness/run_spec.hpp"

namespace easis::harness {

struct CampaignConfig {
  /// Worker threads; clamped to >= 1. jobs=1 reproduces the serial bench.
  unsigned jobs = 1;
  /// Campaign seed; per-run seeds derive from it (never used directly).
  std::uint64_t seed = 0;
  /// Per-run wall-clock deadline; zero disables the supervisor.
  std::chrono::milliseconds run_deadline{0};
  /// Supervisor poll period (only meaningful with a deadline).
  std::chrono::milliseconds supervisor_poll{2};
  /// When true, workers abandoned after a timeout are detached instead of
  /// joined at campaign end. Needed only for run functions that can hang
  /// forever *without* polling RunContext::cancelled(); keeping it off
  /// keeps shutdown TSan-clean. Detached workers co-own the campaign
  /// state, so a straggler settling after run() returns is harmless.
  bool detach_abandoned_workers = false;
  /// Stop dispatching new runs after the first failed verdict (non-ok
  /// status or a misdetect flag): runs not yet claimed settle as
  /// kRunSkipped. Completed runs still reduce deterministically; which
  /// runs completed depends on scheduling, so fail-fast output is NOT
  /// byte-identical across --jobs values (it is a debugging mode).
  bool fail_fast = false;
  /// Install a hot-path profiler around every run and harvest its profile
  /// into RunResult::profile. Off by default: unprofiled campaigns pay
  /// only the per-site thread-local null check.
  bool profile = false;
  /// Ring capacity of each worker's profiler (raw span records per run);
  /// only meaningful with `profile`.
  std::size_t profile_ring_capacity = 1 << 16;
};

struct CampaignOutcome {
  /// One result per spec, indexed by run_index regardless of worker count
  /// or completion order — the determinism anchor of the whole harness.
  std::vector<RunResult> results;
  std::size_t timeouts = 0;
  std::size_t errors = 0;
  /// Runs never executed because --fail-fast stopped the dispatch.
  std::size_t skipped = 0;
  double wall_seconds = 0.0;
  /// Campaign start in steady_clock nanoseconds — the epoch trace export
  /// rebases span timestamps onto. Wall-clock, artifact-only.
  std::int64_t start_ns = 0;

  [[nodiscard]] double runs_per_second() const {
    return wall_seconds > 0.0
               ? static_cast<double>(results.size()) / wall_seconds
               : 0.0;
  }
};

class CampaignRunner {
 public:
  using RunFn = std::function<RunResult(const RunContext&)>;

  CampaignRunner(CampaignConfig config, RunFn fn);

  /// Builds the spec list for `count` runs: run_index i gets seed
  /// util::derive_seed(campaign_seed, i) and an empty label.
  [[nodiscard]] static std::vector<RunSpec> make_specs(
      std::size_t count, std::uint64_t campaign_seed);

  /// Executes all specs and blocks until every run has settled (completed,
  /// errored, or been quarantined by the supervisor). The specs are copied
  /// into state co-owned by the workers, so the caller's vector stays
  /// usable (CampaignReport wants it for labels).
  [[nodiscard]] CampaignOutcome run(const std::vector<RunSpec>& specs);

  [[nodiscard]] const CampaignConfig& config() const { return config_; }

 private:
  CampaignConfig config_;
  RunFn fn_;
};

}  // namespace easis::harness
