#include "harness/campaign_report.hpp"

#include <sstream>

namespace easis::harness {

CampaignReport::CampaignReport(const std::vector<RunSpec>& specs,
                               const CampaignOutcome& outcome) {
  for (std::size_t i = 0; i < outcome.results.size(); ++i) {
    const RunResult& result = outcome.results[i];
    if (result.status != RunStatus::kRunOk) {
      quarantined_.push_back({i, i < specs.size() ? specs[i].label : "",
                              result.status, result.error});
      continue;
    }
    ++completed_;
    coverage_.merge(result.coverage);
    rows_.insert(rows_.end(), result.rows.begin(), result.rows.end());
  }
}

void CampaignReport::write_coverage_csv(std::ostream& out) const {
  out << "fault_class,detector,detections,experiments,coverage,"
         "mean_latency_ms\n";
  for (const auto& fc : coverage_.fault_classes()) {
    for (const auto& det : coverage_.detector_names()) {
      out << fc << ',' << det << ',' << coverage_.detections(fc, det) << ','
          << coverage_.experiments(fc, det) << ','
          << coverage_.coverage(fc, det);
      const auto* lat = coverage_.latency_stats(fc, det);
      out << ',' << (lat ? lat->mean() : -1.0) << '\n';
    }
  }
}

void CampaignReport::write_rows_csv(std::ostream& out,
                                    const std::string& header) const {
  out << header << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << row[i];
    }
    out << '\n';
  }
}

void CampaignReport::write_timing_csv(std::ostream& out,
                                      const CampaignConfig& config,
                                      const CampaignOutcome& outcome) const {
  out << "jobs,seed,runs,completed,timeouts,errors,wall_s,runs_per_s\n"
      << config.jobs << ',' << config.seed << ',' << outcome.results.size()
      << ',' << completed_ << ',' << outcome.timeouts << ',' << outcome.errors
      << ',' << outcome.wall_seconds << ',' << outcome.runs_per_second()
      << '\n';
}

std::string CampaignReport::quarantine_summary() const {
  if (quarantined_.empty()) return "";
  std::ostringstream out;
  out << quarantined_.size() << " run(s) quarantined:\n";
  for (const auto& q : quarantined_) {
    out << "  run " << q.run_index;
    if (!q.label.empty()) out << " [" << q.label << "]";
    out << ": " << to_string(q.status);
    if (!q.error.empty()) out << " — " << q.error;
    out << '\n';
  }
  return out.str();
}

}  // namespace easis::harness
