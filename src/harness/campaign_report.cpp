#include "harness/campaign_report.hpp"

#include <fstream>
#include <sstream>

#include "profile/report.hpp"
#include "profile/trace_export.hpp"
#include "telemetry/attribution.hpp"
#include "telemetry/metrics.hpp"

namespace easis::harness {

CampaignReport::CampaignReport(const std::vector<RunSpec>& specs,
                               const CampaignOutcome& outcome) {
  for (std::size_t i = 0; i < outcome.results.size(); ++i) {
    const RunResult& result = outcome.results[i];
    runs_.push_back(RunRecord{i,
                              i < specs.size() ? specs[i].label : "",
                              i < specs.size() ? specs[i].seed : 0,
                              result.status,
                              result.error,
                              result.misdetect,
                              result.flight_note,
                              result.events,
                              result.events_truncated,
                              result.profile});
    // Skipped runs never executed (--fail-fast): not quarantined, not
    // completed — they simply don't exist for the reduction.
    if (result.status == RunStatus::kRunSkipped) continue;
    if (result.status != RunStatus::kRunOk) {
      quarantined_.push_back({i, i < specs.size() ? specs[i].label : "",
                              result.status, result.error});
      continue;
    }
    ++completed_;
    coverage_.merge(result.coverage);
    rows_.insert(rows_.end(), result.rows.begin(), result.rows.end());
  }
}

void CampaignReport::write_coverage_csv(std::ostream& out) const {
  out << "fault_class,detector,detections,experiments,coverage,"
         "mean_latency_ms\n";
  for (const auto& fc : coverage_.fault_classes()) {
    for (const auto& det : coverage_.detector_names()) {
      out << fc << ',' << det << ',' << coverage_.detections(fc, det) << ','
          << coverage_.experiments(fc, det) << ','
          << coverage_.coverage(fc, det);
      const auto* lat = coverage_.latency_stats(fc, det);
      out << ',' << (lat ? lat->mean() : -1.0) << '\n';
    }
  }
}

void CampaignReport::write_rows_csv(std::ostream& out,
                                    const std::string& header) const {
  out << header << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << row[i];
    }
    out << '\n';
  }
}

void CampaignReport::write_timing_csv(std::ostream& out,
                                      const CampaignConfig& config,
                                      const CampaignOutcome& outcome) const {
  out << "jobs,seed,runs,completed,timeouts,errors,skipped,wall_s,runs_per_s\n"
      << config.jobs << ',' << config.seed << ',' << outcome.results.size()
      << ',' << completed_ << ',' << outcome.timeouts << ',' << outcome.errors
      << ',' << outcome.skipped << ',' << outcome.wall_seconds << ','
      << outcome.runs_per_second() << '\n';
}

std::string CampaignReport::quarantine_summary() const {
  if (quarantined_.empty()) return "";
  std::ostringstream out;
  out << quarantined_.size() << " run(s) quarantined:\n";
  for (const auto& q : quarantined_) {
    out << "  run " << q.run_index;
    if (!q.label.empty()) out << " [" << q.label << "]";
    out << ": " << to_string(q.status);
    if (!q.error.empty()) out << " — " << q.error;
    out << '\n';
  }
  return out.str();
}

void CampaignReport::write_event_log(std::ostream& out) const {
  out << "# easis campaign event log v1\n";
  out << "# runs=" << runs_.size() << '\n';
  for (const RunRecord& run : runs_) {
    out << "# run index=" << run.run_index << " label=" << run.label
        << " seed=" << run.seed << " status=" << to_string(run.status)
        << " events=" << run.events.size()
        << " truncated=" << (run.events_truncated ? 1 : 0) << '\n';
    for (const telemetry::Event& event : run.events) {
      telemetry::write_event_line(out, event);
      out << '\n';
    }
  }
}

void CampaignReport::write_metrics(std::ostream& out, bool csv) const {
  telemetry::MetricsRegistry registry;
  registry.counter("easis_campaign_runs_total").inc(runs_.size());
  for (const RunRecord& run : runs_) {
    registry
        .counter("easis_campaign_run_status_total",
                 "status=\"" + std::string(to_string(run.status)) + "\"")
        .inc();
    telemetry::replay_into_metrics(run.events, registry);
  }
  if (csv) {
    registry.write_csv(out);
  } else {
    registry.write_prometheus(out);
  }
}

std::vector<std::size_t> CampaignReport::flight_dump_candidates() const {
  std::vector<std::size_t> out;
  for (const RunRecord& run : runs_) {
    if (run.status == RunStatus::kRunSkipped) continue;  // never executed
    if (run.status != RunStatus::kRunOk || !run.misdetect.empty()) {
      out.push_back(run.run_index);
    }
  }
  return out;
}

void CampaignReport::write_flight_dump(std::ostream& out,
                                       std::size_t run_index) const {
  if (run_index >= runs_.size()) return;
  const RunRecord& run = runs_[run_index];
  out << "flight recorder dump — run " << run.run_index;
  if (!run.label.empty()) out << " [" << run.label << "]";
  out << " seed=" << run.seed << " status=" << to_string(run.status) << '\n';
  if (!run.error.empty()) out << "error: " << run.error << '\n';
  if (!run.misdetect.empty()) out << "misdetect: " << run.misdetect << '\n';
  if (!run.flight_note.empty()) {
    // The run's last published post-mortem note — for resource scenarios
    // the per-task budget/usage snapshot at (or near) the hang.
    out << "note:\n" << run.flight_note;
    if (run.flight_note.back() != '\n') out << '\n';
  }
  out << run.events.size() << " event(s)";
  if (run.events_truncated) out << " (older events dropped by the ring)";
  out << '\n';
  for (const telemetry::Event& event : run.events) {
    telemetry::write_event_line(out, event);
    out << '\n';
  }
}

bool CampaignReport::has_profiles() const {
  for (const RunRecord& run : runs_) {
    if (run.profile.enabled) return true;
  }
  return false;
}

void CampaignReport::write_profile_csv(std::ostream& out) const {
  profile::CampaignRollup rollup;
  for (const RunRecord& run : runs_) rollup.add_run(run.profile);
  rollup.write_csv(out);
}

void CampaignReport::write_profile_shape_csv(std::ostream& out) const {
  profile::CampaignRollup rollup;
  for (const RunRecord& run : runs_) rollup.add_run(run.profile);
  rollup.write_shape_csv(out);
}

void CampaignReport::write_trace_json(std::ostream& out,
                                      std::int64_t epoch_ns) const {
  profile::TraceWriter trace(out);
  trace.begin();
  for (const RunRecord& run : runs_) {
    if (!run.profile.enabled) continue;
    const std::string label = run.label.empty()
                                  ? "run" + std::to_string(run.run_index)
                                  : run.label;
    trace.add_run(run.profile,
                  label + "#" + std::to_string(run.run_index), epoch_ns);
  }
  trace.end();
}

std::size_t CampaignReport::write_flight_dumps(
    const std::string& prefix) const {
  std::size_t written = 0;
  for (std::size_t run_index : flight_dump_candidates()) {
    std::ofstream out(prefix + ".run" + std::to_string(run_index) +
                      ".flight.txt");
    if (!out) continue;
    write_flight_dump(out, run_index);
    ++written;
  }
  return written;
}

}  // namespace easis::harness
