// Deterministic reduction of a campaign: per-run partial results fold into
// one coverage table / row list in run-index order, so the report is
// bit-identical no matter how many workers produced the partials.
//
// Wall-clock and throughput are inherently nondeterministic, so they go to
// a *separate* timing CSV; the result CSV stays byte-comparable across
// --jobs values (the property the determinism test locks in). The same
// split governs telemetry: the event log and the metrics export contain
// only sim-time-stamped, run-index-ordered data and are byte-comparable
// too, while flight-recorder dumps exist per failed run.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "harness/campaign_runner.hpp"
#include "inject/campaign.hpp"
#include "profile/profiler.hpp"
#include "telemetry/event.hpp"

namespace easis::harness {

class CampaignReport {
 public:
  /// Reduces the outcome: coverage tables merge and rows concatenate in
  /// run-index order; quarantined/errored runs contribute only to the
  /// quarantine list (their partial results are dropped — that is the
  /// quarantine). Telemetry events are kept for every run, including
  /// quarantined ones (their ring snapshot is all that survives).
  CampaignReport(const std::vector<RunSpec>& specs,
                 const CampaignOutcome& outcome);

  [[nodiscard]] const inject::CoverageTable& coverage() const {
    return coverage_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

  struct QuarantinedRun {
    std::size_t run_index;
    std::string label;
    RunStatus status;
    std::string error;
  };
  [[nodiscard]] const std::vector<QuarantinedRun>& quarantined() const {
    return quarantined_;
  }
  [[nodiscard]] std::size_t completed_runs() const { return completed_; }

  /// Writes the canonical coverage CSV (the exp_coverage /
  /// exp_network_coverage format): fault_class,detector,detections,
  /// experiments,coverage,mean_latency_ms. Deterministic across --jobs.
  void write_coverage_csv(std::ostream& out) const;

  /// Writes concatenated per-run rows under the given header.
  /// Deterministic across --jobs.
  void write_rows_csv(std::ostream& out, const std::string& header) const;

  /// Writes the nondeterministic side channel: one row of wall-clock,
  /// throughput and quarantine counters for this execution.
  void write_timing_csv(std::ostream& out, const CampaignConfig& config,
                        const CampaignOutcome& outcome) const;

  /// Human-readable quarantine summary (empty string when clean).
  [[nodiscard]] std::string quarantine_summary() const;

  /// Writes the structured event log: a per-run `# run ...` header line
  /// followed by the run's canonical event lines, in run-index order.
  /// Deterministic across --jobs (runs quarantined under a wall-clock
  /// deadline are the one documented exception — the snapshot depends on
  /// when the supervisor fired).
  void write_event_log(std::ostream& out) const;

  /// Replays every run's events into a fresh MetricsRegistry (event
  /// counters, chain counters, latency histograms, campaign run counters)
  /// and writes it to `out` — CSV when `csv`, else Prometheus text.
  void write_metrics(std::ostream& out, bool csv = false) const;

  /// Runs that warrant a flight-recorder dump: quarantined, errored, or
  /// self-flagged as misdetecting.
  [[nodiscard]] std::vector<std::size_t> flight_dump_candidates() const;

  /// Writes one run's flight-recorder dump (header + event lines).
  void write_flight_dump(std::ostream& out, std::size_t run_index) const;

  /// Writes `<prefix>.run<index>.flight.txt` for every dump candidate;
  /// returns the number of files written.
  std::size_t write_flight_dumps(const std::string& prefix) const;

  /// True when at least one run carried a harvested hot-path profile
  /// (i.e. the campaign executed with CampaignConfig::profile on).
  [[nodiscard]] bool has_profiles() const;

  /// Writes the full profile rollup CSV (per-span min/mean/p99 wall-time
  /// statistics across runs) — nondeterministic, artifact-only. Runs fold
  /// in run-index order.
  void write_profile_csv(std::ostream& out) const;

  /// Writes the deterministic projection of the rollup (kind,span,depth,
  /// hits,runs) — byte-identical across --jobs; the profile_jobs_
  /// determinism gate compares it.
  void write_profile_shape_csv(std::ostream& out) const;

  /// Writes the campaign's Chrome trace-event JSON (Perfetto-loadable;
  /// one track per worker). `epoch_ns` is CampaignOutcome::start_ns.
  void write_trace_json(std::ostream& out, std::int64_t epoch_ns) const;

 private:
  /// Everything the telemetry exports need, one entry per run.
  struct RunRecord {
    std::size_t run_index;
    std::string label;
    std::uint64_t seed;
    RunStatus status;
    std::string error;
    std::string misdetect;
    std::string flight_note;
    std::vector<telemetry::Event> events;
    bool events_truncated;
    profile::RunProfile profile;
  };

  inject::CoverageTable coverage_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<QuarantinedRun> quarantined_;
  std::vector<RunRecord> runs_;
  std::size_t completed_ = 0;
};

}  // namespace easis::harness
