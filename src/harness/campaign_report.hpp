// Deterministic reduction of a campaign: per-run partial results fold into
// one coverage table / row list in run-index order, so the report is
// bit-identical no matter how many workers produced the partials.
//
// Wall-clock and throughput are inherently nondeterministic, so they go to
// a *separate* timing CSV; the result CSV stays byte-comparable across
// --jobs values (the property the determinism test locks in).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "harness/campaign_runner.hpp"
#include "inject/campaign.hpp"

namespace easis::harness {

class CampaignReport {
 public:
  /// Reduces the outcome: coverage tables merge and rows concatenate in
  /// run-index order; quarantined/errored runs contribute only to the
  /// quarantine list (their partial results are dropped — that is the
  /// quarantine).
  CampaignReport(const std::vector<RunSpec>& specs,
                 const CampaignOutcome& outcome);

  [[nodiscard]] const inject::CoverageTable& coverage() const {
    return coverage_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

  struct QuarantinedRun {
    std::size_t run_index;
    std::string label;
    RunStatus status;
    std::string error;
  };
  [[nodiscard]] const std::vector<QuarantinedRun>& quarantined() const {
    return quarantined_;
  }
  [[nodiscard]] std::size_t completed_runs() const { return completed_; }

  /// Writes the canonical coverage CSV (the exp_coverage /
  /// exp_network_coverage format): fault_class,detector,detections,
  /// experiments,coverage,mean_latency_ms. Deterministic across --jobs.
  void write_coverage_csv(std::ostream& out) const;

  /// Writes concatenated per-run rows under the given header.
  /// Deterministic across --jobs.
  void write_rows_csv(std::ostream& out, const std::string& header) const;

  /// Writes the nondeterministic side channel: one row of wall-clock,
  /// throughput and quarantine counters for this execution.
  void write_timing_csv(std::ostream& out, const CampaignConfig& config,
                        const CampaignOutcome& outcome) const;

  /// Human-readable quarantine summary (empty string when clean).
  [[nodiscard]] std::string quarantine_summary() const;

 private:
  inject::CoverageTable coverage_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<QuarantinedRun> quarantined_;
  std::size_t completed_ = 0;
};

}  // namespace easis::harness
