#include "harness/campaign_runner.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "profile/profiler.hpp"
#include "telemetry/event_bus.hpp"
#include "telemetry/flight_recorder.hpp"
#include "util/random.hpp"

namespace easis::harness {

namespace {

using Clock = std::chrono::steady_clock;

Clock::rep now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

constexpr std::size_t kIdle = static_cast<std::size_t>(-1);

}  // namespace

namespace {

// All campaign-scoped state lives here and is co-owned by every worker
// thread, so an abandoned (detached) worker that settles late touches
// valid memory even after run() has returned.
struct CampaignState {
  struct Worker {
    std::thread thread;
    /// Set by the supervisor when the worker's current run timed out; the
    /// worker stops pulling work once it notices.
    std::atomic<bool> cancel{false};
    /// run_index currently executing, or kIdle.
    std::atomic<std::size_t> current_run{kIdle};
    /// steady_clock time the current run started, as ns-since-epoch rep.
    std::atomic<Clock::rep> started_ns{0};
    bool abandoned = false;

    /// Per-run telemetry capture. The bus sink and the supervisor's
    /// quarantine snapshot both take `telemetry_mutex`, so the ring of a
    /// hung run can be copied out while the run is still emitting. Only
    /// the worker itself resets/harvests between runs.
    std::mutex telemetry_mutex;
    telemetry::EventBus bus;
    telemetry::FlightRecorder flight;
    std::vector<telemetry::Event> event_log;
    /// Latest post-mortem note of the current run (see
    /// RunResult::flight_note); shares telemetry_mutex so the supervisor
    /// can snapshot it together with the flight ring.
    std::string flight_note;
    bool bus_wired = false;

    /// Worker ordinal in spawn order — the trace export's track id.
    unsigned ordinal = 0;
    /// Per-worker hot-path profiler; installed around each run only when
    /// the campaign runs with config.profile. Touched by this worker
    /// alone, so no lock.
    std::optional<profile::Profiler> profiler;
  };

  CampaignConfig config;
  CampaignRunner::RunFn fn;
  std::vector<RunSpec> specs;

  std::atomic<std::size_t> next{0};
  /// Set on the first failed verdict when config.fail_fast; claimed-but-
  /// not-started runs settle as kRunSkipped once it is up.
  std::atomic<bool> stop{false};
  std::vector<RunResult> results;
  std::vector<char> settled;
  std::size_t completed = 0;
  std::size_t timeouts = 0;
  std::size_t errors = 0;
  std::size_t skipped = 0;
  std::mutex results_mutex;
  std::condition_variable all_done;

  std::vector<std::unique_ptr<Worker>> workers;
  std::mutex workers_mutex;

  /// First writer wins; later attempts for the same run are discarded
  /// (that is the quarantine: a timed-out run's late result never lands).
  bool settle(std::size_t run_index, RunResult result) {
    std::lock_guard<std::mutex> lock(results_mutex);
    if (settled[run_index] != 0) return false;
    settled[run_index] = 1;
    if (result.status == RunStatus::kRunTimeout) ++timeouts;
    if (result.status == RunStatus::kRunError) ++errors;
    if (result.status == RunStatus::kRunSkipped) ++skipped;
    if (config.fail_fast && result.status != RunStatus::kRunSkipped &&
        (result.status != RunStatus::kRunOk || !result.misdetect.empty())) {
      stop.store(true, std::memory_order_release);
    }
    results[run_index] = std::move(result);
    ++completed;
    if (completed == settled.size()) all_done.notify_all();
    return true;
  }
};

void worker_main(const std::shared_ptr<CampaignState>& state,
                 CampaignState::Worker* self);

/// Caller must hold state->workers_mutex.
void spawn_worker_locked(const std::shared_ptr<CampaignState>& state) {
  auto worker = std::make_unique<CampaignState::Worker>();
  auto* raw = worker.get();
  raw->ordinal = static_cast<unsigned>(state->workers.size());
  if (state->config.profile) {
    profile::Profiler::Config pconfig;
    pconfig.ring_capacity = state->config.profile_ring_capacity;
    raw->profiler.emplace(pconfig);
  }
  state->workers.push_back(std::move(worker));
  raw->thread = std::thread([state, raw] { worker_main(state, raw); });
}

void worker_main(const std::shared_ptr<CampaignState>& state,
                 CampaignState::Worker* self) {
  while (!self->cancel.load(std::memory_order_acquire)) {
    const std::size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= state->specs.size()) break;

    if (state->stop.load(std::memory_order_acquire)) {
      // --fail-fast tripped: drain the remaining queue as skipped so the
      // campaign still settles every index (and run() can return).
      RunResult skipped;
      skipped.status = RunStatus::kRunSkipped;
      skipped.error = "skipped by --fail-fast";
      state->settle(i, std::move(skipped));
      continue;
    }

    {
      // Fresh telemetry per run: seq restarts at 0 and the correlation
      // state clears, so the captured log depends only on the run itself
      // (the determinism contract across --jobs values).
      std::lock_guard<std::mutex> lock(self->telemetry_mutex);
      self->bus.reset();
      self->flight.clear();
      self->event_log.clear();
      self->flight_note.clear();
      if (!self->bus_wired) {
        self->bus_wired = true;
        self->bus.add_sink([self](const telemetry::Event& event) {
          std::lock_guard<std::mutex> sink_lock(self->telemetry_mutex);
          self->flight.on_event(event);
          self->event_log.push_back(event);
        });
      }
    }

    // started_ns is published before current_run so the supervisor's
    // acquire-load of current_run always sees a matching start time.
    self->started_ns.store(now_ns(), std::memory_order_relaxed);
    self->current_run.store(i, std::memory_order_release);

    // Fresh profiler state per run; the scope uninstalls before harvest so
    // nothing records while the profile is being resolved. Exceptions are
    // fine: ScopedSpans close during unwinding, leaving the stack empty.
    std::optional<profile::ProfileScope> profile_scope;
    if (self->profiler.has_value()) {
      self->profiler->begin_run();
      profile_scope.emplace(*self->profiler);
    }

    RunResult result;
    try {
      telemetry::EventScope scope(self->bus);
      result = state->fn(RunContext(
          state->specs[i], self->cancel, [self](std::string note) {
            std::lock_guard<std::mutex> note_lock(self->telemetry_mutex);
            self->flight_note = std::move(note);
          }));
    } catch (const std::exception& e) {
      result = RunResult{};
      result.status = RunStatus::kRunError;
      result.error = e.what();
    } catch (...) {
      result = RunResult{};
      result.status = RunStatus::kRunError;
      result.error = "unknown exception";
    }

    if (profile_scope.has_value()) {
      profile_scope.reset();
      result.profile = self->profiler->harvest_run(self->ordinal);
    }

    {
      // Completed (or errored) runs carry their full event log; a
      // quarantined run's late log is discarded with its result.
      std::lock_guard<std::mutex> lock(self->telemetry_mutex);
      result.events = std::move(self->event_log);
      self->event_log.clear();
      if (result.flight_note.empty()) result.flight_note = self->flight_note;
    }

    self->current_run.store(kIdle, std::memory_order_release);
    state->settle(i, std::move(result));
  }
}

void supervisor_main(const std::shared_ptr<CampaignState>& state) {
  const auto deadline_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                               state->config.run_deadline)
                               .count();
  while (true) {
    {
      std::unique_lock<std::mutex> lock(state->results_mutex);
      if (state->all_done.wait_for(
              lock, state->config.supervisor_poll,
              [&] { return state->completed == state->specs.size(); })) {
        return;
      }
    }

    std::lock_guard<std::mutex> workers_lock(state->workers_mutex);
    // Index loop: spawn_worker_locked() below grows the vector.
    const std::size_t worker_count = state->workers.size();
    for (std::size_t w = 0; w < worker_count; ++w) {
      auto* worker = state->workers[w].get();
      if (worker->abandoned) continue;
      const std::size_t run =
          worker->current_run.load(std::memory_order_acquire);
      if (run == kIdle) continue;
      const auto started = worker->started_ns.load(std::memory_order_relaxed);
      if (now_ns() - started < deadline_ns) continue;

      // Quarantine: settle the run as a timeout (the worker's own late
      // result, if it ever arrives, loses the first-writer race), stop the
      // worker from pulling more work, and backfill the pool if unclaimed
      // work remains.
      RunResult timed_out;
      timed_out.status = RunStatus::kRunTimeout;
      timed_out.error =
          "exceeded run deadline on '" + state->specs[run].label + "'";
      {
        // The hung run never returns its log; its flight-recorder ring is
        // the only record of what it was doing. Snapshot it before the
        // settle so the dump lands in the quarantined result.
        std::lock_guard<std::mutex> tlock(worker->telemetry_mutex);
        timed_out.events = worker->flight.snapshot();
        timed_out.events_truncated = worker->flight.dropped() > 0;
        // Last note the hung run published (e.g. its resource snapshot):
        // the only post-mortem state beyond the flight ring.
        timed_out.flight_note = worker->flight_note;
      }
      worker->cancel.store(true, std::memory_order_release);
      worker->abandoned = true;
      state->settle(run, std::move(timed_out));
      if (state->next.load(std::memory_order_relaxed) <
          state->specs.size()) {
        spawn_worker_locked(state);
      }
    }
  }
}

}  // namespace

CampaignRunner::CampaignRunner(CampaignConfig config, RunFn fn)
    : config_(config), fn_(std::move(fn)) {
  config_.jobs = std::max(1u, config_.jobs);
  if (config_.supervisor_poll <= std::chrono::milliseconds::zero()) {
    config_.supervisor_poll = std::chrono::milliseconds(2);
  }
}

std::vector<RunSpec> CampaignRunner::make_specs(std::size_t count,
                                                std::uint64_t campaign_seed) {
  std::vector<RunSpec> specs(count);
  for (std::size_t i = 0; i < count; ++i) {
    specs[i].run_index = i;
    specs[i].seed = util::derive_seed(campaign_seed, i);
  }
  return specs;
}

CampaignOutcome CampaignRunner::run(const std::vector<RunSpec>& specs) {
  const std::size_t n = specs.size();
  auto state = std::make_shared<CampaignState>();
  state->config = config_;
  state->fn = fn_;
  state->specs = specs;
  state->results.assign(n, RunResult{});
  state->settled.assign(n, 0);

  const auto wall_start = Clock::now();
  const std::int64_t start_ns = now_ns();

  if (n > 0) {
    {
      std::lock_guard<std::mutex> lock(state->workers_mutex);
      const auto pool = std::min<std::size_t>(config_.jobs, n);
      for (std::size_t i = 0; i < pool; ++i) spawn_worker_locked(state);
    }

    std::thread supervisor;
    if (config_.run_deadline > std::chrono::milliseconds::zero()) {
      supervisor = std::thread([state] { supervisor_main(state); });
    }

    {
      std::unique_lock<std::mutex> lock(state->results_mutex);
      state->all_done.wait(lock, [&] { return state->completed == n; });
    }
    if (supervisor.joinable()) supervisor.join();

    // Healthy workers exit once the queue drains; abandoned ones exit when
    // their cancelled run returns (cooperative runs poll cancelled()).
    // Truly wedged runs need detach_abandoned_workers; the detached thread
    // keeps the shared State alive, so its late settle is discarded safely.
    std::lock_guard<std::mutex> lock(state->workers_mutex);
    for (auto& worker : state->workers) {
      if (!worker->thread.joinable()) continue;
      if (worker->abandoned && config_.detach_abandoned_workers) {
        worker->thread.detach();
      } else {
        worker->thread.join();
      }
    }
  }

  CampaignOutcome outcome;
  {
    // Detached stragglers may still hold the state; harvesting under the
    // lock keeps their (discarded) settle attempts race-free.
    std::lock_guard<std::mutex> lock(state->results_mutex);
    outcome.results = std::move(state->results);
    outcome.timeouts = state->timeouts;
    outcome.errors = state->errors;
    outcome.skipped = state->skipped;
  }
  outcome.wall_seconds =
      std::chrono::duration<double>(Clock::now() - wall_start).count();
  outcome.start_ns = start_ns;
  return outcome;
}

}  // namespace easis::harness
