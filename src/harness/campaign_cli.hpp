// Shared CLI surface of the campaign binaries: every harness-ported bench
// exposes the same --jobs/--seed/--runs/--csv quartet (plus --deadline-ms
// and --timing-csv) and the util::TelemetryFlags group (--log-level,
// --events-out, --metrics-out, --flight-prefix), so campaign automation
// can drive any of them uniformly.
#pragma once

#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "harness/campaign_report.hpp"
#include "harness/campaign_runner.hpp"
#include "util/argparse.hpp"

namespace easis::harness {

class CampaignCli {
 public:
  unsigned jobs = 1;
  std::uint64_t seed = 0;
  std::uint64_t runs = 0;
  std::string csv;
  std::string timing_csv;
  std::uint64_t deadline_ms = 0;
  bool fail_fast = false;
  util::TelemetryFlags telemetry;

  CampaignCli(const std::string& program, const std::string& description,
              std::uint64_t default_seed, std::uint64_t default_runs,
              const std::string& runs_help, const std::string& default_csv)
      : seed(default_seed),
        runs(default_runs),
        csv(default_csv),
        parser_(program, description) {
    parser_.add("jobs", &jobs, "worker threads (1 = serial)");
    parser_.add("seed", &seed, "campaign seed; per-run seeds derive from it");
    parser_.add("runs", &runs, runs_help);
    parser_.add("csv", &csv, "result CSV path (deterministic across --jobs)");
    parser_.add("timing-csv", &timing_csv,
                "wall-clock/throughput CSV path (empty = skip)");
    parser_.add("deadline-ms", &deadline_ms,
                "per-run wall-clock deadline, 0 = unguarded");
    parser_.add("fail-fast", &fail_fast,
                "stop dispatching new runs after the first failed verdict "
                "(completed runs still flush deterministically)");
    telemetry.register_flags(parser_);
  }

  /// Returns true when the program should proceed; otherwise exit with
  /// exit_code().
  [[nodiscard]] bool parse(int argc, const char* const* argv) {
    ok_ = parser_.parse(argc, argv, std::cerr) &&
          telemetry.apply_log_level(std::cerr);
    return ok_;
  }

  [[nodiscard]] int exit_code() const { return parser_.exited() ? 0 : 2; }

  /// Access to the underlying parser so a bench can register extra flags
  /// (e.g. exp_policy_sweep's --policies) before parse().
  [[nodiscard]] util::ArgParser& parser() { return parser_; }

  [[nodiscard]] CampaignConfig config() const {
    CampaignConfig config;
    config.jobs = jobs;
    config.seed = seed;
    config.run_deadline = std::chrono::milliseconds(deadline_ms);
    config.fail_fast = fail_fast;
    // Any profiling export (--trace-out / --profile-csv / --profile-shape)
    // turns the per-run profiler on; without one the campaign pays only
    // the per-site thread-local null check.
    config.profile = telemetry.profiling_requested();
    return config;
  }

  /// The prefix flight-recorder dumps are written under: --flight-prefix
  /// when given, else the result CSV path with a trailing ".csv" stripped.
  [[nodiscard]] std::string flight_prefix() const {
    if (!telemetry.flight_prefix.empty()) return telemetry.flight_prefix;
    std::string prefix = csv;
    if (prefix.size() > 4 && prefix.rfind(".csv") == prefix.size() - 4) {
      prefix.resize(prefix.size() - 4);
    }
    return prefix;
  }

  /// Writes the telemetry artifacts the flags requested: the event log
  /// (--events-out), the metrics export (--metrics-out; ".csv" suffix
  /// selects CSV, else Prometheus text), the profiling exports
  /// (--trace-out / --profile-csv / --profile-shape), and — always — one
  /// flight dump per failed/misdetecting/quarantined run. The outcome
  /// supplies the trace epoch. Progress notes go to `log`.
  void write_artifacts(const CampaignReport& report,
                       const CampaignOutcome& outcome,
                       std::ostream& log) const {
    if (!telemetry.events_out.empty()) {
      std::ofstream out(telemetry.events_out);
      report.write_event_log(out);
      log << "event log: " << telemetry.events_out << '\n';
    }
    if (!telemetry.metrics_out.empty()) {
      std::ofstream out(telemetry.metrics_out);
      const bool as_csv =
          telemetry.metrics_out.size() > 4 &&
          telemetry.metrics_out.rfind(".csv") ==
              telemetry.metrics_out.size() - 4;
      report.write_metrics(out, as_csv);
      log << "metrics: " << telemetry.metrics_out << '\n';
    }
    if (!telemetry.profile_csv.empty()) {
      std::ofstream out(telemetry.profile_csv);
      report.write_profile_csv(out);
      log << "profile rollup: " << telemetry.profile_csv << '\n';
    }
    if (!telemetry.profile_shape.empty()) {
      std::ofstream out(telemetry.profile_shape);
      report.write_profile_shape_csv(out);
      log << "profile shape: " << telemetry.profile_shape << '\n';
    }
    if (!telemetry.trace_out.empty()) {
      std::ofstream out(telemetry.trace_out);
      report.write_trace_json(out, outcome.start_ns);
      log << "trace: " << telemetry.trace_out << '\n';
    }
    const std::size_t dumps = report.write_flight_dumps(flight_prefix());
    if (dumps > 0) {
      log << dumps << " flight-recorder dump(s): " << flight_prefix()
          << ".run<index>.flight.txt\n";
    }
  }

 private:
  util::ArgParser parser_;
  bool ok_ = false;
};

}  // namespace easis::harness
