// Shared CLI surface of the campaign binaries: every harness-ported bench
// exposes the same --jobs/--seed/--runs/--csv quartet (plus --deadline-ms
// and --timing-csv), so campaign automation can drive any of them
// uniformly.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>

#include "harness/campaign_runner.hpp"
#include "util/argparse.hpp"

namespace easis::harness {

class CampaignCli {
 public:
  unsigned jobs = 1;
  std::uint64_t seed = 0;
  std::uint64_t runs = 0;
  std::string csv;
  std::string timing_csv;
  std::uint64_t deadline_ms = 0;

  CampaignCli(const std::string& program, const std::string& description,
              std::uint64_t default_seed, std::uint64_t default_runs,
              const std::string& runs_help, const std::string& default_csv)
      : seed(default_seed),
        runs(default_runs),
        csv(default_csv),
        parser_(program, description) {
    parser_.add("jobs", &jobs, "worker threads (1 = serial)");
    parser_.add("seed", &seed, "campaign seed; per-run seeds derive from it");
    parser_.add("runs", &runs, runs_help);
    parser_.add("csv", &csv, "result CSV path (deterministic across --jobs)");
    parser_.add("timing-csv", &timing_csv,
                "wall-clock/throughput CSV path (empty = skip)");
    parser_.add("deadline-ms", &deadline_ms,
                "per-run wall-clock deadline, 0 = unguarded");
  }

  /// Returns true when the program should proceed; otherwise exit with
  /// exit_code().
  [[nodiscard]] bool parse(int argc, const char* const* argv) {
    ok_ = parser_.parse(argc, argv, std::cerr);
    return ok_;
  }

  [[nodiscard]] int exit_code() const { return parser_.exited() ? 0 : 2; }

  [[nodiscard]] CampaignConfig config() const {
    CampaignConfig config;
    config.jobs = jobs;
    config.seed = seed;
    config.run_deadline = std::chrono::milliseconds(deadline_ms);
    return config;
  }

 private:
  util::ArgParser parser_;
  bool ok_ = false;
};

}  // namespace easis::harness
