// Network fault injection factories (tentpole extension of paper §4.5).
//
// The paper injects computation errors (frequency/sequence manipulation);
// these factories inject the *communication* counterparts against the bus
// fault model: frame corruption, correlated loss bursts, a babbling-idiot
// node, network partition and a gateway stall. All operate on the shared
// bus primitives (FaultLink / BabblingIdiot / Gateway), so any campaign
// can aim them at any bus.
#pragma once

#include <cstdint>

#include "bus/fault_link.hpp"
#include "bus/gateway.hpp"
#include "inject/injector.hpp"

namespace easis::inject {

/// Random single-bit corruption of `probability` of the link's frames.
/// E2E CRC checks are the intended detector.
[[nodiscard]] Injection make_frame_corruption(bus::FaultLink& link,
                                              double probability,
                                              sim::SimTime start,
                                              sim::Duration duration);

/// Loses the next `frames` deliveries in a row from `start` (correlated
/// EMI burst). Self-limiting: no revert needed.
[[nodiscard]] Injection make_loss_burst(bus::FaultLink& link,
                                        std::uint64_t frames,
                                        sim::SimTime start);

/// Starts the rogue node's flooder; on an arbitrated bus this starves all
/// lower-priority traffic until reverted.
[[nodiscard]] Injection make_babbling_idiot(bus::BabblingIdiot& babbler,
                                            sim::SimTime start,
                                            sim::Duration duration);

/// Severs the link completely (everything lost) for `duration`.
[[nodiscard]] Injection make_network_partition(bus::FaultLink& link,
                                               sim::SimTime start,
                                               sim::Duration duration);

/// Hangs the gateway's routing task: ingress backs up in the stall
/// backlog and is flushed on revert.
[[nodiscard]] Injection make_gateway_stall(bus::Gateway& gateway,
                                           sim::SimTime start,
                                           sim::Duration duration);

}  // namespace easis::inject
