// Campaign measurement: detection coverage and latency accounting for
// injection experiments (paper outlook: "further analysis of fault
// detection coverage").
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/stats.hpp"

namespace easis::inject {

/// Records, per detector, the first detection after an injection instant.
class DetectionRecorder {
 public:
  /// Declares a detector so coverage can count misses.
  void add_detector(const std::string& name);

  /// Marks the injection instant; first_detection latencies are relative
  /// to the most recent call.
  void mark_injection(sim::SimTime at);

  /// Called from the detector's callback; only the first call after the
  /// last mark_injection() is kept.
  void record(const std::string& detector, sim::SimTime at);

  [[nodiscard]] std::vector<std::string> detectors() const;
  [[nodiscard]] bool detected(const std::string& detector) const;
  [[nodiscard]] std::optional<sim::Duration> latency(
      const std::string& detector) const;

  /// Clears detections (keeps the detector set) for the next experiment.
  void reset();

 private:
  std::map<std::string, std::optional<sim::SimTime>> first_;
  sim::SimTime injected_at_;
};

/// Aggregates detection results over many experiments into a coverage
/// table: fault class x detector -> (detected / total, latency stats).
class CoverageTable {
 public:
  void add_result(const std::string& fault_class, const std::string& detector,
                  bool detected, std::optional<sim::Duration> latency);

  /// Folds another table's cells into this one (counts add up, latency
  /// samples replay through util::Stats::merge). Campaign shards merged in
  /// run-index order reproduce the serial table exactly; any other merge
  /// order yields the same counts and the same latency stats up to fp
  /// rounding of mean/variance.
  void merge(const CoverageTable& other);

  [[nodiscard]] std::size_t total_experiments() const;

  [[nodiscard]] std::uint32_t experiments(const std::string& fault_class,
                                          const std::string& detector) const;
  [[nodiscard]] std::uint32_t detections(const std::string& fault_class,
                                         const std::string& detector) const;
  [[nodiscard]] double coverage(const std::string& fault_class,
                                const std::string& detector) const;
  [[nodiscard]] const util::Stats* latency_stats(
      const std::string& fault_class, const std::string& detector) const;

  [[nodiscard]] std::vector<std::string> fault_classes() const;
  [[nodiscard]] std::vector<std::string> detector_names() const;

  /// Prints an aligned text table (the coverage "figure" of the benches).
  void print(std::ostream& out) const;

 private:
  struct Cell {
    std::uint32_t experiments = 0;
    std::uint32_t detections = 0;
    util::Stats latency_ms;
  };
  std::map<std::pair<std::string, std::string>, Cell> cells_;

  [[nodiscard]] const Cell* cell(const std::string& fault_class,
                                 const std::string& detector) const;
};

}  // namespace easis::inject
