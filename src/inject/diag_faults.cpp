#include "inject/diag_faults.hpp"

namespace easis::inject {

Injection make_diag_request_corruption(diag::DiagTester& tester,
                                       sim::SimTime start,
                                       sim::Duration duration) {
  Injection injection;
  injection.name = "diag_request_corruption(" + tester.config().name + ")";
  injection.start = start;
  injection.duration = duration;
  injection.apply = [&tester] { tester.set_corrupt_sid(true); };
  injection.revert = [&tester] { tester.set_corrupt_sid(false); };
  return injection;
}

Injection make_diag_response_drop(diag::DiagServer& server, sim::SimTime start,
                                  sim::Duration duration) {
  Injection injection;
  injection.name = "diag_response_drop(" + server.config().name + ")";
  injection.start = start;
  injection.duration = duration;
  injection.apply = [&server] { server.set_response_drop(true); };
  injection.revert = [&server] { server.set_response_drop(false); };
  return injection;
}

Injection make_diag_blackout(diag::DiagServer& server, sim::SimTime start,
                             sim::Duration duration) {
  Injection injection;
  injection.name = "diag_blackout(" + server.config().name + ")";
  injection.start = start;
  injection.duration = duration;
  injection.apply = [&server] { server.set_blackout(true); };
  injection.revert = [&server] { server.set_blackout(false); };
  return injection;
}

}  // namespace easis::inject
