#include "inject/campaign.hpp"

#include <algorithm>
#include <iomanip>
#include <set>
#include <sstream>

namespace easis::inject {

void DetectionRecorder::add_detector(const std::string& name) {
  first_.try_emplace(name, std::nullopt);
}

void DetectionRecorder::mark_injection(sim::SimTime at) { injected_at_ = at; }

void DetectionRecorder::record(const std::string& detector, sim::SimTime at) {
  auto it = first_.find(detector);
  if (it == first_.end()) {
    first_.emplace(detector, at);
    return;
  }
  if (!it->second.has_value()) it->second = at;
}

std::vector<std::string> DetectionRecorder::detectors() const {
  std::vector<std::string> out;
  out.reserve(first_.size());
  for (const auto& [name, _] : first_) out.push_back(name);
  return out;
}

bool DetectionRecorder::detected(const std::string& detector) const {
  auto it = first_.find(detector);
  return it != first_.end() && it->second.has_value();
}

std::optional<sim::Duration> DetectionRecorder::latency(
    const std::string& detector) const {
  auto it = first_.find(detector);
  if (it == first_.end() || !it->second.has_value()) return std::nullopt;
  return *it->second - injected_at_;
}

void DetectionRecorder::reset() {
  for (auto& [_, detection] : first_) detection.reset();
}

void CoverageTable::add_result(const std::string& fault_class,
                               const std::string& detector, bool detected,
                               std::optional<sim::Duration> latency) {
  Cell& cell = cells_[{fault_class, detector}];
  ++cell.experiments;
  if (detected) {
    ++cell.detections;
    if (latency) cell.latency_ms.add(latency->as_millis());
  }
}

void CoverageTable::merge(const CoverageTable& other) {
  if (&other == this) {
    // Self-merge doubles every cell; take a snapshot so the loop below
    // doesn't walk a map it is mutating.
    merge(CoverageTable(other));
    return;
  }
  for (const auto& [key, other_cell] : other.cells_) {
    Cell& mine = cells_[key];
    mine.experiments += other_cell.experiments;
    mine.detections += other_cell.detections;
    mine.latency_ms.merge(other_cell.latency_ms);
  }
}

std::size_t CoverageTable::total_experiments() const {
  std::size_t total = 0;
  for (const auto& [key, cell] : cells_) total += cell.experiments;
  return total;
}

const CoverageTable::Cell* CoverageTable::cell(
    const std::string& fault_class, const std::string& detector) const {
  auto it = cells_.find({fault_class, detector});
  return it == cells_.end() ? nullptr : &it->second;
}

std::uint32_t CoverageTable::experiments(const std::string& fault_class,
                                         const std::string& detector) const {
  const Cell* c = cell(fault_class, detector);
  return c ? c->experiments : 0;
}

std::uint32_t CoverageTable::detections(const std::string& fault_class,
                                        const std::string& detector) const {
  const Cell* c = cell(fault_class, detector);
  return c ? c->detections : 0;
}

double CoverageTable::coverage(const std::string& fault_class,
                               const std::string& detector) const {
  const Cell* c = cell(fault_class, detector);
  if (c == nullptr || c->experiments == 0) return 0.0;
  return static_cast<double>(c->detections) / c->experiments;
}

const util::Stats* CoverageTable::latency_stats(
    const std::string& fault_class, const std::string& detector) const {
  const Cell* c = cell(fault_class, detector);
  if (c == nullptr || c->latency_ms.empty()) return nullptr;
  return &c->latency_ms;
}

std::vector<std::string> CoverageTable::fault_classes() const {
  std::set<std::string> names;
  for (const auto& [key, _] : cells_) names.insert(key.first);
  return {names.begin(), names.end()};
}

std::vector<std::string> CoverageTable::detector_names() const {
  std::set<std::string> names;
  for (const auto& [key, _] : cells_) names.insert(key.second);
  return {names.begin(), names.end()};
}

void CoverageTable::print(std::ostream& out) const {
  const auto faults = fault_classes();
  const auto detectors = detector_names();
  std::size_t fault_width = 12;
  for (const auto& f : faults) fault_width = std::max(fault_width, f.size());

  out << std::left << std::setw(static_cast<int>(fault_width + 2))
      << "fault class";
  for (const auto& d : detectors) {
    out << std::setw(26) << (d + " cov% (lat ms)");
  }
  out << '\n';

  for (const auto& f : faults) {
    out << std::left << std::setw(static_cast<int>(fault_width + 2)) << f;
    for (const auto& d : detectors) {
      std::ostringstream cell_text;
      const auto n = experiments(f, d);
      if (n == 0) {
        cell_text << "-";
      } else {
        cell_text << std::fixed << std::setprecision(0)
                  << coverage(f, d) * 100.0 << "%";
        if (const util::Stats* lat = latency_stats(f, d)) {
          cell_text << " (" << std::setprecision(1) << lat->mean() << ")";
        }
        cell_text << " [" << detections(f, d) << "/" << n << "]";
      }
      out << std::setw(26) << cell_text.str();
    }
    out << '\n';
  }
}

}  // namespace easis::inject
