#include "inject/network_faults.hpp"

#include <memory>

namespace easis::inject {

Injection make_frame_corruption(bus::FaultLink& link, double probability,
                                sim::SimTime start, sim::Duration duration) {
  Injection inj;
  inj.name = "frame_corruption";
  inj.start = start;
  inj.duration = duration;
  // The previous config is only known at apply time; stash it for revert.
  auto saved = std::make_shared<bus::FaultLinkConfig>();
  inj.apply = [&link, probability, saved] {
    *saved = link.config();
    bus::FaultLinkConfig config = *saved;
    config.corrupt_probability = probability;
    link.set_config(config);
  };
  inj.revert = [&link, saved] { link.set_config(*saved); };
  return inj;
}

Injection make_loss_burst(bus::FaultLink& link, std::uint64_t frames,
                          sim::SimTime start) {
  Injection inj;
  inj.name = "loss_burst";
  inj.start = start;
  inj.apply = [&link, frames] { link.start_loss_burst(frames); };
  return inj;
}

Injection make_babbling_idiot(bus::BabblingIdiot& babbler, sim::SimTime start,
                              sim::Duration duration) {
  Injection inj;
  inj.name = "babbling_idiot";
  inj.start = start;
  inj.duration = duration;
  inj.apply = [&babbler] { babbler.start(); };
  inj.revert = [&babbler] { babbler.stop(); };
  return inj;
}

Injection make_network_partition(bus::FaultLink& link, sim::SimTime start,
                                 sim::Duration duration) {
  Injection inj;
  inj.name = "network_partition";
  inj.start = start;
  inj.duration = duration;
  inj.apply = [&link] { link.set_partitioned(true); };
  inj.revert = [&link] { link.set_partitioned(false); };
  return inj;
}

Injection make_gateway_stall(bus::Gateway& gateway, sim::SimTime start,
                             sim::Duration duration) {
  Injection inj;
  inj.name = "gateway_stall";
  inj.start = start;
  inj.duration = duration;
  inj.apply = [&gateway] { gateway.set_stalled(true); };
  inj.revert = [&gateway] { gateway.set_stalled(false); };
  return inj;
}

}  // namespace easis::inject
