// Environmental fault factories (robustness extension).
//
// The environmental class of failures the Environment Supervision Unit
// exists for: thermal ramps and runaway self-heating, temperature-sensor
// faults (stuck-at, implausible offset), fault-memory journal fill, NVM
// write-error bursts and erase-cycle wear-out. Each factory manipulates
// the thermal model or the NVM store, so detection happens through the
// unit's ladder/plausibility/watermark rules — never by the injector
// telling anyone.
#pragma once

#include <cstdint>

#include "fmf/fmf.hpp"
#include "fmf/nvm.hpp"
#include "inject/injector.hpp"
#include "sim/engine.hpp"
#include "sim/thermal.hpp"

namespace easis::inject {

/// Thermal ramp: raises the ambient temperature by `step_c` every `period`
/// until it reaches `target_c` (a climate-chamber ramp; the junction
/// follows with the model's time constant). Reverting restores the
/// pre-ramp ambient — the junction then cools back down the same way.
[[nodiscard]] Injection make_thermal_ramp(sim::Engine& engine,
                                          sim::ThermalModel& thermal,
                                          double target_c, double step_c,
                                          sim::Duration period,
                                          sim::SimTime start,
                                          sim::Duration duration);

/// Stuck temperature sensor: the reading freezes at its current value
/// while the junction keeps moving underneath.
[[nodiscard]] Injection make_sensor_stuck(sim::ThermalModel& thermal,
                                          sim::SimTime start,
                                          sim::Duration duration);

/// Implausible sensor offset: a constant measurement error of `offset_c`
/// (large offsets push the reading outside the plausibility band).
[[nodiscard]] Injection make_sensor_offset(sim::ThermalModel& thermal,
                                           double offset_c, sim::SimTime start,
                                           sim::Duration duration);

/// Fault-memory flood: records `dtcs_per_period` synthetic DTCs (distinct
/// applications from `first_app` up, freeze frames included) every
/// `period` and persists after each batch, driving the journal towards
/// the bank capacity.
[[nodiscard]] Injection make_dtc_flood(sim::Engine& engine,
                                       fmf::FaultManagementFramework& fmf,
                                       std::uint32_t first_app,
                                       std::uint32_t dtcs_per_period,
                                       sim::Duration period, sim::SimTime start,
                                       sim::Duration duration);

/// NVM write-error burst: the next `count` commits fail as transient
/// flash write faults.
[[nodiscard]] Injection make_nvm_write_fault_burst(fmf::NvmStore& nvm,
                                                   std::uint32_t count,
                                                   sim::SimTime start);

/// Commit storm: persists the fault memory every `period`, burning erase
/// cycles towards the wear budget (a runaway maintenance job).
[[nodiscard]] Injection make_commit_storm(sim::Engine& engine,
                                          fmf::FaultManagementFramework& fmf,
                                          sim::Duration period,
                                          sim::SimTime start,
                                          sim::Duration duration);

}  // namespace easis::inject
