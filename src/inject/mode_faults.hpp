// Mode-aware fault factories (power-mode subsystem).
//
// The duty-cycled fault classes a sensor node actually dies from: a dead
// wake timer stranding the node in deep sleep, a peripheral driver that
// vetoes every sleep request, a wake storm that never ends, a flash
// window that never closes, a mode machine hanging mid-transition, and a
// rogue wake interrupt heartbeating through a contracted silence. Each
// factory manipulates the workload's injection surface (controller flags,
// manager hang/refuse switches, direct task activation) — detection
// happens through the ModeSupervisionUnit's dwell/hang/refusal rules and
// the sleep overlay's silence guard, never by the injector telling anyone.
#pragma once

#include <functional>

#include "inject/injector.hpp"
#include "mode/power_mode.hpp"
#include "os/kernel.hpp"
#include "sim/engine.hpp"
#include "util/ids.hpp"

namespace easis::inject {

/// Dead wake timer: `suppress_wake(true)` while active — the controller
/// never issues the Sleep -> WakeBurst request, so the node overstays the
/// sleep overlay's max_dwell. Zero duration = permanent.
[[nodiscard]] Injection make_stuck_in_sleep(
    std::function<void(bool)> suppress_wake, sim::SimTime start,
    sim::Duration duration);

/// Sleep-refusing driver: every transition request is vetoed while
/// active; the manager's consecutive-refusal counter crosses the
/// supervision limit.
[[nodiscard]] Injection make_sleep_refusal(mode::PowerModeManager& manager,
                                           sim::SimTime start,
                                           sim::Duration duration);

/// Endless wake storm: `stick_burst(true)` while active — the WakeBurst
/// -> Run request is never issued and the burst overstays its overlay's
/// max_dwell.
[[nodiscard]] Injection make_wake_storm_overrun(
    std::function<void(bool)> stick_burst, sim::SimTime start,
    sim::Duration duration);

/// Flash window that never closes: `stick_flash(true)` while active — the
/// FlashWrite -> Sleep request is never issued.
[[nodiscard]] Injection make_flash_write_overrun(
    std::function<void(bool)> stick_flash, sim::SimTime start,
    sim::Duration duration);

/// Mode machine hang: granted transitions never commit while active; the
/// supervision unit flags the overdue in-flight transition.
[[nodiscard]] Injection make_mode_transition_hang(
    mode::PowerModeManager& manager, sim::SimTime start,
    sim::Duration duration);

/// Rogue wake interrupt: activates `task` every `period` — but only while
/// the machine is in Sleep (a spurious peripheral interrupt is harmless
/// when awake; during contracted silence its heartbeats violate the sleep
/// overlay's silence guard).
[[nodiscard]] Injection make_rogue_wake_heartbeat(
    sim::Engine& engine, os::Kernel& kernel,
    const mode::PowerModeManager& manager, TaskId task, sim::Duration period,
    sim::SimTime start, sim::Duration duration);

}  // namespace easis::inject
