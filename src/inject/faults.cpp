#include "inject/faults.hpp"

#include <algorithm>
#include <cmath>

namespace easis::inject {

Injection make_execution_stretch(rte::Rte& rte, RunnableId runnable,
                                 double factor, sim::SimTime start,
                                 sim::Duration duration) {
  Injection inj;
  inj.name = "execution_stretch(" + rte.runnable_name(runnable) + ")";
  inj.start = start;
  inj.duration = duration;
  inj.apply = [&rte, runnable, factor] {
    rte.control(runnable).time_scale = factor;
  };
  inj.revert = [&rte, runnable] { rte.control(runnable).time_scale = 1.0; };
  return inj;
}

Injection make_runnable_drop(rte::Rte& rte, RunnableId runnable,
                             sim::SimTime start, sim::Duration duration) {
  Injection inj;
  inj.name = "runnable_drop(" + rte.runnable_name(runnable) + ")";
  inj.start = start;
  inj.duration = duration;
  inj.apply = [&rte, runnable] { rte.control(runnable).repeat = 0; };
  inj.revert = [&rte, runnable] { rte.control(runnable).repeat = 1; };
  return inj;
}

Injection make_runnable_repeat(rte::Rte& rte, RunnableId runnable,
                               std::uint32_t repeat, sim::SimTime start,
                               sim::Duration duration) {
  Injection inj;
  inj.name = "runnable_repeat(" + rte.runnable_name(runnable) + ")";
  inj.start = start;
  inj.duration = duration;
  inj.apply = [&rte, runnable, repeat] {
    rte.control(runnable).repeat = repeat;
  };
  inj.revert = [&rte, runnable] { rte.control(runnable).repeat = 1; };
  return inj;
}

Injection make_heartbeat_suppression(rte::Rte& rte, RunnableId runnable,
                                     sim::SimTime start,
                                     sim::Duration duration) {
  Injection inj;
  inj.name = "heartbeat_suppression(" + rte.runnable_name(runnable) + ")";
  inj.start = start;
  inj.duration = duration;
  inj.apply = [&rte, runnable] {
    rte.control(runnable).suppress_heartbeat = true;
  };
  inj.revert = [&rte, runnable] {
    rte.control(runnable).suppress_heartbeat = false;
  };
  return inj;
}

Injection make_invalid_branch(rte::Rte& rte, TaskId task, RunnableId from,
                              RunnableId wrong_successor, sim::SimTime start,
                              sim::Duration duration) {
  Injection inj;
  inj.name = "invalid_branch(" + rte.runnable_name(from) + "->" +
             rte.runnable_name(wrong_successor) + ")";
  inj.start = start;
  inj.duration = duration;
  inj.apply = [&rte, task, from, wrong_successor] {
    rte.set_sequence_transformer(
        task, [from, wrong_successor](std::vector<RunnableId> seq) {
          std::vector<RunnableId> out;
          out.reserve(seq.size());
          bool corrupted = false;
          for (RunnableId id : seq) {
            if (corrupted) {
              // Skip the legitimate successors until the branch target.
              if (id == from) corrupted = false;
              continue;
            }
            out.push_back(id);
            if (id == from) {
              out.push_back(wrong_successor);
              corrupted = true;
            }
          }
          return out;
        });
  };
  inj.revert = [&rte, task] { rte.clear_sequence_transformer(task); };
  return inj;
}

Injection make_sequence_swap(rte::Rte& rte, TaskId task, RunnableId first,
                             RunnableId second, sim::SimTime start,
                             sim::Duration duration) {
  Injection inj;
  inj.name = "sequence_swap(" + rte.runnable_name(first) + "," +
             rte.runnable_name(second) + ")";
  inj.start = start;
  inj.duration = duration;
  inj.apply = [&rte, task, first, second] {
    rte.set_sequence_transformer(
        task, [first, second](std::vector<RunnableId> seq) {
          auto a = std::find(seq.begin(), seq.end(), first);
          auto b = std::find(seq.begin(), seq.end(), second);
          if (a != seq.end() && b != seq.end()) std::iter_swap(a, b);
          return seq;
        });
  };
  inj.revert = [&rte, task] { rte.clear_sequence_transformer(task); };
  return inj;
}

Injection make_period_scale(os::Kernel& kernel, AlarmId alarm,
                            std::uint64_t base_ticks, double factor,
                            sim::SimTime start, sim::Duration duration) {
  Injection inj;
  inj.name = "period_scale";
  inj.start = start;
  inj.duration = duration;
  auto rearm = [&kernel, alarm](std::uint64_t ticks) {
    if (kernel.alarm_armed(alarm)) kernel.cancel_alarm(alarm);
    kernel.set_rel_alarm(alarm, ticks, ticks);
  };
  inj.apply = [rearm, base_ticks, factor] {
    const double scaled_d =
        std::max(1.0, std::round(static_cast<double>(base_ticks) * factor));
    rearm(static_cast<std::uint64_t>(scaled_d));
  };
  inj.revert = [rearm, base_ticks] { rearm(base_ticks); };
  return inj;
}

Injection make_watchdog_hang(wdg::WatchdogService& service, sim::SimTime start,
                             sim::Duration duration) {
  Injection inj;
  inj.name = "watchdog_hang";
  inj.start = start;
  inj.duration = duration;
  inj.apply = [&service] { service.set_hang(true); };
  inj.revert = [&service] { service.set_hang(false); };
  return inj;
}

Injection make_watchdog_token_corruption(wdg::WatchdogService& service,
                                         sim::SimTime start,
                                         sim::Duration duration) {
  Injection inj;
  inj.name = "watchdog_token_corruption";
  inj.start = start;
  inj.duration = duration;
  inj.apply = [&service] { service.set_token_corruption(true); };
  inj.revert = [&service] { service.set_token_corruption(false); };
  return inj;
}

Injection make_nvm_bit_flip(fmf::NvmStore& nvm, std::size_t bit_index,
                            sim::SimTime start) {
  Injection inj;
  inj.name = "nvm_bit_flip";
  inj.start = start;
  inj.duration = sim::Duration::zero();  // a flipped bit stays flipped
  inj.apply = [&nvm, bit_index] { nvm.corrupt_bit(bit_index); };
  return inj;
}

Injection make_recurring_post_reset_fault(rte::Rte& rte, RunnableId runnable,
                                          sim::SimTime start) {
  Injection inj;
  inj.name = "recurring_post_reset_fault(" + rte.runnable_name(runnable) + ")";
  inj.start = start;
  inj.duration = sim::Duration::zero();  // permanent: survives every reset
  inj.apply = [&rte, runnable] {
    rte.control(runnable).suppress_heartbeat = true;
  };
  inj.revert = [&rte, runnable] {
    rte.control(runnable).suppress_heartbeat = false;
  };
  return inj;
}

Injection make_task_hang(rte::Rte& rte, TaskId task, sim::SimTime start,
                         sim::Duration duration) {
  Injection inj;
  inj.name = "task_hang";
  inj.start = start;
  inj.duration = duration;
  inj.apply = [&rte, task] {
    for (RunnableId id : rte.runnables_on_task(task)) {
      rte.control(id).time_scale = 1e6;
    }
  };
  inj.revert = [&rte, task] {
    for (RunnableId id : rte.runnables_on_task(task)) {
      rte.control(id).time_scale = 1.0;
    }
  };
  return inj;
}

}  // namespace easis::inject
