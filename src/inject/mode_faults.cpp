#include "inject/mode_faults.hpp"

#include <memory>
#include <utility>

namespace easis::inject {

namespace {

/// Runs `action` every `period` from start() until the active flag drops;
/// the shared state keeps the repeating lambda alive across the engine's
/// event queue (same idiom as the resource-fault factories).
struct PeriodicAction {
  bool active = false;
  std::function<void()> action;
};

void schedule_tick(sim::Engine& engine,
                   std::shared_ptr<PeriodicAction> state,
                   sim::Duration period) {
  engine.schedule_in(period, [&engine, state = std::move(state), period] {
    if (!state->active) return;
    state->action();
    schedule_tick(engine, state, period);
  });
}

Injection make_flag_fault(std::string name, std::function<void(bool)> set,
                          sim::SimTime start, sim::Duration duration) {
  Injection inj;
  inj.name = std::move(name);
  inj.start = start;
  inj.duration = duration;
  inj.apply = [set] { set(true); };
  inj.revert = [set] { set(false); };
  return inj;
}

}  // namespace

Injection make_stuck_in_sleep(std::function<void(bool)> suppress_wake,
                              sim::SimTime start, sim::Duration duration) {
  return make_flag_fault("stuck_in_sleep", std::move(suppress_wake), start,
                         duration);
}

Injection make_sleep_refusal(mode::PowerModeManager& manager,
                             sim::SimTime start, sim::Duration duration) {
  Injection inj;
  inj.name = "sleep_refusal";
  inj.start = start;
  inj.duration = duration;
  inj.apply = [&manager] { manager.set_refuse_all(true); };
  inj.revert = [&manager] { manager.set_refuse_all(false); };
  return inj;
}

Injection make_wake_storm_overrun(std::function<void(bool)> stick_burst,
                                  sim::SimTime start, sim::Duration duration) {
  return make_flag_fault("wake_storm_overrun", std::move(stick_burst), start,
                         duration);
}

Injection make_flash_write_overrun(std::function<void(bool)> stick_flash,
                                   sim::SimTime start,
                                   sim::Duration duration) {
  return make_flag_fault("flash_write_overrun", std::move(stick_flash), start,
                         duration);
}

Injection make_mode_transition_hang(mode::PowerModeManager& manager,
                                    sim::SimTime start,
                                    sim::Duration duration) {
  Injection inj;
  inj.name = "mode_transition_hang";
  inj.start = start;
  inj.duration = duration;
  inj.apply = [&manager] { manager.set_transition_hang(true); };
  inj.revert = [&manager] { manager.set_transition_hang(false); };
  return inj;
}

Injection make_rogue_wake_heartbeat(sim::Engine& engine, os::Kernel& kernel,
                                    const mode::PowerModeManager& manager,
                                    TaskId task, sim::Duration period,
                                    sim::SimTime start,
                                    sim::Duration duration) {
  Injection inj;
  inj.name = "rogue_wake_heartbeat(" + kernel.task_name(task) + ")";
  inj.start = start;
  inj.duration = duration;
  auto state = std::make_shared<PeriodicAction>();
  state->action = [&kernel, &manager, task] {
    // Only the sleeping node is harmed: the spurious interrupt's task
    // activation heartbeats through the contracted silence.
    if (manager.current() == mode::PowerMode::kSleep) {
      (void)kernel.activate_task(task);
    }
  };
  inj.apply = [&engine, state, period] {
    state->active = true;
    state->action();
    schedule_tick(engine, state, period);
  };
  inj.revert = [state] { state->active = false; };
  return inj;
}

}  // namespace easis::inject
