// Resource-exhaustion fault factories (robustness extension).
//
// The resource class of creeping failures watchdogd-style supervision
// exists for: steady heap leaks, burst allocations, descriptor leaks,
// queue floods and CPU hogs. Each factory models the fault against the
// kernel's resource accounting / the bus's bounded queues, so detection
// happens through the Resource Supervision Unit's watermark, exhaustion
// and leak-rate rules — never by the injector telling anyone.
#pragma once

#include <cstdint>
#include <string>

#include "inject/injector.hpp"
#include "os/kernel.hpp"
#include "rte/rte.hpp"
#include "rte/signal_bus.hpp"
#include "sim/engine.hpp"
#include "util/ids.hpp"

namespace easis::inject {

/// Steady heap leak: allocates `bytes_per_period` every `period` without
/// ever freeing. Reverting stops the leak; the leaked memory stays behind
/// (that is what makes it a leak) until a restart reclaims the pool.
[[nodiscard]] Injection make_memory_leak(sim::Engine& engine,
                                         os::Kernel& kernel, TaskId task,
                                         std::uint64_t bytes_per_period,
                                         sim::Duration period,
                                         sim::SimTime start,
                                         sim::Duration duration);

/// Burst allocation: `count` back-to-back allocations of `bytes` at
/// `start` (a runaway buffer build-up). Allocations beyond the budget are
/// denied by the kernel and surface as exhaustion.
[[nodiscard]] Injection make_allocation_burst(os::Kernel& kernel, TaskId task,
                                              std::uint64_t bytes,
                                              std::uint32_t count,
                                              sim::SimTime start);

/// Handle/descriptor leak: acquires `handles_per_period` every `period`
/// and never releases, eventually starving the task budget or the global
/// pool.
[[nodiscard]] Injection make_handle_exhaustion(sim::Engine& engine,
                                               os::Kernel& kernel, TaskId task,
                                               std::uint32_t handles_per_period,
                                               sim::Duration period,
                                               sim::SimTime start,
                                               sim::Duration duration);

/// Queue flood: publishes `publishes_per_period` updates of `signal` every
/// `period`, outrunning the consumer of the bounded queue.
[[nodiscard]] Injection make_queue_flood(sim::Engine& engine,
                                         rte::SignalBus& bus,
                                         std::string signal,
                                         std::uint32_t publishes_per_period,
                                         sim::Duration period,
                                         sim::SimTime start,
                                         sim::Duration duration);

/// CPU hog: the runnable's execution cost jumps to `factor` at once (a
/// busy loop), driving the modelled load average over its ceiling.
[[nodiscard]] Injection make_cpu_hog(rte::Rte& rte, RunnableId runnable,
                                     double factor, sim::SimTime start,
                                     sim::Duration duration);

/// Creeping load: the runnable's execution cost grows by `factor_step`
/// every `period` (an accumulating work backlog) — the slow-onset variant
/// of the CPU hog that must still cross the transgression window.
[[nodiscard]] Injection make_creeping_load(sim::Engine& engine, rte::Rte& rte,
                                           RunnableId runnable,
                                           double factor_step,
                                           sim::Duration period,
                                           sim::SimTime start,
                                           sim::Duration duration);

}  // namespace easis::inject
