// Error injector (paper §4.5).
//
// The paper injects errors rather than faults: execution frequency and
// sequence of runnables are manipulated at runtime (ControlDesk sliders,
// loop-counter manipulation, invalid execution branches). Each Injection
// carries apply/revert actions scheduled on the simulation timeline.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "util/ids.hpp"

namespace easis::inject {

struct Injection {
  std::string name;
  /// Absolute activation time.
  sim::SimTime start;
  /// Zero duration = permanent (never reverted).
  sim::Duration duration = sim::Duration::zero();
  std::function<void()> apply;
  std::function<void()> revert;
  /// Monotonic per-injector id, assigned by add(); correlates every
  /// telemetry event of this fault's detection chain.
  InjectionId id;
};

class ErrorInjector {
 public:
  explicit ErrorInjector(sim::Engine& engine) : engine_(engine) {}
  ErrorInjector(const ErrorInjector&) = delete;
  ErrorInjector& operator=(const ErrorInjector&) = delete;

  /// Registers an injection; schedule with arm().
  void add(Injection injection);

  /// Schedules all registered injections. Call once, before running.
  void arm();

  [[nodiscard]] std::size_t injection_count() const {
    return injections_.size();
  }
  [[nodiscard]] std::uint32_t applied() const { return applied_; }
  [[nodiscard]] std::uint32_t reverted() const { return reverted_; }

 private:
  sim::Engine& engine_;
  std::vector<Injection> injections_;
  bool armed_ = false;
  std::uint32_t applied_ = 0;
  std::uint32_t reverted_ = 0;
};

}  // namespace easis::inject
