#include "inject/environment_faults.hpp"

#include <functional>
#include <memory>
#include <string>

namespace easis::inject {

namespace {

/// Runs `action` every `period` from the moment start() is called until
/// stop(); the shared state keeps the repeating lambda alive across the
/// engine's event queue.
struct PeriodicAction {
  bool active = false;
  std::function<void()> action;
};

void schedule_tick(sim::Engine& engine,
                   std::shared_ptr<PeriodicAction> state,
                   sim::Duration period) {
  engine.schedule_in(period, [&engine, state = std::move(state), period] {
    if (!state->active) return;
    state->action();
    schedule_tick(engine, state, period);
  });
}

void start_periodic(sim::Engine& engine,
                    const std::shared_ptr<PeriodicAction>& state,
                    sim::Duration period) {
  state->active = true;
  state->action();
  schedule_tick(engine, state, period);
}

}  // namespace

Injection make_thermal_ramp(sim::Engine& engine, sim::ThermalModel& thermal,
                            double target_c, double step_c,
                            sim::Duration period, sim::SimTime start,
                            sim::Duration duration) {
  Injection inj;
  inj.name = "thermal_ramp(to " + std::to_string(target_c) + "C)";
  inj.start = start;
  inj.duration = duration;
  auto state = std::make_shared<PeriodicAction>();
  // The pre-ramp ambient is captured at apply time so a revert rolls the
  // climate chamber back to where the run actually started.
  auto baseline = std::make_shared<double>(0.0);
  state->action = [&thermal, target_c, step_c] {
    const double next = thermal.ambient_c() + step_c;
    thermal.set_ambient(next >= target_c ? target_c : next);
  };
  inj.apply = [&engine, &thermal, state, baseline, period] {
    *baseline = thermal.ambient_c();
    start_periodic(engine, state, period);
  };
  inj.revert = [&thermal, state, baseline] {
    state->active = false;
    thermal.set_ambient(*baseline);
  };
  return inj;
}

Injection make_sensor_stuck(sim::ThermalModel& thermal, sim::SimTime start,
                            sim::Duration duration) {
  Injection inj;
  inj.name = "sensor_stuck";
  inj.start = start;
  inj.duration = duration;
  inj.apply = [&thermal] { thermal.set_sensor_stuck(true); };
  inj.revert = [&thermal] { thermal.set_sensor_stuck(false); };
  return inj;
}

Injection make_sensor_offset(sim::ThermalModel& thermal, double offset_c,
                             sim::SimTime start, sim::Duration duration) {
  Injection inj;
  inj.name = "sensor_offset(" + std::to_string(offset_c) + "C)";
  inj.start = start;
  inj.duration = duration;
  inj.apply = [&thermal, offset_c] { thermal.set_sensor_offset(offset_c); };
  inj.revert = [&thermal] { thermal.set_sensor_offset(0.0); };
  return inj;
}

Injection make_dtc_flood(sim::Engine& engine,
                         fmf::FaultManagementFramework& fmf,
                         std::uint32_t first_app,
                         std::uint32_t dtcs_per_period, sim::Duration period,
                         sim::SimTime start, sim::Duration duration) {
  Injection inj;
  inj.name = "dtc_flood(" + std::to_string(dtcs_per_period) + "/period)";
  inj.start = start;
  inj.duration = duration;
  auto state = std::make_shared<PeriodicAction>();
  auto next_app = std::make_shared<std::uint32_t>(first_app);
  state->action = [&engine, &fmf, next_app, dtcs_per_period] {
    if (fmf.dtc_store() == nullptr) return;
    for (std::uint32_t i = 0; i < dtcs_per_period; ++i) {
      wdg::ErrorReport report;
      report.application = ApplicationId{(*next_app)++};
      report.type = wdg::ErrorType::kAliveness;
      report.time = engine.now();
      report.detail = "synthetic fault-memory flood entry";
      fmf.dtc_store()->record(report);
    }
    fmf.persist();
  };
  inj.apply = [&engine, state, period] {
    start_periodic(engine, state, period);
  };
  inj.revert = [state] { state->active = false; };
  return inj;
}

Injection make_nvm_write_fault_burst(fmf::NvmStore& nvm, std::uint32_t count,
                                     sim::SimTime start) {
  Injection inj;
  inj.name = "nvm_write_faults(" + std::to_string(count) + ")";
  inj.start = start;
  inj.apply = [&nvm, count] { nvm.inject_write_faults(count); };
  return inj;
}

Injection make_commit_storm(sim::Engine& engine,
                            fmf::FaultManagementFramework& fmf,
                            sim::Duration period, sim::SimTime start,
                            sim::Duration duration) {
  Injection inj;
  inj.name = "commit_storm";
  inj.start = start;
  inj.duration = duration;
  auto state = std::make_shared<PeriodicAction>();
  state->action = [&fmf] { fmf.persist(); };
  inj.apply = [&engine, state, period] {
    start_periodic(engine, state, period);
  };
  inj.revert = [state] { state->active = false; };
  return inj;
}

}  // namespace easis::inject
