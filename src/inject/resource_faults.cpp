#include "inject/resource_faults.hpp"

#include <functional>
#include <memory>
#include <utility>

namespace easis::inject {

namespace {

/// Runs `action` every `period` from the moment start() is called until
/// stop(); the shared state keeps the repeating lambda alive across the
/// engine's event queue.
struct PeriodicAction {
  bool active = false;
  std::function<void()> action;
};

void schedule_tick(sim::Engine& engine,
                   std::shared_ptr<PeriodicAction> state,
                   sim::Duration period) {
  // Each scheduled closure owns the state and schedules its successor;
  // no closure refers to itself, so the chain frees once it goes quiet.
  engine.schedule_in(period, [&engine, state = std::move(state), period] {
    if (!state->active) return;
    state->action();
    schedule_tick(engine, state, period);
  });
}

void start_periodic(sim::Engine& engine,
                    const std::shared_ptr<PeriodicAction>& state,
                    sim::Duration period) {
  state->active = true;
  state->action();
  schedule_tick(engine, state, period);
}

}  // namespace

Injection make_memory_leak(sim::Engine& engine, os::Kernel& kernel,
                           TaskId task, std::uint64_t bytes_per_period,
                           sim::Duration period, sim::SimTime start,
                           sim::Duration duration) {
  Injection inj;
  inj.name = "memory_leak(" + kernel.task_name(task) + ")";
  inj.start = start;
  inj.duration = duration;
  auto state = std::make_shared<PeriodicAction>();
  state->action = [&kernel, task, bytes_per_period] {
    kernel.task_alloc(task, bytes_per_period);
  };
  inj.apply = [&engine, state, period] {
    start_periodic(engine, state, period);
  };
  // Stops leaking; what already leaked stays allocated until a restart
  // reclaims the task's pool.
  inj.revert = [state] { state->active = false; };
  return inj;
}

Injection make_allocation_burst(os::Kernel& kernel, TaskId task,
                                std::uint64_t bytes, std::uint32_t count,
                                sim::SimTime start) {
  Injection inj;
  inj.name = "allocation_burst(" + kernel.task_name(task) + ")";
  inj.start = start;
  inj.apply = [&kernel, task, bytes, count] {
    for (std::uint32_t i = 0; i < count; ++i) kernel.task_alloc(task, bytes);
  };
  return inj;
}

Injection make_handle_exhaustion(sim::Engine& engine, os::Kernel& kernel,
                                 TaskId task,
                                 std::uint32_t handles_per_period,
                                 sim::Duration period, sim::SimTime start,
                                 sim::Duration duration) {
  Injection inj;
  inj.name = "handle_exhaustion(" + kernel.task_name(task) + ")";
  inj.start = start;
  inj.duration = duration;
  auto state = std::make_shared<PeriodicAction>();
  state->action = [&kernel, task, handles_per_period] {
    kernel.task_acquire_handles(task, handles_per_period);
  };
  inj.apply = [&engine, state, period] {
    start_periodic(engine, state, period);
  };
  inj.revert = [state] { state->active = false; };
  return inj;
}

Injection make_queue_flood(sim::Engine& engine, rte::SignalBus& bus,
                           std::string signal,
                           std::uint32_t publishes_per_period,
                           sim::Duration period, sim::SimTime start,
                           sim::Duration duration) {
  Injection inj;
  inj.name = "queue_flood(" + signal + ")";
  inj.start = start;
  inj.duration = duration;
  auto state = std::make_shared<PeriodicAction>();
  state->action = [&engine, &bus, signal = std::move(signal),
                   publishes_per_period] {
    for (std::uint32_t i = 0; i < publishes_per_period; ++i) {
      bus.publish(signal, static_cast<double>(i), engine.now());
    }
  };
  inj.apply = [&engine, state, period] {
    start_periodic(engine, state, period);
  };
  inj.revert = [state] { state->active = false; };
  return inj;
}

Injection make_cpu_hog(rte::Rte& rte, RunnableId runnable, double factor,
                       sim::SimTime start, sim::Duration duration) {
  Injection inj;
  inj.name = "cpu_hog(" + rte.runnable_name(runnable) + ")";
  inj.start = start;
  inj.duration = duration;
  inj.apply = [&rte, runnable, factor] {
    rte.control(runnable).time_scale = factor;
  };
  inj.revert = [&rte, runnable] { rte.control(runnable).time_scale = 1.0; };
  return inj;
}

Injection make_creeping_load(sim::Engine& engine, rte::Rte& rte,
                             RunnableId runnable, double factor_step,
                             sim::Duration period, sim::SimTime start,
                             sim::Duration duration) {
  Injection inj;
  inj.name = "creeping_load(" + rte.runnable_name(runnable) + ")";
  inj.start = start;
  inj.duration = duration;
  auto state = std::make_shared<PeriodicAction>();
  state->action = [&rte, runnable, factor_step] {
    rte.control(runnable).time_scale += factor_step;
  };
  inj.apply = [&engine, state, period] {
    start_periodic(engine, state, period);
  };
  inj.revert = [&rte, runnable, state] {
    state->active = false;
    rte.control(runnable).time_scale = 1.0;
  };
  return inj;
}

}  // namespace easis::inject
