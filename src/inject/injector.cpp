#include "inject/injector.hpp"

#include <stdexcept>

#include "telemetry/event_bus.hpp"
#include "util/logging.hpp"

namespace easis::inject {

namespace {

constexpr std::string_view kLog = "inject";

void emit_injection_event(telemetry::EventKind kind,
                          const Injection& injection, sim::SimTime now) {
  if (!telemetry::enabled()) return;
  telemetry::Event event;
  event.time = now;
  event.component = telemetry::Component::kInjector;
  event.kind = kind;
  event.injection = injection.id;
  event.detail = injection.name;
  telemetry::emit(std::move(event));
}

}  // namespace

void ErrorInjector::add(Injection injection) {
  if (armed_) throw std::logic_error("ErrorInjector: already armed");
  injection.id = InjectionId(static_cast<std::uint32_t>(injections_.size()));
  injections_.push_back(std::move(injection));
}

void ErrorInjector::arm() {
  if (armed_) throw std::logic_error("ErrorInjector: already armed");
  armed_ = true;
  for (const Injection& injection : injections_) {
    emit_injection_event(telemetry::EventKind::kFaultArmed, injection,
                         engine_.now());
    engine_.schedule_at(
        injection.start,
        [this, &injection] {
          EASIS_LOG(util::LogLevel::kInfo, kLog)
              << "apply " << injection.name << " at " << engine_.now();
          ++applied_;
          emit_injection_event(telemetry::EventKind::kFaultApplied, injection,
                               engine_.now());
          if (injection.apply) injection.apply();
          if (injection.duration > sim::Duration::zero() &&
              injection.revert) {
            engine_.schedule_in(injection.duration, [this, &injection] {
              EASIS_LOG(util::LogLevel::kInfo, kLog)
                  << "revert " << injection.name << " at " << engine_.now();
              ++reverted_;
              emit_injection_event(telemetry::EventKind::kFaultReverted,
                                   injection, engine_.now());
              injection.revert();
            });
          }
        },
        sim::EventPriority::kMonitor);
  }
}

}  // namespace easis::inject
