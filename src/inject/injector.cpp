#include "inject/injector.hpp"

#include <stdexcept>

#include "util/logging.hpp"

namespace easis::inject {

namespace {
constexpr std::string_view kLog = "inject";
}

void ErrorInjector::add(Injection injection) {
  if (armed_) throw std::logic_error("ErrorInjector: already armed");
  injections_.push_back(std::move(injection));
}

void ErrorInjector::arm() {
  if (armed_) throw std::logic_error("ErrorInjector: already armed");
  armed_ = true;
  for (const Injection& injection : injections_) {
    engine_.schedule_at(
        injection.start,
        [this, &injection] {
          EASIS_LOG(util::LogLevel::kInfo, kLog)
              << "apply " << injection.name << " at " << engine_.now();
          ++applied_;
          if (injection.apply) injection.apply();
          if (injection.duration > sim::Duration::zero() &&
              injection.revert) {
            engine_.schedule_in(injection.duration, [this, &injection] {
              EASIS_LOG(util::LogLevel::kInfo, kLog)
                  << "revert " << injection.name << " at " << engine_.now();
              ++reverted_;
              injection.revert();
            });
          }
        },
        sim::EventPriority::kMonitor);
  }
}

}  // namespace easis::inject
