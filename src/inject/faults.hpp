// Injection factories: the concrete error manipulations of paper §4.5,
// plus the robustness extensions (watchdog-task failure modes, NVM bit
// corruption, boot-persistent faults).
#pragma once

#include <cstdint>

#include "fmf/nvm.hpp"
#include "inject/injector.hpp"
#include "os/kernel.hpp"
#include "rte/rte.hpp"
#include "util/ids.hpp"
#include "wdg/service.hpp"

namespace easis::inject {

/// Slider instrument: stretches the runnable's execution time by `factor`
/// (a hang is a very large factor). Provokes aliveness errors and, for the
/// task, deadline/budget violations.
[[nodiscard]] Injection make_execution_stretch(rte::Rte& rte,
                                               RunnableId runnable,
                                               double factor,
                                               sim::SimTime start,
                                               sim::Duration duration);

/// Drops the runnable from its task's jobs (loop counter forced to zero):
/// the aliveness indication stops while the rest of the task runs on.
[[nodiscard]] Injection make_runnable_drop(rte::Rte& rte, RunnableId runnable,
                                           sim::SimTime start,
                                           sim::Duration duration);

/// Executes the runnable `repeat` times per job (loop-counter
/// manipulation): provokes arrival-rate errors.
[[nodiscard]] Injection make_runnable_repeat(rte::Rte& rte,
                                             RunnableId runnable,
                                             std::uint32_t repeat,
                                             sim::SimTime start,
                                             sim::Duration duration);

/// Suppresses only the heartbeat glue while the runnable keeps executing
/// (failure of the indication path itself).
[[nodiscard]] Injection make_heartbeat_suppression(rte::Rte& rte,
                                                   RunnableId runnable,
                                                   sim::SimTime start,
                                                   sim::Duration duration);

/// Invalid execution branch: within the task's job, every occurrence of
/// `from` is followed by `wrong_successor` instead of the configured
/// sequence (the legitimate successors after `from` are skipped up to the
/// next occurrence of `from`). Provokes program flow errors.
[[nodiscard]] Injection make_invalid_branch(rte::Rte& rte, TaskId task,
                                            RunnableId from,
                                            RunnableId wrong_successor,
                                            sim::SimTime start,
                                            sim::Duration duration);

/// Swaps the first occurrences of two runnables within the job sequence.
[[nodiscard]] Injection make_sequence_swap(rte::Rte& rte, TaskId task,
                                           RunnableId first,
                                           RunnableId second,
                                           sim::SimTime start,
                                           sim::Duration duration);

/// Slider instrument on the task's activation: re-arms `alarm` with
/// `base_ticks * factor` (factor > 1 slows the task down -> aliveness
/// errors; factor < 1 speeds it up -> arrival-rate errors).
[[nodiscard]] Injection make_period_scale(os::Kernel& kernel, AlarmId alarm,
                                          std::uint64_t base_ticks,
                                          double factor, sim::SimTime start,
                                          sim::Duration duration);

/// Task hang: an extended task blocks forever on an event nobody sets.
/// Modelled by stretching every runnable of the task.
[[nodiscard]] Injection make_task_hang(rte::Rte& rte, TaskId task,
                                       sim::SimTime start,
                                       sim::Duration duration);

/// Hangs the Software Watchdog's own task: its main function stops running
/// and the HW watchdog (self-supervision layer) stops being serviced.
[[nodiscard]] Injection make_watchdog_hang(wdg::WatchdogService& service,
                                           sim::SimTime start,
                                           sim::Duration duration);

/// Corrupts the self-supervision challenge–response token while the
/// watchdog task keeps running (sequencing-state corruption): every kick is
/// refused, so the HW watchdog starves and expires.
[[nodiscard]] Injection make_watchdog_token_corruption(
    wdg::WatchdogService& service, sim::SimTime start, sim::Duration duration);

/// Flips one bit of the active NVM bank at `start` (flash/EEPROM bit
/// error); the next boot must detect it via CRC and report an
/// ErrorType::kNvmCorruption fault.
[[nodiscard]] Injection make_nvm_bit_flip(fmf::NvmStore& nvm,
                                          std::size_t bit_index,
                                          sim::SimTime start);

/// Boot-persistent fault (e.g. a defective sensor or flash-resident bug):
/// the runnable's heartbeat stays suppressed across every restart/reset,
/// so each recovery attempt fails again. Pair with post-reset recovery
/// validation to detect the recurrence within one warm-up window.
[[nodiscard]] Injection make_recurring_post_reset_fault(rte::Rte& rte,
                                                        RunnableId runnable,
                                                        sim::SimTime start);

}  // namespace easis::inject
