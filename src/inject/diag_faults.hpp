// Diagnostic-layer fault injections: attacks against the UDS-lite stack
// itself rather than the computation it reads out. The diagnostic chain is
// a dependability service too — a corrupted request, a lost response or a
// readout racing an ECU reset must degrade into an explicit flag (negative
// response or tester timeout), never into silently wrong fault memory.
#pragma once

#include "diag/server.hpp"
#include "diag/tester.hpp"
#include "inject/injector.hpp"

namespace easis::inject {

/// Corrupts the service id of every request the tester sends while active
/// (stuck tester software / flipped identifier upstream of the transport).
/// The frames stay E2E-valid, so the server must flag the broken *content*
/// with NRC serviceNotSupported.
[[nodiscard]] Injection make_diag_request_corruption(diag::DiagTester& tester,
                                                     sim::SimTime start,
                                                     sim::Duration duration);

/// The server processes requests but its responses never reach the bus
/// (TX path failure): every transaction in the window times out at the
/// tester.
[[nodiscard]] Injection make_diag_response_drop(diag::DiagServer& server,
                                                sim::SimTime start,
                                                sim::Duration duration);

/// Diagnostic blackout, as during the reboot window of an ECU reset: the
/// server drops requests entirely; the tester sees timeouts until the
/// window ends.
[[nodiscard]] Injection make_diag_blackout(diag::DiagServer& server,
                                           sim::SimTime start,
                                           sim::Duration duration);

}  // namespace easis::inject
