#include "validator/policy_binding.hpp"

#include <stdexcept>

namespace easis::validator {

void apply_policy(CentralNodeConfig& config,
                  std::shared_ptr<const policy::PolicySet> policy) {
  if (!policy) {
    throw std::invalid_argument("apply_policy: null policy");
  }
  config.watchdog = policy->detection.watchdog;
  config.fmf = policy->escalation.fmf;
  config.thermal_limits = policy->detection.thermal;
  config.filesystem_limits = policy->detection.filesystem;
  config.derate_hbm_stretch = policy->escalation.derate_hbm_stretch;
  config.policy = std::move(policy);
}

}  // namespace easis::validator
