#include "validator/scenario.hpp"

#include <stdexcept>

namespace easis::validator {

void Scenario::set_signal(sim::SimTime at, std::string signal, double value) {
  this->at(at, [this, signal = std::move(signal), value] {
    signals_.publish(signal, value, engine_.now());
  });
}

void Scenario::at(sim::SimTime at, std::function<void()> step) {
  if (armed_) throw std::logic_error("Scenario: already armed");
  steps_.push_back(Step{at, std::move(step)});
}

void Scenario::arm() {
  if (armed_) throw std::logic_error("Scenario: already armed");
  armed_ = true;
  for (const Step& step : steps_) {
    engine_.schedule_at(step.time, step.action);
  }
}

}  // namespace easis::validator
