#include "validator/central_node.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/logging.hpp"
#include "wdg/config_check.hpp"

namespace easis::validator {

namespace {
std::int64_t lcm64(std::int64_t a, std::int64_t b) {
  std::int64_t x = a, y = b;
  while (y != 0) {
    const std::int64_t t = x % y;
    x = y;
    y = t;
  }
  return a / x * b;
}

std::uint64_t period_ticks(sim::Duration period) {
  constexpr std::int64_t kTickMicros = 1000;  // 1 ms system counter
  const std::int64_t p = period.as_micros();
  if (p <= 0 || p % kTickMicros != 0) {
    throw std::invalid_argument(
        "CentralNode: task periods must be positive multiples of 1ms");
  }
  return static_cast<std::uint64_t>(p / kTickMicros);
}
}  // namespace

CentralNode::CentralNode(sim::Engine& engine, CentralNodeConfig config)
    : engine_(engine),
      config_(config),
      ecu_(engine, "CentralNode"),
      watchdog_(config.watchdog),
      thermal_model_(config.thermal) {
  auto& kernel = ecu_.kernel();
  auto& rte = ecu_.rte();

  // 1 ms system counter driving all periodic activations.
  os::CounterConfig counter_config;
  counter_config.name = "SystemTimer";
  counter_config.tick = sim::Duration::millis(1);
  counter_ = kernel.create_counter(counter_config);

  // --- application tasks -----------------------------------------------------
  os::TaskConfig ss_task;
  ss_task.name = "Task_SafeSpeed";
  ss_task.priority = config_.safespeed_priority;
  safespeed_task_ = kernel.create_task(ss_task);
  safespeed_alarm_ = kernel.create_alarm(
      counter_, os::AlarmActionActivateTask{safespeed_task_},
      "Alarm_SafeSpeed");
  safespeed_ticks_ = period_ticks(config_.safespeed.period);
  safespeed_ = std::make_unique<apps::SafeSpeed>(
      rte, ecu_.signals(), safespeed_task_, config_.safespeed);
  safespeed_->configure_watchdog(watchdog_);

  if (config_.with_safelane) {
    os::TaskConfig sl_task;
    sl_task.name = "Task_SafeLane";
    sl_task.priority = config_.safelane_priority;
    safelane_task_ = kernel.create_task(sl_task);
    safelane_alarm_ = kernel.create_alarm(
        counter_, os::AlarmActionActivateTask{safelane_task_},
        "Alarm_SafeLane");
    safelane_ticks_ = period_ticks(config_.safelane.period);
    safelane_ = std::make_unique<apps::SafeLane>(
        rte, ecu_.signals(), safelane_task_, config_.safelane);
    safelane_->configure_watchdog(watchdog_);
  }

  if (config_.with_light_control) {
    os::TaskConfig lc_task;
    lc_task.name = "Task_LightControl";
    lc_task.priority = config_.light_priority;
    light_task_ = kernel.create_task(lc_task);
    light_alarm_ = kernel.create_alarm(
        counter_, os::AlarmActionActivateTask{light_task_},
        "Alarm_LightControl");
    light_ticks_ = period_ticks(config_.light.period);
    light_ = std::make_unique<apps::LightControl>(
        rte, ecu_.signals(), light_task_, config_.light);
    light_->configure_watchdog(watchdog_);
  }

  if (config_.with_crash_detection) {
    config_.crash.arrival_cycles = 10;  // per the watchdog check period
    crash_ = std::make_unique<apps::CrashDetection>(
        rte, ecu_.signals(), config_.crash_priority, config_.crash);
    crash_->configure_watchdog(watchdog_);
  }

  // --- time-triggered dispatching (OSEKTime-style) -----------------------------
  if (config_.time_triggered) {
    std::int64_t round_us = config_.safespeed.period.as_micros();
    if (safelane_) round_us = lcm64(round_us, config_.safelane.period.as_micros());
    if (light_) round_us = lcm64(round_us, config_.light.period.as_micros());
    schedule_table_ = std::make_unique<os::ScheduleTable>(
        kernel, "TT_Dispatcher", sim::Duration::micros(round_us));
    auto add_points = [&](TaskId task, sim::Duration period) {
      for (std::int64_t offset = 0; offset < round_us;
           offset += period.as_micros()) {
        schedule_table_->add_expiry_point(
            {sim::Duration::micros(offset), task, period});
      }
    };
    add_points(safespeed_task_, config_.safespeed.period);
    if (safelane_) add_points(safelane_task_, config_.safelane.period);
    if (light_) add_points(light_task_, config_.light.period);
  }

  // --- dependability services ---------------------------------------------------
  service_ = std::make_unique<wdg::WatchdogService>(
      kernel, rte, watchdog_, counter_, config_.watchdog_service);

  if (config_.with_fmf) {
    fmf_ = std::make_unique<fmf::FaultManagementFramework>(
        rte, watchdog_, [this] { software_reset(); }, config_.fmf);
    std::vector<std::string> frame_signals{"vehicle.speed_kmh",
                                           "driver.demand",
                                           "safespeed.max_speed_kmh"};
    frame_signals.insert(frame_signals.end(),
                         config_.extra_frame_signals.begin(),
                         config_.extra_frame_signals.end());
    dtc_ = std::make_unique<fmf::DtcStore>(
        ecu_.signals(), std::move(frame_signals), config_.dtc_capacity);
    fmf_->attach_dtc_store(dtc_.get());
    if (config_.with_nvm) {
      if (config_.external_nvm != nullptr) {
        nvm_ = config_.external_nvm;
      } else {
        owned_nvm_ = std::make_unique<fmf::NvmStore>(config_.nvm_capacity);
        nvm_ = owned_nvm_.get();
      }
      fmf_->attach_nvm(nvm_);
    }
    fmf_->set_safe_state_hook(
        [this](const fmf::ResetCause& cause) { enter_safe_state(cause); });
    fmf_->attach();
  }

  if (config_.with_self_supervision) {
    wdg::SelfSupervisionConfig ss_config = config_.self_supervision;
    // A watchdog check period swept past the HW timeout must not look like
    // a hung watchdog task.
    const sim::Duration floor = config_.watchdog.check_period * 5;
    if (ss_config.hw_timeout < floor) ss_config.hw_timeout = floor;
    self_supervision_ =
        std::make_unique<wdg::WatchdogSelfSupervision>(engine_, ss_config);
    self_supervision_->set_expire_callback(
        [this](sim::SimTime now) { on_hw_watchdog_expired(now); });
    service_->attach_self_supervision(self_supervision_.get());
  }

  if (config_.policy) apply_policy_bindings();
}

void CentralNode::apply_policy_bindings() {
  const policy::PolicySet& pol = *config_.policy;
  // Per-role FMF treatment selection. Under the baseline policy every
  // role carries the FMF's default (restart, 3 restarts), so setting the
  // policies explicitly is behaviourally identical to not setting them.
  if (fmf_) {
    auto to_fmf = [](const policy::RoleTreatment& role) {
      fmf::ApplicationPolicy app_policy;
      app_policy.on_faulty = policy::to_fmf_action(role.on_faulty);
      app_policy.max_restarts = role.max_restarts;
      return app_policy;
    };
    fmf_->set_application_policy(safespeed_->application(),
                                 to_fmf(pol.treatment.safety));
    if (safelane_) {
      fmf_->set_application_policy(safelane_->application(),
                                   to_fmf(pol.treatment.assist));
    }
    if (light_) {
      fmf_->set_application_policy(light_->application(),
                                   to_fmf(pol.treatment.qm));
    }
    if (crash_) {
      fmf_->set_application_policy(crash_->application(),
                                   to_fmf(pol.treatment.qm));
    }
  }
  // HBM scale/tolerances over every heartbeat-monitored runnable. Guarded
  // so the baseline (scale 1, tolerances 0) leaves the hypotheses
  // untouched bit-for-bit.
  const double scale = pol.detection.hbm_scale;
  const std::uint32_t alive_tol = pol.detection.aliveness_tolerance;
  const std::uint32_t arrival_tol = pol.detection.arrival_tolerance;
  if (scale != 1.0 || alive_tol != 0 || arrival_tol != 0) {
    auto scaled = [scale](std::uint32_t cycles) {
      const double v = static_cast<double>(cycles) * scale;
      return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(v + 0.5));
    };
    const sim::Duration check = watchdog_.config().check_period;
    for (RunnableId runnable :
         watchdog_.heartbeat_unit().monitored_runnables()) {
      const wdg::RunnableMonitor& cfg =
          watchdog_.heartbeat_unit().config(runnable);
      if (!cfg.monitor_aliveness && !cfg.monitor_arrival_rate) continue;
      const std::uint32_t alive_cycles = scaled(cfg.aliveness_cycles);
      const std::uint32_t arrival_cycles = scaled(cfg.arrival_cycles);
      std::uint32_t min_hb =
          cfg.min_heartbeats > alive_tol ? cfg.min_heartbeats - alive_tol : 0;
      std::uint32_t max_arr = cfg.max_arrivals + arrival_tol;
      // The scaled hypothesis must remain satisfiable at the runnable's
      // nominal rate, or the boot-time config check rejects it (guaranteed
      // false positives). Clamp the bounds the same way the checker
      // derives them from the task period.
      const sim::Duration period = nominal_period_of(runnable);
      if (period > sim::Duration::zero()) {
        const std::int64_t expected_aliveness =
            (static_cast<std::int64_t>(alive_cycles) * check.as_micros()) /
            period.as_micros();
        min_hb = std::min<std::uint32_t>(
            min_hb, static_cast<std::uint32_t>(expected_aliveness));
        const std::int64_t expected_arrivals =
            (static_cast<std::int64_t>(arrival_cycles) * check.as_micros() +
             period.as_micros() - 1) /
            period.as_micros();
        max_arr = std::max<std::uint32_t>(
            max_arr, static_cast<std::uint32_t>(expected_arrivals));
      }
      watchdog_.update_hypothesis(runnable, alive_cycles, min_hb,
                                  arrival_cycles, max_arr);
    }
  }
  // Deadline window scale (no-op at factor 1).
  watchdog_.scale_deadline_windows(pol.detection.deadline_scale);
}

sim::Duration CentralNode::nominal_period_of(RunnableId id) {
  // Virtual runnables (e.g. CMU communication channels) are monitored by
  // the watchdog but unknown to the RTE.
  if (!id.valid() || id.value() >= ecu_.rte().runnable_count()) {
    return sim::Duration::zero();
  }
  const TaskId task = ecu_.rte().task_of(id);
  if (task == safespeed_task_) return config_.safespeed.period;
  if (safelane_ && task == safelane_task_) return config_.safelane.period;
  if (light_ && task == light_task_) return config_.light.period;
  return sim::Duration::zero();  // sporadic (crash detection)
}

policy::CheckSupervisionUnit* CentralNode::attach_check_supervision() {
  if (csu_) return csu_.get();
  if (!config_.policy || config_.policy->checks.empty()) return nullptr;
  // Check evaluations are accounted like the ESU channels: to a QM
  // application when present, to the safety application otherwise.
  TaskId account_task = safespeed_task_;
  ApplicationId account_app = safespeed_->application();
  if (light_) {
    account_task = light_task_;
    account_app = light_->application();
  }
  attach_process_supervision();
  csu_ = std::make_unique<policy::CheckSupervisionUnit>(
      watchdog_, *psu_, ecu_.signals(), account_task, account_app);
  for (const policy::CheckRule& rule : config_.policy->checks) {
    csu_->add_rule(rule);
  }
  return csu_.get();
}

void CentralNode::start() {
  if (!ecu_.rte().finalized()) ecu_.rte().finalize();
  if (started_once_ && kernel().started()) {
    throw std::logic_error("CentralNode: already started");
  }
  if (!started_once_) {
    // Boot-time self check: a watchdog configuration with guaranteed
    // false positives or flow-table defects must not go into operation.
    const auto findings = wdg::ConfigChecker::check(
        watchdog_, [this](RunnableId id) { return nominal_period_of(id); });
    if (!wdg::ConfigChecker::acceptable(findings)) {
      std::ostringstream report;
      wdg::ConfigChecker::write(report, findings);
      throw std::logic_error("CentralNode: watchdog configuration invalid\n" +
                             report.str());
    }
    for (const auto& finding : findings) {
      EASIS_LOG(util::LogLevel::kWarn, "validator") << finding.message;
    }
  }
  started_once_ = true;
  kernel().start();
  if (fmf_) fmf_->boot_from_nvm(engine_.now());
  arm_alarms();
  if (crash_) crash_->start();
  if (self_supervision_ && !safe_state_) self_supervision_->start();
  schedule_environment(++env_generation_);
  schedule_resource_cycles(env_generation_);
  schedule_environment_cycles(env_generation_);
}

void CentralNode::software_reset() {
  ++resets_;
  // The reset-cause record and the DTC store must survive the teardown.
  if (fmf_) fmf_->persist();
  if (self_supervision_) self_supervision_->stop();
  kernel().software_reset();
  watchdog_.reset(engine_.now());
  ++boot_generation_;
  if (config_.reboot_delay.as_micros() > 0) {
    // Reboot blackout: the ECU is dark, nothing runs until the delayed
    // boot. The environment keeps its state and resumes with the boot.
    rebooting_ = true;
    ++env_generation_;
    const std::uint64_t boot_gen = boot_generation_;
    engine_.schedule_in(
        config_.reboot_delay,
        [this, boot_gen] {
          if (boot_gen != boot_generation_) return;
          boot_after_reset();
        },
        sim::EventPriority::kDefault);
    return;
  }
  boot_after_reset();
}

void CentralNode::boot_after_reset() {
  rebooting_ = false;
  kernel().start();
  // Re-seed the fault memory from NVM before anything runs: the post-boot
  // FMF/DTC view continues where the pre-reset ECU left off.
  if (fmf_) fmf_->boot_from_nvm(engine_.now());
  arm_alarms();
  if (crash_) crash_->start();
  if (self_supervision_ && !safe_state_) self_supervision_->start();
  schedule_environment(++env_generation_);
  schedule_resource_cycles(env_generation_);
  schedule_environment_cycles(env_generation_);
  // Post-reset recovery validation: the warm-up window supervises the
  // re-announcement of every monitored runnable (no-op when disabled).
  if (fmf_) fmf_->begin_ecu_recovery_window(engine_.now());
}

diag::DiagServer& CentralNode::attach_diag(bus::CanBus& can,
                                           diag::DiagServerConfig config) {
  diag::DiagBackend backend;
  backend.dtcs = dtc_.get();
  backend.fmf = fmf_.get();
  backend.watchdog = &watchdog_;
  backend.ecu_reset = [this] {
    fmf::ResetCause cause;
    cause.source = fmf::ResetSource::kDiagnosticRequest;
    cause.time = engine_.now();
    cause.detail = "commanded ECUReset (diagnostic service 0x11)";
    if (fmf_) {
      fmf_->request_reset(std::move(cause), engine_.now());
      return;
    }
    software_reset();
  };
  backend.offline = [this] { return rebooting_; };
  if (config_.policy) {
    // The hash is content-derived and immutable for the node's lifetime,
    // so it is computed once, not per request.
    const std::uint32_t hash24 = policy::version_hash24(*config_.policy);
    const std::uint32_t version = config_.policy->version;
    backend.policy_hash = [hash24] { return hash24; };
    backend.policy_version = [version] { return version; };
  }
  backend.environment = esu_.get();
  backend.process = psu_.get();
  backend.nvm = nvm_;
  diag_ = std::make_unique<diag::DiagServer>(engine_, can, std::move(backend),
                                             std::move(config));
  return *diag_;
}

wdg::ResourceSupervisionUnit& CentralNode::attach_resource_supervision() {
  if (!rsu_) {
    rsu_ = std::make_unique<wdg::ResourceSupervisionUnit>(
        watchdog_, ecu_.kernel(), ecu_.signals());
  }
  return *rsu_;
}

void CentralNode::schedule_resource_cycles(std::uint64_t generation) {
  if (!rsu_) return;
  engine_.schedule_in(
      config_.watchdog.check_period,
      [this, generation] {
        if (generation != env_generation_) return;
        rsu_->cycle(engine_.now());
        schedule_resource_cycles(generation);
      },
      sim::EventPriority::kMonitor);
}

wdg::EnvironmentSupervisionUnit& CentralNode::attach_environment_supervision() {
  if (esu_) return *esu_;
  esu_ = std::make_unique<wdg::EnvironmentSupervisionUnit>(watchdog_,
                                                           ecu_.signals());
  // The thermal channel's faults are accounted to a QM application when
  // one is present (its FMF policy carries the sensor-fault treatment);
  // the safety application only inherits them on a stripped-down node.
  TaskId account_task = safespeed_task_;
  ApplicationId account_app = safespeed_->application();
  if (light_) {
    account_task = light_task_;
    account_app = light_->application();
  }
  wdg::ThermalChannel thermal;
  thermal.id = RunnableId{2100};
  thermal.task = account_task;
  thermal.application = account_app;
  thermal.name = "ecu";
  thermal.limits = config_.thermal_limits;
  thermal.probe = [this] { return thermal_model_.sensor_c(); };
  esu_->add_thermal(thermal);
  if (nvm_ != nullptr) {
    wdg::FilesystemChannel fs;
    fs.id = RunnableId{2101};
    fs.task = account_task;
    fs.application = account_app;
    fs.name = "faultmem";
    fs.limits = config_.filesystem_limits;
    fs.fill_probe = [this] { return nvm_->fill_level(); };
    fs.wear_probe = [this] { return nvm_->wear_level(); };
    fs.write_error_probe = [this] {
      return static_cast<std::uint64_t>(nvm_->write_errors()) +
             (fmf_ ? fmf_->nvm_write_failures() : 0u);
    };
    fs.overflow_probe = [this] {
      return static_cast<std::uint64_t>(nvm_->overflows());
    };
    esu_->add_filesystem(fs);
  }
  esu_->set_derate_hooks(
      [this](sim::SimTime now) { enter_thermal_derate(now); },
      [this](sim::SimTime now) { exit_thermal_derate(now); });
  esu_->set_shutdown_hook([this](sim::SimTime now) {
    fmf::ResetCause cause;
    cause.source = fmf::ResetSource::kThermalShutdown;
    cause.error = wdg::ErrorType::kThermal;
    cause.time = now;
    cause.detail = "thermal ladder reached shutdown stage";
    if (fmf_) {
      fmf_->request_safe_state(std::move(cause), now);
      return;
    }
    enter_safe_state(cause);
  });
  return *esu_;
}

wdg::ProcessSupervisionUnit& CentralNode::attach_process_supervision() {
  if (psu_) return *psu_;
  psu_ = std::make_unique<wdg::ProcessSupervisionUnit>(watchdog_);
  if (fmf_) {
    fmf_->attach_transgression_store(
        [this] { return psu_->persisted_records(); },
        [this](const std::vector<wdg::TransgressionRecord>& records) {
          psu_->restore_records(records);
        });
  }
  return *psu_;
}

void CentralNode::schedule_environment_cycles(std::uint64_t generation) {
  if (!esu_ && !psu_ && !csu_) return;
  engine_.schedule_in(
      config_.watchdog.check_period,
      [this, generation] {
        if (generation != env_generation_) return;
        if (esu_) esu_->cycle(engine_.now());
        // Check evaluations run before the process-supervision cycle so a
        // window opened this cycle is not instantly reported overdue.
        if (csu_) csu_->cycle(engine_.now());
        if (psu_) psu_->cycle(engine_.now());
        schedule_environment_cycles(generation);
      },
      sim::EventPriority::kMonitor);
}

void CentralNode::enter_thermal_derate(sim::SimTime now) {
  if (derated_) return;
  derated_ = true;
  EASIS_LOG(util::LogLevel::kWarn, "validator")
      << "thermal derate: parking QM applications, stretching HBM "
      << "hypotheses x" << config_.derate_hbm_stretch;
  // Park the QM applications (reversible, unlike the safe state).
  auto park = [this](ApplicationId app) {
    for (RunnableId runnable : ecu_.rte().runnables_of_application(app)) {
      if (watchdog_.heartbeat_unit().monitors(runnable)) {
        watchdog_.set_activation_status(runnable, false);
      }
    }
    ecu_.rte().set_application_enabled(app, false);
  };
  if (safelane_) park(safelane_->application());
  if (light_) park(light_->application());
  if (crash_) park(crash_->application());
  // Stretch the HBM hypotheses of the runnables that keep running: the
  // derated (slower) node must not trip aliveness monitoring.
  stretched_.clear();
  const std::uint32_t f = std::max<std::uint32_t>(config_.derate_hbm_stretch,
                                                  1);
  for (RunnableId runnable :
       watchdog_.heartbeat_unit().monitored_runnables()) {
    if (!watchdog_.activation_status(runnable)) continue;
    const wdg::RunnableMonitor& cfg =
        watchdog_.heartbeat_unit().config(runnable);
    if (!cfg.monitor_aliveness && !cfg.monitor_arrival_rate) continue;
    stretched_.emplace_back(runnable, cfg);
    watchdog_.update_hypothesis(runnable, cfg.aliveness_cycles * f,
                                cfg.min_heartbeats, cfg.arrival_cycles * f,
                                cfg.max_arrivals * f);
  }
  (void)now;
}

void CentralNode::exit_thermal_derate(sim::SimTime now) {
  if (!derated_) return;
  derated_ = false;
  if (safe_state_) return;  // the safe state owns the configuration now
  EASIS_LOG(util::LogLevel::kInfo, "validator")
      << "thermal derate over: restoring HBM hypotheses, re-enabling QM "
      << "applications";
  for (const auto& [runnable, cfg] : stretched_) {
    watchdog_.update_hypothesis(runnable, cfg.aliveness_cycles,
                                cfg.min_heartbeats, cfg.arrival_cycles,
                                cfg.max_arrivals);
  }
  stretched_.clear();
  auto unpark = [this, now](ApplicationId app) {
    ecu_.rte().set_application_enabled(app, true);
    for (RunnableId runnable : ecu_.rte().runnables_of_application(app)) {
      if (watchdog_.heartbeat_unit().monitors(runnable)) {
        watchdog_.set_activation_status(runnable, true);
        watchdog_.reset_runnable(runnable);
      }
    }
    for (TaskId task : ecu_.rte().tasks_of_application(app)) {
      watchdog_.clear_task_state(task, now);
    }
  };
  if (safelane_) unpark(safelane_->application());
  if (light_) unpark(light_->application());
  if (crash_) unpark(crash_->application());
}

void CentralNode::on_hw_watchdog_expired(sim::SimTime now) {
  ++hw_resets_;
  EASIS_LOG(util::LogLevel::kError, "validator")
      << "hardware watchdog expired at " << now
      << ": software watchdog task hung, starved or corrupted";
  fmf::ResetCause cause;
  cause.source = fmf::ResetSource::kHardwareWatchdog;
  cause.task = service_->task();
  cause.time = now;
  cause.detail =
      "hardware watchdog expired (software watchdog not serviced)";
  if (fmf_) {
    fmf_->request_reset(std::move(cause), now);
    return;
  }
  software_reset();
}

void CentralNode::enter_safe_state(const fmf::ResetCause& cause) {
  if (safe_state_) return;
  safe_state_ = true;
  EASIS_LOG(util::LogLevel::kError, "validator")
      << "entering limp-home safe state (" << fmf::to_string(cause.source)
      << "): SafeSpeed limp limit, assist applications disabled";
  // The HW watchdog must not reset the parked node.
  if (self_supervision_) self_supervision_->stop();
  safespeed_->set_limp_home(true);
  auto park = [this](ApplicationId app) {
    for (RunnableId runnable : ecu_.rte().runnables_of_application(app)) {
      if (watchdog_.heartbeat_unit().monitors(runnable)) {
        watchdog_.set_activation_status(runnable, false);
      }
    }
    ecu_.rte().set_application_enabled(app, false);
  };
  if (safelane_) park(safelane_->application());
  if (light_) park(light_->application());
  if (crash_) park(crash_->application());
}

void CentralNode::arm_alarms() {
  auto& kernel = ecu_.kernel();
  if (schedule_table_) {
    if (schedule_table_->running()) schedule_table_->stop();
    // First round starts one dispatcher period in (like the alarms).
    schedule_table_->start(config_.safespeed.period);
  } else {
    kernel.set_rel_alarm(safespeed_alarm_, safespeed_ticks_,
                         safespeed_ticks_);
    if (safelane_) {
      kernel.set_rel_alarm(safelane_alarm_, safelane_ticks_, safelane_ticks_);
    }
    if (light_) {
      kernel.set_rel_alarm(light_alarm_, light_ticks_, light_ticks_);
    }
  }
  service_->arm();
}

void CentralNode::schedule_environment(std::uint64_t generation) {
  engine_.schedule_in(
      config_.environment_step,
      [this, generation] {
        if (generation != env_generation_) return;
        auto& signals = ecu_.signals();
        vehicle_.set_drive_command(signals.read_or("actuator.drive_cmd", 0.0));
        vehicle_.step(config_.environment_step);
        lane_.step(config_.environment_step);
        thermal_model_.step(config_.environment_step,
                            rsu_ ? rsu_->load_average() : 0.0);
        signals.publish("vehicle.speed_kmh", vehicle_.speed_kmh(),
                        engine_.now());
        signals.publish("lane.offset_m", lane_.lateral_offset_m(),
                        engine_.now());
        schedule_environment(generation);
      },
      sim::EventPriority::kDefault);
}

}  // namespace easis::validator
