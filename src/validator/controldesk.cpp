#include "validator/controldesk.hpp"

#include <memory>
#include <stdexcept>

namespace easis::validator {

ControlDesk::ControlDesk(sim::Engine& engine, util::TraceRecorder& recorder,
                         sim::Duration sample_period)
    : engine_(engine), recorder_(recorder), period_(sample_period) {
  if (sample_period <= sim::Duration::zero()) {
    throw std::invalid_argument("ControlDesk: sample period must be positive");
  }
}

void ControlDesk::watch(std::string signal, std::function<double()> probe) {
  probes_.emplace_back(std::move(signal), std::move(probe));
}

void ControlDesk::watch_runnable(const wdg::SoftwareWatchdog& watchdog,
                                 RunnableId runnable,
                                 const std::string& prefix) {
  const auto& hbm = watchdog.heartbeat_unit();
  const auto& tsi = watchdog.tsi_unit();
  watch(prefix + ".AC", [&hbm, runnable] {
    return static_cast<double>(hbm.ac(runnable));
  });
  watch(prefix + ".CCA", [&hbm, runnable] {
    return static_cast<double>(hbm.cca(runnable));
  });
  watch(prefix + ".ARC", [&hbm, runnable] {
    return static_cast<double>(hbm.arc(runnable));
  });
  watch(prefix + ".CCAR", [&hbm, runnable] {
    return static_cast<double>(hbm.ccar(runnable));
  });
  watch(prefix + ".AM Result", [&tsi, runnable] {
    return static_cast<double>(
        tsi.error_count(runnable, wdg::ErrorType::kAliveness) +
        tsi.error_count(runnable, wdg::ErrorType::kAccumulatedAliveness));
  });
  watch(prefix + ".ARM Result", [&tsi, runnable] {
    return static_cast<double>(
        tsi.error_count(runnable, wdg::ErrorType::kArrivalRate));
  });
  watch(prefix + ".PFC Result", [&tsi, runnable] {
    return static_cast<double>(
        tsi.error_count(runnable, wdg::ErrorType::kProgramFlow));
  });
}

void ControlDesk::watch_event_bus(telemetry::EventBus& bus,
                                  const std::string& prefix) {
  // The counters are shared between the bus sink and the probes so the
  // ControlDesk can be destroyed before the bus without dangling.
  struct Counts {
    std::uint64_t events = 0;
    std::uint64_t detections = 0;
    std::uint64_t treatments = 0;
  };
  auto counts = std::make_shared<Counts>();
  bus.add_sink([counts](const telemetry::Event& event) {
    ++counts->events;
    if (telemetry::is_detection(event.kind)) ++counts->detections;
    if (telemetry::is_treatment(event.kind)) ++counts->treatments;
  });
  watch(prefix + ".events",
        [counts] { return static_cast<double>(counts->events); });
  watch(prefix + ".detections",
        [counts] { return static_cast<double>(counts->detections); });
  watch(prefix + ".treatments",
        [counts] { return static_cast<double>(counts->treatments); });
}

void ControlDesk::watch_environment(
    const wdg::EnvironmentSupervisionUnit& environment,
    const std::string& prefix, const wdg::ProcessSupervisionUnit* process) {
  watch(prefix + ".temp_c", [&environment] {
    return environment.temperature_c();
  });
  watch(prefix + ".stage", [&environment] {
    return static_cast<double>(environment.stage());
  });
  watch(prefix + ".flash_fill", [&environment] {
    return static_cast<double>(environment.flash_fill_pct());
  });
  watch(prefix + ".flash_wear", [&environment] {
    return static_cast<double>(environment.flash_wear_pct());
  });
  if (process != nullptr) {
    for (std::size_t i = 0; i < process->section_count(); ++i) {
      watch(prefix + "." + process->record(i).section + ".transgressions",
            [process, i] {
              return static_cast<double>(process->record(i).count);
            });
    }
  }
}

void ControlDesk::watch_power_mode(const mode::PowerModeManager& manager,
                                   const std::string& prefix,
                                   const mode::ModeSupervisionUnit* unit) {
  watch(prefix + ".mode", [&manager] {
    return static_cast<double>(static_cast<std::uint8_t>(manager.current()));
  });
  watch(prefix + ".dwell_ms", [this, &manager] {
    return static_cast<double>(manager.dwell(engine_.now()).as_micros()) /
           1000.0;
  });
  // Causes are strings; the trace is numeric. A 24-bit FNV-1a hash maps
  // each distinct cause to a stable plotted level.
  watch(prefix + ".cause", [&manager] {
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : manager.last_cause()) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    return static_cast<double>((h ^ (h >> 24) ^ (h >> 48)) & 0xFFFFFFu);
  });
  watch(prefix + ".transitions", [&manager] {
    return static_cast<double>(manager.transitions());
  });
  watch(prefix + ".refusals", [&manager] {
    return static_cast<double>(manager.refusals());
  });
  if (unit != nullptr) {
    watch(prefix + ".overlay", [unit] {
      return static_cast<double>(unit->active_overlay_hash24());
    });
    watch(prefix + ".silence", [unit] {
      return unit->silence_contracted() ? 1.0 : 0.0;
    });
    watch(prefix + ".mode_errors", [unit] {
      return static_cast<double>(unit->errors_reported());
    });
  }
}

void ControlDesk::watch_health_master(const diag::HealthMonitorMaster& master,
                                      const std::string& prefix) {
  watch(prefix + ".silent",
        [&master] { return static_cast<double>(master.silent_count()); });
  watch(prefix + ".cycles",
        [&master] { return static_cast<double>(master.poll_cycles()); });
  for (std::size_t i = 0; i < master.fleet().size(); ++i) {
    const std::string ecu = master.fleet()[i].name;
    watch(prefix + "." + ecu + ".alive", [&master, i] {
      return master.fleet()[i].state == diag::FleetEntry::State::kAlive ? 1.0
                                                                        : 0.0;
    });
    watch(prefix + "." + ecu + ".dtc",
          [&master, i] { return master.fleet()[i].dtc_total; });
    watch(prefix + "." + ecu + ".health",
          [&master, i] { return master.fleet()[i].health; });
  }
}

void ControlDesk::start(sim::Duration horizon) {
  if (running_) throw std::logic_error("ControlDesk: already running");
  running_ = true;
  stop_at_ = engine_.now() + horizon;
  sample_and_reschedule();
}

void ControlDesk::sample_and_reschedule() {
  if (engine_.now() > stop_at_) {
    running_ = false;
    return;
  }
  ++samples_;
  const std::int64_t t = engine_.now().as_micros();
  for (const auto& [signal, probe] : probes_) {
    recorder_.record(signal, t, probe());
  }
  engine_.schedule_in(period_, [this] { sample_and_reschedule(); },
                      sim::EventPriority::kMonitor);
}

}  // namespace easis::validator
