// Scripted driving scenarios: timed signal writes and callbacks, the
// equivalent of the validator operator working the experiment desk.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "rte/signal_bus.hpp"
#include "sim/engine.hpp"

namespace easis::validator {

class Scenario {
 public:
  Scenario(sim::Engine& engine, rte::SignalBus& signals)
      : engine_(engine), signals_(signals) {}

  /// At `at`, publish `value` to `signal`.
  void set_signal(sim::SimTime at, std::string signal, double value);

  /// At `at`, run an arbitrary step.
  void at(sim::SimTime at, std::function<void()> step);

  /// Schedules all steps. Call once before running the simulation.
  void arm();

  [[nodiscard]] std::size_t step_count() const { return steps_.size(); }

 private:
  struct Step {
    sim::SimTime time;
    std::function<void()> action;
  };

  sim::Engine& engine_;
  rte::SignalBus& signals_;
  std::vector<Step> steps_;
  bool armed_ = false;
};

}  // namespace easis::validator
