// ControlDesk substitute (paper §4.5): periodic sampling of watchdog
// counters and platform signals into a TraceRecorder, so the bench
// binaries can reproduce the paper's plotted diagrams (x axis with a
// 10 ms scalar; y axis counter values and detected-error counts).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "diag/health_master.hpp"
#include "mode/power_mode.hpp"
#include "mode/supervision.hpp"
#include "sim/engine.hpp"
#include "telemetry/event_bus.hpp"
#include "util/ids.hpp"
#include "util/trace.hpp"
#include "wdg/env_monitor.hpp"
#include "wdg/process_supervisor.hpp"
#include "wdg/watchdog.hpp"

namespace easis::validator {

class ControlDesk {
 public:
  ControlDesk(sim::Engine& engine, util::TraceRecorder& recorder,
              sim::Duration sample_period = sim::Duration::millis(10));

  /// Adds an arbitrary probe sampled every period.
  void watch(std::string signal, std::function<double()> probe);

  /// Adds the paper's standard plot set for one monitored runnable:
  /// "<prefix>.AC", "<prefix>.CCA", "<prefix>.ARC", "<prefix>.CCAR",
  /// "<prefix>.AM Result", "<prefix>.ARM Result", "<prefix>.PFC Result".
  void watch_runnable(const wdg::SoftwareWatchdog& watchdog,
                      RunnableId runnable, const std::string& prefix);

  /// Event-sourced probes: subscribes a counting sink to `bus` and samples
  /// three cumulative signals every period — "<prefix>.events" (all
  /// events), "<prefix>.detections" (detection kinds), and
  /// "<prefix>.treatments" (treatment kinds). The plotted curves show
  /// *when* the detection chain progressed, on the same time axis as the
  /// watchdog counter plots. The bus must outlive the ControlDesk.
  void watch_event_bus(telemetry::EventBus& bus, const std::string& prefix);

  /// Fleet-health probes from a HealthMonitorMaster: "<prefix>.silent"
  /// (nodes currently silent), "<prefix>.cycles" (poll cycles run), and
  /// per registered ECU "<prefix>.<ecu>.alive" / "<prefix>.<ecu>.dtc" /
  /// "<prefix>.<ecu>.health". Register the fleet before calling; the
  /// master must outlive the ControlDesk.
  void watch_health_master(const diag::HealthMonitorMaster& master,
                           const std::string& prefix);

  /// Environmental-supervision probes: "<prefix>.temp_c" (primary sensor
  /// reading), "<prefix>.stage" (derating ladder stage 0..3),
  /// "<prefix>.flash_fill" / "<prefix>.flash_wear" (percent), and — when
  /// `process` is non-null — "<prefix>.<section>.transgressions" per
  /// supervised section. Both units must outlive the ControlDesk.
  void watch_environment(const wdg::EnvironmentSupervisionUnit& environment,
                         const std::string& prefix,
                         const wdg::ProcessSupervisionUnit* process = nullptr);

  /// Power-mode probes from a PowerModeManager: "<prefix>.mode" (enum
  /// index), "<prefix>.dwell_ms" (time in the current mode),
  /// "<prefix>.cause" (24-bit FNV-1a hash of the last transition cause —
  /// distinct causes plot as distinct levels), "<prefix>.transitions" and
  /// "<prefix>.refusals" (cumulative). When `unit` is non-null, also
  /// "<prefix>.overlay" (hash of the bound overlay), "<prefix>.silence"
  /// (1 while silence is contracted) and "<prefix>.mode_errors". Both
  /// must outlive the ControlDesk.
  void watch_power_mode(const mode::PowerModeManager& manager,
                        const std::string& prefix,
                        const mode::ModeSupervisionUnit* unit = nullptr);

  /// Begins sampling; stops after `horizon` from now.
  void start(sim::Duration horizon);

  [[nodiscard]] std::uint64_t samples_taken() const { return samples_; }

 private:
  sim::Engine& engine_;
  util::TraceRecorder& recorder_;
  sim::Duration period_;
  std::vector<std::pair<std::string, std::function<double()>>> probes_;
  sim::SimTime stop_at_;
  bool running_ = false;
  std::uint64_t samples_ = 0;

  void sample_and_reschedule();
};

}  // namespace easis::validator
