#include "validator/network.hpp"

namespace easis::validator {

VehicleNetwork::VehicleNetwork(sim::Engine& engine,
                               rte::SignalBus& central_signals,
                               NetworkConfig config)
    : engine_(engine),
      signals_(central_signals),
      config_(config),
      can_link_(config.fault_seed),
      flexray_link_(config.fault_seed + 1),
      lin_link_(config.fault_seed + 2) {
  can_ = std::make_unique<bus::CanBus>(engine_, config_.can_bitrate_bps);
  flexray_ = std::make_unique<bus::FlexRayBus>(engine_, config_.flexray);
  gateway_ = std::make_unique<bus::Gateway>(engine_, config_.gateway_latency);
  can_->set_fault_link(&can_link_);
  flexray_->set_fault_link(&flexray_link_);

  if (config_.e2e_protection) {
    max_speed_tx_.emplace(bus::E2EConfig{config_.max_speed_data_id, 1});
    max_speed_rx_.emplace(bus::E2EConfig{config_.max_speed_data_id, 1});
    speed_tx_.emplace(bus::E2EConfig{config_.speed_broadcast_data_id, 1});
    speed_rx_.emplace(bus::E2EConfig{config_.speed_broadcast_data_id, 1});
  }

  // Central node on CAN: receives the routed max-speed command.
  central_can_endpoint_ = can_->attach(
      "central", [this](const bus::Frame& frame, sim::SimTime now) {
        if (frame.id != config_.can_max_speed_id) return;
        std::size_t offset = 0;
        if (max_speed_rx_) {
          const bus::E2EStatus status = max_speed_rx_->check(frame);
          if (max_speed_check_listener_) {
            max_speed_check_listener_(status, now);
          }
          if (status != bus::E2EStatus::kOk) {
            // Rejected data is *no* data: the signal ages into its
            // reception deadline instead of carrying garbage.
            ++e2e_rejections_;
            return;
          }
          offset = bus::kE2EHeaderBytes;
        }
        if (auto kmh = bus::decode_f32(frame, offset)) {
          ++commands_received_;
          signals_.publish("safespeed.max_speed_kmh", *kmh, now);
        } else {
          ++decode_failures_;
        }
      });

  // Gateway endpoint on CAN (routes towards/from other domains).
  auto can_ingress = gateway_->register_domain(
      "can", [this](bus::Frame frame) {
        // The gateway is CAN endpoint #1 (attached below).
        can_->transmit(gateway_can_endpoint_, std::move(frame));
      });
  gateway_can_endpoint_ = can_->attach("gateway", std::move(can_ingress));

  // Telematics (TCP/IP) domain: direct channel into the gateway.
  telematics_ingress_ = gateway_->register_domain(
      "telematics", [](bus::Frame) { /* nothing routed back out today */ });

  // FlexRay: central node broadcasts speed; dynamics node listens.
  central_fr_endpoint_ = flexray_->attach("central", nullptr);
  dynamics_fr_endpoint_ = flexray_->attach(
      "dynamics", [this](const bus::Frame& frame, sim::SimTime now) {
        std::size_t offset = 0;
        if (speed_rx_) {
          const bus::E2EStatus status = speed_rx_->check(frame);
          if (speed_check_listener_) speed_check_listener_(status, now);
          if (status != bus::E2EStatus::kOk) {
            ++e2e_rejections_;
            return;
          }
          offset = bus::kE2EHeaderBytes;
        }
        if (auto kmh = bus::decode_f32(frame, offset)) {
          last_speed_ = *kmh;
        } else {
          ++decode_failures_;
        }
      });
  flexray_->assign_slot(config_.speed_slot, central_fr_endpoint_);

  // Route: telematics max-speed command -> vehicle CAN.
  gateway_->add_route("telematics", config_.telematics_max_speed_id, "can",
                      config_.can_max_speed_id);

  // LIN body bus: the master (central body controller) polls the ambient
  // light sensor and publishes the value onto the central signal bus.
  lin_ = std::make_unique<bus::LinBus>(engine_, config_.lin_slot);
  lin_->set_fault_link(&lin_link_);
  lin_->attach("body_master",
               [this](const bus::Frame& frame, sim::SimTime now) {
                 if (frame.id != config_.lin_ambient_frame_id) return;
                 if (auto level = bus::decode_f32(frame, 0)) {
                   signals_.publish("env.ambient_light", *level, now);
                 } else {
                   ++decode_failures_;
                 }
               });
  const auto sensor_slave = lin_->attach("ambient_sensor", nullptr);
  lin_->set_publisher(config_.lin_ambient_frame_id, sensor_slave, [this] {
    bus::Frame frame;
    bus::encode_f32(frame, 0, ambient_level_);
    return std::optional<std::vector<std::uint8_t>>(std::move(frame.payload));
  });
  lin_->set_schedule({config_.lin_ambient_frame_id});
}

void VehicleNetwork::start() {
  running_ = true;
  flexray_->start();
  lin_->start();
  schedule_speed_broadcast();
}

void VehicleNetwork::command_max_speed(double kmh) {
  bus::Frame frame;
  frame.id = config_.telematics_max_speed_id;
  bus::encode_f32(frame, 0, kmh);
  if (max_speed_tx_) max_speed_tx_->protect(frame);
  // Telematics frames enter the gateway directly (TCP/IP domain).
  telematics_ingress_(frame, engine_.now());
}

bus::BabblingIdiot& VehicleNetwork::babbler() {
  if (!babbler_) {
    const auto endpoint = can_->attach("babbler", nullptr);
    babbler_ = std::make_unique<bus::BabblingIdiot>(
        engine_, [this, endpoint](bus::Frame frame) {
          can_->transmit(endpoint, std::move(frame));
        });
  }
  return *babbler_;
}

void VehicleNetwork::schedule_speed_broadcast() {
  engine_.schedule_in(config_.speed_broadcast_period, [this] {
    if (!running_) return;
    bus::Frame frame;
    frame.id = 0x200 + config_.speed_slot;
    bus::encode_f32(frame, 0, signals_.read_or("vehicle.speed_kmh", 0.0));
    if (speed_tx_) speed_tx_->protect(frame);
    flexray_->send(central_fr_endpoint_, config_.speed_slot,
                   std::move(frame));
    schedule_speed_broadcast();
  });
}

}  // namespace easis::validator
