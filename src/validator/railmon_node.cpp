#include "validator/railmon_node.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "diag/protocol.hpp"
#include "util/logging.hpp"
#include "wdg/config_check.hpp"

namespace easis::validator {

namespace {
std::uint64_t period_ticks(sim::Duration period) {
  constexpr std::int64_t kTickMicros = 1000;  // 1 ms system counter
  const std::int64_t p = period.as_micros();
  if (p <= 0 || p % kTickMicros != 0) {
    throw std::invalid_argument(
        "RailMonNode: task periods must be positive multiples of 1ms");
  }
  return static_cast<std::uint64_t>(p / kTickMicros);
}
}  // namespace

RailMonNode::RailMonNode(sim::Engine& engine, RailMonNodeConfig config)
    : engine_(engine),
      config_(config),
      ecu_(engine, "RailMonNode"),
      watchdog_(config.watchdog) {
  auto& kernel = ecu_.kernel();
  auto& rte = ecu_.rte();

  os::CounterConfig counter_config;
  counter_config.name = "SystemTimer";
  counter_config.tick = sim::Duration::millis(1);
  counter_ = kernel.create_counter(counter_config);

  os::TaskConfig control_cfg;
  control_cfg.name = "Task_DutyCycler";
  control_cfg.priority = config_.control_priority;
  control_task_ = kernel.create_task(control_cfg);
  control_alarm_ = kernel.create_alarm(
      counter_, os::AlarmActionActivateTask{control_task_},
      "Alarm_DutyCycler");
  control_ticks_ = period_ticks(config_.railmon.control_period);

  os::TaskConfig sensor_cfg;
  sensor_cfg.name = "Task_Acquisition";
  sensor_cfg.priority = config_.sensor_priority;
  sensor_task_ = kernel.create_task(sensor_cfg);
  sensor_alarm_ = kernel.create_alarm(
      counter_, os::AlarmActionActivateTask{sensor_task_},
      "Alarm_Acquisition");
  sample_ticks_ = period_ticks(config_.railmon.sample_period);
  burst_ticks_ = period_ticks(config_.railmon.burst_period);

  // --- mode machine -----------------------------------------------------------
  manager_ = std::make_unique<mode::PowerModeManager>(engine, ecu_.signals(),
                                                      config_.mode);
  using mode::PowerMode;
  manager_->allow(PowerMode::kRun, PowerMode::kFlashWrite);
  manager_->allow(PowerMode::kFlashWrite, PowerMode::kSleep);
  manager_->allow(PowerMode::kSleep, PowerMode::kWakeBurst);
  manager_->allow(PowerMode::kWakeBurst, PowerMode::kRun);
  manager_->allow(PowerMode::kRun, PowerMode::kIdle);
  manager_->allow(PowerMode::kIdle, PowerMode::kRun);
  manager_->allow(PowerMode::kIdle, PowerMode::kSleep);
  // Guard: the node must not strand an overfull uncommitted journal in
  // deep sleep — sleep is only granted when the flash window actually
  // committed the backlog.
  manager_->add_guard([this](PowerMode, PowerMode to, std::string& veto) {
    if (to == PowerMode::kSleep && railmon_ != nullptr &&
        railmon_->journal_depth() > config_.railmon.journal_capacity / 2) {
      veto = "uncommitted journal backlog";
      return false;
    }
    return true;
  });

  railmon_ = std::make_unique<apps::RailMon>(rte, ecu_.signals(), *manager_,
                                             control_task_, sensor_task_,
                                             config_.railmon);
  railmon_->configure_watchdog(watchdog_);

  // --- mode-dependent supervision --------------------------------------------
  // The unit's transition listener registers first: a commit rebinds the
  // hypotheses before the node's listener re-programs the alarms, so the
  // new mode's monitoring contract is armed the instant its activation
  // pattern changes.
  mode_unit_ = std::make_unique<mode::ModeSupervisionUnit>(
      *manager_, watchdog_, control_task_, railmon_->application(),
      config_.mode_supervision);
  const sim::Duration check = watchdog_.config().check_period;
  mode_unit_->bind(railmon_->sensor_monitor_base(check));
  mode_unit_->bind(railmon_->uplink_monitor_base(check));

  manager_->add_listener([this](const mode::ModeTransition& transition) {
    if (transition.to == PowerMode::kFlashWrite) {
      // The declared flash window: journal handover + fault-memory commit
      // happen inside it, while the overlay has the checks suspended.
      railmon_->commit_journal(transition.at);
      if (fmf_) fmf_->persist();
    }
    apply_mode_scheduling(transition.to);
  });

  service_ = std::make_unique<wdg::WatchdogService>(
      kernel, rte, watchdog_, counter_, config_.watchdog_service);

  // --- check rules (gated by the overlays' checks_enabled) --------------------
  if (config_.policy && !config_.policy->checks.empty()) {
    psu_ = std::make_unique<wdg::ProcessSupervisionUnit>(watchdog_);
    csu_ = std::make_unique<policy::CheckSupervisionUnit>(
        watchdog_, *psu_, ecu_.signals(), control_task_,
        railmon_->application());
    for (const policy::CheckRule& rule : config_.policy->checks) {
      csu_->add_rule(rule);
    }
    mode_unit_->attach_check_unit(csu_.get());
  }

  // --- fault memory -----------------------------------------------------------
  if (config_.with_fmf) {
    fmf_ = std::make_unique<fmf::FaultManagementFramework>(
        rte, watchdog_, [this] { software_reset(); }, config_.fmf);
    dtc_ = std::make_unique<fmf::DtcStore>(
        ecu_.signals(),
        std::vector<std::string>{"railmon.journal_depth", "railmon.committed",
                                 "railmon.uplinked", config_.mode.signal},
        config_.dtc_capacity);
    fmf_->attach_dtc_store(dtc_.get());
    if (config_.with_nvm) {
      if (config_.external_nvm != nullptr) {
        nvm_ = config_.external_nvm;
      } else {
        owned_nvm_ = std::make_unique<fmf::NvmStore>(config_.nvm_capacity);
        nvm_ = owned_nvm_.get();
      }
      fmf_->attach_nvm(nvm_);
    }
    if (psu_) {
      fmf_->attach_transgression_store(
          [this] { return psu_->persisted_records(); },
          [this](const std::vector<wdg::TransgressionRecord>& records) {
            psu_->restore_records(records);
          });
    }
    // The active power mode rides in the NVM image: a node that reset
    // while asleep boots *into* Sleep, silence contract re-armed, instead
    // of defaulting to Run and heartbeating through a contracted silence.
    fmf_->attach_power_mode_store(
        [this] { return std::string(mode::to_string(manager_->current())); },
        [this](const std::string& persisted) {
          const auto parsed = mode::parse_power_mode(persisted);
          if (parsed) manager_->reseed(*parsed, engine_.now());
        });
    fmf_->set_safe_state_hook(
        [this](const fmf::ResetCause& cause) { enter_safe_state(cause); });
    fmf_->attach();
    // An application restart cannot un-hang an in-flight mode transition:
    // the swallowed grant lives in the mode machine, not in the restarted
    // runnables. Persistent hang reports while the transition is still
    // pending therefore escalate to an ECU reset, whose NVM re-seed
    // clears the stuck two-phase commit (or parks the node in the safe
    // state once the reset budget is spent).
    watchdog_.add_error_listener([this](const wdg::ErrorReport& report) {
      if (report.type != wdg::ErrorType::kPowerMode) return;
      if (!manager_->transition_pending()) {
        hung_mode_reports_ = 0;
        return;
      }
      if (++hung_mode_reports_ < kHungModeResetThreshold) return;
      hung_mode_reports_ = 0;
      engine_.schedule_in(sim::Duration::millis(1), [this] {
        if (rebooting_ || safe_state_ || !fmf_) return;
        if (!manager_->transition_pending()) return;
        fmf::ResetCause cause;
        cause.source = fmf::ResetSource::kEcuFaulty;
        cause.time = engine_.now();
        cause.detail = "hung power-mode transition: escalating to ECU reset";
        fmf_->request_reset(std::move(cause), engine_.now());
      });
    });
  }

  // --- policy bindings --------------------------------------------------------
  if (config_.policy) {
    if (fmf_) {
      fmf::ApplicationPolicy app_policy;
      app_policy.on_faulty =
          policy::to_fmf_action(config_.policy->treatment.safety.on_faulty);
      app_policy.max_restarts = config_.policy->treatment.safety.max_restarts;
      fmf_->set_application_policy(railmon_->application(), app_policy);
    }
    mode_unit_->set_policy(config_.policy, engine_.now());
  }
}

void RailMonNode::start() {
  if (!ecu_.rte().finalized()) ecu_.rte().finalize();
  if (started_once_ && kernel().started()) {
    throw std::logic_error("RailMonNode: already started");
  }
  if (!started_once_) {
    const auto findings = wdg::ConfigChecker::check(
        watchdog_, [this](RunnableId id) {
          if (id == railmon_->duty_cycle_control()) {
            return config_.railmon.control_period;
          }
          if (id == railmon_->sample_sensor() ||
              id == railmon_->uplink_process()) {
            return config_.railmon.sample_period;
          }
          return sim::Duration::zero();
        });
    if (!wdg::ConfigChecker::acceptable(findings)) {
      std::ostringstream report;
      wdg::ConfigChecker::write(report, findings);
      throw std::logic_error("RailMonNode: watchdog configuration invalid\n" +
                             report.str());
    }
    for (const auto& finding : findings) {
      EASIS_LOG(util::LogLevel::kWarn, "validator") << finding.message;
    }
  }
  started_once_ = true;
  kernel().start();
  if (fmf_) fmf_->boot_from_nvm(engine_.now());
  arm_alarms();
  schedule_supervision_cycles(++cycle_generation_);
}

void RailMonNode::software_reset() {
  ++resets_;
  if (fmf_) fmf_->persist();
  kernel().software_reset();
  watchdog_.reset(engine_.now());
  ++boot_generation_;
  ++cycle_generation_;  // stop the supervision cycles of the old boot
  if (config_.reboot_delay.as_micros() > 0) {
    rebooting_ = true;
    const std::uint64_t boot_gen = boot_generation_;
    engine_.schedule_in(
        config_.reboot_delay,
        [this, boot_gen] {
          if (boot_gen != boot_generation_) return;
          boot_after_reset();
        },
        sim::EventPriority::kDefault);
    return;
  }
  boot_after_reset();
}

void RailMonNode::boot_after_reset() {
  rebooting_ = false;
  kernel().start();
  // Re-seeds the fault memory *and* the persisted power mode before
  // anything runs; the reseed listener re-applies the mode's overlay and
  // the node's scheduling contract, then arm_alarms() (idempotent: cancel
  // + re-arm) fixes up whatever the current mode demands.
  if (fmf_) fmf_->boot_from_nvm(engine_.now());
  arm_alarms();
  schedule_supervision_cycles(++cycle_generation_);
  if (fmf_) fmf_->begin_ecu_recovery_window(engine_.now());
}

void RailMonNode::arm_alarms() {
  kernel().set_rel_alarm(control_alarm_, control_ticks_, control_ticks_);
  apply_mode_scheduling(manager_->current());
  service_->arm();
}

void RailMonNode::apply_mode_scheduling(mode::PowerMode mode) {
  auto& kernel = ecu_.kernel();
  (void)kernel.cancel_alarm(sensor_alarm_);
  if (safe_state_) return;  // sensing chain stays parked
  switch (mode) {
    case mode::PowerMode::kSleep:
      // Deep sleep: the sensing task's heartbeats stop by contract.
      break;
    case mode::PowerMode::kWakeBurst:
      kernel.set_rel_alarm(sensor_alarm_, burst_ticks_, burst_ticks_);
      break;
    default:
      kernel.set_rel_alarm(sensor_alarm_, sample_ticks_, sample_ticks_);
      break;
  }
}

void RailMonNode::schedule_supervision_cycles(std::uint64_t generation) {
  engine_.schedule_in(
      config_.watchdog.check_period,
      [this, generation] {
        if (generation != cycle_generation_) return;
        mode_unit_->cycle(engine_.now());
        if (csu_) csu_->cycle(engine_.now());
        if (psu_) psu_->cycle(engine_.now());
        schedule_supervision_cycles(generation);
      },
      sim::EventPriority::kMonitor);
}

void RailMonNode::enter_safe_state(const fmf::ResetCause& cause) {
  if (safe_state_) return;
  safe_state_ = true;
  EASIS_LOG(util::LogLevel::kError, "validator")
      << "railmon safe state (" << fmf::to_string(cause.source)
      << "): duty cycle held, sensing chain parked";
  railmon_->set_duty_hold(true);
  (void)ecu_.kernel().cancel_alarm(sensor_alarm_);
  for (RunnableId runnable :
       {railmon_->sample_sensor(), railmon_->uplink_process()}) {
    if (watchdog_.heartbeat_unit().monitors(runnable)) {
      watchdog_.set_activation_status(runnable, false);
    }
  }
}

diag::DiagServer& RailMonNode::attach_diag(bus::CanBus& can,
                                           diag::DiagServerConfig config) {
  diag::DiagBackend backend;
  backend.dtcs = dtc_.get();
  backend.fmf = fmf_.get();
  backend.watchdog = &watchdog_;
  backend.ecu_reset = [this] {
    fmf::ResetCause cause;
    cause.source = fmf::ResetSource::kDiagnosticRequest;
    cause.time = engine_.now();
    cause.detail = "commanded ECUReset (diagnostic service 0x11)";
    if (fmf_) {
      fmf_->request_reset(std::move(cause), engine_.now());
      return;
    }
    software_reset();
  };
  backend.offline = [this] { return rebooting_; };
  if (config_.policy) {
    const std::uint32_t hash24 = policy::version_hash24(*config_.policy);
    const std::uint32_t version = config_.policy->version;
    backend.policy_hash = [hash24] { return hash24; };
    backend.policy_version = [version] { return version; };
  }
  backend.process = psu_.get();
  backend.nvm = nvm_;
  diag_ = std::make_unique<diag::DiagServer>(engine_, can, std::move(backend),
                                             std::move(config));
  // Power-mode identifiers: the workshop tester can verify which mode the
  // node believes it is in and which overlay its supervision is bound to.
  diag_->add_data_identifier(diag::kDidPowerMode, "power_mode", [this] {
    return static_cast<double>(static_cast<std::uint8_t>(manager_->current()));
  });
  diag_->add_data_identifier(
      diag::kDidModeOverlayHash, "mode_overlay_hash", [this] {
        return static_cast<double>(mode_unit_->active_overlay_hash24());
      });
  return *diag_;
}

}  // namespace easis::validator
