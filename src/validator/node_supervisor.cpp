#include "validator/node_supervisor.hpp"

#include <cassert>
#include <stdexcept>

#include "util/logging.hpp"

namespace easis::validator {

namespace {
constexpr std::string_view kLog = "nodesup";
}

NodeSupervisor::NodeSupervisor(sim::Engine& engine, bus::CanBus& can,
                               NodeSupervisorConfig config)
    : engine_(engine), config_(config) {
  can.attach("node_supervisor", [this](const bus::Frame& frame,
                                       sim::SimTime now) {
    on_frame(frame, now);
  });
}

NodeId NodeSupervisor::register_node(std::string name,
                                     std::uint32_t heartbeat_can_id,
                                     sim::Duration expected_period) {
  if (by_can_id_.contains(heartbeat_can_id)) {
    throw std::logic_error("NodeSupervisor: CAN id already registered");
  }
  const auto id =
      NodeId(static_cast<NodeId::underlying_type>(nodes_.size()));
  Node n;
  n.name = std::move(name);
  n.can_id = heartbeat_can_id;
  nodes_.push_back(std::move(n));
  by_can_id_.emplace(heartbeat_can_id, id);

  // Virtual runnable in the heartbeat unit: one aliveness window covers the
  // node's expected period (rounded up to supervision cycles) plus slack.
  const std::int64_t cycles = std::max<std::int64_t>(
      1, (expected_period.as_micros() + config_.check_period.as_micros() - 1) /
             config_.check_period.as_micros());
  wdg::RunnableMonitor monitor;
  monitor.runnable = RunnableId(id.value());
  monitor.task = TaskId(id.value());
  monitor.application = ApplicationId(0);
  monitor.name = nodes_.back().name;
  monitor.monitor_aliveness = true;
  monitor.aliveness_cycles = static_cast<std::uint32_t>(cycles + 1);
  monitor.min_heartbeats = 1;
  monitor.monitor_arrival_rate = false;
  monitor.program_flow = false;
  hbm_.add_runnable(monitor);
  return id;
}

void NodeSupervisor::start() {
  if (running_) throw std::logic_error("NodeSupervisor: already running");
  running_ = true;
  engine_.schedule_in(config_.check_period, [this] { cycle(); },
                      sim::EventPriority::kMonitor);
}

void NodeSupervisor::on_frame(const bus::Frame& frame, sim::SimTime now) {
  auto it = by_can_id_.find(frame.id);
  if (it == by_can_id_.end()) return;  // not a heartbeat frame
  Node& n = node(it->second);
  ++n.heartbeats;
  hbm_.indicate(RunnableId(it->second.value()));
  n.consecutive_misses = 0;
  if (n.state == NodeState::kMissing) {
    n.state = NodeState::kAlive;
    ++n.recoveries;
    EASIS_LOG(util::LogLevel::kInfo, kLog)
        << "node " << n.name << " recovered";
    if (on_state_) on_state_(it->second, NodeState::kAlive, now);
  }
}

void NodeSupervisor::cycle() {
  if (!running_) return;
  hbm_.tick(engine_.now(),
            [this](RunnableId runnable, wdg::ErrorType type,
                   sim::SimTime now) {
              if (type != wdg::ErrorType::kAliveness) return;
              const NodeId id(runnable.value());
              Node& n = node(id);
              ++n.consecutive_misses;
              if (n.state == NodeState::kAlive &&
                  n.consecutive_misses >= config_.missing_threshold) {
                n.state = NodeState::kMissing;
                ++n.missing_events;
                EASIS_LOG(util::LogLevel::kWarn, kLog)
                    << "node " << n.name << " missing";
                if (on_state_) on_state_(id, NodeState::kMissing, now);
              }
            });
  engine_.schedule_in(config_.check_period, [this] { cycle(); },
                      sim::EventPriority::kMonitor);
}

NodeSupervisor::Node& NodeSupervisor::node(NodeId id) {
  assert(id.valid() && id.value() < nodes_.size());
  return nodes_[id.value()];
}

const NodeSupervisor::Node& NodeSupervisor::node(NodeId id) const {
  assert(id.valid() && id.value() < nodes_.size());
  return nodes_[id.value()];
}

NodeSupervisor::NodeState NodeSupervisor::node_state(NodeId id) const {
  return node(id).state;
}

const std::string& NodeSupervisor::node_name(NodeId id) const {
  return node(id).name;
}

std::uint32_t NodeSupervisor::missing_events(NodeId id) const {
  return node(id).missing_events;
}

std::uint32_t NodeSupervisor::recovery_events(NodeId id) const {
  return node(id).recoveries;
}

std::uint64_t NodeSupervisor::heartbeats_seen(NodeId id) const {
  return node(id).heartbeats;
}

}  // namespace easis::validator
