// Binding of a compiled dependability policy onto the central node.
//
// The policy engine produces flat structs (policy::PolicySet); the node
// assembly consumes plain config members (CentralNodeConfig). This
// translation unit is the one place the two meet: apply_policy() copies
// every detection/escalation tunable into the node config and records the
// policy for the runtime bindings the constructor applies (per-role FMF
// treatment, HBM scale/tolerances, deadline window scale, check rules).
//
// Applying the built-in baseline policy is a no-op by construction: every
// copied value equals the config default, so a node with the baseline
// policy behaves byte-identically to a node with no policy at all.
#pragma once

#include <memory>

#include "policy/policy.hpp"
#include "validator/central_node.hpp"

namespace easis::validator {

/// Copies the policy's config-level tunables into `config` and attaches
/// the policy for the constructor-time runtime bindings.
void apply_policy(CentralNodeConfig& config,
                  std::shared_ptr<const policy::PolicySet> policy);

}  // namespace easis::validator
