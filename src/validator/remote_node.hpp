// Remote validator node (paper §4.1: fault-tolerant sensor/actuator
// nodes, driving dynamics, light control node...).
//
// A minimal ECU: its own kernel with one periodic task that broadcasts a
// node heartbeat frame (rolling sequence counter) on the vehicle CAN.
// halt()/resume() model a node crash and recovery for the distributed
// supervision experiments.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "bus/can.hpp"
#include "diag/server.hpp"
#include "os/kernel.hpp"
#include "sim/engine.hpp"

namespace easis::validator {

struct RemoteNodeConfig {
  std::string name = "remote";
  /// CAN identifier of this node's heartbeat frame (unique per node).
  std::uint32_t heartbeat_can_id = 0x700;
  sim::Duration heartbeat_period = sim::Duration::millis(50);
  /// Modelled cost of the heartbeat task's job.
  sim::Duration task_cost = sim::Duration::micros(50);
  /// Hosts a UDS-lite DiagServer on the node's CAN. The server goes
  /// offline while the node is halted; a commanded ECUReset reboots the
  /// node in place. Channel ids come from `diag`.
  bool with_diag = false;
  diag::DiagServerConfig diag;
};

class RemoteNode {
 public:
  RemoteNode(sim::Engine& engine, bus::CanBus& can, RemoteNodeConfig config);
  RemoteNode(const RemoteNode&) = delete;
  RemoteNode& operator=(const RemoteNode&) = delete;

  /// Boots the node and starts heartbeating.
  void start();
  /// Node crash: the kernel stops scheduling (heartbeats cease).
  void halt();
  /// Recovery after halt(): reboots and resumes heartbeating.
  void resume();
  [[nodiscard]] bool halted() const { return halted_; }

  /// Commanded reboot (diagnostic ECUReset): tear down and boot again.
  void reboot();

  [[nodiscard]] const std::string& name() const { return config_.name; }
  [[nodiscard]] const RemoteNodeConfig& config() const { return config_; }
  [[nodiscard]] std::uint32_t heartbeats_sent() const { return sequence_; }
  [[nodiscard]] os::Kernel& kernel() { return kernel_; }
  /// Non-null when config().with_diag is set.
  [[nodiscard]] diag::DiagServer* diag_server() { return diag_.get(); }
  [[nodiscard]] std::uint32_t reboots_performed() const { return reboots_; }

 private:
  sim::Engine& engine_;
  bus::CanBus& can_;
  RemoteNodeConfig config_;
  os::Kernel kernel_;
  bus::CanBus::EndpointId endpoint_ = 0;
  TaskId task_;
  AlarmId alarm_;
  CounterId counter_;
  std::uint64_t period_ticks_ = 1;
  std::uint32_t sequence_ = 0;
  std::uint32_t reboots_ = 0;
  bool halted_ = false;
  std::unique_ptr<diag::DiagServer> diag_;

  void send_heartbeat();
};

}  // namespace easis::validator
