#include "validator/remote_node.hpp"

#include <stdexcept>

namespace easis::validator {

RemoteNode::RemoteNode(sim::Engine& engine, bus::CanBus& can,
                       RemoteNodeConfig config)
    : engine_(engine), can_(can), config_(std::move(config)), kernel_(engine) {
  endpoint_ = can_.attach(config_.name, nullptr);

  os::CounterConfig counter_config;
  counter_config.name = config_.name + "_timer";
  counter_config.tick = sim::Duration::millis(1);
  counter_ = kernel_.create_counter(counter_config);

  os::TaskConfig task_config;
  task_config.name = config_.name + "_heartbeat";
  task_config.priority = 1;
  task_ = kernel_.create_task(task_config);
  kernel_.set_job_factory(task_, [this] {
    os::Segment segment;
    segment.cost = config_.task_cost;
    segment.on_complete = [this] { send_heartbeat(); };
    return os::Job{segment};
  });
  alarm_ = kernel_.create_alarm(counter_, os::AlarmActionActivateTask{task_},
                                config_.name + "_alarm");

  const auto period = config_.heartbeat_period.as_micros();
  if (period <= 0 || period % 1000 != 0) {
    throw std::invalid_argument(
        "RemoteNode: heartbeat period must be a positive multiple of 1ms");
  }
  period_ticks_ = static_cast<std::uint64_t>(period / 1000);

  if (config_.with_diag) {
    diag::DiagServerConfig diag_config = config_.diag;
    if (diag_config.name == "diag") diag_config.name = config_.name + "_diag";
    diag::DiagBackend backend;
    backend.ecu_reset = [this] { reboot(); };
    backend.offline = [this] { return halted_; };
    backend.heartbeats_sent = [this] {
      return static_cast<std::uint64_t>(sequence_);
    };
    diag_ = std::make_unique<diag::DiagServer>(engine_, can_,
                                               std::move(backend),
                                               std::move(diag_config));
    // Remote nodes carry no watchdog; the health probe is the node itself.
    diag_->add_data_identifier(diag::kDidEcuHealth, "ecu_health",
                               [this] { return halted_ ? 1.0 : 0.0; });
  }
}

void RemoteNode::start() {
  kernel_.start();
  kernel_.set_rel_alarm(alarm_, period_ticks_, period_ticks_);
}

void RemoteNode::halt() {
  halted_ = true;
  kernel_.software_reset();  // everything stops; nothing restarts it
}

void RemoteNode::resume() {
  if (!halted_) return;
  halted_ = false;
  start();
}

void RemoteNode::reboot() {
  ++reboots_;
  kernel_.software_reset();
  halted_ = false;
  start();
}

void RemoteNode::send_heartbeat() {
  if (halted_) return;
  ++sequence_;
  bus::Frame frame;
  frame.id = config_.heartbeat_can_id;
  frame.payload = {static_cast<std::uint8_t>(sequence_ & 0xFF),
                   static_cast<std::uint8_t>((sequence_ >> 8) & 0xFF)};
  can_.transmit(endpoint_, std::move(frame));
}

}  // namespace easis::validator
