// Vehicle network of the EASIS architecture validator (paper §4.1):
// a gateway node connecting the TCP/IP (telematics), CAN and FlexRay
// domains, carrying the externally commanded maximum speed to the central
// node's SafeSpeed application and broadcasting vehicle state back out.
#pragma once

#include <cstdint>
#include <memory>

#include "bus/can.hpp"
#include "bus/flexray.hpp"
#include "bus/lin.hpp"
#include "bus/gateway.hpp"
#include "rte/signal_bus.hpp"
#include "sim/engine.hpp"

namespace easis::validator {

struct NetworkConfig {
  std::uint32_t can_bitrate_bps = 500'000;
  bus::FlexRayConfig flexray;
  sim::Duration gateway_latency = sim::Duration::micros(200);
  /// CAN id of the max-speed command frame on the vehicle CAN.
  std::uint32_t can_max_speed_id = 0x120;
  /// Telematics-side message id for the max-speed command.
  std::uint32_t telematics_max_speed_id = 0x10;
  /// FlexRay slot carrying the vehicle speed broadcast.
  std::uint32_t speed_slot = 2;
  /// How often the central node broadcasts the vehicle speed.
  sim::Duration speed_broadcast_period = sim::Duration::millis(10);
  /// LIN body bus: polling slot of the light/ambient sensor frame.
  sim::Duration lin_slot = sim::Duration::millis(50);
  std::uint32_t lin_ambient_frame_id = 0x21;
};

/// Assembles the buses + gateway and bridges them onto a SignalBus:
///  - command_max_speed() sends a telematics frame that arrives (via the
///    gateway and the CAN domain) as signal "safespeed.max_speed_kmh";
///  - the central node's "vehicle.speed_kmh" signal is broadcast on the
///    FlexRay speed slot, observable via last_broadcast_speed();
///  - a LIN body bus polls the ambient-light sensor slave, feeding the
///    "env.ambient_light" signal of the light-control application.
class VehicleNetwork {
 public:
  VehicleNetwork(sim::Engine& engine, rte::SignalBus& central_signals,
                 NetworkConfig config = {});
  VehicleNetwork(const VehicleNetwork&) = delete;
  VehicleNetwork& operator=(const VehicleNetwork&) = delete;

  /// Starts the FlexRay cycle and the periodic speed broadcast.
  void start();

  /// Telematics node: commands a new maximum speed (km/h).
  void command_max_speed(double kmh);

  /// Body domain: sets the ambient light level [0,1] the LIN sensor slave
  /// reports on its next poll.
  void set_ambient_light(double level) { ambient_level_ = level; }

  [[nodiscard]] bus::CanBus& can() { return *can_; }
  [[nodiscard]] bus::FlexRayBus& flexray() { return *flexray_; }
  [[nodiscard]] bus::LinBus& lin() { return *lin_; }
  [[nodiscard]] bus::Gateway& gateway() { return *gateway_; }
  [[nodiscard]] double last_broadcast_speed() const { return last_speed_; }
  [[nodiscard]] std::uint64_t commands_received() const {
    return commands_received_;
  }

 private:
  sim::Engine& engine_;
  rte::SignalBus& signals_;
  NetworkConfig config_;
  std::unique_ptr<bus::CanBus> can_;
  std::unique_ptr<bus::FlexRayBus> flexray_;
  std::unique_ptr<bus::LinBus> lin_;
  std::unique_ptr<bus::Gateway> gateway_;

  bus::CanBus::EndpointId central_can_endpoint_ = 0;
  bus::CanBus::EndpointId gateway_can_endpoint_ = 0;
  bus::FlexRayBus::EndpointId central_fr_endpoint_ = 0;
  bus::FlexRayBus::EndpointId dynamics_fr_endpoint_ = 0;
  bus::FrameHandler telematics_ingress_;
  double last_speed_ = 0.0;
  double ambient_level_ = 1.0;
  std::uint64_t commands_received_ = 0;
  bool running_ = false;

  void schedule_speed_broadcast();
};

}  // namespace easis::validator
