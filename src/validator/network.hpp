// Vehicle network of the EASIS architecture validator (paper §4.1):
// a gateway node connecting the TCP/IP (telematics), CAN and FlexRay
// domains, carrying the externally commanded maximum speed to the central
// node's SafeSpeed application and broadcasting vehicle state back out.
//
// With NetworkConfig::e2e_protection the two safety paths (max-speed
// command, speed broadcast) are E2E-protected: senders stamp a CRC +
// alive-counter header, receivers run the E2E check and silently discard
// rejected frames (treated as no new data — the signal then ages into its
// reception deadline instead of carrying garbage). Check verdicts are
// published to a listener so a communication monitoring unit can feed
// them into the watchdog/FMF chain.
//
// Each bus carries a FaultLink (inert by default) for network fault
// injection, and a babbling-idiot node can be attached to the vehicle CAN.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "bus/can.hpp"
#include "bus/e2e.hpp"
#include "bus/fault_link.hpp"
#include "bus/flexray.hpp"
#include "bus/lin.hpp"
#include "bus/gateway.hpp"
#include "rte/signal_bus.hpp"
#include "sim/engine.hpp"

namespace easis::validator {

struct NetworkConfig {
  std::uint32_t can_bitrate_bps = 500'000;
  bus::FlexRayConfig flexray;
  sim::Duration gateway_latency = sim::Duration::micros(200);
  /// CAN id of the max-speed command frame on the vehicle CAN.
  std::uint32_t can_max_speed_id = 0x120;
  /// Telematics-side message id for the max-speed command.
  std::uint32_t telematics_max_speed_id = 0x10;
  /// FlexRay slot carrying the vehicle speed broadcast.
  std::uint32_t speed_slot = 2;
  /// How often the central node broadcasts the vehicle speed.
  sim::Duration speed_broadcast_period = sim::Duration::millis(10);
  /// LIN body bus: polling slot of the light/ambient sensor frame.
  sim::Duration lin_slot = sim::Duration::millis(50);
  std::uint32_t lin_ambient_frame_id = 0x21;
  /// E2E-protect the max-speed command and the speed broadcast.
  bool e2e_protection = false;
  /// E2E channel identities (never transmitted; part of the CRC).
  std::uint16_t max_speed_data_id = 0x5301;
  std::uint16_t speed_broadcast_data_id = 0x5302;
  /// Seed for the per-bus fault links (offset per bus internally).
  std::uint64_t fault_seed = 0x5AFEu;
};

/// Assembles the buses + gateway and bridges them onto a SignalBus:
///  - command_max_speed() sends a telematics frame that arrives (via the
///    gateway and the CAN domain) as signal "safespeed.max_speed_kmh";
///  - the central node's "vehicle.speed_kmh" signal is broadcast on the
///    FlexRay speed slot, observable via last_broadcast_speed();
///  - a LIN body bus polls the ambient-light sensor slave, feeding the
///    "env.ambient_light" signal of the light-control application.
class VehicleNetwork {
 public:
  /// Observes every E2E verdict on a protected reception path.
  using CheckListener = std::function<void(bus::E2EStatus, sim::SimTime)>;

  VehicleNetwork(sim::Engine& engine, rte::SignalBus& central_signals,
                 NetworkConfig config = {});
  VehicleNetwork(const VehicleNetwork&) = delete;
  VehicleNetwork& operator=(const VehicleNetwork&) = delete;

  /// Starts the FlexRay cycle and the periodic speed broadcast.
  void start();

  /// Telematics node: commands a new maximum speed (km/h).
  void command_max_speed(double kmh);

  /// Body domain: sets the ambient light level [0,1] the LIN sensor slave
  /// reports on its next poll.
  void set_ambient_light(double level) { ambient_level_ = level; }

  /// E2E verdicts of the central node's max-speed reception.
  void set_max_speed_check_listener(CheckListener listener) {
    max_speed_check_listener_ = std::move(listener);
  }
  /// E2E verdicts of the dynamics node's speed-broadcast reception.
  void set_speed_check_listener(CheckListener listener) {
    speed_check_listener_ = std::move(listener);
  }

  /// Lazily attaches a rogue node to the vehicle CAN; its flooder starves
  /// all lower-priority traffic while started.
  bus::BabblingIdiot& babbler();

  [[nodiscard]] bus::CanBus& can() { return *can_; }
  [[nodiscard]] bus::FlexRayBus& flexray() { return *flexray_; }
  [[nodiscard]] bus::LinBus& lin() { return *lin_; }
  [[nodiscard]] bus::Gateway& gateway() { return *gateway_; }
  [[nodiscard]] bus::FaultLink& can_fault_link() { return can_link_; }
  [[nodiscard]] bus::FaultLink& flexray_fault_link() { return flexray_link_; }
  [[nodiscard]] bus::FaultLink& lin_fault_link() { return lin_link_; }
  [[nodiscard]] const bus::E2EReceiver* max_speed_receiver() const {
    return max_speed_rx_ ? &*max_speed_rx_ : nullptr;
  }
  [[nodiscard]] const bus::E2EReceiver* speed_receiver() const {
    return speed_rx_ ? &*speed_rx_ : nullptr;
  }
  [[nodiscard]] double last_broadcast_speed() const { return last_speed_; }
  [[nodiscard]] std::uint64_t commands_received() const {
    return commands_received_;
  }
  /// Frames whose application payload failed to decode (truncated).
  [[nodiscard]] std::uint64_t decode_failures() const {
    return decode_failures_;
  }
  /// Protected frames discarded after a failed E2E check.
  [[nodiscard]] std::uint64_t e2e_rejections() const {
    return e2e_rejections_;
  }

 private:
  sim::Engine& engine_;
  rte::SignalBus& signals_;
  NetworkConfig config_;
  std::unique_ptr<bus::CanBus> can_;
  std::unique_ptr<bus::FlexRayBus> flexray_;
  std::unique_ptr<bus::LinBus> lin_;
  std::unique_ptr<bus::Gateway> gateway_;
  bus::FaultLink can_link_;
  bus::FaultLink flexray_link_;
  bus::FaultLink lin_link_;
  std::unique_ptr<bus::BabblingIdiot> babbler_;

  std::optional<bus::E2ESender> max_speed_tx_;
  std::optional<bus::E2EReceiver> max_speed_rx_;
  std::optional<bus::E2ESender> speed_tx_;
  std::optional<bus::E2EReceiver> speed_rx_;
  CheckListener max_speed_check_listener_;
  CheckListener speed_check_listener_;

  bus::CanBus::EndpointId central_can_endpoint_ = 0;
  bus::CanBus::EndpointId gateway_can_endpoint_ = 0;
  bus::FlexRayBus::EndpointId central_fr_endpoint_ = 0;
  bus::FlexRayBus::EndpointId dynamics_fr_endpoint_ = 0;
  bus::FrameHandler telematics_ingress_;
  double last_speed_ = 0.0;
  double ambient_level_ = 1.0;
  std::uint64_t commands_received_ = 0;
  std::uint64_t decode_failures_ = 0;
  std::uint64_t e2e_rejections_ = 0;
  bool running_ = false;

  void schedule_speed_broadcast();
};

}  // namespace easis::validator
