// Central node of the EASIS architecture validator (paper §4.2).
//
// The substitute for the dSPACE AutoBox: hosts the SafeSpeed safety
// application (and optionally SafeLane and LightControl), the Software
// Watchdog service, the Fault Management Framework, and the environment
// simulation (vehicle dynamics + lane geometry) closing the loop.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/crash_detection.hpp"
#include "apps/lightctl.hpp"
#include "diag/server.hpp"
#include "apps/safelane.hpp"
#include "apps/safespeed.hpp"
#include "fmf/fmf.hpp"
#include "fmf/nvm.hpp"
#include "os/schedule_table.hpp"
#include "policy/check_engine.hpp"
#include "policy/policy.hpp"
#include "rte/ecu.hpp"
#include "sim/engine.hpp"
#include "sim/lane.hpp"
#include "sim/thermal.hpp"
#include "sim/vehicle.hpp"
#include "wdg/env_monitor.hpp"
#include "wdg/process_supervisor.hpp"
#include "wdg/resource_monitor.hpp"
#include "wdg/self_supervision.hpp"
#include "wdg/service.hpp"
#include "wdg/watchdog.hpp"

namespace easis::validator {

struct CentralNodeConfig {
  wdg::WatchdogConfig watchdog;
  wdg::ServiceConfig watchdog_service;
  apps::SafeSpeedConfig safespeed;
  apps::SafeLaneConfig safelane;
  apps::LightControlConfig light;
  bool with_safelane = true;
  bool with_light_control = true;
  bool with_crash_detection = true;
  apps::CrashDetectionConfig crash;
  os::Priority crash_priority = 70;
  bool with_fmf = true;
  fmf::FmfConfig fmf;
  /// Reset-safe fault memory: DTC store, reset counters and the reset
  /// cause are committed to the simulated NVM before every reset and
  /// re-seeded at the next boot (requires with_fmf).
  bool with_nvm = true;
  std::size_t nvm_capacity = 8192;
  /// Shared NVM block (e.g. across a simulated power cycle: a second
  /// CentralNode instance constructed over the same store). When set, the
  /// node does not own an NvmStore of its own.
  fmf::NvmStore* external_nvm = nullptr;
  /// Bounds the DTC store (0 = unbounded).
  std::size_t dtc_capacity = 0;
  /// Additional SignalBus signals captured into every DTC freeze frame
  /// (e.g. the `res.<name>.level` signals the Resource Supervision Unit
  /// publishes, so resource DTCs carry the offending task's snapshot).
  std::vector<std::string> extra_frame_signals;
  /// Watchdog self-supervision: the SW watchdog services a windowed HW
  /// watchdog via challenge–response; expiry funnels into the FMF reset
  /// path with a ResetSource::kHardwareWatchdog cause.
  bool with_self_supervision = true;
  /// hw_timeout is raised to at least 5x the watchdog check period so
  /// sweeping the check period never causes spurious expirations.
  wdg::SelfSupervisionConfig self_supervision;
  /// Models the physical reboot blackout of an ECU software reset: the
  /// kernel is torn down immediately and boots again this much later
  /// (environment keeps its state; the control loop is dark). Zero keeps
  /// the synchronous reset of the seed.
  sim::Duration reboot_delay = sim::Duration::zero();
  /// Environment integration step (vehicle + lane models).
  sim::Duration environment_step = sim::Duration::millis(5);
  /// Thermal environment: junction-temperature model parameters. The model
  /// is stepped with the environment loop; its load input comes from the
  /// Resource Supervision Unit when attached (idle otherwise).
  sim::ThermalParams thermal;
  /// Limits of the node's ECU thermal channel (environment supervision).
  wdg::ThermalLimits thermal_limits;
  /// Limits of the node's fault-memory journal channel.
  wdg::FilesystemLimits filesystem_limits;
  /// HBM stretch factor applied to the aliveness/arrival hypotheses of the
  /// still-monitored runnables while the thermal ladder derates: a node
  /// slowed down by thermal stress must not look like dead runnables.
  std::uint32_t derate_hbm_stretch = 2;
  /// Compiled dependability policy. When set, the constructor applies the
  /// runtime bindings the flat config members cannot express: per-role FMF
  /// treatment (SafeSpeed -> safety, SafeLane -> assist, LightControl and
  /// CrashDetection -> qm), the HBM period scale/tolerances, and the
  /// deadline window scale; attach_check_supervision() registers the
  /// policy's check rules. Use validator::apply_policy() to also copy the
  /// config-level tunables (watchdog, fmf, thermal, filesystem) — setting
  /// only this member binds the runtime knobs over whatever config the
  /// caller assembled. The built-in baseline policy is a behavioural no-op.
  std::shared_ptr<const policy::PolicySet> policy;
  os::Priority safespeed_priority = 50;
  os::Priority safelane_priority = 40;
  os::Priority light_priority = 10;
  /// OSEKTime-style dispatching: application tasks are activated from a
  /// time-triggered schedule table instead of individual alarms (the
  /// watchdog service keeps its own alarm). The table round is the LCM of
  /// the application periods.
  bool time_triggered = false;
};

class CentralNode {
 public:
  CentralNode(sim::Engine& engine, CentralNodeConfig config = {});
  CentralNode(const CentralNode&) = delete;
  CentralNode& operator=(const CentralNode&) = delete;

  /// Boots the node: finalizes the RTE (once), starts the kernel, arms the
  /// application and watchdog alarms, and starts the environment loop.
  void start();

  /// ECU software reset treatment (also wired into the FMF).
  void software_reset();
  [[nodiscard]] std::uint32_t resets_performed() const { return resets_; }
  /// Resets triggered by the hardware watchdog (self-supervision layer).
  [[nodiscard]] std::uint32_t hw_watchdog_resets() const {
    return hw_resets_;
  }
  /// True while the node sits in the latched limp-home/safe state.
  [[nodiscard]] bool in_safe_state() const { return safe_state_; }
  /// True during the reboot blackout of a delayed software reset.
  [[nodiscard]] bool rebooting() const { return rebooting_; }
  /// Drives the node into its limp-home/safe state: SafeSpeed switches to
  /// the limp-home limit, the comfort/assist applications are disabled and
  /// their monitoring deactivated. Wired into the FMF reboot-storm latch.
  void enter_safe_state(const fmf::ResetCause& cause);

  /// Attaches a UDS-lite diagnostic server on `can`, backed by this node's
  /// DTC store, FMF and watchdog. A commanded ECUReset funnels through
  /// software_reset(); during the reboot blackout the server is offline
  /// (requests are dropped, exactly like the rest of the node). The bus
  /// must outlive the node. Returns the server for DID registration.
  diag::DiagServer& attach_diag(bus::CanBus& can,
                                diag::DiagServerConfig config = {});

  /// Attaches the Resource Supervision Unit over this node's kernel and
  /// signal bus. Call before start(), then register resources on the
  /// returned unit; its cycle runs every watchdog check period and is
  /// suspended during reboot blackouts exactly like the environment loop.
  wdg::ResourceSupervisionUnit& attach_resource_supervision();

  /// Attaches the Environment Supervision Unit with the node's default
  /// wiring: one thermal channel over the junction-temperature model and —
  /// when NVM fault memory is enabled — one filesystem channel over the
  /// NvmStore. The graceful-derating ladder actuates through the node:
  /// derate parks the QM applications and stretches the HBM hypotheses;
  /// shutdown funnels into the FMF's persistent safe state with a
  /// ResetSource::kThermalShutdown cause. Call before start(); its cycle
  /// runs every watchdog check period like the RSU's.
  wdg::EnvironmentSupervisionUnit& attach_environment_supervision();

  /// Attaches the supervised-process client API. Register sections on the
  /// returned unit (before attach_diag() so the per-section transgression
  /// identifiers are served); records persist through the FMF's fault
  /// memory and survive ECU software resets.
  wdg::ProcessSupervisionUnit& attach_process_supervision();

  /// Attaches the Check Supervision Unit and registers every `check` rule
  /// of the attached policy as a supervised virtual runnable (implies
  /// attach_process_supervision() — a hung check evaluation transgresses
  /// its deadline window). Returns null when no policy is attached or the
  /// policy defines no checks. Call before start(); evaluation cycles run
  /// every watchdog check period like the ESU/PSU.
  policy::CheckSupervisionUnit* attach_check_supervision();

  // --- accessors --------------------------------------------------------------
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] rte::Ecu& ecu() { return ecu_; }
  [[nodiscard]] os::Kernel& kernel() { return ecu_.kernel(); }
  [[nodiscard]] rte::Rte& rte() { return ecu_.rte(); }
  [[nodiscard]] rte::SignalBus& signals() { return ecu_.signals(); }
  [[nodiscard]] wdg::SoftwareWatchdog& watchdog() { return watchdog_; }
  [[nodiscard]] wdg::WatchdogService& watchdog_service() { return *service_; }
  [[nodiscard]] fmf::FaultManagementFramework* fault_management() {
    return fmf_ ? fmf_.get() : nullptr;
  }
  /// Non-null when the FMF is enabled.
  [[nodiscard]] fmf::DtcStore* dtc_store() { return dtc_.get(); }
  /// Non-null when NVM-backed fault memory is enabled.
  [[nodiscard]] fmf::NvmStore* nvm() { return nvm_; }
  /// Non-null when self-supervision is enabled.
  [[nodiscard]] wdg::WatchdogSelfSupervision* self_supervision() {
    return self_supervision_.get();
  }
  /// Non-null after attach_diag().
  [[nodiscard]] diag::DiagServer* diag_server() { return diag_.get(); }
  /// Non-null after attach_resource_supervision().
  [[nodiscard]] wdg::ResourceSupervisionUnit* resource_supervision() {
    return rsu_.get();
  }
  /// Non-null after attach_environment_supervision().
  [[nodiscard]] wdg::EnvironmentSupervisionUnit* environment_supervision() {
    return esu_.get();
  }
  /// Non-null after attach_process_supervision().
  [[nodiscard]] wdg::ProcessSupervisionUnit* process_supervision() {
    return psu_.get();
  }
  /// Non-null after attach_check_supervision() with a check-bearing policy.
  [[nodiscard]] policy::CheckSupervisionUnit* check_supervision() {
    return csu_.get();
  }
  /// The attached dependability policy (null when none).
  [[nodiscard]] const policy::PolicySet* active_policy() const {
    return config_.policy.get();
  }
  [[nodiscard]] sim::ThermalModel& thermal_model() { return thermal_model_; }
  [[nodiscard]] apps::SafeSpeed& safespeed() { return *safespeed_; }
  [[nodiscard]] apps::SafeLane* safelane() { return safelane_.get(); }
  [[nodiscard]] apps::LightControl* light_control() { return light_.get(); }
  [[nodiscard]] apps::CrashDetection* crash_detection() {
    return crash_.get();
  }
  [[nodiscard]] sim::VehicleModel& vehicle() { return vehicle_; }
  [[nodiscard]] sim::LaneModel& lane() { return lane_; }

  [[nodiscard]] TaskId safespeed_task() const { return safespeed_task_; }
  [[nodiscard]] AlarmId safespeed_alarm() const { return safespeed_alarm_; }
  [[nodiscard]] std::uint64_t safespeed_period_ticks() const {
    return safespeed_ticks_;
  }
  [[nodiscard]] TaskId safelane_task() const { return safelane_task_; }
  [[nodiscard]] TaskId light_task() const { return light_task_; }
  [[nodiscard]] AlarmId safelane_alarm() const { return safelane_alarm_; }
  [[nodiscard]] std::uint64_t safelane_period_ticks() const {
    return safelane_ticks_;
  }
  [[nodiscard]] CounterId system_counter() const { return counter_; }
  [[nodiscard]] const CentralNodeConfig& config() const { return config_; }
  /// Non-null only in time-triggered mode.
  [[nodiscard]] os::ScheduleTable* schedule_table() {
    return schedule_table_.get();
  }

 private:
  sim::Engine& engine_;
  CentralNodeConfig config_;
  rte::Ecu ecu_;
  wdg::SoftwareWatchdog watchdog_;
  sim::VehicleModel vehicle_;
  sim::LaneModel lane_;

  CounterId counter_;
  TaskId safespeed_task_;
  AlarmId safespeed_alarm_;
  std::uint64_t safespeed_ticks_ = 0;
  TaskId safelane_task_;
  AlarmId safelane_alarm_;
  std::uint64_t safelane_ticks_ = 0;
  TaskId light_task_;
  AlarmId light_alarm_;
  std::uint64_t light_ticks_ = 0;

  std::unique_ptr<apps::SafeSpeed> safespeed_;
  std::unique_ptr<apps::SafeLane> safelane_;
  std::unique_ptr<apps::LightControl> light_;
  std::unique_ptr<apps::CrashDetection> crash_;
  std::unique_ptr<wdg::WatchdogService> service_;
  std::unique_ptr<fmf::FaultManagementFramework> fmf_;
  std::unique_ptr<fmf::DtcStore> dtc_;
  std::unique_ptr<fmf::NvmStore> owned_nvm_;
  fmf::NvmStore* nvm_ = nullptr;
  std::unique_ptr<wdg::WatchdogSelfSupervision> self_supervision_;
  std::unique_ptr<os::ScheduleTable> schedule_table_;
  std::unique_ptr<diag::DiagServer> diag_;
  std::unique_ptr<wdg::ResourceSupervisionUnit> rsu_;
  std::unique_ptr<wdg::EnvironmentSupervisionUnit> esu_;
  std::unique_ptr<wdg::ProcessSupervisionUnit> psu_;
  std::unique_ptr<policy::CheckSupervisionUnit> csu_;
  sim::ThermalModel thermal_model_;
  /// Pre-derate HBM hypotheses, restored when the ladder steps back down.
  std::vector<std::pair<RunnableId, wdg::RunnableMonitor>> stretched_;
  bool derated_ = false;

  bool started_once_ = false;
  std::uint32_t resets_ = 0;
  std::uint32_t hw_resets_ = 0;
  bool safe_state_ = false;
  bool rebooting_ = false;
  std::uint64_t env_generation_ = 0;
  std::uint64_t boot_generation_ = 0;

  void arm_alarms();
  void apply_policy_bindings();
  [[nodiscard]] sim::Duration nominal_period_of(RunnableId id);
  void boot_after_reset();
  void on_hw_watchdog_expired(sim::SimTime now);
  void schedule_environment(std::uint64_t generation);
  void schedule_resource_cycles(std::uint64_t generation);
  void schedule_environment_cycles(std::uint64_t generation);
  void enter_thermal_derate(sim::SimTime now);
  void exit_thermal_derate(sim::SimTime now);
};

}  // namespace easis::validator
