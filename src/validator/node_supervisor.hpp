// Distributed node supervision: the Software Watchdog concept applied
// across the vehicle network (ISS domain-crossing, paper §1/§3).
//
// Each remote node's CAN heartbeat frame is treated as the aliveness
// indication of a *virtual runnable*, monitored by a dedicated Heartbeat
// Monitoring Unit on the central node. A node missing its heartbeats is
// declared missing; a heartbeat from a missing node recovers it.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bus/can.hpp"
#include "sim/engine.hpp"
#include "util/ids.hpp"
#include "wdg/heartbeat.hpp"

namespace easis::validator {

struct NodeSupervisorConfig {
  /// Supervision cycle (the unit's tick).
  sim::Duration check_period = sim::Duration::millis(50);
  /// Missed windows before a node is declared missing.
  std::uint32_t missing_threshold = 2;
};

class NodeSupervisor {
 public:
  enum class NodeState { kAlive, kMissing };

  using StateCallback =
      std::function<void(NodeId, NodeState, sim::SimTime)>;

  NodeSupervisor(sim::Engine& engine, bus::CanBus& can,
                 NodeSupervisorConfig config = {});
  NodeSupervisor(const NodeSupervisor&) = delete;
  NodeSupervisor& operator=(const NodeSupervisor&) = delete;

  /// Registers a supervised node by its heartbeat CAN id. The node is
  /// expected to beat at least once per `expected_period`.
  NodeId register_node(std::string name, std::uint32_t heartbeat_can_id,
                       sim::Duration expected_period);

  /// Starts the supervision cycle.
  void start();

  [[nodiscard]] NodeState node_state(NodeId node) const;
  [[nodiscard]] const std::string& node_name(NodeId node) const;
  [[nodiscard]] std::uint32_t missing_events(NodeId node) const;
  [[nodiscard]] std::uint32_t recovery_events(NodeId node) const;
  [[nodiscard]] std::uint64_t heartbeats_seen(NodeId node) const;
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  void set_state_callback(StateCallback cb) { on_state_ = std::move(cb); }

 private:
  struct Node {
    std::string name;
    std::uint32_t can_id = 0;
    NodeState state = NodeState::kAlive;
    std::uint32_t consecutive_misses = 0;
    std::uint32_t missing_events = 0;
    std::uint32_t recoveries = 0;
    std::uint64_t heartbeats = 0;
  };

  sim::Engine& engine_;
  NodeSupervisorConfig config_;
  std::vector<Node> nodes_;
  std::unordered_map<std::uint32_t, NodeId> by_can_id_;
  wdg::HeartbeatMonitoringUnit hbm_;
  StateCallback on_state_;
  bool running_ = false;

  void on_frame(const bus::Frame& frame, sim::SimTime now);
  void cycle();
  [[nodiscard]] Node& node(NodeId id);
  [[nodiscard]] const Node& node(NodeId id) const;
};

}  // namespace easis::validator
