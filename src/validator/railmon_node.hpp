// Duty-cycled sensor node hosting the RailMon workload (power-mode
// subsystem validator).
//
// Assembles the full dependability stack around a node that is *silent by
// contract* for most of its life: the PowerModeManager's declared duty
// cycle (Run -> FlashWrite -> Sleep -> WakeBurst -> Run), the
// ModeSupervisionUnit binding each mode's `[mode.<name>]` policy overlay
// onto the sensing chain's fault hypotheses, the watchdog service, FMF +
// DTC + NVM fault memory (the active power mode is persisted and
// re-seeded across resets), and a UDS-lite server exposing the active
// mode (DID 0x010F) and the hash of the bound overlay (DID 0x0110).
//
// Mode-dependent task scheduling is the node's job: on Sleep entry the
// sensing task's alarm is cancelled (heartbeats stop by contract), on
// WakeBurst it is re-armed at burst rate (the wake storm), everywhere
// else at the nominal sample period. FlashWrite entry commits the
// sample journal and persists the fault memory inside the declared
// flash window.
#pragma once

#include <memory>
#include <string>

#include "apps/railmon.hpp"
#include "diag/server.hpp"
#include "fmf/fmf.hpp"
#include "fmf/nvm.hpp"
#include "mode/power_mode.hpp"
#include "mode/supervision.hpp"
#include "policy/check_engine.hpp"
#include "policy/policy.hpp"
#include "rte/ecu.hpp"
#include "sim/engine.hpp"
#include "wdg/process_supervisor.hpp"
#include "wdg/service.hpp"
#include "wdg/watchdog.hpp"

namespace easis::validator {

struct RailMonNodeConfig {
  wdg::WatchdogConfig watchdog;
  wdg::ServiceConfig watchdog_service;
  apps::RailMonConfig railmon;
  mode::PowerModeManager::Config mode;
  mode::ModeSupervisionUnit::Config mode_supervision;
  bool with_fmf = true;
  fmf::FmfConfig fmf;
  bool with_nvm = true;
  std::size_t nvm_capacity = 8192;
  /// Shared NVM block (power-cycle tests construct a second node over the
  /// same store). When set, the node does not own an NvmStore.
  fmf::NvmStore* external_nvm = nullptr;
  std::size_t dtc_capacity = 8;
  /// Reboot blackout of a software reset (zero = synchronous reboot).
  sim::Duration reboot_delay = sim::Duration::zero();
  /// Compiled dependability policy. Its `[mode.<name>]` overlays drive the
  /// mode-dependent supervision binding; its check rules (if any) are
  /// registered with a CheckSupervisionUnit gated by the overlays'
  /// checks_enabled; its safety-role treatment applies to RailMon.
  std::shared_ptr<const policy::PolicySet> policy;
  os::Priority control_priority = 50;
  os::Priority sensor_priority = 40;
};

class RailMonNode {
 public:
  RailMonNode(sim::Engine& engine, RailMonNodeConfig config = {});
  RailMonNode(const RailMonNode&) = delete;
  RailMonNode& operator=(const RailMonNode&) = delete;

  /// Boots the node: finalizes the RTE, starts the kernel, re-seeds the
  /// fault memory (and the persisted power mode) from NVM, arms the
  /// mode-dependent alarms and starts the supervision cycles.
  void start();

  /// Software reset: persists the fault memory (including the active
  /// power mode), tears the kernel down and boots again after the
  /// configured reboot delay. The NVM-persisted mode is re-seeded at
  /// boot — a node that reset while asleep wakes up *in* Sleep, with the
  /// silence contract re-armed, not in Run.
  void software_reset();

  /// Attaches the UDS-lite diagnostic server, wiring the power-mode
  /// identifiers (kDidPowerMode, kDidModeOverlayHash) next to the
  /// standard watchdog/FMF/policy set.
  diag::DiagServer& attach_diag(bus::CanBus& can,
                                diag::DiagServerConfig config = {});

  // --- accessors -------------------------------------------------------------
  [[nodiscard]] os::Kernel& kernel() { return ecu_.kernel(); }
  [[nodiscard]] rte::Rte& rte() { return ecu_.rte(); }
  [[nodiscard]] rte::SignalBus& signals() { return ecu_.signals(); }
  [[nodiscard]] wdg::SoftwareWatchdog& watchdog() { return watchdog_; }
  [[nodiscard]] mode::PowerModeManager& mode_manager() { return *manager_; }
  [[nodiscard]] mode::ModeSupervisionUnit& mode_unit() { return *mode_unit_; }
  [[nodiscard]] apps::RailMon& railmon() { return *railmon_; }
  [[nodiscard]] fmf::FaultManagementFramework* fault_management() {
    return fmf_.get();
  }
  [[nodiscard]] fmf::DtcStore* dtc_store() { return dtc_.get(); }
  [[nodiscard]] fmf::NvmStore* nvm() { return nvm_; }
  [[nodiscard]] policy::CheckSupervisionUnit* check_unit() {
    return csu_.get();
  }
  [[nodiscard]] TaskId control_task() const { return control_task_; }
  [[nodiscard]] TaskId sensor_task() const { return sensor_task_; }
  [[nodiscard]] std::uint32_t resets() const { return resets_; }
  [[nodiscard]] bool rebooting() const { return rebooting_; }
  [[nodiscard]] bool safe_state() const { return safe_state_; }
  [[nodiscard]] const RailMonNodeConfig& config() const { return config_; }

 private:
  sim::Engine& engine_;
  RailMonNodeConfig config_;
  rte::Ecu ecu_;
  wdg::SoftwareWatchdog watchdog_;
  CounterId counter_;
  TaskId control_task_;
  TaskId sensor_task_;
  AlarmId control_alarm_;
  AlarmId sensor_alarm_;
  std::uint64_t control_ticks_ = 0;
  std::uint64_t sample_ticks_ = 0;
  std::uint64_t burst_ticks_ = 0;
  std::unique_ptr<mode::PowerModeManager> manager_;
  std::unique_ptr<apps::RailMon> railmon_;
  std::unique_ptr<mode::ModeSupervisionUnit> mode_unit_;
  std::unique_ptr<wdg::WatchdogService> service_;
  std::unique_ptr<wdg::ProcessSupervisionUnit> psu_;
  std::unique_ptr<policy::CheckSupervisionUnit> csu_;
  std::unique_ptr<fmf::FaultManagementFramework> fmf_;
  std::unique_ptr<fmf::DtcStore> dtc_;
  std::unique_ptr<fmf::NvmStore> owned_nvm_;
  fmf::NvmStore* nvm_ = nullptr;
  std::unique_ptr<diag::DiagServer> diag_;
  bool started_once_ = false;
  bool rebooting_ = false;
  bool safe_state_ = false;
  std::uint32_t resets_ = 0;
  /// Consecutive power-mode error reports observed while a transition was
  /// still pending; at kHungModeResetThreshold the node escalates the hung
  /// two-phase commit to an ECU reset (re-seeded from NVM).
  std::uint32_t hung_mode_reports_ = 0;
  static constexpr std::uint32_t kHungModeResetThreshold = 5;
  std::uint64_t boot_generation_ = 0;
  std::uint64_t cycle_generation_ = 0;

  void boot_after_reset();
  void arm_alarms();
  /// Applies the mode's activation contract to the sensing task's alarm:
  /// cancelled in Sleep, burst-rate in WakeBurst, nominal elsewhere.
  void apply_mode_scheduling(mode::PowerMode mode);
  void schedule_supervision_cycles(std::uint64_t generation);
  void enter_safe_state(const fmf::ResetCause& cause);
};

}  // namespace easis::validator
