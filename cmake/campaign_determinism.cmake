# End-to-end campaign determinism check (ctest: campaign_jobs_determinism).
#
# Runs a harness-ported campaign binary twice with the same --seed but
# --jobs 1 vs --jobs 4 and requires the result CSVs to be byte-identical.
# The binary's own exit code reflects its *shape* check, which a shrunk
# --runs sweep may legitimately fail; only a crash (abnormal exit) or a
# CSV mismatch fails this test.
#
# Usage: cmake -DEXE=<binary> -DARGS=<common flags> -DOUT=<prefix>
#              -P campaign_determinism.cmake
if(NOT DEFINED EXE OR NOT DEFINED OUT)
  message(FATAL_ERROR "EXE and OUT must be defined")
endif()
separate_arguments(common_args UNIX_COMMAND "${ARGS}")

foreach(jobs 1 4)
  execute_process(
    COMMAND ${EXE} ${common_args} --jobs ${jobs} --csv ${OUT}_j${jobs}.csv
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
  if(NOT rc MATCHES "^[01]$")
    message(FATAL_ERROR "${EXE} --jobs ${jobs} exited abnormally: ${rc}")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT}_j1.csv ${OUT}_j4.csv
  RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR
      "campaign CSVs differ between --jobs 1 and --jobs 4 "
      "(${OUT}_j1.csv vs ${OUT}_j4.csv): parallel execution broke "
      "determinism")
endif()
message(STATUS "campaign CSVs byte-identical across --jobs 1 and --jobs 4")
