# End-to-end campaign determinism check (ctest: campaign_jobs_determinism).
#
# Runs a harness-ported campaign binary once per worker count in JOBS
# (default "1;4") with the same --seed and requires the result CSVs to be
# byte-identical across all of them. The binary's own exit code reflects
# its *shape* check, which a shrunk --runs sweep may legitimately fail;
# only a crash (abnormal exit) or a CSV mismatch fails this test.
#
# Usage: cmake -DEXE=<binary> -DARGS=<common flags> -DOUT=<prefix>
#              [-DJOBS=<semicolon list>] -P campaign_determinism.cmake
if(NOT DEFINED EXE OR NOT DEFINED OUT)
  message(FATAL_ERROR "EXE and OUT must be defined")
endif()
if(NOT DEFINED JOBS)
  set(JOBS 1 4)
endif()
separate_arguments(common_args UNIX_COMMAND "${ARGS}")

foreach(jobs IN LISTS JOBS)
  execute_process(
    COMMAND ${EXE} ${common_args} --jobs ${jobs} --csv ${OUT}_j${jobs}.csv
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
  if(NOT rc MATCHES "^[01]$")
    message(FATAL_ERROR "${EXE} --jobs ${jobs} exited abnormally: ${rc}")
  endif()
endforeach()

list(GET JOBS 0 base_jobs)
foreach(jobs IN LISTS JOBS)
  if(jobs EQUAL base_jobs)
    continue()
  endif()
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${OUT}_j${base_jobs}.csv ${OUT}_j${jobs}.csv
    RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR
        "campaign CSVs differ between --jobs ${base_jobs} and --jobs "
        "${jobs} (${OUT}_j${base_jobs}.csv vs ${OUT}_j${jobs}.csv): "
        "parallel execution broke determinism")
  endif()
endforeach()
message(STATUS "campaign CSVs byte-identical across --jobs ${JOBS}")
