# Profiling determinism check (ctest: profile_jobs_determinism).
#
# Runs a harness-ported campaign binary with --profile-shape at --jobs
# 1, 2 and 4 and requires (a) the profile *shape* CSVs — span paths,
# depths, hit counts, counter values, no wall-clock columns — to be
# byte-identical across the three job counts, and (b) the result CSV of
# the profiled runs to be byte-identical to an unprofiled reference run,
# proving the profiler never leaks into campaign results.
#
# Only a crash or a mismatch fails the gate; the binary's own shape-check
# exit code (which a shrunk sweep may fail) is ignored, as in
# campaign_determinism.cmake.
#
# Usage: cmake -DEXE=<binary> -DARGS=<common flags> -DOUT=<prefix>
#              -P profile_determinism.cmake
if(NOT DEFINED EXE OR NOT DEFINED OUT)
  message(FATAL_ERROR "EXE and OUT must be defined")
endif()
separate_arguments(common_args UNIX_COMMAND "${ARGS}")

# Unprofiled reference: the result CSV the campaign produces when the
# profiler is never engaged.
execute_process(
  COMMAND ${EXE} ${common_args} --jobs 2 --csv ${OUT}_ref.csv
  RESULT_VARIABLE rc
  OUTPUT_QUIET)
if(NOT rc MATCHES "^[01]$")
  message(FATAL_ERROR "${EXE} (unprofiled reference) exited abnormally: ${rc}")
endif()

foreach(jobs 1 2 4)
  execute_process(
    COMMAND ${EXE} ${common_args} --jobs ${jobs}
      --csv ${OUT}_j${jobs}.csv
      --profile-shape ${OUT}_j${jobs}.shape.csv
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
  if(NOT rc MATCHES "^[01]$")
    message(FATAL_ERROR "${EXE} --jobs ${jobs} exited abnormally: ${rc}")
  endif()
endforeach()

foreach(jobs 2 4)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
      ${OUT}_j1.shape.csv ${OUT}_j${jobs}.shape.csv
    RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR
        "profile shape CSVs differ between --jobs 1 and --jobs ${jobs} "
        "(${OUT}_j1.shape.csv vs ${OUT}_j${jobs}.shape.csv): the span "
        "tree or hit counts depend on worker scheduling")
  endif()
endforeach()

foreach(jobs 1 2 4)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
      ${OUT}_ref.csv ${OUT}_j${jobs}.csv
    RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR
        "result CSV changed when profiling was enabled at --jobs ${jobs} "
        "(${OUT}_ref.csv vs ${OUT}_j${jobs}.csv): profiling must never "
        "alter campaign results")
  endif()
endforeach()

message(STATUS
    "profile shape byte-identical across --jobs 1/2/4; result CSVs "
    "unchanged by profiling")
