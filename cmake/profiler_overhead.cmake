# Profiler overhead budget check (ctest: profiler_overhead).
#
# Runs a harness-ported campaign binary REPS times without any profiling
# flag (runtime-off: every instrumented site pays one thread-local load
# and branch) and REPS times with --profile-shape (profiler fully
# engaged), takes the minimum wall clock of each configuration from the
# --timing-csv export, and fails if the profiled minimum exceeds the
# unprofiled minimum by more than 5% plus a small absolute allowance
# (ABS_SLACK_US, default 30 ms) that absorbs scheduler noise on very
# short campaigns.  Min-of-reps is the standard guard against one-off
# machine hiccups inflating either side.
#
# Usage: cmake -DEXE=<binary> -DARGS=<common flags> -DOUT=<prefix>
#              [-DREPS=3] [-DABS_SLACK_US=30000] -P profiler_overhead.cmake
if(NOT DEFINED EXE OR NOT DEFINED OUT)
  message(FATAL_ERROR "EXE and OUT must be defined")
endif()
if(NOT DEFINED REPS)
  set(REPS 3)
endif()
if(NOT DEFINED ABS_SLACK_US)
  set(ABS_SLACK_US 30000)
endif()
separate_arguments(common_args UNIX_COMMAND "${ARGS}")

# Parses the wall_s column (8th field, second line) of a --timing-csv
# export into integer microseconds; cmake math() is integer-only.
function(wall_micros timing_file out_var)
  file(STRINGS ${timing_file} lines)
  list(GET lines 1 data)
  string(REPLACE "," ";" fields "${data}")
  list(GET fields 7 wall_s)
  if(wall_s MATCHES "^([0-9]+)\\.([0-9]+)$")
    set(int_part ${CMAKE_MATCH_1})
    set(frac_part ${CMAKE_MATCH_2})
  elseif(wall_s MATCHES "^([0-9]+)$")
    set(int_part ${CMAKE_MATCH_1})
    set(frac_part "")
  else()
    message(FATAL_ERROR "unparseable wall_s '${wall_s}' in ${timing_file}")
  endif()
  string(SUBSTRING "${frac_part}000000" 0 6 frac_part)
  math(EXPR micros "${int_part} * 1000000 + ${frac_part}")
  set(${out_var} ${micros} PARENT_SCOPE)
endfunction()

# Minimum wall clock over REPS runs of the binary with `extra` flags.
function(min_wall_micros tag extra out_var)
  separate_arguments(extra_args UNIX_COMMAND "${extra}")
  set(best "")
  foreach(rep RANGE 1 ${REPS})
    execute_process(
      COMMAND ${EXE} ${common_args} --jobs 2
        --csv ${OUT}_${tag}.csv
        --timing-csv ${OUT}_${tag}.timing.csv
        ${extra_args}
      RESULT_VARIABLE rc
      OUTPUT_QUIET)
    if(NOT rc MATCHES "^[01]$")
      message(FATAL_ERROR "${EXE} (${tag}, rep ${rep}) exited abnormally: ${rc}")
    endif()
    wall_micros(${OUT}_${tag}.timing.csv wall)
    if(best STREQUAL "" OR wall LESS best)
      set(best ${wall})
    endif()
  endforeach()
  set(${out_var} ${best} PARENT_SCOPE)
endfunction()

min_wall_micros(off "" off_us)
min_wall_micros(on "--profile-shape ${OUT}_on.shape.csv" on_us)

math(EXPR limit_us "${off_us} * 105 / 100 + ${ABS_SLACK_US}")
message(STATUS
    "profiler overhead: off ${off_us} us, on ${on_us} us "
    "(limit ${limit_us} us = +5% + ${ABS_SLACK_US} us slack, min of "
    "${REPS} reps)")
if(on_us GREATER limit_us)
  message(FATAL_ERROR
      "profiled campaign exceeded the 5% overhead budget: "
      "${on_us} us vs unprofiled ${off_us} us (limit ${limit_us} us)")
endif()
message(STATUS "profiler overhead within the 5% budget")
