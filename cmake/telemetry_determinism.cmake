# End-to-end telemetry determinism check (ctest: telemetry_jobs_determinism).
#
# Runs a harness-ported campaign binary with the same --seed but --jobs 1
# vs --jobs 4, each time exporting the structured event log and the
# metrics file, and requires both artifacts to be byte-identical. This
# locks in the telemetry determinism contract: events are sim-time
# stamped, sequence numbers restart per run, and exports are ordered by
# run index — so worker scheduling must not leak into the files.
# The binary's own exit code reflects its *shape* check, which a shrunk
# --runs sweep may legitimately fail; only a crash (abnormal exit) or an
# artifact mismatch fails this test.
#
# Usage: cmake -DEXE=<binary> -DARGS=<common flags> -DOUT=<prefix>
#              -P telemetry_determinism.cmake
if(NOT DEFINED EXE OR NOT DEFINED OUT)
  message(FATAL_ERROR "EXE and OUT must be defined")
endif()
separate_arguments(common_args UNIX_COMMAND "${ARGS}")

foreach(jobs 1 4)
  execute_process(
    COMMAND ${EXE} ${common_args} --jobs ${jobs}
      --csv ${OUT}_j${jobs}.csv
      --events-out ${OUT}_j${jobs}.events
      --metrics-out ${OUT}_j${jobs}.metrics
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
  if(NOT rc MATCHES "^[01]$")
    message(FATAL_ERROR "${EXE} --jobs ${jobs} exited abnormally: ${rc}")
  endif()
endforeach()

foreach(artifact events metrics)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
      ${OUT}_j1.${artifact} ${OUT}_j4.${artifact}
    RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR
        "telemetry ${artifact} files differ between --jobs 1 and --jobs 4 "
        "(${OUT}_j1.${artifact} vs ${OUT}_j4.${artifact}): parallel "
        "execution broke the telemetry determinism contract")
  endif()
endforeach()
message(STATUS
    "telemetry event logs and metrics byte-identical across --jobs 1 and 4")
