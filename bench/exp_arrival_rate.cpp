// §4.5 prose experiment: test with injected arrival rate error.
//
// The slider raises the execution frequency of the SafeSpeed runnables
// above the fault hypothesis (more aliveness indications per period than
// expected); the ARM Result plot accumulates the detections.
#include <fstream>
#include <iostream>

#include "inject/faults.hpp"
#include "inject/injector.hpp"
#include "sim/engine.hpp"
#include "util/trace.hpp"
#include "validator/central_node.hpp"
#include "validator/controldesk.hpp"

using namespace easis;

int main() {
  sim::Engine engine;
  validator::CentralNodeConfig config;
  config.with_fmf = false;
  validator::CentralNode node(engine, config);

  // Slider: at t=2 s the task period shrinks to 1/5 (10 ms -> 2 ms):
  // ~20 arrivals per 40 ms window against a hypothesis maximum of 5.
  inject::ErrorInjector injector(engine);
  injector.add(inject::make_period_scale(
      node.kernel(), node.safespeed_alarm(), node.safespeed_period_ticks(),
      0.2, sim::SimTime(2'000'000), sim::Duration::seconds(3)));
  injector.arm();

  util::TraceRecorder recorder;
  validator::ControlDesk desk(engine, recorder, sim::Duration::millis(10));
  desk.watch_runnable(node.watchdog(), node.safespeed().get_sensor_value(),
                      "GetSensorValue");

  int arrival_errors = 0;
  sim::SimTime first_detection;
  node.watchdog().add_error_listener([&](const wdg::ErrorReport& report) {
    if (report.type == wdg::ErrorType::kArrivalRate) {
      if (arrival_errors == 0) first_detection = report.time;
      ++arrival_errors;
    }
  });

  node.start();
  desk.start(sim::Duration::seconds(8));
  engine.run_until(sim::SimTime(8'000'000));

  std::cout << "=== Arrival rate error test (paper §4.5) ===\n"
            << "slider active 2.0 s .. 5.0 s (period x0.2)\n\n";
  for (const char* signal :
       {"GetSensorValue.ARC", "GetSensorValue.CCAR",
        "GetSensorValue.ARM Result"}) {
    recorder.render_ascii(std::cout, signal, 0, 8'000'000, 76, 7);
    std::cout << '\n';
  }

  std::ofstream csv("exp_arrival_rate.csv");
  recorder.write_csv(csv, 10'000);
  std::cout << "raw series written to exp_arrival_rate.csv\n\n";

  std::cout << "--- paper vs measured ---\n"
            << "paper: within one period there are more aliveness "
               "indications than expected; ARM Result rises\n"
            << "measured: first arrival-rate detection at "
            << first_detection.as_millis() << " ms, " << arrival_errors
            << " detections during the fault window\n";
  const bool shape_ok =
      arrival_errors > 0 && first_detection > sim::SimTime(2'000'000);
  std::cout << "shape check: " << (shape_ok ? "PASS" : "FAIL") << "\n";
  return shape_ok ? 0 : 1;
}
