// Reusable campaign scenarios for the harness-ported benches.
//
// The network fault-injection world (E2E-protected vehicle network, four
// detection layers) is shared between exp_network_coverage — which sweeps
// it for coverage — and bench_campaign_throughput — which uses it as a
// realistic per-run workload for the serial-vs-parallel speedup
// measurement. One run is one fresh world; nothing is shared across runs,
// which is what lets the harness shard them freely.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/run_spec.hpp"
#include "policy/policy.hpp"

namespace easis::bench {

/// The five network fault classes, in campaign order.
[[nodiscard]] const std::vector<std::string>& network_fault_classes();

/// Executes one randomized network-fault injection run: builds a fresh
/// vehicle-network world, injects `fault_class` at t=2s parameterized by
/// an RNG seeded with `seed`, simulates until `run_until_us`, and returns
/// the run's coverage contribution (fault class x four detectors).
[[nodiscard]] harness::RunResult run_network_fault(
    const std::string& fault_class, std::uint64_t seed,
    std::int64_t run_until_us = 8'000'000);

/// The diagnostic readout fault classes, in campaign order: three
/// computation classes whose stored DTC the post-run readout must match,
/// and three diag-layer classes that must degrade into an explicit flag.
[[nodiscard]] const std::vector<std::string>& diag_fault_classes();

/// Executes one diagnostic-readout run: builds a central node with fault
/// memory plus a UDS-lite server and workshop tester on a diagnostic CAN,
/// injects `fault_class` (computation fault at t=1s, or a diag-layer fault
/// covering the readout window), performs a full readout at t=3s
/// (TesterPresent, DTC count, DTC list, freeze frame), and cross-checks
/// the read-out fault memory against the injected class. The run's verdict
/// row and its diagnosis-accuracy coverage cell go into the result.
[[nodiscard]] harness::RunResult run_diag_readout(
    const std::string& fault_class, std::uint64_t seed);

/// Header of the per-run verdict rows run_diag_readout() produces.
[[nodiscard]] const std::string& diag_readout_csv_header();

/// The six resource-exhaustion fault classes, in campaign order: two
/// memory classes (steady leak, burst allocation), handle/descriptor
/// exhaustion, a queue flood, and two CPU-load classes (instant hog,
/// creeping load).
[[nodiscard]] const std::vector<std::string>& resource_fault_classes();

/// Executes one resource-exhaustion run: builds a central node whose
/// kernel budgets, handle pool and bounded lane queue are supervised by
/// the Resource Supervision Unit, injects `fault_class` at t=2s
/// parameterized by `seed`, lets the FMF treat the fault (restart with
/// pool reclaim, or load shedding for the CPU classes), and reads the
/// resource DTC back over UDS-lite at t=6s. Four detectors contribute
/// coverage: rsu_report, task_state, treatment, diag_readout. When `ctx`
/// is given, the run publishes its per-task resource snapshot as the
/// flight note every 100 ms (the post-mortem artifact of quarantined
/// runs).
[[nodiscard]] harness::RunResult run_resource_fault(
    const std::string& fault_class, std::uint64_t seed,
    const harness::RunContext* ctx = nullptr);

/// Header of the per-run verdict rows run_resource_fault() produces.
[[nodiscard]] const std::string& resource_fault_csv_header();

/// The eight environmental fault classes, in campaign order: two thermal
/// ladder classes (gradual ramp into derate, runaway into controlled
/// shutdown), two sensor classes (stuck-at, implausible offset), three
/// filesystem/NVM classes (journal fill, write-error burst, erase-cycle
/// wear-out) and the supervised-process deadline-transgression class.
[[nodiscard]] const std::vector<std::string>& environment_fault_classes();

/// Executes one environmental run: builds a central node whose thermal
/// model and NVM fault memory are supervised by the Environment
/// Supervision Unit (plus one instrumented process section), injects
/// `fault_class` at t=2s parameterized by `seed`, lets the graceful
/// ladder / FMF treat it (derate with QM parking, persistent safe state,
/// evict-by-priority, degradation, restart), and reads the DTC plus the
/// class's environment identifier back over UDS-lite at t=6s. Four
/// detectors contribute coverage: env_report, fault_memory, treatment,
/// diag_readout. When `ctx` is given, the run publishes the ESU snapshot
/// as the flight note every 100 ms.
[[nodiscard]] harness::RunResult run_environment_fault(
    const std::string& fault_class, std::uint64_t seed,
    const harness::RunContext* ctx = nullptr);

/// Header of the per-run verdict rows run_environment_fault() produces.
[[nodiscard]] const std::string& environment_fault_csv_header();

/// The six mode-aware fault classes of the duty-cycled sensor node, in
/// campaign order: stuck-in-sleep (dead wake timer), sleep refusal,
/// wake-storm overrun, heartbeat-during-silence (rogue wake interrupt),
/// mode-transition hang and flash-write overrun.
[[nodiscard]] const std::vector<std::string>& mode_fault_classes();

/// The "railmon_duty" policy: the campaign's per-mode overlay set (run /
/// idle / sleep / wakeburst / flashwrite) plus a rate-bounded journal
/// check rule, on top of the baseline. Exposed so the tests can compile
/// and round-trip the exact policy the campaign runs.
[[nodiscard]] policy::PolicySet railmon_duty_policy();

/// Executes one mode-coverage run: builds a fresh RailMon sensor node
/// under the railmon_duty policy (round-tripped through the policy
/// compiler), lets it duty-cycle through a full Run -> FlashWrite ->
/// Sleep -> WakeBurst loop, injects `fault_class` at t=2s parameterized
/// by `seed`, and reads the kPowerMode DTC plus the power-mode DIDs back
/// over UDS-lite at t=6s. Four detectors contribute coverage:
/// mode_report, fault_memory, treatment, diag_readout. Every watchdog
/// error report before the injection counts as a false alarm and fails
/// the run's verdict. When `ctx` is given, the run publishes the mode /
/// overlay / journal snapshot as the flight note every 100 ms.
[[nodiscard]] harness::RunResult run_mode_fault(
    const std::string& fault_class, std::uint64_t seed,
    const harness::RunContext* ctx = nullptr);

/// Header of the per-run verdict rows run_mode_fault() produces.
[[nodiscard]] const std::string& mode_fault_csv_header();

}  // namespace easis::bench
