// Reusable campaign scenarios for the harness-ported benches.
//
// The network fault-injection world (E2E-protected vehicle network, four
// detection layers) is shared between exp_network_coverage — which sweeps
// it for coverage — and bench_campaign_throughput — which uses it as a
// realistic per-run workload for the serial-vs-parallel speedup
// measurement. One run is one fresh world; nothing is shared across runs,
// which is what lets the harness shard them freely.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/run_spec.hpp"

namespace easis::bench {

/// The five network fault classes, in campaign order.
[[nodiscard]] const std::vector<std::string>& network_fault_classes();

/// Executes one randomized network-fault injection run: builds a fresh
/// vehicle-network world, injects `fault_class` at t=2s parameterized by
/// an RNG seeded with `seed`, simulates until `run_until_us`, and returns
/// the run's coverage contribution (fault class x four detectors).
[[nodiscard]] harness::RunResult run_network_fault(
    const std::string& fault_class, std::uint64_t seed,
    std::int64_t run_until_us = 8'000'000);

/// The diagnostic readout fault classes, in campaign order: three
/// computation classes whose stored DTC the post-run readout must match,
/// and three diag-layer classes that must degrade into an explicit flag.
[[nodiscard]] const std::vector<std::string>& diag_fault_classes();

/// Executes one diagnostic-readout run: builds a central node with fault
/// memory plus a UDS-lite server and workshop tester on a diagnostic CAN,
/// injects `fault_class` (computation fault at t=1s, or a diag-layer fault
/// covering the readout window), performs a full readout at t=3s
/// (TesterPresent, DTC count, DTC list, freeze frame), and cross-checks
/// the read-out fault memory against the injected class. The run's verdict
/// row and its diagnosis-accuracy coverage cell go into the result.
[[nodiscard]] harness::RunResult run_diag_readout(
    const std::string& fault_class, std::uint64_t seed);

/// Header of the per-run verdict rows run_diag_readout() produces.
[[nodiscard]] const std::string& diag_readout_csv_header();

}  // namespace easis::bench
