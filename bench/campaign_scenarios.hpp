// Reusable campaign scenarios for the harness-ported benches.
//
// The network fault-injection world (E2E-protected vehicle network, four
// detection layers) is shared between exp_network_coverage — which sweeps
// it for coverage — and bench_campaign_throughput — which uses it as a
// realistic per-run workload for the serial-vs-parallel speedup
// measurement. One run is one fresh world; nothing is shared across runs,
// which is what lets the harness shard them freely.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/run_spec.hpp"

namespace easis::bench {

/// The five network fault classes, in campaign order.
[[nodiscard]] const std::vector<std::string>& network_fault_classes();

/// Executes one randomized network-fault injection run: builds a fresh
/// vehicle-network world, injects `fault_class` at t=2s parameterized by
/// an RNG seeded with `seed`, simulates until `run_until_us`, and returns
/// the run's coverage contribution (fault class x four detectors).
[[nodiscard]] harness::RunResult run_network_fault(
    const std::string& fault_class, std::uint64_t seed,
    std::int64_t run_until_us = 8'000'000);

}  // namespace easis::bench
