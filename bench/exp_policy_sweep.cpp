// Policy-sweep campaign: ranking dependability policies.
//
// The policy engine makes the dependability configuration data; this bench
// makes it an experiment axis. A PolicyCatalog generates --policies
// deterministic variants (the built-in baseline, a hand-laid grid over
// thresholds / escalation / treatment, and seeded random perturbations),
// every variant is round-tripped through the declarative text format (the
// compiler is in the loop — a variant the compiler rejects is a bench
// bug), and each policy runs the same small fault matrix:
//
//   no_fault         false-alarm probe: a clean run must stay quiet
//   runnable_hang    computation stops inside a runnable
//   heartbeat_loss   computation continues, aliveness reporting stops
//   invalid_branch   control flow takes an impossible edge
//   task_hang        the whole OS task stops being scheduled
//
// Per (policy x fault) cell the run records detection, detection latency,
// false alarms, ECU resets and service availability (fraction of 10 ms
// probes with the node neither rebooting nor parked in the safe state).
// The reduction folds the cells into one ranked table: coverage over the
// faulty classes, mean detection latency, mean availability, false-alarm
// rate, and a composite score sorted best-first. Both the ranking CSV
// (--csv) and the per-run CSV (<csv>.runs.csv) are byte-identical across
// --jobs.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "harness/campaign_cli.hpp"
#include "harness/campaign_report.hpp"
#include "harness/campaign_runner.hpp"
#include "inject/faults.hpp"
#include "inject/injector.hpp"
#include "policy/catalog.hpp"
#include "policy/compiler.hpp"
#include "policy/policy.hpp"
#include "sim/engine.hpp"
#include "util/random.hpp"
#include "validator/central_node.hpp"
#include "validator/policy_binding.hpp"

using namespace easis;

namespace {

const std::vector<std::string>& fault_classes() {
  static const std::vector<std::string> classes = {
      "no_fault", "runnable_hang", "heartbeat_loss", "invalid_branch",
      "task_hang"};
  return classes;
}

/// Fixed-precision decimal rendering: CSV cells must not depend on any
/// locale or default-format heuristics.
std::string fmt(double v, int precision = 6) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, v);
  return buffer;
}

RunnableId target_runnable(validator::CentralNode& node, int target) {
  switch (target % 3) {
    case 0: return node.safespeed().get_sensor_value();
    case 1: return node.safespeed().safe_cc_process();
    default: return node.safespeed().speed_process();
  }
}

harness::RunResult run_one(std::shared_ptr<const policy::PolicySet> pol,
                           const std::string& fault_class,
                           std::uint64_t seed) {
  sim::Engine engine;
  validator::CentralNodeConfig config;
  // A reset costs real dark time, so the availability column separates
  // restart-happy policies from conservative ones.
  config.reboot_delay = sim::Duration::millis(50);
  validator::apply_policy(config, pol);
  validator::CentralNode node(engine, config);
  node.attach_check_supervision();

  const sim::SimTime inject_at(2'000'000);
  const sim::SimTime run_until(8'000'000);

  // Detection bookkeeping straight off the watchdog's error stream. Any
  // report before the injection (or at all in a no_fault run) is a false
  // alarm — the price of an over-tight policy.
  bool detected = false;
  sim::SimTime first_detection;
  std::uint64_t false_alarms = 0;
  const bool faulty = fault_class != "no_fault";
  node.watchdog().add_error_listener([&](const wdg::ErrorReport& report) {
    if (faulty && report.time >= inject_at) {
      if (!detected) {
        detected = true;
        first_detection = report.time;
      }
    } else {
      ++false_alarms;
    }
  });

  util::Rng rng(seed);
  const int target = static_cast<int>(rng.uniform_int(0, 2));
  inject::ErrorInjector injector(engine);
  if (fault_class == "runnable_hang") {
    injector.add(inject::make_execution_stretch(
        node.rte(), target_runnable(node, target), 1e6, inject_at,
        sim::Duration::zero()));
  } else if (fault_class == "heartbeat_loss") {
    injector.add(inject::make_heartbeat_suppression(
        node.rte(), target_runnable(node, target), inject_at,
        sim::Duration::zero()));
  } else if (fault_class == "invalid_branch") {
    const RunnableId from = target_runnable(node, target);
    const RunnableId wrong = target_runnable(node, target + 2);
    injector.add(inject::make_invalid_branch(node.rte(), node.safespeed_task(),
                                             from, wrong, inject_at,
                                             sim::Duration::zero()));
  } else if (fault_class == "task_hang") {
    injector.add(inject::make_task_hang(node.rte(), node.safespeed_task(),
                                        inject_at, sim::Duration::zero()));
  }
  if (faulty) injector.arm();

  // Service-availability probe: every 10 ms, is the node delivering full
  // service (not dark in a reboot, not parked in the safe state)?
  std::uint64_t probes = 0;
  std::uint64_t available = 0;
  std::function<void()> probe = [&] {
    ++probes;
    if (!node.rebooting() && !node.in_safe_state()) ++available;
    engine.schedule_in(sim::Duration::millis(10), probe,
                       sim::EventPriority::kMonitor);
  };
  engine.schedule_in(sim::Duration::millis(10), probe,
                     sim::EventPriority::kMonitor);

  node.start();
  engine.run_until(run_until);

  const double availability =
      probes > 0 ? static_cast<double>(available) / probes : 1.0;
  const double latency_ms =
      detected ? (first_detection - inject_at).as_micros() / 1000.0 : -1.0;

  harness::RunResult result;
  result.rows.push_back({pol->id, fault_class, detected ? "1" : "0",
                         fmt(latency_ms, 3), std::to_string(false_alarms),
                         std::to_string(node.resets_performed()),
                         fmt(availability)});
  if (faulty && !detected && pol->id == "baseline") {
    // The baseline reproduces the paper configuration; a miss there is a
    // regression, not a policy property.
    result.misdetect = "baseline missed " + fault_class;
  }
  return result;
}

/// Per-policy reduction of the row list.
struct PolicyScore {
  std::string id;
  std::uint32_t hash24 = 0;
  std::uint64_t faulty_runs = 0;
  std::uint64_t detections = 0;
  double latency_sum_ms = 0;
  std::uint64_t false_alarm_runs = 0;
  std::uint64_t clean_runs = 0;
  double availability_sum = 0;
  std::uint64_t runs = 0;

  [[nodiscard]] double coverage() const {
    return faulty_runs ? static_cast<double>(detections) / faulty_runs : 0.0;
  }
  [[nodiscard]] double mean_latency_ms() const {
    return detections ? latency_sum_ms / detections : -1.0;
  }
  [[nodiscard]] double false_alarm_rate() const {
    return runs ? static_cast<double>(false_alarm_runs) / runs : 0.0;
  }
  [[nodiscard]] double availability() const {
    return runs ? availability_sum / runs : 0.0;
  }
  /// Composite ranking: coverage dominates, false alarms and detection
  /// latency subtract, availability breaks the detection ties. An
  /// undetected class contributes the full simulation window as latency
  /// through the coverage term already, so the latency term only uses
  /// actual detections.
  [[nodiscard]] double score() const {
    const double latency_penalty =
        detections ? mean_latency_ms() / 1000.0 : 1.0;
    return 100.0 * coverage() - 25.0 * false_alarm_rate() -
           10.0 * latency_penalty + 10.0 * availability();
  }
};

}  // namespace

int main(int argc, char** argv) {
  harness::CampaignCli cli(
      "exp_policy_sweep",
      "dependability-policy sweep: rank catalog-generated policy variants "
      "by coverage, detection latency, false-alarm rate and availability "
      "over a 5-class fault matrix",
      /*default_seed=*/0, /*default_runs=*/1,
      "repetitions of each (policy x fault class) cell",
      "exp_policy_sweep.csv");
  std::uint64_t policies = 120;
  cli.parser().add("policies", &policies,
                   "policy variants to sweep (baseline + grid + seeded "
                   "perturbations)");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  // Generate the catalog and push every variant through the declarative
  // text format: what the campaign executes is what compile_policy()
  // accepted, so the sweep exercises the compiler on every variant.
  policy::PolicyCatalog catalog(cli.seed);
  std::vector<std::shared_ptr<const policy::PolicySet>> compiled;
  for (const policy::PolicySet& variant : catalog.generate(policies)) {
    const std::string text = policy::to_text(variant);
    policy::CompileResult result = policy::compile_policy(text);
    if (!result.ok()) {
      std::cerr << "catalog variant '" << variant.id
                << "' rejected by its own compiler:\n"
                << result.format();
      return 1;
    }
    if (policy::to_text(*result.policy) != text) {
      std::cerr << "catalog variant '" << variant.id
                << "' does not round-trip through the text format\n";
      return 1;
    }
    compiled.push_back(
        std::make_shared<const policy::PolicySet>(std::move(*result.policy)));
  }

  // Flatten (policy x fault class), repeated --runs times.
  std::vector<std::pair<std::size_t, std::size_t>> flat;
  for (std::uint64_t rep = 0; rep < cli.runs; ++rep) {
    for (std::size_t p = 0; p < compiled.size(); ++p) {
      for (std::size_t f = 0; f < fault_classes().size(); ++f) {
        flat.emplace_back(p, f);
      }
    }
  }
  std::vector<harness::RunSpec> run_specs =
      harness::CampaignRunner::make_specs(flat.size(), cli.seed);
  for (std::size_t i = 0; i < flat.size(); ++i) {
    run_specs[i].policy_id = compiled[flat[i].first]->id;
    run_specs[i].label = compiled[flat[i].first]->id + "/" +
                         fault_classes()[flat[i].second];
  }

  harness::CampaignRunner runner(
      cli.config(), [&](const harness::RunContext& ctx) {
        const auto& [p, f] = flat[ctx.spec().run_index];
        return run_one(compiled[p], fault_classes()[f], ctx.spec().seed);
      });
  const harness::CampaignOutcome outcome = runner.run(run_specs);
  const harness::CampaignReport report(run_specs, outcome);

  // Fold the per-run rows into per-policy scores. The rows arrive in
  // run-index order, so this reduction is deterministic across --jobs.
  std::map<std::string, PolicyScore> scores;
  for (const auto& policy : compiled) {
    PolicyScore& s = scores[policy->id];
    s.id = policy->id;
    s.hash24 = policy::version_hash24(*policy);
  }
  for (const auto& row : report.rows()) {
    PolicyScore& s = scores[row[0]];
    const bool faulty = row[1] != "no_fault";
    const bool detected = row[2] == "1";
    ++s.runs;
    if (faulty) {
      ++s.faulty_runs;
      if (detected) {
        ++s.detections;
        s.latency_sum_ms += std::strtod(row[3].c_str(), nullptr);
      }
    } else {
      ++s.clean_runs;
    }
    if (std::strtoull(row[4].c_str(), nullptr, 10) > 0) ++s.false_alarm_runs;
    s.availability_sum += std::strtod(row[6].c_str(), nullptr);
  }
  std::vector<PolicyScore> ranking;
  ranking.reserve(scores.size());
  for (auto& [id, s] : scores) ranking.push_back(std::move(s));
  std::sort(ranking.begin(), ranking.end(),
            [](const PolicyScore& a, const PolicyScore& b) {
              if (a.score() != b.score()) return a.score() > b.score();
              return a.id < b.id;
            });

  std::cout << "=== Dependability-policy sweep ===\n"
            << ranking.size() << " policies x " << fault_classes().size()
            << " fault classes, " << report.completed_runs() << " runs ("
            << cli.jobs << " worker(s))\n\ntop of the ranking:\n";
  for (std::size_t i = 0; i < ranking.size() && i < 10; ++i) {
    const PolicyScore& s = ranking[i];
    std::cout << "  " << i + 1 << ". " << s.id << "  coverage "
              << fmt(s.coverage(), 2) << "  latency "
              << fmt(s.mean_latency_ms(), 1) << " ms  availability "
              << fmt(s.availability(), 3) << "  false alarms "
              << fmt(s.false_alarm_rate(), 2) << "  score "
              << fmt(s.score(), 2) << "\n";
  }
  if (!report.quarantined().empty()) {
    std::cout << '\n' << report.quarantine_summary();
  }

  {
    std::ofstream csv(cli.csv);
    csv << "rank,policy,version_hash24,coverage,mean_latency_ms,"
           "availability,false_alarm_rate,score\n";
    for (std::size_t i = 0; i < ranking.size(); ++i) {
      const PolicyScore& s = ranking[i];
      csv << i + 1 << ',' << s.id << ',' << s.hash24 << ','
          << fmt(s.coverage()) << ',' << fmt(s.mean_latency_ms(), 3) << ','
          << fmt(s.availability()) << ',' << fmt(s.false_alarm_rate()) << ','
          << fmt(s.score()) << '\n';
    }
  }
  std::cout << "\nranking written to " << cli.csv << '\n';
  {
    std::ofstream runs_csv(cli.csv + ".runs.csv");
    report.write_rows_csv(
        runs_csv,
        "policy,fault_class,detected,latency_ms,false_alarms,resets,"
        "availability");
  }
  if (!cli.timing_csv.empty()) {
    std::ofstream timing(cli.timing_csv);
    report.write_timing_csv(timing, runner.config(), outcome);
  }
  cli.write_artifacts(report, outcome, std::cout);
  std::cout << "campaign wall clock: " << outcome.wall_seconds << " s ("
            << outcome.runs_per_second() << " runs/s)\n";

  // Shape check: a real sweep ranks at least 100 policies; the baseline
  // must detect every faulty class without false alarms (it reproduces
  // the paper configuration) and must not rank below a policy that
  // detects nothing.
  const auto baseline =
      std::find_if(ranking.begin(), ranking.end(),
                   [](const PolicyScore& s) { return s.id == "baseline"; });
  bool shape_ok = ranking.size() >= 100 || policies < 100;
  shape_ok = shape_ok && baseline != ranking.end();
  if (baseline != ranking.end()) {
    shape_ok = shape_ok && baseline->coverage() > 0.99;
    shape_ok = shape_ok && baseline->false_alarm_rate() == 0.0;
  }
  shape_ok = shape_ok && report.quarantined().empty();
  std::cout << "--- sweep shape ---\n"
            << "expected: baseline detects all faulty classes with zero "
               "false alarms; >= 100 policies ranked at full width\n"
            << "shape check: " << (shape_ok ? "PASS" : "FAIL") << "\n";
  return shape_ok ? 0 : 1;
}
