// Resource-exhaustion detection coverage campaign (tentpole of the
// resource-supervision unit family).
//
// The watchdog units of the paper supervise computation timing; the
// Resource Supervision Unit supervises the *creeping* failure class real
// ECUs die from long before a heartbeat is missed: heap leaks, descriptor
// exhaustion, queue floods and CPU overload. Every run injects one of six
// resource fault classes into a budgeted central node and watches the
// full treatment chain in parallel:
//
//   rsu_report   - the RSU's error report into the watchdog (watermark,
//                  exhaustion or leak-rate rule)
//   task_state   - the TSI rolling the bound task to faulty once the
//                  per-type threshold is crossed
//   treatment    - the FMF's reaction: application restart with resource
//                  pool reclaim, or — for the CPU classes — degradation
//                  into load shedding of the QM light-control application
//   diag_readout - the resource DTC (with its freeze-framed resource
//                  snapshot) read back over UDS-lite at t=6s
//
// Expected shape: every class is caught by the RSU and flows end-to-end
// into a readable DTC; the memory/handle/queue classes end in a restart,
// the CPU classes in load shedding.
//
// Harness-ported: runs shard across --jobs workers, per-run seed is
// derive_seed(--seed, run_index), and both CSVs are byte-identical for
// any --jobs value (the resource_jobs_determinism_* ctest gates).
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "campaign_scenarios.hpp"
#include "harness/campaign_cli.hpp"
#include "harness/campaign_report.hpp"
#include "harness/campaign_runner.hpp"

using namespace easis;

int main(int argc, char** argv) {
  harness::CampaignCli cli(
      "exp_resource_coverage",
      "resource-exhaustion fault injection campaign (6 fault classes x "
      "--runs injections, 4 detectors each)",
      /*default_seed=*/0x5E50, /*default_runs=*/25,
      "randomized injections per fault class", "exp_resource_coverage.csv");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const auto& classes = bench::resource_fault_classes();
  const auto runs_per_class = static_cast<std::size_t>(cli.runs);
  const std::size_t total = classes.size() * runs_per_class;

  std::vector<harness::RunSpec> specs =
      harness::CampaignRunner::make_specs(total, cli.seed);
  for (std::size_t i = 0; i < total; ++i) {
    specs[i].label = classes[i / runs_per_class];
  }

  harness::CampaignRunner runner(
      cli.config(), [](const harness::RunContext& ctx) {
        return bench::run_resource_fault(ctx.spec().label, ctx.spec().seed,
                                         &ctx);
      });
  const harness::CampaignOutcome outcome = runner.run(specs);
  const harness::CampaignReport report(specs, outcome);
  const auto& table = report.coverage();

  std::cout << "=== Resource-exhaustion detection coverage ===\n"
            << report.completed_runs() << " randomized injections ("
            << cli.jobs << " worker(s), seed 0x" << std::hex << cli.seed
            << std::dec << "), 4 detectors each\n\n";
  table.print(std::cout);
  if (!report.quarantined().empty()) {
    std::cout << '\n' << report.quarantine_summary();
  }
  if (outcome.skipped > 0) {
    std::cout << '\n'
              << outcome.skipped << " run(s) skipped by --fail-fast\n";
  }

  {
    std::ofstream csv(cli.csv);
    report.write_coverage_csv(csv);
  }
  std::cout << "\nper-class coverage written to " << cli.csv << '\n';
  {
    std::string rows_path = cli.csv;
    if (rows_path.size() > 4 &&
        rows_path.rfind(".csv") == rows_path.size() - 4) {
      rows_path.resize(rows_path.size() - 4);
    }
    rows_path += ".runs.csv";
    std::ofstream rows(rows_path);
    report.write_rows_csv(rows, bench::resource_fault_csv_header());
    std::cout << "per-run verdicts written to " << rows_path << '\n';
  }
  if (!cli.timing_csv.empty()) {
    std::ofstream timing(cli.timing_csv);
    report.write_timing_csv(timing, runner.config(), outcome);
  }
  cli.write_artifacts(report, outcome, std::cout);
  std::cout << "campaign wall clock: " << outcome.wall_seconds << " s ("
            << outcome.runs_per_second() << " runs/s)\n";

  // Shape check: every resource fault class must be caught by the RSU,
  // roll its task to faulty, be treated, and read back as a DTC. With
  // --fail-fast the sweep is partial, so the shape check is skipped.
  bool shape_ok = true;
  if (outcome.skipped == 0) {
    for (const auto& fault_class : classes) {
      shape_ok &= table.coverage(fault_class, "rsu_report") > 0.99;
      shape_ok &= table.coverage(fault_class, "task_state") > 0.99;
      shape_ok &= table.coverage(fault_class, "treatment") > 0.99;
      shape_ok &= table.coverage(fault_class, "diag_readout") > 0.99;
    }
    shape_ok &= report.quarantined().empty();
    std::cout << "--- expected vs measured ---\n"
              << "expected shape: every class detected by the RSU and "
                 "readable as a DTC; memory/handle/queue faults end in a "
                 "restart, CPU faults in load shedding\n"
              << "shape check: " << (shape_ok ? "PASS" : "FAIL") << "\n";
  } else {
    std::cout << "shape check skipped (--fail-fast partial sweep)\n";
  }
  return shape_ok ? 0 : 1;
}
