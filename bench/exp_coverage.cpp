// Outlook experiment: fault detection coverage analysis.
//
// The paper defers "further analysis of fault detection coverage" to
// future work; this bench runs it: a campaign of fault classes x injection
// targets, detected in parallel by the Software Watchdog and the three
// related-work baselines (ECU hardware watchdog, OSEKTime-style deadline
// monitoring, AUTOSAR-style execution time monitoring).
//
// Expected shape: the software watchdog covers runnable-level faults
// (hang, drop, excessive dispatch, flow corruption) that the task- and
// ECU-level baselines miss; the hardware watchdog only fires when the
// whole ECU stops scheduling background work.
//
// Ported onto the campaign harness: the 18 injections shard across --jobs
// workers and --runs repeats the whole campaign for statistical weight.
// The injections are deterministic (no RNG), so the result CSV is
// byte-identical to the pre-harness serial bench at default flags.
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "baseline/deadline_monitor.hpp"
#include "baseline/exec_time_monitor.hpp"
#include "baseline/hw_watchdog.hpp"
#include "harness/campaign_cli.hpp"
#include "harness/campaign_report.hpp"
#include "harness/campaign_runner.hpp"
#include "inject/campaign.hpp"
#include "inject/faults.hpp"
#include "inject/injector.hpp"
#include "sim/engine.hpp"
#include "validator/central_node.hpp"

using namespace easis;

namespace {

struct FaultSpec {
  std::string fault_class;
  // target selects which SafeSpeed runnable (0..2) is attacked.
  std::function<inject::Injection(validator::CentralNode&, int target,
                                  sim::SimTime at)>
      make;
  int targets = 3;
};

harness::RunResult run_one(const FaultSpec& spec, int target) {
  sim::Engine engine;
  validator::CentralNodeConfig config;
  config.with_fmf = false;
  validator::CentralNode node(engine, config);

  inject::DetectionRecorder recorder;
  recorder.add_detector("software_watchdog");
  recorder.add_detector("hw_watchdog");
  recorder.add_detector("deadline_monitor");
  recorder.add_detector("exec_time_monitor");

  node.watchdog().add_error_listener([&](const wdg::ErrorReport& r) {
    recorder.record("software_watchdog", r.time);
  });

  baseline::HardwareWatchdog hw(engine, sim::Duration::millis(100));
  hw.set_expire_callback(
      [&](sim::SimTime t) { recorder.record("hw_watchdog", t); });
  baseline::HardwareWatchdogService hw_service(
      node.kernel(), hw, node.system_counter(), /*priority=*/1,
      /*period_ticks=*/50);

  baseline::DeadlineMonitor deadline(node.kernel());
  deadline.set_deadline(node.safespeed_task(), sim::Duration::millis(10));
  deadline.set_violation_callback(
      [&](TaskId, sim::SimTime t) { recorder.record("deadline_monitor", t); });

  baseline::ExecutionTimeMonitor exec(node.kernel());
  // Budget: nominal job consumes ~0.7 ms; allow 3x headroom.
  exec.set_budget(node.safespeed_task(), sim::Duration::micros(2100));
  exec.set_violation_callback([&](TaskId, sim::SimTime t) {
    recorder.record("exec_time_monitor", t);
  });

  const sim::SimTime inject_at(2'000'000);
  inject::ErrorInjector injector(engine);
  injector.add(spec.make(node, target, inject_at));
  injector.arm();
  recorder.mark_injection(inject_at);

  node.start();
  hw_service.arm();
  hw.start();
  engine.run_until(sim::SimTime(12'000'000));

  harness::RunResult result;
  bool any_detected = false;
  for (const auto& detector : recorder.detectors()) {
    result.coverage.add_result(spec.fault_class, detector,
                               recorder.detected(detector),
                               recorder.latency(detector));
    any_detected = any_detected || recorder.detected(detector);
  }
  if (!any_detected) {
    // A completely invisible injection is the anomaly the flight recorder
    // exists for; flag it so the harness dumps this run's events.
    result.misdetect = "no detector fired for " + spec.fault_class;
  }
  return result;
}

RunnableId target_runnable(validator::CentralNode& node, int target) {
  switch (target % 3) {
    case 0: return node.safespeed().get_sensor_value();
    case 1: return node.safespeed().safe_cc_process();
    default: return node.safespeed().speed_process();
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<FaultSpec> specs = {
      {"runnable_hang",
       [](validator::CentralNode& node, int target, sim::SimTime at) {
         return inject::make_execution_stretch(
             node.rte(), target_runnable(node, target), 1e6, at,
             sim::Duration::zero());
       }},
      {"runnable_slowdown_x5",
       [](validator::CentralNode& node, int target, sim::SimTime at) {
         return inject::make_execution_stretch(
             node.rte(), target_runnable(node, target), 5.0, at,
             sim::Duration::zero());
       }},
      {"runnable_drop",
       [](validator::CentralNode& node, int target, sim::SimTime at) {
         return inject::make_runnable_drop(
             node.rte(), target_runnable(node, target), at,
             sim::Duration::zero());
       }},
      {"heartbeat_loss",
       [](validator::CentralNode& node, int target, sim::SimTime at) {
         return inject::make_heartbeat_suppression(
             node.rte(), target_runnable(node, target), at,
             sim::Duration::zero());
       }},
      {"excessive_dispatch",
       [](validator::CentralNode& node, int, sim::SimTime at) {
         return inject::make_period_scale(
             node.kernel(), node.safespeed_alarm(),
             node.safespeed_period_ticks(), 0.2, at, sim::Duration::zero());
       },
       1},
      {"activation_loss",
       [](validator::CentralNode& node, int, sim::SimTime at) {
         return inject::make_period_scale(
             node.kernel(), node.safespeed_alarm(),
             node.safespeed_period_ticks(), 20.0, at, sim::Duration::zero());
       },
       1},
      {"invalid_branch",
       [](validator::CentralNode& node, int target, sim::SimTime at) {
         const RunnableId from = target_runnable(node, target);
         const RunnableId wrong = target_runnable(node, target + 2);
         return inject::make_invalid_branch(node.rte(),
                                            node.safespeed_task(), from,
                                            wrong, at, sim::Duration::zero());
       }},
      {"task_hang",
       [](validator::CentralNode& node, int, sim::SimTime at) {
         return inject::make_task_hang(node.rte(), node.safespeed_task(), at,
                                       sim::Duration::zero());
       },
       1},
  };

  harness::CampaignCli cli(
      "exp_coverage",
      "deterministic computation-fault coverage campaign (8 fault classes "
      "x their injection targets, 4 detectors each)",
      /*default_seed=*/0, /*default_runs=*/1,
      "repetitions of the whole 18-injection campaign", "exp_coverage.csv");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  // Flatten (fault class x target) into the run list, repeated --runs
  // times. The runs are deterministic, so the derived seeds are unused —
  // but the indexing still fixes the reduction order.
  std::vector<std::pair<std::size_t, int>> flat;
  for (std::uint64_t rep = 0; rep < cli.runs; ++rep) {
    for (std::size_t s = 0; s < specs.size(); ++s) {
      for (int target = 0; target < specs[s].targets; ++target) {
        flat.emplace_back(s, target);
      }
    }
  }
  std::vector<harness::RunSpec> run_specs =
      harness::CampaignRunner::make_specs(flat.size(), cli.seed);
  for (std::size_t i = 0; i < flat.size(); ++i) {
    run_specs[i].label = specs[flat[i].first].fault_class;
  }

  harness::CampaignRunner runner(
      cli.config(), [&](const harness::RunContext& ctx) {
        const auto& [spec_idx, target] = flat[ctx.spec().run_index];
        return run_one(specs[spec_idx], target);
      });
  const harness::CampaignOutcome outcome = runner.run(run_specs);
  const harness::CampaignReport report(run_specs, outcome);
  const auto& table = report.coverage();

  std::cout << "=== Fault detection coverage (paper outlook) ===\n"
            << report.completed_runs() << " experiments (" << cli.jobs
            << " worker(s)), 4 detectors each\n\n";
  table.print(std::cout);
  if (!report.quarantined().empty()) {
    std::cout << '\n' << report.quarantine_summary();
  }

  {
    std::ofstream csv(cli.csv);
    report.write_coverage_csv(csv);
  }
  std::cout << "\nraw results written to " << cli.csv << '\n';
  if (!cli.timing_csv.empty()) {
    std::ofstream timing(cli.timing_csv);
    report.write_timing_csv(timing, runner.config(), outcome);
  }
  cli.write_artifacts(report, outcome, std::cout);
  std::cout << "campaign wall clock: " << outcome.wall_seconds << " s ("
            << outcome.runs_per_second() << " runs/s)\n";

  // Shape check: the software watchdog must dominate the baselines on
  // runnable-level faults and never miss a fault class entirely.
  bool shape_ok = true;
  for (const auto& fc :
       {"runnable_hang", "runnable_drop", "heartbeat_loss",
        "invalid_branch"}) {
    shape_ok = shape_ok && table.coverage(fc, "software_watchdog") > 0.99;
    shape_ok =
        shape_ok && table.coverage(fc, "hw_watchdog") <
                        table.coverage(fc, "software_watchdog") + 0.01;
  }
  // Pure heartbeat-path loss and runnable drop are invisible to every
  // task-level baseline (timing stays intact).
  shape_ok =
      shape_ok && table.coverage("runnable_drop", "deadline_monitor") == 0.0;
  shape_ok = shape_ok &&
             table.coverage("heartbeat_loss", "exec_time_monitor") == 0.0;
  // Deadline supervision (extension) catches rate-preserving slowdowns of
  // the runnables between its checkpoints (2 of 3 injection targets).
  shape_ok = shape_ok &&
             table.coverage("runnable_slowdown_x5", "software_watchdog") >=
                 0.6;
  shape_ok = shape_ok && report.quarantined().empty();
  std::cout << "--- paper vs measured ---\n"
            << "expected shape: software watchdog covers runnable-level "
               "faults the ECU/task-level monitors miss\n"
            << "shape check: " << (shape_ok ? "PASS" : "FAIL") << "\n";
  return shape_ok ? 0 : 1;
}
