// Diagnostic readout accuracy campaign (tentpole of the diag subsystem).
//
// Every run injects one fault class into a central node with reset-safe
// fault memory and then performs a full UDS-lite workshop readout at t=3s
// (TesterPresent, reportDtcCount, reportDtcs, freeze frame of the expected
// DTC). The run's verdict cross-checks the read-out fault memory against
// the injected class:
//
//   correct_dtc              - the expected DTC (application + error type)
//                              is present in the readout
//   missing_dtc / wrong_dtc  - fault memory disagrees with the injection
//   flagged_negative_response- the server refused broken request content
//                              with an explicit NRC (never silence)
//   readout_timeout          - the tester's supervision caught a dead
//                              response path
//
// Three computation classes (aliveness, arrival rate, program flow) must
// land on correct_dtc: the diagnosis-accuracy figure of the campaign.
// Three diag-layer classes attack the readout chain itself (corrupted SID,
// response drop, reset blackout) and must degrade into their explicit
// flag — a wrong-but-plausible readout is the failure mode a dependable
// diagnostic stack exists to exclude.
//
// Harness-ported: runs shard across --jobs workers, per-run seed is
// derive_seed(--seed, run_index), and the per-run verdict CSV is
// byte-identical for any --jobs value (a ctest gate enforces this).
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "campaign_scenarios.hpp"
#include "harness/campaign_cli.hpp"
#include "harness/campaign_report.hpp"
#include "harness/campaign_runner.hpp"

using namespace easis;

int main(int argc, char** argv) {
  harness::CampaignCli cli(
      "exp_diag_readout",
      "post-run diagnostic readout campaign (6 fault classes x --runs "
      "injections, verdict per run)",
      /*default_seed=*/0xD1A6, /*default_runs=*/25,
      "randomized injections per fault class", "exp_diag_readout.csv");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  const auto& classes = bench::diag_fault_classes();
  const auto runs_per_class = static_cast<std::size_t>(cli.runs);
  const std::size_t total = classes.size() * runs_per_class;

  std::vector<harness::RunSpec> specs =
      harness::CampaignRunner::make_specs(total, cli.seed);
  for (std::size_t i = 0; i < total; ++i) {
    specs[i].label = classes[i / runs_per_class];
  }

  harness::CampaignRunner runner(
      cli.config(), [](const harness::RunContext& ctx) {
        return bench::run_diag_readout(ctx.spec().label, ctx.spec().seed);
      });
  const harness::CampaignOutcome outcome = runner.run(specs);
  const harness::CampaignReport report(specs, outcome);
  const auto& table = report.coverage();

  std::cout << "=== Diagnostic readout accuracy ===\n"
            << report.completed_runs() << " randomized injections ("
            << cli.jobs << " worker(s), seed 0x" << std::hex << cli.seed
            << std::dec << "), one full readout each\n\n"
            << "diagnosis accuracy per fault class (readout verdict == "
               "expected verdict):\n";
  table.print(std::cout);
  if (!report.quarantined().empty()) {
    std::cout << '\n' << report.quarantine_summary();
  }

  {
    std::ofstream csv(cli.csv);
    report.write_rows_csv(csv, bench::diag_readout_csv_header());
  }
  std::cout << "\nper-run verdicts written to " << cli.csv << '\n';
  if (!cli.timing_csv.empty()) {
    std::ofstream timing(cli.timing_csv);
    report.write_timing_csv(timing, runner.config(), outcome);
  }
  cli.write_artifacts(report, outcome, std::cout);
  std::cout << "campaign wall clock: " << outcome.wall_seconds << " s ("
            << outcome.runs_per_second() << " runs/s)\n";

  // Shape check: computation faults must read out as their own DTC; the
  // diag-layer attacks must degrade into their explicit flag, never into
  // a silently wrong readout.
  bool shape_ok = true;
  shape_ok &= table.coverage("aliveness", "diag_readout") > 0.99;
  shape_ok &= table.coverage("arrival_rate", "diag_readout") > 0.99;
  shape_ok &= table.coverage("program_flow", "diag_readout") > 0.99;
  shape_ok &= table.coverage("diag_request_corruption", "diag_readout") > 0.99;
  shape_ok &= table.coverage("diag_response_drop", "diag_readout") > 0.99;
  shape_ok &= table.coverage("diag_reset_blackout", "diag_readout") > 0.99;
  shape_ok &= report.quarantined().empty();
  std::cout << "--- expected vs measured ---\n"
            << "expected shape: computation faults -> correct DTC in the "
               "readout; diag-layer faults -> explicit NRC or tester "
               "timeout\n"
            << "shape check: " << (shape_ok ? "PASS" : "FAIL") << "\n";
  return shape_ok ? 0 : 1;
}
