// §4.5 prose experiment: test with injected control flow error.
//
// Loop-counter manipulation and invalid execution branches corrupt the
// runnable sequence; the PFC unit compares executed successors against the
// look-up table and reports program flow errors. Three corruption variants
// are exercised: wrong successor, skipped runnable, repeated runnable.
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "inject/faults.hpp"
#include "inject/injector.hpp"
#include "sim/engine.hpp"
#include "validator/central_node.hpp"

using namespace easis;

namespace {

struct Variant {
  std::string name;
  std::function<inject::Injection(validator::CentralNode&)> make;
};

struct Outcome {
  int pfc = 0;
  double first_ms = -1;
};

Outcome run_variant(const Variant& variant) {
  sim::Engine engine;
  validator::CentralNodeConfig config;
  config.with_fmf = false;
  validator::CentralNode node(engine, config);

  Outcome outcome;
  node.watchdog().add_error_listener([&](const wdg::ErrorReport& report) {
    if (report.type == wdg::ErrorType::kProgramFlow) {
      if (outcome.pfc == 0) outcome.first_ms = report.time.as_millis();
      ++outcome.pfc;
    }
  });

  inject::ErrorInjector injector(engine);
  injector.add(variant.make(node));
  injector.arm();

  node.start();
  engine.run_until(sim::SimTime(5'000'000));
  return outcome;
}

}  // namespace

int main() {
  const sim::SimTime at(2'000'000);
  const sim::Duration window = sim::Duration::seconds(1);
  const std::vector<Variant> variants = {
      {"invalid_branch (sensor -> actuator)",
       [&](validator::CentralNode& node) {
         return inject::make_invalid_branch(
             node.rte(), node.safespeed_task(),
             node.safespeed().get_sensor_value(),
             node.safespeed().speed_process(), at, window);
       }},
      {"skipped_runnable (loop counter = 0)",
       [&](validator::CentralNode& node) {
         return inject::make_runnable_drop(
             node.rte(), node.safespeed().safe_cc_process(), at, window);
       }},
      {"repeated_runnable (loop counter = 3)",
       [&](validator::CentralNode& node) {
         return inject::make_runnable_repeat(
             node.rte(), node.safespeed().safe_cc_process(), 3, at, window);
       }},
      {"swapped_runnables",
       [&](validator::CentralNode& node) {
         return inject::make_sequence_swap(
             node.rte(), node.safespeed_task(),
             node.safespeed().get_sensor_value(),
             node.safespeed().safe_cc_process(), at, window);
       }},
  };

  std::cout << "=== Control flow error test (paper §4.5) ===\n"
            << "injection window 2.0 s .. 3.0 s, detections by the PFC "
               "look-up table\n\n";
  std::ofstream csv("exp_control_flow.csv");
  csv << "variant,pfc_errors,first_detection_ms\n";
  bool all_detected = true;
  for (const auto& variant : variants) {
    const Outcome outcome = run_variant(variant);
    std::cout << "  " << variant.name << ": " << outcome.pfc
              << " flow errors, first at " << outcome.first_ms << " ms\n";
    csv << '"' << variant.name << "\"," << outcome.pfc << ','
        << outcome.first_ms << '\n';
    all_detected = all_detected && outcome.pfc > 0;
  }
  std::cout << "\nraw results written to exp_control_flow.csv\n"
            << "--- paper vs measured ---\n"
            << "paper: control flow errors successfully validated via "
               "manipulated loop counters and invalid branches\n"
            << "measured: every corruption variant raises program flow "
               "errors within one job of the injection\n"
            << "shape check: " << (all_detected ? "PASS" : "FAIL") << "\n";
  return all_detected ? 0 : 1;
}
