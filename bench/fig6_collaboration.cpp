// Figure 6 reproduction: collaboration of the fault detection units.
//
// Paper setup: an invalid execution branch corrupts the SafeSpeed program
// flow. The PFC unit reports program flow errors ("PFC Result" plot);
// after three of them (the threshold) the task state is set to faulty.
// The heartbeat monitoring unit sees the missing runnable too, but the
// collaboration logic attributes it to the flow error: only ONE
// accumulated aliveness error is reported ("AM Result" plot).
#include <fstream>
#include <iostream>

#include "inject/faults.hpp"
#include "inject/injector.hpp"
#include "sim/engine.hpp"
#include "util/trace.hpp"
#include "validator/central_node.hpp"
#include "validator/controldesk.hpp"

using namespace easis;

int main() {
  sim::Engine engine;
  validator::CentralNodeConfig config;
  config.with_fmf = false;
  config.watchdog.program_flow_threshold = 3;  // as in the paper's test
  validator::CentralNode node(engine, config);

  // Invalid branch at t=2 s: after GetSensorValue control jumps straight
  // to Speed_process; SAFE_CC_process is skipped.
  auto& ss = node.safespeed();
  inject::ErrorInjector injector(engine);
  injector.add(inject::make_invalid_branch(
      node.rte(), node.safespeed_task(), ss.get_sensor_value(),
      ss.speed_process(), sim::SimTime(2'000'000), sim::Duration::zero()));
  injector.arm();

  util::TraceRecorder recorder;
  validator::ControlDesk desk(engine, recorder, sim::Duration::millis(10));
  desk.watch_runnable(node.watchdog(), ss.speed_process(), "Speed_process");
  desk.watch_runnable(node.watchdog(), ss.safe_cc_process(),
                      "SAFE_CC_process");
  desk.watch("TaskState(faulty=1)", [&] {
    return node.watchdog().task_health(node.safespeed_task()) ==
                   wdg::Health::kFaulty
               ? 1.0
               : 0.0;
  });

  int pfc = 0, aliveness = 0, accumulated = 0;
  sim::SimTime faulty_at;
  node.watchdog().add_task_state_listener(
      [&](TaskId, wdg::Health health, sim::SimTime now) {
        if (health == wdg::Health::kFaulty) faulty_at = now;
      });
  node.watchdog().add_error_listener([&](const wdg::ErrorReport& report) {
    switch (report.type) {
      case wdg::ErrorType::kProgramFlow: ++pfc; break;
      case wdg::ErrorType::kAliveness: ++aliveness; break;
      case wdg::ErrorType::kAccumulatedAliveness: ++accumulated; break;
      default: break;
    }
  });

  node.start();
  desk.start(sim::Duration::seconds(4));
  engine.run_until(sim::SimTime(4'000'000));

  std::cout << "=== Figure 6: collaboration of fault detection units ===\n"
            << "invalid execution branch from t=2.0 s; PFC threshold 3\n\n";
  for (const char* signal :
       {"Speed_process.PFC Result", "SAFE_CC_process.AM Result",
        "TaskState(faulty=1)"}) {
    recorder.render_ascii(std::cout, signal, 1'500'000, 3'000'000, 76, 7);
    std::cout << '\n';
  }

  std::ofstream csv("fig6_collaboration.csv");
  recorder.write_csv(csv, 10'000);
  std::cout << "raw series written to fig6_collaboration.csv\n\n";

  std::cout << "--- paper vs measured ---\n"
            << "paper: PFC Result climbs; after 3 program flow errors the "
               "task state is set to faulty; only one accumulated aliveness "
               "error is reported\n"
            << "measured: " << pfc << " program flow errors, task faulty at "
            << faulty_at.as_millis() << " ms, " << accumulated
            << " accumulated aliveness error(s), " << aliveness
            << " plain aliveness error(s)\n";
  const bool shape_ok =
      pfc >= 3 && accumulated == 1 && aliveness == 0 &&
      node.watchdog().task_health(node.safespeed_task()) ==
          wdg::Health::kFaulty;
  std::cout << "shape check: " << (shape_ok ? "PASS" : "FAIL") << "\n";
  return shape_ok ? 0 : 1;
}
