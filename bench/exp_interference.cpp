// Ablation: scheduling interference of the Software Watchdog service.
//
// The watchdog's main function is itself a (high-priority, non-preemptable)
// OS task with a modelled cost, so monitoring steals CPU from the
// applications. This bench quantifies it: SafeSpeed response-time
// statistics with the service disarmed vs armed, across check periods.
// Expected shape: sub-5% mean response inflation at the paper's 10 ms
// check period; inflation grows as the check period shrinks.
#include <fstream>
#include <iostream>

#include "os/response_time.hpp"
#include "sim/engine.hpp"
#include "validator/central_node.hpp"

using namespace easis;

namespace {

struct Run {
  double mean_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  std::uint64_t jobs = 0;
  std::uint64_t preemptions = 0;
  double wd_cpu_share_pct = 0.0;
};

Run measure(std::int64_t check_period_ms, bool watchdog_armed) {
  sim::Engine engine;
  validator::CentralNodeConfig config;
  config.with_fmf = false;
  config.watchdog.check_period = sim::Duration::millis(check_period_ms);
  validator::CentralNode node(engine, config);
  os::ResponseTimeObserver observer(node.kernel());
  observer.watch_only(node.safespeed_task());

  node.signals().publish("driver.demand", 0.8, engine.now());
  node.start();
  if (!watchdog_armed) {
    // Disarm: cancel the service alarm right after start.
    node.kernel().cancel_alarm(node.watchdog_service().alarm());
  }
  engine.run_until(sim::SimTime(20'000'000));  // 20 s

  Run run;
  const auto* stats = observer.response_times_ms(node.safespeed_task());
  if (stats != nullptr) {
    run.mean_ms = stats->mean();
    run.p99_ms = stats->percentile(99);
    run.max_ms = stats->max();
  }
  run.jobs = observer.jobs_observed(node.safespeed_task());
  run.preemptions = observer.preemptions(node.safespeed_task());
  run.wd_cpu_share_pct =
      100.0 *
      node.kernel().total_consumed(node.watchdog_service().task())
          .as_seconds() /
      engine.now().as_seconds();
  return run;
}

}  // namespace

int main() {
  std::cout << "=== Watchdog scheduling interference (ablation) ===\n"
            << "SafeSpeed response times over 20 s (2000 jobs), with the\n"
            << "watchdog service disarmed vs armed per check period\n\n";
  const Run off = measure(10, /*watchdog_armed=*/false);
  std::printf("%-22s mean=%.3f ms  p99=%.3f ms  max=%.3f ms  jobs=%llu\n",
              "baseline (disarmed)", off.mean_ms, off.p99_ms, off.max_ms,
              static_cast<unsigned long long>(off.jobs));

  std::ofstream csv("exp_interference.csv");
  csv << "check_period_ms,mean_ms,p99_ms,max_ms,jobs,preemptions,"
         "mean_inflation_pct\n";
  csv << "off," << off.mean_ms << ',' << off.p99_ms << ',' << off.max_ms
      << ',' << off.jobs << ',' << off.preemptions << ",0\n";

  bool shape_ok = off.jobs > 1900;
  double previous_share = 1e9;
  for (const std::int64_t check_ms : {1, 2, 5, 10, 20}) {
    const Run on = measure(check_ms, /*watchdog_armed=*/true);
    const double inflation =
        off.mean_ms > 0 ? (on.mean_ms / off.mean_ms - 1.0) * 100.0 : 0.0;
    std::printf("check period %3lld ms    mean=%.3f ms  p99=%.3f ms  "
                "max=%.3f ms  cpu_share=%.3f%%  inflation=%+.2f%%\n",
                static_cast<long long>(check_ms), on.mean_ms, on.p99_ms,
                on.max_ms, on.wd_cpu_share_pct, inflation);
    csv << check_ms << ',' << on.mean_ms << ',' << on.p99_ms << ','
        << on.max_ms << ',' << on.jobs << ',' << on.preemptions << ','
        << inflation << '\n';
    shape_ok = shape_ok && on.jobs == off.jobs;  // no lost activations
    // Worst-case response inflation is bounded by ONE main-function cost
    // (alarms share the system counter, so the phases align): ~36 us on a
    // 700 us job ~= 5.2%.
    shape_ok = shape_ok && inflation < 6.0;
    // The watchdog's CPU share must shrink as the check period grows.
    shape_ok = shape_ok && on.wd_cpu_share_pct <= previous_share + 1e-9;
    shape_ok = shape_ok && (check_ms < 10 || on.wd_cpu_share_pct < 1.0);
    previous_share = on.wd_cpu_share_pct;
  }

  std::cout << "\nraw results written to exp_interference.csv\n"
            << "--- expected shape ---\n"
            << "CPU share shrinks with the check period (<1% at 10 ms); "
               "response inflation is bounded by one main-function cost\n"
            << "shape check: " << (shape_ok ? "PASS" : "FAIL") << "\n";
  return shape_ok ? 0 : 1;
}
