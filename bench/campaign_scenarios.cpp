#include "campaign_scenarios.hpp"

#include <functional>
#include <optional>
#include <stdexcept>

#include "bus/can.hpp"
#include "diag/protocol.hpp"
#include "diag/tester.hpp"
#include "inject/campaign.hpp"
#include "inject/diag_faults.hpp"
#include "inject/faults.hpp"
#include "inject/injector.hpp"
#include "inject/network_faults.hpp"
#include "profile/profiler.hpp"
#include "sim/engine.hpp"
#include "util/random.hpp"
#include "validator/central_node.hpp"
#include "validator/network.hpp"
#include "validator/node_supervisor.hpp"
#include "validator/remote_node.hpp"
#include "wdg/com_monitor.hpp"

namespace easis::bench {

namespace {

constexpr std::int64_t kInjectAtUs = 2'000'000;

using MakeInjection = std::function<inject::Injection(
    validator::VehicleNetwork&, util::Rng&, sim::SimTime)>;

MakeInjection injection_factory(const std::string& fault_class) {
  if (fault_class == "frame_corruption") {
    return [](validator::VehicleNetwork& network, util::Rng& rng,
              sim::SimTime at) {
      return inject::make_frame_corruption(network.can_fault_link(),
                                           rng.uniform(0.5, 1.0), at,
                                           sim::Duration::zero());
    };
  }
  if (fault_class == "loss_burst") {
    return [](validator::VehicleNetwork& network, util::Rng& rng,
              sim::SimTime at) {
      return inject::make_loss_burst(
          network.can_fault_link(),
          static_cast<std::uint64_t>(rng.uniform_int(5, 40)), at);
    };
  }
  if (fault_class == "babbling_idiot") {
    return [](validator::VehicleNetwork& network, util::Rng& rng,
              sim::SimTime at) {
      return inject::make_babbling_idiot(
          network.babbler(), at,
          sim::Duration::millis(rng.uniform_int(500, 2000)));
    };
  }
  if (fault_class == "network_partition") {
    return [](validator::VehicleNetwork& network, util::Rng& rng,
              sim::SimTime at) {
      return inject::make_network_partition(
          network.can_fault_link(), at,
          sim::Duration::millis(rng.uniform_int(300, 1500)));
    };
  }
  if (fault_class == "gateway_stall") {
    return [](validator::VehicleNetwork& network, util::Rng& rng,
              sim::SimTime at) {
      return inject::make_gateway_stall(
          network.gateway(), at,
          sim::Duration::millis(rng.uniform_int(300, 1500)));
    };
  }
  throw std::invalid_argument("unknown network fault class: " + fault_class);
}

}  // namespace

const std::vector<std::string>& network_fault_classes() {
  static const std::vector<std::string> kClasses = {
      "frame_corruption", "loss_burst", "babbling_idiot", "network_partition",
      "gateway_stall"};
  return kClasses;
}

harness::RunResult run_network_fault(const std::string& fault_class,
                                     std::uint64_t seed,
                                     std::int64_t run_until_us) {
  EASIS_PROFILE_SPAN_BEGIN(setup, "run.setup");
  const MakeInjection make = injection_factory(fault_class);

  sim::Engine engine;
  validator::CentralNodeConfig config;
  config.with_fmf = false;
  config.safespeed.max_speed_deadline = sim::Duration::millis(200);
  validator::CentralNode node(engine, config);

  validator::NetworkConfig net_config;
  net_config.e2e_protection = true;
  net_config.fault_seed = seed;
  validator::VehicleNetwork network(engine, node.signals(), net_config);

  wdg::CommunicationMonitoringUnit cmu(node.watchdog());
  const RunnableId channel{1000};
  wdg::ComChannel ch;
  ch.channel = channel;
  ch.task = node.safespeed_task();
  ch.application = node.safespeed().application();
  ch.name = "max_speed";
  ch.timeout = sim::Duration::millis(150);
  cmu.add_channel(ch, engine.now());

  inject::DetectionRecorder recorder;
  recorder.add_detector("e2e_check");
  recorder.add_detector("cmu_report");
  recorder.add_detector("signal_qualifier");
  recorder.add_detector("node_supervisor");

  network.set_max_speed_check_listener(
      [&](bus::E2EStatus status, sim::SimTime now) {
        cmu.on_check_result(channel, status, now);
        if (status != bus::E2EStatus::kOk) recorder.record("e2e_check", now);
      });
  node.watchdog().add_error_listener([&](const wdg::ErrorReport& report) {
    if (report.type == wdg::ErrorType::kCommunication) {
      recorder.record("cmu_report", report.time);
    }
  });

  validator::RemoteNodeConfig remote_config;
  remote_config.name = "dynamics";
  remote_config.heartbeat_can_id = 0x700;
  validator::RemoteNode remote(engine, network.can(), remote_config);
  validator::NodeSupervisor supervisor(engine, network.can());
  supervisor.register_node("dynamics", 0x700, remote_config.heartbeat_period);
  supervisor.set_state_callback(
      [&](NodeId, validator::NodeSupervisor::NodeState state,
          sim::SimTime now) {
        if (state == validator::NodeSupervisor::NodeState::kMissing) {
          recorder.record("node_supervisor", now);
        }
      });

  // Steady traffic: a max-speed command every 50 ms, the CMU's timeout
  // cycle every 50 ms, and a 10 ms sampler of SafeSpeed's qualifier.
  std::function<void()> command_loop = [&] {
    network.command_max_speed(120.0);
    engine.schedule_in(sim::Duration::millis(50), command_loop);
  };
  std::function<void()> cmu_loop = [&] {
    cmu.cycle(engine.now());
    engine.schedule_in(sim::Duration::millis(50), cmu_loop);
  };
  std::function<void()> qualifier_loop = [&] {
    if (node.safespeed().max_speed_qualifier() !=
        rte::SignalQualifier::kValid) {
      recorder.record("signal_qualifier", engine.now());
    }
    engine.schedule_in(sim::Duration::millis(10), qualifier_loop);
  };
  engine.schedule_in(sim::Duration::millis(50), command_loop);
  engine.schedule_in(sim::Duration::millis(50), cmu_loop);
  engine.schedule_in(sim::Duration::millis(10), qualifier_loop);

  util::Rng rng(seed);
  const sim::SimTime inject_at(kInjectAtUs);
  inject::ErrorInjector injector(engine);
  injector.add(make(network, rng, inject_at));
  injector.arm();
  recorder.mark_injection(inject_at);

  node.start();
  network.start();
  remote.start();
  supervisor.start();
  EASIS_PROFILE_SPAN_END(setup);

  {
    EASIS_PROFILE_SPAN("run.simulate");
    engine.run_until(sim::SimTime(run_until_us));
  }

  harness::RunResult result;
  {
    EASIS_PROFILE_SPAN("run.verdict");
    for (const auto& detector : recorder.detectors()) {
      result.coverage.add_result(fault_class, detector,
                                 recorder.detected(detector),
                                 recorder.latency(detector));
    }
  }
  return result;
}

namespace {

/// Everything the t=3s readout collects; the verdict derives from it after
/// the simulation finishes.
struct ReadoutTranscript {
  int timeouts = 0;
  int negatives = 0;
  bool service_not_supported = false;
  std::optional<diag::DtcReadout> count;
  std::optional<diag::DtcReadout> list;
  bool freeze_frame_ok = false;
  int pending = 0;
  bool done = false;
  sim::SimTime completed;
};

void note_response(ReadoutTranscript& transcript,
                   const std::optional<diag::Response>& response) {
  if (!response) {
    ++transcript.timeouts;
    return;
  }
  if (!response->positive) {
    ++transcript.negatives;
    if (response->nrc == diag::Nrc::kServiceNotSupported) {
      transcript.service_not_supported = true;
    }
  }
}

RunnableId diag_target_runnable(validator::CentralNode& node, int target) {
  switch (target % 3) {
    case 0: return node.safespeed().get_sensor_value();
    case 1: return node.safespeed().safe_cc_process();
    default: return node.safespeed().speed_process();
  }
}

wdg::ErrorType expected_error_type(const std::string& fault_class) {
  if (fault_class == "arrival_rate") return wdg::ErrorType::kArrivalRate;
  if (fault_class == "program_flow") return wdg::ErrorType::kProgramFlow;
  return wdg::ErrorType::kAliveness;
}

std::string expected_verdict(const std::string& fault_class) {
  if (fault_class == "diag_request_corruption") {
    return "flagged_negative_response";
  }
  if (fault_class == "diag_response_drop" ||
      fault_class == "diag_reset_blackout") {
    return "readout_timeout";
  }
  return "correct_dtc";
}

}  // namespace

const std::vector<std::string>& diag_fault_classes() {
  static const std::vector<std::string> kClasses = {
      "aliveness",        "arrival_rate",       "program_flow",
      "diag_request_corruption", "diag_response_drop", "diag_reset_blackout"};
  return kClasses;
}

const std::string& diag_readout_csv_header() {
  static const std::string kHeader =
      "fault_class,expected,verdict,dtc_total,dtc_active,freeze_frame,"
      "timeouts,negative_responses,accurate";
  return kHeader;
}

harness::RunResult run_diag_readout(const std::string& fault_class,
                                    std::uint64_t seed) {
  EASIS_PROFILE_SPAN_BEGIN(setup, "run.setup");
  util::Rng rng(seed);

  sim::Engine engine;
  validator::CentralNodeConfig config;
  config.dtc_capacity = 8;
  config.reboot_delay = sim::Duration::millis(50);
  validator::CentralNode node(engine, config);

  // The diagnostic CAN: the node's UDS-lite server plus a workshop tester.
  bus::CanBus diag_can(engine);
  diag::DiagServer& server = node.attach_diag(diag_can);
  diag::DiagTesterConfig tester_config;
  tester_config.name = "workshop";
  diag::DiagTester tester(engine, diag_can, tester_config);

  // The computation fault under diagnosis. Each class uses the injection
  // that manifests *uniquely* as its error type — a dropped or repeated
  // runnable also breaks the program-flow graph, and whichever monitor
  // fires first owns the DTC, which is misclassification, not diagnosis.
  // The three diag-layer classes attack the readout of an aliveness
  // fault's memory instead, so every run has a fault to read out.
  const int target = static_cast<int>(rng.uniform_int(0, 2));
  const sim::SimTime inject_at(1'000'000);
  const sim::Duration fault_duration =
      sim::Duration::millis(rng.uniform_int(200, 800));

  inject::ErrorInjector injector(engine);
  if (fault_class == "arrival_rate") {
    // Excessive dispatch: the task runs 3-6x too fast; every job still
    // executes its correct sequence, so only the arrival counters trip.
    injector.add(inject::make_period_scale(
        node.kernel(), node.safespeed_alarm(), node.safespeed_period_ticks(),
        1.0 / static_cast<double>(rng.uniform_int(3, 6)), inject_at,
        fault_duration));
  } else if (fault_class == "program_flow") {
    injector.add(inject::make_invalid_branch(
        node.rte(), node.safespeed_task(), diag_target_runnable(node, target),
        diag_target_runnable(node, target + 2), inject_at, fault_duration));
  } else {
    // "aliveness" itself and the companion fault of the diag-layer
    // classes: the runnable keeps executing, only its heartbeat glue is
    // suppressed. The target must be the *last* runnable of the job —
    // the PFC clears its context at the task boundary, so a missing tail
    // indication is invisible to it and the aliveness monitor alone
    // owns the DTC.
    injector.add(inject::make_heartbeat_suppression(
        node.rte(), node.safespeed().speed_process(), inject_at,
        fault_duration));
  }

  constexpr std::int64_t kReadoutAtUs = 3'000'000;
  if (fault_class == "diag_request_corruption") {
    injector.add(inject::make_diag_request_corruption(
        tester, sim::SimTime(kReadoutAtUs - 10'000),
        sim::Duration::millis(rng.uniform_int(300, 600))));
  } else if (fault_class == "diag_response_drop") {
    injector.add(inject::make_diag_response_drop(
        server, sim::SimTime(kReadoutAtUs - 10'000),
        sim::Duration::millis(rng.uniform_int(300, 600))));
  } else if (fault_class == "diag_reset_blackout") {
    injector.add(inject::make_diag_blackout(
        server, sim::SimTime(kReadoutAtUs - 10'000),
        sim::Duration::millis(rng.uniform_int(60, 200))));
  }
  injector.arm();

  // Post-run diagnostic readout: session open, DTC count, DTC list, and
  // the freeze frame of the expected DTC when the list advertises one.
  ReadoutTranscript transcript;
  const wdg::ErrorType expected_type = expected_error_type(fault_class);
  const std::uint16_t expected_app = static_cast<std::uint16_t>(
      node.safespeed().application().value());
  auto finish_one = [&] {
    if (--transcript.pending == 0) {
      transcript.done = true;
      transcript.completed = engine.now();
    }
  };
  engine.schedule_at(sim::SimTime(kReadoutAtUs), [&] {
    transcript.pending = 3;
    tester.tester_present([&](const std::optional<diag::Response>& response) {
      note_response(transcript, response);
      finish_one();
    });
    tester.read_dtc_count(
        [&](const std::optional<diag::Response>& response) {
          note_response(transcript, response);
          if (response && response->positive) {
            transcript.count = diag::decode_dtc_readout(response->data);
          }
          finish_one();
        });
    tester.read_dtcs([&](const std::optional<diag::Response>& response) {
      note_response(transcript, response);
      if (response && response->positive) {
        transcript.list = diag::decode_dtc_readout(response->data);
      }
      // Chase the freeze frame of the expected DTC while the session is
      // still fresh (only when the list advertises one).
      bool chase = false;
      if (transcript.list) {
        for (const auto& record : transcript.list->records) {
          if (record.type == expected_type && record.has_freeze_frame) {
            chase = true;
            break;
          }
        }
      }
      if (chase) {
        ++transcript.pending;
        tester.read_freeze_frame(
            expected_app, expected_type,
            [&](const std::optional<diag::Response>& response) {
              note_response(transcript, response);
              if (response && response->positive) {
                const auto frame = diag::decode_freeze_frame(response->data);
                transcript.freeze_frame_ok =
                    frame.has_value() && !frame->signals.empty();
              }
              finish_one();
            });
      }
      finish_one();
    });
  });

  node.start();
  EASIS_PROFILE_SPAN_END(setup);
  {
    EASIS_PROFILE_SPAN("run.simulate");
    engine.run_until(sim::SimTime(5'000'000));
  }

  // --- verdict ---------------------------------------------------------------
  EASIS_PROFILE_SPAN_BEGIN(verdict, "run.verdict");
  std::string verdict;
  if (!transcript.done) {
    verdict = "readout_incomplete";
  } else if (transcript.timeouts > 0) {
    verdict = "readout_timeout";
  } else if (transcript.service_not_supported) {
    verdict = "flagged_negative_response";
  } else if (transcript.negatives > 0) {
    verdict = "readout_rejected";
  } else if (!transcript.list) {
    verdict = "readout_undecodable";
  } else {
    bool matched = false;
    for (const auto& record : transcript.list->records) {
      if (record.type == expected_type && record.application == expected_app) {
        matched = true;
        break;
      }
    }
    if (matched) {
      verdict = "correct_dtc";
    } else {
      verdict = transcript.list->records.empty() ? "missing_dtc" : "wrong_dtc";
    }
  }

  const std::string expected = expected_verdict(fault_class);
  const bool accurate = verdict == expected;

  harness::RunResult result;
  std::optional<sim::Duration> latency;
  if (transcript.done) {
    latency = transcript.completed - sim::SimTime(kReadoutAtUs);
  }
  result.coverage.add_result(fault_class, "diag_readout", accurate, latency);
  result.rows.push_back(
      {fault_class, expected, verdict,
       transcript.count ? std::to_string(transcript.count->total) : "",
       transcript.count ? std::to_string(transcript.count->active) : "",
       transcript.freeze_frame_ok ? "1" : "0",
       std::to_string(transcript.timeouts),
       std::to_string(transcript.negatives), accurate ? "1" : "0"});
  if (!accurate) {
    result.misdetect = "diag readout verdict '" + verdict + "' != expected '" +
                       expected + "' for " + fault_class;
  }
  return result;
}

}  // namespace easis::bench
