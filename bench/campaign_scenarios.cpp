#include "campaign_scenarios.hpp"

#include <functional>
#include <stdexcept>

#include "inject/campaign.hpp"
#include "inject/injector.hpp"
#include "inject/network_faults.hpp"
#include "sim/engine.hpp"
#include "util/random.hpp"
#include "validator/central_node.hpp"
#include "validator/network.hpp"
#include "validator/node_supervisor.hpp"
#include "validator/remote_node.hpp"
#include "wdg/com_monitor.hpp"

namespace easis::bench {

namespace {

constexpr std::int64_t kInjectAtUs = 2'000'000;

using MakeInjection = std::function<inject::Injection(
    validator::VehicleNetwork&, util::Rng&, sim::SimTime)>;

MakeInjection injection_factory(const std::string& fault_class) {
  if (fault_class == "frame_corruption") {
    return [](validator::VehicleNetwork& network, util::Rng& rng,
              sim::SimTime at) {
      return inject::make_frame_corruption(network.can_fault_link(),
                                           rng.uniform(0.5, 1.0), at,
                                           sim::Duration::zero());
    };
  }
  if (fault_class == "loss_burst") {
    return [](validator::VehicleNetwork& network, util::Rng& rng,
              sim::SimTime at) {
      return inject::make_loss_burst(
          network.can_fault_link(),
          static_cast<std::uint64_t>(rng.uniform_int(5, 40)), at);
    };
  }
  if (fault_class == "babbling_idiot") {
    return [](validator::VehicleNetwork& network, util::Rng& rng,
              sim::SimTime at) {
      return inject::make_babbling_idiot(
          network.babbler(), at,
          sim::Duration::millis(rng.uniform_int(500, 2000)));
    };
  }
  if (fault_class == "network_partition") {
    return [](validator::VehicleNetwork& network, util::Rng& rng,
              sim::SimTime at) {
      return inject::make_network_partition(
          network.can_fault_link(), at,
          sim::Duration::millis(rng.uniform_int(300, 1500)));
    };
  }
  if (fault_class == "gateway_stall") {
    return [](validator::VehicleNetwork& network, util::Rng& rng,
              sim::SimTime at) {
      return inject::make_gateway_stall(
          network.gateway(), at,
          sim::Duration::millis(rng.uniform_int(300, 1500)));
    };
  }
  throw std::invalid_argument("unknown network fault class: " + fault_class);
}

}  // namespace

const std::vector<std::string>& network_fault_classes() {
  static const std::vector<std::string> kClasses = {
      "frame_corruption", "loss_burst", "babbling_idiot", "network_partition",
      "gateway_stall"};
  return kClasses;
}

harness::RunResult run_network_fault(const std::string& fault_class,
                                     std::uint64_t seed,
                                     std::int64_t run_until_us) {
  const MakeInjection make = injection_factory(fault_class);

  sim::Engine engine;
  validator::CentralNodeConfig config;
  config.with_fmf = false;
  config.safespeed.max_speed_deadline = sim::Duration::millis(200);
  validator::CentralNode node(engine, config);

  validator::NetworkConfig net_config;
  net_config.e2e_protection = true;
  net_config.fault_seed = seed;
  validator::VehicleNetwork network(engine, node.signals(), net_config);

  wdg::CommunicationMonitoringUnit cmu(node.watchdog());
  const RunnableId channel{1000};
  wdg::ComChannel ch;
  ch.channel = channel;
  ch.task = node.safespeed_task();
  ch.application = node.safespeed().application();
  ch.name = "max_speed";
  ch.timeout = sim::Duration::millis(150);
  cmu.add_channel(ch, engine.now());

  inject::DetectionRecorder recorder;
  recorder.add_detector("e2e_check");
  recorder.add_detector("cmu_report");
  recorder.add_detector("signal_qualifier");
  recorder.add_detector("node_supervisor");

  network.set_max_speed_check_listener(
      [&](bus::E2EStatus status, sim::SimTime now) {
        cmu.on_check_result(channel, status, now);
        if (status != bus::E2EStatus::kOk) recorder.record("e2e_check", now);
      });
  node.watchdog().add_error_listener([&](const wdg::ErrorReport& report) {
    if (report.type == wdg::ErrorType::kCommunication) {
      recorder.record("cmu_report", report.time);
    }
  });

  validator::RemoteNodeConfig remote_config;
  remote_config.name = "dynamics";
  remote_config.heartbeat_can_id = 0x700;
  validator::RemoteNode remote(engine, network.can(), remote_config);
  validator::NodeSupervisor supervisor(engine, network.can());
  supervisor.register_node("dynamics", 0x700, remote_config.heartbeat_period);
  supervisor.set_state_callback(
      [&](NodeId, validator::NodeSupervisor::NodeState state,
          sim::SimTime now) {
        if (state == validator::NodeSupervisor::NodeState::kMissing) {
          recorder.record("node_supervisor", now);
        }
      });

  // Steady traffic: a max-speed command every 50 ms, the CMU's timeout
  // cycle every 50 ms, and a 10 ms sampler of SafeSpeed's qualifier.
  std::function<void()> command_loop = [&] {
    network.command_max_speed(120.0);
    engine.schedule_in(sim::Duration::millis(50), command_loop);
  };
  std::function<void()> cmu_loop = [&] {
    cmu.cycle(engine.now());
    engine.schedule_in(sim::Duration::millis(50), cmu_loop);
  };
  std::function<void()> qualifier_loop = [&] {
    if (node.safespeed().max_speed_qualifier() !=
        rte::SignalQualifier::kValid) {
      recorder.record("signal_qualifier", engine.now());
    }
    engine.schedule_in(sim::Duration::millis(10), qualifier_loop);
  };
  engine.schedule_in(sim::Duration::millis(50), command_loop);
  engine.schedule_in(sim::Duration::millis(50), cmu_loop);
  engine.schedule_in(sim::Duration::millis(10), qualifier_loop);

  util::Rng rng(seed);
  const sim::SimTime inject_at(kInjectAtUs);
  inject::ErrorInjector injector(engine);
  injector.add(make(network, rng, inject_at));
  injector.arm();
  recorder.mark_injection(inject_at);

  node.start();
  network.start();
  remote.start();
  supervisor.start();
  engine.run_until(sim::SimTime(run_until_us));

  harness::RunResult result;
  for (const auto& detector : recorder.detectors()) {
    result.coverage.add_result(fault_class, detector,
                               recorder.detected(detector),
                               recorder.latency(detector));
  }
  return result;
}

}  // namespace easis::bench
