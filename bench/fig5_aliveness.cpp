// Figure 5 reproduction: test with injected aliveness error.
//
// Paper setup: SafeSpeed runs on the central node; a ControlDesk slider
// (time scalar) stretches the execution frequency of the runnables until
// aliveness indications become too infrequent; plots (10 ms time base)
// show the aliveness counter (AC), the cycle counter (CCA) and the
// accumulating "AM Result" (number of detected aliveness errors).
//
// This binary regenerates those series: it prints ASCII step plots in the
// paper's plot order and writes fig5_aliveness.csv with the raw samples.
#include <fstream>
#include <iostream>

#include "inject/faults.hpp"
#include "inject/injector.hpp"
#include "sim/engine.hpp"
#include "util/trace.hpp"
#include "validator/central_node.hpp"
#include "validator/controldesk.hpp"

using namespace easis;

int main() {
  sim::Engine engine;
  validator::CentralNodeConfig config;
  config.with_fmf = false;  // observe the raw detections, as the paper does
  validator::CentralNode node(engine, config);

  // The slider: at t=2 s the SafeSpeed activation period is stretched 8x
  // (10 ms -> 80 ms); the fault hypothesis expects >= 3 heartbeats per
  // 40 ms window. Reverted at t=5 s.
  inject::ErrorInjector injector(engine);
  injector.add(inject::make_period_scale(
      node.kernel(), node.safespeed_alarm(), node.safespeed_period_ticks(),
      8.0, sim::SimTime(2'000'000), sim::Duration::seconds(3)));
  injector.arm();

  util::TraceRecorder recorder;
  validator::ControlDesk desk(engine, recorder, sim::Duration::millis(10));
  const RunnableId monitored = node.safespeed().get_sensor_value();
  desk.watch_runnable(node.watchdog(), monitored, "GetSensorValue");

  int aliveness_errors = 0;
  sim::SimTime first_detection;
  node.watchdog().add_error_listener([&](const wdg::ErrorReport& report) {
    if (report.type == wdg::ErrorType::kAliveness) {
      if (aliveness_errors == 0) first_detection = report.time;
      ++aliveness_errors;
    }
  });

  node.start();
  desk.start(sim::Duration::seconds(8));
  engine.run_until(sim::SimTime(8'000'000));

  std::cout << "=== Figure 5: test with injected aliveness error ===\n"
            << "slider active 2.0 s .. 5.0 s (period x8)\n\n";
  for (const char* signal :
       {"GetSensorValue.AC", "GetSensorValue.CCA",
        "GetSensorValue.AM Result"}) {
    recorder.render_ascii(std::cout, signal, 0, 8'000'000, 76, 7);
    std::cout << '\n';
  }

  std::ofstream csv("fig5_aliveness.csv");
  recorder.write_csv(csv, 10'000);
  std::cout << "raw series written to fig5_aliveness.csv\n\n";

  std::cout << "--- paper vs measured ---\n"
            << "paper: AM Result rises after the slider reduces the "
               "execution frequency; counters reset each cycle\n"
            << "measured: first aliveness detection at "
            << first_detection.as_millis() << " ms ("
            << first_detection.as_millis() - 2000.0
            << " ms after injection), " << aliveness_errors
            << " aliveness errors during the fault window\n";
  const bool shape_ok = aliveness_errors > 0 &&
                        first_detection > sim::SimTime(2'000'000);
  std::cout << "shape check: " << (shape_ok ? "PASS" : "FAIL") << "\n";
  return shape_ok ? 0 : 1;
}
